(* Chaos conformance suite: the full message-passing protocol replayed
   under seeded fault schedules.

   The contract under test (lib/grouprank/transport.ml): whatever the
   fault plan does, a run TERMINATES and is either correct — ranks
   identical to the fault-free golden — or aborts with the typed
   Transport.Party_dropped carrying forensics.  Never a deadlock, never
   a silently wrong ranking.  And the whole ordeal is deterministic:
   the same fault seed yields a byte-identical physical transcript, at
   any job count. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_grouprank
module Faultplan = Ppgr_mpcnet.Faultplan
module Pool = Ppgr_exec.Pool

let ranks_of_betas betas =
  Array.map
    (fun b ->
      1
      + Array.fold_left
          (fun acc b' -> if Bigint.compare b' b > 0 then acc + 1 else acc)
          0 betas)
    betas

(* One shared instance: n = 4 with a tie, l = 5 bits.  The protocol RNG
   seed is fixed across scenarios, so only the fault schedule varies. *)
let betas = Array.map Bigint.of_int [| 9; 3; 14; 3 |]
let l = 5
let golden = ranks_of_betas betas
let retry_budget = 8

(* The scenario matrix: >= 20 seeded fault mixes, single-kind and
   compound, mild to hostile.  Parsed through spec_of_string so the
   scenarios double as parser coverage. *)
let scenarios =
  [
    ("calm-baseline", "seed=calm");
    ("drop-light", "drop=0.05,seed=chaos-1");
    ("drop-moderate", "drop=0.2,seed=chaos-2");
    ("drop-heavy", "drop=0.5,seed=chaos-3");
    ("drop-storm", "drop=0.9,seed=chaos-4");
    ("corrupt-light", "corrupt=0.1,seed=chaos-5");
    ("corrupt-moderate", "corrupt=0.3,seed=chaos-6");
    ("corrupt-heavy", "corrupt=0.5,seed=chaos-7");
    ("dup-light", "dup=0.2,seed=chaos-8");
    ("dup-heavy", "dup=0.5,seed=chaos-9");
    ("reorder-light", "reorder=0.1,seed=chaos-10");
    ("reorder-moderate", "reorder=0.3,seed=chaos-11");
    ("reorder-heavy", "reorder=0.5,seed=chaos-12");
    ("delay-moderate", "delay=0.3,maxdelay=4,seed=chaos-13");
    ("delay-heavy", "delay=0.8,maxdelay=16,seed=chaos-14");
    ("drop-corrupt", "drop=0.1,corrupt=0.1,seed=chaos-15");
    ("loss-trio", "drop=0.05,dup=0.05,reorder=0.05,seed=chaos-16");
    ( "all-faults-mild",
      "drop=0.05,corrupt=0.05,dup=0.05,reorder=0.05,delay=0.05,seed=chaos-17" );
    ( "all-faults-moderate",
      "drop=0.1,corrupt=0.1,dup=0.1,reorder=0.1,delay=0.1,maxdelay=8,\
       seed=chaos-18" );
    ("drop-delay", "drop=0.3,delay=0.3,maxdelay=4,seed=chaos-19");
    ("corrupt-dup", "corrupt=0.15,dup=0.15,seed=chaos-20");
    ("perfect-storm", "drop=0.25,corrupt=0.25,dup=0.2,reorder=0.2,seed=chaos-21");
  ]

(* Only faults the sender times out on can exhaust the retry budget;
   duplicates and delays always deliver on the first attempt. *)
let may_abort (s : Faultplan.spec) =
  s.Faultplan.f_drop > 0. || s.f_corrupt > 0. || s.f_reorder > 0.

module Conformance (G : Group_intf.GROUP) = struct
  module RT = Runtime.Make (G)

  type outcome =
    | Completed of RT.stats
    | Aborted of Transport.forensics

  let run_spec spec =
    let rng = Rng.create ~seed:"chaos-protocol" in
    match RT.run ~faults:spec ~retry_budget rng ~l ~betas with
    | st -> Completed st
    | exception Transport.Party_dropped f -> Aborted f

  let digest_of = function
    | Completed st -> st.RT.transcript_sha
    | Aborted f -> f.Transport.fr_digest

  let check_hex64 what s =
    Alcotest.(check int) (what ^ " digest length") 64 (String.length s);
    String.iter
      (fun c ->
        match c with
        | '0' .. '9' | 'a' .. 'f' -> ()
        | _ -> Alcotest.failf "%s digest not lowercase hex: %S" what s)
      s

  (* The conformance predicate for one scenario. *)
  let check_outcome name spec = function
    | Completed st ->
        Alcotest.(check (array int)) (name ^ ": ranks golden") golden st.RT.ranks;
        check_hex64 name st.RT.transcript_sha;
        Alcotest.(check bool)
          (name ^ ": physical >= logical messages")
          true
          (st.RT.phys_messages >= st.RT.messages);
        Alcotest.(check bool)
          (name ^ ": physical bytes cover envelopes")
          true
          (st.RT.phys_bytes
          >= st.RT.bytes_on_wire + (st.RT.messages * Wire.envelope_overhead));
        let injected =
          List.fold_left (fun a (_, c) -> a + c) 0 st.RT.faults_injected
        in
        if injected = 0 then begin
          (* A clean schedule must add exactly one envelope per message
             and recover nothing. *)
          Alcotest.(check int)
            (name ^ ": clean phys messages")
            st.RT.messages st.RT.phys_messages;
          Alcotest.(check int)
            (name ^ ": clean phys bytes")
            (st.RT.bytes_on_wire + (st.RT.messages * Wire.envelope_overhead))
            st.RT.phys_bytes;
          Alcotest.(check int) (name ^ ": clean retransmits") 0 st.RT.retransmits
        end;
        (* Every corruption that reached the wire was refused by CRC,
           and every timed-out attempt was retransmitted. *)
        let kind k = List.assoc k st.RT.faults_injected in
        Alcotest.(check int)
          (name ^ ": corruptions all CRC-rejected")
          (kind "corrupt") st.RT.crc_rejects;
        Alcotest.(check int)
          (name ^ ": timeouts all retransmitted")
          (kind "drop" + kind "corrupt" + kind "reorder")
          st.RT.retransmits;
        if kind "delay" > 0 || st.RT.retransmits > 0 then
          Alcotest.(check bool)
            (name ^ ": backoff clock advanced")
            true
            (st.RT.backoff_ticks > 0)
    | Aborted f ->
        Alcotest.(check bool)
          (name ^ ": abort only under timeout faults")
          true (may_abort spec);
        Alcotest.(check int)
          (name ^ ": abort after full budget")
          (retry_budget + 1) f.Transport.fr_attempts;
        Alcotest.(check int)
          (name ^ ": one event per attempt")
          (retry_budget + 1)
          (List.length f.Transport.fr_events);
        check_hex64 name f.Transport.fr_digest;
        Alcotest.(check bool)
          (name ^ ": forensics name a protocol step")
          true
          (f.Transport.fr_step <> "")

  let scenario_cases =
    List.map
      (fun (name, spec_str) ->
        Alcotest.test_case name `Quick (fun () ->
            let spec = Faultplan.spec_of_string spec_str in
            check_outcome name spec (run_spec spec)))
      scenarios

  (* Same seed, same schedule, same transcript — byte-identical. *)
  let determinism_cases =
    let replayed = [ "calm-baseline"; "drop-storm"; "all-faults-moderate"; "reorder-heavy" ] in
    List.map
      (fun name ->
        let spec_str = List.assoc name scenarios in
        Alcotest.test_case (name ^ " replays identically") `Quick (fun () ->
            let spec = Faultplan.spec_of_string spec_str in
            let a = run_spec spec and b = run_spec spec in
            Alcotest.(check string) "transcript digest" (digest_of a) (digest_of b);
            match (a, b) with
            | Completed x, Completed y ->
                Alcotest.(check (array int)) "ranks" x.RT.ranks y.RT.ranks;
                Alcotest.(check int) "retransmits" x.RT.retransmits y.RT.retransmits
            | Aborted x, Aborted y ->
                Alcotest.(check string) "abort step" x.Transport.fr_step
                  y.Transport.fr_step;
                Alcotest.(check int) "abort seq" x.Transport.fr_seq
                  y.Transport.fr_seq
            | _ -> Alcotest.fail "outcome kind differs between replays"))
      replayed

  (* The transcript must not depend on the domain-pool job count. *)
  let jobs_cases =
    let crossed = [ "calm-baseline"; "drop-storm"; "all-faults-moderate" ] in
    List.map
      (fun name ->
        let spec_str = List.assoc name scenarios in
        Alcotest.test_case (name ^ ": jobs=1 = jobs=4") `Quick (fun () ->
            let spec = Faultplan.spec_of_string spec_str in
            let prev = Pool.jobs () in
            Fun.protect
              ~finally:(fun () -> Pool.set_jobs prev)
              (fun () ->
                Pool.set_jobs 1;
                let a = run_spec spec in
                Pool.set_jobs 4;
                let b = run_spec spec in
                Alcotest.(check string) "transcript digest" (digest_of a)
                  (digest_of b))))
      crossed

  let cases = scenario_cases @ determinism_cases @ jobs_cases
end

(* ---- Windowed transport: the pipelined engine under the same chaos ---- *)

module Windowed (G : Group_intf.GROUP) = struct
  module RT = Runtime.Make (G)

  type outcome =
    | Completed of RT.stats
    | Aborted of Transport.forensics

  let run_spec ?window spec =
    let rng = Rng.create ~seed:"chaos-protocol" in
    match RT.run ?window ~faults:spec ~retry_budget rng ~l ~betas with
    | st -> Completed st
    | exception Transport.Party_dropped f -> Aborted f

  let digest_of = function
    | Completed st -> st.RT.transcript_sha
    | Aborted f -> f.Transport.fr_digest

  let winspec w = Transport.winspec_of_string (Printf.sprintf "window=%d,rto=4" w)

  (* Scenarios that stress the window: loss, reordering and latency. *)
  let windowed_scenarios =
    [
      "calm-baseline";
      "drop-moderate";
      "reorder-heavy";
      "delay-moderate";
      "delay-heavy";
      "drop-delay";
      "loss-trio";
      "all-faults-moderate";
    ]

  (* window=1 must BE stop-and-wait: not just the same answer, the same
     transcript, meters and per-link tiling, byte for byte. *)
  let window_one_cases =
    List.map
      (fun name ->
        let spec_str = List.assoc name scenarios in
        Alcotest.test_case (name ^ ": window=1 = stop-and-wait") `Quick
          (fun () ->
            let spec = Faultplan.spec_of_string spec_str in
            let sync = run_spec spec in
            let w1 = run_spec ~window:(winspec 1) spec in
            Alcotest.(check string) "transcript digest" (digest_of sync)
              (digest_of w1);
            match (sync, w1) with
            | Completed a, Completed b ->
                Alcotest.(check (array int)) "ranks" a.RT.ranks b.RT.ranks;
                Alcotest.(check int) "phys_messages" a.RT.phys_messages
                  b.RT.phys_messages;
                Alcotest.(check int) "phys_bytes" a.RT.phys_bytes
                  b.RT.phys_bytes;
                Alcotest.(check int) "retransmits" a.RT.retransmits
                  b.RT.retransmits;
                Alcotest.(check int) "sim_ticks" a.RT.sim_ticks b.RT.sim_ticks;
                Alcotest.(check int) "no acks at window=1" 0 b.RT.acks_sent;
                Alcotest.(check bool) "links" true (a.RT.links = b.RT.links)
            | Aborted a, Aborted b ->
                Alcotest.(check string) "abort step" a.Transport.fr_step
                  b.Transport.fr_step;
                Alcotest.(check int) "abort attempts" a.Transport.fr_attempts
                  b.Transport.fr_attempts
            | _ -> Alcotest.fail "outcome kind differs at window=1"))
      windowed_scenarios

  (* Pipelined windows: every protocol step posts at most one message
     per directed link and the flush order matches the stop-and-wait
     send order, so the physical transcript is window-invariant — the
     window only buys wall-clock overlap.  Check exactly that, plus the
     recovery invariants under chaos. *)
  let check_windowed name sync = function
    | Completed st ->
        Alcotest.(check (array int)) (name ^ ": ranks golden") golden st.RT.ranks;
        Alcotest.(check string)
          (name ^ ": transcript is window-invariant")
          (digest_of sync) st.RT.transcript_sha;
        let kind k = List.assoc k st.RT.faults_injected in
        Alcotest.(check int)
          (name ^ ": corruptions all CRC-rejected")
          (kind "corrupt") st.RT.crc_rejects;
        Alcotest.(check int)
          (name ^ ": timeouts all retransmitted")
          (kind "drop" + kind "corrupt" + kind "reorder")
          st.RT.retransmits;
        (* Per-link tiling still covers the physical totals exactly. *)
        let msgs, bytes, retrans =
          List.fold_left
            (fun (m, b, r) lk ->
              ( m + lk.Transport.lk_msgs,
                b + lk.Transport.lk_bytes,
                r + lk.Transport.lk_retrans ))
            (0, 0, 0) st.RT.links
        in
        Alcotest.(check int) (name ^ ": links tile phys messages")
          st.RT.phys_messages msgs;
        Alcotest.(check int) (name ^ ": links tile phys bytes")
          st.RT.phys_bytes bytes;
        Alcotest.(check int) (name ^ ": links tile retransmits")
          st.RT.retransmits retrans;
        (* The control plane actually ran: one cumulative ack per
           accepted delivery, none of it on the transcript. *)
        Alcotest.(check bool) (name ^ ": acks flowed") true
          (st.RT.acks_sent > 0);
        Alcotest.(check int)
          (name ^ ": ack bytes are framed acks")
          (st.RT.acks_sent * Wire.ack_overhead)
          st.RT.ack_bytes;
        (match sync with
        | Completed ss ->
            Alcotest.(check bool)
              (name ^ ": pipelining never slower than stop-and-wait")
              true
              (st.RT.sim_ticks <= ss.RT.sim_ticks)
        | Aborted _ -> ())
    | Aborted f ->
        (match sync with
        | Aborted sf ->
            Alcotest.(check string)
              (name ^ ": abort digest is window-invariant")
              sf.Transport.fr_digest f.Transport.fr_digest
        | Completed _ -> Alcotest.fail (name ^ ": windowed run aborted where stop-and-wait completed"));
        Alcotest.(check int)
          (name ^ ": abort after full budget")
          (retry_budget + 1) f.Transport.fr_attempts

  let windowed_cases =
    List.concat_map
      (fun name ->
        let spec_str = List.assoc name scenarios in
        List.map
          (fun w ->
            Alcotest.test_case
              (Printf.sprintf "%s: window=%d" name w)
              `Quick
              (fun () ->
                let spec = Faultplan.spec_of_string spec_str in
                let sync = run_spec spec in
                check_windowed name sync (run_spec ~window:(winspec w) spec)))
          [ 4; 16 ])
      windowed_scenarios

  (* Latency is where the window pays: under the delay-heavy plan the
     pipelined engine must finish strictly earlier on the link clock. *)
  let pipelining_wins_case =
    Alcotest.test_case "delay-heavy: window=16 strictly faster" `Quick
      (fun () ->
        let spec =
          Faultplan.spec_of_string (List.assoc "delay-heavy" scenarios)
        in
        match (run_spec spec, run_spec ~window:(winspec 16) spec) with
        | Completed a, Completed b ->
            Alcotest.(check bool)
              (Printf.sprintf "sim_ticks %d < %d" b.RT.sim_ticks a.RT.sim_ticks)
              true
              (b.RT.sim_ticks < a.RT.sim_ticks)
        | _ -> Alcotest.fail "delay-only plan must complete")

  (* Same window, same seed, same transcript — at any job count. *)
  let windowed_jobs_case =
    Alcotest.test_case "all-faults-moderate: window=4 jobs=1 = jobs=4" `Quick
      (fun () ->
        let spec =
          Faultplan.spec_of_string (List.assoc "all-faults-moderate" scenarios)
        in
        let prev = Pool.jobs () in
        Fun.protect
          ~finally:(fun () -> Pool.set_jobs prev)
          (fun () ->
            Pool.set_jobs 1;
            let a = run_spec ~window:(winspec 4) spec in
            Pool.set_jobs 4;
            let b = run_spec ~window:(winspec 4) spec in
            Alcotest.(check string) "transcript digest" (digest_of a)
              (digest_of b)))

  let cases =
    window_one_cases @ windowed_cases
    @ [ pipelining_wins_case; windowed_jobs_case ]
end

(* Group-independent window-spec grammar behaviour. *)
let winspec_tests =
  [
    Alcotest.test_case "winspec parses and round-trips" `Quick (fun () ->
        let s = Transport.winspec_of_string "window=8,rto=6,link-1-2=16" in
        Alcotest.(check string)
          "round trip"
          (Transport.winspec_to_string s)
          (Transport.winspec_to_string
             (Transport.winspec_of_string (Transport.winspec_to_string s))));
    Alcotest.test_case "per-link override beats the default" `Quick (fun () ->
        let s = Transport.winspec_of_string "window=4,link-0-2=16" in
        Alcotest.(check int) "override" 16
          (Transport.winspec_window s ~src:0 ~dst:2);
        Alcotest.(check int) "reverse direction unaffected" 4
          (Transport.winspec_window s ~src:2 ~dst:0);
        Alcotest.(check int) "other links default" 4
          (Transport.winspec_window s ~src:1 ~dst:3));
    Alcotest.test_case "bad winspecs rejected" `Quick (fun () ->
        let bad s =
          try
            ignore (Transport.winspec_of_string s);
            false
          with Invalid_argument _ -> true
        in
        Alcotest.(check bool) "unknown key" true (bad "frob=1");
        Alcotest.(check bool) "zero window" true (bad "window=0");
        Alcotest.(check bool) "window above cap" true
          (bad (Printf.sprintf "window=%d" (Transport.max_window + 1)));
        Alcotest.(check bool) "zero rto" true (bad "rto=0");
        Alcotest.(check bool) "malformed link key" true (bad "link-0=4");
        Alcotest.(check bool) "no equals sign" true (bad "window"));
  ]

(* ---- Flight recorder: the per-party ring of recent wire events ---- *)

module Flightrec = Ppgr_obs.Flightrec

module Flight (G : Group_intf.GROUP) = struct
  module RT = Runtime.Make (G)

  let run_spec ?flight_cap ?(seed = "chaos-protocol") spec_str =
    let rng = Rng.create ~seed in
    let faults = Faultplan.spec_of_string spec_str in
    RT.run ~faults ~retry_budget ?flight_cap rng ~l ~betas

  let cases =
    [
      Alcotest.test_case "ring wraps at capacity, keeping the newest" `Quick
        (fun () ->
          let cap = 8 in
          let st = run_spec ~flight_cap:cap "drop=0.2,dup=0.2,seed=chaos-2" in
          let fl = st.RT.flight in
          Alcotest.(check int) "capacity as configured" cap
            (Flightrec.capacity fl);
          (* Every party both sends and receives in every step, so with
             dozens of messages each ring must have overflowed. *)
          Array.iteri
            (fun p _ ->
              let n = Flightrec.recorded fl ~party:p in
              Alcotest.(check bool)
                (Printf.sprintf "party %d overflowed" p)
                true (n > cap);
              Alcotest.(check bool)
                (Printf.sprintf "party %d wrapped" p)
                true
                (Flightrec.wrapped fl ~party:p);
              Alcotest.(check int)
                (Printf.sprintf "party %d tail is capacity-bounded" p)
                cap
                (List.length (Flightrec.tail fl ~party:p)))
            betas);
      Alcotest.test_case "unwrapped ring retains everything, oldest first"
        `Quick (fun () ->
          let fl = Flightrec.create ~parties:1 ~capacity:16 () in
          for seq = 0 to 9 do
            Flightrec.record fl ~party:0 Send ~src:0 ~dst:1 ~seq ~info:seq
          done;
          Alcotest.(check bool) "not wrapped" false
            (Flightrec.wrapped fl ~party:0);
          let tl = Flightrec.tail fl ~party:0 in
          Alcotest.(check (list int)) "oldest first, none lost"
            [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
            (List.map (fun e -> e.Flightrec.ev_seq) tl));
      Alcotest.test_case "wrapped ring keeps exactly the newest" `Quick
        (fun () ->
          let fl = Flightrec.create ~parties:2 ~capacity:4 () in
          for seq = 0 to 10 do
            Flightrec.record fl ~party:1 Receive ~src:0 ~dst:1 ~seq ~info:0
          done;
          Alcotest.(check int) "recorded all" 11 (Flightrec.recorded fl ~party:1);
          Alcotest.(check (list int)) "last capacity events, oldest first"
            [ 7; 8; 9; 10 ]
            (List.map
               (fun e -> e.Flightrec.ev_seq)
               (Flightrec.tail fl ~party:1));
          (* The other party's ring is untouched. *)
          Alcotest.(check int) "party 0 empty" 0 (Flightrec.recorded fl ~party:0));
      Alcotest.test_case "clean run records no recovery events" `Quick
        (fun () ->
          let st = run_spec "seed=calm" in
          Array.iteri
            (fun p _ ->
              List.iter
                (fun e ->
                  match e.Flightrec.ev_kind with
                  | Flightrec.Retransmit | Flightrec.Crc_reject ->
                      Alcotest.failf
                        "party %d: clean run recorded a %s event" p
                        (Flightrec.kind_name e.Flightrec.ev_kind)
                  | _ -> ())
                (Flightrec.tail st.RT.flight ~party:p))
            betas);
      Alcotest.test_case "abort forensics carry the failing link's tail"
        `Quick (fun () ->
          (* Hostile enough that the retry budget cannot absorb it. *)
          let rng = Rng.create ~seed:"chaos-protocol" in
          let faults = Faultplan.spec_of_string "drop=0.9,seed=chaos-abort" in
          match RT.run ~faults ~retry_budget:2 rng ~l ~betas with
          | _ -> Alcotest.fail "expected Party_dropped under drop=0.9"
          | exception Transport.Party_dropped f ->
              Alcotest.(check bool) "flight tail present" true
                (f.Transport.fr_flight <> []);
              (* The tail must show the sender actually fighting the
                 link: at least one retransmit among the recent events. *)
              Alcotest.(check bool) "tail shows retransmissions" true
                (List.exists
                   (fun e -> e.Flightrec.ev_kind = Flightrec.Retransmit)
                   f.Transport.fr_flight);
              (* And every rendered line is non-empty (the CLI prints
                 these verbatim in the exit-3 report). *)
              List.iter
                (fun e ->
                  let line = Format.asprintf "%a" Flightrec.pp_event e in
                  Alcotest.(check bool) "pp_event renders" true (line <> ""))
                f.Transport.fr_flight);
    ]
end

(* Group-independent fault-plan behaviour. *)
let faultplan_tests =
  [
    Alcotest.test_case "spec parses and round-trips" `Quick (fun () ->
        let s =
          Faultplan.spec_of_string
            "drop=0.1,corrupt=0.02,dup=0.01,reorder=0.05,delay=0.1,maxdelay=4,\
             seed=x"
        in
        Alcotest.(check string)
          "round trip"
          (Faultplan.spec_to_string s)
          (Faultplan.spec_to_string
             (Faultplan.spec_of_string (Faultplan.spec_to_string s))));
    Alcotest.test_case "unknown keys and bad rates rejected" `Quick (fun () ->
        let bad s =
          try
            ignore (Faultplan.spec_of_string s);
            false
          with Invalid_argument _ -> true
        in
        Alcotest.(check bool) "unknown key" true (bad "frobnicate=0.1");
        Alcotest.(check bool) "rate above 1" true (bad "drop=1.5");
        Alcotest.(check bool) "negative rate" true (bad "corrupt=-0.1");
        Alcotest.(check bool) "no equals sign" true (bad "drop");
        Alcotest.(check bool) "zero maxdelay" true (bad "maxdelay=0"));
    Alcotest.test_case "schedule is independent of link interleaving" `Quick
      (fun () ->
        (* Draw the same 40 per-link decisions in sequential and in
           round-robin link order: the per-link schedules must agree. *)
        let spec =
          Faultplan.spec_of_string
            "drop=0.2,corrupt=0.2,dup=0.2,reorder=0.2,delay=0.1,seed=ilv"
        in
        let links = [ (0, 1); (1, 2); (2, 0) ] in
        let a = Faultplan.create spec and b = Faultplan.create spec in
        let seq_order =
          List.concat_map
            (fun (src, dst) ->
              List.init 40 (fun _ -> Faultplan.next a ~src ~dst))
            links
        in
        let rr = Array.make (3 * 40) Faultplan.Deliver in
        for k = 0 to 39 do
          List.iteri
            (fun li (src, dst) -> rr.((li * 40) + k) <- Faultplan.next b ~src ~dst)
            links
        done;
        Alcotest.(check bool)
          "same per-link decisions" true
          (seq_order = Array.to_list rr));
    Alcotest.test_case "corruption damages exactly one byte" `Quick (fun () ->
        let spec = Faultplan.spec_of_string "corrupt=1,seed=corr" in
        let plan = Faultplan.create spec in
        for _ = 1 to 50 do
          match Faultplan.next plan ~src:0 ~dst:1 with
          | Faultplan.Corrupt c ->
              let msg = Bytes.init 33 (fun i -> Char.chr (i * 7 land 0xFF)) in
              let out = Faultplan.apply_corruption c msg in
              let diff = ref 0 in
              Bytes.iteri
                (fun i ch -> if ch <> Bytes.get out i then incr diff)
                msg;
              Alcotest.(check int) "one byte differs" 1 !diff
          | _ -> Alcotest.fail "corrupt=1 must always corrupt"
        done);
    Alcotest.test_case "tallies account every non-deliver decision" `Quick
      (fun () ->
        let spec =
          Faultplan.spec_of_string
            "drop=0.3,corrupt=0.2,dup=0.2,reorder=0.2,delay=0.1,seed=tally"
        in
        let plan = Faultplan.create spec in
        let non_deliver = ref 0 in
        for src = 0 to 2 do
          for k = 0 to 99 do
            ignore k;
            match Faultplan.next plan ~src ~dst:((src + 1) mod 3) with
            | Faultplan.Deliver -> ()
            | _ -> incr non_deliver
          done
        done;
        Alcotest.(check int)
          "total tally" !non_deliver
          (Faultplan.total_injected plan));
  ]

module G_dl = (val Dl_group.dl_512 () : Group_intf.GROUP)
module G_ec = (val Ec_group.ecc_160 () : Group_intf.GROUP)
module Dl = Conformance (G_dl)
module Ec = Conformance (G_ec)
module Win_dl = Windowed (G_dl)
module Win_ec = Windowed (G_ec)
module G_small = (val Dl_group.dl_test_64 () : Group_intf.GROUP)
module Fl = Flight (G_small)

let () =
  Alcotest.run "chaos"
    [
      ("faultplan", faultplan_tests);
      ("winspec", winspec_tests);
      ("dl-512", Dl.cases);
      ("ecc-160", Ec.cases);
      ("windowed-dl-512", Win_dl.cases);
      ("windowed-ecc-160", Win_ec.cases);
      ("flightrec", Fl.cases);
    ]

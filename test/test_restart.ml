(* Restart conformance: checkpoint/restart must be invisible.

   The contract under test (lib/grouprank/runtime.ml): a run aborted by
   Transport.Party_dropped at ANY wire step and resumed from the last
   checkpoint produces exactly the uninterrupted run — same ranks, same
   transcript digest, same logical and physical meters, same replay
   schedule.  This works because party randomness comes from rng splits
   the aborted attempt never disturbed, and the fault schedule is a pure
   function of the seed fast-forwarded to the persisted draw count.

   When resume itself is exhausted, the ring is re-elected without the
   dead party; that path must be byte-identical to a fresh (n-1)-party
   run on the "re-elect-<dead>" split (collusion bound degrades to n-3,
   DESIGN.md §5k). *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_grouprank
module Pool = Ppgr_exec.Pool

let ranks_of_betas betas =
  Array.map
    (fun b ->
      1
      + Array.fold_left
          (fun acc b' -> if Bigint.compare b' b > 0 then acc + 1 else acc)
          0 betas)
    betas

(* Same instance as the chaos suite: n = 4 with a tie, l = 5 bits. *)
let betas = Array.map Bigint.of_int [| 9; 3; 14; 3 |]
let l = 5
let n = Array.length betas
let seed = "restart-proto"

(* Wire steps: announce, encrypt, compare, then n ring hops. *)
let wire_steps = 3 + n

(* phys_messages recorded in a checkpoint's transport snapshot —
   slot 7 of Wire.ts_counters (order fixed by Transport.persist). *)
let phys_at ck = (Wire.decode_checkpoint ck).Wire.ck_snap.Wire.ts_counters.(7)

module Battery (G : Group_intf.GROUP) = struct
  module RT = Runtime.Make (G)

  (* Uninterrupted golden, collecting the checkpoint emitted after each
     completed wire step.  Computed once per group. *)
  let golden =
    lazy
      (let cks = ref [] in
       let rng = Rng.create ~seed in
       let st =
         RT.run ~checkpoint_cb:(fun b -> cks := b :: !cks) rng ~l ~betas
       in
       (st, Array.of_list (List.rev !cks)))

  (* Full stats equality, field by field so a divergence names itself. *)
  let check_stats name (a : RT.stats) (b : RT.stats) =
    let ck_int what x y = Alcotest.(check int) (name ^ ": " ^ what) x y in
    let ck_arr what x y = Alcotest.(check (array int)) (name ^ ": " ^ what) x y in
    ck_arr "ranks" a.RT.ranks b.RT.ranks;
    ck_int "bytes_on_wire" a.RT.bytes_on_wire b.RT.bytes_on_wire;
    ck_int "messages" a.RT.messages b.RT.messages;
    ck_arr "party_sent" a.RT.party_sent b.RT.party_sent;
    ck_arr "party_received" a.RT.party_received b.RT.party_received;
    ck_int "phys_bytes" a.RT.phys_bytes b.RT.phys_bytes;
    ck_int "phys_messages" a.RT.phys_messages b.RT.phys_messages;
    ck_arr "phys_party_sent" a.RT.phys_party_sent b.RT.phys_party_sent;
    ck_arr "phys_party_received" a.RT.phys_party_received
      b.RT.phys_party_received;
    ck_int "retransmits" a.RT.retransmits b.RT.retransmits;
    ck_int "drops" a.RT.drops b.RT.drops;
    ck_int "crc_rejects" a.RT.crc_rejects b.RT.crc_rejects;
    ck_int "dup_suppressed" a.RT.dup_suppressed b.RT.dup_suppressed;
    ck_int "backoff_ticks" a.RT.backoff_ticks b.RT.backoff_ticks;
    ck_int "acks_sent" a.RT.acks_sent b.RT.acks_sent;
    ck_int "ack_bytes" a.RT.ack_bytes b.RT.ack_bytes;
    ck_int "sim_ticks" a.RT.sim_ticks b.RT.sim_ticks;
    Alcotest.(check (list (pair string int)))
      (name ^ ": faults_injected") a.RT.faults_injected b.RT.faults_injected;
    Alcotest.(check string)
      (name ^ ": transcript_sha") a.RT.transcript_sha b.RT.transcript_sha;
    Alcotest.(check bool)
      (name ^ ": net_rounds identical") true
      (a.RT.net_rounds = b.RT.net_rounds);
    Alcotest.(check bool)
      (name ^ ": per-link tiling identical") true (a.RT.links = b.RT.links)

  let checkpoint_shape_case =
    Alcotest.test_case "one checkpoint per wire step, monotone" `Quick
      (fun () ->
        let _, cks = Lazy.force golden in
        Alcotest.(check int) "checkpoint count" wire_steps (Array.length cks);
        Array.iteri
          (fun i b ->
            let c = Wire.decode_checkpoint b in
            Alcotest.(check int)
              (Printf.sprintf "checkpoint %d covers %d steps" i (i + 1))
              (i + 1) c.Wire.ck_step;
            Alcotest.(check int) "party count" n c.Wire.ck_n;
            if i > 0 then
              Alcotest.(check bool)
                (Printf.sprintf "phys_messages grew by step %d" i)
                true
                (phys_at b > phys_at cks.(i - 1)))
          cks)

  (* The headline battery: kill at the entry of EVERY wire step, let the
     supervisor resume from the last checkpoint, compare everything to
     the uninterrupted golden. *)
  let kill_every_step_cases =
    List.init wire_steps (fun s ->
        Alcotest.test_case
          (Printf.sprintf "kill at step %d, resume = golden" s)
          `Quick
          (fun () ->
            let gst, cks = Lazy.force golden in
            (* First transmission of step s trips the kill: phys count
               at the end of step s-1 (0 kills the very first send). *)
            let kill_after = if s = 0 then 0 else phys_at cks.(s - 1) in
            let rng = Rng.create ~seed in
            let rc =
              RT.run_with_restart ~max_restarts:1 ~kill_after rng ~l ~betas
            in
            Alcotest.(check int) "one resume consumed" 1 rc.RT.rec_resumes;
            Alcotest.(check bool) "no re-election" true
              (rc.RT.rec_reelected = None);
            check_stats (Printf.sprintf "step %d" s) gst rc.RT.rec_stats))

  (* Mid-step kill: die after a few transmissions of the encrypt
     broadcast; the resume replays the whole interrupted step. *)
  let mid_step_case =
    Alcotest.test_case "kill mid-step, resume = golden" `Quick (fun () ->
        let gst, cks = Lazy.force golden in
        let kill_after = phys_at cks.(0) + 3 in
        let rng = Rng.create ~seed in
        let rc =
          RT.run_with_restart ~max_restarts:1 ~kill_after rng ~l ~betas
        in
        Alcotest.(check int) "one resume consumed" 1 rc.RT.rec_resumes;
        check_stats "mid-step" gst rc.RT.rec_stats)

  (* The low-level resume API, without the supervisor: abort, then feed
     the captured checkpoint back through ?resume on a fresh rng. *)
  let manual_resume_case =
    Alcotest.test_case "manual ?resume from captured checkpoint" `Quick
      (fun () ->
        let gst, cks = Lazy.force golden in
        let kill_after = phys_at cks.(2) in
        let latest = ref None in
        let rng = Rng.create ~seed in
        (match
           RT.run ~kill_after
             ~checkpoint_cb:(fun b -> latest := Some b)
             rng ~l ~betas
         with
        | _ -> Alcotest.fail "expected Party_dropped at the kill point"
        | exception Transport.Party_dropped f ->
            Alcotest.(check bool) "killed event recorded" true
              (List.mem "killed" f.Transport.fr_events));
        let ck = Option.get !latest in
        Alcotest.(check int) "aborted at ring entry" 3
          (Wire.decode_checkpoint ck).Wire.ck_step;
        let st = RT.run ~resume:ck (Rng.create ~seed) ~l ~betas in
        check_stats "manual resume" gst st)

  (* A checkpoint binds its party count. *)
  let resume_wrong_n_case =
    Alcotest.test_case "resume rejects a wrong-n checkpoint" `Quick (fun () ->
        let _, cks = Lazy.force golden in
        let betas3 = Array.sub betas 0 3 in
        match RT.run ~resume:cks.(1) (Rng.create ~seed) ~l ~betas:betas3 with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ())

  (* Restart under an active fault plan: the restored transport must
     fast-forward the fault schedule to the persisted position, so the
     resumed run still matches its own (faulty) golden. *)
  let faulty_spec = "drop=0.1,delay=0.2,maxdelay=4,seed=restart-faults"

  let faulty_restart_case =
    Alcotest.test_case "resume under a fault plan = faulty golden" `Quick
      (fun () ->
        let faults = Ppgr_mpcnet.Faultplan.spec_of_string faulty_spec in
        let cks = ref [] in
        let gst =
          RT.run ~faults
            ~checkpoint_cb:(fun b -> cks := b :: !cks)
            (Rng.create ~seed) ~l ~betas
        in
        let cks = Array.of_list (List.rev !cks) in
        let kill_after = phys_at cks.(3) in
        let rc =
          RT.run_with_restart ~faults ~max_restarts:1 ~kill_after
            (Rng.create ~seed) ~l ~betas
        in
        Alcotest.(check int) "one resume consumed" 1 rc.RT.rec_resumes;
        check_stats "faulty resume" gst rc.RT.rec_stats)

  (* Windowed restart: the pipelined engine persists and restores the
     same way; resumed windowed run = windowed golden (acks, sim_ticks
     and all). *)
  let windowed_restart_case =
    Alcotest.test_case "resume a windowed run = windowed golden" `Quick
      (fun () ->
        let window = Transport.winspec_of_string "window=4,rto=4" in
        let cks = ref [] in
        let gst =
          RT.run ~window
            ~checkpoint_cb:(fun b -> cks := b :: !cks)
            (Rng.create ~seed) ~l ~betas
        in
        let cks = Array.of_list (List.rev !cks) in
        let kill_after = phys_at cks.(1) in
        let rc =
          RT.run_with_restart ~window ~max_restarts:1 ~kill_after
            (Rng.create ~seed) ~l ~betas
        in
        Alcotest.(check int) "one resume consumed" 1 rc.RT.rec_resumes;
        check_stats "windowed resume" gst rc.RT.rec_stats)

  (* Re-election differential: after max_restarts failed resumes the
     dead party is dropped and the survivors rerun as n-1 parties on
     the "re-elect-<dead>" split — byte-identical to a fresh run on
     that stream, with golden (n-1)-party ranks. *)
  let reelection_case =
    Alcotest.test_case "re-election = fresh (n-1)-party run" `Quick
      (fun () ->
        let _, cks = Lazy.force golden in
        let kill_after = phys_at cks.(2) in
        let rc =
          RT.run_with_restart ~max_restarts:0 ~kill_after
            (Rng.create ~seed) ~l ~betas
        in
        Alcotest.(check int) "no resumes before re-election" 0
          rc.RT.rec_resumes;
        let dead =
          match rc.RT.rec_reelected with
          | Some d -> d
          | None -> Alcotest.fail "expected a re-elected ring"
        in
        Alcotest.(check bool) "dead party in range" true
          (dead >= 0 && dead < n);
        let betas' =
          Array.init (n - 1) (fun j ->
              if j < dead then betas.(j) else betas.(j + 1))
        in
        let rng' =
          Rng.split (Rng.create ~seed)
            ~label:("re-elect-" ^ string_of_int dead)
        in
        let fresh = RT.run rng' ~l ~betas:betas' in
        Alcotest.(check (array int))
          "re-elected ranks are the survivors' golden"
          (ranks_of_betas betas') rc.RT.rec_stats.RT.ranks;
        check_stats "re-election differential" fresh rc.RT.rec_stats)

  (* The resumed transcript must not depend on the domain-pool job
     count. *)
  let jobs_cases =
    List.map
      (fun s ->
        Alcotest.test_case
          (Printf.sprintf "kill at step %d: jobs=1 = jobs=4" s)
          `Quick
          (fun () ->
            let _, cks = Lazy.force golden in
            let kill_after = if s = 0 then 0 else phys_at cks.(s - 1) in
            let resumed () =
              RT.run_with_restart ~max_restarts:1 ~kill_after
                (Rng.create ~seed) ~l ~betas
            in
            let prev = Pool.jobs () in
            Fun.protect
              ~finally:(fun () -> Pool.set_jobs prev)
              (fun () ->
                Pool.set_jobs 1;
                let a = resumed () in
                Pool.set_jobs 4;
                let b = resumed () in
                Alcotest.(check string) "transcript digest"
                  a.RT.rec_stats.RT.transcript_sha
                  b.RT.rec_stats.RT.transcript_sha;
                check_stats "jobs differential" a.RT.rec_stats
                  b.RT.rec_stats)))
      [ 0; 2; 5 ]

  let cases =
    (checkpoint_shape_case :: kill_every_step_cases)
    @ [
        mid_step_case;
        manual_resume_case;
        resume_wrong_n_case;
        faulty_restart_case;
        windowed_restart_case;
        reelection_case;
      ]
    @ jobs_cases
end

module G_dl = (val Dl_group.dl_512 () : Group_intf.GROUP)
module G_ec = (val Ec_group.ecc_160 () : Group_intf.GROUP)
module Dl = Battery (G_dl)
module Ec = Battery (G_ec)

let () =
  Alcotest.run "restart" [ ("dl-512", Dl.cases); ("ecc-160", Ec.cases) ]

(* Tests for the extension substrates: the probabilistic top-k baseline
   (Burkhart-Dimitropoulos style), the re-encryption mix-net, and the
   Paillier cryptosystem. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_dotprod
open Ppgr_shamir

let rng = Rng.create ~seed:"test-extensions"
let f = Zfield.default ()
let bi = Bigint.of_int

let engine ?(n = 5) () =
  let e = Engine.create rng f ~n in
  Engine.reset_costs e;
  e

let topk_tests =
  let prm = Compare.default_params ~l:10 () in
  [
    Alcotest.test_case "selects the k largest (distinct values)" `Quick
      (fun () ->
        for _ = 1 to 5 do
          let n = 6 in
          (* Distinct values guarantee exact termination. *)
          let perm = Rng.permutation rng 50 in
          let vals = Array.init n (fun i -> 10 + (perm.(i) * 3)) in
          let e = engine () in
          let shared = Array.map (fun v -> Engine.input e (bi v)) vals in
          let k = 1 + Rng.int_below rng (n - 1) in
          match Topk.top_k e prm ~k shared with
          | Topk.Top_k idx ->
              Alcotest.(check int) "k results" k (List.length idx);
              (* Every selected value beats every unselected one. *)
              List.iter
                (fun i ->
                  Array.iteri
                    (fun j v ->
                      if not (List.mem j idx) then
                        Alcotest.(check bool) "dominates" true (vals.(i) > v))
                    vals)
                idx
          | Topk.Tie_at_cut _ -> Alcotest.fail "unexpected tie with distinct values"
        done);
    Alcotest.test_case "reports ties at the cut" `Quick (fun () ->
        let vals = [| 100; 100; 100; 5; 5 |] in
        let e = engine () in
        let shared = Array.map (fun v -> Engine.input e (bi v)) vals in
        (* k = 2 cannot be met exactly: three values tie above any cut. *)
        match Topk.top_k e prm ~k:2 shared with
        | Topk.Tie_at_cut (idx, count) ->
            Alcotest.(check int) "count" 3 count;
            Alcotest.(check (list int)) "tied indices" [ 0; 1; 2 ] (List.sort compare idx)
        | Topk.Top_k _ -> Alcotest.fail "tie not detected");
    Alcotest.test_case "k = n returns everyone" `Quick (fun () ->
        let vals = [| 3; 1; 4; 1 |] in
        let e = engine () in
        let shared = Array.map (fun v -> Engine.input e (bi v)) vals in
        match Topk.top_k e prm ~k:4 shared with
        | Topk.Top_k idx -> Alcotest.(check int) "all" 4 (List.length idx)
        | Topk.Tie_at_cut _ -> Alcotest.fail "k = n always succeeds");
    Alcotest.test_case "scales linearly in n (vs superlinear sort)" `Quick
      (fun () ->
        (* Multiplication counts as the input count quadruples: top-k
           should grow ~linearly, the sorting network markedly faster. *)
        let run_topk n =
          let vals = Array.init n (fun i -> 7 * (i + 1)) in
          let e = engine ~n:5 () in
          let shared = Array.map (fun v -> Engine.input e (bi v)) vals in
          ignore (Topk.top_k e prm ~k:2 shared);
          (Engine.costs e).Engine.c_mults
        in
        let run_sort n =
          let vals = Array.init n (fun i -> 7 * (i + 1)) in
          let e = engine ~n:5 () in
          let shared = Array.map (fun v -> Engine.input e (bi v)) vals in
          ignore (Ss_sort.sort e prm shared);
          (Engine.costs e).Engine.c_mults
        in
        let topk_ratio = float_of_int (run_topk 16) /. float_of_int (run_topk 4) in
        let sort_ratio = float_of_int (run_sort 16) /. float_of_int (run_sort 4) in
        Alcotest.(check bool)
          (Printf.sprintf "topk x%.1f vs sort x%.1f" topk_ratio sort_ratio)
          true
          (topk_ratio < 6. && sort_ratio > 8.));
    Alcotest.test_case "k out of range rejected" `Quick (fun () ->
        let e = engine () in
        let shared = [| Engine.input e (bi 1) |] in
        Alcotest.check_raises "bad k" (Invalid_argument "Topk.top_k: k out of range")
          (fun () -> ignore (Topk.top_k e prm ~k:2 shared)));
  ]

(* The deterministic tie-break variant used by the sharded-ranking
   merge stage: always exactly k winners, ties at the cut resolved by
   ascending input index. *)
let topk_det_tests =
  let prm = Compare.default_params ~l:10 () in
  let prop ?(count = 30) name gen f =
    QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)
  in
  (* Reference: winners of the same tie-break computed in the clear. *)
  let expected_det vals k =
    let idx = Array.to_list (Array.init (Array.length vals) Fun.id) in
    let sorted =
      (* descending value, ascending index among equals *)
      List.sort
        (fun a b ->
          if vals.(a) <> vals.(b) then compare vals.(b) vals.(a) else compare a b)
        idx
    in
    List.sort compare (List.filteri (fun i _ -> i < k) sorted)
  in
  let check_det vals k =
    let e = engine () in
    let shared = Array.map (fun v -> Engine.input e (bi v)) vals in
    Topk.top_k_det e prm ~k shared = expected_det vals k
  in
  let vals_gen =
    (* Small domain forces frequent duplicates, including at the cut. *)
    QCheck2.Gen.(
      pair
        (array_size (int_range 2 8) (int_range 0 6))
        (int_range 0 1000))
  in
  [
    prop "matches the clear tie-break on duplicate-heavy inputs" vals_gen
      (fun (vals, kseed) ->
        let k = 1 + (kseed mod Array.length vals) in
        check_det vals k);
    prop ~count:10 "all-equal inputs: lowest k indices win"
      QCheck2.Gen.(pair (int_range 2 7) (int_range 0 1000))
      (fun (n, kseed) ->
        let k = 1 + (kseed mod n) in
        let vals = Array.make n 5 in
        let e = engine () in
        let shared = Array.map (fun v -> Engine.input e (bi v)) vals in
        Topk.top_k_det e prm ~k shared = List.init k Fun.id);
    Alcotest.test_case "duplicate exactly at the cut" `Quick (fun () ->
        (* Two values tie at the cut with room for one: the lower index
           wins. *)
        let vals = [| 9; 7; 7; 3 |] in
        let e = engine () in
        let shared = Array.map (fun v -> Engine.input e (bi v)) vals in
        Alcotest.(check (list int)) "winners" [ 0; 1 ]
          (Topk.top_k_det e prm ~k:2 shared));
    Alcotest.test_case "agrees with top_k when there is no tie" `Quick
      (fun () ->
        let vals = [| 12; 44; 3; 27; 8 |] in
        let e1 = engine () and e2 = engine () in
        let sh v e = Array.map (fun x -> Engine.input e (bi x)) v in
        match Topk.top_k e1 prm ~k:3 (sh vals e1) with
        | Topk.Top_k idx ->
            Alcotest.(check (list int)) "same winners" (List.sort compare idx)
              (Topk.top_k_det e2 prm ~k:3 (sh vals e2))
        | Topk.Tie_at_cut _ -> Alcotest.fail "distinct values cannot tie");
    Alcotest.test_case "k out of range rejected" `Quick (fun () ->
        let e = engine () in
        let shared = [| Engine.input e (bi 1) |] in
        Alcotest.check_raises "bad k" (Invalid_argument "Topk.top_k: k out of range")
          (fun () -> ignore (Topk.top_k_det e prm ~k:0 shared)));
  ]

let mixnet_tests =
  let module G = (val Ppgr_group.Dl_group.dl_test_64 ()) in
  let module M = Ppgr_elgamal.Mixnet.Make (G) in
  [
    Alcotest.test_case "output is the input multiset" `Quick (fun () ->
        for trial = 1 to 5 do
          let n = 2 + Rng.int_below rng 5 in
          let messages = Array.init n (fun _ -> G.pow_gen (G.random_scalar rng)) in
          let r =
            M.collect (Rng.split rng ~label:(string_of_int trial)) messages
          in
          Alcotest.(check bool) "multiset" true
            (M.same_multiset messages r.M.plaintexts)
        done);
    Alcotest.test_case "duplicate messages survive" `Quick (fun () ->
        let m = G.pow_gen (Bigint.of_int 5) in
        let messages = [| m; m; G.pow_gen (Bigint.of_int 9) |] in
        let r = M.collect rng messages in
        Alcotest.(check bool) "multiset with dupes" true
          (M.same_multiset messages r.M.plaintexts));
    Alcotest.test_case "positions are unlinkable (distribution)" `Quick
      (fun () ->
        (* Track where sender 0's distinguished message lands over many
           runs: it must not stick to any position. *)
        let n = 4 in
        let special = G.pow_gen (Bigint.of_int 424242) in
        let counts = Array.make n 0 in
        let trials = 80 in
        for trial = 1 to trials do
          let messages =
            Array.init n (fun i ->
                if i = 0 then special else G.pow_gen (Bigint.of_int (1000 + i)))
          in
          let r =
            M.collect (Rng.split rng ~label:(Printf.sprintf "pos-%d" trial)) messages
          in
          Array.iteri
            (fun pos p -> if G.equal p special then counts.(pos) <- counts.(pos) + 1)
            r.M.plaintexts
        done;
        Alcotest.(check int) "found every time" trials (Array.fold_left ( + ) 0 counts);
        Array.iter
          (fun c ->
            Alcotest.(check bool) "no sticky position" true (c > 5 && c < 40))
          counts);
    Alcotest.test_case "needs two members" `Quick (fun () ->
        Alcotest.check_raises "n=1"
          (Invalid_argument "Mixnet.collect: need at least 2 members") (fun () ->
            ignore (M.collect rng [| G.generator |])));
  ]

let paillier_tests =
  let open Ppgr_paillier in
  let sk, pk = Paillier.keygen rng ~bits:256 in
  [
    Alcotest.test_case "encrypt/decrypt round trip" `Quick (fun () ->
        for _ = 1 to 10 do
          let m = Rng.bigint_below rng pk.Paillier.n in
          Alcotest.(check string) "roundtrip" (Bigint.to_string m)
            (Bigint.to_string (Paillier.decrypt sk (Paillier.encrypt rng pk m)))
        done);
    Alcotest.test_case "additive homomorphism" `Quick (fun () ->
        for _ = 1 to 10 do
          let a = Rng.int_below rng 1_000_000 and b = Rng.int_below rng 1_000_000 in
          let ca = Paillier.encrypt rng pk (bi a) in
          let cb = Paillier.encrypt rng pk (bi b) in
          Alcotest.(check string) "sum" (string_of_int (a + b))
            (Bigint.to_string (Paillier.decrypt sk (Paillier.add pk ca cb)))
        done);
    Alcotest.test_case "scalar multiplication and negation" `Quick (fun () ->
        let c = Paillier.encrypt rng pk (bi 111) in
        Alcotest.(check string) "scale" "777"
          (Bigint.to_string (Paillier.decrypt sk (Paillier.scale pk c (bi 7))));
        let neg = Paillier.neg pk c in
        Alcotest.(check string) "m + (-m) = 0" "0"
          (Bigint.to_string (Paillier.decrypt sk (Paillier.add pk c neg))));
    Alcotest.test_case "add_clear" `Quick (fun () ->
        let c = Paillier.encrypt rng pk (bi 40) in
        Alcotest.(check string) "40+2" "42"
          (Bigint.to_string (Paillier.decrypt sk (Paillier.add_clear pk c (bi 2)))));
    Alcotest.test_case "rerandomize keeps plaintext, changes ciphertext" `Quick
      (fun () ->
        let c = Paillier.encrypt rng pk (bi 9) in
        let c' = Paillier.rerandomize rng pk c in
        Alcotest.(check bool) "changed" false (Bigint.equal c c');
        Alcotest.(check string) "kept" "9" (Bigint.to_string (Paillier.decrypt sk c')));
    Alcotest.test_case "ciphertexts are randomized" `Quick (fun () ->
        let c1 = Paillier.encrypt rng pk (bi 5) in
        let c2 = Paillier.encrypt rng pk (bi 5) in
        Alcotest.(check bool) "distinct" false (Bigint.equal c1 c2));
    Alcotest.test_case "wraps modulo n" `Quick (fun () ->
        let m = Bigint.pred pk.Paillier.n in
        let c = Paillier.encrypt rng pk m in
        (* (n-1) + 2 = 1 mod n *)
        Alcotest.(check string) "wrap" "1"
          (Bigint.to_string (Paillier.decrypt sk (Paillier.add_clear pk c (bi 2)))));
  ]

let () =
  Alcotest.run "extensions"
    [
      ("topk", topk_tests);
      ("topk-det", topk_det_tests);
      ("mixnet", mixnet_tests);
      ("paillier", paillier_tests);
    ]

(* Exponentiation-engine tests: fixed-base tables and simultaneous
   (Shamir) exponentiation cross-checked against the naive variable-base
   path on every group family, plus a determinism regression for the
   instrumented phase-2 run. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_grouprank

let rng = Rng.create ~seed:"test-pow"

(* Exponent edge cases relative to a group order q: zero, one, q-1, q,
   above q (reduction), far above q, and negative (Euclidean wrap). *)
let edge_exponents (order : Bigint.t) =
  [
    Bigint.zero;
    Bigint.one;
    Bigint.pred order;
    order;
    Bigint.add_int order 5;
    Bigint.add (Bigint.mul_int order 2) (Bigint.of_int 3);
    Bigint.neg (Bigint.of_int 5);
    Bigint.neg (Bigint.pred order);
  ]

let engine_suite name (g : Group_intf.group) =
  let module G = (val g) in
  let module N = Group_intf.Naive (G) in
  let random_elt () = G.pow_gen (G.random_scalar rng) in
  [
    Alcotest.test_case (name ^ ": pow_table matches naive pow") `Quick (fun () ->
        let x = random_elt () in
        let tbl = G.powtable x in
        for _ = 1 to 30 do
          let e = G.random_scalar rng in
          Alcotest.(check bool) "table = naive" true
            (G.equal (G.pow_table tbl e) (N.pow x e))
        done);
    Alcotest.test_case (name ^ ": pow_table edge exponents") `Quick (fun () ->
        let x = random_elt () in
        let tbl = G.powtable x in
        List.iter
          (fun e ->
            Alcotest.(check bool)
              (Printf.sprintf "e = %s" (Bigint.to_string e))
              true
              (G.equal (G.pow_table tbl e) (N.pow x e)))
          (edge_exponents G.order));
    Alcotest.test_case (name ^ ": pow_gen matches naive generator pow") `Quick
      (fun () ->
        for _ = 1 to 20 do
          let e = G.random_scalar rng in
          Alcotest.(check bool) "fixed-base = naive" true
            (G.equal (G.pow_gen e) (N.pow_gen e))
        done;
        List.iter
          (fun e ->
            Alcotest.(check bool)
              (Printf.sprintf "gen edge e = %s" (Bigint.to_string e))
              true
              (G.equal (G.pow_gen e) (N.pow_gen e)))
          (edge_exponents G.order));
    Alcotest.test_case (name ^ ": pow2 matches product of naive pows") `Quick
      (fun () ->
        let a = random_elt () and b = random_elt () in
        for _ = 1 to 30 do
          let e = G.random_scalar rng and f = G.random_scalar rng in
          Alcotest.(check bool) "pow2 = pow*pow" true
            (G.equal (G.pow2 a e b f) (N.pow2 a e b f))
        done);
    Alcotest.test_case (name ^ ": pow2 edge exponents") `Quick (fun () ->
        let a = random_elt () and b = random_elt () in
        let edges = edge_exponents G.order in
        List.iter
          (fun e ->
            List.iter
              (fun f ->
                Alcotest.(check bool)
                  (Printf.sprintf "e = %s, f = %s" (Bigint.to_string e)
                     (Bigint.to_string f))
                  true
                  (G.equal (G.pow2 a e b f) (N.pow2 a e b f)))
              edges)
          edges);
    Alcotest.test_case (name ^ ": pow2 with identity bases") `Quick (fun () ->
        let a = random_elt () in
        let e = G.random_scalar rng and f = G.random_scalar rng in
        Alcotest.(check bool) "identity left leg" true
          (G.equal (G.pow2 G.identity e a f) (N.pow a f));
        Alcotest.(check bool) "identity right leg" true
          (G.equal (G.pow2 a e G.identity f) (N.pow a e)));
    Alcotest.test_case (name ^ ": table ops are counted") `Quick (fun () ->
        G.reset_op_count ();
        let x = random_elt () in
        let before = G.op_count () in
        let tbl = G.powtable x in
        let built = G.op_count () in
        Alcotest.(check bool) "construction ticks mul" true (built > before);
        ignore (G.pow_table tbl (G.random_scalar rng));
        Alcotest.(check bool) "evaluation ticks mul" true (G.op_count () > built));
    Alcotest.test_case (name ^ ": fixed-base cheaper than variable-base") `Quick
      (fun () ->
        (* The whole point of the engine: a table-served exponentiation
           must expand into strictly fewer group operations. *)
        let x = random_elt () in
        let tbl = G.powtable x in
        let e = G.random_scalar rng in
        G.reset_op_count ();
        ignore (G.pow_table tbl e);
        let fixed = G.op_count () in
        G.reset_op_count ();
        ignore (G.pow x e);
        let variable = G.op_count () in
        Alcotest.(check bool)
          (Printf.sprintf "fixed %d < variable %d" fixed variable)
          true (fixed < variable));
  ]

(* QCheck properties on small int exponents, where an independent
   reference (repeated squaring over ints is unnecessary — the naive
   group pow is an already-tested independent code path). *)
let engine_props =
  let module G = (val Dl_group.dl_test_64 ()) in
  let module N = Group_intf.Naive (G) in
  let x = G.pow_gen (Bigint.of_int 7) in
  let tbl = G.powtable x in
  let prop name gen f =
    QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)
  in
  [
    prop "pow_table agrees on arbitrary int exponents"
      QCheck2.Gen.(int_range 0 max_int)
      (fun e ->
        let e = Bigint.of_int e in
        G.equal (G.pow_table tbl e) (N.pow x e));
    prop "pow2 agrees on arbitrary int exponent pairs"
      QCheck2.Gen.(pair (int_range 0 max_int) (int_range 0 max_int))
      (fun (e, f) ->
        let e = Bigint.of_int e and f = Bigint.of_int f in
        G.equal (G.pow2 x e (G.pow_gen Bigint.two) f)
          (N.pow2 x e (G.pow_gen Bigint.two) f));
  ]

(* Phase-2 regression: the engine must not change what the protocol
   computes, and the instrumented counters must stay deterministic for a
   fixed RNG seed (fresh group module per run so the lazily built
   generator table is attributed identically). *)
let phase2_regression =
  let run_once () =
    let module G = (val Dl_group.dl_test_64 ()) in
    let module P2 = Phase2.Make (G) in
    let rng = Rng.create ~seed:"pow-phase2-regression" in
    let l = 12 in
    let betas =
      Array.init 6 (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l))
    in
    let r = P2.run rng ~l ~betas in
    (r.P2.ranks, r.P2.per_party_ops, r.P2.per_party_exps)
  in
  [
    Alcotest.test_case "Phase2.run is deterministic under the engine" `Quick
      (fun () ->
        let r1, o1, e1 = run_once () in
        let r2, o2, e2 = run_once () in
        Alcotest.(check (array int)) "ranks" r1 r2;
        Alcotest.(check (array int)) "per-party ops" o1 o2;
        Alcotest.(check (array int)) "per-party exps" e1 e2);
    Alcotest.test_case "Phase2 ranks agree with the naive engine" `Quick
      (fun () ->
        (* Same protocol, same RNG stream, engine on vs off: identical
           ranks prove the fused/table paths change no group math. *)
        let module G = (val Dl_group.dl_test_64 ()) in
        let module NG = Group_intf.Naive (G) in
        let module P2 = Phase2.Make (G) in
        let module P2N = Phase2.Make (NG) in
        let l = 10 in
        let mk_betas rng =
          Array.init 5 (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l))
        in
        let rng1 = Rng.create ~seed:"pow-phase2-vs-naive" in
        let fast = P2.run rng1 ~l ~betas:(mk_betas rng1) in
        let rng2 = Rng.create ~seed:"pow-phase2-vs-naive" in
        let naive = P2N.run rng2 ~l ~betas:(mk_betas rng2) in
        Alcotest.(check (array int)) "ranks" naive.P2N.ranks fast.P2.ranks);
  ]

(* The ROADMAP batch-inversion closure: building a fixed-base table
   spends exactly ONE field inversion (the Montgomery-shared
   normalization of the finished table), every entry comes out affine,
   and the normalized table computes the same function as the naive
   Jacobian path. *)
let powtable_batch_normalization =
  let module Meter = Ppgr_exec.Meter in
  [
    Alcotest.test_case "one shared inversion per table build" `Quick (fun () ->
        let cv = Ec_curve.make_curve Ec_params.secp160r1 in
        let g = Ec_curve.base_point cv in
        let bits = Bigint.numbits cv.Ec_curve.prm.Ec_curve.n in
        let before = Meter.read cv.Ec_curve.invs in
        let t = Ec_curve.make_powtable cv g ~bits in
        Alcotest.(check int) "field_invs delta" 1
          (Meter.read cv.Ec_curve.invs - before);
        (* Every entry normalized: z = 1 exactly. *)
        Array.iter
          (Array.iter (fun (pt : Ec_curve.point) ->
               Alcotest.(check bool) "entry is affine" true
                 (Ppgr_bigint.Bigint.Modring.equal cv.Ec_curve.fp
                    pt.Ec_curve.z
                    (Ppgr_bigint.Bigint.Modring.one cv.Ec_curve.fp))))
          t.Ec_curve.ptbl);
    Alcotest.test_case "normalized table = naive scalar_mul" `Quick (fun () ->
        let cv = Ec_curve.make_curve Ec_params.secp160r1 in
        let g = Ec_curve.base_point cv in
        let n = cv.Ec_curve.prm.Ec_curve.n in
        let t = Ec_curve.make_powtable cv g ~bits:(Bigint.numbits n) in
        for _ = 1 to 25 do
          let e = Bigint.succ (Rng.bigint_below rng (Bigint.pred n)) in
          Alcotest.(check bool) "same point" true
            (Ec_curve.equal cv
               (Ec_curve.scalar_mul_table cv t e)
               (Ec_curve.scalar_mul cv g e))
        done);
    Alcotest.test_case "group-level probe sees one inversion per powtable"
      `Quick (fun () ->
        (* Through the GROUP interface: the field_invs probe must tick
           exactly once when a fresh fixed-base table is built. *)
        let module G = (val Ec_group.ecc_160 ()) in
        let probe = List.assoc "field_invs" G.probes in
        let x = G.pow_gen (G.random_scalar rng) in
        let before = probe () in
        let tbl = G.powtable x in
        Alcotest.(check int) "one inversion" 1 (probe () - before);
        let e = G.random_scalar rng in
        (* pow_table itself must not invert at all. *)
        let mid = probe () in
        ignore (G.pow_table tbl e);
        Alcotest.(check int) "no inversion in pow_table" 0 (probe () - mid));
  ]

let () =
  Alcotest.run "pow-engine"
    [
      ("dl-test-64", engine_suite "DL-test-64" (Dl_group.dl_test_64 ()));
      ("dl-test-128", engine_suite "DL-test-128" (Dl_group.dl_test_128 ()));
      ("dl-1024", engine_suite "DL-1024" (Dl_group.dl_1024 ()));
      ("ecc-tiny", engine_suite "ECC-tiny" (Ec_group.ecc_tiny ()));
      ("ecc-160", engine_suite "ECC-160" (Ec_group.ecc_160 ()));
      ("props", engine_props);
      ("batch-normalization", powtable_batch_normalization);
      ("phase2-regression", phase2_regression);
    ]

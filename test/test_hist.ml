(* The log-linear histogram under the microscope: bucketing invariants,
   the advertised <= 1/32 relative quantile error against an exact
   oracle, merge algebra (associativity/commutativity down to the
   scalar lanes), and the edge cases the recorder clamps. *)

module Hist = Ppgr_obs.Hist

let with_hists f =
  Hist.set_enabled true;
  Fun.protect ~finally:(fun () -> Hist.set_enabled false) f

(* What [record] actually stores: the clamped value. *)
let clamp v = if v < 0 then 0 else if v > Hist.max_recordable then Hist.max_recordable else v

(* Exact quantile with the histogram's own rank convention:
   rank = max 1 (ceil (q*n)), 1-indexed into the sorted samples. *)
let exact_quantile values q =
  let a = Array.of_list (List.map clamp values) in
  Array.sort compare a;
  let n = Array.length a in
  let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int n))) in
  a.(rank - 1)

let value_gen =
  (* Mix magnitudes: small exact range, mid-range, and huge values near
     (and beyond) the clamp, so every bucketing regime is exercised. *)
  QCheck.Gen.(
    oneof
      [
        int_range 0 31;
        int_range 0 100_000;
        int_range 0 Hist.max_recordable;
        map (fun v -> Hist.max_recordable + v) (int_range 0 1_000_000);
        map (fun v -> -v) (int_range 0 1_000);
      ])

let values_arb = QCheck.make QCheck.Gen.(list_size (int_range 1 200) value_gen)

let record_all h values = List.iter (fun v -> Hist.record h v) values

let qtest name count arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ---- Bucketing invariants ---- *)

let bucket_suite =
  [
    qtest "bounds bracket the value, width <= lo/32" 1000
      (QCheck.make value_gen)
      (fun v ->
        let v = clamp v in
        let i = Hist.bucket_index v in
        let lo, hi = Hist.bucket_bounds i in
        lo <= v && v <= hi
        && (if v < 32 then lo = hi (* exact region *)
            else hi - lo <= lo / 32)
        && i >= 0 && i < Hist.nbuckets);
    Alcotest.test_case "bucket bounds partition [0, max_recordable]" `Quick
      (fun () ->
        (* Consecutive buckets must be adjacent: hi(i) + 1 = lo(i+1). *)
        let last = Hist.bucket_index Hist.max_recordable in
        for i = 0 to last - 1 do
          let _, hi = Hist.bucket_bounds i in
          let lo', _ = Hist.bucket_bounds (i + 1) in
          if hi + 1 <> lo' then
            Alcotest.failf "gap between bucket %d (hi=%d) and %d (lo=%d)" i hi
              (i + 1) lo'
        done;
        let lo0, _ = Hist.bucket_bounds 0 in
        Alcotest.(check int) "starts at 0" 0 lo0;
        let _, hi_last = Hist.bucket_bounds last in
        Alcotest.(check bool) "covers max_recordable" true
          (hi_last >= Hist.max_recordable));
  ]

(* ---- Quantile error bound ---- *)

let quantile_suite =
  [
    qtest "quantile overestimates by at most 1/32" 500 values_arb (fun values ->
        with_hists @@ fun () ->
        let h = Hist.create () in
        record_all h values;
        List.for_all
          (fun q ->
            let est = Hist.quantile h q in
            let exact = exact_quantile values q in
            exact <= est && est - exact <= Stdlib.max 0 (exact / 32) + 0)
          [ 0.0; 0.5; 0.9; 0.99; 1.0 ]);
    qtest "count/sum/min/max are exact" 500 values_arb (fun values ->
        with_hists @@ fun () ->
        let h = Hist.create () in
        record_all h values;
        let cl = List.map clamp values in
        Hist.count h = List.length cl
        && Hist.sum h = List.fold_left ( + ) 0 cl
        && Hist.min_value h = List.fold_left Stdlib.min max_int cl
        && Hist.max_value h = List.fold_left Stdlib.max (-1) cl);
  ]

(* ---- Merge algebra ---- *)

let fingerprint h =
  (* Everything observable: the non-empty buckets plus the scalar lanes. *)
  (Hist.buckets h, Hist.count h, Hist.sum h, Hist.min_value h, Hist.max_value h)

let of_values values =
  let h = Hist.create () in
  record_all h values;
  h

let merged hs =
  let acc = Hist.create () in
  List.iter (fun h -> Hist.merge_into ~into:acc h) hs;
  acc

let three_lists =
  QCheck.make
    QCheck.Gen.(
      triple
        (list_size (int_range 0 50) value_gen)
        (list_size (int_range 0 50) value_gen)
        (list_size (int_range 0 50) value_gen))

let merge_suite =
  [
    qtest "merge = recording the concatenation" 300 three_lists
      (fun (a, b, c) ->
        with_hists @@ fun () ->
        fingerprint (merged [ of_values a; of_values b; of_values c ])
        = fingerprint (of_values (a @ b @ c)));
    qtest "merge is associative" 300 three_lists (fun (a, b, c) ->
        with_hists @@ fun () ->
        let ha () = of_values a and hb () = of_values b and hc () = of_values c in
        let left =
          let ab = merged [ ha (); hb () ] in
          merged [ ab; hc () ]
        in
        let right =
          let bc = merged [ hb (); hc () ] in
          let acc = Hist.create () in
          Hist.merge_into ~into:acc (ha ());
          Hist.merge_into ~into:acc bc;
          acc
        in
        fingerprint left = fingerprint right);
    qtest "merge is commutative" 300 three_lists (fun (a, b, c) ->
        with_hists @@ fun () ->
        fingerprint (merged [ of_values a; of_values b; of_values c ])
        = fingerprint (merged [ of_values c; of_values a; of_values b ]));
  ]

(* ---- Edge cases ---- *)

let edge_suite =
  [
    Alcotest.test_case "empty histogram" `Quick (fun () ->
        let h = Hist.create () in
        Alcotest.(check int) "count" 0 (Hist.count h);
        Alcotest.(check int) "sum" 0 (Hist.sum h);
        Alcotest.(check int) "p50" 0 (Hist.p50 h);
        Alcotest.(check int) "p99" 0 (Hist.p99 h);
        Alcotest.(check int) "max" 0 (Hist.max_value h));
    Alcotest.test_case "single sample is every quantile" `Quick (fun () ->
        with_hists @@ fun () ->
        let h = Hist.create () in
        Hist.record h 17;
        List.iter
          (fun q ->
            Alcotest.(check int)
              (Printf.sprintf "q=%.2f" q)
              17 (Hist.quantile h q))
          [ 0.0; 0.5; 0.99; 1.0 ]);
    Alcotest.test_case "negative values clamp to bucket 0" `Quick (fun () ->
        with_hists @@ fun () ->
        let h = Hist.create () in
        Hist.record h (-5);
        Alcotest.(check int) "count" 1 (Hist.count h);
        Alcotest.(check int) "min" 0 (Hist.min_value h);
        Alcotest.(check int) "p50" 0 (Hist.p50 h));
    Alcotest.test_case "huge values clamp to max_recordable" `Quick (fun () ->
        with_hists @@ fun () ->
        let h = Hist.create () in
        Hist.record h max_int;
        Alcotest.(check int) "count" 1 (Hist.count h);
        Alcotest.(check int) "max" Hist.max_recordable (Hist.max_value h);
        Alcotest.(check bool) "p99 in the top bucket" true
          (Hist.p99 h >= Hist.max_recordable));
    Alcotest.test_case "disabled recorder is inert" `Quick (fun () ->
        Hist.set_enabled false;
        let h = Hist.create () in
        Hist.record h 42;
        Hist.record_us h 42.0;
        Alcotest.(check int) "count" 0 (Hist.count h));
    Alcotest.test_case "reset clears counts and scalars" `Quick (fun () ->
        with_hists @@ fun () ->
        let h = Hist.create () in
        Hist.record h 1;
        Hist.record h 1_000_000;
        Hist.reset h;
        Alcotest.(check int) "count" 0 (Hist.count h);
        Alcotest.(check int) "sum" 0 (Hist.sum h);
        Alcotest.(check int) "max" 0 (Hist.max_value h));
    Alcotest.test_case "registry reset_all covers registered histograms"
      `Quick (fun () ->
        with_hists @@ fun () ->
        let h = Hist.create () in
        Hist.register ~name:"test-hist-tmp" h;
        Fun.protect ~finally:(fun () -> Hist.unregister ~name:"test-hist-tmp")
        @@ fun () ->
        Hist.record h 9;
        Hist.reset_all ();
        Alcotest.(check int) "cleared" 0 (Hist.count h));
  ]

let () =
  Alcotest.run "hist"
    [
      ("buckets", bucket_suite);
      ("quantiles", quantile_suite);
      ("merge", merge_suite);
      ("edges", edge_suite);
    ]

(* Observability layer: span tracer semantics, probe-delta attribution
   against the global meters, exporter golden shapes, and the golden
   transcript pins that prove the hoisted Rng.split labels are
   byte-identical to the old Printf-formatted ones. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_grouprank
module Trace = Ppgr_obs.Trace
module Metrics = Ppgr_obs.Metrics
module Export = Ppgr_obs.Export
module Summary = Ppgr_obs.Summary
module Pool = Ppgr_exec.Pool

let hash_string s =
  Bytes.to_string (Ppgr_hash.Sha256.digest_string s)
  |> String.to_seq
  |> Seq.map (fun c -> Printf.sprintf "%02x" (Char.code c))
  |> List.of_seq |> String.concat ""

(* ---- Tracer core ---- *)

let span_name (sp : Trace.span) = sp.Trace.name

let parent_name spans (sp : Trace.span) =
  if sp.Trace.parent = -1 then "-"
  else
    match
      List.find_opt (fun (p : Trace.span) -> p.Trace.id = sp.Trace.parent) spans
    with
    | Some p -> p.Trace.name
    | None -> "?"

let tracer_suite =
  [
    Alcotest.test_case "nesting and ordering" `Quick (fun () ->
        let (), spans =
          Trace.capture (fun () ->
              Trace.with_span "a" (fun () ->
                  Trace.with_span "b" (fun () -> Trace.instant "c");
                  Trace.with_span "d" (fun () -> ())))
        in
        Alcotest.(check (list string))
          "names in open order" [ "a"; "b"; "c"; "d" ] (List.map span_name spans);
        Alcotest.(check (list string))
          "parents" [ "-"; "a"; "b"; "a" ]
          (List.map (parent_name spans) spans));
    Alcotest.test_case "disabled tracer records nothing" `Quick (fun () ->
        Trace.reset ();
        Trace.set_enabled false;
        let hits = ref 0 in
        Trace.with_span "quiet" (fun () -> incr hits);
        Trace.instant "quiet2";
        Trace.add_attr "x" (Trace.Int 1);
        Trace.bump_attr "x" 1;
        Alcotest.(check int) "body ran" 1 !hits;
        Alcotest.(check int) "no spans" 0 (Trace.span_count ()));
    Alcotest.test_case "span closes on exception" `Quick (fun () ->
        let (), spans =
          Trace.capture (fun () ->
              try Trace.with_span "boom" (fun () -> failwith "x")
              with Failure _ -> ())
        in
        Alcotest.(check (list string)) "recorded" [ "boom" ] (List.map span_name spans));
    Alcotest.test_case "attrs and bump_attr accumulate" `Quick (fun () ->
        let (), spans =
          Trace.capture (fun () ->
              Trace.with_span ~attrs:[ ("k", Trace.Int 7) ] "s" (fun () ->
                  Trace.bump_attr "bytes" 10;
                  Trace.bump_attr "bytes" 5))
        in
        let sp = List.hd spans in
        Alcotest.(check bool) "k kept" true
          (List.assoc_opt "k" sp.Trace.attrs = Some (Trace.Int 7));
        Alcotest.(check bool) "bytes summed" true
          (List.assoc_opt "bytes" sp.Trace.attrs = Some (Trace.Int 15)));
    Alcotest.test_case "probe deltas attach to spans" `Quick (fun () ->
        let counter = ref 0 in
        Metrics.register ~name:"ticks" (fun () -> !counter);
        Fun.protect ~finally:(fun () -> Metrics.unregister ~name:"ticks")
        @@ fun () ->
        let (), spans =
          Trace.capture (fun () ->
              Trace.with_span "work" (fun () -> counter := !counter + 3);
              Trace.with_span "idle" (fun () -> ()))
        in
        let attr name sp = List.assoc_opt name sp.Trace.attrs in
        let work = List.find (fun sp -> span_name sp = "work") spans in
        let idle = List.find (fun sp -> span_name sp = "idle") spans in
        Alcotest.(check bool) "delta on work" true
          (attr "ticks" work = Some (Trace.Int 3));
        Alcotest.(check bool) "zero delta omitted" true (attr "ticks" idle = None));
  ]

(* ---- Same span set at any job count ---- *)

let dim_attrs (sp : Trace.span) =
  List.filter
    (fun (k, _) -> List.mem k Summary.dimension_keys)
    sp.Trace.attrs

(* A span's job-count-independent fingerprint: name, parent name, and
   dimension attributes (timestamps, slots and metric deltas may
   differ only in how they split across lanes — the set must not). *)
let fingerprints spans =
  List.sort compare
    (List.map
       (fun sp -> (span_name sp, parent_name spans sp, List.sort compare (dim_attrs sp)))
       spans)

let phase2_spans jobs =
  Pool.set_jobs jobs;
  let module G = (val Dl_group.dl_test_64 ()) in
  let module P2 = Phase2.Make (G) in
  let rng = Rng.create ~seed:"obs-jobs" in
  let l = 8 in
  let betas = Array.init 5 (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l)) in
  let r, spans = Trace.capture (fun () -> P2.run rng ~l ~betas) in
  Pool.set_jobs 1;
  (r.P2.ranks, fingerprints spans)

let jobs_suite =
  [
    Alcotest.test_case "jobs=1 and jobs=4 record the same span set" `Quick
      (fun () ->
        let ranks1, f1 = phase2_spans 1 in
        let ranks4, f4 = phase2_spans 4 in
        Alcotest.(check (array int)) "same ranks" ranks1 ranks4;
        Alcotest.(check int) "same span count" (List.length f1) (List.length f4);
        Alcotest.(check bool) "same fingerprints" true (f1 = f4));
  ]

(* ---- Attribution: span deltas tile the run exactly ---- *)

let attribution_suite =
  [
    Alcotest.test_case "phase2 span deltas sum to the global meters" `Quick
      (fun () ->
        let module G = (val Dl_group.dl_test_64 ()) in
        let module P2 = Phase2.Make (G) in
        Metrics.register ~name:"exps" (fun () -> Opmeter.count ());
        Metrics.register ~name:"group_mults" (fun () -> G.op_count ());
        Fun.protect ~finally:(fun () ->
            Metrics.unregister ~name:"exps";
            Metrics.unregister ~name:"group_mults")
        @@ fun () ->
        let rng = Rng.create ~seed:"obs-attr" in
        let l = 8 in
        let betas =
          Array.init 4 (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l))
        in
        let exps0 = Opmeter.count () in
        let mults0 = G.op_count () in
        let r, spans = Trace.capture (fun () -> P2.run rng ~l ~betas) in
        let rows = Summary.rows spans in
        Alcotest.(check int) "exps" (Opmeter.count () - exps0)
          (Summary.total rows "exps");
        Alcotest.(check int) "group mults" (G.op_count () - mults0)
          (Summary.total rows "group_mults");
        Alcotest.(check int) "bytes"
          (Cost.total_bytes r.P2.schedule)
          (Summary.total rows "bytes_out");
        (* The per-party deltas the table reports are the same ones the
           result record reports. *)
        Alcotest.(check int) "per-party exps agree"
          (Array.fold_left ( + ) 0 r.P2.per_party_exps)
          (Summary.total rows "exps"));
    Alcotest.test_case "runtime per-party wire tallies sum to the total" `Quick
      (fun () ->
        let module G = (val Dl_group.dl_test_64 ()) in
        let module R = Runtime.Make (G) in
        let rng = Rng.create ~seed:"obs-runtime" in
        let l = 6 in
        let betas = Array.map Bigint.of_int [| 3; 9; 1; 14 |] in
        let s, spans = Trace.capture (fun () -> R.run rng ~l ~betas) in
        Alcotest.(check int) "party_sent sums"
          s.R.bytes_on_wire
          (Array.fold_left ( + ) 0 s.R.party_sent);
        Alcotest.(check int) "party_received sums"
          s.R.bytes_on_wire
          (Array.fold_left ( + ) 0 s.R.party_received);
        let rows = Summary.rows spans in
        Alcotest.(check int) "wire spans sum to bytes_on_wire"
          s.R.bytes_on_wire
          (Summary.total rows "bytes_out");
        Alcotest.(check (array int)) "ranks sane" [| 3; 2; 4; 1 |] s.R.ranks);
  ]

(* ---- Exporters: golden shapes on a hand-built trace ---- *)

let golden_spans () =
  let (), spans =
    Trace.capture (fun () ->
        Trace.with_span ~attrs:[ ("party", Trace.Int 0); ("g", Trace.Str "x\"y") ]
          "outer"
          (fun () -> Trace.instant ~attrs:[ ("ok", Trace.Bool true) ] "inner"))
  in
  (* Pin the timestamps so the rendered strings are exact. *)
  List.iteri
    (fun i (sp : Trace.span) -> sp.Trace.dur_us <- float_of_int (10 * (i + 1)))
    spans;
  match spans with
  | [ outer; inner ] ->
      [
        { outer with Trace.start_us = 100.; dur_us = outer.Trace.dur_us };
        { inner with Trace.start_us = 105.; dur_us = inner.Trace.dur_us };
      ]
  | _ -> Alcotest.fail "expected exactly two spans"

let exporter_suite =
  [
    Alcotest.test_case "chrome trace golden" `Quick (fun () ->
        let spans = golden_spans () in
        let outer = List.nth spans 0 and inner = List.nth spans 1 in
        let expect =
          Printf.sprintf
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\
             {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"main\"}},\n\
             {\"name\":\"outer\",\"cat\":\"ppgr\",\"ph\":\"X\",\"ts\":100.0,\"dur\":10.0,\"pid\":0,\"tid\":0,\"args\":{\"span_id\":%d,\"parent\":-1,\"party\":0,\"g\":\"x\\\"y\"}},\n\
             {\"name\":\"inner\",\"cat\":\"ppgr\",\"ph\":\"X\",\"ts\":105.0,\"dur\":20.0,\"pid\":0,\"tid\":0,\"args\":{\"span_id\":%d,\"parent\":%d,\"ok\":true}}\n\
             ]}\n"
            outer.Trace.id inner.Trace.id outer.Trace.id
        in
        Alcotest.(check string) "chrome" expect (Export.chrome_string spans));
    Alcotest.test_case "jsonl golden" `Quick (fun () ->
        let spans = golden_spans () in
        let outer = List.nth spans 0 and inner = List.nth spans 1 in
        let expect =
          Printf.sprintf
            "{\"name\":\"outer\",\"id\":%d,\"parent\":-1,\"slot\":0,\"ts_us\":100.0,\"dur_us\":10.0,\"attrs\":{\"party\":0,\"g\":\"x\\\"y\"}}\n\
             {\"name\":\"inner\",\"id\":%d,\"parent\":%d,\"slot\":0,\"ts_us\":105.0,\"dur_us\":20.0,\"attrs\":{\"ok\":true}}\n"
            outer.Trace.id inner.Trace.id outer.Trace.id
        in
        Alcotest.(check string) "jsonl" expect (Export.jsonl_string spans));
    Alcotest.test_case "summary table sums and renders" `Quick (fun () ->
        let (), spans =
          Trace.capture (fun () ->
              Trace.instant
                ~attrs:[ ("party", Trace.Int 0); ("bytes_out", Trace.Int 10) ]
                "w";
              Trace.instant
                ~attrs:[ ("party", Trace.Int 0); ("bytes_out", Trace.Int 7) ]
                "w";
              Trace.instant
                ~attrs:[ ("party", Trace.Int 1); ("bytes_out", Trace.Int 5) ]
                "w")
        in
        let rows = Summary.rows spans in
        Alcotest.(check int) "two rows" 2 (List.length rows);
        Alcotest.(check int) "sum" 22 (Summary.total rows "bytes_out");
        let collapsed = Summary.by_phase rows in
        Alcotest.(check int) "one phase" 1 (List.length collapsed);
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "table mentions TOTAL" true
          (contains (Summary.to_string rows) "TOTAL"));
  ]

(* ---- Netsim per-edge tallies (hand-computed on a 3-node line) ---- *)

let netsim_suite =
  [
    Alcotest.test_case "per-edge and per-party tallies" `Quick (fun () ->
        let open Ppgr_mpcnet in
        let link = { Topology.bandwidth_bps = 8_000_000.; latency_s = 0.010 } in
        let topo = Topology.of_edges ~nodes:3 ~link [ (0, 1); (1, 2) ] in
        let placement = [| 0; 1; 2 |] in
        (* 0->2 crosses both links; 1->0 one link; 2->2 no link. *)
        let sched =
          [
            {
              Netsim.compute_s = 0.;
              messages =
                [
                  { Netsim.src = 0; dst = 2; bytes = 1000 };
                  { Netsim.src = 1; dst = 0; bytes = 300 };
                  { Netsim.src = 2; dst = 2; bytes = 77 };
                ];
            };
          ]
        in
        let st = Netsim.run topo ~placement sched in
        Alcotest.(check int) "bytes_sent" 1377 st.Netsim.bytes_sent;
        Alcotest.(check (array int)) "party out" [| 1000; 300; 77 |]
          st.Netsim.party_bytes_out;
        Alcotest.(check (array int)) "party in" [| 300; 0; 1077 |]
          st.Netsim.party_bytes_in;
        let edge u v =
          List.find_opt
            (fun (e : Netsim.edge_traffic) ->
              e.Netsim.node_from = u && e.Netsim.node_to = v)
            st.Netsim.edges
        in
        let check_edge u v bytes msgs =
          match edge u v with
          | Some e ->
              Alcotest.(check int) "edge bytes" bytes e.Netsim.edge_bytes;
              Alcotest.(check int) "edge msgs" msgs e.Netsim.edge_messages
          | None -> Alcotest.failf "edge %d->%d missing" u v
        in
        (* The 0->2 message is store-and-forward over 0->1 then 1->2. *)
        check_edge 0 1 1000 1;
        check_edge 1 2 1000 1;
        check_edge 1 0 300 1;
        Alcotest.(check int) "exactly the traffic-bearing links" 3
          (List.length st.Netsim.edges));
  ]

(* ---- Observability under faults: the summary still tiles, and
   retransmitted bytes are first-class citizens of the per-link
   tallies ---- *)

module G_faults = (val Dl_group.dl_test_64 ())
module R = Runtime.Make (G_faults)

let faults_suite =
  let run_traced spec_str =
    let rng = Rng.create ~seed:"obs-faults" in
    let betas = Array.map Bigint.of_int [| 3; 9; 1; 14 |] in
    let faults = Ppgr_mpcnet.Faultplan.spec_of_string spec_str in
    Trace.capture (fun () -> R.run ~faults rng ~l:6 ~betas)
  in
  (* No reorder in the mix: reordered envelopes can outlive their
     protocol step (link limbo), which is exactly what would make exact
     per-step tiling impossible to assert. *)
  let spec = "drop=0.1,corrupt=0.1,dup=0.1,delay=0.2,maxdelay=4,seed=obs" in
  [
    Alcotest.test_case "summary tiles logical and physical bytes" `Quick
      (fun () ->
        let s, spans = run_traced spec in
        let rows = Summary.rows spans in
        (* The logical tiling of PR 4 must survive the lossy transport:
           wire instants still sum to bytes_on_wire exactly. *)
        Alcotest.(check int) "logical bytes_out tile"
          s.R.bytes_on_wire
          (Summary.total rows "bytes_out");
        Alcotest.(check int) "logical bytes_in tile"
          s.R.bytes_on_wire
          (Summary.total rows "bytes_in");
        (* And the physical level tiles too: every envelope byte,
           retransmissions included, attributed to some (step, party). *)
        Alcotest.(check int) "physical bytes_out tile"
          s.R.phys_bytes
          (Summary.total rows "phys_out");
        Alcotest.(check int) "physical bytes_in tile"
          s.R.phys_bytes
          (Summary.total rows "phys_in");
        Alcotest.(check bool) "schedule was actually hostile" true
          (s.R.retransmits > 0);
        Alcotest.(check bool) "physical exceeds logical" true
          (s.R.phys_bytes > s.R.bytes_on_wire))
    ;
    Alcotest.test_case "retry markers tile the injected faults" `Quick
      (fun () ->
        let s, spans = run_traced spec in
        let rows = Summary.rows spans in
        let injected =
          List.fold_left (fun a (_, c) -> a + c) 0 s.R.faults_injected
        in
        Alcotest.(check bool) "faults injected" true (injected > 0);
        (* One runtime.retry instant with retries=1 per fault event. *)
        Alcotest.(check int) "retries tile" injected
          (Summary.total rows "retries"));
    Alcotest.test_case "retransmitted bytes show in netsim link tallies"
      `Quick (fun () ->
        let open Ppgr_mpcnet in
        let s_clean, _ = run_traced "seed=clean" in
        let s_faulty, _ = run_traced spec in
        let link = { Topology.bandwidth_bps = 8e6; latency_s = 0.002 } in
        let topo =
          Topology.of_edges ~nodes:4 ~link [ (0, 1); (1, 2); (2, 3); (3, 0) ]
        in
        let placement = [| 0; 1; 2; 3 |] in
        let replay st = Netsim.run topo ~placement st.R.net_rounds in
        let net_clean = replay s_clean and net_faulty = replay s_faulty in
        (* The physical schedule replays byte-exactly. *)
        Alcotest.(check int) "clean bytes" s_clean.R.phys_bytes
          net_clean.Netsim.bytes_sent;
        Alcotest.(check int) "faulty bytes" s_faulty.R.phys_bytes
          net_faulty.Netsim.bytes_sent;
        Alcotest.(check (array int)) "faulty per-party out"
          s_faulty.R.phys_party_sent net_faulty.Netsim.party_bytes_out;
        Alcotest.(check (array int)) "faulty per-party in"
          s_faulty.R.phys_party_received net_faulty.Netsim.party_bytes_in;
        (* Retransmissions are visible: the hostile run moves strictly
           more bytes over the links than the clean one. *)
        Alcotest.(check bool) "links carry the retransmissions" true
          (net_faulty.Netsim.bytes_sent > net_clean.Netsim.bytes_sent);
        let edge_total st =
          List.fold_left
            (fun a (e : Netsim.edge_traffic) -> a + e.Netsim.edge_bytes)
            0 st.Netsim.edges
        in
        Alcotest.(check bool) "per-edge tallies grow too" true
          (edge_total net_faulty > edge_total net_clean));
    Alcotest.test_case "clean transport is envelope-exact" `Quick (fun () ->
        let s, _ = run_traced "seed=clean" in
        Alcotest.(check int) "phys = logical + envelopes"
          (s.R.bytes_on_wire + (s.R.messages * Wire.envelope_overhead))
          s.R.phys_bytes;
        Alcotest.(check int) "one physical message per logical" s.R.messages
          s.R.phys_messages);
  ]

(* ---- PR 8 telemetry: flow arrows, Prometheus exposition, and the
   proof that switching telemetry on cannot change the protocol ---- *)

module Hist = Ppgr_obs.Hist

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let obsv2_spec = "drop=0.1,corrupt=0.1,dup=0.1,delay=0.2,maxdelay=4,seed=obsv2"

(* One faulty run, telemetry on or off.  [on] means the full stack:
   span capture, histograms, causal ledger. *)
let run_obsv2 ~telemetry () =
  let rng = Rng.create ~seed:"obsv2-inv" in
  let betas = Array.map Bigint.of_int [| 3; 9; 1; 14 |] in
  let faults = Ppgr_mpcnet.Faultplan.spec_of_string obsv2_spec in
  if telemetry then begin
    Hist.set_enabled true;
    Fun.protect ~finally:(fun () -> Hist.set_enabled false) @@ fun () ->
    let s, _ = Trace.capture (fun () -> R.run ~faults rng ~l:6 ~betas) in
    s
  end
  else R.run ~faults rng ~l:6 ~betas

let obsv2_suite =
  [
    Alcotest.test_case "chrome flow arrows extend the golden exactly" `Quick
      (fun () ->
        let spans = golden_spans () in
        let flow =
          {
            Export.flow_name = "msg.compare";
            flow_id = 3;
            flow_src_slot = 0;
            flow_dst_slot = 1;
            flow_send_us = 101.;
            flow_recv_us = 106.5;
            flow_args = [ ("src", Trace.Int 0) ];
          }
        in
        let base = Export.chrome_string spans in
        let tail = "\n]}\n" in
        let trunk = String.sub base 0 (String.length base - String.length tail) in
        let expect =
          trunk
          ^ ",\n\
             {\"name\":\"msg.compare\",\"cat\":\"ppgr.flow\",\"ph\":\"s\",\"id\":3,\"pid\":0,\"tid\":0,\"ts\":101.0,\"args\":{\"src\":0}},\n\
             {\"name\":\"msg.compare\",\"cat\":\"ppgr.flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":3,\"pid\":0,\"tid\":1,\"ts\":106.5,\"args\":{\"src\":0}}"
          ^ tail
        in
        Alcotest.(check string) "chrome + flows"
          expect
          (Export.chrome_string ~flows:[ flow ] spans);
        (* No flows — byte-identical to the PR 4 exporter. *)
        Alcotest.(check string) "empty flows is the old golden" base
          (Export.chrome_string ~flows:[] spans));
    Alcotest.test_case "prometheus exposition golden families" `Quick
      (fun () ->
        Hist.set_enabled true;
        let h = Hist.create () in
        Hist.register ~name:"tq.x" h;
        Metrics.register ~name:"tq-probe" (fun () -> 7);
        Fun.protect ~finally:(fun () ->
            Hist.set_enabled false;
            Hist.unregister ~name:"tq.x";
            Metrics.unregister ~name:"tq-probe")
        @@ fun () ->
        Hist.record h 5;
        Hist.record h 40;
        let out = Export.prometheus_string () in
        Alcotest.(check bool) "counter family" true
          (contains out "# TYPE ppgr_tq_probe counter\nppgr_tq_probe 7\n");
        Alcotest.(check bool) "histogram family (cumulative buckets)" true
          (contains out
             "# TYPE ppgr_tq_x histogram\n\
              ppgr_tq_x_bucket{le=\"5\"} 1\n\
              ppgr_tq_x_bucket{le=\"40\"} 2\n\
              ppgr_tq_x_bucket{le=\"+Inf\"} 2\n\
              ppgr_tq_x_sum 45\n\
              ppgr_tq_x_count 2\n"));
    Alcotest.test_case "telemetry leaves the transcript untouched" `Quick
      (fun () ->
        let off = run_obsv2 ~telemetry:false () in
        let on = run_obsv2 ~telemetry:true () in
        Alcotest.(check string) "same physical transcript"
          off.R.transcript_sha on.R.transcript_sha;
        Alcotest.(check (array int)) "same ranks" off.R.ranks on.R.ranks;
        Alcotest.(check int) "same retransmits" off.R.retransmits
          on.R.retransmits);
    Alcotest.test_case "causal ledger is complete and causal" `Quick
      (fun () ->
        let off = run_obsv2 ~telemetry:false () in
        Alcotest.(check int) "no tracing, no ledger" 0
          (List.length off.R.flows);
        let on = run_obsv2 ~telemetry:true () in
        Alcotest.(check int) "one flow per logical message" on.R.messages
          (List.length on.R.flows);
        List.iter
          (fun (f : Transport.flow) ->
            if f.Transport.fl_recv_us < f.Transport.fl_send_us then
              Alcotest.failf "flow %s seq=%d received before sent"
                f.Transport.fl_step f.Transport.fl_seq;
            if f.Transport.fl_step = "" then
              Alcotest.fail "flow missing its protocol step")
          on.R.flows);
    Alcotest.test_case "summary table carries env_bytes and retransmits"
      `Quick (fun () ->
        (* Satellite of §5i: the per-phase table's physical columns tile
           the transport's own counters, retransmissions included. *)
        let rng = Rng.create ~seed:"obsv2-inv" in
        let betas = Array.map Bigint.of_int [| 3; 9; 1; 14 |] in
        let faults = Ppgr_mpcnet.Faultplan.spec_of_string obsv2_spec in
        let s, spans = Trace.capture (fun () -> R.run ~faults rng ~l:6 ~betas) in
        let rows = Summary.rows spans in
        Alcotest.(check bool) "run retransmitted" true (s.R.retransmits > 0);
        Alcotest.(check int) "retransmits column tiles" s.R.retransmits
          (Summary.total rows "retransmits");
        Alcotest.(check int) "env_bytes column tiles"
          (s.R.phys_messages * Wire.envelope_overhead)
          (Summary.total rows "env_bytes"));
    Alcotest.test_case "per-link tallies tile the physical counters" `Quick
      (fun () ->
        let s = run_obsv2 ~telemetry:false () in
        let sum f = List.fold_left (fun a lk -> a + f lk) 0 s.R.links in
        Alcotest.(check bool) "hostile enough to retransmit" true
          (s.R.retransmits > 0);
        Alcotest.(check int) "messages tile"
          s.R.phys_messages
          (sum (fun lk -> lk.Transport.lk_msgs));
        Alcotest.(check int) "bytes tile"
          s.R.phys_bytes
          (sum (fun lk -> lk.Transport.lk_bytes));
        Alcotest.(check int) "retransmits tile"
          s.R.retransmits
          (sum (fun lk -> lk.Transport.lk_retrans)));
  ]

(* ---- Golden transcript pins: hoisted labels are byte-identical ---- *)

(* These fingerprints were captured on the pre-hoisting code (labels
   built with Printf.sprintf inside the hot loops).  They pin every
   derived RNG stream: a changed label would shuffle the blinding
   exponents and permutations and change these values. *)

let golden_suite =
  [
    Alcotest.test_case "phase2 transcript unchanged by label hoisting" `Quick
      (fun () ->
        let module G = (val Dl_group.dl_test_64 ()) in
        let module P2 = Phase2.Make (G) in
        let rng = Rng.create ~seed:"parallel-phase2" in
        let l = 12 in
        let betas =
          Array.init 6 (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l))
        in
        let r = P2.run rng ~l ~betas in
        Alcotest.(check (array int)) "ranks" [| 4; 6; 2; 3; 1; 5 |] r.P2.ranks;
        let buf = Buffer.create 256 in
        Array.iter (fun rk -> Buffer.add_string buf (string_of_int rk ^ ";")) r.P2.ranks;
        Array.iter
          (fun flags ->
            Array.iter (fun z -> Buffer.add_char buf (if z then '1' else '0')) flags)
          r.P2.zero_flags;
        Alcotest.(check string) "transcript sha256"
          "af282f660bac014bbee7fe5f01615b33ab47e2a7211020e2e7b7645aacca02db"
          (hash_string (Buffer.contents buf)));
    Alcotest.test_case "runtime transcript unchanged by label hoisting" `Quick
      (fun () ->
        let module G = (val Dl_group.dl_test_64 ()) in
        let module R = Runtime.Make (G) in
        let rng = Rng.create ~seed:"parallel-runtime" in
        let l = 10 in
        let betas =
          Array.init 5 (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l))
        in
        let s = R.run rng ~l ~betas in
        Alcotest.(check (array int)) "ranks" [| 1; 4; 4; 2; 3 |] s.R.ranks;
        (* Framed ring hops (PR 4): each intermediate hop is one framed
           message instead of n per-set sends, and the final hop keeps
           its own set; the ranks pin above proves the RNG streams are
           untouched by the re-framing. *)
        Alcotest.(check int) "bytes on wire" 22733 s.R.bytes_on_wire;
        Alcotest.(check int) "messages" 73 s.R.messages);
    Alcotest.test_case "mixnet batch unchanged by label hoisting" `Quick
      (fun () ->
        let module G = (val Dl_group.dl_test_64 ()) in
        let module M = Ppgr_elgamal.Mixnet.Make (G) in
        let rng = Rng.create ~seed:"parallel-mixnet" in
        let messages = Array.init 6 (fun _ -> G.pow_gen (G.random_scalar rng)) in
        let mr = M.collect rng messages in
        let buf = Buffer.create 256 in
        Array.iter (fun p -> Buffer.add_bytes buf (G.to_bytes p)) mr.M.plaintexts;
        Alcotest.(check string) "batch sha256"
          "4345bd75820eee4581d2be9450d639380f6ad1e42810e13f30552b358bd386a4"
          (hash_string (Buffer.contents buf)));
  ]

let () =
  Alcotest.run "obs"
    [
      ("tracer", tracer_suite);
      ("jobs", jobs_suite);
      ("attribution", attribution_suite);
      ("exporters", exporter_suite);
      ("netsim-edges", netsim_suite);
      ("faults", faults_suite);
      ("obsv2", obsv2_suite);
      ("golden-labels", golden_suite);
    ]

(* Multicore execution layer: the domain pool's combinators, mergeable
   meters, and — the contract everything else rests on — byte-identical
   protocol results at any job count.  Every jobs=k run is compared
   against the jobs=1 run of the same seed on fresh modules. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_grouprank
module Pool = Ppgr_exec.Pool
module Meter = Ppgr_exec.Meter

(* ---- Pool combinators ---- *)

let pool_suite =
  [
    Alcotest.test_case "jobs override round-trips" `Quick (fun () ->
        Pool.set_jobs 4;
        Alcotest.(check int) "set 4" 4 (Pool.jobs ());
        Pool.set_jobs 1;
        Alcotest.(check int) "set 1" 1 (Pool.jobs ()));
    Alcotest.test_case "parallel_init matches Array.init" `Quick (fun () ->
        Pool.set_jobs 4;
        let expect = Array.init 100 (fun i -> (i * i) + 1) in
        let got = Pool.parallel_init 100 (fun i -> (i * i) + 1) in
        Pool.set_jobs 1;
        Alcotest.(check (array int)) "results in slot order" expect got);
    Alcotest.test_case "parallel_map matches Array.map" `Quick (fun () ->
        Pool.set_jobs 4;
        let a = Array.init 57 string_of_int in
        let got = Pool.parallel_map String.length a in
        Pool.set_jobs 1;
        Alcotest.(check (array int)) "lengths" (Array.map String.length a) got);
    Alcotest.test_case "parallel_for touches every disjoint slot once" `Quick
      (fun () ->
        Pool.set_jobs 4;
        let hits = Array.make 200 0 in
        Pool.parallel_for 200 (fun i -> hits.(i) <- hits.(i) + 1);
        Pool.set_jobs 1;
        Alcotest.(check (array int)) "each exactly once" (Array.make 200 1) hits);
    Alcotest.test_case "lowest-index exception wins" `Quick (fun () ->
        Pool.set_jobs 4;
        Alcotest.check_raises "first failing task's exception"
          (Failure "boom-3") (fun () ->
            ignore
              (Pool.parallel_init 64 (fun i ->
                   if i = 3 || i = 47 then failwith (Printf.sprintf "boom-%d" i)
                   else i)));
        (* The pool survives a failed batch. *)
        let ok = Pool.parallel_init 8 (fun i -> i * 2) in
        Pool.set_jobs 1;
        Alcotest.(check (array int)) "pool reusable after failure"
          (Array.init 8 (fun i -> i * 2))
          ok);
    Alcotest.test_case "nested combinators run under work stealing" `Quick
      (fun () ->
        Pool.set_jobs 4;
        let got =
          Pool.parallel_init 6 (fun i ->
              Alcotest.(check bool) "inner sees task context" true
                (Pool.in_parallel_task ());
              Array.fold_left ( + ) 0 (Pool.parallel_init 10 (fun j -> i + j)))
        in
        Pool.set_jobs 1;
        let expect = Array.init 6 (fun i -> (10 * i) + 45) in
        Alcotest.(check (array int)) "nested sums" expect got);
    Alcotest.test_case "three-deep nesting keeps slot order" `Quick (fun () ->
        Pool.set_jobs 4;
        let got =
          Pool.parallel_init 4 (fun i ->
              Pool.parallel_init 3 (fun j ->
                  Array.fold_left ( + ) 0
                    (Pool.parallel_init 5 (fun k -> (100 * i) + (10 * j) + k))))
        in
        Pool.set_jobs 1;
        let expect =
          Array.init 4 (fun i ->
              Array.init 3 (fun j ->
                  Array.fold_left ( + ) 0
                    (Array.init 5 (fun k -> (100 * i) + (10 * j) + k))))
        in
        Alcotest.(check (array (array int))) "slot-ordered sums" expect got);
    Alcotest.test_case "nested exception surfaces in the nesting task" `Quick
      (fun () ->
        Pool.set_jobs 4;
        Alcotest.check_raises "inner lowest index wins through two levels"
          (Failure "inner-2-1") (fun () ->
            ignore
              (Pool.parallel_init 8 (fun i ->
                   Array.fold_left ( + ) 0
                     (Pool.parallel_init 6 (fun j ->
                          if i = 2 && j >= 1 then
                            failwith (Printf.sprintf "inner-%d-%d" i j)
                          else j)))));
        (* The pool survives nested failures. *)
        let ok =
          Pool.parallel_init 5 (fun i ->
              Array.fold_left ( + ) 0 (Pool.parallel_init 4 (fun j -> i * j)))
        in
        Pool.set_jobs 1;
        Alcotest.(check (array int)) "reusable after nested failure"
          (Array.init 5 (fun i -> 6 * i))
          ok);
    Alcotest.test_case "uneven nested loads drain (stealing smoke)" `Quick
      (fun () ->
        (* One long task fans out a wide inner batch while the others
           finish instantly: with stealing, idle domains help the inner
           job; without it this still passes (the submitter drains its
           own job), so the check is for liveness + exactness. *)
        Pool.set_jobs 4;
        let hits = Array.make 512 0 in
        Pool.parallel_for 4 (fun i ->
            if i = 0 then
              Pool.parallel_for 512 (fun k -> hits.(k) <- hits.(k) + 1));
        Pool.set_jobs 1;
        Alcotest.(check (array int)) "each inner task exactly once"
          (Array.make 512 1) hits);
    Alcotest.test_case "meter lanes merge to the sequential count" `Quick
      (fun () ->
        Pool.set_jobs 4;
        let m = Meter.create () in
        Pool.parallel_for 500 (fun i -> Meter.add m (i mod 7));
        Pool.set_jobs 1;
        let expect = Array.fold_left ( + ) 0 (Array.init 500 (fun i -> i mod 7)) in
        Alcotest.(check int) "merged read" expect (Meter.read m);
        let s = Meter.snapshot m in
        Meter.incr m;
        Alcotest.(check int) "since snapshot" 1 (Meter.since m s);
        Meter.reset m;
        Alcotest.(check int) "reset" 0 (Meter.read m));
  ]

(* ---- Protocol-level determinism: jobs=1 vs jobs=4 ---- *)

let phase2_suite =
  let run_once jobs =
    Pool.set_jobs jobs;
    (* Fresh module per run: its op meters and generator table start
       cold, so counts are self-contained and comparable. *)
    let module G = (val Dl_group.dl_test_64 ()) in
    let module P2 = Phase2.Make (G) in
    let rng = Rng.create ~seed:"parallel-phase2" in
    let l = 12 in
    let betas =
      Array.init 6 (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l))
    in
    let r = P2.run rng ~l ~betas in
    Pool.set_jobs 1;
    ( r.P2.ranks,
      r.P2.per_party_ops,
      r.P2.per_party_exps,
      r.P2.zero_flags,
      List.map
        (fun (rd : Cost.round) ->
          ( rd.Cost.critical_ops,
            (List.length rd.Cost.messages, Cost.total_bytes [ rd ]) ))
        r.P2.schedule )
  in
  [
    Alcotest.test_case "phase-2 results identical at jobs=1 and jobs=4" `Quick
      (fun () ->
        let ra, oa, ea, za, sa = run_once 1 in
        let rb, ob, eb, zb, sb = run_once 4 in
        Alcotest.(check (array int)) "ranks" ra rb;
        Alcotest.(check (array int)) "per-party ops" oa ob;
        Alcotest.(check (array int)) "per-party exps" ea eb;
        Alcotest.(check (array (array bool)))
          "zero-flag transcript (post-permutation positions)" za zb;
        Alcotest.(check (list (pair int (pair int int))))
          "schedule (critical ops, messages, bytes per round)" sa sb)
  ]

let runtime_suite =
  let run_once jobs =
    Pool.set_jobs jobs;
    let module G = (val Dl_group.dl_test_64 ()) in
    let module R = Runtime.Make (G) in
    let rng = Rng.create ~seed:"parallel-runtime" in
    let l = 10 in
    let betas =
      Array.init 5 (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l))
    in
    let s = R.run rng ~l ~betas in
    Pool.set_jobs 1;
    (s.R.ranks, s.R.bytes_on_wire, s.R.messages)
  in
  [
    Alcotest.test_case "message-passing runtime identical at jobs=1 and jobs=4"
      `Quick (fun () ->
        let ra, ba, ma = run_once 1 in
        let rb, bb, mb = run_once 4 in
        Alcotest.(check (array int)) "ranks" ra rb;
        Alcotest.(check int) "bytes on wire" ba bb;
        Alcotest.(check int) "messages" ma mb);
  ]

let mixnet_suite =
  let run_once jobs =
    Pool.set_jobs jobs;
    let module G = (val Dl_group.dl_test_64 ()) in
    let module M = Ppgr_elgamal.Mixnet.Make (G) in
    let rng = Rng.create ~seed:"parallel-mixnet" in
    let messages = Array.init 6 (fun _ -> G.pow_gen (G.random_scalar rng)) in
    let r = M.collect rng messages in
    Pool.set_jobs 1;
    ( Array.map (fun x -> Bytes.to_string (G.to_bytes x)) r.M.plaintexts,
      Array.map (fun x -> Bytes.to_string (G.to_bytes x)) messages )
  in
  [
    Alcotest.test_case "mixnet output identical at jobs=1 and jobs=4" `Quick
      (fun () ->
        let pa, ma = run_once 1 in
        let pb, _ = run_once 4 in
        Alcotest.(check (array string))
          "plaintext batch (order included)" pa pb;
        Alcotest.(check (list string))
          "multiset of messages survives"
          (List.sort compare (Array.to_list ma))
          (List.sort compare (Array.to_list pa)));
  ]

let shamir_suite =
  let run_once jobs =
    Pool.set_jobs jobs;
    let f = Ppgr_dotprod.Zfield.default () in
    let rng = Rng.create ~seed:"parallel-shamir" in
    let e = Ppgr_shamir.Engine.create rng f ~n:5 in
    let prm = Ppgr_shamir.Compare.default_params ~l:8 () in
    let inputs = Array.init 7 (fun _ -> Rng.bigint_below rng (Bigint.of_int 200)) in
    let ranks = Ppgr_shamir.Ss_sort.rank_via_sort e prm inputs in
    let c = Ppgr_shamir.Engine.costs e in
    Pool.set_jobs 1;
    ( ranks,
      ( c.Ppgr_shamir.Engine.c_mults,
        c.Ppgr_shamir.Engine.c_rounds,
        c.Ppgr_shamir.Engine.c_elements,
        c.Ppgr_shamir.Engine.c_field_mults ) )
  in
  [
    Alcotest.test_case "shared sort identical at jobs=1 and jobs=4" `Quick
      (fun () ->
        let ra, ca = run_once 1 in
        let rb, cb = run_once 4 in
        Alcotest.(check (array int)) "ranks" ra rb;
        Alcotest.(check (pair int (pair int (pair int int))))
          "engine ledger (mults, rounds, elements, field mults)"
          (let m, r, el, fm = ca in
           (m, (r, (el, fm))))
          (let m, r, el, fm = cb in
           (m, (r, (el, fm)))));
  ]

let () =
  Alcotest.run "parallel"
    [
      ("pool", pool_suite);
      ("phase2", phase2_suite);
      ("runtime", runtime_suite);
      ("mixnet", mixnet_suite);
      ("shamir", shamir_suite);
    ]

(* Differential battery for the in-place Jacobian point operations
   (PR 7) and boundary-exponent behaviour of the group layer.

   The [_into] point ops ([double_into], [add_into], [mixed_add_into],
   [neg_into]) must agree with their allocating counterparts on every
   input class — including when the destination aliases an operand, at
   the point at infinity, and on the P + (-P) cancellation branch.  The
   exponent paths must agree with a bit-at-a-time square-and-multiply
   reference at the canonical-range boundary (0, 1, q-1, q, q+1, 2q),
   which is exactly where the [Bigint.in_range] fast path hands over to
   [erem]. *)

open Ppgr_bigint
module E = Ppgr_group.Ec_curve

let prop ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* ---- EC [_into] ops vs allocating ops ---- *)

(* Run the battery on both the toy curve (cheap, so the generators can
   afford many cases) and the paper's secp160r1. *)
let ec_into_tests (cv : E.curve) tag count =
  let n = cv.E.prm.E.n in
  let base = E.base_point cv in
  (* k = 0 yields the point at infinity, so the edge branch appears in
     every generated mix. *)
  let gen_scalar =
    QCheck2.Gen.(
      frequency
        [
          (8, map (fun k -> Bigint.of_int k) (int_range 0 1_000_000));
          (1, return Bigint.zero);
          (1, return (Bigint.pred n));
        ])
  in
  let pt_of k = E.scalar_mul cv base k in
  let name s = Printf.sprintf "%s: %s" tag s in
  [
    prop ~count (name "double_into matches double (incl. dst = p)") gen_scalar (fun k ->
        let p = pt_of k in
        let expect = E.double cv p in
        let d = E.point_alloc cv in
        E.double_into cv d p;
        let fresh_ok = E.equal cv expect d in
        E.copy_point_into cv d p;
        E.double_into cv d d;
        fresh_ok && E.equal cv expect d);
    prop ~count (name "add_into matches add (incl. aliasing)")
      QCheck2.Gen.(pair gen_scalar gen_scalar)
      (fun (j, k) ->
        let p = pt_of j and q = pt_of k in
        let expect = E.add cv p q in
        let d = E.point_alloc cv in
        E.add_into cv d p q;
        let fresh_ok = E.equal cv expect d in
        E.copy_point_into cv d p;
        E.add_into cv d d q;
        let alias1_ok = E.equal cv expect d in
        E.copy_point_into cv d q;
        E.add_into cv d p d;
        fresh_ok && alias1_ok && E.equal cv expect d);
    prop ~count (name "add_into of equal points takes the doubling branch") gen_scalar
      (fun k ->
        let p = pt_of k in
        let d = E.point_alloc cv in
        E.add_into cv d p p;
        E.equal cv (E.double cv p) d);
    prop ~count (name "P + (-P) is the point at infinity") gen_scalar (fun k ->
        let p = pt_of k in
        let d = E.point_alloc cv in
        E.neg_into cv d p;
        E.add_into cv d p d;
        let into_ok = E.is_infinity cv d in
        into_ok && E.is_infinity cv (E.add cv p (E.neg cv p)));
    prop ~count (name "neg_into matches neg (incl. dst = p)") gen_scalar (fun k ->
        let p = pt_of k in
        let expect = E.neg cv p in
        let d = E.point_alloc cv in
        E.neg_into cv d p;
        let fresh_ok = E.equal cv expect d in
        E.copy_point_into cv d p;
        E.neg_into cv d d;
        fresh_ok && E.equal cv expect d);
    prop ~count (name "mixed_add_into matches add on affine second operand")
      QCheck2.Gen.(pair gen_scalar gen_scalar)
      (fun (j, k) ->
        let p = pt_of j and q = pt_of k in
        match E.to_affine cv q with
        | None -> true (* mixed add requires z2 = 1; infinity is excluded *)
        | Some (qx, qy) ->
            let qa = E.of_affine cv qx qy in
            let expect = E.add cv p qa in
            let d = E.point_alloc cv in
            E.mixed_add_into cv d p qa;
            let fresh_ok = E.equal cv expect d in
            E.copy_point_into cv d p;
            E.mixed_add_into cv d d qa;
            fresh_ok && E.equal cv expect d);
    Alcotest.test_case (name "infinity edges") `Quick (fun () ->
        let o = E.infinity cv in
        let p = pt_of (Bigint.of_int 7) in
        let d = E.point_alloc cv in
        E.double_into cv d o;
        Alcotest.(check bool) "2*O = O" true (E.is_infinity cv d);
        E.add_into cv d o p;
        Alcotest.(check bool) "O + P = P" true (E.equal cv p d);
        E.add_into cv d p o;
        Alcotest.(check bool) "P + O = P" true (E.equal cv p d);
        E.set_infinity_into cv d;
        Alcotest.(check bool) "set_infinity_into" true (E.is_infinity cv d);
        E.neg_into cv d o;
        Alcotest.(check bool) "-O = O" true (E.is_infinity cv d));
  ]

(* ---- boundary exponents ---- *)

(* Bit-at-a-time square-and-multiply over the group's own [mul]: the
   slow, obviously-correct reference for every fast exponentiation
   path.  Exponents are reduced modulo the order first, which is the
   semantics [pow] promises. *)
let ref_pow (type a) (module G : Ppgr_group.Group_intf.GROUP with type element = a)
    (x : a) e =
  let e = Bigint.erem e G.order in
  let acc = ref G.identity and b = ref x in
  for i = 0 to Bigint.numbits e - 1 do
    if Bigint.testbit e i then acc := G.mul !acc !b;
    b := G.mul !b !b
  done;
  !acc

let boundary_tests (module G : Ppgr_group.Group_intf.GROUP) tag =
  let module GG = (val (module G : Ppgr_group.Group_intf.GROUP)) in
  let q = GG.order in
  let boundaries =
    [
      ("0", Bigint.zero);
      ("1", Bigint.one);
      ("q-1", Bigint.pred q);
      ("q", q);
      ("q+1", Bigint.succ q);
      ("2q", Bigint.add q q);
    ]
  in
  let rng = Ppgr_rng.Rng.create ~seed:("into-boundary-" ^ tag) in
  let x = GG.pow GG.generator (Bigint.succ (Ppgr_rng.Rng.bigint_below rng (Bigint.pred q))) in
  let tbl = GG.powtable x in
  let gen_boundary =
    (* k*q + d for k in 0..2 and small |d|: every exponent the
       [in_range] fast path must classify correctly, plus its
       neighbours. *)
    QCheck2.Gen.(
      let* k = int_range 0 2 in
      let* d = int_range (-2) 2 in
      let e = Bigint.add (Bigint.mul (Bigint.of_int k) q) (Bigint.of_int d) in
      return (if Bigint.sign e < 0 then Bigint.zero else e))
  in
  [
    Alcotest.test_case (tag ^ ": pow/pow_table/pow2 at canonical boundaries") `Quick
      (fun () ->
        List.iter
          (fun (lbl, e) ->
            let expect = ref_pow (module GG) x e in
            Alcotest.(check bool) ("pow " ^ lbl) true (GG.equal expect (GG.pow x e));
            Alcotest.(check bool)
              ("pow_table " ^ lbl)
              true
              (GG.equal expect (GG.pow_table tbl e));
            Alcotest.(check bool)
              ("pow2 " ^ lbl)
              true
              (GG.equal (GG.mul expect expect) (GG.pow2 x e x e)))
          boundaries);
    prop ~count:60 (tag ^ ": pow agrees with reference near k*q")
      QCheck2.Gen.(pair gen_boundary gen_boundary)
      (fun (e, f) ->
        GG.equal (ref_pow (module GG) x e) (GG.pow x e)
        && GG.equal
             (GG.mul (ref_pow (module GG) x e) (ref_pow (module GG) x f))
             (GG.pow2 x e x f));
  ]

let () =
  let tiny = E.make_curve (Ppgr_group.Ec_params.tiny ()) in
  let p160 = E.make_curve Ppgr_group.Ec_params.secp160r1 in
  Alcotest.run "into"
    [
      ("ec-into-tiny", ec_into_tests tiny "tiny" 400);
      ("ec-into-160", ec_into_tests p160 "secp160r1" 60);
      ( "boundary-dl",
        boundary_tests (module (val Ppgr_group.Dl_group.dl_test_128 ())) "DL-test-128" );
      ( "boundary-ecc",
        boundary_tests (module (val Ppgr_group.Ec_group.ecc_160 ())) "ECC-160" );
    ]

(* Differential battery: the live 61-bit magnitude engine against the
   frozen 26-bit reference ([Ppgr_bigint.Mag26_ref]), with values bridged
   across the representations as big-endian bytes.  Covers add, sub, mul,
   divmod (both the single-limb and Knuth paths), powmod (Montgomery and
   even-modulus), invmod, serialization round trips, and sign handling,
   with generators biased toward carry boundaries, all-ones byte runs and
   limb-width edges.  Also pins the alias-safety contract of the Modring
   [_into] operations. *)

open Ppgr_bigint
module R = Mag26_ref

let bi = Bigint.of_int

let to_ref (v : Bigint.t) : R.t = R.of_bytes (Bigint.to_bytes_be (Bigint.abs v))
let of_ref (r : R.t) : Bigint.t = Bigint.of_bytes_be (R.to_bytes r)

let check_bi msg expect actual =
  Alcotest.(check string) msg (Bigint.to_string expect) (Bigint.to_string actual)

(* ---- generators ---- *)

(* Non-negative values rich in carry hazards: random byte strings,
   all-ones runs (maximal carry chains), and 2^k +/- small spikes that
   straddle both the 61-bit and 26-bit limb boundaries. *)
let gen_nonneg =
  QCheck2.Gen.(
    frequency
      [
        ( 6,
          let* nbytes = int_range 0 96 in
          let* l = list_repeat nbytes (int_range 0 255) in
          return (Bigint.of_bytes_be (Bytes.of_seq (List.to_seq (List.map Char.chr l)))) );
        ( 2,
          let* nbytes = int_range 1 96 in
          return (Bigint.of_bytes_be (Bytes.make nbytes '\xff')) );
        ( 3,
          let* k = int_range 0 780 in
          let* d = int_range (-2) 2 in
          let v = Bigint.add (Bigint.nth_bit_weight k) (bi d) in
          return (if Bigint.sign v < 0 then Bigint.zero else v) );
        (1, return Bigint.zero);
      ])

let gen_signed =
  QCheck2.Gen.(
    let* v = gen_nonneg in
    let* neg = bool in
    return (if neg then Bigint.neg v else v))

let gen_pos = QCheck2.Gen.(map Bigint.succ gen_nonneg)

(* Odd modulus > 2, bounded so the reference powmod stays fast; width is
   drawn across the 61-bit limb-count boundaries (1..6 limbs). *)
let gen_odd_modulus =
  QCheck2.Gen.(
    let* k = int_range 3 340 in
    let* lo = int_range 0 (1 lsl 20) in
    return (Bigint.succ (Bigint.add (Bigint.nth_bit_weight k) (bi (2 * lo)))))

let prop ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* ---- differential properties ---- *)

let diff_props =
  [
    prop "add matches 26-bit reference" QCheck2.Gen.(pair gen_nonneg gen_nonneg) (fun (a, b) ->
        Bigint.equal (Bigint.add a b) (of_ref (R.add (to_ref a) (to_ref b))));
    prop "sub matches 26-bit reference" QCheck2.Gen.(pair gen_nonneg gen_nonneg) (fun (a, b) ->
        let hi = Bigint.max a b and lo = Bigint.min a b in
        Bigint.equal (Bigint.sub hi lo) (of_ref (R.sub (to_ref hi) (to_ref lo))));
    prop "mul matches 26-bit reference (signed)" QCheck2.Gen.(pair gen_signed gen_signed)
      (fun (a, b) ->
        let m = of_ref (R.mul (to_ref a) (to_ref b)) in
        let expect = if Bigint.sign a * Bigint.sign b < 0 then Bigint.neg m else m in
        Bigint.equal (Bigint.mul a b) expect);
    prop "divmod matches 26-bit reference (signed, truncating)"
      QCheck2.Gen.(pair gen_signed gen_signed)
      (fun (a, b) ->
        QCheck2.assume (not (Bigint.is_zero b));
        let q, r = Bigint.divmod a b in
        let rq, rr = R.divmod (to_ref a) (to_ref b) in
        let sq = Bigint.sign a * Bigint.sign b and sr = Bigint.sign a in
        let expect_q = if sq < 0 then Bigint.neg (of_ref rq) else of_ref rq in
        let expect_r = if sr < 0 then Bigint.neg (of_ref rr) else of_ref rr in
        Bigint.equal q expect_q && Bigint.equal r expect_r);
    prop "single-limb division matches reference"
      QCheck2.Gen.(pair gen_nonneg (int_range 1 ((1 lsl 31) - 1)))
      (fun (a, v) ->
        let q, r = Bigint.divmod a (bi v) in
        let rq, rr = R.divmod (to_ref a) (R.of_int v) in
        Bigint.equal q (of_ref rq) && Bigint.equal r (of_ref rr));
    prop ~count:60 "powmod matches reference (odd modulus)"
      QCheck2.Gen.(triple gen_nonneg gen_nonneg gen_odd_modulus)
      (fun (b, e, m) ->
        let e = Bigint.erem e (Bigint.nth_bit_weight 128) in
        Bigint.equal (Bigint.powmod b e m) (of_ref (R.powmod (to_ref b) (to_ref e) (to_ref m))));
    prop ~count:60 "powmod matches reference (even modulus)"
      QCheck2.Gen.(triple gen_nonneg gen_nonneg gen_pos)
      (fun (b, e, m) ->
        let m = Bigint.mul_int m 2 in
        let e = Bigint.erem e (Bigint.nth_bit_weight 64) in
        Bigint.equal (Bigint.powmod b e m) (of_ref (R.powmod (to_ref b) (to_ref e) (to_ref m))));
    prop "in_range agrees with 0 <= v < m" QCheck2.Gen.(pair gen_signed gen_pos)
      (fun (v, m) ->
        Bigint.in_range v m = (Bigint.sign v >= 0 && Bigint.compare v m < 0));
    prop ~count:120 "invmod matches reference" QCheck2.Gen.(pair gen_nonneg gen_odd_modulus)
      (fun (a, m) ->
        match R.invmod (to_ref a) (to_ref m) with
        | Some r -> Bigint.equal (Bigint.invmod a m) (of_ref r)
        | None -> (
            match Bigint.invmod a m with
            | exception Division_by_zero -> true
            | _ -> false));
    prop "mul_int agrees with general multiplication"
      QCheck2.Gen.(pair gen_signed (int_range (-(1 lsl 62)) ((1 lsl 62) - 1)))
      (fun (a, v) -> Bigint.equal (Bigint.mul_int a v) (Bigint.mul a (bi v)));
    prop "byte round trip agrees across engines" gen_nonneg (fun a ->
        let via_new = Bigint.to_bytes_be a in
        let via_ref = R.to_bytes (to_ref a) in
        Bytes.equal via_new via_ref
        && Bigint.equal a (Bigint.of_bytes_be via_new)
        && Bigint.equal a (of_ref (R.of_bytes via_ref)));
  ]

(* ---- deterministic carry/width edges ---- *)

let b61 = Bigint.nth_bit_weight 61

let edge_tests =
  [
    Alcotest.test_case "limb-boundary products" `Quick (fun () ->
        let cases =
          [
            (Bigint.pred b61, Bigint.pred b61);
            (b61, Bigint.pred b61);
            (Bigint.succ b61, Bigint.succ b61);
            (Bigint.pred (Bigint.nth_bit_weight 122), Bigint.pred (Bigint.nth_bit_weight 122));
            (Bigint.pred (Bigint.nth_bit_weight 512), Bigint.pred (Bigint.nth_bit_weight 512));
            (Bigint.of_bytes_be (Bytes.make 64 '\xff'), Bigint.of_bytes_be (Bytes.make 64 '\xff'));
          ]
        in
        List.iter
          (fun (a, b) ->
            check_bi "product" (of_ref (R.mul (to_ref a) (to_ref b))) (Bigint.mul a b))
          cases);
    Alcotest.test_case "division across both paths" `Quick (fun () ->
        let big = Bigint.pred (Bigint.nth_bit_weight 1220) in
        List.iter
          (fun d ->
            let q, r = Bigint.divmod big d in
            let rq, rr = R.divmod (to_ref big) (to_ref d) in
            check_bi "q" (of_ref rq) q;
            check_bi "r" (of_ref rr) r)
          [
            bi 3;
            bi ((1 lsl 26) - 1) (* top of the reference's limb *);
            bi ((1 lsl 31) - 1) (* top of the new single-limb fast path *);
            Bigint.succ b61 (* forces the Knuth path at 61-bit limbs *);
            Bigint.add (Bigint.nth_bit_weight 610) (bi 3);
          ]);
    Alcotest.test_case "powmod at exact limb widths" `Quick (fun () ->
        (* Odd moduli pinned at multiples of the limb width, where the
           Montgomery R and the top-limb handling are most fragile. *)
        List.iter
          (fun k ->
            let m = Bigint.add (Bigint.nth_bit_weight k) (bi 9) in
            let b = Bigint.pred m in
            let e = Bigint.sub m (bi 3) in
            check_bi
              (Printf.sprintf "width %d" k)
              (of_ref (R.powmod (to_ref b) (to_ref e) (to_ref m)))
              (Bigint.powmod b e m))
          [ 61; 62; 122; 183; 244 ]);
    Alcotest.test_case "zero and identity edges" `Quick (fun () ->
        check_bi "0 * 0" Bigint.zero (Bigint.mul Bigint.zero Bigint.zero);
        check_bi "mul_int 0" Bigint.zero (Bigint.mul_int (bi 7) 0);
        check_bi "mul_int max limb" (Bigint.mul (bi 12345) (Bigint.pred b61))
          (Bigint.mul_int (Bigint.pred b61) 12345);
        check_bi "0^0 mod m" Bigint.one (Bigint.powmod Bigint.zero Bigint.zero (bi 77));
        check_bi "0^e mod m" Bigint.zero (Bigint.powmod Bigint.zero (bi 5) (bi 77));
        check_bi "b^e mod 1" Bigint.zero (Bigint.powmod (bi 5) (bi 5) Bigint.one));
  ]

(* ---- Modring in-place operations ---- *)

let modring_tests =
  let open Bigint in
  let p = Ppgr_group.Modp_params.p_512 in
  let c = Modring.ctx ~modulus:p in
  let x = Modring.enter c (of_string "0xdeadbeefcafef00d1234567890abcdef") in
  let y = Modring.enter c (sub p (of_string "0x1337c0de8badf00d")) in
  let check_elt msg expect actual =
    Alcotest.(check string) msg (to_string (Modring.leave c expect)) (to_string (Modring.leave c actual))
  in
  [
    Alcotest.test_case "into ops match allocating ops" `Quick (fun () ->
        let d = Modring.alloc c in
        Modring.mul_into c d x y;
        check_elt "mul" (Modring.mul c x y) d;
        Modring.sqr_into c d x;
        check_elt "sqr" (Modring.sqr c x) d;
        Modring.add_into c d x y;
        check_elt "add" (Modring.add c x y) d;
        Modring.sub_into c d x y;
        check_elt "sub" (Modring.sub c x y) d;
        Modring.neg_into c d y;
        check_elt "neg" (Modring.neg c y) d;
        Modring.double_into c d y;
        check_elt "double" (Modring.double c y) d);
    Alcotest.test_case "into ops tolerate dst aliasing operands" `Quick (fun () ->
        let d = Modring.alloc c in
        Modring.copy_into c d x;
        Modring.mul_into c d d y;
        check_elt "dst = a" (Modring.mul c x y) d;
        Modring.copy_into c d y;
        Modring.mul_into c d x d;
        check_elt "dst = b" (Modring.mul c x y) d;
        Modring.copy_into c d x;
        Modring.mul_into c d d d;
        check_elt "dst = a = b" (Modring.sqr c x) d;
        Modring.copy_into c d x;
        Modring.sqr_into c d d;
        check_elt "sqr dst = a" (Modring.sqr c x) d;
        Modring.copy_into c d x;
        Modring.add_into c d d d;
        check_elt "add dst = a = b" (Modring.double c x) d;
        Modring.copy_into c d y;
        Modring.sub_into c d x d;
        check_elt "sub dst = b" (Modring.sub c x y) d;
        Modring.copy_into c d y;
        Modring.neg_into c d d;
        check_elt "neg dst = a" (Modring.neg c y) d);
    Alcotest.test_case "sqr agrees with mul on random residues" `Quick (fun () ->
        let rng = Ppgr_rng.Rng.create ~seed:"limbs-sqr" in
        for _ = 1 to 50 do
          let v = Ppgr_rng.Rng.bigint_below rng p in
          let e = Modring.enter c v in
          check_elt "sqr = mul self" (Modring.mul c e e) (Modring.sqr c e)
        done);
    Alcotest.test_case "inv_into matches invmod on random residues" `Quick (fun () ->
        let rng = Ppgr_rng.Rng.create ~seed:"limbs-inv" in
        let d = Modring.alloc c in
        for _ = 1 to 50 do
          let v = succ (Ppgr_rng.Rng.bigint_below rng (pred p)) in
          Modring.inv_into c d (Modring.enter c v);
          Alcotest.(check string) "inv" (to_string (invmod v p))
            (to_string (Modring.leave c d));
          (* Round trip: a * a^-1 = 1. *)
          Modring.mul_into c d d (Modring.enter c v);
          Alcotest.(check bool) "a * inv a = 1" true (Modring.is_one c d)
        done);
    Alcotest.test_case "inv_into tolerates dst aliasing its operand" `Quick (fun () ->
        let d = Modring.alloc c in
        Modring.copy_into c d x;
        Modring.inv_into c d d;
        check_elt "inv dst = a" (Modring.inv c x) d);
    Alcotest.test_case "inv_into raises on zero and non-coprime input" `Quick (fun () ->
        let d = Modring.alloc c in
        Modring.zero_into c d;
        Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
            Modring.inv_into c d d);
        (* Composite odd modulus 3p: a multiple of p shares a factor with
           the modulus and must be rejected exactly like [invmod]. *)
        let m3 = mul (of_int 3) p in
        let c3 = Modring.ctx ~modulus:m3 in
        let d3 = Modring.alloc c3 in
        Alcotest.check_raises "inv non-coprime" Division_by_zero (fun () ->
            Modring.inv_into c3 d3 (Modring.enter c3 p)));
  ]

let () =
  Alcotest.run "limbs"
    [
      ("differential", diff_props);
      ("edges", edge_tests);
      ("modring-into", modring_tests);
    ]

(* Wire-format tests: round trips for every message type, validating
   decode behaviour on malformed and adversarial inputs. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_dotprod
open Ppgr_grouprank

let rng = Rng.create ~seed:"test-wire"
let f = Zfield.default ()

let field_message_tests =
  [
    Alcotest.test_case "dot round 1 round trip" `Quick (fun () ->
        for _ = 1 to 10 do
          let d = 1 + Rng.int_below rng 8 and s = 2 + Rng.int_below rng 5 in
          let w = Array.init d (fun _ -> Zfield.random rng f) in
          let _, m = Dot_product.bob_round1 rng f ~w ~s in
          let m' = Wire.decode_dot_round1 (Wire.encode_dot_round1 m) in
          Alcotest.(check bool) "qx" true (m.Dot_product.qx = m'.Dot_product.qx);
          Alcotest.(check bool) "c'" true (m.Dot_product.c' = m'.Dot_product.c');
          Alcotest.(check bool) "g" true (m.Dot_product.g = m'.Dot_product.g)
        done);
    Alcotest.test_case "dot round 2 round trip" `Quick (fun () ->
        let m = { Dot_product.a = Zfield.random rng f; h = Zfield.random rng f } in
        let m' = Wire.decode_dot_round2 (Wire.encode_dot_round2 m) in
        Alcotest.(check bool) "a" true (Bigint.equal m.Dot_product.a m'.Dot_product.a);
        Alcotest.(check bool) "h" true (Bigint.equal m.Dot_product.h m'.Dot_product.h));
    Alcotest.test_case "submission round trip" `Quick (fun () ->
        let m = { Wire.sub_rank = 3; sub_info = [| 10; 255; 0; 70000 |] } in
        let m' = Wire.decode_submission (Wire.encode_submission m) in
        Alcotest.(check int) "rank" m.Wire.sub_rank m'.Wire.sub_rank;
        Alcotest.(check (array int)) "info" m.Wire.sub_info m'.Wire.sub_info);
    Alcotest.test_case "wrong tag rejected" `Quick (fun () ->
        let m = { Dot_product.a = Bigint.one; h = Bigint.two } in
        let data = Wire.encode_dot_round2 m in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Wire.decode_dot_round1 data);
             false
           with Wire.Malformed _ -> true));
    Alcotest.test_case "truncation rejected" `Quick (fun () ->
        let m = { Dot_product.a = Zfield.random rng f; h = Zfield.random rng f } in
        let data = Wire.encode_dot_round2 m in
        for cut = 0 to Bytes.length data - 1 do
          let truncated = Bytes.sub data 0 cut in
          Alcotest.(check bool) (Printf.sprintf "cut at %d" cut) true
            (try
               ignore (Wire.decode_dot_round2 truncated);
               false
             with Wire.Malformed _ -> true)
        done);
    Alcotest.test_case "trailing bytes rejected" `Quick (fun () ->
        let m = { Dot_product.a = Bigint.one; h = Bigint.two } in
        let data = Wire.encode_dot_round2 m in
        let extended = Bytes.cat data (Bytes.of_string "x") in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Wire.decode_dot_round2 extended);
             false
           with Wire.Malformed _ -> true));
  ]

(* The framed ring-hop message: payload-agnostic blob packing, so it is
   tested over arbitrary byte strings independent of any group. *)
let hop_frame_tests =
  let rejects data =
    try
      ignore (Wire.decode_hop_frame data);
      false
    with Wire.Malformed _ -> true
  in
  [
    Alcotest.test_case "round trip incl. empty payloads" `Quick (fun () ->
        let payloads =
          Array.init 6 (fun i ->
              Bytes.init (i * 7) (fun k -> Char.chr ((i + (k * 13)) land 0xFF)))
        in
        let frame = Wire.encode_hop_frame payloads in
        Alcotest.(check int) "documented size"
          (Wire.hop_frame_bytes
             (Array.to_list (Array.map Bytes.length payloads)))
          (Bytes.length frame);
        let payloads' = Wire.decode_hop_frame frame in
        Alcotest.(check int) "count" (Array.length payloads)
          (Array.length payloads');
        Array.iteri
          (fun i p -> Alcotest.(check bytes) "payload" p payloads'.(i))
          payloads);
    Alcotest.test_case "zero payloads round trip" `Quick (fun () ->
        Alcotest.(check int) "empty frame" 0
          (Array.length (Wire.decode_hop_frame (Wire.encode_hop_frame [||]))));
    Alcotest.test_case "wrong tag rejected" `Quick (fun () ->
        let frame = Wire.encode_hop_frame [| Bytes.of_string "abc" |] in
        Bytes.set frame 0 '\x12';
        Alcotest.(check bool) "raises" true (rejects frame));
    Alcotest.test_case "every truncation rejected" `Quick (fun () ->
        let frame =
          Wire.encode_hop_frame
            [| Bytes.of_string "abcdef"; Bytes.empty; Bytes.of_string "xyz" |]
        in
        for cut = 0 to Bytes.length frame - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "cut at %d" cut)
            true
            (rejects (Bytes.sub frame 0 cut))
        done);
    Alcotest.test_case "trailing bytes rejected" `Quick (fun () ->
        let frame = Wire.encode_hop_frame [| Bytes.of_string "abc" |] in
        Alcotest.(check bool) "raises" true
          (rejects (Bytes.cat frame (Bytes.of_string "x"))));
    Alcotest.test_case "lying payload length rejected" `Quick (fun () ->
        let frame = Wire.encode_hop_frame [| Bytes.of_string "abc" |] in
        (* Bump the u32 length prefix of the only payload past the end. *)
        Bytes.set frame 6 '\xFF';
        Alcotest.(check bool) "raises" true (rejects frame));
    Alcotest.test_case "cipher batches survive framing untouched" `Quick
      (fun () ->
        let module G = (val Ppgr_group.Ec_group.ecc_tiny ()) in
        let module W = Wire.Make (G) in
        let _, y = W.E.keygen rng in
        let batches =
          Array.init 4 (fun j ->
              W.encode_cipher_batch
                (Array.init (3 + j) (fun i -> W.E.encrypt_exp_int rng y (i mod 2))))
        in
        let unpacked = Wire.decode_hop_frame (Wire.encode_hop_frame batches) in
        Array.iteri
          (fun j b ->
            Alcotest.(check bytes) "identical payload bytes" b unpacked.(j);
            ignore (W.decode_cipher_batch unpacked.(j)))
          batches);
  ]

let group_message_tests (name, g) =
  let module G = (val g : Ppgr_group.Group_intf.GROUP) in
  let module W = Wire.Make (G) in
  [
    Alcotest.test_case (name ^ ": pubkey round trip") `Quick (fun () ->
        let y = G.pow_gen (G.random_scalar rng) in
        Alcotest.(check bool) "equal" true
          (G.equal y (W.decode_pubkey (W.encode_pubkey y))));
    Alcotest.test_case (name ^ ": zkp transcript round trip") `Quick (fun () ->
        let x = G.random_scalar rng in
        let y = G.pow_gen x in
        let t = W.Z.prove_interactive rng ~secret:x ~statement:y ~n_verifiers:4 in
        let t' = W.decode_zkp (W.encode_zkp t) in
        Alcotest.(check bool) "verifies after round trip" true
          (W.Z.verify_transcript ~statement:y t'));
    Alcotest.test_case (name ^ ": cipher batch round trip") `Quick (fun () ->
        let _, y = W.E.keygen rng in
        let batch =
          Array.init 9 (fun i -> W.E.encrypt_exp_int rng y (i mod 2))
        in
        let data = W.encode_cipher_batch batch in
        Alcotest.(check int) "documented size" (W.cipher_batch_bytes 9)
          (Bytes.length data);
        let batch' = W.decode_cipher_batch data in
        Array.iteri
          (fun i c ->
            Alcotest.(check bool) "c" true (G.equal c.W.E.c batch'.(i).W.E.c);
            Alcotest.(check bool) "c'" true (G.equal c.W.E.c' batch'.(i).W.E.c'))
          batch);
    Alcotest.test_case (name ^ ": corrupt element rejected") `Quick (fun () ->
        let y = G.pow_gen (G.random_scalar rng) in
        let data = W.encode_pubkey y in
        (* Flip a bit of the element encoding and expect validation to
           catch it (either wrong decode or off-group). *)
        let pos = Bytes.length data - 1 in
        Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 1));
        Alcotest.(check bool) "rejected or different" true
          (try
             let y' = W.decode_pubkey data in
             not (G.equal y y')
           with Wire.Malformed _ -> true));
  ]

let () =
  Alcotest.run "wire"
    [
      ("field-messages", field_message_tests);
      ("hop-frame", hop_frame_tests);
      ("dl", group_message_tests ("DL", Ppgr_group.Dl_group.dl_test_64 ()));
      ("ec", group_message_tests ("EC", Ppgr_group.Ec_group.ecc_tiny ()));
      ("ecc-160", group_message_tests ("ECC-160", Ppgr_group.Ec_group.ecc_160 ()));
    ]

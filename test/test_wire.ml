(* Wire-format tests: round trips for every message type, validating
   decode behaviour on malformed and adversarial inputs. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_dotprod
open Ppgr_grouprank

let rng = Rng.create ~seed:"test-wire"
let f = Zfield.default ()

let field_message_tests =
  [
    Alcotest.test_case "dot round 1 round trip" `Quick (fun () ->
        for _ = 1 to 10 do
          let d = 1 + Rng.int_below rng 8 and s = 2 + Rng.int_below rng 5 in
          let w = Array.init d (fun _ -> Zfield.random rng f) in
          let _, m = Dot_product.bob_round1 rng f ~w ~s in
          let m' = Wire.decode_dot_round1 (Wire.encode_dot_round1 m) in
          Alcotest.(check bool) "qx" true (m.Dot_product.qx = m'.Dot_product.qx);
          Alcotest.(check bool) "c'" true (m.Dot_product.c' = m'.Dot_product.c');
          Alcotest.(check bool) "g" true (m.Dot_product.g = m'.Dot_product.g)
        done);
    Alcotest.test_case "dot round 2 round trip" `Quick (fun () ->
        let m = { Dot_product.a = Zfield.random rng f; h = Zfield.random rng f } in
        let m' = Wire.decode_dot_round2 (Wire.encode_dot_round2 m) in
        Alcotest.(check bool) "a" true (Bigint.equal m.Dot_product.a m'.Dot_product.a);
        Alcotest.(check bool) "h" true (Bigint.equal m.Dot_product.h m'.Dot_product.h));
    Alcotest.test_case "submission round trip" `Quick (fun () ->
        let m = { Wire.sub_rank = 3; sub_info = [| 10; 255; 0; 70000 |] } in
        let m' = Wire.decode_submission (Wire.encode_submission m) in
        Alcotest.(check int) "rank" m.Wire.sub_rank m'.Wire.sub_rank;
        Alcotest.(check (array int)) "info" m.Wire.sub_info m'.Wire.sub_info);
    Alcotest.test_case "wrong tag rejected" `Quick (fun () ->
        let m = { Dot_product.a = Bigint.one; h = Bigint.two } in
        let data = Wire.encode_dot_round2 m in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Wire.decode_dot_round1 data);
             false
           with Wire.Malformed _ -> true));
    Alcotest.test_case "truncation rejected" `Quick (fun () ->
        let m = { Dot_product.a = Zfield.random rng f; h = Zfield.random rng f } in
        let data = Wire.encode_dot_round2 m in
        for cut = 0 to Bytes.length data - 1 do
          let truncated = Bytes.sub data 0 cut in
          Alcotest.(check bool) (Printf.sprintf "cut at %d" cut) true
            (try
               ignore (Wire.decode_dot_round2 truncated);
               false
             with Wire.Malformed _ -> true)
        done);
    Alcotest.test_case "trailing bytes rejected" `Quick (fun () ->
        let m = { Dot_product.a = Bigint.one; h = Bigint.two } in
        let data = Wire.encode_dot_round2 m in
        let extended = Bytes.cat data (Bytes.of_string "x") in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Wire.decode_dot_round2 extended);
             false
           with Wire.Malformed _ -> true));
  ]

(* The framed ring-hop message: payload-agnostic blob packing, so it is
   tested over arbitrary byte strings independent of any group. *)
let hop_frame_tests =
  let rejects data =
    try
      ignore (Wire.decode_hop_frame data);
      false
    with Wire.Malformed _ -> true
  in
  [
    Alcotest.test_case "round trip incl. empty payloads" `Quick (fun () ->
        let payloads =
          Array.init 6 (fun i ->
              Bytes.init (i * 7) (fun k -> Char.chr ((i + (k * 13)) land 0xFF)))
        in
        let frame = Wire.encode_hop_frame payloads in
        Alcotest.(check int) "documented size"
          (Wire.hop_frame_bytes
             (Array.to_list (Array.map Bytes.length payloads)))
          (Bytes.length frame);
        let payloads' = Wire.decode_hop_frame frame in
        Alcotest.(check int) "count" (Array.length payloads)
          (Array.length payloads');
        Array.iteri
          (fun i p -> Alcotest.(check bytes) "payload" p payloads'.(i))
          payloads);
    Alcotest.test_case "zero-count frame rejected" `Quick (fun () ->
        (* The runtime never ships an empty vector (n >= 2); a zero
           count on the wire is damage, not data. *)
        Alcotest.(check bool) "raises" true
          (rejects (Wire.encode_hop_frame [||])));
    Alcotest.test_case "payload length past end of frame rejected" `Quick
      (fun () ->
        let frame = Wire.encode_hop_frame [| Bytes.of_string "abcdef" |] in
        (* Inflate the first payload's u32 length beyond the buffer:
           bytes 0..2 are tag + u16 count, 3..6 the length. *)
        Bytes.set frame 3 '\xFF';
        Alcotest.(check bool) "raises" true (rejects frame));
    Alcotest.test_case "wrong tag rejected" `Quick (fun () ->
        let frame = Wire.encode_hop_frame [| Bytes.of_string "abc" |] in
        Bytes.set frame 0 '\x12';
        Alcotest.(check bool) "raises" true (rejects frame));
    Alcotest.test_case "every truncation rejected" `Quick (fun () ->
        let frame =
          Wire.encode_hop_frame
            [| Bytes.of_string "abcdef"; Bytes.empty; Bytes.of_string "xyz" |]
        in
        for cut = 0 to Bytes.length frame - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "cut at %d" cut)
            true
            (rejects (Bytes.sub frame 0 cut))
        done);
    Alcotest.test_case "trailing bytes rejected" `Quick (fun () ->
        let frame = Wire.encode_hop_frame [| Bytes.of_string "abc" |] in
        Alcotest.(check bool) "raises" true
          (rejects (Bytes.cat frame (Bytes.of_string "x"))));
    Alcotest.test_case "lying payload length rejected" `Quick (fun () ->
        let frame = Wire.encode_hop_frame [| Bytes.of_string "abc" |] in
        (* Bump the u32 length prefix of the only payload past the end. *)
        Bytes.set frame 6 '\xFF';
        Alcotest.(check bool) "raises" true (rejects frame));
    Alcotest.test_case "cipher batches survive framing untouched" `Quick
      (fun () ->
        let module G = (val Ppgr_group.Ec_group.ecc_tiny ()) in
        let module W = Wire.Make (G) in
        let _, y = W.E.keygen rng in
        let batches =
          Array.init 4 (fun j ->
              W.encode_cipher_batch
                (Array.init (3 + j) (fun i -> W.E.encrypt_exp_int rng y (i mod 2))))
        in
        let unpacked = Wire.decode_hop_frame (Wire.encode_hop_frame batches) in
        Array.iteri
          (fun j b ->
            Alcotest.(check bytes) "identical payload bytes" b unpacked.(j);
            ignore (W.decode_cipher_batch unpacked.(j)))
          batches);
  ]

let group_message_tests (name, g) =
  let module G = (val g : Ppgr_group.Group_intf.GROUP) in
  let module W = Wire.Make (G) in
  [
    Alcotest.test_case (name ^ ": pubkey round trip") `Quick (fun () ->
        let y = G.pow_gen (G.random_scalar rng) in
        Alcotest.(check bool) "equal" true
          (G.equal y (W.decode_pubkey (W.encode_pubkey y))));
    Alcotest.test_case (name ^ ": zkp transcript round trip") `Quick (fun () ->
        let x = G.random_scalar rng in
        let y = G.pow_gen x in
        let t = W.Z.prove_interactive rng ~secret:x ~statement:y ~n_verifiers:4 in
        let t' = W.decode_zkp (W.encode_zkp t) in
        Alcotest.(check bool) "verifies after round trip" true
          (W.Z.verify_transcript ~statement:y t'));
    Alcotest.test_case (name ^ ": cipher batch round trip") `Quick (fun () ->
        let _, y = W.E.keygen rng in
        let batch =
          Array.init 9 (fun i -> W.E.encrypt_exp_int rng y (i mod 2))
        in
        let data = W.encode_cipher_batch batch in
        Alcotest.(check int) "documented size" (W.cipher_batch_bytes 9)
          (Bytes.length data);
        let batch' = W.decode_cipher_batch data in
        Array.iteri
          (fun i c ->
            Alcotest.(check bool) "c" true (G.equal c.W.E.c batch'.(i).W.E.c);
            Alcotest.(check bool) "c'" true (G.equal c.W.E.c' batch'.(i).W.E.c'))
          batch);
    Alcotest.test_case (name ^ ": corrupt element rejected") `Quick (fun () ->
        let y = G.pow_gen (G.random_scalar rng) in
        let data = W.encode_pubkey y in
        (* Flip a bit of the element encoding and expect validation to
           catch it (either wrong decode or off-group). *)
        let pos = Bytes.length data - 1 in
        Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 1));
        Alcotest.(check bool) "rejected or different" true
          (try
             let y' = W.decode_pubkey data in
             not (G.equal y y')
           with Wire.Malformed _ -> true));
  ]

(* Fuzzing the full codec surface: one exemplar message per tag, then
   truncations, single-bit flips and random garbage against its decoder.
   A decoder may refuse (Wire.Malformed) or decode the damage to a
   *different* message — it must never crash with anything else, spin,
   or silently decode back to the original. *)
let fuzz_tests =
  let module G = (val Ppgr_group.Ec_group.ecc_tiny ()) in
  let module W = Wire.Make (G) in
  (* Every surface: (name, exemplar encoding, decode-then-reencode).
     The formats are canonical, so re-encoding a decode of damaged
     bytes must reproduce those damaged bytes' meaning, not the
     original's. *)
  let surfaces : (string * Bytes.t * (Bytes.t -> Bytes.t)) list =
    let dot1 =
      let w = Array.init 4 (fun _ -> Zfield.random rng f) in
      snd (Dot_product.bob_round1 rng f ~w ~s:3)
    in
    let dot2 = { Dot_product.a = Zfield.random rng f; h = Zfield.random rng f } in
    let submission = { Wire.sub_rank = 2; sub_info = [| 9; 0; 70000 |] } in
    let x = G.random_scalar rng in
    let y = G.pow_gen x in
    let zkp = W.Z.prove_interactive rng ~secret:x ~statement:y ~n_verifiers:3 in
    let batch = Array.init 5 (fun i -> W.E.encrypt_exp_int rng y (i mod 2)) in
    let frame_payloads =
      [| W.encode_cipher_batch batch; Bytes.of_string "opaque"; Bytes.empty |]
    in
    let envelope_payload = W.encode_pubkey y in
    [
      ( "dot-round1 (0x01)",
        Wire.encode_dot_round1 dot1,
        fun b -> Wire.encode_dot_round1 (Wire.decode_dot_round1 b) );
      ( "dot-round2 (0x02)",
        Wire.encode_dot_round2 dot2,
        fun b -> Wire.encode_dot_round2 (Wire.decode_dot_round2 b) );
      ( "pubkey (0x10)",
        W.encode_pubkey y,
        fun b -> W.encode_pubkey (W.decode_pubkey b) );
      ( "zkp (0x11)",
        W.encode_zkp zkp,
        fun b -> W.encode_zkp (W.decode_zkp b) );
      ( "cipher-batch (0x12)",
        W.encode_cipher_batch batch,
        fun b -> W.encode_cipher_batch (W.decode_cipher_batch b) );
      ( "hop-frame (0x13)",
        Wire.encode_hop_frame frame_payloads,
        fun b -> Wire.encode_hop_frame (Wire.decode_hop_frame b) );
      ( "envelope (0x14)",
        Wire.encode_envelope ~src:3 ~dst:1 ~seq:42 envelope_payload,
        fun b ->
          let e = Wire.decode_envelope b in
          Wire.encode_envelope ~src:e.Wire.env_src ~dst:e.Wire.env_dst
            ~seq:e.Wire.env_seq e.Wire.env_payload );
      ( "submission (0x20)",
        Wire.encode_submission submission,
        fun b -> Wire.encode_submission (Wire.decode_submission b) );
    ]
  in
  let flip_bit data i =
    let out = Bytes.copy data in
    let byte = i / 8 and bit = i mod 8 in
    Bytes.set out byte
      (Char.chr (Char.code (Bytes.get out byte) lxor (1 lsl bit)));
    out
  in
  let prop name gen p =
    QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:400 ~name gen p)
  in
  List.concat_map
    (fun (name, original, decode_reencode) ->
      let len = Bytes.length original in
      [
        Alcotest.test_case (name ^ ": every truncation rejected") `Quick
          (fun () ->
            for cut = 0 to len - 1 do
              Alcotest.(check bool)
                (Printf.sprintf "cut at %d" cut)
                true
                (try
                   ignore (decode_reencode (Bytes.sub original 0 cut));
                   false
                 with Wire.Malformed _ -> true)
            done);
        prop
          (name ^ ": single-bit flip never crashes or round-trips")
          (QCheck2.Gen.int_range 0 ((8 * len) - 1))
          (fun i ->
            match decode_reencode (flip_bit original i) with
            | exception Wire.Malformed _ -> true
            | reencoded -> not (Bytes.equal reencoded original));
        prop
          (name ^ ": random garbage never crashes")
          QCheck2.Gen.(
            (* Half the cases keep the valid tag byte so the fuzz digs
               past the first check. *)
            pair bool (string_size ~gen:char (int_range 0 (2 * len))))
          (fun (keep_tag, junk) ->
            let data = Bytes.of_string junk in
            if keep_tag && Bytes.length data > 0 && len > 0 then
              Bytes.set data 0 (Bytes.get original 0);
            match decode_reencode data with
            | exception Wire.Malformed _ -> true
            | _ -> true);
      ])
    surfaces
  @ [
      Alcotest.test_case "envelope: every single-bit flip CRC-rejected" `Quick
        (fun () ->
          (* CRC-32 detects all single-bit errors, so unlike the other
             surfaces the envelope must refuse every one of them. *)
          let env =
            Wire.encode_envelope ~src:0 ~dst:2 ~seq:9
              (Bytes.of_string "chaos-conformance-payload")
          in
          for i = 0 to (8 * Bytes.length env) - 1 do
            Alcotest.(check bool)
              (Printf.sprintf "bit %d" i)
              true
              (try
                 ignore (Wire.decode_envelope (flip_bit env i));
                 false
               with Wire.Malformed _ -> true)
          done);
      Alcotest.test_case "envelope round trip" `Quick (fun () ->
          let payload = Bytes.of_string "some payload" in
          let e =
            Wire.decode_envelope
              (Wire.encode_envelope ~src:5 ~dst:0 ~seq:77 payload)
          in
          Alcotest.(check int) "src" 5 e.Wire.env_src;
          Alcotest.(check int) "dst" 0 e.Wire.env_dst;
          Alcotest.(check int) "seq" 77 e.Wire.env_seq;
          Alcotest.(check bytes) "payload" payload e.Wire.env_payload;
          Alcotest.(check int) "documented overhead"
            (Bytes.length payload + Wire.envelope_overhead)
            (Bytes.length
               (Wire.encode_envelope ~src:5 ~dst:0 ~seq:77 payload)));
      Alcotest.test_case "cipher batch with lying count rejected" `Quick
        (fun () ->
          (* A corrupted u16 count must be caught by arithmetic, not by
             attempting a giant allocation. *)
          let module G = (val Ppgr_group.Ec_group.ecc_tiny ()) in
          let module W = Wire.Make (G) in
          let _, y = W.E.keygen rng in
          let data =
            W.encode_cipher_batch
              (Array.init 3 (fun i -> W.E.encrypt_exp_int rng y (i mod 2)))
          in
          Bytes.set data 1 '\xFF';
          Alcotest.(check bool) "raises" true
            (try
               ignore (W.decode_cipher_batch data);
               false
             with Wire.Malformed _ -> true));
    ]

let () =
  Alcotest.run "wire"
    [
      ("field-messages", field_message_tests);
      ("hop-frame", hop_frame_tests);
      ("fuzz", fuzz_tests);
      ("dl", group_message_tests ("DL", Ppgr_group.Dl_group.dl_test_64 ()));
      ("ec", group_message_tests ("EC", Ppgr_group.Ec_group.ecc_tiny ()));
      ("ecc-160", group_message_tests ("ECC-160", Ppgr_group.Ec_group.ecc_160 ()));
    ]

(* Wire-format tests: round trips for every message type, validating
   decode behaviour on malformed and adversarial inputs. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_dotprod
open Ppgr_grouprank

let rng = Rng.create ~seed:"test-wire"
let f = Zfield.default ()

let field_message_tests =
  [
    Alcotest.test_case "dot round 1 round trip" `Quick (fun () ->
        for _ = 1 to 10 do
          let d = 1 + Rng.int_below rng 8 and s = 2 + Rng.int_below rng 5 in
          let w = Array.init d (fun _ -> Zfield.random rng f) in
          let _, m = Dot_product.bob_round1 rng f ~w ~s in
          let m' = Wire.decode_dot_round1 (Wire.encode_dot_round1 m) in
          Alcotest.(check bool) "qx" true (m.Dot_product.qx = m'.Dot_product.qx);
          Alcotest.(check bool) "c'" true (m.Dot_product.c' = m'.Dot_product.c');
          Alcotest.(check bool) "g" true (m.Dot_product.g = m'.Dot_product.g)
        done);
    Alcotest.test_case "dot round 2 round trip" `Quick (fun () ->
        let m = { Dot_product.a = Zfield.random rng f; h = Zfield.random rng f } in
        let m' = Wire.decode_dot_round2 (Wire.encode_dot_round2 m) in
        Alcotest.(check bool) "a" true (Bigint.equal m.Dot_product.a m'.Dot_product.a);
        Alcotest.(check bool) "h" true (Bigint.equal m.Dot_product.h m'.Dot_product.h));
    Alcotest.test_case "submission round trip" `Quick (fun () ->
        let m = { Wire.sub_rank = 3; sub_info = [| 10; 255; 0; 70000 |] } in
        let m' = Wire.decode_submission (Wire.encode_submission m) in
        Alcotest.(check int) "rank" m.Wire.sub_rank m'.Wire.sub_rank;
        Alcotest.(check (array int)) "info" m.Wire.sub_info m'.Wire.sub_info);
    Alcotest.test_case "wrong tag rejected" `Quick (fun () ->
        let m = { Dot_product.a = Bigint.one; h = Bigint.two } in
        let data = Wire.encode_dot_round2 m in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Wire.decode_dot_round1 data);
             false
           with Wire.Malformed _ -> true));
    Alcotest.test_case "truncation rejected" `Quick (fun () ->
        let m = { Dot_product.a = Zfield.random rng f; h = Zfield.random rng f } in
        let data = Wire.encode_dot_round2 m in
        for cut = 0 to Bytes.length data - 1 do
          let truncated = Bytes.sub data 0 cut in
          Alcotest.(check bool) (Printf.sprintf "cut at %d" cut) true
            (try
               ignore (Wire.decode_dot_round2 truncated);
               false
             with Wire.Malformed _ -> true)
        done);
    Alcotest.test_case "trailing bytes rejected" `Quick (fun () ->
        let m = { Dot_product.a = Bigint.one; h = Bigint.two } in
        let data = Wire.encode_dot_round2 m in
        let extended = Bytes.cat data (Bytes.of_string "x") in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Wire.decode_dot_round2 extended);
             false
           with Wire.Malformed _ -> true));
  ]

(* The framed ring-hop message: payload-agnostic blob packing, so it is
   tested over arbitrary byte strings independent of any group. *)
let hop_frame_tests =
  let rejects data =
    try
      ignore (Wire.decode_hop_frame data);
      false
    with Wire.Malformed _ -> true
  in
  [
    Alcotest.test_case "round trip incl. empty payloads" `Quick (fun () ->
        let payloads =
          Array.init 6 (fun i ->
              Bytes.init (i * 7) (fun k -> Char.chr ((i + (k * 13)) land 0xFF)))
        in
        let frame = Wire.encode_hop_frame payloads in
        Alcotest.(check int) "documented size"
          (Wire.hop_frame_bytes
             (Array.to_list (Array.map Bytes.length payloads)))
          (Bytes.length frame);
        let payloads' = Wire.decode_hop_frame frame in
        Alcotest.(check int) "count" (Array.length payloads)
          (Array.length payloads');
        Array.iteri
          (fun i p -> Alcotest.(check bytes) "payload" p payloads'.(i))
          payloads);
    Alcotest.test_case "zero-count frame rejected" `Quick (fun () ->
        (* The runtime never ships an empty vector (n >= 2); a zero
           count on the wire is damage, not data. *)
        Alcotest.(check bool) "raises" true
          (rejects (Wire.encode_hop_frame [||])));
    Alcotest.test_case "payload length past end of frame rejected" `Quick
      (fun () ->
        let frame = Wire.encode_hop_frame [| Bytes.of_string "abcdef" |] in
        (* Inflate the first payload's u32 length beyond the buffer:
           bytes 0..2 are tag + u16 count, 3..6 the length. *)
        Bytes.set frame 3 '\xFF';
        Alcotest.(check bool) "raises" true (rejects frame));
    Alcotest.test_case "wrong tag rejected" `Quick (fun () ->
        let frame = Wire.encode_hop_frame [| Bytes.of_string "abc" |] in
        Bytes.set frame 0 '\x12';
        Alcotest.(check bool) "raises" true (rejects frame));
    Alcotest.test_case "every truncation rejected" `Quick (fun () ->
        let frame =
          Wire.encode_hop_frame
            [| Bytes.of_string "abcdef"; Bytes.empty; Bytes.of_string "xyz" |]
        in
        for cut = 0 to Bytes.length frame - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "cut at %d" cut)
            true
            (rejects (Bytes.sub frame 0 cut))
        done);
    Alcotest.test_case "trailing bytes rejected" `Quick (fun () ->
        let frame = Wire.encode_hop_frame [| Bytes.of_string "abc" |] in
        Alcotest.(check bool) "raises" true
          (rejects (Bytes.cat frame (Bytes.of_string "x"))));
    Alcotest.test_case "lying payload length rejected" `Quick (fun () ->
        let frame = Wire.encode_hop_frame [| Bytes.of_string "abc" |] in
        (* Bump the u32 length prefix of the only payload past the end. *)
        Bytes.set frame 6 '\xFF';
        Alcotest.(check bool) "raises" true (rejects frame));
    Alcotest.test_case "cipher batches survive framing untouched" `Quick
      (fun () ->
        let module G = (val Ppgr_group.Ec_group.ecc_tiny ()) in
        let module W = Wire.Make (G) in
        let _, y = W.E.keygen rng in
        let batches =
          Array.init 4 (fun j ->
              W.encode_cipher_batch
                (Array.init (3 + j) (fun i -> W.E.encrypt_exp_int rng y (i mod 2))))
        in
        let unpacked = Wire.decode_hop_frame (Wire.encode_hop_frame batches) in
        Array.iteri
          (fun j b ->
            Alcotest.(check bytes) "identical payload bytes" b unpacked.(j);
            ignore (W.decode_cipher_batch unpacked.(j)))
          batches);
  ]

let group_message_tests (name, g) =
  let module G = (val g : Ppgr_group.Group_intf.GROUP) in
  let module W = Wire.Make (G) in
  [
    Alcotest.test_case (name ^ ": pubkey round trip") `Quick (fun () ->
        let y = G.pow_gen (G.random_scalar rng) in
        Alcotest.(check bool) "equal" true
          (G.equal y (W.decode_pubkey (W.encode_pubkey y))));
    Alcotest.test_case (name ^ ": zkp transcript round trip") `Quick (fun () ->
        let x = G.random_scalar rng in
        let y = G.pow_gen x in
        let t = W.Z.prove_interactive rng ~secret:x ~statement:y ~n_verifiers:4 in
        let t' = W.decode_zkp (W.encode_zkp t) in
        Alcotest.(check bool) "verifies after round trip" true
          (W.Z.verify_transcript ~statement:y t'));
    Alcotest.test_case (name ^ ": cipher batch round trip") `Quick (fun () ->
        let _, y = W.E.keygen rng in
        let batch =
          Array.init 9 (fun i -> W.E.encrypt_exp_int rng y (i mod 2))
        in
        let data = W.encode_cipher_batch batch in
        Alcotest.(check int) "documented size" (W.cipher_batch_bytes 9)
          (Bytes.length data);
        let batch' = W.decode_cipher_batch data in
        Array.iteri
          (fun i c ->
            Alcotest.(check bool) "c" true (G.equal c.W.E.c batch'.(i).W.E.c);
            Alcotest.(check bool) "c'" true (G.equal c.W.E.c' batch'.(i).W.E.c'))
          batch);
    Alcotest.test_case (name ^ ": corrupt element rejected") `Quick (fun () ->
        let y = G.pow_gen (G.random_scalar rng) in
        let data = W.encode_pubkey y in
        (* Flip a bit of the element encoding and expect validation to
           catch it (either wrong decode or off-group). *)
        let pos = Bytes.length data - 1 in
        Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 1));
        Alcotest.(check bool) "rejected or different" true
          (try
             let y' = W.decode_pubkey data in
             not (G.equal y y')
           with Wire.Malformed _ -> true));
  ]

(* A rich checkpoint exemplar: 2-party snapshot with closed rounds, an
   in-progress round and a held reorder-limbo envelope, so the fuzz and
   regression batteries cover every section of the frame. *)
let exemplar_snap () =
  {
    Wire.ts_n = 2;
    ts_send_seq = [| [| 3; 1 |]; [| 0; 2 |] |];
    ts_recv_seq = [| [| 3; 2 |]; [| 1; 2 |] |];
    ts_counters = [| 4; 1; 1; 2; 0; 3; 9; 40; 2600; 12; 204; 55 |];
    ts_phys_sent = [| 1300; 1300 |];
    ts_phys_received = [| 1290; 1310 |];
    ts_retrans_by_src = [| 3; 1 |];
    ts_env_by_src = [| 20; 20 |];
    ts_link_msgs = [| [| 0; 20 |]; [| 20; 0 |] |];
    ts_link_bytes = [| [| 0; 1300 |]; [| 1300; 0 |] |];
    ts_link_retrans = [| [| 0; 3 |]; [| 1; 0 |] |];
    ts_fault_draws = [| [| 0; 22 |]; [| 21; 0 |] |];
    ts_digest = Bytes.init 32 (fun i -> Char.chr (i * 5 land 0xFF));
    ts_step = "encrypt";
    ts_rounds = [ ("announce", [ (0, 1, 120); (1, 0, 120) ]) ];
    ts_round = [ (0, 1, 64) ];
    ts_limbo = [ (1, [ Bytes.of_string "held-envelope" ]) ];
  }

let exemplar_checkpoint () =
  {
    Wire.ck_step = 2;
    ck_n = 2;
    ck_bytes_total = 1234;
    ck_msg_total = 7;
    ck_sent = [| 600; 634 |];
    ck_received = [| 634; 600 |];
    ck_enc = [| Bytes.of_string "enc-a"; Bytes.of_string "enc-b" |];
    ck_v = [||];
    ck_snap = exemplar_snap ();
  }

(* Fuzzing the full codec surface: one exemplar message per tag, then
   truncations, single-bit flips and random garbage against its decoder.
   A decoder may refuse (Wire.Malformed) or decode the damage to a
   *different* message — it must never crash with anything else, spin,
   or silently decode back to the original. *)
let fuzz_tests =
  let module G = (val Ppgr_group.Ec_group.ecc_tiny ()) in
  let module W = Wire.Make (G) in
  (* Every surface: (name, exemplar encoding, decode-then-reencode).
     The formats are canonical, so re-encoding a decode of damaged
     bytes must reproduce those damaged bytes' meaning, not the
     original's. *)
  let surfaces : (string * Bytes.t * (Bytes.t -> Bytes.t)) list =
    let dot1 =
      let w = Array.init 4 (fun _ -> Zfield.random rng f) in
      snd (Dot_product.bob_round1 rng f ~w ~s:3)
    in
    let dot2 = { Dot_product.a = Zfield.random rng f; h = Zfield.random rng f } in
    let submission = { Wire.sub_rank = 2; sub_info = [| 9; 0; 70000 |] } in
    let x = G.random_scalar rng in
    let y = G.pow_gen x in
    let zkp = W.Z.prove_interactive rng ~secret:x ~statement:y ~n_verifiers:3 in
    let batch = Array.init 5 (fun i -> W.E.encrypt_exp_int rng y (i mod 2)) in
    let frame_payloads =
      [| W.encode_cipher_batch batch; Bytes.of_string "opaque"; Bytes.empty |]
    in
    let envelope_payload = W.encode_pubkey y in
    let ack = { Wire.ack_src = 2; ack_dst = 0; ack_cum = 41; ack_sack = 0b101 } in
    [
      ( "dot-round1 (0x01)",
        Wire.encode_dot_round1 dot1,
        fun b -> Wire.encode_dot_round1 (Wire.decode_dot_round1 b) );
      ( "dot-round2 (0x02)",
        Wire.encode_dot_round2 dot2,
        fun b -> Wire.encode_dot_round2 (Wire.decode_dot_round2 b) );
      ( "pubkey (0x10)",
        W.encode_pubkey y,
        fun b -> W.encode_pubkey (W.decode_pubkey b) );
      ( "zkp (0x11)",
        W.encode_zkp zkp,
        fun b -> W.encode_zkp (W.decode_zkp b) );
      ( "cipher-batch (0x12)",
        W.encode_cipher_batch batch,
        fun b -> W.encode_cipher_batch (W.decode_cipher_batch b) );
      ( "hop-frame (0x13)",
        Wire.encode_hop_frame frame_payloads,
        fun b -> Wire.encode_hop_frame (Wire.decode_hop_frame b) );
      ( "envelope (0x14)",
        Wire.encode_envelope ~src:3 ~dst:1 ~seq:42 envelope_payload,
        fun b ->
          let e = Wire.decode_envelope b in
          Wire.encode_envelope ~src:e.Wire.env_src ~dst:e.Wire.env_dst
            ~seq:e.Wire.env_seq e.Wire.env_payload );
      ( "ack (0x15)",
        Wire.encode_ack ack,
        fun b -> Wire.encode_ack (Wire.decode_ack b) );
      ( "checkpoint (0x16)",
        Wire.encode_checkpoint (exemplar_checkpoint ()),
        fun b -> Wire.encode_checkpoint (Wire.decode_checkpoint b) );
      ( "submission (0x20)",
        Wire.encode_submission submission,
        fun b -> Wire.encode_submission (Wire.decode_submission b) );
    ]
  in
  let flip_bit data i =
    let out = Bytes.copy data in
    let byte = i / 8 and bit = i mod 8 in
    Bytes.set out byte
      (Char.chr (Char.code (Bytes.get out byte) lxor (1 lsl bit)));
    out
  in
  let prop name gen p =
    QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:400 ~name gen p)
  in
  List.concat_map
    (fun (name, original, decode_reencode) ->
      let len = Bytes.length original in
      [
        Alcotest.test_case (name ^ ": every truncation rejected") `Quick
          (fun () ->
            for cut = 0 to len - 1 do
              Alcotest.(check bool)
                (Printf.sprintf "cut at %d" cut)
                true
                (try
                   ignore (decode_reencode (Bytes.sub original 0 cut));
                   false
                 with Wire.Malformed _ -> true)
            done);
        prop
          (name ^ ": single-bit flip never crashes or round-trips")
          (QCheck2.Gen.int_range 0 ((8 * len) - 1))
          (fun i ->
            match decode_reencode (flip_bit original i) with
            | exception Wire.Malformed _ -> true
            | reencoded -> not (Bytes.equal reencoded original));
        prop
          (name ^ ": random garbage never crashes")
          QCheck2.Gen.(
            (* Half the cases keep the valid tag byte so the fuzz digs
               past the first check. *)
            pair bool (string_size ~gen:char (int_range 0 (2 * len))))
          (fun (keep_tag, junk) ->
            let data = Bytes.of_string junk in
            if keep_tag && Bytes.length data > 0 && len > 0 then
              Bytes.set data 0 (Bytes.get original 0);
            match decode_reencode data with
            | exception Wire.Malformed _ -> true
            | _ -> true);
      ])
    surfaces
  @ [
      Alcotest.test_case "envelope: every single-bit flip CRC-rejected" `Quick
        (fun () ->
          (* CRC-32 detects all single-bit errors, so unlike the other
             surfaces the envelope must refuse every one of them. *)
          let env =
            Wire.encode_envelope ~src:0 ~dst:2 ~seq:9
              (Bytes.of_string "chaos-conformance-payload")
          in
          for i = 0 to (8 * Bytes.length env) - 1 do
            Alcotest.(check bool)
              (Printf.sprintf "bit %d" i)
              true
              (try
                 ignore (Wire.decode_envelope (flip_bit env i));
                 false
               with Wire.Malformed _ -> true)
          done);
      Alcotest.test_case "envelope round trip" `Quick (fun () ->
          let payload = Bytes.of_string "some payload" in
          let e =
            Wire.decode_envelope
              (Wire.encode_envelope ~src:5 ~dst:0 ~seq:77 payload)
          in
          Alcotest.(check int) "src" 5 e.Wire.env_src;
          Alcotest.(check int) "dst" 0 e.Wire.env_dst;
          Alcotest.(check int) "seq" 77 e.Wire.env_seq;
          Alcotest.(check bytes) "payload" payload e.Wire.env_payload;
          Alcotest.(check int) "documented overhead"
            (Bytes.length payload + Wire.envelope_overhead)
            (Bytes.length
               (Wire.encode_envelope ~src:5 ~dst:0 ~seq:77 payload)));
      Alcotest.test_case "cipher batch with lying count rejected" `Quick
        (fun () ->
          (* A corrupted u16 count must be caught by arithmetic, not by
             attempting a giant allocation. *)
          let module G = (val Ppgr_group.Ec_group.ecc_tiny ()) in
          let module W = Wire.Make (G) in
          let _, y = W.E.keygen rng in
          let data =
            W.encode_cipher_batch
              (Array.init 3 (fun i -> W.E.encrypt_exp_int rng y (i mod 2)))
          in
          Bytes.set data 1 '\xFF';
          Alcotest.(check bool) "raises" true
            (try
               ignore (W.decode_cipher_batch data);
               false
             with Wire.Malformed _ -> true));
    ]

(* The transport control plane and checkpoint/restart frames.  Both ride
   the CRC-32 trailer, so random damage is CRC-rejected; the interesting
   paths are the post-CRC validations, reached by re-sealing a tampered
   body with a fresh CRC. *)
let ack_checkpoint_tests =
  let rejects what thunk =
    Alcotest.(check bool) what true
      (try
         ignore (thunk ());
         false
       with Wire.Malformed _ -> true)
  in
  let reseal data =
    let out = Bytes.copy data in
    let total = Bytes.length out in
    let crc = Wire.crc32 ~pos:0 ~len:(total - 4) out in
    Bytes.set out (total - 4) (Char.chr ((crc lsr 24) land 0xFF));
    Bytes.set out (total - 3) (Char.chr ((crc lsr 16) land 0xFF));
    Bytes.set out (total - 2) (Char.chr ((crc lsr 8) land 0xFF));
    Bytes.set out (total - 1) (Char.chr (crc land 0xFF));
    out
  in
  let flip_bit data i =
    let out = Bytes.copy data in
    let byte = i / 8 and bit = i mod 8 in
    Bytes.set out byte
      (Char.chr (Char.code (Bytes.get out byte) lxor (1 lsl bit)));
    out
  in
  [
    Alcotest.test_case "ack round trip, documented size" `Quick (fun () ->
        let a = { Wire.ack_src = 3; ack_dst = 1; ack_cum = 1000; ack_sack = 5 } in
        let data = Wire.encode_ack a in
        Alcotest.(check int) "ack_overhead" Wire.ack_overhead
          (Bytes.length data);
        let a' = Wire.decode_ack data in
        Alcotest.(check int) "src" a.Wire.ack_src a'.Wire.ack_src;
        Alcotest.(check int) "dst" a.Wire.ack_dst a'.Wire.ack_dst;
        Alcotest.(check int) "cum" a.Wire.ack_cum a'.Wire.ack_cum;
        Alcotest.(check int) "sack" a.Wire.ack_sack a'.Wire.ack_sack);
    Alcotest.test_case "ack: every single-bit flip CRC-rejected" `Quick
      (fun () ->
        let data =
          Wire.encode_ack
            { Wire.ack_src = 0; ack_dst = 2; ack_cum = 7; ack_sack = 0b11 }
        in
        for i = 0 to (8 * Bytes.length data) - 1 do
          rejects
            (Printf.sprintf "bit %d" i)
            (fun () -> Wire.decode_ack (flip_bit data i))
        done);
    Alcotest.test_case "ack: resealed trailing byte rejected" `Quick (fun () ->
        let data =
          Wire.encode_ack
            { Wire.ack_src = 1; ack_dst = 0; ack_cum = 3; ack_sack = 0 }
        in
        (* Valid CRC over a too-long body must still be refused. *)
        let padded = Bytes.cat data (Bytes.make 1 '\x00') in
        rejects "trailing byte" (fun () -> Wire.decode_ack (reseal padded)));
    Alcotest.test_case "checkpoint round trip preserves every section"
      `Quick (fun () ->
        let c = exemplar_checkpoint () in
        let c' = Wire.decode_checkpoint (Wire.encode_checkpoint c) in
        Alcotest.(check int) "step" c.Wire.ck_step c'.Wire.ck_step;
        Alcotest.(check int) "n" c.Wire.ck_n c'.Wire.ck_n;
        Alcotest.(check int) "bytes_total" c.Wire.ck_bytes_total
          c'.Wire.ck_bytes_total;
        Alcotest.(check int) "msg_total" c.Wire.ck_msg_total
          c'.Wire.ck_msg_total;
        Alcotest.(check (array int)) "sent" c.Wire.ck_sent c'.Wire.ck_sent;
        Alcotest.(check (array int)) "received" c.Wire.ck_received
          c'.Wire.ck_received;
        Alcotest.(check bool) "enc blobs" true (c.Wire.ck_enc = c'.Wire.ck_enc);
        Alcotest.(check bool) "v blobs" true (c.Wire.ck_v = c'.Wire.ck_v);
        let s = c.Wire.ck_snap and s' = c'.Wire.ck_snap in
        Alcotest.(check int) "snap n" s.Wire.ts_n s'.Wire.ts_n;
        Alcotest.(check (array int)) "counters" s.Wire.ts_counters
          s'.Wire.ts_counters;
        Alcotest.(check bytes) "digest" s.Wire.ts_digest s'.Wire.ts_digest;
        Alcotest.(check string) "step name" s.Wire.ts_step s'.Wire.ts_step;
        Alcotest.(check bool) "send_seq" true
          (s.Wire.ts_send_seq = s'.Wire.ts_send_seq);
        Alcotest.(check bool) "fault draws" true
          (s.Wire.ts_fault_draws = s'.Wire.ts_fault_draws);
        Alcotest.(check bool) "rounds" true (s.Wire.ts_rounds = s'.Wire.ts_rounds);
        Alcotest.(check bool) "in-progress round" true
          (s.Wire.ts_round = s'.Wire.ts_round);
        Alcotest.(check bool) "limbo" true (s.Wire.ts_limbo = s'.Wire.ts_limbo));
    Alcotest.test_case "checkpoint: every single-bit flip CRC-rejected"
      `Quick (fun () ->
        let data = Wire.encode_checkpoint (exemplar_checkpoint ()) in
        for i = 0 to (8 * Bytes.length data) - 1 do
          rejects
            (Printf.sprintf "bit %d" i)
            (fun () -> Wire.decode_checkpoint (flip_bit data i))
        done);
    Alcotest.test_case "zero-party checkpoint rejected" `Quick (fun () ->
        let c =
          {
            Wire.ck_step = 0;
            ck_n = 0;
            ck_bytes_total = 0;
            ck_msg_total = 0;
            ck_sent = [||];
            ck_received = [||];
            ck_enc = [||];
            ck_v = [||];
            ck_snap =
              {
                (exemplar_snap ()) with
                Wire.ts_n = 0;
                ts_send_seq = [||];
                ts_recv_seq = [||];
                ts_phys_sent = [||];
                ts_phys_received = [||];
                ts_retrans_by_src = [||];
                ts_env_by_src = [||];
                ts_link_msgs = [||];
                ts_link_bytes = [||];
                ts_link_retrans = [||];
                ts_fault_draws = [||];
                ts_limbo = [];
              };
          }
        in
        rejects "zero parties" (fun () ->
            Wire.decode_checkpoint (Wire.encode_checkpoint c)));
    Alcotest.test_case "checkpoint counter vector of wrong length rejected"
      `Quick (fun () ->
        let c =
          {
            (exemplar_checkpoint ()) with
            Wire.ck_snap =
              { (exemplar_snap ()) with Wire.ts_counters = Array.make 5 0 };
          }
        in
        rejects "5 counters" (fun () ->
            Wire.decode_checkpoint (Wire.encode_checkpoint c)));
    Alcotest.test_case "checkpoint with short digest rejected" `Quick
      (fun () ->
        let c =
          {
            (exemplar_checkpoint ()) with
            Wire.ck_snap =
              { (exemplar_snap ()) with Wire.ts_digest = Bytes.make 16 'x' };
          }
        in
        rejects "16-byte digest" (fun () ->
            Wire.decode_checkpoint (Wire.encode_checkpoint c)));
    Alcotest.test_case "checkpoint party count / snapshot mismatch rejected"
      `Quick (fun () ->
        let c = { (exemplar_checkpoint ()) with Wire.ck_n = 3 } in
        (* ck_sent must also claim 3 parties to reach the snap check. *)
        let c =
          { c with Wire.ck_sent = [| 1; 2; 3 |]; ck_received = [| 3; 2; 1 |] }
        in
        rejects "ck_n=3 over a 2-party snap" (fun () ->
            Wire.decode_checkpoint (Wire.encode_checkpoint c)));
    Alcotest.test_case
      "checkpoint vector count past end of buffer rejected (resealed)"
      `Quick (fun () ->
        let data = Wire.encode_checkpoint (exemplar_checkpoint ()) in
        (* Inflate ck_sent's u16 count (offset 13 after tag, step, n,
           bytes_total, msg_total) and re-seal the CRC: the count must
           be refused by arithmetic against the remaining bytes, not by
           attempting the allocation — the decode_hop_frame lesson. *)
        Bytes.set data 13 '\xFF';
        Bytes.set data 14 '\xFF';
        rejects "count 65535" (fun () ->
            Wire.decode_checkpoint (reseal data)));
    Alcotest.test_case "checkpoint limbo key out of range rejected" `Quick
      (fun () ->
        let c =
          {
            (exemplar_checkpoint ()) with
            Wire.ck_snap =
              {
                (exemplar_snap ()) with
                Wire.ts_limbo = [ (9, [ Bytes.of_string "stray" ]) ];
              };
          }
        in
        (* Link key 9 on a 2-party snapshot (keys live in [0, 4)). *)
        rejects "limbo key 9" (fun () ->
            Wire.decode_checkpoint (Wire.encode_checkpoint c)));
  ]

let () =
  Alcotest.run "wire"
    [
      ("field-messages", field_message_tests);
      ("hop-frame", hop_frame_tests);
      ("fuzz", fuzz_tests);
      ("ack-checkpoint", ack_checkpoint_tests);
      ("dl", group_message_tests ("DL", Ppgr_group.Dl_group.dl_test_64 ()));
      ("ec", group_message_tests ("EC", Ppgr_group.Ec_group.ecc_tiny ()));
      ("ecc-160", group_message_tests ("ECC-160", Ppgr_group.Ec_group.ecc_160 ()));
    ]

(* Group-law and serialization tests across every group instantiation,
   plus wNAF recoding properties and op-counter behaviour. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group

let rng = Rng.create ~seed:"test-group"

(* A battery of algebraic checks run against any GROUP instance. *)
let group_suite name (g : Group_intf.group) =
  let module G = (val g) in
  let random_elt () = G.pow_gen (G.random_scalar rng) in
  [
    Alcotest.test_case (name ^ ": identity laws") `Quick (fun () ->
        let x = random_elt () in
        Alcotest.(check bool) "e*x" true (G.equal x (G.mul G.identity x));
        Alcotest.(check bool) "x*e" true (G.equal x (G.mul x G.identity));
        Alcotest.(check bool) "is_identity e" true (G.is_identity G.identity));
    Alcotest.test_case (name ^ ": associativity and commutativity") `Quick
      (fun () ->
        let a = random_elt () and b = random_elt () and c = random_elt () in
        Alcotest.(check bool) "assoc" true
          (G.equal (G.mul (G.mul a b) c) (G.mul a (G.mul b c)));
        Alcotest.(check bool) "comm" true (G.equal (G.mul a b) (G.mul b a)));
    Alcotest.test_case (name ^ ": inverse") `Quick (fun () ->
        let a = random_elt () in
        Alcotest.(check bool) "a/a" true (G.is_identity (G.mul a (G.inv a)));
        Alcotest.(check bool) "inv inv" true (G.equal a (G.inv (G.inv a))));
    Alcotest.test_case (name ^ ": exponent homomorphism") `Quick (fun () ->
        let x = G.random_scalar rng and y = G.random_scalar rng in
        Alcotest.(check bool) "g^x g^y = g^(x+y)" true
          (G.equal (G.mul (G.pow_gen x) (G.pow_gen y)) (G.pow_gen (Bigint.add x y)));
        Alcotest.(check bool) "(g^x)^y = (g^y)^x" true
          (G.equal (G.pow (G.pow_gen x) y) (G.pow (G.pow_gen y) x)));
    Alcotest.test_case (name ^ ": order annihilates") `Quick (fun () ->
        Alcotest.(check bool) "g^q = e" true (G.is_identity (G.pow_gen G.order));
        let a = random_elt () in
        Alcotest.(check bool) "a^q = e" true (G.is_identity (G.pow a G.order)));
    Alcotest.test_case (name ^ ": negative exponents") `Quick (fun () ->
        let x = G.random_scalar rng in
        Alcotest.(check bool) "g^-x = (g^x)^-1" true
          (G.equal (G.pow_gen (Bigint.neg x)) (G.inv (G.pow_gen x)));
        Alcotest.(check bool) "g^0 = e" true (G.is_identity (G.pow_gen Bigint.zero)));
    Alcotest.test_case (name ^ ": serialization round trip") `Quick (fun () ->
        let a = random_elt () in
        let b = G.to_bytes a in
        Alcotest.(check int) "length" G.element_bytes (Bytes.length b);
        (match G.of_bytes b with
        | Some a' -> Alcotest.(check bool) "round trip" true (G.equal a a')
        | None -> Alcotest.fail "decode failed");
        (match G.of_bytes (G.to_bytes G.identity) with
        | Some e -> Alcotest.(check bool) "identity round trip" true (G.is_identity e)
        | None -> Alcotest.fail "identity decode failed"));
    Alcotest.test_case (name ^ ": of_bytes rejects junk") `Quick (fun () ->
        Alcotest.(check bool) "wrong length" true (G.of_bytes (Bytes.create 3) = None));
    Alcotest.test_case (name ^ ": random scalars in range") `Quick (fun () ->
        for _ = 1 to 50 do
          let x = G.random_scalar rng in
          Alcotest.(check bool) "1 <= x < q" true
            (Bigint.compare x Bigint.zero > 0 && Bigint.compare x G.order < 0)
        done);
    Alcotest.test_case (name ^ ": op counter moves") `Quick (fun () ->
        G.reset_op_count ();
        let a = random_elt () in
        let before = G.op_count () in
        ignore (G.mul a a);
        Alcotest.(check bool) "counted" true (G.op_count () > before));
    Alcotest.test_case (name ^ ": batch serialization = per-element") `Quick
      (fun () ->
        (* Identity elements sprinkled in exercise the EC family's
           infinity-skipping inside the shared-inversion batch. *)
        let els =
          Array.init 17 (fun i ->
              if i mod 5 = 2 then G.identity else random_elt ())
        in
        let batch = G.to_bytes_batch els in
        Array.iteri
          (fun i e -> Alcotest.(check bytes) "element" (G.to_bytes e) batch.(i))
          els;
        Alcotest.(check int) "empty batch" 0
          (Array.length (G.to_bytes_batch [||]));
        let ids = G.to_bytes_batch (Array.make 3 G.identity) in
        Array.iter
          (fun b ->
            Alcotest.(check bytes) "all-identity batch" (G.to_bytes G.identity) b)
          ids);
  ]

let wnaf_tests =
  let prop name gen f =
    QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)
  in
  [
    prop "wnaf4 reconstructs the exponent" QCheck2.Gen.(int_range 0 1_000_000_000)
      (fun e ->
        let digits = Group_intf.wnaf4 (Bigint.of_int e) in
        let v = List.fold_left (fun acc d -> (2 * acc) + d) 0 digits in
        v = e);
    prop "wnaf4 digits are odd or zero, |d| <= 7"
      QCheck2.Gen.(int_range 0 1_000_000_000)
      (fun e ->
        List.for_all
          (fun d -> d = 0 || (abs d <= 7 && abs d land 1 = 1))
          (Group_intf.wnaf4 (Bigint.of_int e)));
  ]

(* EC-specific structural tests on the toy curve where exhaustive checks
   are affordable. *)
let ec_structural_tests =
  let prm = Ec_params.tiny () in
  let cv = Ec_curve.make_curve prm in
  let g = Ec_curve.base_point cv in
  let q = Bigint.to_int_exn prm.Ec_curve.n in
  [
    Alcotest.test_case "tiny curve has prime order, cofactor 1" `Quick (fun () ->
        Alcotest.(check int) "cofactor" 1 prm.Ec_curve.h);
    Alcotest.test_case "scalar ladder agrees with repeated addition" `Quick
      (fun () ->
        let acc = ref (Ec_curve.infinity cv) in
        for k = 0 to 40 do
          let direct = Ec_curve.scalar_mul cv g (Bigint.of_int k) in
          Alcotest.(check bool) (Printf.sprintf "k=%d" k) true
            (Ec_curve.equal cv direct !acc);
          acc := Ec_curve.add cv !acc g
        done);
    Alcotest.test_case "point negation" `Quick (fun () ->
        let p = Ec_curve.scalar_mul cv g (Bigint.of_int 7) in
        Alcotest.(check bool) "P + (-P) = O" true
          (Ec_curve.is_infinity cv (Ec_curve.add cv p (Ec_curve.neg cv p))));
    Alcotest.test_case "doubling a 2-torsion-free point" `Quick (fun () ->
        let p = Ec_curve.scalar_mul cv g (Bigint.of_int 5) in
        Alcotest.(check bool) "2P = P+P" true
          (Ec_curve.equal cv (Ec_curve.double cv p) (Ec_curve.add cv p p)));
    Alcotest.test_case "scalar wraps modulo order" `Quick (fun () ->
        let k = 3 in
        Alcotest.(check bool) "(q+k)G = kG" true
          (Ec_curve.equal cv
             (Ec_curve.scalar_mul cv g (Bigint.of_int (q + k)))
             (Ec_curve.scalar_mul cv g (Bigint.of_int k))));
    Alcotest.test_case "all small multiples lie on the curve" `Quick (fun () ->
        for k = 1 to 60 do
          Alcotest.(check bool) (Printf.sprintf "on curve %d" k) true
            (Ec_curve.on_curve cv (Ec_curve.scalar_mul cv g (Bigint.of_int k)))
        done);
    Alcotest.test_case "off-curve point rejected by of_bytes" `Quick (fun () ->
        let module G = (val Ec_group.of_params prm) in
        let b = G.to_bytes G.generator in
        (* Corrupt the y coordinate. *)
        Bytes.set b (Bytes.length b - 1)
          (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 1));
        Alcotest.(check bool) "rejected" true (G.of_bytes b = None));
    Alcotest.test_case "batch normalization = per-point, incl. infinity" `Quick
      (fun () ->
        (* Jacobian points with non-trivial z (built by additions), the
           point at infinity at the batch edges and in the middle. *)
        let pts =
          Array.init 15 (fun k ->
              if k = 0 || k = 7 || k = 14 then Ec_curve.infinity cv
              else Ec_curve.scalar_mul cv g (Bigint.of_int k))
        in
        let batch = Ec_curve.to_affine_batch cv pts in
        Array.iteri
          (fun k pt ->
            match (Ec_curve.to_affine cv pt, batch.(k)) with
            | None, None -> ()
            | Some (x, y), Some (x', y') ->
                Alcotest.(check bool) (Printf.sprintf "x %d" k) true
                  (Bigint.equal x x');
                Alcotest.(check bool) (Printf.sprintf "y %d" k) true
                  (Bigint.equal y y')
            | _ -> Alcotest.failf "infinity mismatch at %d" k)
          pts;
        Alcotest.(check int) "all-infinity batch" 0
          (List.length
             (List.filter Option.is_some
                (Array.to_list
                   (Ec_curve.to_affine_batch cv
                      (Array.make 4 (Ec_curve.infinity cv)))))));
    Alcotest.test_case "batch normalization costs one field inversion" `Quick
      (fun () ->
        let pts =
          Array.init 9 (fun k ->
              if k = 4 then Ec_curve.infinity cv
              else Ec_curve.scalar_mul cv g (Bigint.of_int (k + 1)))
        in
        let before = Ppgr_exec.Meter.read cv.Ec_curve.invs in
        ignore (Ec_curve.to_affine_batch cv pts);
        Alcotest.(check int) "one inversion for the whole batch" (before + 1)
          (Ppgr_exec.Meter.read cv.Ec_curve.invs);
        let before = Ppgr_exec.Meter.read cv.Ec_curve.invs in
        Array.iter (fun p -> ignore (Ec_curve.to_affine cv p)) pts;
        Alcotest.(check int) "eight inversions per-point" (before + 8)
          (Ppgr_exec.Meter.read cv.Ec_curve.invs));
  ]

let dl_structural_tests =
  [
    Alcotest.test_case "DL elements are quadratic residues" `Quick (fun () ->
        let module G = (val Dl_group.dl_test_128 ()) in
        for _ = 1 to 20 do
          let e = G.pow_gen (G.random_scalar rng) in
          let v = Bigint.of_bytes_be (G.to_bytes e) in
          Alcotest.(check int) "jacobi 1" 1 (Bigint.jacobi v Modp_params.test_128)
        done);
    Alcotest.test_case "DL of_bytes rejects non-residues" `Quick (fun () ->
        let module G = (val Dl_group.dl_test_128 ()) in
        (* Find a non-residue and check rejection. *)
        let p = Modp_params.test_128 in
        let rec find v =
          if Bigint.jacobi v p = -1 then v else find (Bigint.succ v)
        in
        let nr = find (Bigint.of_int 2) in
        let b = Bigint.to_bytes_be_padded G.element_bytes nr in
        Alcotest.(check bool) "rejected" true (G.of_bytes b = None));
    Alcotest.test_case "order is (p-1)/2" `Quick (fun () ->
        let module G = (val Dl_group.dl_test_64 ()) in
        Alcotest.(check bool) "order" true
          (Bigint.equal G.order
             (Bigint.shift_right (Bigint.pred Modp_params.test_64) 1)));
  ]

let () =
  Alcotest.run "group"
    [
      ("dl-test-64", group_suite "DL-test-64" (Dl_group.dl_test_64 ()));
      ("dl-test-128", group_suite "DL-test-128" (Dl_group.dl_test_128 ()));
      ("dl-1024", group_suite "DL-1024" (Dl_group.dl_1024 ()));
      ("ecc-tiny", group_suite "ECC-tiny" (Ec_group.ecc_tiny ()));
      ("ecc-160", group_suite "ECC-160" (Ec_group.ecc_160 ()));
      ("ecc-256", group_suite "ECC-256" (Ec_group.ecc_256 ()));
      ("wnaf", wnaf_tests);
      ("ec-structure", ec_structural_tests);
      ("dl-structure", dl_structural_tests);
    ]

(* Cross-cutting qcheck property tests over the stack: group/scalar
   algebra, serialization, the gain model, phase-1 masking, and netsim
   monotonicity.  These complement the per-module suites with randomized
   end-to-end invariants. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_grouprank

let prop ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

(* Parallel seed sweep for the wall-time-dominating properties: each is
   a pure predicate of an opaque integer seed (shrinking a seed tells
   you nothing), so instead of qcheck's sequential driver the [count]
   seeds fan out over the domain pool.  Coverage and failure reporting
   are unchanged; the first failing seed is named so the run can be
   replayed with that seed through the predicate directly. *)
let sweep ?(count = 100) name f =
  Alcotest.test_case name `Quick (fun () ->
      let rng = Rng.create ~seed:("sweep-" ^ name) in
      let seeds = Array.init count (fun _ -> Rng.int_below rng 1_000_001) in
      let ok = Ppgr_exec.Pool.parallel_map f seeds in
      Array.iteri
        (fun i passed ->
          if not passed then
            Alcotest.failf "property %S failed on seed %d" name seeds.(i))
        ok)

let with_rng seed = Rng.create ~seed:(Printf.sprintf "prop-%d" seed)

let group_props (name, g) =
  let module G = (val g : Group_intf.GROUP) in
  [
    prop (name ^ ": pow distributes over scalar addition") seed_gen (fun seed ->
        let rng = with_rng seed in
        let x = G.pow_gen (G.random_scalar rng) in
        let a = G.random_scalar rng and b = G.random_scalar rng in
        G.equal (G.pow x (Bigint.add a b)) (G.mul (G.pow x a) (G.pow x b)));
    prop (name ^ ": pow of a product") seed_gen (fun seed ->
        let rng = with_rng seed in
        let x = G.pow_gen (G.random_scalar rng) in
        let y = G.pow_gen (G.random_scalar rng) in
        let e = G.random_scalar rng in
        G.equal (G.pow (G.mul x y) e) (G.mul (G.pow x e) (G.pow y e)));
    prop (name ^ ": serialization is injective on random elements") seed_gen
      (fun seed ->
        let rng = with_rng seed in
        let a = G.pow_gen (G.random_scalar rng) in
        let b = G.pow_gen (G.random_scalar rng) in
        G.equal a b = (G.to_bytes a = G.to_bytes b));
  ]

let elgamal_props =
  let module G = (val Ec_group.ecc_tiny ()) in
  let module E = Ppgr_elgamal.Elgamal.Make (G) in
  [
    sweep "homomorphic sum of a random list" (fun seed ->
        let rng = with_rng seed in
        let x, y = E.keygen rng in
        let k = 1 + Rng.int_below rng 6 in
        let values = List.init k (fun _ -> Rng.int_below rng 100) in
        let total = List.fold_left ( + ) 0 values in
        let combined =
          List.fold_left
            (fun acc v -> E.add acc (E.encrypt_exp_int rng y v))
            { E.c = G.identity; c' = G.identity }
            values
        in
        G.equal (E.plaintext_power x combined) (G.pow_gen (Bigint.of_int total)));
    sweep "blinding a ring of partial decryptions preserves zeroness"
      (fun seed ->
        let rng = with_rng seed in
        let parties = List.init 3 (fun _ -> E.keygen rng) in
        let joint = E.joint_pubkey (List.map snd parties) in
        let v = Rng.int_below rng 3 in
        let c =
          List.fold_left
            (fun acc (xk, _) -> E.exponent_blind rng (E.partial_decrypt xk acc))
            (E.encrypt_exp_int rng joint v)
            parties
        in
        G.is_identity c.E.c = (v = 0));
  ]

let gain_props =
  [
    prop "adding to a greater-than attribute never lowers the gain" seed_gen
      (fun seed ->
        let rng = with_rng seed in
        let spec = Attrs.spec ~m:4 ~t:2 ~d1:6 ~d2:4 in
        let c = Attrs.random_criterion rng spec in
        let v = Attrs.random_info rng spec in
        let k = 2 + Rng.int_below rng 2 in
        QCheck2.assume (v.(k) < (1 lsl 6) - 1);
        let v' = Array.copy v in
        v'.(k) <- v.(k) + 1;
        Attrs.gain spec c v' >= Attrs.gain spec c v);
    prop "moving an equal-to attribute to the criterion never lowers the gain"
      seed_gen (fun seed ->
        let rng = with_rng seed in
        let spec = Attrs.spec ~m:4 ~t:2 ~d1:6 ~d2:4 in
        let c = Attrs.random_criterion rng spec in
        let v = Attrs.random_info rng spec in
        let k = Rng.int_below rng 2 in
        let v' = Array.copy v in
        v'.(k) <- c.Attrs.v0.(k);
        Attrs.gain spec c v' >= Attrs.gain spec c v);
    sweep "masked betas rank identically to partial gains" (fun seed ->
        let rng = with_rng seed in
        let spec = Attrs.spec ~m:3 ~t:1 ~d1:5 ~d2:3 in
        let cfg = Phase1.config ~spec ~h:7 () in
        let criterion = Attrs.random_criterion rng spec in
        let n = 2 + Rng.int_below rng 4 in
        let infos = Array.init n (fun _ -> Attrs.random_info rng spec) in
        let _, res = Phase1.run rng cfg ~criterion ~infos in
        let ok = ref true in
        Array.iteri
          (fun i ri ->
            Array.iteri
              (fun j rj ->
                let gi = Attrs.partial_gain spec criterion infos.(i) in
                let gj = Attrs.partial_gain spec criterion infos.(j) in
                if
                  gi > gj
                  && Bigint.compare ri.Phase1.beta_unsigned rj.Phase1.beta_unsigned
                     <= 0
                then ok := false)
              res)
          res;
        !ok);
  ]

let netsim_props =
  let open Ppgr_mpcnet in
  [
    prop ~count:30 "more bytes never finish earlier" seed_gen (fun seed ->
        let rng = with_rng seed in
        let topo = Topology.random_connected rng ~nodes:12 ~edges:20 () in
        let placement = Netsim.place_parties topo ~parties:6 in
        let elapsed bytes =
          (Netsim.run topo ~placement
             [
               {
                 Netsim.compute_s = 0.;
                 messages = Netsim.all_broadcast ~parties:6 ~bytes;
               };
             ])
            .Netsim.elapsed_s
        in
        let b = 100 + Rng.int_below rng 100_000 in
        elapsed (2 * b) >= elapsed b);
    prop ~count:30 "extra rounds only add time" seed_gen (fun seed ->
        let rng = with_rng seed in
        let topo = Topology.random_connected rng ~nodes:10 ~edges:15 () in
        let placement = Netsim.place_parties topo ~parties:5 in
        let round =
          { Netsim.compute_s = 0.; messages = Netsim.all_broadcast ~parties:5 ~bytes:500 }
        in
        let elapsed k =
          (Netsim.run topo ~placement (List.init k (fun _ -> round))).Netsim.elapsed_s
        in
        elapsed 3 >= elapsed 2 && elapsed 2 >= elapsed 1);
  ]

let shamir_props =
  let open Ppgr_shamir in
  let f = Ppgr_dotprod.Zfield.default () in
  [
    sweep ~count:50 "linear combinations of shares reconstruct linearly"
      (fun seed ->
        let rng = with_rng seed in
        let e = Engine.create rng f ~n:5 in
        let a = Rng.int_below rng 10_000 and b = Rng.int_below rng 10_000 in
        let k = 1 + Rng.int_below rng 50 in
        let sa = Engine.input e (Bigint.of_int a) in
        let sb = Engine.input e (Bigint.of_int b) in
        let combo =
          Engine.add e (Engine.scale e (Bigint.of_int k) sa) (Engine.neg e sb)
        in
        let opened = Ppgr_dotprod.Zfield.to_signed f (Engine.open_ e combo) in
        Bigint.to_int_exn opened = (k * a) - b);
    sweep ~count:20 "sort output of shared values is sorted and a permutation"
      (fun seed ->
        let rng = with_rng seed in
        let e = Engine.create rng f ~n:5 in
        let prm = Compare.default_params ~l:8 () in
        let k = 2 + Rng.int_below rng 4 in
        let vals = Array.init k (fun _ -> Rng.int_below rng 256) in
        let sorted =
          Ss_sort.sort e prm (Array.map (fun v -> Engine.input e (Bigint.of_int v)) vals)
        in
        let opened = Array.map (fun s -> Bigint.to_int_exn (Engine.open_ e s)) sorted in
        let expect = Array.copy vals in
        Array.sort compare expect;
        opened = expect);
  ]

let () =
  Alcotest.run "properties"
    [
      ("group-dl", group_props ("DL", Dl_group.dl_test_64 ()));
      ("group-ec", group_props ("EC", Ec_group.ecc_tiny ()));
      ("elgamal", elgamal_props);
      ("gain", gain_props);
      ("netsim", netsim_props);
      ("shamir", shamir_props);
    ]

(* Allocation regression gate for the in-place bigint fast path.

   The whole point of the 61-bit rewrite is that the Montgomery kernels
   and the Modring [_into] operations allocate nothing per call once the
   per-domain scratch is warm; this suite pins that with exact
   [Gc.minor_words] deltas via [Ppgr_obs.Allocs].  A regression that
   sneaks a box or a fresh array into a kernel fails here, not in a
   benchmark three PRs later. *)

open Ppgr_bigint
module Allocs = Ppgr_obs.Allocs

let p1024 = Ppgr_group.Modp_params.p_1024
let c = Bigint.Modring.ctx ~modulus:p1024

let x =
  Bigint.Modring.enter c
    (Bigint.of_string
       "0xfeedfacecafebeef00112233445566778899aabbccddeeff0123456789abcdef")

let y = Bigint.Modring.enter c (Bigint.sub p1024 (Bigint.of_int 987654321))

let check_zero name f =
  Alcotest.test_case name `Quick (fun () ->
      let s = Allocs.measure ~warmup:8 ~iters:200 f in
      if not (Allocs.is_alloc_free s) then
        Alcotest.failf "%s allocates: %s" name (Format.asprintf "%a" Allocs.pp s))

let zero_alloc_tests =
  let d = Bigint.Modring.alloc c in
  [
    check_zero "mont mul_into is allocation-free" (fun () -> Bigint.Modring.mul_into c d x y);
    check_zero "mont sqr_into is allocation-free" (fun () -> Bigint.Modring.sqr_into c d x);
    check_zero "add_into is allocation-free" (fun () -> Bigint.Modring.add_into c d x y);
    check_zero "sub_into is allocation-free" (fun () -> Bigint.Modring.sub_into c d x y);
    check_zero "neg_into is allocation-free" (fun () -> Bigint.Modring.neg_into c d y);
    check_zero "double_into is allocation-free" (fun () -> Bigint.Modring.double_into c d y);
    check_zero "copy_into is allocation-free" (fun () -> Bigint.Modring.copy_into c d x);
  ]

(* powmod allocates only its escaping result: the per-call figure must
   not grow with the exponent (the window table, accumulator and
   conversion temporaries all live in ctx scratch). *)
let powmod_tests =
  [
    Alcotest.test_case "powmod allocation is independent of exponent size" `Quick (fun () ->
        let base = Bigint.of_string "0x1234567890abcdef1234567890abcdef" in
        let e_small = Bigint.pred (Bigint.nth_bit_weight 64) in
        let e_big = Bigint.pred (Bigint.nth_bit_weight 1024) in
        let run e = Allocs.measure ~warmup:3 ~iters:20 (fun () -> ignore (Bigint.powmod base e p1024)) in
        let s_small = run e_small and s_big = run e_big in
        Alcotest.(check (float 0.01))
          "words/call equal for 64-bit and 1024-bit exponents"
          s_small.Allocs.words_per_iter s_big.Allocs.words_per_iter;
        (* Result magnitude + sign wrapper and nothing else: a couple of
           dozen words at 1024 bits, not thousands. *)
        Alcotest.(check bool) "powmod result allocation is small" true
          (s_big.Allocs.words_per_iter < 128.));
    Alcotest.test_case "probe detects allocation when present" `Quick (fun () ->
        (* Sanity-check the probe itself: an allocating loop must not
           report zero. *)
        let sink = ref Bigint.zero in
        let s = Allocs.measure ~iters:50 (fun () -> sink := Bigint.add !sink Bigint.one) in
        Alcotest.(check bool) "allocating loop detected" false (Allocs.is_alloc_free s));
  ]

let () = Alcotest.run "allocs" [ ("zero-alloc", zero_alloc_tests); ("powmod", powmod_tests) ]

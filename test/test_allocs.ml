(* Allocation regression gate for the in-place bigint fast path.

   The whole point of the 61-bit rewrite is that the Montgomery kernels
   and the Modring [_into] operations allocate nothing per call once the
   per-domain scratch is warm; this suite pins that with exact
   [Gc.minor_words] deltas via [Ppgr_obs.Allocs].  A regression that
   sneaks a box or a fresh array into a kernel fails here, not in a
   benchmark three PRs later. *)

open Ppgr_bigint
module Allocs = Ppgr_obs.Allocs

let p1024 = Ppgr_group.Modp_params.p_1024
let c = Bigint.Modring.ctx ~modulus:p1024

let x =
  Bigint.Modring.enter c
    (Bigint.of_string
       "0xfeedfacecafebeef00112233445566778899aabbccddeeff0123456789abcdef")

let y = Bigint.Modring.enter c (Bigint.sub p1024 (Bigint.of_int 987654321))

let check_zero name f =
  Alcotest.test_case name `Quick (fun () ->
      let s = Allocs.measure ~warmup:8 ~iters:200 f in
      if not (Allocs.is_alloc_free s) then
        Alcotest.failf "%s allocates: %s" name (Format.asprintf "%a" Allocs.pp s))

let zero_alloc_tests =
  let d = Bigint.Modring.alloc c in
  [
    check_zero "mont mul_into is allocation-free" (fun () -> Bigint.Modring.mul_into c d x y);
    check_zero "mont sqr_into is allocation-free" (fun () -> Bigint.Modring.sqr_into c d x);
    check_zero "add_into is allocation-free" (fun () -> Bigint.Modring.add_into c d x y);
    check_zero "sub_into is allocation-free" (fun () -> Bigint.Modring.sub_into c d x y);
    check_zero "neg_into is allocation-free" (fun () -> Bigint.Modring.neg_into c d y);
    check_zero "double_into is allocation-free" (fun () -> Bigint.Modring.double_into c d y);
    check_zero "copy_into is allocation-free" (fun () -> Bigint.Modring.copy_into c d x);
  ]

(* powmod allocates only its escaping result: the per-call figure must
   not grow with the exponent (the window table, accumulator and
   conversion temporaries all live in ctx scratch). *)
let powmod_tests =
  [
    Alcotest.test_case "powmod allocation is independent of exponent size" `Quick (fun () ->
        let base = Bigint.of_string "0x1234567890abcdef1234567890abcdef" in
        let e_small = Bigint.pred (Bigint.nth_bit_weight 64) in
        let e_big = Bigint.pred (Bigint.nth_bit_weight 1024) in
        let run e = Allocs.measure ~warmup:3 ~iters:20 (fun () -> ignore (Bigint.powmod base e p1024)) in
        let s_small = run e_small and s_big = run e_big in
        Alcotest.(check (float 0.01))
          "words/call equal for 64-bit and 1024-bit exponents"
          s_small.Allocs.words_per_iter s_big.Allocs.words_per_iter;
        (* Result magnitude (17 limbs + header) + sign wrapper and
           nothing else. *)
        Alcotest.(check bool) "powmod result allocation is small" true
          (s_big.Allocs.words_per_iter < 32.));
    Alcotest.test_case "mont inv_into is allocation-free" `Quick (fun () ->
        let d = Bigint.Modring.alloc c in
        let s =
          Allocs.measure ~warmup:8 ~iters:50 (fun () -> Bigint.Modring.inv_into c d x)
        in
        if not (Allocs.is_alloc_free s) then
          Alcotest.failf "inv_into allocates: %s" (Format.asprintf "%a" Allocs.pp s));
    Alcotest.test_case "probe detects allocation when present" `Quick (fun () ->
        (* Sanity-check the probe itself: an allocating loop must not
           report zero. *)
        let sink = ref Bigint.zero in
        let s = Allocs.measure ~iters:50 (fun () -> sink := Bigint.add !sink Bigint.one) in
        Alcotest.(check bool) "allocating loop detected" false (Allocs.is_alloc_free s));
  ]

(* Group layer (PR 7): steady-state exponentiations allocate exactly
   their escaping result — the wNAF tables, inverse caches, recoding
   buffers and accumulators all live in per-domain scratch.  The pinned
   figures are the result object's own size:
   - DL-1024 element: 17 Montgomery limbs + array header = 18 words;
   - ECC-160 point: record (3 fields + header) + three 3-limb field
     elements (3 + header each) = 16 words. *)
let check_exact name expected f =
  Alcotest.test_case name `Quick (fun () ->
      let s = Allocs.measure ~warmup:8 ~iters:50 f in
      Alcotest.(check (float 0.01))
        (Printf.sprintf "%s allocates exactly %.0f words/op" name expected)
        expected s.Allocs.words_per_iter)

let group_tests =
  let rng = Ppgr_rng.Rng.create ~seed:"test-allocs-group" in
  let module G = (val Ppgr_group.Dl_group.dl_1024 ()) in
  let e = G.random_scalar rng and f = G.random_scalar rng in
  let gx = G.pow_gen e and gy = G.pow_gen f in
  let tbl = G.powtable gx in
  let dl_words = 18.0 in
  let module E = Ppgr_group.Ec_curve in
  let cv = E.make_curve Ppgr_group.Ec_params.secp160r1 in
  let n = cv.E.prm.E.n in
  let se = Bigint.succ (Ppgr_rng.Rng.bigint_below rng (Bigint.pred n)) in
  let sf = Bigint.succ (Ppgr_rng.Rng.bigint_below rng (Bigint.pred n)) in
  let pt = E.scalar_mul cv (E.base_point cv) se in
  let qt = E.scalar_mul cv (E.base_point cv) sf in
  let ptbl = E.make_powtable cv pt ~bits:(Bigint.numbits n) in
  let ec_words = 16.0 in
  [
    check_exact "DL-1024 pow allocates result only" dl_words (fun () ->
        ignore (G.pow gx e));
    check_exact "DL-1024 pow_table allocates result only" dl_words (fun () ->
        ignore (G.pow_table tbl e));
    check_exact "DL-1024 pow2 allocates result only" dl_words (fun () ->
        ignore (G.pow2 gx e gy f));
    check_exact "ECC-160 scalar_mul allocates result only" ec_words (fun () ->
        ignore (E.scalar_mul cv pt se));
    check_exact "ECC-160 scalar_mul_table allocates result only" ec_words (fun () ->
        ignore (E.scalar_mul_table cv ptbl se));
    check_exact "ECC-160 scalar_mul2 allocates result only" ec_words (fun () ->
        ignore (E.scalar_mul2 cv pt se qt sf));
    Alcotest.test_case "DL pow allocation is independent of exponent size" `Quick
      (fun () ->
        let e_small = Bigint.of_int 3 in
        let run ex =
          Allocs.measure ~warmup:8 ~iters:30 (fun () -> ignore (G.pow gx ex))
        in
        let s_small = run e_small and s_big = run e in
        Alcotest.(check (float 0.01))
          "words/call equal for tiny and full-width exponents"
          s_small.Allocs.words_per_iter s_big.Allocs.words_per_iter);
  ]

(* Telemetry layer (PR 8): recording into a histogram or the flight
   recorder is steady-state allocation-free in BOTH states — disabled
   (one ref read, the hot-path guarantee) and enabled (preallocated
   int-array lanes, no boxing). *)
let telemetry_tests =
  let module Hist = Ppgr_obs.Hist in
  let module Flightrec = Ppgr_obs.Flightrec in
  let h = Hist.create () in
  let fl = Flightrec.create ~parties:4 () in
  let tick = ref 0 in
  [
    Alcotest.test_case "disabled Hist.record is allocation-free" `Quick
      (fun () ->
        Hist.set_enabled false;
        let s =
          Allocs.measure ~warmup:8 ~iters:200 (fun () ->
              incr tick;
              Hist.record h !tick)
        in
        if not (Allocs.is_alloc_free s) then
          Alcotest.failf "disabled record allocates: %s"
            (Format.asprintf "%a" Allocs.pp s));
    Alcotest.test_case "enabled Hist.record is allocation-free" `Quick
      (fun () ->
        Hist.set_enabled true;
        Fun.protect ~finally:(fun () -> Hist.set_enabled false) @@ fun () ->
        let s =
          Allocs.measure ~warmup:8 ~iters:200 (fun () ->
              incr tick;
              Hist.record h (!tick * 7919))
        in
        if not (Allocs.is_alloc_free s) then
          Alcotest.failf "enabled record allocates: %s"
            (Format.asprintf "%a" Allocs.pp s));
    Alcotest.test_case "Flightrec.record is allocation-free" `Quick (fun () ->
        let s =
          Allocs.measure ~warmup:8 ~iters:200 (fun () ->
              incr tick;
              Flightrec.record fl ~party:(!tick land 3) Flightrec.Send ~src:0
                ~dst:1 ~seq:!tick ~info:64)
        in
        if not (Allocs.is_alloc_free s) then
          Alcotest.failf "Flightrec.record allocates: %s"
            (Format.asprintf "%a" Allocs.pp s));
  ]

(* Windowed transport (PR 10): the per-link sliding-window bookkeeping
   runs once per transmission and once per ack inside the pipelined
   event loop, so every operation must be straight arithmetic over the
   arrays preallocated at Window.create — zero words per op.  The only
   sanctioned allocation is rbuf_take's escaping [Some]. *)
let window_tests =
  let module Window = Ppgr_grouprank.Transport.Window in
  let w = Window.create 16 in
  let payload = Bytes.create 64 in
  let seq = ref 0 in
  [
    check_zero "Window.push/ack_cum cycle is allocation-free" (fun () ->
        (* Admit a sequence then cumulatively release it: the warm
           steady state of a healthy link. *)
        let s = Window.push w ~seq:!seq in
        assert (s >= 0);
        Window.ack_cum w ~cum:(!seq + 1);
        incr seq);
    check_zero "Window.occupancy is allocation-free" (fun () ->
        ignore (Window.occupancy w));
    check_zero "Window.next_timer is allocation-free" (fun () ->
        ignore (Window.next_timer w));
    check_zero "Window.sack is allocation-free" (fun () ->
        Window.sack w ~seq:!seq);
    check_zero "Window.sack_bits is allocation-free" (fun () ->
        ignore (Window.sack_bits w ~cum:!seq));
    check_zero "Window.rbuf_put of a buffered seq is allocation-free"
      (fun () ->
        (* First call buffers, every later call hits the idempotent
           already-held path — both stay on preallocated slots. *)
        ignore (Window.rbuf_put w ~seq:7 payload));
    check_exact "Window.rbuf_put/rbuf_take cycle allocates the option only"
      2.0 (fun () ->
        ignore (Window.rbuf_put w ~seq:9 payload);
        match Window.rbuf_take w ~seq:9 with
        | Some _ -> ()
        | None -> assert false);
  ]

let () =
  Alcotest.run "allocs"
    [
      ("zero-alloc", zero_alloc_tests);
      ("powmod", powmod_tests);
      ("group-alloc", group_tests);
      ("telemetry-alloc", telemetry_tests);
      ("window-alloc", window_tests);
    ]

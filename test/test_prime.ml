(* Tests for primality testing, prime generation and modular square
   roots, including validation of every vendored group constant. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group

let rng = Rng.create ~seed:"test-prime"
let rand = Rng.as_prime_rand rng
let bi = Bigint.of_int
let bs = Bigint.of_string

let is_prime ?rounds v = Prime.is_probable_prime ?rounds rand v

let unit_tests =
  [
    Alcotest.test_case "small primes and composites" `Quick (fun () ->
        List.iter
          (fun (v, expect) ->
            Alcotest.(check bool) (string_of_int v) expect (is_prime (bi v)))
          [
            (0, false); (1, false); (2, true); (3, true); (4, false); (17, true);
            (561, false) (* Carmichael *); (997, true); (1000003, true);
            (1000001, false); (999983, true);
          ]);
    Alcotest.test_case "Mersenne primes and non-primes" `Quick (fun () ->
        Alcotest.(check bool) "2^61-1 prime" true
          (is_prime (Bigint.pred (Bigint.nth_bit_weight 61)));
        Alcotest.(check bool) "2^67-1 composite" false
          (is_prime (Bigint.pred (Bigint.nth_bit_weight 67)));
        Alcotest.(check bool) "2^89-1 prime" true
          (is_prime (Bigint.pred (Bigint.nth_bit_weight 89)));
        Alcotest.(check bool) "2^127-1 prime" true
          (is_prime (Bigint.pred (Bigint.nth_bit_weight 127))));
    Alcotest.test_case "strong pseudoprime to few bases caught" `Quick (fun () ->
        (* 3215031751 is a strong pseudoprime to bases 2,3,5,7... but not all. *)
        Alcotest.(check bool) "3215031751" false (is_prime (bs "3215031751")));
    Alcotest.test_case "next_prime" `Quick (fun () ->
        Alcotest.(check string) "after 1" "2" (Bigint.to_string (Prime.next_prime rand Bigint.one));
        Alcotest.(check string) "after 2" "3" (Bigint.to_string (Prime.next_prime rand (bi 2)));
        Alcotest.(check string) "after 10^6" "1000003"
          (Bigint.to_string (Prime.next_prime rand (bi 1000000))));
    Alcotest.test_case "random_prime has requested size" `Quick (fun () ->
        List.iter
          (fun bits ->
            let p = Prime.random_prime rand ~bits in
            Alcotest.(check int) "bits" bits (Bigint.numbits p);
            Alcotest.(check bool) "prime" true (is_prime p))
          [ 16; 32; 64 ]);
    Alcotest.test_case "random_safe_prime" `Quick (fun () ->
        let p = Prime.random_safe_prime rand ~bits:48 in
        let q = Bigint.shift_right (Bigint.pred p) 1 in
        Alcotest.(check bool) "p prime" true (is_prime p);
        Alcotest.(check bool) "q prime" true (is_prime q));
    Alcotest.test_case "sqrt_mod basic" `Quick (fun () ->
        (* p = 23 (3 mod 4) and p = 13 (1 mod 4, exercises Tonelli). *)
        List.iter
          (fun p ->
            let pb = bi p in
            for a = 0 to p - 1 do
              let a2 = a * a mod p in
              match Prime.sqrt_mod rand (bi a2) ~p:pb with
              | None -> Alcotest.fail (Printf.sprintf "no sqrt of %d mod %d" a2 p)
              | Some r ->
                  let rr = Bigint.to_int_exn (Bigint.erem (Bigint.mul r r) pb) in
                  Alcotest.(check int) "square" a2 rr
            done)
          [ 23; 13; 17 ]);
    Alcotest.test_case "sqrt_mod rejects non-residues" `Quick (fun () ->
        (* 5 is not a QR mod 7. *)
        Alcotest.(check bool) "none" true (Prime.sqrt_mod rand (bi 5) ~p:(bi 7) = None));
    Alcotest.test_case "small_primes table" `Quick (fun () ->
        Alcotest.(check int) "first" 2 Prime.small_primes.(0);
        Alcotest.(check bool) "all prime" true
          (Array.for_all (fun p -> is_prime (bi p)) Prime.small_primes);
        Alcotest.(check bool) "sorted" true
          (let ok = ref true in
           Array.iteri
             (fun i p -> if i > 0 && p <= Prime.small_primes.(i - 1) then ok := false)
             Prime.small_primes;
           !ok));
  ]

(* Every vendored constant must be what it claims to be; this is the
   guard against transcription errors in the parameter files. *)
let vendored_constants_tests =
  let safe_prime name p =
    Alcotest.test_case name `Slow (fun () ->
        let q = Bigint.shift_right (Bigint.pred p) 1 in
        Alcotest.(check bool) "p prime" true (is_prime ~rounds:4 p);
        Alcotest.(check bool) "q prime" true (is_prime ~rounds:4 q))
  in
  let curve name (prm : Ec_curve.params) =
    Alcotest.test_case name `Slow (fun () ->
        Alcotest.(check bool) "field prime" true (is_prime ~rounds:4 prm.Ec_curve.p);
        Alcotest.(check bool) "order prime" true (is_prime ~rounds:4 prm.Ec_curve.n);
        let cv = Ec_curve.make_curve prm in
        let g = Ec_curve.base_point cv in
        Alcotest.(check bool) "G on curve" true (Ec_curve.on_curve cv g);
        Alcotest.(check bool) "nG = O" true
          (Ec_curve.is_infinity cv (Ec_curve.scalar_mul cv g prm.Ec_curve.n)))
  in
  [
    safe_prime "MODP 512" Modp_params.p_512;
    safe_prime "MODP 1024" Modp_params.p_1024;
    safe_prime "MODP 2048" Modp_params.p_2048;
    safe_prime "test 64" Modp_params.test_64;
    safe_prime "test 96" Modp_params.test_96;
    safe_prime "test 128" Modp_params.test_128;
    safe_prime "test 256" Modp_params.test_256;
    curve "secp160r1" Ec_params.secp160r1;
    curve "secp192r1" Ec_params.secp192r1;
    curve "secp224r1" Ec_params.secp224r1;
    curve "secp256r1" Ec_params.secp256r1;
    curve "tiny" (Ec_params.tiny ());
    Alcotest.test_case "MODP 3072" `Slow (fun () ->
        let p = Modp_params.p_3072 in
        Alcotest.(check int) "bits" 3072 (Bigint.numbits p);
        Alcotest.(check bool) "p prime" true (is_prime ~rounds:2 p);
        Alcotest.(check bool) "q prime" true
          (is_prime ~rounds:2 (Bigint.shift_right (Bigint.pred p) 1)));
  ]

let () =
  Alcotest.run "prime"
    [ ("unit", unit_tests); ("vendored-constants", vendored_constants_tests) ]

(* Committee-sharded ranking: partition-plan invariants, transcript
   determinism across job counts and shard-size sweeps, and the
   differential check of sharded top-k membership against the
   monolithic ranking. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_grouprank
module Pool = Ppgr_exec.Pool
module G = (val Ppgr_group.Dl_group.dl_test_64 () : Ppgr_group.Group_intf.GROUP)
module S = Shard.Make (G)
module RT = Runtime.Make (G)

let bi = Bigint.of_int
let fresh_rng seed = Rng.create ~seed

(* Distinct betas make the top-k unique, so set equality is the right
   check; the tie tests below use duplicated betas. *)
let distinct_betas rng n ~l =
  let perm = Rng.permutation rng (1 lsl l) in
  Array.init n (fun i -> bi perm.(i))

let sharded ?(seed = "shard-run") ?(shard_size = 4) ?(k = 3) ~n ~l () =
  let rng = fresh_rng seed in
  let betas = distinct_betas (fresh_rng (seed ^ "-betas")) n ~l in
  (betas, S.run ~shard_size ~committee:3 ~k rng ~l ~betas)

(* The k largest betas' owners (unique when betas are distinct). *)
let expect_top_k betas k =
  let idx = Array.init (Array.length betas) (fun i -> i) in
  Array.sort (fun a b -> Bigint.compare betas.(b) betas.(a)) idx;
  List.sort compare (Array.to_list (Array.sub idx 0 k))

let plan_tests =
  [
    Alcotest.test_case "partition covers everyone exactly once" `Quick
      (fun () ->
        List.iter
          (fun (n, s) ->
            let plan = Shard.make_plan (fresh_rng "plan") ~n ~shard_size:s in
            let seen = Array.make n 0 in
            Array.iter
              (Array.iter (fun p -> seen.(p) <- seen.(p) + 1))
              plan.Shard.members;
            Array.iteri
              (fun p c ->
                Alcotest.(check int) (Printf.sprintf "participant %d" p) 1 c)
              seen;
            (* Inverse maps agree with the member lists. *)
            Array.iteri
              (fun i ms ->
                Array.iteri
                  (fun j p ->
                    Alcotest.(check int) "shard_of" i plan.Shard.shard_of.(p);
                    Alcotest.(check int) "local_of" j plan.Shard.local_of.(p))
                  ms)
              plan.Shard.members)
          [ (1, 2); (2, 2); (5, 2); (7, 3); (16, 16); (17, 16); (100, 16) ])
    ;
    Alcotest.test_case "shard sizes bounded by s and balanced" `Quick
      (fun () ->
        List.iter
          (fun (n, s) ->
            let plan = Shard.make_plan (fresh_rng "plan") ~n ~shard_size:s in
            let sizes = Shard.sizes plan in
            let mx = Array.fold_left Stdlib.max 0 sizes in
            let mn = Array.fold_left Stdlib.min n sizes in
            Alcotest.(check bool) "bounded" true (mx <= s);
            Alcotest.(check bool) "balanced" true (mx - mn <= 1))
          [ (2, 2); (5, 2); (7, 3); (16, 16); (17, 16); (100, 16); (1000, 16) ])
    ;
    Alcotest.test_case "plan is a pure function of the seed" `Quick
      (fun () ->
        let p1 = Shard.make_plan (fresh_rng "same") ~n:50 ~shard_size:8 in
        let p2 = Shard.make_plan (fresh_rng "same") ~n:50 ~shard_size:8 in
        let p3 = Shard.make_plan (fresh_rng "other") ~n:50 ~shard_size:8 in
        Alcotest.(check bool) "same seed, same plan" true
          (p1.Shard.members = p2.Shard.members);
        Alcotest.(check bool) "different seed, different plan" true
          (p1.Shard.members <> p3.Shard.members));
  ]

let determinism_tests =
  [
    Alcotest.test_case "transcripts byte-identical at jobs 1 vs 4" `Quick
      (fun () ->
        let run jobs =
          Pool.set_jobs jobs;
          Fun.protect ~finally:(fun () -> Pool.set_jobs 1)
            (fun () -> sharded ~n:10 ~l:6 ())
        in
        let _, r1 = run 1 and _, r4 = run 4 in
        Alcotest.(check string) "global transcript" r1.Shard.transcript_sha
          r4.Shard.transcript_sha;
        Array.iteri
          (fun i (st1 : Shard.shard_stat) ->
            Alcotest.(check string)
              (Printf.sprintf "shard %d transcript" i)
              st1.Shard.shard_sha r4.Shard.shard_stats.(i).Shard.shard_sha)
          r1.Shard.shard_stats;
        Alcotest.(check (array int)) "local ranks" r1.Shard.local_ranks
          r4.Shard.local_ranks;
        Alcotest.(check (array int)) "winners" r1.Shard.winners
          r4.Shard.winners)
    ;
    Alcotest.test_case "same seed reruns to the same digest" `Quick
      (fun () ->
        let _, r1 = sharded ~n:9 ~l:6 () in
        let _, r2 = sharded ~n:9 ~l:6 () in
        Alcotest.(check string) "digest" r1.Shard.transcript_sha
          r2.Shard.transcript_sha)
    ;
    Alcotest.test_case "winners invariant under shard-size sweep" `Quick
      (fun () ->
        let k = 3 and n = 12 and l = 6 in
        let winners_at shard_size =
          let _, r = sharded ~shard_size ~k ~n ~l () in
          Array.to_list r.Shard.winners
        in
        let w4 = winners_at 4 in
        List.iter
          (fun s ->
            Alcotest.(check (list int))
              (Printf.sprintf "shard_size %d" s)
              w4 (winners_at s))
          [ 2; 3; 6; 12 ])
    ;
  ]

let differential_tests =
  [
    Alcotest.test_case "sharded winners = k largest betas" `Quick
      (fun () ->
        List.iter
          (fun (n, shard_size, k) ->
            let betas, r = sharded ~shard_size ~k ~n ~l:7 () in
            Alcotest.(check (list int))
              (Printf.sprintf "n=%d s=%d k=%d" n shard_size k)
              (expect_top_k betas k)
              (Array.to_list r.Shard.winners))
          [ (6, 2, 2); (9, 3, 3); (12, 4, 5); (10, 16, 4) ])
    ;
    Alcotest.test_case "sharded membership agrees with monolithic ranking"
      `Quick (fun () ->
        let n = 8 and l = 6 and k = 3 in
        let betas = distinct_betas (fresh_rng "diff-betas") n ~l in
        let mono = RT.run (fresh_rng "diff-mono") ~l ~betas in
        let mono_top =
          List.filter (fun j -> mono.RT.ranks.(j) <= k) (List.init n Fun.id)
        in
        let r = S.run ~shard_size:3 ~committee:3 ~k (fresh_rng "diff") ~l ~betas in
        Alcotest.(check (list int)) "membership" mono_top
          (Array.to_list r.Shard.winners))
    ;
    Alcotest.test_case "local ranks match per-shard monolithic runs" `Quick
      (fun () ->
        let n = 10 and l = 6 in
        let betas, r = sharded ~shard_size:5 ~n ~l () in
        Array.iter
          (fun ms ->
            (* The shard-local ranking must equal the plain rank of each
               member's beta among its shard-mates. *)
            let expect =
              Array.map
                (fun p ->
                  1
                  + Array.fold_left
                      (fun acc q ->
                        if Bigint.compare betas.(q) betas.(p) > 0 then acc + 1
                        else acc)
                      0 ms)
                ms
            in
            Array.iteri
              (fun j p ->
                Alcotest.(check int)
                  (Printf.sprintf "participant %d" p)
                  expect.(j)
                  r.Shard.local_ranks.(p))
              ms)
          r.Shard.plan.Shard.members)
    ;
    Alcotest.test_case "ties at the cut resolve deterministically" `Quick
      (fun () ->
        (* All betas equal: any k-subset is a valid top-k; the run must
           terminate and return exactly k winners, stably. *)
        let n = 8 and l = 5 and k = 3 in
        let betas = Array.make n (bi 11) in
        let r1 = S.run ~shard_size:3 ~committee:3 ~k (fresh_rng "tie") ~l ~betas in
        let r2 = S.run ~shard_size:3 ~committee:3 ~k (fresh_rng "tie") ~l ~betas in
        Alcotest.(check int) "k winners" k (Array.length r1.Shard.winners);
        Alcotest.(check (array int)) "stable" r1.Shard.winners r2.Shard.winners)
    ;
  ]

let topology_tests =
  [
    Alcotest.test_case "two-level tree shape" `Quick (fun () ->
        let shard_sizes = [| 3; 3; 2 |] in
        let topo = Ppgr_mpcnet.Topology.two_level_tree ~shard_sizes () in
        (* 1 root + 3 aggregators + 8 leaves; a tree has nodes-1 edges. *)
        Alcotest.(check int) "nodes" 12 (Ppgr_mpcnet.Topology.nodes topo);
        Alcotest.(check int) "edges" 11 (Ppgr_mpcnet.Topology.edge_count topo);
        let root, aggs, leaves =
          Ppgr_mpcnet.Topology.two_level_layout ~shard_sizes
        in
        Alcotest.(check int) "root" 0 root;
        Alcotest.(check (array int)) "aggregators" [| 1; 2; 3 |] aggs;
        Alcotest.(check int) "first leaf" 4 leaves.(0).(0);
        (* A leaf reaches the root through its aggregator: 2 hops. *)
        let next = Ppgr_mpcnet.Topology.routing topo in
        Alcotest.(check (list int)) "leaf->root path" [ 1; 0 ]
          (Ppgr_mpcnet.Topology.path ~next ~src:4 ~dst:0))
    ;
    Alcotest.test_case "overlay merges rounds index-wise" `Quick (fun () ->
        let open Ppgr_mpcnet.Netsim in
        let s1 =
          [
            { compute_s = 1.; messages = unicast ~src:0 ~dst:1 ~bytes:10 };
            { compute_s = 3.; messages = [] };
          ]
        in
        let s2 = [ { compute_s = 2.; messages = unicast ~src:2 ~dst:3 ~bytes:5 } ] in
        match overlay [ s1; s2 ] with
        | [ r1; r2 ] ->
            Alcotest.(check (float 0.)) "round 1 compute" 2. r1.compute_s;
            Alcotest.(check int) "round 1 msgs" 2 (List.length r1.messages);
            Alcotest.(check (float 0.)) "round 2 compute" 3. r2.compute_s;
            Alcotest.(check int) "round 2 msgs" 0 (List.length r2.messages)
        | _ -> Alcotest.fail "expected 2 rounds")
    ;
    Alcotest.test_case "fan-in simulation runs on the tree" `Quick (fun () ->
        let _, r = sharded ~n:10 ~l:6 () in
        let st = S.simulate_fan_in r in
        Alcotest.(check bool) "progress" true (st.Ppgr_mpcnet.Netsim.elapsed_s > 0.);
        Alcotest.(check bool) "traffic" true (st.Ppgr_mpcnet.Netsim.bytes_sent > 0))
    ;
  ]

let cost_model_tests =
  [
    Alcotest.test_case "sharded op total grows near-linearly" `Quick (fun () ->
        (* Fixed s: doubling n should roughly double the sharded group
           work (quadratic would quadruple it). *)
        let rng = fresh_rng "shard-linear" in
        let m = Cost_model.Shard_model.fit ~committee:3 rng ~l:4 in
        let at n = Cost_model.Shard_model.predict_sharded_ops m ~n ~shard_size:4 in
        let ratio = at 64 /. at 32 in
        Alcotest.(check bool)
          (Printf.sprintf "x%.2f" ratio)
          true
          (ratio > 1.8 && ratio < 2.2));
    Alcotest.test_case "predicted crossover within 20% of measurement" `Slow
      (fun () ->
        let l = 4 and shard_size = 4 and k = 2 in
        (* Deterministic unit prices: a group op is the unit.  At real
           prices a field multiplication is orders of magnitude cheaper
           and sharding wins immediately (the crossover degenerates to
           s+1); pricing the merge currency up moves the crossover into
           the interior where the model's two terms genuinely compete. *)
        let sec_per_op = 1.0 and sec_per_field_mult = 2.0 in
        let m = Cost_model.Shard_model.fit ~committee:3 (fresh_rng "crossfit") ~l in
        let predicted =
          match
            Cost_model.Shard_model.crossover m ~shard_size ~k ~sec_per_op
              ~sec_per_field_mult
          with
          | Some n -> n
          | None -> Alcotest.fail "no predicted crossover"
        in
        (* Measure the real crossover by scanning n: priced cost of a
           monolithic run vs a sharded run, both instrumented. *)
        let measured_mono n =
          float_of_int
            (Cost_model.Shard_model.measure_total_ops
               (fresh_rng (Printf.sprintf "mono-%d" n))
               ~l ~n)
          *. sec_per_op
        in
        let measured_sharded n =
          let r =
            S.run ~shard_size ~committee:3 ~k
              (fresh_rng (Printf.sprintf "xshard-%d" n))
              ~l
              ~betas:
                (distinct_betas (fresh_rng (Printf.sprintf "xbeta-%d" n)) n ~l)
          in
          (float_of_int r.Shard.group_ops *. sec_per_op)
          +. float_of_int r.Shard.merge.Shard.merge_costs.Ppgr_shamir.Engine.c_field_mults
             *. sec_per_field_mult
        in
        let cheaper n = measured_sharded n < measured_mono n in
        let rec scan n =
          if n > 40 then Alcotest.fail "no measured crossover below 40"
          else if cheaper n && cheaper (n + 1) && cheaper (n + 2) then n
          else scan (n + 1)
        in
        let measured = scan (shard_size + 1) in
        let err =
          Float.abs (float_of_int (predicted - measured))
          /. float_of_int measured
        in
        Printf.printf "crossover: predicted n*=%d measured n*=%d (err %.1f%%)\n"
          predicted measured (100. *. err);
        Alcotest.(check bool)
          (Printf.sprintf "predicted %d vs measured %d" predicted measured)
          true (err <= 0.20));
  ]

let observability_tests =
  [
    Alcotest.test_case "summary rolls up per shard" `Quick (fun () ->
        let module Trace = Ppgr_obs.Trace in
        Trace.set_enabled true;
        Trace.reset ();
        let _ = sharded ~n:8 ~l:6 () in
        let spans = Trace.spans () in
        Trace.set_enabled false;
        Trace.reset ();
        let rows = Ppgr_obs.Summary.by_shard spans in
        (* n=8 at shard_size=4: exactly shards 0 and 1. *)
        Alcotest.(check (list int)) "shards" [ 0; 1 ]
          (List.map (fun (r : Ppgr_obs.Summary.row) -> r.Ppgr_obs.Summary.party) rows);
        List.iter
          (fun (r : Ppgr_obs.Summary.row) ->
            Alcotest.(check bool) "wall accrued" true (r.Ppgr_obs.Summary.wall_us > 0.))
          rows)
    ;
    Alcotest.test_case "shard and merge histograms record" `Quick (fun () ->
        let module Hist = Ppgr_obs.Hist in
        Hist.set_enabled true;
        Hist.reset_all ();
        let _ = sharded ~n:8 ~l:6 () in
        Hist.set_enabled false;
        Alcotest.(check int) "one sample per shard" 2 (Hist.count Hist.shard_us);
        Alcotest.(check int) "one merge sample" 1 (Hist.count Hist.merge_us))
    ;
  ]

let () =
  Alcotest.run "shard"
    [
      ("plan", plan_tests);
      ("determinism", determinism_tests);
      ("differential", differential_tests);
      ("topology", topology_tests);
      ("cost-model", cost_model_tests);
      ("observability", observability_tests);
    ]

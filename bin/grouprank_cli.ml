(* Command-line driver for the privacy preserving group ranking
   framework.

   Subcommands:
     run       run a full ranking on synthetic or file-given inputs
     rank      committee-sharded ranking (near-linear in n)
     simulate  run the framework over the simulated network topology
     inspect   print group/parameter information

   Examples:
     grouprank_cli run --group ecc-160 -n 8 -k 3 --seed demo
     grouprank_cli run --group dl-1024 --spec 6,3,8,4 -n 5 --verbose
     grouprank_cli rank --group ecc-160 -n 200 -k 10 --shard-size 16
     grouprank_cli simulate -n 20 --nodes 40 --edges 90
     grouprank_cli inspect --group ecc-256 *)

open Cmdliner
open Ppgr_grouprank

let group_of_name = function
  | "dl-512" -> Ppgr_group.Dl_group.dl_512 ()
  | "dl-1024" -> Ppgr_group.Dl_group.dl_1024 ()
  | "dl-2048" -> Ppgr_group.Dl_group.dl_2048 ()
  | "dl-3072" -> Ppgr_group.Dl_group.dl_3072 ()
  | "dl-test" -> Ppgr_group.Dl_group.dl_test_128 ()
  | "ecc-160" -> Ppgr_group.Ec_group.ecc_160 ()
  | "ecc-192" -> Ppgr_group.Ec_group.ecc_192 ()
  | "ecc-224" -> Ppgr_group.Ec_group.ecc_224 ()
  | "ecc-256" -> Ppgr_group.Ec_group.ecc_256 ()
  | "ecc-tiny" -> Ppgr_group.Ec_group.ecc_tiny ()
  | s -> failwith (Printf.sprintf "unknown group %S (try: dl-1024 ecc-160 ecc-tiny dl-test)" s)

let group_arg =
  let doc =
    "Group instantiation: dl-512, dl-1024, dl-2048, dl-3072, dl-test, \
     ecc-160, ecc-192, ecc-224, ecc-256, ecc-tiny."
  in
  Arg.(value & opt string "ecc-tiny" & info [ "group"; "g" ] ~docv:"GROUP" ~doc)

let n_arg =
  Arg.(value & opt int 6 & info [ "n" ] ~docv:"N" ~doc:"Number of participants.")

let k_arg =
  Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"How many top participants are invited.")

let seed_arg =
  Arg.(value & opt string "cli" & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic RNG seed.")

let spec_arg =
  let doc =
    "Attribute spec as m,t,d1,d2: m attributes, the first t of them \
     \"equal to\", d1-bit values, d2-bit weights."
  in
  Arg.(value & opt string "4,2,8,4" & info [ "spec" ] ~docv:"M,T,D1,D2" ~doc)

let h_arg =
  Arg.(value & opt int 12 & info [ "h" ] ~docv:"H" ~doc:"Bits of the multiplicative gain mask rho.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print per-phase cost counters.")

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON of the run to $(docv) (loadable in \
     Perfetto / chrome://tracing): one span per protocol step per party, \
     with operation and byte counts as span arguments."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let jsonl_arg =
  let doc = "Write the recorded spans as one-JSON-object-per-line to $(docv)." in
  Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Print the per-phase × per-party metrics table (exponentiations, group \
     multiplications, bytes, wall time) and check its column sums against \
     the global meters."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let faults_arg =
  let doc =
    "After the ranking, replay the distributed (bytes-only) runtime under \
     a seeded fault schedule, e.g. \
     $(b,drop=0.1,corrupt=0.05,dup=0.05,reorder=0.05,delay=0.1,maxdelay=4,seed=chaos). \
     Prints the recovery report (retransmissions, CRC rejects, suppressed \
     duplicates, simulated backoff) and the physical transcript digest; \
     exits with status 3 on a typed Party_dropped abort."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let window_arg =
  let doc =
    "Transport window spec for the distributed (runtime) leg, e.g. \
     $(b,window=8,rto=4,link-0-1=16): sliding-window size per directed \
     link (1 = stop-and-wait), retransmission timeout in ticks, \
     per-link overrides.  Implies the runtime leg even without \
     $(b,--faults) (a clean schedule is used)."
  in
  Arg.(value & opt (some string) None & info [ "window" ] ~docv:"SPEC" ~doc)

let restart_arg =
  let doc =
    "Supervise the runtime leg with checkpoint/restart: on a \
     Party_dropped abort, resume from the last completed step up to \
     $(docv) times, then re-elect the ring without the dead party \
     (collusion bound degrades to n-3 for that session).  Implies the \
     runtime leg even without $(b,--faults)."
  in
  Arg.(value & opt int 0 & info [ "restart" ] ~docv:"N" ~doc)

let stats_out_arg =
  let doc =
    "Write a Prometheus text-format snapshot of all meters, probes and \
     latency/size histograms to $(docv) after the run (scrape payload of \
     the future daemon mode).  Enables histogram recording for the run."
  in
  Arg.(value & opt (some string) None & info [ "stats-out" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel hot loops (0 = all recommended \
     cores).  Defaults to the PPGR_JOBS environment variable, else 1.  \
     Results are identical at any job count; only wall time changes."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"K" ~doc)

let apply_jobs = function
  | None -> () (* leave PPGR_JOBS (or the default of 1) in charge *)
  | Some k -> Ppgr_exec.Pool.set_jobs k

let parse_spec s =
  match String.split_on_char ',' s with
  | [ m; t; d1; d2 ] ->
      Attrs.spec ~m:(int_of_string m) ~t:(int_of_string t)
        ~d1:(int_of_string d1) ~d2:(int_of_string d2)
  | _ -> failwith "spec must be m,t,d1,d2"

(* The chaos leg of [run]: the same participants' gains pushed through
   the message-passing runtime with a fault plan on every link.  The
   contract (test/test_chaos.ml): correct ranks or a typed abort with
   forensics — never a hang, never a silently wrong ranking. *)
let run_faults group spec criterion infos ~seed ?flows_out ?window
    ~restarts fspec =
  let module G = (val group : Ppgr_group.Group_intf.GROUP) in
  let module RT = Runtime.Make (G) in
  let open Ppgr_bigint in
  let gains = Array.map (Attrs.gain spec criterion) infos in
  (* Gains may be negative; ranking is invariant under a common shift,
     and phase 2 wants non-negative l-bit betas. *)
  let lo = Array.fold_left Stdlib.min 0 gains in
  let betas = Array.map (fun g -> Bigint.of_int (g - lo)) gains in
  let l =
    Array.fold_left (fun a b -> Stdlib.max a (Bigint.numbits b)) 1 betas
  in
  let fspec = Ppgr_mpcnet.Faultplan.spec_of_string fspec in
  Printf.printf "\nfault schedule: %s\n"
    (Ppgr_mpcnet.Faultplan.spec_to_string fspec);
  let window = Option.map Transport.winspec_of_string window in
  (match window with
  | Some w -> Printf.printf "window spec:    %s\n" (Transport.winspec_to_string w)
  | None -> ());
  let rng = Ppgr_rng.Rng.create ~seed:(seed ^ "-faults") in
  (* [restarts] above 0 supervises with checkpoint/restart; the result
     carries how the run got there (resumes / ring re-election). *)
  let run () =
    if restarts = 0 then (RT.run ~faults:fspec ?window rng ~l ~betas, 0, None)
    else begin
      let rc =
        RT.run_with_restart ~faults:fspec ?window ~max_restarts:restarts rng
          ~l ~betas
      in
      (rc.RT.rec_stats, rc.RT.rec_resumes, rc.RT.rec_reelected)
    end
  in
  (* With --trace the chaos leg is captured too: its spans plus the
     transport's causal ledger become a flow-arrow trace beside the
     main one. *)
  let outcome =
    match flows_out with
    | None -> ( try Ok (run (), None) with Transport.Party_dropped f -> Error f)
    | Some _ -> (
        try
          let st, spans = Ppgr_obs.Trace.capture run in
          Ok (st, Some spans)
        with Transport.Party_dropped f -> Error f)
  in
  match outcome with
  | Ok ((st, resumes, reelected), spans_opt) ->
      let injected =
        String.concat ", "
          (List.filter_map
             (fun (k, c) -> if c = 0 then None else Some (Printf.sprintf "%s %d" k c))
             st.RT.faults_injected)
      in
      Printf.printf "runtime survived: ranks %s\n"
        (String.concat ","
           (Array.to_list (Array.map string_of_int st.RT.ranks)));
      (match (resumes, reelected) with
      | 0, None -> ()
      | r, None ->
          Printf.printf "  recovery:          resumed from checkpoint %d time(s)\n" r
      | r, Some dead ->
          Printf.printf
            "  recovery:          %d failed resume(s); ring re-elected without \
             P%d (collusion bound now n-3)\n"
            r (dead + 1));
      Printf.printf "  injected:          %s\n"
        (if injected = "" then "nothing" else injected);
      Printf.printf "  retransmissions:   %d\n" st.RT.retransmits;
      Printf.printf "  CRC rejects:       %d\n" st.RT.crc_rejects;
      Printf.printf "  dups suppressed:   %d\n" st.RT.dup_suppressed;
      Printf.printf "  backoff ticks:     %d\n" st.RT.backoff_ticks;
      if st.RT.acks_sent > 0 then
        Printf.printf "  acks:              %d (%d bytes, control plane)\n"
          st.RT.acks_sent st.RT.ack_bytes;
      Printf.printf "  simulated ticks:   %d\n" st.RT.sim_ticks;
      Printf.printf "  bytes (logical):   %d in %d messages\n" st.RT.bytes_on_wire
        st.RT.messages;
      Printf.printf "  bytes (physical):  %d in %d transmissions\n" st.RT.phys_bytes
        st.RT.phys_messages;
      Printf.printf "  transcript sha256: %s\n" st.RT.transcript_sha;
      (* Per-directed-link physical accounting; the links must tile the
         global physical counters exactly (they tally at transmit time,
         so the check holds under reordering too). *)
      Printf.printf "  per-link physical traffic:\n";
      Printf.printf "    %4s %4s %10s %12s %8s\n" "from" "to" "msgs" "bytes"
        "retrans";
      List.iter
        (fun (lk : Transport.link) ->
          Printf.printf "    %4d %4d %10d %12d %8d\n" lk.Transport.lk_src
            lk.Transport.lk_dst lk.Transport.lk_msgs lk.Transport.lk_bytes
            lk.Transport.lk_retrans)
        st.RT.links;
      let sum f = List.fold_left (fun a lk -> a + f lk) 0 st.RT.links in
      let lk_msgs = sum (fun lk -> lk.Transport.lk_msgs) in
      let lk_bytes = sum (fun lk -> lk.Transport.lk_bytes) in
      let lk_retrans = sum (fun lk -> lk.Transport.lk_retrans) in
      Printf.printf "    links total: %d msgs, %d bytes, %d retrans  %s\n" lk_msgs
        lk_bytes lk_retrans
        (if
           lk_msgs = st.RT.phys_messages
           && lk_bytes = st.RT.phys_bytes
           && lk_retrans = st.RT.retransmits
         then "(tiles physical counters: ok)"
         else "(MISMATCH vs physical counters)");
      if
        lk_msgs <> st.RT.phys_messages
        || lk_bytes <> st.RT.phys_bytes
        || lk_retrans <> st.RT.retransmits
      then failwith "per-link accounting does not tile the physical counters";
      (match (flows_out, spans_opt) with
      | Some path, Some spans ->
          Ppgr_obs.Export.write_chrome
            ~flows:(Transport.flows_to_export st.RT.flows)
            path spans;
          Printf.printf
            "  flows trace: %d spans + %d causal arrows -> %s (Perfetto)\n"
            (List.length spans) (List.length st.RT.flows) path
      | _ -> ());
      0
  | Error f ->
      Printf.printf "runtime aborted: Party_dropped\n";
      Printf.printf "  step:      %s\n" f.Transport.fr_step;
      Printf.printf "  link:      P%d -> P%d (seq %d)\n" (f.Transport.fr_src + 1)
        (f.Transport.fr_dst + 1) f.Transport.fr_seq;
      Printf.printf "  attempts:  %d (%s)\n" f.Transport.fr_attempts
        (String.concat "," f.Transport.fr_events);
      Printf.printf "  digest at abort: %s\n" f.Transport.fr_digest;
      (* The dropping sender's flight-recorder tail: the last wire
         events preceding the abort, oldest first. *)
      Printf.printf "  flight recorder (P%d, last %d events):\n"
        (f.Transport.fr_src + 1)
        (List.length f.Transport.fr_flight);
      List.iter
        (fun ev ->
          Printf.printf "    %s\n"
            (Format.asprintf "%a" Ppgr_obs.Flightrec.pp_event ev))
        f.Transport.fr_flight;
      3

let run_cmd group_name n k seed spec_s h verbose jobs trace jsonl metrics faults
    window restart stats_out =
  apply_jobs jobs;
  let rng = Ppgr_rng.Rng.create ~seed in
  let spec = parse_spec spec_s in
  let criterion = Attrs.random_criterion rng spec in
  let infos = Array.init n (fun _ -> Attrs.random_info rng spec) in
  let cfg = Framework.config ~h ~spec ~k () in
  let group = group_of_name group_name in
  let module G = (val group) in
  Printf.printf "group: %s (order %d bits), participants: %d, k: %d\n" G.name
    (Ppgr_bigint.Bigint.numbits G.order)
    n k;
  let observing =
    trace <> None || jsonl <> None || metrics || stats_out <> None
  in
  if stats_out <> None then begin
    Ppgr_obs.Hist.reset_all ();
    Ppgr_obs.Hist.set_enabled true
  end;
  if observing then begin
    (* The probes sampled at every span boundary: full exponentiations
       (global engine meter), this group's multiplication counter, and
       any family-specific counters the group exports (the EC family's
       field-inversion count, where batch normalization shows up). *)
    Ppgr_obs.Metrics.register ~name:"exps" (fun () -> Ppgr_group.Opmeter.count ());
    Ppgr_obs.Metrics.register ~name:"group_mults" (fun () -> G.op_count ());
    List.iter
      (fun (name, read) -> Ppgr_obs.Metrics.register ~name read)
      G.probes
  end;
  let exps0 = Ppgr_group.Opmeter.count () in
  let mults0 = G.op_count () in
  let t0 = Unix.gettimeofday () in
  let out, spans =
    if observing then
      Ppgr_obs.Trace.capture (fun () ->
          Framework.run_with_group group rng cfg ~criterion ~infos)
    else (Framework.run_with_group group rng cfg ~criterion ~infos, [])
  in
  (* Probes stay registered until after the --stats-out snapshot (end
     of this function) so the exposition includes their counters. *)
  let unregister_probes () =
    if observing then begin
      Ppgr_obs.Metrics.unregister ~name:"exps";
      Ppgr_obs.Metrics.unregister ~name:"group_mults";
      List.iter (fun (name, _) -> Ppgr_obs.Metrics.unregister ~name) G.probes
    end
  in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "\n%-4s %-10s %s\n" "who" "rank" "gain (cleartext, for reference only)";
  Array.iteri
    (fun j r ->
      Printf.printf "P%-3d %-10d %d\n" (j + 1) r
        (Attrs.gain spec criterion infos.(j)))
    out.Framework.ranks;
  Printf.printf "\nsubmissions: %s\n"
    (String.concat ", "
       (List.map
          (fun s -> Printf.sprintf "P%d(rank %d)" (s.Framework.participant + 1) s.Framework.claimed_rank)
          out.Framework.accepted));
  if out.Framework.flagged <> [] then
    Printf.printf "flagged over-claims: %d\n" (List.length out.Framework.flagged);
  if verbose then begin
    let c = out.Framework.costs in
    Printf.printf "\ncosts:\n";
    Printf.printf "  beta bit-length l: %d\n" c.Framework.beta_bits;
    Printf.printf "  per-participant group ops: %s\n"
      (String.concat ", "
         (Array.to_list (Array.map string_of_int c.Framework.participant_ops)));
    Printf.printf "  per-participant exponentiations: %s\n"
      (String.concat ", "
         (Array.to_list (Array.map string_of_int c.Framework.participant_exps)));
    Printf.printf "  initiator field mults: %d\n" c.Framework.initiator_field_mults;
    Printf.printf "  rounds: %d, messages: %d, bytes: %d\n"
      (List.length c.Framework.schedule)
      (Cost.total_messages c.Framework.schedule)
      (Cost.total_bytes c.Framework.schedule)
  end;
  (match trace with
  | Some path ->
      Ppgr_obs.Export.write_chrome path spans;
      Printf.printf "\ntrace: %d spans -> %s (load in https://ui.perfetto.dev)\n"
        (List.length spans) path
  | None -> ());
  (match jsonl with
  | Some path ->
      Ppgr_obs.Export.write_jsonl path spans;
      Printf.printf "jsonl: %d spans -> %s\n" (List.length spans) path
  | None -> ());
  if metrics then begin
    let rows = Ppgr_obs.Summary.rows spans in
    Printf.printf "\nper-phase x per-party metrics:\n%s"
      (Ppgr_obs.Summary.to_string rows);
    (* The party spans tile the run, so their column sums must equal
       the global meters over the same interval. *)
    let sum_exps = Ppgr_obs.Summary.total rows "exps" in
    let sum_mults = Ppgr_obs.Summary.total rows "group_mults" in
    let sum_bytes = Ppgr_obs.Summary.total rows "bytes_out" in
    let glob_exps = Ppgr_group.Opmeter.count () - exps0 in
    let glob_mults = G.op_count () - mults0 in
    let glob_bytes = Cost.total_bytes out.Framework.costs.Framework.schedule in
    let check label a b =
      Printf.printf "  %-12s %12d (table) %12d (global)  %s\n" label a b
        (if a = b then "ok" else "MISMATCH")
    in
    Printf.printf "\nconsistency (table column sums vs global meters):\n";
    check "exps" sum_exps glob_exps;
    check "group_mults" sum_mults glob_mults;
    check "bytes" sum_bytes glob_bytes;
    if sum_exps <> glob_exps || sum_mults <> glob_mults || sum_bytes <> glob_bytes
    then failwith "metrics consistency check failed"
  end;
  Printf.printf "\nwall clock: %.3f s\n" dt;
  let code =
    if faults = None && window = None && restart = 0 then 0
    else begin
      (* --window / --restart imply the runtime leg even without a
         fault schedule (a clean seeded plan is used).  A traced leg
         writes its own flow-arrow trace next to the main one. *)
      let fspec = Option.value faults ~default:"seed=clean" in
      let flows_out = Option.map (fun p -> p ^ ".flows.json") trace in
      run_faults group spec criterion infos ~seed ?flows_out ?window
        ~restarts:restart fspec
    end
  in
  (match stats_out with
  | Some path ->
      Ppgr_obs.Export.write_prometheus path;
      Ppgr_obs.Hist.set_enabled false;
      Printf.printf "stats: Prometheus snapshot -> %s\n" path
  | None -> ());
  unregister_probes ();
  if code <> 0 then exit code

let shards_arg =
  let doc =
    "Number of shards (rings).  Mutually exclusive with $(b,--shard-size): \
     the bound s is derived as ceil(n / shards)."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"S" ~doc)

let shard_size_arg =
  let doc = "Maximum participants per shard ring (the bound s)." in
  Arg.(value & opt (some int) None & info [ "shard-size" ] ~docv:"SIZE" ~doc)

let committee_arg =
  let doc = "Merge committee size m (threshold (m-1)/2 honest-but-curious)." in
  Arg.(value & opt int 5 & info [ "committee" ] ~docv:"M" ~doc)

(* Committee-sharded ranking: the quadratic ring broken into rings of
   bounded size plus a secure top-k merge (lib/grouprank/shard.ml).
   Near-linear in n — this is the subcommand that ranks 10k+. *)
let rank_cmd group_name n k seed spec_s jobs shards shard_size committee
    metrics =
  apply_jobs jobs;
  let shard_size =
    match (shards, shard_size) with
    | Some _, Some _ -> failwith "--shards and --shard-size are mutually exclusive"
    | Some s, None ->
        if s < 1 then failwith "--shards must be >= 1";
        Stdlib.max 2 ((n + s - 1) / s)
    | None, Some sz -> sz
    | None, None -> 16
  in
  let rng = Ppgr_rng.Rng.create ~seed in
  let spec = parse_spec spec_s in
  let criterion = Attrs.random_criterion rng spec in
  let infos = Array.init n (fun _ -> Attrs.random_info rng spec) in
  let gains = Array.map (Attrs.gain spec criterion) infos in
  let lo = Array.fold_left Stdlib.min 0 gains in
  let betas =
    Array.map (fun g -> Ppgr_bigint.Bigint.of_int (g - lo)) gains
  in
  let l =
    Array.fold_left
      (fun a b -> Stdlib.max a (Ppgr_bigint.Bigint.numbits b))
      1 betas
  in
  let group = group_of_name group_name in
  let module G = (val group) in
  let module S = Shard.Make (G) in
  Printf.printf
    "group: %s, participants: %d, k: %d, shard bound s: %d, committee: %d\n"
    G.name n k shard_size committee;
  let t0 = Unix.gettimeofday () in
  let res, spans =
    if metrics then
      Ppgr_obs.Trace.capture (fun () ->
          S.run ~shard_size ~committee ~k rng ~l ~betas)
    else (S.run ~shard_size ~committee ~k rng ~l ~betas, [])
  in
  let dt = Unix.gettimeofday () -. t0 in
  let plan = res.Shard.plan in
  Printf.printf "shards: %d (sizes %s)\n"
    (Shard.shards plan)
    (String.concat ","
       (Array.to_list (Array.map string_of_int (Shard.sizes plan))));
  Printf.printf "winners (top-%d, membership only): %s\n" k
    (String.concat ", "
       (Array.to_list
          (Array.map (fun p -> Printf.sprintf "P%d" (p + 1)) res.Shard.winners)));
  Printf.printf "\nper-shard:\n";
  Printf.printf "  %5s %5s %10s %14s %12s  %s\n" "shard" "size" "wall_s"
    "group_mults" "bytes" "transcript sha256";
  Array.iter
    (fun (s : Shard.shard_stat) ->
      Printf.printf "  %5d %5d %10.3f %14d %12d  %s\n" s.Shard.shard
        s.Shard.size s.Shard.shard_wall_s s.Shard.shard_group_ops
        s.Shard.shard_bytes s.Shard.shard_sha)
    res.Shard.shard_stats;
  let mc = res.Shard.merge.Shard.merge_costs in
  Printf.printf
    "\nmerge: %d candidates -> %d winners on a %d-party committee\n"
    (Array.length res.Shard.merge.Shard.candidates)
    (Array.length res.Shard.winners)
    res.Shard.merge.Shard.committee;
  Printf.printf
    "  field mults: %d, rounds: %d, elements: %d, opens: %d, wall: %.3f s\n"
    mc.Ppgr_shamir.Engine.c_mults mc.Ppgr_shamir.Engine.c_rounds
    mc.Ppgr_shamir.Engine.c_elements mc.Ppgr_shamir.Engine.c_opens
    res.Shard.merge.Shard.merge_wall_s;
  Printf.printf "\ntotal group mults: %d\n" res.Shard.group_ops;
  Printf.printf "transcript sha256: %s\n" res.Shard.transcript_sha;
  let st = S.simulate_fan_in res in
  Printf.printf
    "fan-in tree (root + %d aggregators): elapsed %.2f s, %d messages, %d bytes, %d rounds\n"
    (Shard.shards plan) st.Ppgr_mpcnet.Netsim.elapsed_s
    st.Ppgr_mpcnet.Netsim.message_count st.Ppgr_mpcnet.Netsim.bytes_sent
    st.Ppgr_mpcnet.Netsim.rounds;
  if metrics then begin
    let rows = Ppgr_obs.Summary.by_shard spans in
    Printf.printf "\nper-shard metrics roll-up:\n%s"
      (Ppgr_obs.Summary.to_string rows)
  end;
  Printf.printf "\nwall clock: %.3f s\n" dt

let simulate_cmd group_name n k seed nodes edges jobs metrics =
  apply_jobs jobs;
  let rng = Ppgr_rng.Rng.create ~seed in
  let spec = parse_spec "4,2,8,4" in
  let criterion = Attrs.random_criterion rng spec in
  let infos = Array.init n (fun _ -> Attrs.random_info rng spec) in
  let cfg = Framework.config ~h:10 ~spec ~k () in
  let out = Framework.run_with_group (group_of_name group_name) rng cfg ~criterion ~infos in
  let open Ppgr_mpcnet in
  let topo = Topology.random_connected rng ~nodes ~edges () in
  let placement = Netsim.place_parties topo ~parties:(n + 1) in
  (* Use a representative per-op cost; the bench harness calibrates this
     per group. *)
  let st =
    Netsim.run topo ~placement
      (Cost.to_netsim ~seconds_per_op:5e-6 out.Framework.costs.Framework.schedule)
  in
  Printf.printf
    "simulated on %d-node/%d-edge topology: elapsed %.2f s, %d messages, %d bytes, %d rounds\n"
    nodes edges st.Netsim.elapsed_s st.Netsim.message_count st.Netsim.bytes_sent
    st.Netsim.rounds;
  if metrics then begin
    Printf.printf "\nper-party end-to-end traffic (party n is the initiator):\n";
    Printf.printf "%6s %12s %12s\n" "party" "bytes_out" "bytes_in";
    Array.iteri
      (fun j out ->
        Printf.printf "%6d %12d %12d\n" j out st.Netsim.party_bytes_in.(j))
      st.Netsim.party_bytes_out;
    Printf.printf "\nbusiest directed links (store-and-forward hops included):\n";
    Printf.printf "%6s %6s %12s %10s\n" "from" "to" "bytes" "messages";
    let edges_sorted =
      List.sort
        (fun (a : Netsim.edge_traffic) b -> compare b.edge_bytes a.edge_bytes)
        st.Netsim.edges
    in
    List.iteri
      (fun i (e : Netsim.edge_traffic) ->
        if i < 20 then
          Printf.printf "%6d %6d %12d %10d\n" e.Netsim.node_from e.Netsim.node_to
            e.Netsim.edge_bytes e.Netsim.edge_messages)
      edges_sorted;
    if List.length edges_sorted > 20 then
      Printf.printf "  (%d links total)\n" (List.length edges_sorted)
  end

let inspect_cmd group_name =
  let module G = (val group_of_name group_name) in
  Printf.printf "name:           %s\n" G.name;
  Printf.printf "security:       %d-bit symmetric equivalent\n" G.security_bits;
  Printf.printf "order bits:     %d\n" (Ppgr_bigint.Bigint.numbits G.order);
  Printf.printf "element bytes:  %d\n" G.element_bytes;
  Printf.printf "ciphertext S_c: %d bytes\n" (2 * G.element_bytes);
  Printf.printf "order:          %s\n" (Ppgr_bigint.Bigint.to_string_hex G.order)

let run_term =
  Term.(
    const run_cmd $ group_arg $ n_arg $ k_arg $ seed_arg $ spec_arg $ h_arg
    $ verbose_arg $ jobs_arg $ trace_arg $ jsonl_arg $ metrics_arg
    $ faults_arg $ window_arg $ restart_arg $ stats_out_arg)

let rank_term =
  Term.(
    const rank_cmd $ group_arg $ n_arg $ k_arg $ seed_arg $ spec_arg
    $ jobs_arg $ shards_arg $ shard_size_arg $ committee_arg $ metrics_arg)

let nodes_arg =
  Arg.(value & opt int 80 & info [ "nodes" ] ~docv:"V" ~doc:"Topology nodes.")

let edges_arg =
  Arg.(value & opt int 320 & info [ "edges" ] ~docv:"E" ~doc:"Topology edges.")

let simulate_term =
  Term.(
    const simulate_cmd $ group_arg $ n_arg $ k_arg $ seed_arg $ nodes_arg
    $ edges_arg $ jobs_arg $ metrics_arg)

let inspect_term = Term.(const inspect_cmd $ group_arg)

let () =
  let info_ =
    Cmd.info "grouprank_cli" ~version:"1.0.0"
      ~doc:"Privacy preserving group ranking (ICDCS 2012 reproduction)"
  in
  let cmds =
    Cmd.group info_
      [
        Cmd.v (Cmd.info "run" ~doc:"Run a ranking end to end") run_term;
        Cmd.v
          (Cmd.info "rank" ~doc:"Committee-sharded ranking (near-linear in n)")
          rank_term;
        Cmd.v (Cmd.info "simulate" ~doc:"Run over the simulated network") simulate_term;
        Cmd.v (Cmd.info "inspect" ~doc:"Print group parameters") inspect_term;
      ]
  in
  exit (Cmd.eval cmds)

(* Regenerates the MODP group moduli (RFC 2412 / RFC 3526 construction):

     p = 2^n - 2^(n-64) - 1 + 2^64 * (floor(2^(n-130) * pi) + c)

   where [c] is the smallest non-negative integer making [p] a safe prime.
   Running with [--bits n] reproduces the published constant for that size
   (the RFCs picked the smallest such [c] too), so this tool both validates
   the constants vendored in [Modp_params] and produced the 3072-bit one.

   pi is computed to the needed precision with Machin's formula
   pi = 16 arctan(1/5) - 4 arctan(1/239) in fixed point. *)

open Ppgr_bigint
open Ppgr_rng

(* Fixed-point arctan(1/x) * 2^prec via the alternating power series. *)
let arctan_inv ~prec x =
  let open Bigint in
  let scale = nth_bit_weight prec in
  let x2 = of_int (x * x) in
  let rec go term k acc sign =
    if is_zero term then acc
    else begin
      let contrib = div term (of_int ((2 * k) + 1)) in
      let acc = if sign then add acc contrib else sub acc contrib in
      go (div term x2) (k + 1) acc (not sign)
    end
  in
  go (div scale (of_int x)) 0 zero true

let pi_fixed ~prec =
  let open Bigint in
  (* Extra guard bits against truncation error accumulation. *)
  let gp = prec + 64 in
  let a = arctan_inv ~prec:gp 5 in
  let b = arctan_inv ~prec:gp 239 in
  shift_right (sub (mul_int a 16) (mul_int b 4)) 64

(* Incremental small-prime sieve on p(c) = p0 + c * 2^64 and
   q(c) = (p(c) - 1) / 2: per prime sp we track p0 mod sp and step by
   2^64 mod sp, so scanning millions of candidates is cheap. *)
let find_c ~bits ~progress =
  let open Bigint in
  let pi = pi_fixed ~prec:(bits - 130 + 64) in
  let mid = shift_right pi 64 in
  (* floor(2^(bits-130) * pi): pi_fixed at prec gives pi * 2^prec. *)
  let p0 =
    add
      (sub (sub (nth_bit_weight bits) (nth_bit_weight (bits - 64))) one)
      (shift_left mid 64)
  in
  let two64 = nth_bit_weight 64 in
  (* Sieve primes up to a bound tuned to keep Miller-Rabin calls rare. *)
  let bound = 200_000 in
  let sieve = Array.make (bound + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to bound do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= bound do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  let primes = ref [] in
  for i = bound downto 3 do
    if sieve.(i) then primes := i :: !primes
  done;
  let primes = Array.of_list !primes in
  let np = Array.length primes in
  let p_res = Array.make np 0 in
  let step = Array.make np 0 in
  let inv2 = Array.make np 0 in
  for i = 0 to np - 1 do
    let sp = primes.(i) in
    p_res.(i) <- to_int_exn (erem p0 (of_int sp));
    step.(i) <- to_int_exn (erem two64 (of_int sp));
    inv2.(i) <- (sp + 1) / 2
  done;
  let rng = Rng.create ~seed:"gen-modp" in
  let mr_calls = ref 0 in
  let passes_sieve c =
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < np do
      let sp = primes.(!i) in
      let pr = (p_res.(!i) + (c mod sp * step.(!i))) mod sp in
      if pr = 0 then ok := false
      else begin
        (* q mod sp = (p - 1)/2 mod sp. *)
        let qr = (pr - 1 + sp) mod sp * inv2.(!i) mod sp in
        if qr = 0 then ok := false
      end;
      incr i
    done;
    !ok
  in
  (* Sieve survivors are Miller–Rabin-tested in parallel batches; each
     candidate draws witnesses from its own child stream keyed by [c],
     and the smallest passing candidate of a batch wins, so the chosen
     [c] is independent of the job count. *)
  let test_candidate c =
    let crng = Rng.split rng ~label:(Printf.sprintf "cand-%d" c) in
    let rand = Rng.as_prime_rand crng in
    let p = add p0 (mul two64 (of_int c)) in
    let q = shift_right (pred p) 1 in
    if Prime.is_probable_prime ~rounds:4 rand q
       && Prime.is_probable_prime ~rounds:4 rand p
    then Some (c, p)
    else None
  in
  let batch_size = Stdlib.max 8 (4 * Ppgr_exec.Pool.jobs ()) in
  let rec collect c acc k =
    if k = 0 then (List.rev acc, c)
    else begin
      if c mod 100_000 = 0 && c > 0 then progress c !mr_calls;
      if passes_sieve c then collect (c + 1) (c :: acc) (k - 1)
      else collect (c + 1) acc k
    end
  in
  let rec search c0 =
    let survivors, next_c = collect c0 [] batch_size in
    let survivors = Array.of_list survivors in
    mr_calls := !mr_calls + Array.length survivors;
    let results = Ppgr_exec.Pool.parallel_map test_candidate survivors in
    match Array.find_opt (fun r -> r <> None) results with
    | Some (Some cp) -> cp
    | _ -> search next_c
  in
  search 0

let run bits =
  let t0 = Unix.gettimeofday () in
  let progress c mr =
    Printf.printf "  ... c=%d, %d MR calls, %.0fs\n%!" c mr
      (Unix.gettimeofday () -. t0)
  in
  let c, p = find_c ~bits ~progress in
  Printf.printf "bits=%d c=%d (%.0fs)\np = 0x%s\n%!" bits c
    (Unix.gettimeofday () -. t0)
    (Bigint.to_string_hex p)

let () =
  let bits = ref [] in
  let spec =
    [
      ( "--bits",
        Arg.Int (fun b -> bits := b :: !bits),
        "N generate the N-bit MODP modulus (repeatable)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "gen_modp --bits N [--bits N ...]";
  let bits = if !bits = [] then [ 1024 ] else List.rev !bits in
  List.iter run bits

(* Bechamel micro-benchmarks: one [Test.make] per figure workload plus
   the cryptographic primitives everything reduces to.  These measure
   actual wall-clock on this machine; the figure sweeps in {!Figures}
   scale them through the cost models. *)

open Bechamel
open Toolkit
open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_grouprank

let rng = Rng.create ~seed:"ppgr-micro"

let primitive_tests () =
  let m1024 = Modp_params.p_1024 in
  let a = Rng.bigint_below rng m1024 and b = Rng.bigint_below rng m1024 in
  let ring = Bigint.Modring.ctx ~modulus:m1024 in
  let am = Bigint.Modring.enter ring a and bm = Bigint.Modring.enter ring b in
  let module Dl = (val Dl_group.dl_1024 ()) in
  let module Ec = (val Ec_group.ecc_160 ()) in
  let dl_x = Dl.pow_gen (Dl.random_scalar rng) in
  let dl_y = Dl.pow_gen (Dl.random_scalar rng) in
  let ec_x = Ec.pow_gen (Ec.random_scalar rng) in
  let ec_y = Ec.pow_gen (Ec.random_scalar rng) in
  let dl_e = Dl.random_scalar rng and ec_e = Ec.random_scalar rng in
  let dl_f = Dl.random_scalar rng and ec_f = Ec.random_scalar rng in
  let f = Ppgr_dotprod.Zfield.default () in
  let fa = Ppgr_dotprod.Zfield.random rng f and fb = Ppgr_dotprod.Zfield.random rng f in
  let key = Rng.bytes rng 32 and nonce = Rng.bytes rng 12 in
  let block = Bytes.create 64 in
  [
    Test.make ~name:"bigint-mul-1024b" (Staged.stage (fun () -> ignore (Bigint.mul a b)));
    Test.make ~name:"montgomery-mult-1024b"
      (Staged.stage (fun () -> ignore (Bigint.Modring.mul ring am bm)));
    Test.make ~name:"dl1024-group-mult" (Staged.stage (fun () -> ignore (Dl.mul dl_x dl_x)));
    Test.make ~name:"dl1024-exp" (Staged.stage (fun () -> ignore (Dl.pow dl_x dl_e)));
    Test.make ~name:"dl1024-exp-fixed-base"
      (Staged.stage (fun () -> ignore (Dl.pow_gen dl_e)));
    Test.make ~name:"dl1024-pow2"
      (Staged.stage (fun () -> ignore (Dl.pow2 dl_x dl_e dl_y dl_f)));
    Test.make ~name:"ecc160-point-add" (Staged.stage (fun () -> ignore (Ec.mul ec_x ec_x)));
    Test.make ~name:"ecc160-scalar-mult" (Staged.stage (fun () -> ignore (Ec.pow ec_x ec_e)));
    Test.make ~name:"ecc160-scalar-mult-fixed-base"
      (Staged.stage (fun () -> ignore (Ec.pow_gen ec_e)));
    Test.make ~name:"ecc160-pow2"
      (Staged.stage (fun () -> ignore (Ec.pow2 ec_x ec_e ec_y ec_f)));
    Test.make ~name:"zfield-mult-192b"
      (Staged.stage (fun () -> ignore (Ppgr_dotprod.Zfield.mul f fa fb)));
    Test.make ~name:"sha256-block" (Staged.stage (fun () -> ignore (Ppgr_hash.Sha256.digest_bytes block)));
    Test.make ~name:"chacha20-block"
      (Staged.stage (fun () -> ignore (Ppgr_rng.Chacha20.block ~key ~nonce ~counter:0)));
  ]

(* One Test.make per figure: the unit workload that figure sweeps. *)
let figure_tests () =
  let spec = Attrs.spec ~m:10 ~t:5 ~d1:15 ~d2:10 in
  let criterion = Attrs.random_criterion rng spec in
  let info = Attrs.random_info rng spec in
  let p1cfg = Phase1.config ~spec ~h:15 () in
  let secrets = Phase1.draw_masks rng p1cfg ~n:1 in
  let module G = (val Dl_group.dl_test_64 ()) in
  let module P2 = Phase2.Make (G) in
  let l = Phase1.beta_bits p1cfg in
  let betas5 = Array.init 5 (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l)) in
  let field = Ppgr_dotprod.Zfield.default () in
  let engine () = Ppgr_shamir.Engine.create rng field ~n:5 in
  let prm = { Ppgr_shamir.Compare.l = 16; kappa = 40; log_prefix = true } in
  let topo_rng = Rng.split rng ~label:"topo" in
  [
    (* Fig 2(a-d) unit: one secure gain computation + one phase-2 run. *)
    Test.make ~name:"fig2-unit-phase1-interaction"
      (Staged.stage (fun () ->
           ignore (Phase1.run_one rng p1cfg ~criterion ~secrets ~j:0 ~info)));
    Test.make ~name:"fig2-unit-phase2-n5"
      (Staged.stage (fun () -> ignore (P2.run rng ~l ~betas:betas5)));
    (* Fig 3(a) unit: one full-size exponentiation at each level is the
       dominant term; covered by dl1024-exp/ecc160-scalar-mult above;
       here the joint-key setup. *)
    Test.make ~name:"fig3a-unit-keygen-and-proof"
      (Staged.stage (fun () ->
           let module Z = Ppgr_zkp.Schnorr.Make (G) in
           let x = G.random_scalar rng in
           let t = Z.prove_interactive rng ~secret:x ~statement:(G.pow_gen x) ~n_verifiers:4 in
           ignore (Z.verify_transcript ~statement:(G.pow_gen x) t)));
    (* Fig 3(b) unit: routing + event simulation of one broadcast round. *)
    Test.make ~name:"fig3b-unit-netsim-round"
      (Staged.stage (fun () ->
           let topo =
             Ppgr_mpcnet.Topology.random_connected topo_rng ~nodes:20 ~edges:40 ()
           in
           let placement = Ppgr_mpcnet.Netsim.place_parties topo ~parties:10 in
           ignore
             (Ppgr_mpcnet.Netsim.run topo ~placement
                [
                  {
                    Ppgr_mpcnet.Netsim.compute_s = 0.;
                    messages = Ppgr_mpcnet.Netsim.all_broadcast ~parties:10 ~bytes:1024;
                  };
                ])));
    (* Analysis-table unit: one SS comparator (comparison + exchange). *)
    Test.make ~name:"analysis-unit-ss-comparator"
      (Staged.stage (fun () ->
           let e = engine () in
           let x = Ppgr_shamir.Engine.input e (Bigint.of_int 123) in
           let y = Ppgr_shamir.Engine.input e (Bigint.of_int 456) in
           ignore (Ppgr_shamir.Compare.ge e prm x y)));
  ]

let run () =
  let tests = Test.make_grouped ~name:"ppgr" ~fmt:"%s %s" (primitive_tests () @ figure_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n== Bechamel micro-benchmarks (monotonic clock) ==\n";
  Printf.printf "%-40s %16s\n" "benchmark" "time/run";
  let rows = ref [] in
  Hashtbl.iter (fun name result -> rows := (name, result) :: !rows) results;
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          let pretty =
            if est > 1e6 then Printf.sprintf "%10.3f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%10.3f us" (est /. 1e3)
            else Printf.sprintf "%10.1f ns" est
          in
          Printf.printf "%-40s %16s\n" name pretty
      | _ -> Printf.printf "%-40s %16s\n" name "n/a")
    (List.sort compare !rows)

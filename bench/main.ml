(* The evaluation harness: regenerates every figure of the paper
   (Fig. 2(a-d), Fig. 3(a-b)), the VI-B analysis table, the DESIGN.md
   ablations, and a Bechamel micro-benchmark table.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig2 fig3a   # a subset
   Sections: calibrate fig2 fig3a fig3b analysis ablations micro trajectory
   scaling obs ring chaos limbs exp obsv2 shard async, plus scaling-smoke,
   ring-smoke, chaos-smoke, limbs-smoke, exp-smoke, obsv2-smoke,
   shard-smoke and async-smoke (the cheap CI determinism checks, not part
   of the default set).  "shard" is also excluded from the default set:
   its 10k-point leg runs for an hour-plus on one core
   (PPGR_SHARD_BENCH_N shrinks it). *)

let sections_requested =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as rest) -> rest
  | _ ->
      [
        "calibrate"; "fig2"; "fig3a"; "fig3b"; "analysis"; "ablations"; "micro";
        "trajectory"; "scaling"; "obs"; "ring"; "chaos"; "limbs"; "exp";
        "obsv2"; "async";
      ]

let want s = List.mem s sections_requested

let () =
  let rng = Ppgr_rng.Rng.create ~seed:"ppgr-bench-main" in
  Printf.printf "Privacy Preserving Group Ranking - evaluation harness\n";
  Printf.printf "(shapes reproduce the paper's Fig. 2-3; absolute numbers are this machine's)\n";
  (* Calibration is needed by most sections; run it once. *)
  let t0 = Unix.gettimeofday () in
  let dl1024 = Calibrate.group (Ppgr_group.Dl_group.dl_1024 ()) rng in
  let dl2048 = Calibrate.group (Ppgr_group.Dl_group.dl_2048 ()) rng in
  let dl3072 = Calibrate.group (Ppgr_group.Dl_group.dl_3072 ()) rng in
  let ecc160 = Calibrate.group (Ppgr_group.Ec_group.ecc_160 ()) rng in
  let ecc224 = Calibrate.group (Ppgr_group.Ec_group.ecc_224 ()) rng in
  let ecc256 = Calibrate.group (Ppgr_group.Ec_group.ecc_256 ()) rng in
  let field_cal = Calibrate.field_sec_per_mult rng in
  if want "calibrate" then begin
    Printf.printf "\n== Calibration (measured on this machine) ==\n";
    List.iter
      (fun c -> Format.printf "%a@." Calibrate.pp_group_cal c)
      [ dl1024; dl2048; dl3072; ecc160; ecc224; ecc256 ];
    Printf.printf "Z_p field (192-bit): %.3g s/mult\n" field_cal
  end;
  if want "fig2" then Figures.fig2 ~dl:dl1024 ~ecc:ecc160 ~field_cal ();
  if want "fig3a" then
    Figures.fig3a
      ~levels:[ (ecc160, dl1024); (ecc224, dl2048); (ecc256, dl3072) ]
      ~field_cal ();
  if want "fig3b" then Figures.fig3b ~dl:dl1024 ~ecc:ecc160 ~field_cal ();
  if want "analysis" then Figures.analysis ();
  if want "ablations" then Figures.ablations ();
  if want "micro" then Micro.run ();
  if want "trajectory" then Trajectory.run ();
  if want "scaling" then Scaling.run ();
  if want "obs" then Obs.run ();
  if want "ring" then Ring.run ();
  if want "chaos" then Chaos.run ();
  if want "limbs" then Limbs.run ();
  if want "exp" then Exp.run ();
  if want "obsv2" then Obsv2.run ();
  if want "async" then Async.run ();
  if want "shard" then Shard.run ();
  if want "scaling-smoke" then Scaling.smoke ();
  if want "ring-smoke" then Ring.smoke ();
  if want "chaos-smoke" then Chaos.smoke ();
  if want "limbs-smoke" then Limbs.smoke ();
  if want "exp-smoke" then Exp.smoke ();
  if want "obsv2-smoke" then Obsv2.smoke ();
  if want "shard-smoke" then Shard.smoke ();
  if want "async-smoke" then Async.smoke ();
  Printf.printf "\nTotal bench time: %.1f s\n" (Unix.gettimeofday () -. t0)

(* Bench trajectory: writes BENCH_PR1.json, a machine-readable record of
   the exponentiation-engine primitives (ns/op) against their pre-engine
   naive baselines, plus an end-to-end instrumented Phase2.run, so later
   PRs can detect performance regressions without eyeballing tables.

   The "naive" rows run through {!Group_intf.Naive}, which strips the
   fixed-base tables and Shamir fusion and is exactly the seed
   implementation's cost profile. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_grouprank

let json_path = "BENCH_PR1.json"

type row = { r_name : string; r_ns : float }

let ns_per_call f = Calibrate.time_per_call f *. 1e9

let group_rows prefix (g : Group_intf.group) rng =
  let module G = (val g) in
  let module N = Group_intf.Naive (G) in
  let x = G.pow_gen (G.random_scalar rng) in
  let y = G.pow_gen (G.random_scalar rng) in
  let e = G.random_scalar rng and f = G.random_scalar rng in
  (* Warm the cached generator table so the fixed-base row measures the
     steady state, then measure construction separately. *)
  ignore (G.pow_gen e);
  [
    { r_name = prefix ^ "-exp"; r_ns = ns_per_call (fun () -> ignore (G.pow x e)) };
    {
      r_name = prefix ^ "-exp-fixed-base";
      r_ns = ns_per_call (fun () -> ignore (G.pow_gen e));
    };
    {
      r_name = prefix ^ "-exp-naive-gen";
      r_ns = ns_per_call (fun () -> ignore (N.pow_gen e));
    };
    {
      r_name = prefix ^ "-powtable-build";
      r_ns = ns_per_call (fun () -> ignore (G.powtable x));
    };
    {
      r_name = prefix ^ "-pow2";
      r_ns = ns_per_call (fun () -> ignore (G.pow2 x e y f));
    };
    {
      r_name = prefix ^ "-pow2-naive";
      r_ns = ns_per_call (fun () -> ignore (N.pow2 x e y f));
    };
  ]

(* End-to-end instrumented phase 2 at production size on the production
   DL group, engine on vs engine off, same RNG seed: the ranks must be
   identical (the engine changes no group math), the wall-clock must
   not regress. *)
let phase2_e2e ~n ~l =
  let run (g : Group_intf.group) =
    let module G = (val g) in
    let module P2 = Phase2.Make (G) in
    let rng = Rng.create ~seed:"ppgr-bench-pr1-e2e" in
    let betas =
      Array.init n (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l))
    in
    let t0 = Unix.gettimeofday () in
    let r = P2.run rng ~l ~betas in
    (Unix.gettimeofday () -. t0, r.P2.ranks)
  in
  let engine_s, ranks = run (Dl_group.dl_1024 ()) in
  let module Dl = (val Dl_group.dl_1024 ()) in
  let baseline_s, ranks_naive = run (module Group_intf.Naive (Dl)) in
  (engine_s, baseline_s, ranks, ranks_naive)

let run () =
  let rng = Rng.create ~seed:"ppgr-bench-pr1" in
  Printf.printf "\n== Bench trajectory (%s) ==\n%!" json_path;
  let rows =
    group_rows "dl1024" (Dl_group.dl_1024 ()) rng
    @ group_rows "ecc160" (Ec_group.ecc_160 ()) rng
  in
  List.iter (fun r -> Printf.printf "%-28s %12.0f ns/op\n%!" r.r_name r.r_ns) rows;
  let n = 8 and l = 32 in
  Printf.printf "phase2 end-to-end (n=%d, l=%d, DL-1024) ...\n%!" n l;
  let engine_s, baseline_s, ranks, ranks_naive = phase2_e2e ~n ~l in
  let ranks_match = ranks = ranks_naive in
  Printf.printf "phase2-e2e: engine %.2f s, naive baseline %.2f s (%.2fx), ranks %s\n%!"
    engine_s baseline_s (baseline_s /. engine_s)
    (if ranks_match then "identical" else "MISMATCH");
  let find name = (List.find (fun r -> r.r_name = name) rows).r_ns in
  let oc = open_out json_path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"pr\": 1,\n";
  out "  \"description\": \"fixed-base & simultaneous exponentiation engine\",\n";
  out "  \"ns_per_op\": {\n";
  List.iteri
    (fun i r ->
      out "    %S: %.1f%s\n" r.r_name r.r_ns
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  },\n";
  out "  \"speedups\": {\n";
  out "    \"dl1024-fixed-base-vs-seed-variable-base\": %.2f,\n"
    (find "dl1024-exp-naive-gen" /. find "dl1024-exp-fixed-base");
  out "    \"ecc160-fixed-base-vs-seed-variable-base\": %.2f,\n"
    (find "ecc160-exp-naive-gen" /. find "ecc160-exp-fixed-base");
  out "    \"dl1024-pow2-vs-two-pows\": %.2f,\n"
    (find "dl1024-pow2-naive" /. find "dl1024-pow2");
  out "    \"ecc160-pow2-vs-two-pows\": %.2f\n"
    (find "ecc160-pow2-naive" /. find "ecc160-pow2");
  out "  },\n";
  out "  \"phase2_e2e\": {\n";
  out "    \"n\": %d,\n" n;
  out "    \"l\": %d,\n" l;
  out "    \"group\": \"DL-1024\",\n";
  out "    \"engine_wall_s\": %.3f,\n" engine_s;
  out "    \"baseline_wall_s\": %.3f,\n" baseline_s;
  out "    \"speedup\": %.3f,\n" (baseline_s /. engine_s);
  out "    \"ranks\": [%s],\n"
    (String.concat ", " (Array.to_list (Array.map string_of_int ranks)));
  out "    \"ranks_match_baseline\": %b\n" ranks_match;
  out "  }\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path

(* Ring hot-path bench: writes BENCH_PR4.json, the trajectory record
   for the ring-pass overhaul — owner-level parallelism, framed hop
   batching, work stealing, and EC batch normalization.  One traced
   framework run per (group, jobs) point on the exact BENCH_PR3 sizes
   (n=5, k=2, h=6, same spec), so the phase2.ring rows line up against
   the PR3 baseline file row for row.

   What the JSON asserts, beyond wall times:
   - ranks AND the full message schedule (every round's critical ops
     and src/dst/bytes triple) are byte-identical across job counts —
     the determinism contract, checked via a digest;
   - span attribution still tiles exactly (column sums = global
     meters = Cost.total_bytes), per point;
   - the ring's wire tally: messages per intermediate hop collapsed
     n -> 1, with bytes within the documented framing overhead
     (3 + 4n per frame) of the PR3 per-set accounting.

   Honest-numbers note (PR2 precedent): on a single-core container the
   jobs>=2 points do the same sequential work plus scheduling overhead;
   cores_detected is recorded so a reader can interpret the ratios. *)

open Ppgr_grouprank
module Trace = Ppgr_obs.Trace
module Metrics = Ppgr_obs.Metrics
module Summary = Ppgr_obs.Summary
module Pool = Ppgr_exec.Pool

let json_path = "BENCH_PR4.json"

(* Identical to the obs section so phase rows compare against
   BENCH_PR3.json directly. *)
let n = 5
let k = 2
let h = 6
let spec = Attrs.spec ~m:2 ~t:1 ~d1:4 ~d2:2

type point = {
  jobs : int;
  wall_s : float;
  ring_s : float; (* phase2.ring compute wall, parties summed *)
  ring_bytes : int; (* phase2.ring.wire bytes_out *)
  ring_msgs : int; (* messages in ring-step schedule rounds *)
  ranks : int array;
  transcript : string; (* digest of ranks + full message schedule *)
  tot_exps : int;
  tot_mults : int;
  tot_bytes : int;
  consistent : bool;
}

(* The determinism digest: ranks plus every schedule round's critical
   op count and exact message list.  Two runs with equal digests made
   byte-identical scheduling decisions end to end. *)
let transcript_digest (ranks : int array) (sched : Cost.schedule) =
  let b = Buffer.create 4096 in
  Array.iter (fun r -> Buffer.add_string b (Printf.sprintf "r%d;" r)) ranks;
  List.iter
    (fun (rd : Cost.round) ->
      Buffer.add_string b (Printf.sprintf "|%d:" rd.Cost.critical_ops);
      List.iter
        (fun (m : Ppgr_mpcnet.Netsim.message) ->
          Buffer.add_string b
            (Printf.sprintf "%d>%d#%d," m.Ppgr_mpcnet.Netsim.src
               m.Ppgr_mpcnet.Netsim.dst m.Ppgr_mpcnet.Netsim.bytes))
        rd.Cost.messages)
    sched;
  Digest.to_hex (Digest.string (Buffer.contents b))

let phase_row rows name =
  List.find_opt (fun (r : Summary.row) -> r.Summary.phase = name) rows

let phase_wall_s rows name =
  match phase_row rows name with
  | Some r -> r.Summary.wall_us /. 1e6
  | None -> 0.

let phase_metric rows name metric =
  match phase_row rows name with
  | Some r -> Option.value ~default:0 (List.assoc_opt metric r.Summary.metrics)
  | None -> 0

(* One traced run at a fixed job count.  Fresh module per point: cold
   meters, cold generator table, identical work from an identical
   start (the scaling-section discipline). *)
let run_point (gfam : unit -> Ppgr_group.Group_intf.group) jobs : point =
  Pool.set_jobs jobs;
  let module G = (val gfam ()) in
  let rng = Ppgr_rng.Rng.create ~seed:"ppgr-bench-ring" in
  let criterion = Attrs.random_criterion rng spec in
  let infos = Array.init n (fun _ -> Attrs.random_info rng spec) in
  let cfg = Framework.config ~h ~spec ~k () in
  Metrics.register ~name:"exps" (fun () -> Ppgr_group.Opmeter.count ());
  Metrics.register ~name:"group_mults" (fun () -> G.op_count ());
  List.iter (fun (name, read) -> Metrics.register ~name read) G.probes;
  Fun.protect ~finally:(fun () ->
      Metrics.unregister ~name:"exps";
      Metrics.unregister ~name:"group_mults";
      List.iter (fun (name, _) -> Metrics.unregister ~name) G.probes;
      Pool.set_jobs 1)
  @@ fun () ->
  let exps0 = Ppgr_group.Opmeter.count () in
  let mults0 = G.op_count () in
  let t0 = Unix.gettimeofday () in
  let out, spans =
    Trace.capture (fun () ->
        Framework.run_with_group
          (module G : Ppgr_group.Group_intf.GROUP)
          rng cfg ~criterion ~infos)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let rows = Summary.rows spans in
  let phases = Summary.by_phase rows in
  let sched = out.Framework.costs.Framework.schedule in
  let tot_exps = Summary.total rows "exps" in
  let tot_mults = Summary.total rows "group_mults" in
  let tot_bytes = Summary.total rows "bytes_out" in
  let consistent =
    tot_exps = Ppgr_group.Opmeter.count () - exps0
    && tot_mults = G.op_count () - mults0
    && tot_bytes = Cost.total_bytes sched
  in
  let ring_bytes = phase_metric phases "phase2.ring.wire" "bytes_out" in
  (* The framed ring ships n-1 hop frames plus n-1 owner returns. *)
  let ring_msgs = 2 * (n - 1) in
  {
    jobs;
    wall_s;
    ring_s = phase_wall_s phases "phase2.ring";
    ring_bytes;
    ring_msgs;
    ranks = out.Framework.ranks;
    transcript = transcript_digest out.Framework.ranks sched;
    tot_exps;
    tot_mults;
    tot_bytes;
    consistent;
  }

let print_point group_name p =
  Printf.printf
    "%s jobs=%d  total %6.2f s  ring %6.2f s  ring bytes %d  ranks [%s]  \
     (attribution %s)\n\
     %!"
    group_name p.jobs p.wall_s p.ring_s p.ring_bytes
    (String.concat ";" (Array.to_list (Array.map string_of_int p.ranks)))
    (if p.consistent then "consistent" else "INCONSISTENT")

(* EC batch normalization, measured directly: serialize one batch of
   points per-element and batched, counting field inversions via the
   group's probe.  None for groups without the probe (DL residues are
   affine already). *)
type batch_micro = {
  bm_points : int;
  bm_per_elem_invs : int;
  bm_batch_invs : int;
  bm_per_elem_s : float;
  bm_batch_s : float;
}

let batch_normalization_micro (gfam : unit -> Ppgr_group.Group_intf.group) =
  let module G = (val gfam ()) in
  match List.assoc_opt "field_invs" G.probes with
  | None -> None
  | Some read_invs ->
      let rng = Ppgr_rng.Rng.create ~seed:"ppgr-bench-ring-batch" in
      let pts = Array.init 256 (fun _ -> G.pow_gen (G.random_scalar rng)) in
      let i0 = read_invs () in
      let t0 = Unix.gettimeofday () in
      let per_elem = Array.map G.to_bytes pts in
      let t1 = Unix.gettimeofday () in
      let i1 = read_invs () in
      let batched = G.to_bytes_batch pts in
      let t2 = Unix.gettimeofday () in
      let i2 = read_invs () in
      if per_elem <> batched then
        failwith "ring bench: batched serialization differs from per-element";
      Some
        {
          bm_points = Array.length pts;
          bm_per_elem_invs = i1 - i0;
          bm_batch_invs = i2 - i1;
          bm_per_elem_s = t1 -. t0;
          bm_batch_s = t2 -. t1;
        }

type sweep = {
  group_name : string;
  points : point list;
  identical : bool; (* transcripts equal across job counts *)
  batch : batch_micro option;
}

let sweep_group (name, gfam) =
  Printf.printf "-- %s --\n%!" name;
  let points =
    List.map
      (fun jobs ->
        let p = run_point gfam jobs in
        print_point name p;
        p)
      [ 1; 2; 4 ]
  in
  let base = List.hd points in
  let identical =
    List.for_all
      (fun p -> p.transcript = base.transcript && p.ranks = base.ranks)
      points
  in
  Printf.printf "transcripts identical across job counts: %s\n%!"
    (if identical then "yes" else "NO - DETERMINISM BUG");
  let batch = batch_normalization_micro gfam in
  Option.iter
    (fun b ->
      Printf.printf
        "batch normalization: %d points, %d invs per-element vs %d batched \
         (%.4f s vs %.4f s)\n\
         %!"
        b.bm_points b.bm_per_elem_invs b.bm_batch_invs b.bm_per_elem_s
        b.bm_batch_s)
    batch;
  { group_name = name; points; identical; batch }

let emit_sweep oc s =
  let out fmt = Printf.fprintf oc fmt in
  let base = List.hd s.points in
  out "    {\n";
  out "      \"group\": %S,\n" s.group_name;
  out "      \"transcript_digest\": %S,\n" base.transcript;
  out "      \"transcripts_identical_across_jobs\": %b,\n" s.identical;
  out "      \"ranks\": [%s],\n"
    (String.concat ", " (Array.to_list (Array.map string_of_int base.ranks)));
  out "      \"points\": [\n";
  List.iteri
    (fun i p ->
      out
        "        {\"jobs\": %d, \"wall_s\": %.3f, \"ring_wall_s\": %.4f, \
         \"ring_wire_bytes\": %d, \"ring_messages\": %d, \
         \"totals\": {\"exps\": %d, \"group_mults\": %d, \"bytes\": %d}, \
         \"attribution_consistent\": %b}%s\n"
        p.jobs p.wall_s p.ring_s p.ring_bytes p.ring_msgs
        p.tot_exps p.tot_mults p.tot_bytes p.consistent
        (if i = List.length s.points - 1 then "" else ","))
    s.points;
  out "      ],\n";
  out "      \"speedup_vs_jobs1\": [\n";
  List.iteri
    (fun i p ->
      out "        {\"jobs\": %d, \"ring\": %.3f, \"total\": %.3f}%s\n" p.jobs
        (base.ring_s /. p.ring_s) (base.wall_s /. p.wall_s)
        (if i = List.length s.points - 1 then "" else ","))
    s.points;
  out "      ],\n";
  (match s.batch with
  | None -> out "      \"batch_normalization\": null\n"
  | Some b ->
      out
        "      \"batch_normalization\": {\"points\": %d, \
         \"per_element_invs\": %d, \"batched_invs\": %d, \
         \"per_element_s\": %.4f, \"batched_s\": %.4f}\n"
        b.bm_points b.bm_per_elem_invs b.bm_batch_invs b.bm_per_elem_s
        b.bm_batch_s);
  out "    }"

let run () =
  Printf.printf "\n== Ring hot path (%s) ==\n%!" json_path;
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "cores detected: %d; traced runs n=%d k=%d h=%d at jobs in {1, 2, 4}\n%!"
    cores n k h;
  let sweeps =
    List.map sweep_group
      [
        ("DL-1024", Ppgr_group.Dl_group.dl_1024);
        ("ECC-160", Ppgr_group.Ec_group.ecc_160);
      ]
  in
  let oc = open_out json_path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"pr\": 4,\n";
  out
    "  \"description\": \"ring-pass overhaul: owner-level parallelism, framed \
     hops, work stealing, EC batch normalization\",\n";
  out "  \"baseline\": \"BENCH_PR3.json (same n/k/h/spec)\",\n";
  out "  \"cores_detected\": %d,\n" cores;
  out "  \"n\": %d,\n" n;
  out "  \"k\": %d,\n" k;
  out "  \"h\": %d,\n" h;
  out "  \"ring_frame_overhead_bytes_per_hop\": %d,\n"
    (Wire.hop_frame_bytes (List.init n (fun _ -> 0)));
  out "  \"trajectory\": [\n";
  List.iteri
    (fun i s ->
      emit_sweep oc s;
      out "%s\n" (if i = List.length sweeps - 1 then "" else ","))
    sweeps;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  if List.exists (fun s -> not s.identical) sweeps then
    failwith "ring bench: transcripts differ across job counts";
  if List.exists (fun s -> List.exists (fun p -> not p.consistent) s.points) sweeps
  then failwith "ring bench: span attribution disagrees with the global meters"

(* The cheap CI variant: test-size groups, asserts transcript equality
   across job counts and the attribution tiling, prints timings, writes
   no file. *)
let smoke () =
  Printf.printf "\n== Ring smoke (test groups, jobs 1 vs 4) ==\n%!";
  Printf.printf "cores detected: %d\n%!" (Domain.recommended_domain_count ());
  List.iter
    (fun (name, gfam) ->
      Printf.printf "-- %s --\n%!" name;
      let points =
        List.map
          (fun jobs ->
            let p = run_point gfam jobs in
            print_point name p;
            p)
          [ 1; 4 ]
      in
      let base = List.hd points in
      List.iter
        (fun p ->
          if p.transcript <> base.transcript then
            failwith
              (Printf.sprintf "ring smoke (%s): jobs=%d transcript differs"
                 name p.jobs);
          if not p.consistent then
            failwith
              (Printf.sprintf
                 "ring smoke (%s): jobs=%d attribution inconsistent" name
                 p.jobs))
        points;
      Printf.printf "transcripts identical, attribution consistent: ok\n%!")
    [
      ("DL-test-64", Ppgr_group.Dl_group.dl_test_64);
      ("ECC-tiny", Ppgr_group.Ec_group.ecc_tiny);
    ]

(* Async bench: pipelined windowed transport vs stop-and-wait, plus the
   checkpoint/restart bill, written to BENCH_PR10.json.

   Each scenario runs the full protocol on DL-512 and ECC-160 under a
   latency-flavoured Faultplan, sweeping the per-link window through
   1/4/16.  The section records the simulated link-clock (sim_ticks:
   serialized for stop-and-wait, per-step max over concurrent links
   when windowed) and the control-plane bill (acks), and enforces the
   contract the chaos/restart suites pin:

   - the physical transcript digest is window-invariant: the window
     buys wall-clock overlap, never different bytes;
   - window=1 IS stop-and-wait — same digest, same sim_ticks;
   - on the delay-heavy plan the pipelined engine must beat
     stop-and-wait on the link clock (the tentpole's reason to exist);
   - a run killed mid-flight and resumed from its last checkpoint
     reports byte-identical stats to the uninterrupted golden.

   Any violation fails the process, so the CI async leg gates the
   pipelining win and restart conformance on every push.  [smoke] is
   the cheap variant for CI: test-size groups, one scenario. *)

open Ppgr_bigint
open Ppgr_grouprank
module Faultplan = Ppgr_mpcnet.Faultplan

let json_path = "BENCH_PR10.json"

(* Same instance shape as the chaos bench: n = 4 with a tie. *)
let betas = Array.map Bigint.of_int [| 9; 3; 14; 3 |]
let l = 5
let retry_budget = 8
let windows = [ 1; 4; 16 ]

let golden =
  Array.map
    (fun b ->
      1
      + Array.fold_left
          (fun acc b' -> if Bigint.compare b' b > 0 then acc + 1 else acc)
          0 betas)
    betas

(* Latency-flavoured mixes: where a window should pay.  The delay-heavy
   plan is the gated one — delays always deliver, so the run completes
   and the sim-tick comparison is apples to apples. *)
let scenarios =
  [
    ("clean-baseline", "seed=bench-async-0");
    ("delay-heavy", "delay=0.8,maxdelay=16,seed=bench-async-1");
    ("drop-delay", "drop=0.1,delay=0.4,maxdelay=8,seed=bench-async-2");
  ]

let gated_scenario = "delay-heavy"

type run = {
  group_name : string;
  scenario : string;
  spec : string;
  window : int; (* 0 = stop-and-wait baseline (no window spec at all) *)
  wall_s : float;
  sim_ticks : int;
  acks_sent : int;
  ack_bytes : int;
  retransmits : int;
  bytes_physical : int;
  messages_physical : int;
  ranks_ok : bool;
  digest : string;
}

type restart_run = {
  r_group : string;
  r_scenario : string;
  r_window : int;
  r_kill_after : int;
  r_resumes : int;
  r_wall_s : float;
  r_identical : bool; (* resumed stats byte-identical to the golden *)
}

let winspec w = Transport.winspec_of_string (Printf.sprintf "window=%d,rto=4" w)

let bench_run g (scenario, spec) w : run =
  let module G = (val g : Ppgr_group.Group_intf.GROUP) in
  let module R = Runtime.Make (G) in
  let rng = Ppgr_rng.Rng.create ~seed:"ppgr-bench-async" in
  let faults = Faultplan.spec_of_string spec in
  let window = if w = 0 then None else Some (winspec w) in
  let t0 = Unix.gettimeofday () in
  let st = R.run ~faults ~retry_budget ?window rng ~l ~betas in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    group_name = G.name;
    scenario;
    spec;
    window = w;
    wall_s;
    sim_ticks = st.R.sim_ticks;
    acks_sent = st.R.acks_sent;
    ack_bytes = st.R.ack_bytes;
    retransmits = st.R.retransmits;
    bytes_physical = st.R.phys_bytes;
    messages_physical = st.R.phys_messages;
    ranks_ok = st.R.ranks = golden;
    digest = st.R.transcript_sha;
  }

(* Kill the run once half its physical messages are on the wire, resume
   from the last checkpoint, compare everything against the golden. *)
let bench_restart g (scenario, spec) w : restart_run =
  let module G = (val g : Ppgr_group.Group_intf.GROUP) in
  let module R = Runtime.Make (G) in
  let faults = Faultplan.spec_of_string spec in
  let window = if w = 0 then None else Some (winspec w) in
  let fresh () = Ppgr_rng.Rng.create ~seed:"ppgr-bench-async" in
  let gst = R.run ~faults ~retry_budget ?window (fresh ()) ~l ~betas in
  let kill_after = gst.R.phys_messages / 2 in
  let t0 = Unix.gettimeofday () in
  let rc =
    R.run_with_restart ~faults ~retry_budget ?window ~max_restarts:1
      ~kill_after (fresh ()) ~l ~betas
  in
  let r_wall_s = Unix.gettimeofday () -. t0 in
  let st = rc.R.rec_stats in
  let r_identical =
    rc.R.rec_reelected = None
    && st.R.ranks = gst.R.ranks
    && String.equal st.R.transcript_sha gst.R.transcript_sha
    && st.R.phys_messages = gst.R.phys_messages
    && st.R.phys_bytes = gst.R.phys_bytes
    && st.R.retransmits = gst.R.retransmits
    && st.R.sim_ticks = gst.R.sim_ticks
    && st.R.net_rounds = gst.R.net_rounds
  in
  {
    r_group = G.name;
    r_scenario = scenario;
    r_window = w;
    r_kill_after = kill_after;
    r_resumes = rc.R.rec_resumes;
    r_wall_s;
    r_identical;
  }

(* The contract; any violation fails the whole section. *)
let check (runs : run list) : string list =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let by group scenario w =
    List.find_opt
      (fun r -> r.group_name = group && r.scenario = scenario && r.window = w)
      runs
  in
  List.iter
    (fun r ->
      if not r.ranks_ok then
        bad "%s/%s w=%d: wrong ranks" r.group_name r.scenario r.window;
      if String.length r.digest <> 64 then
        bad "%s/%s w=%d: digest is not 64 hex chars" r.group_name r.scenario
          r.window;
      match by r.group_name r.scenario 0 with
      | None -> ()
      | Some base ->
          if not (String.equal r.digest base.digest) then
            bad "%s/%s w=%d: transcript differs from stop-and-wait"
              r.group_name r.scenario r.window;
          if r.window = 1 && r.sim_ticks <> base.sim_ticks then
            bad "%s/%s: window=1 sim_ticks %d <> stop-and-wait %d"
              r.group_name r.scenario r.sim_ticks base.sim_ticks;
          if
            r.window = List.fold_left max 0 windows
            && r.scenario = gated_scenario
            && r.sim_ticks >= base.sim_ticks
          then
            bad
              "%s/%s: pipelined window=%d sim_ticks %d not below \
               stop-and-wait %d — the window bought nothing"
              r.group_name r.scenario r.window r.sim_ticks base.sim_ticks)
    runs;
  !problems

let check_restarts (rs : restart_run list) : string list =
  List.filter_map
    (fun r ->
      if r.r_identical then None
      else
        Some
          (Printf.sprintf
             "%s/%s w=%d: resumed run (kill at %d, %d resumes) not \
              byte-identical to golden"
             r.r_group r.r_scenario r.r_window r.r_kill_after r.r_resumes))
    rs

let print_run r =
  Printf.printf
    "%-10s %-15s w=%-2d ticks=%-5d acks=%-3d retx=%-3d phys %d B  %s  %.2fs\n%!"
    r.group_name r.scenario r.window r.sim_ticks r.acks_sent r.retransmits
    r.bytes_physical
    (String.sub r.digest 0 12)
    r.wall_s

let print_restart r =
  Printf.printf
    "%-10s %-15s w=%-2d restart: kill@%d resumes=%d identical=%b  %.2fs\n%!"
    r.r_group r.r_scenario r.r_window r.r_kill_after r.r_resumes r.r_identical
    r.r_wall_s

let run_matrix groups =
  List.concat_map
    (fun g ->
      List.concat_map
        (fun sc ->
          List.map
            (fun w ->
              let r = bench_run g sc w in
              print_run r;
              r)
            (0 :: windows))
        scenarios)
    groups

let restart_matrix groups =
  List.concat_map
    (fun g ->
      List.map
        (fun w ->
          let r = bench_restart g (List.nth scenarios 1) w in
          print_restart r;
          r)
        [ 0; 4 ])
    groups

let emit_run oc r =
  let out fmt = Printf.fprintf oc fmt in
  out "    {\n";
  out "      \"group\": %S,\n" r.group_name;
  out "      \"scenario\": %S,\n" r.scenario;
  out "      \"spec\": %S,\n" r.spec;
  out "      \"window\": %d,\n" r.window;
  out "      \"wall_s\": %.3f,\n" r.wall_s;
  out "      \"sim_ticks\": %d,\n" r.sim_ticks;
  out "      \"acks\": {\"sent\": %d, \"bytes\": %d},\n" r.acks_sent
    r.ack_bytes;
  out "      \"retransmits\": %d,\n" r.retransmits;
  out "      \"physical\": {\"messages\": %d, \"bytes\": %d},\n"
    r.messages_physical r.bytes_physical;
  out "      \"ranks_ok\": %b,\n" r.ranks_ok;
  out "      \"transcript_sha256\": %S\n" r.digest;
  out "    }"

let emit_restart oc r =
  let out fmt = Printf.fprintf oc fmt in
  out "    {\n";
  out "      \"group\": %S,\n" r.r_group;
  out "      \"scenario\": %S,\n" r.r_scenario;
  out "      \"window\": %d,\n" r.r_window;
  out "      \"kill_after\": %d,\n" r.r_kill_after;
  out "      \"resumes\": %d,\n" r.r_resumes;
  out "      \"wall_s\": %.3f,\n" r.r_wall_s;
  out "      \"identical_to_golden\": %b\n" r.r_identical;
  out "    }"

let groups () =
  [ Ppgr_group.Dl_group.dl_512 (); Ppgr_group.Ec_group.ecc_160 () ]

let run () =
  Printf.printf "\n== Async (%s) ==\n%!" json_path;
  Printf.printf
    "windowed transport sweep: n=%d, l=%d, windows {stop-and-wait, %s}, \
     restart at half the physical transcript\n%!"
    (Array.length betas) l
    (String.concat ", " (List.map string_of_int windows));
  let runs = run_matrix (groups ()) in
  let restarts = restart_matrix (groups ()) in
  let oc = open_out json_path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"pr\": 10,\n";
  out "  \"description\": \"async: pipelined windowed transport vs \
       stop-and-wait on delay-heavy faultplans, plus checkpoint/restart \
       conformance\",\n";
  out "  \"n\": %d,\n" (Array.length betas);
  out "  \"l\": %d,\n" l;
  out "  \"retry_budget\": %d,\n" retry_budget;
  out "  \"gated_scenario\": %S,\n" gated_scenario;
  out "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      emit_run oc r;
      out "%s\n" (if i = List.length runs - 1 then "" else ","))
    runs;
  out "  ],\n";
  out "  \"restarts\": [\n";
  List.iteri
    (fun i r ->
      emit_restart oc r;
      out "%s\n" (if i = List.length restarts - 1 then "" else ","))
    restarts;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  let problems = check runs @ check_restarts restarts in
  if problems <> [] then begin
    List.iter (Printf.printf "async bench: %s\n%!") problems;
    failwith "async bench: windowed-transport contract violated"
  end

(* CI smoke: the same sweep on the fast test-size groups plus one
   mid-run restart each, no JSON. *)
let smoke () =
  Printf.printf
    "\n== Async smoke (window sweep + mid-run restart conformance) ==\n%!";
  let groups =
    [ Ppgr_group.Dl_group.dl_test_64 (); Ppgr_group.Ec_group.ecc_tiny () ]
  in
  let runs = run_matrix groups in
  let restarts = restart_matrix groups in
  let problems = check runs @ check_restarts restarts in
  if problems <> [] then begin
    List.iter (Printf.printf "async smoke: %s\n%!") problems;
    failwith "async smoke: windowed-transport contract violated"
  end;
  Printf.printf
    "async smoke OK: %d sweep runs window-invariant, %d restarts \
     byte-identical\n%!"
    (List.length runs) (List.length restarts)

(* Wall-clock calibration of the primitive operations the cost models
   scale by: seconds per group multiplication, multiplications per full
   exponentiation, seconds per field multiplication. *)

open Ppgr_bigint
open Ppgr_group
open Ppgr_grouprank

type group_cal = {
  g_name : string;
  security_bits : int;
  sec_per_mult : float;
  mpe : float; (* group multiplications per full exponentiation *)
  mpe_fixed : float; (* same, fixed-base via the cached generator table *)
  elem_bytes : int;
  scalar_bytes : int;
}

let time_per_call ?(min_time = 0.2) f =
  (* Run [f] in growing batches until [min_time] elapses. *)
  let rec go batch =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= min_time then dt /. float_of_int batch else go (batch * 4)
  in
  go 16

let group (g : Group_intf.group) rng : group_cal =
  let module G = (val g) in
  let a = G.pow_gen (G.random_scalar rng) in
  let b = G.pow_gen (G.random_scalar rng) in
  let acc = ref a in
  let sec_per_mult = time_per_call (fun () -> acc := G.mul !acc b) in
  let mpe = Cost_model.He_model.measure_mpe g ~samples:30 rng in
  let mpe_fixed =
    (* Warm the cached generator table first so its one-time
       construction cost is not averaged into the per-exponentiation
       figure. *)
    let samples = 30 in
    ignore (G.pow_gen (G.random_scalar rng));
    let s = G.op_snapshot () in
    for _ = 1 to samples do
      ignore (G.pow_gen (G.random_scalar rng))
    done;
    float_of_int (G.ops_since s) /. float_of_int samples
  in
  {
    g_name = G.name;
    security_bits = G.security_bits;
    sec_per_mult;
    mpe;
    mpe_fixed;
    elem_bytes = G.element_bytes;
    scalar_bytes = (Bigint.numbits G.order + 7) / 8;
  }

let field_sec_per_mult rng =
  let f = Ppgr_dotprod.Zfield.default () in
  let a = Ppgr_dotprod.Zfield.random rng f in
  let b = Ppgr_dotprod.Zfield.random rng f in
  let acc = ref a in
  time_per_call (fun () -> acc := Ppgr_dotprod.Zfield.mul f !acc b)

let pp_group_cal fmt c =
  Format.fprintf fmt
    "%-10s  %3d-bit sec  %10.3g s/mult  %7.1f mult/exp  %8.3g s/exp  %7.1f mult/fixed-exp"
    c.g_name c.security_bits c.sec_per_mult c.mpe
    (c.sec_per_mult *. c.mpe)
    c.mpe_fixed

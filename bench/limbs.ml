(* Limb-engine bench: writes BENCH_PR6.json, the trajectory record for
   the 61-bit in-place Montgomery rewrite of ppgr_bigint.

   Three layers of evidence, all on this host in this run:
   - old-vs-new micros: the frozen 26-bit reference engine
     ([Ppgr_bigint.Mag26_ref], the exact pre-rewrite code) against the
     live engine on the same values — mont_mul, powmod and plain mul at
     the protocol's DL-512/DL-1024 widths and the ECC-160 field width.
     The headline gate is the DL-1024 powmod ratio (must be >= 2.5x).
   - the BENCH_PR1 fixed-base micro rows re-run on the live engine, so
     the ns/op trajectory stays comparable file to file;
   - the BENCH_PR4 ring trajectory re-run (same n/k/h/spec, jobs in
     {1, 2, 4}) with the transcript digests asserted byte-identical to
     the PR4/PR5 goldens: faster limbs must change no protocol byte. *)

open Ppgr_bigint
module R = Mag26_ref

let json_path = "BENCH_PR6.json"

(* Golden transcript digests pinned by BENCH_PR4.json (unchanged through
   BENCH_PR5): the ring re-run must reproduce these exactly. *)
let golden_digests = [ ("DL-1024", "e7d0bd1fb8941e5d34d7482deae0cd07"); ("ECC-160", "802789ff60f56eea673c40d63f36601c") ]

let powmod_gate = 2.5

let ns_per_call f = Calibrate.time_per_call f *. 1e9

let to_ref (v : Bigint.t) : R.t = R.of_bytes (Bigint.to_bytes_be v)

type micro = {
  m_name : string;
  m_old_ns : float;
  m_new_ns : float;
}

let ratio m = m.m_old_ns /. m.m_new_ns

(* One modulus worth of micros.  The reference context is prebuilt, as
   the old engine cached it per modulus, so both sides measure steady
   state. *)
let modulus_micros name (m : Bigint.t) rng =
  let a = Ppgr_rng.Rng.bigint_below rng m in
  let b = Ppgr_rng.Rng.bigint_below rng m in
  let e = Bigint.pred m in
  let ra = to_ref a and rb = to_ref b and re = to_ref e and rm = to_ref m in
  let rctx = R.Mont.create rm in
  let ram = R.Mont.to_mont rctx ra and rbm = R.Mont.to_mont rctx rb in
  let c = Bigint.Modring.ctx ~modulus:m in
  let xa = Bigint.Modring.enter c a and xb = Bigint.Modring.enter c b in
  let dst = Bigint.Modring.alloc c in
  (* Sanity: identical answers before timing anything. *)
  let new_pow = Bigint.powmod a e m in
  let old_pow = Bigint.of_bytes_be (R.to_bytes (R.Mont.powmod rctx ra re)) in
  if not (Bigint.equal new_pow old_pow) then
    failwith ("limb bench: engines disagree on powmod at " ^ name);
  let keep = ref ram in
  [
    {
      m_name = name ^ "-mont_mul";
      m_old_ns = ns_per_call (fun () -> keep := R.Mont.mont_mul rctx !keep rbm);
      m_new_ns = ns_per_call (fun () -> Bigint.Modring.mul_into c dst xa xb);
    };
    {
      m_name = name ^ "-mont_sqr";
      m_old_ns = ns_per_call (fun () -> keep := R.Mont.mont_mul rctx !keep !keep);
      m_new_ns = ns_per_call (fun () -> Bigint.Modring.sqr_into c dst xa);
    };
    {
      (* full-width exponent: e = m - 1, so [bits] squarings' worth *)
      m_name = Printf.sprintf "%s-powmod" name;
      m_old_ns = ns_per_call (fun () -> ignore (R.Mont.powmod rctx ra re));
      m_new_ns = ns_per_call (fun () -> ignore (Bigint.powmod a e m));
    };
    {
      m_name = name ^ "-plain-mul";
      m_old_ns = ns_per_call (fun () -> ignore (R.mul ra rb));
      m_new_ns = ns_per_call (fun () -> ignore (Bigint.mul a b));
    };
  ]

(* The PR4 ring trajectory on the live engine: same runner, same sizes,
   digests must match the goldens. *)
type ring_rerun = {
  rr_group : string;
  rr_digest : string;
  rr_golden : string;
  rr_points : Ring.point list;
  rr_identical : bool;
}

let ring_rerun (name, gfam) =
  Printf.printf "-- ring re-run: %s --\n%!" name;
  let points =
    List.map
      (fun jobs ->
        let p = Ring.run_point gfam jobs in
        Ring.print_point name p;
        p)
      [ 1; 2; 4 ]
  in
  let base = List.hd points in
  let identical =
    List.for_all
      (fun (p : Ring.point) ->
        p.Ring.transcript = base.Ring.transcript && p.Ring.ranks = base.Ring.ranks)
      points
  in
  {
    rr_group = name;
    rr_digest = base.Ring.transcript;
    rr_golden = List.assoc name golden_digests;
    rr_points = points;
    rr_identical = identical;
  }

let run () =
  Printf.printf "\n== Limb engine (%s) ==\n%!" json_path;
  let rng = Ppgr_rng.Rng.create ~seed:"ppgr-bench-limbs" in
  Printf.printf "old = frozen 26-bit reference, new = live 61-bit engine\n%!";
  let p160 = Ppgr_group.Ec_params.secp160r1.Ppgr_group.Ec_curve.p in
  let micros =
    modulus_micros "dl512" Ppgr_group.Modp_params.p_512 rng
    @ modulus_micros "dl1024" Ppgr_group.Modp_params.p_1024 rng
    @ modulus_micros "ecc160-field" p160 rng
  in
  List.iter
    (fun m ->
      Printf.printf "%-28s old %10.0f ns  new %10.0f ns  %5.2fx\n%!" m.m_name
        m.m_old_ns m.m_new_ns (ratio m))
    micros;
  let gate_row = List.find (fun m -> m.m_name = "dl1024-powmod") micros in
  Printf.printf "DL-1024 powmod: %.2fx (gate: >= %.1fx)\n%!" (ratio gate_row) powmod_gate;
  (* PR1 micro rows, re-run. *)
  Printf.printf "-- BENCH_PR1 micro rows, re-run on the live engine --\n%!";
  let pr1_rows =
    Trajectory.group_rows "dl1024" (Ppgr_group.Dl_group.dl_1024 ()) rng
    @ Trajectory.group_rows "ecc160" (Ppgr_group.Ec_group.ecc_160 ()) rng
  in
  List.iter
    (fun (r : Trajectory.row) ->
      Printf.printf "%-28s %12.0f ns/op\n%!" r.Trajectory.r_name r.Trajectory.r_ns)
    pr1_rows;
  (* PR4 ring trajectory, re-run. *)
  let reruns =
    List.map ring_rerun
      [
        ("DL-1024", Ppgr_group.Dl_group.dl_1024);
        ("ECC-160", Ppgr_group.Ec_group.ecc_160);
      ]
  in
  List.iter
    (fun rr ->
      Printf.printf "%s digest %s golden %s -> %s\n%!" rr.rr_group rr.rr_digest
        rr.rr_golden
        (if rr.rr_digest = rr.rr_golden then "MATCH" else "MISMATCH"))
    reruns;
  (* JSON. *)
  let oc = open_out json_path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"pr\": 6,\n";
  out
    "  \"description\": \"61-bit limb engine with in-place Montgomery \
     arithmetic\",\n";
  out "  \"baseline\": \"frozen 26-bit reference (Mag26_ref) on this host, same run\",\n";
  out "  \"cores_detected\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"old_vs_new_micros\": [\n";
  List.iteri
    (fun i m ->
      out
        "    {\"name\": %S, \"old_ns\": %.1f, \"new_ns\": %.1f, \"speedup\": \
         %.3f}%s\n"
        m.m_name m.m_old_ns m.m_new_ns (ratio m)
        (if i = List.length micros - 1 then "" else ","))
    micros;
  out "  ],\n";
  out "  \"dl1024_powmod_speedup\": %.3f,\n" (ratio gate_row);
  out "  \"dl1024_powmod_gate\": {\"threshold\": %.1f, \"passed\": %b},\n"
    powmod_gate
    (ratio gate_row >= powmod_gate);
  out "  \"pr1_micros_rerun_ns_per_op\": {\n";
  List.iteri
    (fun i (r : Trajectory.row) ->
      out "    %S: %.1f%s\n" r.Trajectory.r_name r.Trajectory.r_ns
        (if i = List.length pr1_rows - 1 then "" else ","))
    pr1_rows;
  out "  },\n";
  out "  \"ring_rerun\": [\n";
  List.iteri
    (fun i rr ->
      out "    {\n";
      out "      \"group\": %S,\n" rr.rr_group;
      out "      \"transcript_digest\": %S,\n" rr.rr_digest;
      out "      \"golden_digest\": %S,\n" rr.rr_golden;
      out "      \"digest_matches_golden\": %b,\n" (rr.rr_digest = rr.rr_golden);
      out "      \"transcripts_identical_across_jobs\": %b,\n" rr.rr_identical;
      out "      \"points\": [\n";
      List.iteri
        (fun j (p : Ring.point) ->
          out
            "        {\"jobs\": %d, \"wall_s\": %.3f, \"ring_wall_s\": %.4f, \
             \"totals\": {\"exps\": %d, \"group_mults\": %d, \"bytes\": %d}, \
             \"attribution_consistent\": %b}%s\n"
            p.Ring.jobs p.Ring.wall_s p.Ring.ring_s p.Ring.tot_exps
            p.Ring.tot_mults p.Ring.tot_bytes p.Ring.consistent
            (if j = List.length rr.rr_points - 1 then "" else ","))
        rr.rr_points;
      out "      ]\n";
      out "    }%s\n" (if i = List.length reruns - 1 then "" else ",")
    )
    reruns;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  (* Hard assertions: this bench is the PR's acceptance harness. *)
  if ratio gate_row < powmod_gate then
    failwith
      (Printf.sprintf "limb bench: DL-1024 powmod speedup %.2fx under the %.1fx gate"
         (ratio gate_row) powmod_gate);
  List.iter
    (fun rr ->
      if rr.rr_digest <> rr.rr_golden then
        failwith
          (Printf.sprintf "limb bench: %s transcript digest %s differs from golden %s"
             rr.rr_group rr.rr_digest rr.rr_golden);
      if not rr.rr_identical then
        failwith ("limb bench: " ^ rr.rr_group ^ " transcripts differ across job counts"))
    reruns

(* Cheap CI variant: micros only at DL-512 plus a digest check at test
   sizes is already covered by ring-smoke; here just enforce the gate's
   machinery without the long DL-1024 loops. *)
let smoke () =
  Printf.printf "\n== Limb smoke (DL-512 micros) ==\n%!";
  let rng = Ppgr_rng.Rng.create ~seed:"ppgr-bench-limbs-smoke" in
  let micros = modulus_micros "dl512" Ppgr_group.Modp_params.p_512 rng in
  List.iter
    (fun m ->
      Printf.printf "%-28s old %10.0f ns  new %10.0f ns  %5.2fx\n%!" m.m_name
        m.m_old_ns m.m_new_ns (ratio m))
    micros

(* Chaos bench: the message-passing runtime driven through seeded
   fault schedules on the real group sizes, written to BENCH_PR5.json.

   Each scenario runs the full protocol on DL-512 and ECC-160 under a
   Faultplan parsed from the same spec strings the CLI's --faults flag
   accepts.  Per run the section records the recovery bill — how many
   retransmissions, CRC rejects and duplicate suppressions the injected
   faults cost, and the physical-over-logical byte inflation — and
   enforces the conformance contract the chaos test suite pins:

   - a completed run reports exactly the fault-free golden ranks;
   - retransmissions = injected drops + corrupts + reorders, CRC
     rejects = injected corrupts (completed runs deliver every logical
     message, so every non-delivering fault is paid back exactly once);
   - the same fault seed yields a byte-identical physical transcript at
     jobs=1 and jobs=4.

   Any violation fails the process, so the CI chaos leg doubles as a
   cross-core determinism gate.  [smoke] is the cheap variant for CI:
   the three smoke seeds on the test-size groups only. *)

open Ppgr_bigint
open Ppgr_grouprank
module Faultplan = Ppgr_mpcnet.Faultplan
module Pool = Ppgr_exec.Pool

let json_path = "BENCH_PR5.json"

(* Same instance shape as the chaos test suite: n = 4 with a tie. *)
let betas = Array.map Bigint.of_int [| 9; 3; 14; 3 |]
let l = 5
let retry_budget = 8

let golden =
  Array.map
    (fun b ->
      1
      + Array.fold_left
          (fun acc b' -> if Bigint.compare b' b > 0 then acc + 1 else acc)
          0 betas)
    betas

(* The three seeded mixes the CI smoke leg replays, plus a clean
   baseline so the JSON carries the zero-fault reference bill. *)
let scenarios =
  [
    ("clean-baseline", "seed=bench-clean");
    ("drop-dup", "drop=0.15,dup=0.1,seed=bench-chaos-1");
    ("corrupt-delay", "corrupt=0.15,delay=0.3,maxdelay=4,seed=bench-chaos-2");
    ( "full-mix",
      "drop=0.1,corrupt=0.1,dup=0.1,reorder=0.1,delay=0.2,maxdelay=8,\
       seed=bench-chaos-3" );
  ]

type run = {
  group_name : string;
  scenario : string;
  spec : string;
  outcome : string; (* "completed" or "party_dropped" *)
  wall_s : float;
  ranks_ok : bool;
  faults : (string * int) list;
  retransmits : int;
  crc_rejects : int;
  dup_suppressed : int;
  backoff_ticks : int;
  bytes_logical : int;
  bytes_physical : int;
  messages_logical : int;
  messages_physical : int;
  digest : string;
  jobs_digests_agree : bool; (* jobs=1 transcript = jobs=4 transcript *)
}

let kind_count faults k = Option.value ~default:0 (List.assoc_opt k faults)

(* One scenario on one group: the protocol runs at jobs=1 and again at
   jobs=4, and the physical transcript digests must match — an abort
   must be the SAME abort at any parallelism.  The digest identifies
   every byte that crossed the wire, so this equality is the strongest
   determinism statement the runtime can make. *)
let bench_run g (scenario, spec) : run =
  let module G = (val g : Ppgr_group.Group_intf.GROUP) in
  let module R = Runtime.Make (G) in
  let run_at jobs =
    let prev = Pool.jobs () in
    Pool.set_jobs jobs;
    Fun.protect ~finally:(fun () -> Pool.set_jobs prev) @@ fun () ->
    let rng = Ppgr_rng.Rng.create ~seed:"ppgr-bench-chaos" in
    let faults = Faultplan.spec_of_string spec in
    match R.run ~faults ~retry_budget rng ~l ~betas with
    | st -> Ok st
    | exception Transport.Party_dropped f -> Error f
  in
  let digest_of = function
    | Ok (st : R.stats) -> st.R.transcript_sha
    | Error (f : Transport.forensics) -> f.Transport.fr_digest
  in
  let t0 = Unix.gettimeofday () in
  let seq = run_at 1 in
  let wall_s = Unix.gettimeofday () -. t0 in
  let par = run_at 4 in
  let digest = digest_of seq in
  let same_outcome =
    match (seq, par) with
    | Ok _, Ok _ | Error _, Error _ -> true
    | _ -> false
  in
  let jobs_digests_agree =
    same_outcome && String.equal digest (digest_of par)
  in
  match seq with
  | Ok st ->
      {
        group_name = G.name;
        scenario;
        spec;
        outcome = "completed";
        wall_s;
        ranks_ok = st.R.ranks = golden;
        faults = st.R.faults_injected;
        retransmits = st.R.retransmits;
        crc_rejects = st.R.crc_rejects;
        dup_suppressed = st.R.dup_suppressed;
        backoff_ticks = st.R.backoff_ticks;
        bytes_logical = st.R.bytes_on_wire;
        bytes_physical = st.R.phys_bytes;
        messages_logical = st.R.messages;
        messages_physical = st.R.phys_messages;
        digest;
        jobs_digests_agree;
      }
  | Error _ ->
      {
        group_name = G.name;
        scenario;
        spec;
        outcome = "party_dropped";
        wall_s;
        ranks_ok = false;
        faults = [];
        retransmits = 0;
        crc_rejects = 0;
        dup_suppressed = 0;
        backoff_ticks = 0;
        bytes_logical = 0;
        bytes_physical = 0;
        messages_logical = 0;
        messages_physical = 0;
        digest;
        jobs_digests_agree;
      }

(* The conformance contract; any violation fails the whole section. *)
let check (r : run) : string list =
  let problems = ref [] in
  let bad fmt =
    Printf.ksprintf (fun s -> problems := (r.scenario ^ ": " ^ s) :: !problems)
      fmt
  in
  if not r.jobs_digests_agree then
    bad "transcript digest differs between jobs=1 and jobs=4";
  if String.length r.digest <> 64 then bad "digest is not 64 hex chars";
  (if r.outcome = "completed" then begin
     if not r.ranks_ok then bad "completed with wrong ranks";
     let k = kind_count r.faults in
     if r.retransmits <> k "drop" + k "corrupt" + k "reorder" then
       bad "retransmits %d <> drops+corrupts+reorders %d" r.retransmits
         (k "drop" + k "corrupt" + k "reorder");
     if r.crc_rejects <> k "corrupt" then
       bad "crc_rejects %d <> injected corrupts %d" r.crc_rejects (k "corrupt");
     if r.bytes_physical < r.bytes_logical then
       bad "physical bytes %d below logical %d" r.bytes_physical
         r.bytes_logical;
     if r.messages_physical < r.messages_logical - k "drop" then
       bad "physical messages %d too low" r.messages_physical
   end);
  !problems

let print_run r =
  Printf.printf
    "%-10s %-16s %-13s retx=%-3d crc=%-2d dup=%-2d bytes %d -> %d (x%.2f)  \
     %s  %.2fs\n%!"
    r.group_name r.scenario r.outcome r.retransmits r.crc_rejects
    r.dup_suppressed r.bytes_logical r.bytes_physical
    (if r.bytes_logical = 0 then 1.0
     else float_of_int r.bytes_physical /. float_of_int r.bytes_logical)
    (String.sub r.digest 0 12)
    r.wall_s

let emit_run oc r =
  let out fmt = Printf.fprintf oc fmt in
  out "    {\n";
  out "      \"group\": %S,\n" r.group_name;
  out "      \"scenario\": %S,\n" r.scenario;
  out "      \"spec\": %S,\n" r.spec;
  out "      \"outcome\": %S,\n" r.outcome;
  out "      \"wall_s\": %.3f,\n" r.wall_s;
  out "      \"ranks_ok\": %b,\n" r.ranks_ok;
  out "      \"faults_injected\": {%s},\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) r.faults));
  out "      \"recovery\": {\"retransmits\": %d, \"crc_rejects\": %d, \
       \"dup_suppressed\": %d, \"backoff_ticks\": %d},\n"
    r.retransmits r.crc_rejects r.dup_suppressed r.backoff_ticks;
  out "      \"bytes\": {\"logical\": %d, \"physical\": %d},\n" r.bytes_logical
    r.bytes_physical;
  out "      \"messages\": {\"logical\": %d, \"physical\": %d},\n"
    r.messages_logical r.messages_physical;
  out "      \"transcript_sha256\": %S,\n" r.digest;
  out "      \"jobs_digests_agree\": %b\n" r.jobs_digests_agree;
  out "    }"

let groups () =
  [ Ppgr_group.Dl_group.dl_512 (); Ppgr_group.Ec_group.ecc_160 () ]

let run_matrix groups =
  List.concat_map
    (fun g ->
      List.map
        (fun sc ->
          let r = bench_run g sc in
          print_run r;
          r)
        scenarios)
    groups

let run () =
  Printf.printf "\n== Chaos (%s) ==\n%!" json_path;
  Printf.printf
    "runtime under seeded faults: n=%d, l=%d, retry budget %d, every \
     scenario at jobs=1 and jobs=4\n%!"
    (Array.length betas) l retry_budget;
  let runs = run_matrix (groups ()) in
  let oc = open_out json_path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"pr\": 5,\n";
  out "  \"description\": \"chaos: fault-injected runtime runs, recovery \
       cost and cross-core transcript determinism\",\n";
  out "  \"n\": %d,\n" (Array.length betas);
  out "  \"l\": %d,\n" l;
  out "  \"retry_budget\": %d,\n" retry_budget;
  out "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      emit_run oc r;
      out "%s\n" (if i = List.length runs - 1 then "" else ","))
    runs;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  let problems = List.concat_map check runs in
  if problems <> [] then begin
    List.iter (Printf.printf "chaos bench: %s\n%!") problems;
    failwith "chaos bench: conformance contract violated"
  end

(* CI smoke: the same matrix on the fast test-size groups, no JSON. *)
let smoke () =
  Printf.printf "\n== Chaos smoke (fault recovery + cross-core determinism) ==\n%!";
  let groups =
    [ Ppgr_group.Dl_group.dl_test_64 (); Ppgr_group.Ec_group.ecc_tiny () ]
  in
  let runs = run_matrix groups in
  let problems = List.concat_map check runs in
  if problems <> [] then begin
    List.iter (Printf.printf "chaos smoke: %s\n%!") problems;
    failwith "chaos smoke: conformance contract violated"
  end;
  Printf.printf "chaos smoke OK: %d runs, all transcripts job-count invariant\n%!"
    (List.length runs)

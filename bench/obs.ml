(* Observability bench: one traced end-to-end framework run per group
   level, written to BENCH_PR3.json as a per-phase breakdown — full
   exponentiations, group multiplications, on-wire bytes and wall time
   for every protocol step, with totals cross-checked against the
   global meters (the same tiling invariant the CLI's --metrics check
   enforces).

   Sizes are deliberately small (DL-1024 exponentiations dominate): the
   point of this section is the attribution, not the absolute load —
   the scaling section stresses volume. *)

open Ppgr_grouprank
module Trace = Ppgr_obs.Trace
module Metrics = Ppgr_obs.Metrics
module Summary = Ppgr_obs.Summary

let json_path = "BENCH_PR3.json"
let n = 5
let k = 2
let h = 6
let spec = Attrs.spec ~m:2 ~t:1 ~d1:4 ~d2:2

type run = {
  group_name : string;
  wall_s : float;
  span_count : int;
  phases : Summary.row list; (* one row per span name, parties collapsed *)
  tot_exps : int;
  tot_mults : int;
  tot_bytes : int;
  consistent : bool;
}

let traced_run (g : Ppgr_group.Group_intf.group) : run =
  let module G = (val g) in
  let rng = Ppgr_rng.Rng.create ~seed:"ppgr-bench-obs" in
  let criterion = Attrs.random_criterion rng spec in
  let infos = Array.init n (fun _ -> Attrs.random_info rng spec) in
  let cfg = Framework.config ~h ~spec ~k () in
  Metrics.register ~name:"exps" (fun () -> Ppgr_group.Opmeter.count ());
  Metrics.register ~name:"group_mults" (fun () -> G.op_count ());
  Fun.protect ~finally:(fun () ->
      Metrics.unregister ~name:"exps";
      Metrics.unregister ~name:"group_mults")
  @@ fun () ->
  let exps0 = Ppgr_group.Opmeter.count () in
  let mults0 = G.op_count () in
  let t0 = Unix.gettimeofday () in
  let out, spans =
    Trace.capture (fun () -> Framework.run_with_group g rng cfg ~criterion ~infos)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let rows = Summary.rows spans in
  let tot_exps = Summary.total rows "exps" in
  let tot_mults = Summary.total rows "group_mults" in
  let tot_bytes = Summary.total rows "bytes_out" in
  let consistent =
    tot_exps = Ppgr_group.Opmeter.count () - exps0
    && tot_mults = G.op_count () - mults0
    && tot_bytes = Cost.total_bytes out.Framework.costs.Framework.schedule
  in
  {
    group_name = G.name;
    wall_s;
    span_count = List.length spans;
    phases = Summary.by_phase rows;
    tot_exps;
    tot_mults;
    tot_bytes;
    consistent;
  }

let metric row name =
  Option.value ~default:0 (List.assoc_opt name row.Summary.metrics)

let print_run r =
  Printf.printf
    "%s: %.2f s, %d spans, %d exps, %d group mults, %d bytes (attribution %s)\n%!"
    r.group_name r.wall_s r.span_count r.tot_exps r.tot_mults r.tot_bytes
    (if r.consistent then "consistent" else "INCONSISTENT")

let emit_run oc r =
  let out fmt = Printf.fprintf oc fmt in
  out "    {\n";
  out "      \"group\": %S,\n" r.group_name;
  out "      \"wall_s\": %.3f,\n" r.wall_s;
  out "      \"span_count\": %d,\n" r.span_count;
  out "      \"totals\": {\"exps\": %d, \"group_mults\": %d, \"bytes\": %d},\n"
    r.tot_exps r.tot_mults r.tot_bytes;
  out "      \"attribution_consistent\": %b,\n" r.consistent;
  out "      \"phases\": [\n";
  List.iteri
    (fun i (row : Summary.row) ->
      out
        "        {\"phase\": %S, \"exps\": %d, \"group_mults\": %d, \
         \"bytes_out\": %d, \"bytes_in\": %d, \"wall_s\": %.4f}%s\n"
        row.Summary.phase (metric row "exps") (metric row "group_mults")
        (metric row "bytes_out") (metric row "bytes_in")
        (row.Summary.wall_us /. 1e6)
        (if i = List.length r.phases - 1 then "" else ","))
    r.phases;
  out "      ]\n";
  out "    }"

let run () =
  Printf.printf "\n== Observability (%s) ==\n%!" json_path;
  Printf.printf "traced framework runs: n=%d, k=%d, h=%d, spec m=2,t=1,d1=4,d2=2\n%!"
    n k h;
  let runs =
    List.map
      (fun g -> let r = traced_run g in print_run r; r)
      [ Ppgr_group.Dl_group.dl_1024 (); Ppgr_group.Ec_group.ecc_160 () ]
  in
  let oc = open_out json_path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"pr\": 3,\n";
  out "  \"description\": \"observability: per-phase breakdown of traced framework runs\",\n";
  out "  \"n\": %d,\n" n;
  out "  \"k\": %d,\n" k;
  out "  \"h\": %d,\n" h;
  out "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      emit_run oc r;
      out "%s\n" (if i = List.length runs - 1 then "" else ","))
    runs;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  if List.exists (fun r -> not r.consistent) runs then
    failwith "obs bench: span attribution disagrees with the global meters"

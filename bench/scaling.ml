(* Multicore scaling: writes BENCH_PR2.json, a machine-readable record
   of the parallel hot loops' wall time under jobs in {1, 2, 4, N}
   (N = recommended domain count), together with proof that the results
   are byte-identical at every job count — the determinism contract of
   the execution layer.  The [smoke] section is the cheap CI variant on
   a test group: it asserts equality and prints timings but writes no
   file.

   Honest-numbers note: speedups here are whatever the hardware gives.
   On a single-core container every job count does the same sequential
   work plus scheduling overhead; the JSON records the detected core
   count so a reader can interpret the ratios. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_grouprank
module Pool = Ppgr_exec.Pool

let json_path = "BENCH_PR2.json"

type point = {
  p_jobs : int;
  phase2_s : float;
  mixnet_s : float;
  powtable_s : float;
  sssort_s : float;
  ranks : int array;
  ops : int array; (* phase-2 per-party group ops *)
  exps : int array; (* phase-2 per-party exponentiations *)
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* One full sweep at a given job count.  A fresh group module per point
   keeps the op meters and the cached generator table cold, so every
   job count performs identical work from an identical start. *)
let run_point (gfam : unit -> Group_intf.group) ~n ~l ~sort_n ~sort_l jobs =
  Pool.set_jobs jobs;
  let module G = (val gfam ()) in
  let module P2 = Phase2.Make (G) in
  let module M = Ppgr_elgamal.Mixnet.Make (G) in
  let rng = Rng.create ~seed:"ppgr-bench-pr2" in
  let betas =
    Array.init n (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l))
  in
  let phase2_s, r = time (fun () -> P2.run rng ~l ~betas) in
  let msgs = Array.init n (fun _ -> G.pow_gen (G.random_scalar rng)) in
  let mixnet_s, _ = time (fun () -> M.collect rng msgs) in
  let x = G.pow_gen (G.random_scalar rng) in
  let powtable_s, _ = time (fun () -> G.powtable x) in
  let f = Ppgr_dotprod.Zfield.default () in
  let e = Ppgr_shamir.Engine.create rng f ~n:5 in
  let prm = Ppgr_shamir.Compare.default_params ~l:sort_l () in
  let inputs =
    Array.init sort_n (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight sort_l))
  in
  let sssort_s, _ = time (fun () -> Ppgr_shamir.Ss_sort.rank_via_sort e prm inputs) in
  Pool.set_jobs 1;
  {
    p_jobs = jobs;
    phase2_s;
    mixnet_s;
    powtable_s;
    sssort_s;
    ranks = r.P2.ranks;
    ops = r.P2.per_party_ops;
    exps = r.P2.per_party_exps;
  }

let same_results a b = a.ranks = b.ranks && a.ops = b.ops && a.exps = b.exps

let job_counts () =
  let n = Domain.recommended_domain_count () in
  List.sort_uniq Stdlib.compare [ 1; 2; 4; n ]

let print_point p =
  Printf.printf
    "jobs=%-2d  phase2 %7.2f s   mixnet %6.2f s   powtable %6.3f s   ss-sort %6.2f s\n%!"
    p.p_jobs p.phase2_s p.mixnet_s p.powtable_s p.sssort_s

let sweep gfam ~n ~l ~sort_n ~sort_l =
  List.map
    (fun jobs ->
      let p = run_point gfam ~n ~l ~sort_n ~sort_l jobs in
      print_point p;
      p)
    (job_counts ())

(* The cheap CI variant: test-size group, asserts the determinism
   contract and fails loudly if any job count disagrees with jobs=1. *)
let smoke () =
  Printf.printf "\n== Scaling smoke (DL-test-128, n=5, l=8) ==\n%!";
  Printf.printf "cores detected: %d\n%!" (Domain.recommended_domain_count ());
  let points =
    List.map
      (fun jobs ->
        let p = run_point Dl_group.dl_test_128 ~n:5 ~l:8 ~sort_n:6 ~sort_l:6 jobs in
        print_point p;
        p)
      [ 1; 2 ]
  in
  let base = List.hd points in
  List.iter
    (fun p ->
      if not (same_results base p) then
        failwith
          (Printf.sprintf "scaling smoke: jobs=%d results differ from jobs=1"
             p.p_jobs))
    points;
  Printf.printf "results identical across job counts: ok\n%!"

let run () =
  Printf.printf "\n== Multicore scaling (%s) ==\n%!" json_path;
  let cores = Domain.recommended_domain_count () in
  Printf.printf "cores detected: %d, job counts: %s\n%!" cores
    (String.concat ", " (List.map string_of_int (job_counts ())));
  let n = 8 and l = 32 in
  Printf.printf "phase2 n=%d l=%d on DL-1024; mixnet n=%d; ss-sort n=8 l=8\n%!" n l n;
  let points = sweep Dl_group.dl_1024 ~n ~l ~sort_n:8 ~sort_l:8 in
  let base = List.hd points in
  let identical = List.for_all (same_results base) points in
  Printf.printf "results identical across job counts: %s\n%!"
    (if identical then "yes" else "NO - DETERMINISM BUG");
  let oc = open_out json_path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"pr\": 2,\n";
  out "  \"description\": \"multicore execution layer: domain pool scaling\",\n";
  out "  \"cores_detected\": %d,\n" cores;
  out "  \"group\": \"DL-1024\",\n";
  out "  \"phase2_n\": %d,\n" n;
  out "  \"phase2_l\": %d,\n" l;
  out "  \"points\": [\n";
  List.iteri
    (fun i p ->
      out
        "    {\"jobs\": %d, \"phase2_s\": %.3f, \"mixnet_s\": %.3f, \
         \"powtable_s\": %.4f, \"sssort_s\": %.3f}%s\n"
        p.p_jobs p.phase2_s p.mixnet_s p.powtable_s p.sssort_s
        (if i = List.length points - 1 then "" else ","))
    points;
  out "  ],\n";
  out "  \"speedup_vs_jobs1\": [\n";
  List.iteri
    (fun i p ->
      out "    {\"jobs\": %d, \"phase2\": %.3f, \"mixnet\": %.3f}%s\n" p.p_jobs
        (base.phase2_s /. p.phase2_s)
        (base.mixnet_s /. p.mixnet_s)
        (if i = List.length points - 1 then "" else ","))
    points;
  out "  ],\n";
  out "  \"ranks\": [%s],\n"
    (String.concat ", " (Array.to_list (Array.map string_of_int base.ranks)));
  out "  \"results_identical_across_jobs\": %b\n" identical;
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path

(* Regenerates every figure of the paper's evaluation (§VII).

   Methodology (EXPERIMENTS.md): per-participant cost is predicted by the
   validated cost models of {!Ppgr_grouprank.Cost_model} — instrumented
   protocol runs on a cheap group supply exact operation counts, and
   measured per-operation wall-clock on each production group converts
   counts to seconds.  The paper's absolute numbers (Pentium 4, Crypto++)
   are not reproducible; the claims under test are the cost *shapes*. *)

open Ppgr_rng
open Ppgr_group
open Ppgr_grouprank
open Ppgr_mpcnet

let rng = Rng.create ~seed:"ppgr-bench"

(* Paper defaults (§VII): n=25, m=10, d1=15, h=15; d2 is not stated, we
   use 10 (EXPERIMENTS.md).  t = m/2 "equal to" attributes. *)
type setting = { n : int; m : int; t : int; d1 : int; d2 : int; h : int }

let default = { n = 25; m = 10; t = 5; d1 = 15; d2 = 10; h = 15 }

let spec_of s = Attrs.spec ~m:s.m ~t:s.t ~d1:s.d1 ~d2:s.d2

let beta_bits s =
  Phase1.beta_bits (Phase1.config ~spec:(spec_of s) ~h:s.h ())

(* Per-participant phase-1 cost in field multiplications (measured once;
   tiny compared to phase 2 but included for completeness). *)
let phase1_party_field_mults s =
  let spec = spec_of s in
  let f = Ppgr_dotprod.Zfield.default () in
  let cfg = Phase1.config ~spec ~h:s.h ~field:f () in
  let criterion = Attrs.random_criterion rng spec in
  let info = Attrs.random_info rng spec in
  let secrets = Phase1.draw_masks rng cfg ~n:1 in
  Ppgr_dotprod.Zfield.reset_mult_count f;
  ignore (Phase1.run_one rng cfg ~criterion ~secrets ~j:0 ~info);
  Ppgr_dotprod.Zfield.mult_count f

(* Cache HE/SS models per l (fits are cheap but not free). *)
let he_models : (int, Cost_model.He_model.t) Hashtbl.t = Hashtbl.create 8
let ss_models : (int, Cost_model.Ss_model.t) Hashtbl.t = Hashtbl.create 8

let he_model ~l =
  match Hashtbl.find_opt he_models l with
  | Some m -> m
  | None ->
      let m = Cost_model.He_model.fit rng ~l in
      Hashtbl.add he_models l m;
      m

let ss_model ~l =
  match Hashtbl.find_opt ss_models l with
  | Some m -> m
  | None ->
      let m = Cost_model.Ss_model.measure rng ~l ~n0:5 () in
      Hashtbl.add ss_models l m;
      m

(* For the network figure the SS baseline shares over the smallest field
   that fits the comparison (a 96-bit prime, 12-byte elements, kappa=30)
   instead of the 192-bit default, as a deployment tuned for the wire
   would. *)
let ss_net_models : (int, Cost_model.Ss_model.t) Hashtbl.t = Hashtbl.create 8

let ss_net_field = lazy (Ppgr_dotprod.Zfield.create Ppgr_group.Modp_params.test_96)

let ss_net_model ~l =
  match Hashtbl.find_opt ss_net_models l with
  | Some m -> m
  | None ->
      let m =
        Cost_model.Ss_model.measure rng ~l ~kappa:30 ~n0:5
          ~field:(Lazy.force ss_net_field) ()
      in
      Hashtbl.add ss_net_models l m;
      m

(* Per-participant seconds for one framework at one setting. *)
let he_seconds (cal : Calibrate.group_cal) ~field_cal s =
  let l = beta_bits s in
  let m = he_model ~l in
  let phase2 =
    Cost_model.He_model.predict_seconds m ~n:s.n ~mpe_target:cal.Calibrate.mpe
      ~sec_per_mult:cal.Calibrate.sec_per_mult
  in
  let phase1 = float_of_int (phase1_party_field_mults s) *. field_cal in
  phase1 +. phase2

let ss_seconds ?faithful ~field_cal s =
  let l = beta_bits s in
  let m = ss_model ~l in
  let phase2 =
    Cost_model.Ss_model.predict_seconds ?faithful m ~n:s.n
      ~sec_per_field_mult:field_cal
  in
  let phase1 = float_of_int (phase1_party_field_mults s) *. field_cal in
  phase1 +. phase2

let header title cols =
  Printf.printf "\n== %s ==\n%-8s %s\n" title "x"
    (String.concat " " (List.map (Printf.sprintf "%14s") cols))

let row x cells =
  Printf.printf "%-8s %s\n%!" x
    (String.concat " " (List.map (fun v -> Printf.sprintf "%14.4g" v) cells))

(* Fig. 2: per-participant computation time under different framework
   settings, for the DL-1024, ECC-160 and SS frameworks. *)
let fig2 ~dl ~ecc ~field_cal () =
  (* "SS" is the baseline as the paper costs it (Nishide-Ohta comparison
     primitive, 279l+5 multiplications); "SS-impl" is the cheaper
     masked-open comparison this repository actually implements. *)
  let frameworks s =
    [
      he_seconds dl ~field_cal s;
      he_seconds ecc ~field_cal s;
      ss_seconds ~faithful:true ~field_cal s;
      ss_seconds ~field_cal s;
    ]
  in
  header "Fig 2(a): time vs number of participants n (m=10 d1=15 h=15)"
    [ "DL-1024 (s)"; "ECC-160 (s)"; "SS (s)"; "SS-impl (s)" ];
  List.iter
    (fun n -> row (string_of_int n) (frameworks { default with n }))
    [ 10; 20; 25; 30; 40; 50; 60; 70 ];
  header "Fig 2(b): time vs attribute dimension m (n=25)"
    [ "DL-1024 (s)"; "ECC-160 (s)"; "SS (s)"; "SS-impl (s)" ];
  List.iter
    (fun m -> row (string_of_int m) (frameworks { default with m; t = m / 2 }))
    [ 5; 10; 15; 20; 25; 30; 40 ];
  header "Fig 2(c): time vs attribute bit length d1 (n=25)"
    [ "DL-1024 (s)"; "ECC-160 (s)"; "SS (s)"; "SS-impl (s)" ];
  List.iter
    (fun d1 -> row (string_of_int d1) (frameworks { default with d1 }))
    [ 5; 10; 15; 20; 25; 30; 40 ];
  header "Fig 2(d): time vs mask bit length h (n=25)"
    [ "DL-1024 (s)"; "ECC-160 (s)"; "SS (s)"; "SS-impl (s)" ];
  List.iter
    (fun h -> row (string_of_int h) (frameworks { default with h }))
    [ 5; 10; 15; 20; 25; 30; 40 ]

(* Fig. 3(a): per-participant time vs security level at n=70.  The NIST
   equivalences the paper cites: 80-bit ~ ECC-160/DL-1024, 112-bit ~
   ECC-224/DL-2048, 128-bit ~ ECC-256/DL-3072. *)
let fig3a ~(levels : (Calibrate.group_cal * Calibrate.group_cal) list) ~field_cal () =
  header "Fig 3(a): time vs security level (n=70)"
    [ "ECC (s)"; "DL (s)"; "DL/ECC" ];
  List.iter
    (fun ((ecc : Calibrate.group_cal), (dl : Calibrate.group_cal)) ->
      let s = { default with n = 70 } in
      let te = he_seconds ecc ~field_cal s in
      let td = he_seconds dl ~field_cal s in
      row (Printf.sprintf "%d-bit" ecc.Calibrate.security_bits) [ te; td; td /. te ])
    levels

(* Fig. 3(b): execution time on the paper's random 80-node / 320-edge
   topology (2 Mbps links, 50 ms latency), communication and computation
   both simulated.  The HE frameworks pipeline the decryption ring
   (process-and-forward per set); the SS baseline exchanges over a
   12-byte field with kappa=30.  "SS-paper" costs the comparison at the
   Nishide-Ohta constants of the paper's analysis. *)
let fig3b ~dl ~ecc ~field_cal () =
  let topo = Topology.random_connected rng ~nodes:80 ~edges:320 () in
  header "Fig 3(b): elapsed time with network (80 nodes, 320 edges)"
    [ "DL-1024 (s)"; "ECC-160 (s)"; "SS (s)"; "SS-paper (s)" ];
  List.iter
    (fun n ->
      let s = { default with n } in
      let l = beta_bits s in
      let hm = he_model ~l in
      let run_he (cal : Calibrate.group_cal) =
        let sched =
          Cost_model.He_model.schedule hm ~n ~cipher_bytes:(2 * cal.Calibrate.elem_bytes)
            ~elem_bytes:cal.Calibrate.elem_bytes ~scalar_bytes:cal.Calibrate.scalar_bytes
            ~mpe_target:cal.Calibrate.mpe
        in
        let placement = Netsim.place_parties topo ~parties:n in
        (Netsim.run topo ~placement
           (Cost.to_netsim ~seconds_per_op:cal.Calibrate.sec_per_mult sched))
          .Netsim.elapsed_s
      in
      let run_ss ~faithful =
        let sm = ss_net_model ~l in
        let sched =
          Cost_model.Ss_model.schedule ~faithful sm ~n ~field_bytes:12
            ~sec_per_field_mult:field_cal ~sec_per_op:field_cal
        in
        let placement = Netsim.place_parties topo ~parties:n in
        (Netsim.run topo ~placement (Cost.to_netsim ~seconds_per_op:field_cal sched))
          .Netsim.elapsed_s
      in
      row (string_of_int n)
        [ run_he dl; run_he ecc; run_ss ~faithful:false; run_ss ~faithful:true ])
    [ 10; 20; 30; 40; 50; 60; 70 ]

(* §VI-B analysis: operation counts, rounds and traffic per party, with
   the paper's asymptotic formulas alongside. *)
let analysis () =
  header "Analysis (VI-B): per-party cost counters vs n (l from defaults)"
    [ "HE exps"; "HE rounds"; "HE Mbytes"; "SS mults"; "SS rounds"; "paper-SS" ];
  List.iter
    (fun n ->
      let s = { default with n } in
      let l = beta_bits s in
      let hm = he_model ~l in
      let exps = Cost_model.He_model.predict_exps hm ~n in
      let sched =
        Cost_model.He_model.schedule hm ~n ~cipher_bytes:256 ~elem_bytes:128
          ~scalar_bytes:128 ~mpe_target:1500.
      in
      let rounds = float_of_int (List.length sched) in
      let mbytes = float_of_int (Cost.total_bytes sched) /. 1e6 /. float_of_int n in
      let sm = ss_model ~l in
      let ss_mults = Cost_model.Ss_model.predict_party_field_mults sm ~n in
      let ss_rounds = Cost_model.Ss_model.predict_rounds sm ~n in
      let paper_ss = Cost_model.Ss_model.paper_analytic_party_mults ~n ~l in
      row (string_of_int n) [ exps; rounds; mbytes; ss_mults; ss_rounds; paper_ss ])
    [ 10; 25; 40; 55; 70 ]

(* Ablations called out in DESIGN.md §5. *)
let ablations () =
  (* (1) Suffix-sum vs naive omega circuit in step 7. *)
  let module G = (val Dl_group.dl_test_64 ()) in
  let module P2 = Phase2.Make (G) in
  header "Ablation: suffix-sum vs naive omega circuit (group ops, n=6)"
    [ "suffix ops"; "naive ops"; "ratio" ];
  List.iter
    (fun l ->
      let betas =
        Array.init 6 (fun _ -> Rng.bigint_below rng (Ppgr_bigint.Bigint.nth_bit_weight l))
      in
      let total r = float_of_int (Array.fold_left ( + ) 0 r.P2.per_party_ops) in
      let fast = total (P2.run rng ~l ~betas) in
      let naive = total (P2.run ~naive_omega:true rng ~l ~betas) in
      row (Printf.sprintf "l=%d" l) [ fast; naive; naive /. fast ])
    [ 16; 32; 64; 96 ];
  (* (2) Karatsuba cutoff. *)
  header "Ablation: multiplication time vs bits (Karatsuba on)" [ "ns/mult" ];
  let open Ppgr_bigint in
  List.iter
    (fun bits ->
      let a = Rng.bigint_bits rng bits and b = Rng.bigint_bits rng bits in
      let t = Calibrate.time_per_call (fun () -> ignore (Bigint.mul a b)) in
      row (string_of_int bits) [ t *. 1e9 ])
    [ 256; 1024; 4096; 16384 ];
  (* (3) Montgomery vs division-based exponentiation. *)
  header "Ablation: 1024-bit modexp, Montgomery vs divide-and-reduce" [ "ms/exp" ];
  let m = Modp_params.p_1024 in
  let b = Rng.bigint_below rng m and e = Rng.bigint_below rng m in
  let mont = Calibrate.time_per_call (fun () -> ignore (Bigint.powmod b e m)) in
  let plain () =
    (* Square-and-multiply with explicit Euclidean reductions. *)
    let acc = ref Bigint.one in
    for i = Bigint.numbits e - 1 downto 0 do
      acc := Bigint.erem (Bigint.mul !acc !acc) m;
      if Bigint.testbit e i then acc := Bigint.erem (Bigint.mul !acc b) m
    done;
    !acc
  in
  let naive = Calibrate.time_per_call ~min_time:0.5 (fun () -> ignore (plain ())) in
  row "montgomery" [ mont *. 1e3 ];
  row "divide" [ naive *. 1e3 ];
  (* (4) wNAF vs plain binary scalar multiplication on ECC-160. *)
  header "Ablation: ECC-160 scalar mult, wNAF-4 vs double-and-add" [ "point ops" ];
  let module E160 = (val Ec_group.ecc_160 ()) in
  let x = E160.pow_gen (E160.random_scalar rng) in
  let s = E160.op_snapshot () in
  for _ = 1 to 20 do
    ignore (E160.pow x (E160.random_scalar rng))
  done;
  let wnaf_ops = float_of_int (E160.ops_since s) /. 20. in
  (* Binary double-and-add through the group interface. *)
  let binary_pow e =
    let open Ppgr_bigint in
    let acc = ref E160.identity in
    for i = Bigint.numbits e - 1 downto 0 do
      acc := E160.mul !acc !acc;
      if Bigint.testbit e i then acc := E160.mul !acc x
    done;
    !acc
  in
  let s = E160.op_snapshot () in
  for _ = 1 to 20 do
    ignore (binary_pow (E160.random_scalar rng))
  done;
  let bin_ops = float_of_int (E160.ops_since s) /. 20. in
  row "wNAF-4" [ wnaf_ops ];
  row "binary" [ bin_ops ]

(* Telemetry-layer bench (BENCH_PR8.json): the cost and the invariance
   of the PR 8 observability subsystems, measured on the real runtime.

   Four claims, each enforced in-process (a violation fails the bench,
   so the CI leg is a gate, not a report):

   - overhead: a DL-512 runtime run under FULL telemetry — span tracing
     with probe sampling, histogram recording, the causal flow ledger —
     costs at most 5% wall over the telemetry-off run (min-of-N walls);
   - invariance: the physical transcript digest is byte-identical at
     jobs in {1,2,4} with telemetry on and off — six equal digests, so
     neither histograms nor the ledger perturb wire bytes or RNG
     splitting;
   - completeness: the causal ledger holds exactly one flow per logical
     message of a traced run;
   - distribution: per-hop ring latency and message-size histograms on
     DL-1024 and ECC-160, the p50/p90/p99/max the ROADMAP's session
     latency work will regress against.

   Artifacts beside the JSON: a flow-arrow Perfetto trace of a faulty
   DL-512 run (obsv2_flows.json) and a Prometheus snapshot of every
   probe and histogram (obsv2_metrics.prom). *)

open Ppgr_bigint
open Ppgr_grouprank
module Pool = Ppgr_exec.Pool
module Trace = Ppgr_obs.Trace
module Hist = Ppgr_obs.Hist
module Metrics = Ppgr_obs.Metrics
module Export = Ppgr_obs.Export

let json_path = "BENCH_PR8.json"
let flows_path = "obsv2_flows.json"
let prom_path = "obsv2_metrics.prom"
let overhead_threshold = 0.05

(* Same instance shape as the chaos suite: n = 4 with a tie. *)
let betas = Array.map Bigint.of_int [| 9; 3; 14; 3 |]
let l = 5
let seed = "ppgr-bench-obsv2"

let fault_spec =
  "drop=0.1,corrupt=0.1,dup=0.1,delay=0.2,maxdelay=4,seed=bench-obsv2"

type telemetry = Off | Full

(* One runtime run under a telemetry mode.  Probes are registered only
   for [Full], mirroring what the CLI's observability flags switch on,
   so [Off] measures the true disabled path (one ref read per site). *)
let run_once g ~telemetry ?faults () =
  let module G = (val g : Ppgr_group.Group_intf.GROUP) in
  let module R = Runtime.Make (G) in
  let rng = Ppgr_rng.Rng.create ~seed in
  let faults = Option.map Ppgr_mpcnet.Faultplan.spec_of_string faults in
  let go () = R.run ?faults rng ~l ~betas in
  match telemetry with
  | Off ->
      let st = go () in
      (st.R.transcript_sha, st.R.messages, List.length st.R.flows, [])
  | Full ->
      Metrics.register ~name:"exps" (fun () -> Ppgr_group.Opmeter.count ());
      Metrics.register ~name:"group_mults" (fun () -> G.op_count ());
      Fun.protect
        ~finally:(fun () ->
          Metrics.unregister ~name:"exps";
          Metrics.unregister ~name:"group_mults")
        (fun () ->
          Hist.set_enabled true;
          Fun.protect
            ~finally:(fun () -> Hist.set_enabled false)
            (fun () ->
              let st, spans = Trace.capture go in
              ( st.R.transcript_sha,
                st.R.messages,
                List.length st.R.flows,
                spans )))

let min_wall ~reps f =
  f () (* warmup *);
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    f ();
    let w = Unix.gettimeofday () -. t0 in
    if w < !best then best := w
  done;
  !best

let digest_at g ~jobs ~telemetry =
  let prev = Pool.jobs () in
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs prev) @@ fun () ->
  let d, _, _, _ = run_once g ~telemetry () in
  d

type hist_summary = {
  hs_count : int;
  hs_p50 : int;
  hs_p90 : int;
  hs_p99 : int;
  hs_max : int;
}

let summarize h =
  {
    hs_count = Hist.count h;
    hs_p50 = Hist.p50 h;
    hs_p90 = Hist.p90 h;
    hs_p99 = Hist.p99 h;
    hs_max = Hist.max_value h;
  }

let emit_hist oc name (s : hist_summary) =
  Printf.fprintf oc
    "{\"name\": %S, \"count\": %d, \"p50\": %d, \"p90\": %d, \"p99\": %d, \
     \"max\": %d}"
    name s.hs_count s.hs_p50 s.hs_p90 s.hs_p99 s.hs_max

(* Per-group distributional numbers: a histogram-enabled run (tracing
   off — the cheap always-collectable mode) on a fresh registry. *)
let hist_point g =
  let module G = (val g : Ppgr_group.Group_intf.GROUP) in
  Hist.reset_all ();
  Hist.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Hist.set_enabled false)
    (fun () -> ignore (run_once g ~telemetry:Off ()));
  (G.name, summarize Hist.hop_us, summarize Hist.msg_bytes)

(* The overhead gate and the six-digest invariance square on one group
   (DL-512 in the full bench, a test group in smoke). *)
let gate_group g ~reps =
  let module G = (val g : Ppgr_group.Group_intf.GROUP) in
  Hist.reset_all ();
  let wall_off = min_wall ~reps (fun () -> ignore (run_once g ~telemetry:Off ())) in
  let wall_on = min_wall ~reps (fun () -> ignore (run_once g ~telemetry:Full ())) in
  let overhead = (wall_on -. wall_off) /. wall_off in
  let digests =
    List.concat_map
      (fun jobs ->
        [
          (jobs, "off", digest_at g ~jobs ~telemetry:Off);
          (jobs, "full", digest_at g ~jobs ~telemetry:Full);
        ])
      [ 1; 2; 4 ]
  in
  let all_agree =
    match digests with
    | (_, _, d0) :: rest -> List.for_all (fun (_, _, d) -> String.equal d d0) rest
    | [] -> false
  in
  let _, messages, flows, _ = run_once g ~telemetry:Full () in
  (G.name, wall_off, wall_on, overhead, digests, all_agree, messages, flows)

let check_group ~gate_overhead
    (name, wall_off, wall_on, overhead, _digests, all_agree, messages, flows) =
  let problems = ref [] in
  let bad fmt =
    Printf.ksprintf (fun s -> problems := (name ^ ": " ^ s) :: !problems) fmt
  in
  if not all_agree then
    bad "transcript digests diverge across jobs/telemetry (ledger or \
         histograms touched the wire)";
  if flows <> messages then
    bad "causal ledger has %d flows for %d logical messages" flows messages;
  if gate_overhead && overhead > overhead_threshold then
    bad "telemetry overhead %.1f%% exceeds %.0f%% gate (off %.3fs, on %.3fs)"
      (100. *. overhead)
      (100. *. overhead_threshold)
      wall_off wall_on;
  !problems

let run () =
  Printf.printf "\n== Obsv2 (%s) ==\n%!" json_path;
  Printf.printf
    "telemetry layer: overhead gate (<= %.0f%%), 6-way digest invariance, \
     ledger completeness, hop/size histograms\n%!"
    (100. *. overhead_threshold);
  let dl512 = Ppgr_group.Dl_group.dl_512 () in
  let ((name, wall_off, wall_on, overhead, digests, all_agree, messages, flows)
       as gate) =
    gate_group dl512 ~reps:5
  in
  Printf.printf
    "%-8s wall off %.3fs, full telemetry %.3fs -> overhead %.2f%%\n%!" name
    wall_off wall_on (100. *. overhead);
  Printf.printf "%-8s digests agree over jobs {1,2,4} x {off,full}: %b\n%!" name
    all_agree;
  Printf.printf "%-8s causal ledger: %d flows for %d logical messages\n%!" name
    flows messages;
  let hist_points =
    List.map hist_point
      [ Ppgr_group.Dl_group.dl_1024 (); Ppgr_group.Ec_group.ecc_160 () ]
  in
  List.iter
    (fun (g, hop, bytes) ->
      Printf.printf
        "%-8s hop latency p50 %dus p90 %dus p99 %dus max %dus (%d hops); msg \
         p50 %dB p99 %dB\n%!"
        g hop.hs_p50 hop.hs_p90 hop.hs_p99 hop.hs_max hop.hs_count bytes.hs_p50
        bytes.hs_p99)
    hist_points;
  (* Artifacts: the flow-arrow trace of a faulty DL-512 run (arrows span
     the retransmit window, so Perfetto shows recovery latency) and the
     Prometheus snapshot of that run's histograms. *)
  let module G = (val dl512 : Ppgr_group.Group_intf.GROUP) in
  let module R = Runtime.Make (G) in
  Hist.reset_all ();
  Hist.set_enabled true;
  let st, spans =
    Fun.protect
      ~finally:(fun () -> Hist.set_enabled false)
      (fun () ->
        Trace.capture (fun () ->
            let rng = Ppgr_rng.Rng.create ~seed in
            R.run
              ~faults:(Ppgr_mpcnet.Faultplan.spec_of_string fault_spec)
              rng ~l ~betas))
  in
  Export.write_chrome ~flows:(Transport.flows_to_export st.R.flows) flows_path
    spans;
  Export.write_prometheus prom_path;
  Printf.printf "wrote %s (%d spans, %d flow arrows) and %s\n%!" flows_path
    (List.length spans) (List.length st.R.flows) prom_path;
  let oc = open_out json_path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"pr\": 8,\n";
  out "  \"description\": \"obsv2: telemetry overhead gate, transcript \
       invariance under telemetry, causal ledger completeness, latency/size \
       histograms\",\n";
  out "  \"n\": %d,\n" (Array.length betas);
  out "  \"l\": %d,\n" l;
  out "  \"overhead_gate\": {\"group\": %S, \"wall_off_s\": %.4f, \
       \"wall_on_s\": %.4f, \"overhead_frac\": %.4f, \"threshold\": %.2f},\n"
    name wall_off wall_on overhead overhead_threshold;
  out "  \"digest_invariance\": {\"agree\": %b, \"points\": [\n" all_agree;
  List.iteri
    (fun i (jobs, telemetry, d) ->
      out "    {\"jobs\": %d, \"telemetry\": %S, \"transcript_sha256\": %S}%s\n"
        jobs telemetry d
        (if i = List.length digests - 1 then "" else ","))
    digests;
  out "  ]},\n";
  out "  \"causal_ledger\": {\"messages_logical\": %d, \"flows\": %d},\n"
    messages flows;
  out "  \"histograms\": [\n";
  List.iteri
    (fun i (g, hop, bytes) ->
      out "    {\"group\": %S, \"hop_us\": " g;
      emit_hist oc "hop_us" hop;
      out ", \"msg_bytes\": ";
      emit_hist oc "msg_bytes" bytes;
      out "}%s\n" (if i = List.length hist_points - 1 then "" else ","))
    hist_points;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  let problems = check_group ~gate_overhead:true gate in
  if problems <> [] then begin
    List.iter (Printf.printf "obsv2 bench: %s\n%!") problems;
    failwith "obsv2 bench: telemetry contract violated"
  end

(* CI smoke: invariance and ledger completeness on the test-size
   groups.  The 5% overhead gate is NOT applied here — sub-millisecond
   runs drown it in scheduler noise; the full section owns that gate. *)
let smoke () =
  Printf.printf "\n== Obsv2 smoke (telemetry invariance + ledger) ==\n%!";
  let gates =
    List.map
      (fun g -> gate_group g ~reps:2)
      [ Ppgr_group.Dl_group.dl_test_64 (); Ppgr_group.Ec_group.ecc_tiny () ]
  in
  let problems = List.concat_map (check_group ~gate_overhead:false) gates in
  (* Distribution sanity: a histogram-enabled run must record exactly
     one hop per party. *)
  let _, hop, _ = hist_point (Ppgr_group.Ec_group.ecc_tiny ()) in
  let problems =
    if hop.hs_count <> Array.length betas then
      Printf.sprintf "ecc-tiny: hop histogram has %d samples for %d hops"
        hop.hs_count (Array.length betas)
      :: problems
    else problems
  in
  if problems <> [] then begin
    List.iter (Printf.printf "obsv2 smoke: %s\n%!") problems;
    failwith "obsv2 smoke: telemetry contract violated"
  end;
  List.iter
    (fun (name, _, _, _, _, _, messages, flows) ->
      Printf.printf
        "obsv2 smoke OK: %s digests job/telemetry invariant, %d flows = %d \
         messages\n%!"
        name flows messages)
    gates

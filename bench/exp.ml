(* Group-layer exponentiation bench: writes BENCH_PR7.json, the
   trajectory record for the zero-allocation group layer (in-place
   Jacobian point ops, per-domain wNAF scratch, exponent-path caching).

   Three layers of evidence, all on this host in this run:
   - old-vs-new micros: the pre-rewrite group-layer algorithms
     reconstructed from still-public primitives (allocating Modring ops
     + list-based wNAF recodings for DL, allocating point ops for EC —
     the exact shapes the old [Dl_group.pow]/[Ec_curve.scalar_mul]
     used) against the live scratch-resident paths, on the same values,
     with a byte-equality cross-check before any timing;
   - per-op minor-words probes: the live paths must allocate exactly
     their escaping result, nothing else;
   - the ring trajectory re-run (same n/k/h/spec as BENCH_PR4-PR6,
     jobs in {1, 2, 4}) with transcript digests asserted byte-identical
     to the PR4/PR5/PR6 goldens, and the DL-1024 jobs=1 wall gated at
     >= 1.25x over the BENCH_PR6 reference: a faster group layer must
     change no protocol byte. *)

open Ppgr_bigint
module GI = Ppgr_group.Group_intf
module MR = Bigint.Modring
module EC = Ppgr_group.Ec_curve

let json_path = "BENCH_PR7.json"

(* Golden transcript digests pinned by BENCH_PR4.json (unchanged through
   BENCH_PR6): the ring re-run must reproduce these exactly. *)
let golden_digests =
  [ ("DL-1024", "e7d0bd1fb8941e5d34d7482deae0cd07"); ("ECC-160", "802789ff60f56eea673c40d63f36601c") ]

(* BENCH_PR6.json jobs=1 ring walls (reference host); the DL-1024 gate
   below is the PR's acceptance bar. *)
let pr6_ring_wall = [ ("DL-1024", 28.429); ("ECC-160", 1.528) ]
let ring_gate = 1.25

let ns_per_call f = Calibrate.time_per_call f *. 1e9

type micro = {
  m_name : string;
  m_old_ns : float;
  m_new_ns : float;
  m_new_words : float; (* minor words per call on the live path *)
  m_result_words : float; (* the escaping result's own size *)
}

let ratio m = m.m_old_ns /. m.m_new_ns

(* ---- Old DL exponentiation paths, reconstructed on Modring. ----
   These replicate the pre-rewrite [Dl_group] bodies exactly: per-call
   odd-powers arrays, [option]-boxed lazy inverse caches, list-based
   wNAF recodings, per-digit allocating ring ops, a meter tick per
   group op, and an unconditional [erem] on entry. *)

let old_meter = Ppgr_exec.Meter.create ()

let dl_old_pow ring order x e =
  let tick () = Ppgr_exec.Meter.incr old_meter in
  let sqr a = tick (); MR.sqr ring a in
  let mul a b = tick (); MR.mul ring a b in
  let inv a = tick (); MR.inv ring a in
  let e = Bigint.erem e order in
  if Bigint.is_zero e then MR.one ring
  else begin
    let x2 = sqr x in
    let odd = Array.make 4 x in
    for i = 1 to 3 do
      odd.(i) <- mul odd.(i - 1) x2
    done;
    let digits = GI.wnaf4 e in
    let inv_cache = Array.make 4 None in
    let inv_odd i =
      match inv_cache.(i) with
      | Some v -> v
      | None ->
          let v = inv odd.(i) in
          inv_cache.(i) <- Some v;
          v
    in
    List.fold_left
      (fun acc d ->
        let acc = sqr acc in
        if d = 0 then acc
        else if d > 0 then mul acc odd.(d / 2)
        else mul acc (inv_odd (-d / 2)))
      (MR.one ring) digits
  end

(* Old-style fixed-base table on raw ring elements (sequential spine +
   chain fill, same op count as the live builder). *)
let dl_old_powtable ring order x =
  let window = GI.fixed_base_window in
  let nwin = (Bigint.numbits order + window - 1) / window in
  let size = (1 lsl window) - 1 in
  let tbl = Array.init nwin (fun _ -> Array.make size x) in
  let base = ref x in
  for i = 0 to nwin - 1 do
    let row = tbl.(i) in
    row.(0) <- !base;
    for d = 1 to size - 1 do
      row.(d) <- MR.mul ring row.(d - 1) !base
    done;
    if i < nwin - 1 then base := MR.sqr ring (MR.sqr ring (MR.sqr ring (MR.sqr ring !base)))
  done;
  tbl

let dl_old_pow_table ring order tbl e =
  let e = Bigint.erem e order in
  if Bigint.is_zero e then MR.one ring
  else begin
    let digits = GI.window_digits ~window:GI.fixed_base_window e in
    let acc = ref None in
    Array.iteri
      (fun i d ->
        if d > 0 then
          let entry = tbl.(i).(d - 1) in
          acc :=
            Some
              (match !acc with
              | None -> entry
              | Some a ->
                  Ppgr_exec.Meter.incr old_meter;
                  MR.mul ring a entry))
      digits;
    match !acc with None -> MR.one ring | Some a -> a
  end

let dl_old_pow2 ring order a e b f =
  let tick () = Ppgr_exec.Meter.incr old_meter in
  let sqr x = tick (); MR.sqr ring x in
  let mul x y = tick (); MR.mul ring x y in
  let inv x = tick (); MR.inv ring x in
  let e = Bigint.erem e order and f = Bigint.erem f order in
  if Bigint.is_zero e then dl_old_pow ring order b f
  else if Bigint.is_zero f then dl_old_pow ring order a e
  else begin
    let odd_of x =
      let x2 = sqr x in
      let t = Array.make 4 x in
      for i = 1 to 3 do
        t.(i) <- mul t.(i - 1) x2
      done;
      t
    in
    let ta = odd_of a and tb = odd_of b in
    let ia = Array.make 4 None and ib = Array.make 4 None in
    let inv_odd t cache i =
      match cache.(i) with
      | Some v -> v
      | None ->
          let v = inv t.(i) in
          cache.(i) <- Some v;
          v
    in
    let mix acc t cache d =
      if d = 0 then acc
      else if d > 0 then mul acc t.(d / 2)
      else mul acc (inv_odd t cache (-d / 2))
    in
    List.fold_left
      (fun acc (da, db) -> mix (mix (sqr acc) ta ia da) tb ib db)
      (MR.one ring)
      (GI.wnaf4_pair e f)
  end

(* ---- Old EC scalar ladders, reconstructed on the allocating point
   ops (each a fresh-point wrapper over the in-place formulas — the
   same per-step allocation pattern the old fold paid). ---- *)

let ec_old_scalar_mul cv pt e =
  let n = cv.EC.prm.EC.n in
  let e = Bigint.erem e n in
  if Bigint.is_zero e || EC.is_infinity cv pt then EC.infinity cv
  else begin
    let p2 = EC.double cv pt in
    let odd = Array.make 4 pt in
    for i = 1 to 3 do
      odd.(i) <- EC.add cv odd.(i - 1) p2
    done;
    let digits = GI.wnaf4 e in
    List.fold_left
      (fun acc d ->
        let acc = EC.double cv acc in
        if d = 0 then acc
        else if d > 0 then EC.add cv acc odd.(d / 2)
        else EC.add cv acc (EC.neg cv odd.(-d / 2)))
      (EC.infinity cv) digits
  end

let ec_old_scalar_mul_table cv (t : EC.powtable) e =
  let n = cv.EC.prm.EC.n in
  let e = Bigint.erem e n in
  if Bigint.is_zero e then EC.infinity cv
  else begin
    let digits = GI.window_digits ~window:t.EC.pw e in
    let acc = ref (EC.infinity cv) in
    Array.iteri
      (fun i d -> if d > 0 then acc := EC.add cv !acc t.EC.ptbl.(i).(d - 1))
      digits;
    !acc
  end

let ec_old_scalar_mul2 cv p e q f =
  let n = cv.EC.prm.EC.n in
  let e = Bigint.erem e n and f = Bigint.erem f n in
  if Bigint.is_zero e || EC.is_infinity cv p then ec_old_scalar_mul cv q f
  else if Bigint.is_zero f || EC.is_infinity cv q then ec_old_scalar_mul cv p e
  else begin
    let odd_of pt =
      let p2 = EC.double cv pt in
      let t = Array.make 4 pt in
      for i = 1 to 3 do
        t.(i) <- EC.add cv t.(i - 1) p2
      done;
      t
    in
    let ta = odd_of p and tb = odd_of q in
    let mix acc t d =
      if d = 0 then acc
      else if d > 0 then EC.add cv acc t.(d / 2)
      else EC.add cv acc (EC.neg cv t.(-d / 2))
    in
    List.fold_left
      (fun acc (da, db) -> mix (mix (EC.double cv acc) ta da) tb db)
      (EC.infinity cv)
      (GI.wnaf4_pair e f)
  end

let alloc_words f = (Ppgr_obs.Allocs.measure ~iters:50 f).Ppgr_obs.Allocs.words_per_iter

(* ---- One DL modulus worth of micros. ---- *)
let dl_micros name p rng =
  let ring = MR.ctx ~modulus:p in
  let order = Bigint.shift_right (Bigint.pred p) 1 in
  let ebytes = (Bigint.numbits p + 7) / 8 in
  let bytes_of x = Bigint.to_bytes_be_padded ebytes (MR.leave ring x) in
  let gfam =
    if name = "dl1024" then Ppgr_group.Dl_group.dl_1024 ()
    else Ppgr_group.Dl_group.dl_512 ()
  in
  let module G = (val gfam) in
  (* w Montgomery limbs + the array header. *)
  let result_words = ((Bigint.numbits p + 60) / 61) + 1 in
  let ra = G.random_scalar rng and rb = G.random_scalar rng in
  let e = G.random_scalar rng and f = G.random_scalar rng in
  let x = G.pow_gen ra and y = G.pow_gen rb in
  (* The same residues on the raw ring, for the old-path reconstruction. *)
  let xr = dl_old_pow ring order (MR.enter ring (Bigint.of_int 4)) ra in
  let yr = dl_old_pow ring order (MR.enter ring (Bigint.of_int 4)) rb in
  (* Cross-check old vs new byte-for-byte before timing anything. *)
  if G.to_bytes (G.pow x e) <> bytes_of (dl_old_pow ring order xr e) then
    failwith ("exp bench: old/new disagree on pow at " ^ name);
  let tbl = G.powtable x in
  let otbl = dl_old_powtable ring order xr in
  if G.to_bytes (G.pow_table tbl e) <> bytes_of (dl_old_pow_table ring order otbl e)
  then failwith ("exp bench: old/new disagree on pow_table at " ^ name);
  if G.to_bytes (G.pow2 x e y f) <> bytes_of (dl_old_pow2 ring order xr e yr f) then
    failwith ("exp bench: old/new disagree on pow2 at " ^ name);
  let rw = float_of_int result_words in
  [
    {
      m_name = name ^ "-pow";
      m_old_ns = ns_per_call (fun () -> ignore (dl_old_pow ring order xr e));
      m_new_ns = ns_per_call (fun () -> ignore (G.pow x e));
      m_new_words = alloc_words (fun () -> ignore (G.pow x e));
      m_result_words = rw;
    };
    {
      m_name = name ^ "-pow_table";
      m_old_ns = ns_per_call (fun () -> ignore (dl_old_pow_table ring order otbl e));
      m_new_ns = ns_per_call (fun () -> ignore (G.pow_table tbl e));
      m_new_words = alloc_words (fun () -> ignore (G.pow_table tbl e));
      m_result_words = rw;
    };
    {
      m_name = name ^ "-pow2";
      m_old_ns = ns_per_call (fun () -> ignore (dl_old_pow2 ring order xr e yr f));
      m_new_ns = ns_per_call (fun () -> ignore (G.pow2 x e y f));
      m_new_words = alloc_words (fun () -> ignore (G.pow2 x e y f));
      m_result_words = rw;
    };
  ]

(* ---- ECC-160 micros on the curve layer. ---- *)
let ec_micros rng =
  let cv = EC.make_curve Ppgr_group.Ec_params.secp160r1 in
  let n = cv.EC.prm.EC.n in
  let rand_scalar () = Bigint.succ (Ppgr_rng.Rng.bigint_below rng (Bigint.pred n)) in
  let e = rand_scalar () and f = rand_scalar () in
  let g = EC.base_point cv in
  let p = EC.scalar_mul cv g (rand_scalar ()) in
  let q = EC.scalar_mul cv g (rand_scalar ()) in
  if not (EC.equal cv (EC.scalar_mul cv p e) (ec_old_scalar_mul cv p e)) then
    failwith "exp bench: old/new disagree on scalar_mul";
  let tbl = EC.make_powtable cv p ~bits:(Bigint.numbits n) in
  if
    not
      (EC.equal cv (EC.scalar_mul_table cv tbl e) (ec_old_scalar_mul_table cv tbl e))
  then failwith "exp bench: old/new disagree on scalar_mul_table";
  if not (EC.equal cv (EC.scalar_mul2 cv p e q f) (ec_old_scalar_mul2 cv p e q f))
  then failwith "exp bench: old/new disagree on scalar_mul2";
  (* point record (4 words) + three field elements (w limbs + header). *)
  let limbs = (Bigint.numbits cv.EC.prm.EC.p + 60) / 61 in
  let rw = float_of_int (4 + (3 * (limbs + 1))) in
  [
    {
      m_name = "ecc160-scalar_mul";
      m_old_ns = ns_per_call (fun () -> ignore (ec_old_scalar_mul cv p e));
      m_new_ns = ns_per_call (fun () -> ignore (EC.scalar_mul cv p e));
      m_new_words = alloc_words (fun () -> ignore (EC.scalar_mul cv p e));
      m_result_words = rw;
    };
    {
      m_name = "ecc160-scalar_mul_table";
      m_old_ns = ns_per_call (fun () -> ignore (ec_old_scalar_mul_table cv tbl e));
      m_new_ns = ns_per_call (fun () -> ignore (EC.scalar_mul_table cv tbl e));
      m_new_words = alloc_words (fun () -> ignore (EC.scalar_mul_table cv tbl e));
      m_result_words = rw;
    };
    {
      m_name = "ecc160-scalar_mul2";
      m_old_ns = ns_per_call (fun () -> ignore (ec_old_scalar_mul2 cv p e q f));
      m_new_ns = ns_per_call (fun () -> ignore (EC.scalar_mul2 cv p e q f));
      m_new_words = alloc_words (fun () -> ignore (EC.scalar_mul2 cv p e q f));
      m_result_words = rw;
    };
  ]

let print_micro m =
  Printf.printf "%-26s old %10.0f ns  new %10.0f ns  %5.2fx  %6.1f w/op (result %.0f)\n%!"
    m.m_name m.m_old_ns m.m_new_ns (ratio m) m.m_new_words m.m_result_words

(* Live paths must allocate exactly the escaping result. *)
let assert_result_only micros =
  List.iter
    (fun m ->
      if m.m_new_words > m.m_result_words +. 0.01 then
        failwith
          (Printf.sprintf "exp bench: %s allocates %.1f words/op (result is %.0f)"
             m.m_name m.m_new_words m.m_result_words))
    micros

(* The PR4 ring trajectory, re-run: digests must match the goldens. *)
type ring_rerun = {
  rr_group : string;
  rr_digest : string;
  rr_golden : string;
  rr_points : Ring.point list;
  rr_identical : bool;
  rr_speedup : float; (* PR6 reference jobs=1 wall / this run's *)
}

let ring_rerun (name, gfam) =
  Printf.printf "-- ring re-run: %s --\n%!" name;
  let points =
    List.map
      (fun jobs ->
        let p = Ring.run_point gfam jobs in
        Ring.print_point name p;
        p)
      [ 1; 2; 4 ]
  in
  let base = List.hd points in
  let identical =
    List.for_all
      (fun (p : Ring.point) ->
        p.Ring.transcript = base.Ring.transcript && p.Ring.ranks = base.Ring.ranks)
      points
  in
  {
    rr_group = name;
    rr_digest = base.Ring.transcript;
    rr_golden = List.assoc name golden_digests;
    rr_points = points;
    rr_identical = identical;
    rr_speedup = List.assoc name pr6_ring_wall /. base.Ring.wall_s;
  }

let run () =
  Printf.printf "\n== Group-layer exponentiation (%s) ==\n%!" json_path;
  Printf.printf
    "old = pre-rewrite group layer reconstructed on public primitives, new = live scratch paths\n%!";
  let rng = Ppgr_rng.Rng.create ~seed:"ppgr-bench-exp" in
  let micros =
    dl_micros "dl512" Ppgr_group.Modp_params.p_512 rng
    @ dl_micros "dl1024" Ppgr_group.Modp_params.p_1024 rng
    @ ec_micros rng
  in
  List.iter print_micro micros;
  assert_result_only micros;
  Printf.printf "live paths allocate their result only: ok\n%!";
  let reruns =
    List.map ring_rerun
      [
        ("DL-1024", Ppgr_group.Dl_group.dl_1024);
        ("ECC-160", Ppgr_group.Ec_group.ecc_160);
      ]
  in
  List.iter
    (fun rr ->
      Printf.printf "%s digest %s golden %s -> %s  (%.2fx vs PR6 reference)\n%!"
        rr.rr_group rr.rr_digest rr.rr_golden
        (if rr.rr_digest = rr.rr_golden then "MATCH" else "MISMATCH")
        rr.rr_speedup)
    reruns;
  (* JSON. *)
  let oc = open_out json_path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"pr\": 7,\n";
  out
    "  \"description\": \"zero-allocation group layer: in-place point ops, \
     per-domain wNAF scratch, exponent-path caching\",\n";
  out
    "  \"baseline\": \"pre-rewrite group-layer algorithms reconstructed on \
     public primitives, this host, same run; ring reference walls from \
     BENCH_PR6.json\",\n";
  out "  \"cores_detected\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"old_vs_new_micros\": [\n";
  List.iteri
    (fun i m ->
      out
        "    {\"name\": %S, \"old_ns\": %.1f, \"new_ns\": %.1f, \"speedup\": \
         %.3f, \"minor_words_per_op\": %.1f, \"result_words\": %.0f}%s\n"
        m.m_name m.m_old_ns m.m_new_ns (ratio m) m.m_new_words m.m_result_words
        (if i = List.length micros - 1 then "" else ","))
    micros;
  out "  ],\n";
  out "  \"ring_rerun\": [\n";
  List.iteri
    (fun i rr ->
      out "    {\n";
      out "      \"group\": %S,\n" rr.rr_group;
      out "      \"transcript_digest\": %S,\n" rr.rr_digest;
      out "      \"golden_digest\": %S,\n" rr.rr_golden;
      out "      \"digest_matches_golden\": %b,\n" (rr.rr_digest = rr.rr_golden);
      out "      \"transcripts_identical_across_jobs\": %b,\n" rr.rr_identical;
      out "      \"pr6_reference_wall_s\": %.3f,\n" (List.assoc rr.rr_group pr6_ring_wall);
      out "      \"speedup_vs_pr6\": %.3f,\n" rr.rr_speedup;
      out "      \"points\": [\n";
      List.iteri
        (fun j (p : Ring.point) ->
          out
            "        {\"jobs\": %d, \"wall_s\": %.3f, \"ring_wall_s\": %.4f, \
             \"totals\": {\"exps\": %d, \"group_mults\": %d, \"bytes\": %d}, \
             \"attribution_consistent\": %b}%s\n"
            p.Ring.jobs p.Ring.wall_s p.Ring.ring_s p.Ring.tot_exps
            p.Ring.tot_mults p.Ring.tot_bytes p.Ring.consistent
            (if j = List.length rr.rr_points - 1 then "" else ","))
        rr.rr_points;
      out "      ]\n";
      out "    }%s\n" (if i = List.length reruns - 1 then "" else ",")
    )
    reruns;
  out "  ],\n";
  let dl = List.find (fun rr -> rr.rr_group = "DL-1024") reruns in
  out
    "  \"dl1024_ring_gate\": {\"threshold\": %.2f, \"wall_s\": %.3f, \
     \"pr6_reference_wall_s\": %.3f, \"speedup\": %.3f, \"passed\": %b}\n"
    ring_gate (List.hd dl.rr_points).Ring.wall_s
    (List.assoc dl.rr_group pr6_ring_wall)
    dl.rr_speedup
    (dl.rr_speedup >= ring_gate);
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path;
  (* Hard assertions: this bench is the PR's acceptance harness. *)
  List.iter
    (fun rr ->
      if rr.rr_digest <> rr.rr_golden then
        failwith
          (Printf.sprintf "exp bench: %s transcript digest %s differs from golden %s"
             rr.rr_group rr.rr_digest rr.rr_golden);
      if not rr.rr_identical then
        failwith ("exp bench: " ^ rr.rr_group ^ " transcripts differ across job counts"))
    reruns;
  if dl.rr_speedup < ring_gate then
    failwith
      (Printf.sprintf
         "exp bench: DL-1024 ring speedup %.2fx under the %.2fx gate (jobs=1 wall %.2fs vs PR6 %.2fs)"
         dl.rr_speedup ring_gate (List.hd dl.rr_points).Ring.wall_s
         (List.assoc "DL-1024" pr6_ring_wall))

(* Cheap CI variant: DL-512 + ECC-160 micros with the correctness
   cross-checks and the result-only allocation gate (the digest side of
   CI is covered by the test-size ring smoke; the full golden-digest
   run lives in the multicore bench job). *)
let smoke () =
  Printf.printf "\n== Exp smoke (DL-512 + ECC-160 micros, alloc gate) ==\n%!";
  let rng = Ppgr_rng.Rng.create ~seed:"ppgr-bench-exp-smoke" in
  let micros = dl_micros "dl512" Ppgr_group.Modp_params.p_512 rng @ ec_micros rng in
  List.iter print_micro micros;
  assert_result_only micros;
  Printf.printf "live paths allocate their result only: ok\n%!"

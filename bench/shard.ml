(* Committee-sharded ranking bench: writes BENCH_PR9.json, the
   trajectory record for breaking the quadratic ring.

   Three legs:
   - determinism: the sharded orchestrator's transcript digest (per-
     shard wire digests chained with the merge outcome) is byte-
     identical at jobs in {1, 2, 4}, and the sharded winner set equals
     the monolithic ranking's top k.  Hard failure on any mismatch.
   - crossover: the quadratic-vs-sharded curve on the test group —
     measured total group ops (monolithic vs sharded + merge field
     mults) per n, against the Shard_model predictions, with the
     crossover n* located under both the calibrated real prices and
     the synthetic pricing the unit test uses.  At real prices a field
     multiplication is orders of magnitude cheaper than a group
     operation, so sharding wins almost immediately (n* = s + 1); the
     synthetic pricing makes the trade visible.
   - scale: the 10k-participant end-to-end point on ECC-160 at
     s = 16 — per-shard wall statistics, merge wall, total group ops
     (~O(n s l), vs the monolithic O(n^2 l)), and the fan-in tree
     simulation.  PPGR_SHARD_BENCH_N / PPGR_SHARD_BENCH_L override the
     point for constrained runners; the JSON records what actually ran. *)

open Ppgr_bigint
open Ppgr_grouprank
module Pool = Ppgr_exec.Pool
module Engine = Ppgr_shamir.Engine

let json_path = "BENCH_PR9.json"

let env_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

(* Distinct betas: a permutation of 0..n-1, so the clear top-k is
   unambiguous and the monolithic differential check is exact. *)
let distinct_betas rng n =
  let l = Stdlib.max 1 (Bigint.numbits (Bigint.of_int (n - 1))) in
  let perm = Ppgr_rng.Rng.permutation rng n in
  (l, Array.map Bigint.of_int perm)

let clear_top_k ~k (betas : Bigint.t array) =
  let idx = Array.init (Array.length betas) Fun.id in
  Array.sort
    (fun a b ->
      match Bigint.compare betas.(b) betas.(a) with 0 -> compare a b | c -> c)
    idx;
  let w = Array.sub idx 0 k in
  Array.sort compare w;
  w

(* -------- determinism leg (test group) -------- *)

type det_point = { dp_jobs : int; dp_sha : string; dp_winners : int array }

let determinism () =
  let module G = (val Ppgr_group.Dl_group.dl_test_64 ()) in
  let module S = Shard.Make (G) in
  let module RT = Runtime.Make (G) in
  let n = 24 and shard_size = 6 and k = 5 and committee = 3 in
  let rng () = Ppgr_rng.Rng.create ~seed:"ppgr-bench-shard-det" in
  let l, betas = distinct_betas (rng ()) n in
  let points =
    List.map
      (fun jobs ->
        Pool.set_jobs jobs;
        Fun.protect ~finally:(fun () -> Pool.set_jobs 1) @@ fun () ->
        let r = S.run ~shard_size ~committee ~k (rng ()) ~l ~betas in
        Printf.printf "jobs=%d  transcript %s\n%!" jobs r.Shard.transcript_sha;
        {
          dp_jobs = jobs;
          dp_sha = r.Shard.transcript_sha;
          dp_winners = r.Shard.winners;
        })
      [ 1; 2; 4 ]
  in
  let base = List.hd points in
  List.iter
    (fun p ->
      if p.dp_sha <> base.dp_sha then
        failwith
          (Printf.sprintf "shard bench: jobs=%d transcript differs" p.dp_jobs);
      if p.dp_winners <> base.dp_winners then
        failwith
          (Printf.sprintf "shard bench: jobs=%d winners differ" p.dp_jobs))
    points;
  (* Differential: the sharded winner set is the monolithic top k. *)
  let mono = RT.run (rng ()) ~l ~betas in
  let mono_top =
    Array.of_list
      (List.filter (fun j -> mono.RT.ranks.(j) <= k) (List.init n Fun.id))
  in
  if base.dp_winners <> mono_top then
    failwith "shard bench: sharded winners differ from the monolithic top k";
  if base.dp_winners <> clear_top_k ~k betas then
    failwith "shard bench: winners differ from the clear top k";
  Printf.printf
    "transcripts identical at jobs {1,2,4}; winners = monolithic top-%d: ok\n%!"
    k;
  (n, shard_size, k, committee, base.dp_sha)

(* -------- crossover leg (test group) -------- *)

type curve_point = {
  cp_n : int;
  cp_mono_ops : int;
  cp_mono_wall_s : float;
  cp_shard_ops : int;
  cp_merge_mults : int;
  cp_shard_wall_s : float;
  cp_pred_mono : float;
  cp_pred_shard : float;
  cp_pred_merge : float;
}

let crossover_curve () =
  let module G = (val Ppgr_group.Dl_group.dl_test_64 ()) in
  let module S = Shard.Make (G) in
  let l = 4 and shard_size = 4 and k = 2 and committee = 3 in
  let fit_rng = Ppgr_rng.Rng.create ~seed:"ppgr-bench-shard-fit" in
  let m = Cost_model.Shard_model.fit ~committee fit_rng ~l in
  let ns = [ 5; 6; 8; 10; 12; 14; 16; 20; 24 ] in
  Printf.printf "%4s %12s %12s %12s %12s %12s\n%!" "n" "mono_ops"
    "shard_ops" "merge_mults" "pred_mono" "pred_shard";
  let curve =
    List.map
      (fun n ->
        let rng tag =
          Ppgr_rng.Rng.create ~seed:(Printf.sprintf "ppgr-bench-shard-%s-%d" tag n)
        in
        (* l-bit betas (duplicates fine: this leg measures ops, the
           determinism leg already checked winners). *)
        let betas =
          Array.init n (fun _ -> Ppgr_rng.Rng.bigint_bits (rng "betas") l)
        in
        let t0 = Unix.gettimeofday () in
        let mono_ops =
          Cost_model.Shard_model.measure_total_ops (rng "mono") ~l ~n
        in
        let mono_wall = Unix.gettimeofday () -. t0 in
        let t1 = Unix.gettimeofday () in
        let r = S.run ~shard_size ~committee ~k (rng "shard") ~l ~betas in
        let shard_wall = Unix.gettimeofday () -. t1 in
        let merge_mults = r.Shard.merge.Shard.merge_costs.Engine.c_field_mults in
        let p =
          {
            cp_n = n;
            cp_mono_ops = mono_ops;
            cp_mono_wall_s = mono_wall;
            cp_shard_ops = r.Shard.group_ops;
            cp_merge_mults = merge_mults;
            cp_shard_wall_s = shard_wall;
            cp_pred_mono = Cost_model.Shard_model.predict_mono_ops m ~n;
            cp_pred_shard =
              Cost_model.Shard_model.predict_sharded_ops m ~n ~shard_size;
            cp_pred_merge =
              Cost_model.Shard_model.predict_merge_mults m ~n ~shard_size ~k;
          }
        in
        Printf.printf "%4d %12d %12d %12d %12.0f %12.0f\n%!" n mono_ops
          p.cp_shard_ops merge_mults p.cp_pred_mono p.cp_pred_shard;
        p)
      ns
  in
  (* Calibrate both currencies on this machine, from the largest curve
     point: seconds per group op from the monolithic run, seconds per
     field multiplication from a timed merge. *)
  let last = List.nth curve (List.length curve - 1) in
  let sec_per_op = last.cp_mono_wall_s /. float_of_int last.cp_mono_ops in
  let cal_rng = Ppgr_rng.Rng.create ~seed:"ppgr-bench-shard-cal" in
  let cands =
    Array.init 64 (fun i -> (i, Bigint.of_int i))
  in
  let t0 = Unix.gettimeofday () in
  let st = Shard.merge_top_k cal_rng ~l ~committee ~k:8 ~candidates:cands in
  let merge_wall = Unix.gettimeofday () -. t0 in
  let sec_per_field_mult =
    merge_wall /. float_of_int st.Shard.merge_costs.Engine.c_field_mults
  in
  let crossover_at ~sec_per_op ~sec_per_field_mult =
    Cost_model.Shard_model.crossover m ~shard_size ~k ~sec_per_op
      ~sec_per_field_mult
  in
  let measured_crossover ~sec_per_op ~sec_per_field_mult =
    (* Smallest curve n from which sharded stays cheaper (priced). *)
    let priced_cheaper p =
      (float_of_int p.cp_shard_ops *. sec_per_op)
      +. (float_of_int p.cp_merge_mults *. sec_per_field_mult)
      < float_of_int p.cp_mono_ops *. sec_per_op
    in
    let rec scan = function
      | p :: rest when priced_cheaper p && List.for_all priced_cheaper rest ->
          Some p.cp_n
      | _ :: rest -> scan rest
      | [] -> None
    in
    scan curve
  in
  let real_pred = crossover_at ~sec_per_op ~sec_per_field_mult in
  let real_meas = measured_crossover ~sec_per_op ~sec_per_field_mult in
  (* The unit-test pricing (test_shard.ml): group op 1.0, field mult
     2.0 — synthetic units that keep the crossover interior. *)
  let syn_pred = crossover_at ~sec_per_op:1.0 ~sec_per_field_mult:2.0 in
  let syn_meas = measured_crossover ~sec_per_op:1.0 ~sec_per_field_mult:2.0 in
  let show = function None -> "none" | Some n -> string_of_int n in
  Printf.printf
    "calibration: %.3g s/group-op, %.3g s/field-mult\n\
     crossover n* (real prices):      predicted %s, measured %s\n\
     crossover n* (synthetic 1:2):    predicted %s, measured %s\n\
     %!"
    sec_per_op sec_per_field_mult (show real_pred) (show real_meas)
    (show syn_pred) (show syn_meas);
  ( curve,
    m,
    (shard_size, k, committee, l),
    (sec_per_op, sec_per_field_mult),
    (real_pred, real_meas),
    (syn_pred, syn_meas) )

(* -------- scale leg (ECC-160) -------- *)

type scale_point = {
  sp_n : int;
  sp_l : int;
  sp_shard_size : int;
  sp_committee : int;
  sp_k : int;
  sp_shards : int;
  sp_wall_s : float;
  sp_shard_wall_total_s : float;
  sp_shard_wall_mean_s : float;
  sp_shard_wall_max_s : float;
  sp_merge_wall_s : float;
  sp_merge_candidates : int;
  sp_merge_field_mults : int;
  sp_group_ops : int;
  sp_winners : int array;
  sp_sha : string;
  sp_sim_elapsed_s : float;
  sp_sim_bytes : int;
  sp_sim_rounds : int;
}

let scale_point () =
  let n = env_int "PPGR_SHARD_BENCH_N" 10_000 in
  let l = env_int "PPGR_SHARD_BENCH_L" 4 in
  let shard_size = 16 and committee = 5 and k = 10 in
  let module G = (val Ppgr_group.Ec_group.ecc_160 ()) in
  let module S = Shard.Make (G) in
  let rng = Ppgr_rng.Rng.create ~seed:"ppgr-bench-shard-10k" in
  let betas =
    Array.init n (fun _ -> Ppgr_rng.Rng.bigint_bits rng l)
  in
  Printf.printf
    "ranking n=%d on %s: s=%d, committee=%d, k=%d, l=%d (this is the long \
     leg)\n\
     %!"
    n G.name shard_size committee k l;
  let t0 = Unix.gettimeofday () in
  let r = S.run ~shard_size ~committee ~k rng ~l ~betas in
  let wall = Unix.gettimeofday () -. t0 in
  let walls =
    Array.map (fun (s : Shard.shard_stat) -> s.Shard.shard_wall_s)
      r.Shard.shard_stats
  in
  let total = Array.fold_left ( +. ) 0. walls in
  let mx = Array.fold_left Stdlib.max 0. walls in
  let count = Array.length walls in
  (* Merge wall re-timed here (Hist gating keeps it 0 inside run). *)
  let tm = Unix.gettimeofday () in
  let merge_rerun =
    Shard.merge_top_k
      (Ppgr_rng.Rng.create ~seed:"ppgr-bench-shard-10k-merge")
      ~l ~committee ~k
      ~candidates:
        (Array.map
           (fun p -> (p, betas.(p)))
           r.Shard.merge.Shard.candidates)
  in
  let merge_wall = Unix.gettimeofday () -. tm in
  ignore merge_rerun;
  let sim = S.simulate_fan_in r in
  Printf.printf
    "done: wall %.1f s (shards %.1f s total, %.3f s mean, %.3f s max; merge \
     %.3f s)\n\
     group mults %d, transcript %s\n\
     fan-in tree: %.1f s simulated, %d bytes, %d rounds\n\
     %!"
    wall total
    (total /. float_of_int count)
    mx merge_wall r.Shard.group_ops r.Shard.transcript_sha
    sim.Ppgr_mpcnet.Netsim.elapsed_s sim.Ppgr_mpcnet.Netsim.bytes_sent
    sim.Ppgr_mpcnet.Netsim.rounds;
  {
    sp_n = n;
    sp_l = l;
    sp_shard_size = shard_size;
    sp_committee = committee;
    sp_k = k;
    sp_shards = count;
    sp_wall_s = wall;
    sp_shard_wall_total_s = total;
    sp_shard_wall_mean_s = total /. float_of_int count;
    sp_shard_wall_max_s = mx;
    sp_merge_wall_s = merge_wall;
    sp_merge_candidates = Array.length r.Shard.merge.Shard.candidates;
    sp_merge_field_mults = r.Shard.merge.Shard.merge_costs.Engine.c_field_mults;
    sp_group_ops = r.Shard.group_ops;
    sp_winners = r.Shard.winners;
    sp_sha = r.Shard.transcript_sha;
    sp_sim_elapsed_s = sim.Ppgr_mpcnet.Netsim.elapsed_s;
    sp_sim_bytes = sim.Ppgr_mpcnet.Netsim.bytes_sent;
    sp_sim_rounds = sim.Ppgr_mpcnet.Netsim.rounds;
  }

(* -------- JSON + entry points -------- *)

let opt_int = function None -> "null" | Some n -> string_of_int n

let run () =
  Printf.printf "\n== Committee-sharded ranking (%s) ==\n%!" json_path;
  Printf.printf "cores detected: %d\n%!" (Domain.recommended_domain_count ());
  Printf.printf "\n-- determinism (DL-test-64) --\n%!";
  let det_n, det_s, det_k, det_m, det_sha = determinism () in
  Printf.printf "\n-- crossover curve (DL-test-64) --\n%!";
  let ( curve,
        model,
        (cx_s, cx_k, cx_m, cx_l),
        (sec_per_op, sec_per_field_mult),
        (real_pred, real_meas),
        (syn_pred, syn_meas) ) =
    crossover_curve ()
  in
  Printf.printf "\n-- 10k end-to-end (ECC-160) --\n%!";
  let sp = scale_point () in
  let oc = open_out json_path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"pr\": 9,\n";
  out
    "  \"description\": \"committee-sharded ranking: bounded rings + \
     secret-shared top-k merge; group work O(n s l) vs the monolithic \
     O(n^2 l)\",\n";
  out "  \"cores_detected\": %d,\n" (Domain.recommended_domain_count ());
  out
    "  \"determinism\": {\"group\": \"DL-test-64\", \"n\": %d, \
     \"shard_size\": %d, \"k\": %d, \"committee\": %d, \
     \"transcript_digest\": %S, \
     \"identical_across_jobs_1_2_4\": true, \
     \"winners_equal_monolithic_top_k\": true},\n"
    det_n det_s det_k det_m det_sha;
  out "  \"crossover\": {\n";
  out
    "    \"group\": \"DL-test-64\", \"l\": %d, \"shard_size\": %d, \
     \"k\": %d, \"committee\": %d,\n"
    cx_l cx_s cx_k cx_m;
  let a, b, c = model.Cost_model.Shard_model.total_q in
  out
    "    \"model\": {\"total_ops_quadratic_in_n_minus_1\": [%.4f, %.4f, \
     %.4f], \"merge_mults_per_candidate\": %.1f},\n"
    a b c model.Cost_model.Shard_model.merge_mults_per_cand;
  out
    "    \"calibration\": {\"sec_per_group_op\": %.4g, \
     \"sec_per_field_mult\": %.4g},\n"
    sec_per_op sec_per_field_mult;
  out
    "    \"crossover_n_real_prices\": {\"predicted\": %s, \"measured\": \
     %s},\n"
    (opt_int real_pred) (opt_int real_meas);
  out
    "    \"crossover_n_synthetic_1_to_2\": {\"predicted\": %s, \
     \"measured\": %s},\n"
    (opt_int syn_pred) (opt_int syn_meas);
  out "    \"curve\": [\n";
  List.iteri
    (fun i p ->
      out
        "      {\"n\": %d, \"mono_group_ops\": %d, \"mono_wall_s\": %.4f, \
         \"sharded_group_ops\": %d, \"merge_field_mults\": %d, \
         \"sharded_wall_s\": %.4f, \"predicted_mono_ops\": %.0f, \
         \"predicted_sharded_ops\": %.0f, \"predicted_merge_mults\": \
         %.0f}%s\n"
        p.cp_n p.cp_mono_ops p.cp_mono_wall_s p.cp_shard_ops p.cp_merge_mults
        p.cp_shard_wall_s p.cp_pred_mono p.cp_pred_shard p.cp_pred_merge
        (if i = List.length curve - 1 then "" else ","))
    curve;
  out "    ]\n";
  out "  },\n";
  out "  \"scale\": {\n";
  out
    "    \"group\": \"ECC-160\", \"n\": %d, \"l\": %d, \"shard_size\": %d, \
     \"committee\": %d, \"k\": %d, \"shards\": %d,\n"
    sp.sp_n sp.sp_l sp.sp_shard_size sp.sp_committee sp.sp_k sp.sp_shards;
  out
    "    \"wall_s\": %.1f, \"shard_wall_total_s\": %.1f, \
     \"shard_wall_mean_s\": %.4f, \"shard_wall_max_s\": %.4f, \
     \"merge_wall_s\": %.4f,\n"
    sp.sp_wall_s sp.sp_shard_wall_total_s sp.sp_shard_wall_mean_s
    sp.sp_shard_wall_max_s sp.sp_merge_wall_s;
  out
    "    \"merge_candidates\": %d, \"merge_field_mults\": %d, \
     \"total_group_mults\": %d,\n"
    sp.sp_merge_candidates sp.sp_merge_field_mults sp.sp_group_ops;
  out "    \"winners\": [%s],\n"
    (String.concat ", "
       (Array.to_list (Array.map string_of_int sp.sp_winners)));
  out "    \"transcript_digest\": %S,\n" sp.sp_sha;
  out
    "    \"fan_in_tree\": {\"elapsed_s\": %.1f, \"bytes\": %d, \"rounds\": \
     %d}\n"
    sp.sp_sim_elapsed_s sp.sp_sim_bytes sp.sp_sim_rounds;
  out "  }\n";
  out "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" json_path

(* The cheap CI variant: determinism + differential on the test group
   only, no file, a few seconds. *)
let smoke () =
  Printf.printf "\n== Shard smoke (DL-test-64, jobs 1 vs 4) ==\n%!";
  let module G = (val Ppgr_group.Dl_group.dl_test_64 ()) in
  let module S = Shard.Make (G) in
  let n = 16 and shard_size = 4 and k = 3 and committee = 3 in
  let rng () = Ppgr_rng.Rng.create ~seed:"ppgr-shard-smoke" in
  let l, betas = distinct_betas (rng ()) n in
  let run jobs =
    Pool.set_jobs jobs;
    Fun.protect ~finally:(fun () -> Pool.set_jobs 1) @@ fun () ->
    let r = S.run ~shard_size ~committee ~k (rng ()) ~l ~betas in
    Printf.printf "jobs=%d  transcript %s\n%!" jobs r.Shard.transcript_sha;
    r
  in
  let r1 = run 1 and r4 = run 4 in
  if r1.Shard.transcript_sha <> r4.Shard.transcript_sha then
    failwith "shard smoke: transcript differs across job counts";
  if r1.Shard.winners <> r4.Shard.winners then
    failwith "shard smoke: winners differ across job counts";
  if r1.Shard.winners <> clear_top_k ~k betas then
    failwith "shard smoke: winners differ from the clear top k";
  Printf.printf "transcripts identical, winners = clear top-%d: ok\n%!" k

(* Committee-sharded ranking at scale: 10,000 participants on ECC-160,
   shard bound s = 16.  The monolithic phase-2 ring is quadratic in n —
   at n = 10k it would re-blind ~10^8 ciphertext pairs; the sharded
   orchestrator runs 625 independent 16-party rings (O(n s) group work)
   and merges the shard winners through a secret-shared top-k on a
   5-party committee.

     dune exec examples/sharded_ranking.exe

   The full 10k run takes on the order of an hour on one core; set
   PPGR_EXAMPLE_N to something small (e.g. 200) for a quick look at the
   same code path. *)

open Ppgr_grouprank
module Trace = Ppgr_obs.Trace
module Summary = Ppgr_obs.Summary

let env_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let () =
  let n = env_int "PPGR_EXAMPLE_N" 10_000 in
  let l = env_int "PPGR_EXAMPLE_L" 4 in
  let shard_size = 16 and committee = 5 and k = 10 in
  let rng = Ppgr_rng.Rng.create ~seed:"sharded-ranking-demo" in
  let module G = (val Ppgr_group.Ec_group.ecc_160 ()) in
  let module S = Shard.Make (G) in
  (* Betas as phase 1 would emit them: l-bit masked gains whose order
     is the global gain order (the shared rho preserves it, which is
     exactly why shards stay comparable at the merge). *)
  let betas =
    Array.init n (fun _ -> Ppgr_rng.Rng.bigint_bits rng l)
  in
  Printf.printf
    "sharding %d participants over %s: s = %d, committee = %d, top-%d\n%!" n
    G.name shard_size committee k;
  let t0 = Unix.gettimeofday () in
  let res, spans =
    Trace.capture (fun () -> S.run ~shard_size ~committee ~k rng ~l ~betas)
  in
  let dt = Unix.gettimeofday () -. t0 in
  let plan = res.Shard.plan in
  let count = Shard.shards plan in
  Printf.printf "shards: %d (every size <= %d)\n" count shard_size;
  Printf.printf "winners (membership only, no order revealed): %s\n"
    (String.concat ", "
       (Array.to_list
          (Array.map (fun p -> Printf.sprintf "P%d" (p + 1)) res.Shard.winners)));
  (* Each participant only ever learns its rank inside its own ring of
     <= s members; the n-2 collusion bound of the paper becomes s-2 per
     shard — the privacy/throughput trade sharding makes. *)
  let mc = res.Shard.merge.Shard.merge_costs in
  Printf.printf
    "merge: %d candidates, %d field mults on the committee (no group ops)\n"
    (Array.length res.Shard.merge.Shard.candidates)
    mc.Ppgr_shamir.Engine.c_mults;
  Printf.printf "total group mults: %d  (monolithic would be O(n^2 l))\n"
    res.Shard.group_ops;
  Printf.printf "transcript sha256: %s\n" res.Shard.transcript_sha;

  (* The per-shard Summary roll-up: party+shard-attributed spans
     aggregated into one row per ring.  Print the slowest few — with
     625 shards the full table is a wall of near-identical rows. *)
  let rows = Summary.by_shard spans in
  let show = 8 in
  let slowest =
    List.sort
      (fun (a : Summary.row) b -> compare b.Summary.wall_us a.Summary.wall_us)
      rows
  in
  Printf.printf "\nslowest %d of %d shards (per-shard Summary roll-up):\n"
    (Stdlib.min show count) count;
  Printf.printf "  %-10s %10s %12s %12s\n" "shard" "wall_ms" "bytes_out"
    "bytes_in";
  List.iteri
    (fun i (r : Summary.row) ->
      if i < show then
        let metric k = try List.assoc k r.Summary.metrics with Not_found -> 0 in
        Printf.printf "  %-10s %10.2f %12d %12d\n" r.Summary.phase
          (r.Summary.wall_us /. 1000.)
          (metric "bytes_out") (metric "bytes_in"))
    slowest;
  Printf.printf "  total shard wall: %.1f s over %d rows\n"
    (Summary.total_wall_us rows /. 1e6)
    (List.length rows);
  Printf.printf "\nwall clock: %.1f s\n" dt

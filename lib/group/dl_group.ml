(** The "DL" group family: quadratic residues modulo a safe prime.

    For a safe prime [p = 2q + 1] the quadratic residues form the unique
    subgroup of prime order [q]; DDH is believed hard there (§IV-B of the
    paper).  Elements are kept in Montgomery form so a group
    multiplication is a single Montgomery multiplication. *)

open Ppgr_bigint
open Ppgr_rng

module type PARAMS = sig
  val name : string
  val security_bits : int

  val p : Bigint.t
  (** Safe prime with [p = 7 (mod 8)] (so that 2 is a residue). *)

  val g : Bigint.t
  (** Generator of the order-[q] subgroup of residues. *)
end

module Make (P : PARAMS) : Group_intf.GROUP = struct
  let name = P.name
  let security_bits = P.security_bits

  type element = Bigint.Modring.elt

  let ring = Bigint.Modring.ctx ~modulus:P.p
  let order = Bigint.shift_right (Bigint.pred P.p) 1
  let identity = Bigint.Modring.one ring
  let generator = Bigint.Modring.enter ring P.g

  (* A mergeable per-domain meter: ticks arrive from pool workers during
     parallel hot loops and the summed read equals the sequential
     count. *)
  let ops = Ppgr_exec.Meter.create ()
  let op_count () = Ppgr_exec.Meter.read ops
  let reset_op_count () = Ppgr_exec.Meter.reset ops
  let op_snapshot () = Ppgr_exec.Meter.snapshot ops
  let ops_since s = Ppgr_exec.Meter.since ops s

  let mul a b =
    Ppgr_exec.Meter.incr ops;
    Bigint.Modring.mul ring a b

  let equal a b = Bigint.Modring.equal ring a b
  let is_identity x = equal x identity

  let inv x =
    (* Via the group structure: x^(q-1); counted through [mul]. *)
    Ppgr_exec.Meter.incr ops;
    Bigint.Modring.inv ring x

  let sqr x =
    Ppgr_exec.Meter.incr ops;
    Bigint.Modring.sqr ring x

  let pow_nonneg x e =
    (* wNAF-4 with precomputed odd powers; every group multiplication
       (squarings included) ticks the op counter once — the squarings go
       through the cheaper dedicated squaring kernel. *)
    let x2 = sqr x in
    let odd = Array.make 4 x in
    for i = 1 to 3 do
      odd.(i) <- mul odd.(i - 1) x2
    done;
    let digits = Group_intf.wnaf4 e in
    (* Inverses of table entries are computed lazily, at most once each. *)
    let inv_cache = Array.make 4 None in
    let inv_odd i =
      match inv_cache.(i) with
      | Some v -> v
      | None ->
          let v = inv odd.(i) in
          inv_cache.(i) <- Some v;
          v
    in
    List.fold_left
      (fun acc d ->
        let acc = sqr acc in
        if d = 0 then acc
        else if d > 0 then mul acc odd.(d / 2)
        else mul acc (inv_odd (-d / 2)))
      identity digits

  let pow x e =
    let e = Bigint.erem e order in
    if Bigint.is_zero e then identity else pow_nonneg x e

  (* Fixed-base window table: tbl.(i).(d-1) = x^(d * 2^(w*i)) for
     d in 1..2^w-1.  An exponentiation then needs no squarings, only one
     multiplication per non-zero window digit. *)
  type powtable = element array array

  let table_window = Group_intf.fixed_base_window
  let table_windows = (Bigint.numbits order + table_window - 1) / table_window
  let digits_per_window = (1 lsl table_window) - 1

  let powtable x =
    let tbl = Array.init table_windows (fun _ -> Array.make digits_per_window x) in
    (* Sequential squaring spine: the doubling entries x^(2^k * 2^(w*i))
       of every row, and each next window's base, come from squarings
       alone; everything left is per-window fill chains that only read
       the spine, so they fan out over the domain pool.  The reshape
       keeps the construction at the sequential chain's exact cost: per
       window (w-1) spine squarings + 1 next-base squaring + 2^w-1-w
       chain multiplications = 2^w-1 ops, one fewer for the last
       window. *)
    let base = ref x in
    for i = 0 to table_windows - 1 do
      let row = tbl.(i) in
      row.(0) <- !base;
      for k = 1 to table_window - 1 do
        row.((1 lsl k) - 1) <- sqr row.((1 lsl (k - 1)) - 1)
      done;
      (* Next window's base x^(2^(w*(i+1))) = (x^(2^(w-1) * 2^(w*i)))^2. *)
      if i < table_windows - 1 then base := sqr row.((1 lsl (table_window - 1)) - 1)
    done;
    let nchains = table_window - 1 in
    Ppgr_exec.Pool.parallel_for (table_windows * nchains) (fun t ->
        let row = tbl.(t / nchains) in
        let k = (t mod nchains) + 1 in
        let hi = Stdlib.min ((1 lsl (k + 1)) - 2) (digits_per_window - 1) in
        for d = 1 lsl k to hi do
          row.(d) <- mul row.(d - 1) row.(0)
        done);
    tbl

  let pow_table tbl e =
    let e = Bigint.erem e order in
    if Bigint.is_zero e then identity
    else begin
      let digits = Group_intf.window_digits ~window:table_window e in
      let acc = ref None in
      Array.iteri
        (fun i d ->
          if d > 0 then
            let entry = tbl.(i).(d - 1) in
            acc := Some (match !acc with None -> entry | Some a -> mul a entry))
        digits;
      match !acc with None -> identity | Some a -> a
    end

  (* Shamir's trick: one shared squaring chain over the aligned wNAF-4
     recodings of both exponents. *)
  let pow2 a e b f =
    let e = Bigint.erem e order and f = Bigint.erem f order in
    if Bigint.is_zero e then pow b f
    else if Bigint.is_zero f then pow a e
    else begin
      let odd_of x =
        let x2 = sqr x in
        let t = Array.make 4 x in
        for i = 1 to 3 do
          t.(i) <- mul t.(i - 1) x2
        done;
        t
      in
      let ta = odd_of a and tb = odd_of b in
      let ia = Array.make 4 None and ib = Array.make 4 None in
      let inv_odd t cache i =
        match cache.(i) with
        | Some v -> v
        | None ->
            let v = inv t.(i) in
            cache.(i) <- Some v;
            v
      in
      let mix acc t cache d =
        if d = 0 then acc
        else if d > 0 then mul acc t.(d / 2)
        else mul acc (inv_odd t cache (-d / 2))
      in
      List.fold_left
        (fun acc (da, db) -> mix (mix (sqr acc) ta ia da) tb ib db)
        identity
        (Group_intf.wnaf4_pair e f)
    end

  (* Double-checked mutex memo: [Lazy.force] is unsafe under concurrent
     forcing from pool workers (it raises [Undefined]). *)
  let gen_table = Atomic.make None
  let gen_table_lock = Mutex.create ()

  let gen_powtable () =
    match Atomic.get gen_table with
    | Some t -> t
    | None ->
        Mutex.lock gen_table_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock gen_table_lock)
          (fun () ->
            match Atomic.get gen_table with
            | Some t -> t
            | None ->
                let t = powtable generator in
                Atomic.set gen_table (Some t);
                t)

  let pow_gen e = pow_table (gen_powtable ()) e

  let element_bytes = (Bigint.numbits P.p + 7) / 8

  let to_bytes x =
    Bigint.to_bytes_be_padded element_bytes
      (Bigint.Modring.leave ring x)

  (* Residues are affine already: batching buys nothing here, the hook
     exists for the EC family's shared-inversion normalization. *)
  let to_bytes_batch a = Array.map to_bytes a
  let probes = []

  let of_bytes b =
    if Bytes.length b <> element_bytes then None
    else begin
      let v = Bigint.of_bytes_be b in
      if Bigint.sign v <= 0 || Bigint.compare v P.p >= 0 then None
      else if Bigint.jacobi v P.p <> 1 then None
      else Some (Bigint.Modring.enter ring v)
    end

  let pp fmt x = Bigint.pp fmt (Bigint.Modring.leave ring x)

  let random_scalar rng =
    Bigint.succ (Rng.bigint_below rng (Bigint.pred order))
end

(* [pow] in this family starts from the identity and multiplies [wnaf]
   digits in; [inv] inside [pow_nonneg] is counted but occurs at most 4
   times per exponentiation (table setup), matching the paper's O(lambda)
   multiplications per exponentiation. *)

let of_safe_prime ~name ~security_bits p : Group_intf.group =
  (module Make (struct
    let name = name
    let security_bits = security_bits
    let p = p
    let g = Bigint.of_int 4

    (* 4 = 2^2 is always a quadratic residue; for a safe prime every
       non-identity residue generates the whole order-q subgroup. *)
  end))

let dl_512 () = of_safe_prime ~name:"DL-512" ~security_bits:56 Modp_params.p_512
let dl_1024 () = of_safe_prime ~name:"DL-1024" ~security_bits:80 Modp_params.p_1024
let dl_2048 () = of_safe_prime ~name:"DL-2048" ~security_bits:112 Modp_params.p_2048

let dl_3072 () = of_safe_prime ~name:"DL-3072" ~security_bits:128 Modp_params.p_3072

let dl_test_64 () = of_safe_prime ~name:"DL-test-64" ~security_bits:0 Modp_params.test_64
let dl_test_96 () = of_safe_prime ~name:"DL-test-96" ~security_bits:0 Modp_params.test_96
let dl_test_128 () = of_safe_prime ~name:"DL-test-128" ~security_bits:0 Modp_params.test_128
let dl_test_256 () = of_safe_prime ~name:"DL-test-256" ~security_bits:0 Modp_params.test_256

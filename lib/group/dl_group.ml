(** The "DL" group family: quadratic residues modulo a safe prime.

    For a safe prime [p = 2q + 1] the quadratic residues form the unique
    subgroup of prime order [q]; DDH is believed hard there (§IV-B of the
    paper).  Elements are kept in Montgomery form so a group
    multiplication is a single Montgomery multiplication. *)

open Ppgr_bigint
open Ppgr_rng

module type PARAMS = sig
  val name : string
  val security_bits : int

  val p : Bigint.t
  (** Safe prime with [p = 7 (mod 8)] (so that 2 is a residue). *)

  val g : Bigint.t
  (** Generator of the order-[q] subgroup of residues. *)
end

module Make (P : PARAMS) : Group_intf.GROUP = struct
  let name = P.name
  let security_bits = P.security_bits

  type element = Bigint.Modring.elt

  let ring = Bigint.Modring.ctx ~modulus:P.p
  let order = Bigint.shift_right (Bigint.pred P.p) 1
  let identity = Bigint.Modring.one ring
  let generator = Bigint.Modring.enter ring P.g

  (* A mergeable per-domain meter: ticks arrive from pool workers during
     parallel hot loops and the summed read equals the sequential
     count. *)
  let ops = Ppgr_exec.Meter.create ()
  let op_count () = Ppgr_exec.Meter.read ops
  let reset_op_count () = Ppgr_exec.Meter.reset ops
  let op_snapshot () = Ppgr_exec.Meter.snapshot ops
  let ops_since s = Ppgr_exec.Meter.since ops s

  let mul a b =
    Ppgr_exec.Meter.incr ops;
    Bigint.Modring.mul ring a b

  let equal a b = Bigint.Modring.equal ring a b
  let is_identity x = equal x identity

  let inv x =
    (* Via the group structure: x^(q-1); counted through [mul]. *)
    Ppgr_exec.Meter.incr ops;
    Bigint.Modring.inv ring x

  let sqr x =
    Ppgr_exec.Meter.incr ops;
    Bigint.Modring.sqr ring x

  (* Per-domain exponentiation scratch (DESIGN.md §5h): the wNAF odd-
     powers tables, their lazily-filled inverse caches, the accumulator
     and the recoding digit buffers all live here, so a steady-state
     [pow]/[pow2]/[pow_table] allocates nothing but its escaping result.
     Two table slots because [pow2] runs two bases down one shared
     squaring chain.  The digit buffers take one slot per exponent bit
     plus slack for the recoding's possible carry digit. *)
  type scratch = {
    acc : element;
    x2 : element;
    odd : element array; (* x^1, x^3, x^5, x^7 *)
    oddinv : element array;
    mutable inv_mask : int; (* bit i set = oddinv.(i) is valid *)
    odd2 : element array;
    oddinv2 : element array;
    mutable inv_mask2 : int;
    dg : int array;
    dg2 : int array;
  }

  let digit_slots = Bigint.numbits order + 8

  let scratch : scratch Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        let elts n = Array.init n (fun _ -> Bigint.Modring.alloc ring) in
        {
          acc = Bigint.Modring.alloc ring;
          x2 = Bigint.Modring.alloc ring;
          odd = elts 4;
          oddinv = elts 4;
          inv_mask = 0;
          odd2 = elts 4;
          oddinv2 = elts 4;
          inv_mask2 = 0;
          dg = Array.make digit_slots 0;
          dg2 = Array.make digit_slots 0;
        })

  (* Build the odd-powers table x^1,x^3,x^5,x^7 into [tbl], using [s.x2]
     as the x^2 temporary.  Tick parity with the old per-call table:
     1 squaring + 3 multiplications. *)
  let fill_odd s (tbl : element array) x =
    Ppgr_exec.Meter.incr ops;
    Bigint.Modring.sqr_into ring s.x2 x;
    Bigint.Modring.copy_into ring tbl.(0) x;
    for i = 1 to 3 do
      Ppgr_exec.Meter.incr ops;
      Bigint.Modring.mul_into ring tbl.(i) tbl.(i - 1) s.x2
    done

  (* Multiply the table entry for wNAF digit [d] (non-zero) into the
     accumulator, inverting lazily into the cache slot on first negative
     use — at most 4 inversions per exponentiation, each ticking the
     meter once, exactly like the old [inv_odd] option cache. *)
  let mix_digit s (tbl : element array) (invtbl : element array) ~second d =
    if d > 0 then begin
      Ppgr_exec.Meter.incr ops;
      Bigint.Modring.mul_into ring s.acc s.acc tbl.(d / 2)
    end
    else begin
      let i = -d / 2 in
      let mask = if second then s.inv_mask2 else s.inv_mask in
      if mask land (1 lsl i) = 0 then begin
        Ppgr_exec.Meter.incr ops;
        Bigint.Modring.inv_into ring invtbl.(i) tbl.(i);
        if second then s.inv_mask2 <- mask lor (1 lsl i)
        else s.inv_mask <- mask lor (1 lsl i)
      end;
      Ppgr_exec.Meter.incr ops;
      Bigint.Modring.mul_into ring s.acc s.acc invtbl.(i)
    end

  (* Copy the scratch accumulator out as the (sole) escaping allocation. *)
  let escape s =
    let r = Bigint.Modring.alloc ring in
    Bigint.Modring.copy_into ring r s.acc;
    r

  let pow_nonneg x e =
    (* wNAF-4 with precomputed odd powers; every group multiplication
       (squarings included) ticks the op counter once — the squarings go
       through the cheaper dedicated squaring kernel. *)
    let s = Domain.DLS.get scratch in
    fill_odd s s.odd x;
    s.inv_mask <- 0;
    let len = Group_intf.wnaf4_into e s.dg in
    Bigint.Modring.one_into ring s.acc;
    for k = len - 1 downto 0 do
      Ppgr_exec.Meter.incr ops;
      Bigint.Modring.sqr_into ring s.acc s.acc;
      let d = s.dg.(k) in
      if d <> 0 then mix_digit s s.odd s.oddinv ~second:false d
    done;
    escape s

  let pow x e =
    (* Canonical-exponent fast path: protocol exponents are already in
       [0, order), so the Euclidean division is usually skipped. *)
    let e = if Bigint.in_range e order then e else Bigint.erem e order in
    if Bigint.is_zero e then identity else pow_nonneg x e

  (* Fixed-base window table: tbl.(i).(d-1) = x^(d * 2^(w*i)) for
     d in 1..2^w-1.  An exponentiation then needs no squarings, only one
     multiplication per non-zero window digit. *)
  type powtable = element array array

  let table_window = Group_intf.fixed_base_window
  let table_windows = (Bigint.numbits order + table_window - 1) / table_window
  let digits_per_window = (1 lsl table_window) - 1

  let powtable x =
    let tbl = Array.init table_windows (fun _ -> Array.make digits_per_window x) in
    (* Sequential squaring spine: the doubling entries x^(2^k * 2^(w*i))
       of every row, and each next window's base, come from squarings
       alone; everything left is per-window fill chains that only read
       the spine, so they fan out over the domain pool.  The reshape
       keeps the construction at the sequential chain's exact cost: per
       window (w-1) spine squarings + 1 next-base squaring + 2^w-1-w
       chain multiplications = 2^w-1 ops, one fewer for the last
       window. *)
    let base = ref x in
    for i = 0 to table_windows - 1 do
      let row = tbl.(i) in
      row.(0) <- !base;
      for k = 1 to table_window - 1 do
        row.((1 lsl k) - 1) <- sqr row.((1 lsl (k - 1)) - 1)
      done;
      (* Next window's base x^(2^(w*(i+1))) = (x^(2^(w-1) * 2^(w*i)))^2. *)
      if i < table_windows - 1 then base := sqr row.((1 lsl (table_window - 1)) - 1)
    done;
    let nchains = table_window - 1 in
    Ppgr_exec.Pool.parallel_for (table_windows * nchains) (fun t ->
        let row = tbl.(t / nchains) in
        let k = (t mod nchains) + 1 in
        let hi = Stdlib.min ((1 lsl (k + 1)) - 2) (digits_per_window - 1) in
        for d = 1 lsl k to hi do
          row.(d) <- mul row.(d - 1) row.(0)
        done);
    tbl

  let pow_table tbl e =
    let e = if Bigint.in_range e order then e else Bigint.erem e order in
    if Bigint.is_zero e then identity
    else begin
      (* Window digits read straight off the exponent bits and the
         product accumulated in scratch: the old version allocated a
         digit array (one boxed bigint per nibble) plus a [Some] per
         non-zero digit.  Tick parity: one multiplication per non-zero
         digit after the first. *)
      let s = Domain.DLS.get scratch in
      let nb = Bigint.numbits e in
      let n = (nb + table_window - 1) / table_window in
      let started = ref false in
      for i = 0 to n - 1 do
        let b = i * table_window in
        let d =
          (if Bigint.testbit e b then 1 else 0)
          lor (if Bigint.testbit e (b + 1) then 2 else 0)
          lor (if Bigint.testbit e (b + 2) then 4 else 0)
          lor if Bigint.testbit e (b + 3) then 8 else 0
        in
        if d > 0 then begin
          let entry = tbl.(i).(d - 1) in
          if !started then begin
            Ppgr_exec.Meter.incr ops;
            Bigint.Modring.mul_into ring s.acc s.acc entry
          end
          else begin
            Bigint.Modring.copy_into ring s.acc entry;
            started := true
          end
        end
      done;
      if !started then escape s else identity
    end

  (* Shamir's trick: one shared squaring chain over the aligned wNAF-4
     recodings of both exponents, both odd-powers tables in scratch. *)
  let pow2 a e b f =
    let e = if Bigint.in_range e order then e else Bigint.erem e order
    and f = if Bigint.in_range f order then f else Bigint.erem f order in
    if Bigint.is_zero e then pow b f
    else if Bigint.is_zero f then pow a e
    else begin
      let s = Domain.DLS.get scratch in
      fill_odd s s.odd a;
      s.inv_mask <- 0;
      fill_odd s s.odd2 b;
      s.inv_mask2 <- 0;
      let len = Group_intf.wnaf4_pair_into e f s.dg s.dg2 in
      Bigint.Modring.one_into ring s.acc;
      for k = len - 1 downto 0 do
        Ppgr_exec.Meter.incr ops;
        Bigint.Modring.sqr_into ring s.acc s.acc;
        let da = s.dg.(k) in
        if da <> 0 then mix_digit s s.odd s.oddinv ~second:false da;
        let db = s.dg2.(k) in
        if db <> 0 then mix_digit s s.odd2 s.oddinv2 ~second:true db
      done;
      escape s
    end

  (* Double-checked mutex memo: [Lazy.force] is unsafe under concurrent
     forcing from pool workers (it raises [Undefined]). *)
  let gen_table = Atomic.make None
  let gen_table_lock = Mutex.create ()

  let gen_powtable () =
    match Atomic.get gen_table with
    | Some t -> t
    | None ->
        Mutex.lock gen_table_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock gen_table_lock)
          (fun () ->
            match Atomic.get gen_table with
            | Some t -> t
            | None ->
                let t = powtable generator in
                Atomic.set gen_table (Some t);
                t)

  let pow_gen e = pow_table (gen_powtable ()) e

  let element_bytes = (Bigint.numbits P.p + 7) / 8

  let to_bytes x =
    Bigint.to_bytes_be_padded element_bytes
      (Bigint.Modring.leave ring x)

  (* Residues are affine already: batching buys nothing here, the hook
     exists for the EC family's shared-inversion normalization. *)
  let to_bytes_batch a = Array.map to_bytes a
  let probes = []

  let of_bytes b =
    if Bytes.length b <> element_bytes then None
    else begin
      let v = Bigint.of_bytes_be b in
      if Bigint.sign v <= 0 || Bigint.compare v P.p >= 0 then None
      else if Bigint.jacobi v P.p <> 1 then None
      else Some (Bigint.Modring.enter ring v)
    end

  let pp fmt x = Bigint.pp fmt (Bigint.Modring.leave ring x)

  let random_scalar rng =
    Bigint.succ (Rng.bigint_below rng (Bigint.pred order))
end

(* [pow] in this family starts from the identity and multiplies [wnaf]
   digits in; [inv] inside [pow_nonneg] is counted but occurs at most 4
   times per exponentiation (table setup), matching the paper's O(lambda)
   multiplications per exponentiation. *)

let of_safe_prime ~name ~security_bits p : Group_intf.group =
  (module Make (struct
    let name = name
    let security_bits = security_bits
    let p = p
    let g = Bigint.of_int 4

    (* 4 = 2^2 is always a quadratic residue; for a safe prime every
       non-identity residue generates the whole order-q subgroup. *)
  end))

let dl_512 () = of_safe_prime ~name:"DL-512" ~security_bits:56 Modp_params.p_512
let dl_1024 () = of_safe_prime ~name:"DL-1024" ~security_bits:80 Modp_params.p_1024
let dl_2048 () = of_safe_prime ~name:"DL-2048" ~security_bits:112 Modp_params.p_2048

let dl_3072 () = of_safe_prime ~name:"DL-3072" ~security_bits:128 Modp_params.p_3072

let dl_test_64 () = of_safe_prime ~name:"DL-test-64" ~security_bits:0 Modp_params.test_64
let dl_test_96 () = of_safe_prime ~name:"DL-test-96" ~security_bits:0 Modp_params.test_96
let dl_test_128 () = of_safe_prime ~name:"DL-test-128" ~security_bits:0 Modp_params.test_128
let dl_test_256 () = of_safe_prime ~name:"DL-test-256" ~security_bits:0 Modp_params.test_256

(** Short-Weierstrass elliptic curves [y^2 = x^3 + ax + b] over a prime
    field, with Jacobian-coordinate point arithmetic and wNAF scalar
    multiplication.

    A point [(X, Y, Z)] in Jacobian coordinates represents the affine
    point [(X/Z^2, Y/Z^3)]; the point at infinity has [Z = 0].  Field
    elements live in the Montgomery domain of {!Bigint.Modring}. *)

open Ppgr_bigint
module Modring = Bigint.Modring

type params = {
  name : string;
  security_bits : int;
  p : Bigint.t; (* field prime *)
  a : Bigint.t;
  b : Bigint.t;
  gx : Bigint.t;
  gy : Bigint.t;
  n : Bigint.t; (* order of the base point (prime) *)
  h : int; (* cofactor *)
}

type curve = {
  prm : params;
  fp : Modring.ctx;
  ca : Modring.elt;
  cb : Modring.elt;
  a_is_minus3 : bool;
  ops : Ppgr_exec.Meter.t; (* point additions/doublings performed *)
  invs : Ppgr_exec.Meter.t; (* field inversions (normalization cost) *)
  scratch : Modring.elt array Domain.DLS.key;
      (* 12 per-domain field temporaries for the Jacobian formulas: the
         add/double hot paths run entirely in these via the Modring
         [_into] ops and only allocate the three limb arrays of the
         returned point.  Curves are shared across pool workers, hence
         domain-local. *)
}

type point = {
  x : Modring.elt;
  y : Modring.elt;
  z : Modring.elt; (* z = 0 encodes the point at infinity *)
}

let make_curve prm =
  let fp = Modring.ctx ~modulus:prm.p in
  let ca = Modring.enter fp prm.a in
  {
    prm;
    fp;
    ca;
    cb = Modring.enter fp prm.b;
    a_is_minus3 = Bigint.equal (Bigint.erem prm.a prm.p) (Bigint.sub prm.p (Bigint.of_int 3));
    ops = Ppgr_exec.Meter.create ();
    invs = Ppgr_exec.Meter.create ();
    scratch = Domain.DLS.new_key (fun () -> Array.init 12 (fun _ -> Modring.alloc fp));
  }

let infinity cv = { x = Modring.one cv.fp; y = Modring.one cv.fp; z = Modring.zero cv.fp }
let is_infinity cv pt = Modring.is_zero cv.fp pt.z

let of_affine cv ax ay =
  { x = Modring.enter cv.fp ax; y = Modring.enter cv.fp ay; z = Modring.one cv.fp }

let base_point cv = of_affine cv cv.prm.gx cv.prm.gy

let to_affine cv pt =
  if is_infinity cv pt then None
  else begin
    Ppgr_exec.Meter.incr cv.invs;
    let zi = Modring.inv cv.fp pt.z in
    let zi2 = Modring.sqr cv.fp zi in
    let zi3 = Modring.mul cv.fp zi2 zi in
    Some
      ( Modring.leave cv.fp (Modring.mul cv.fp pt.x zi2),
        Modring.leave cv.fp (Modring.mul cv.fp pt.y zi3) )
  end

(** Normalize a whole batch with Montgomery's shared-inversion trick:
    one field inversion for the entire array (infinity points skipped),
    plus 3 multiplications per point for the prefix/suffix walk on top
    of [to_affine]'s own 3 — field inversions cost tens of
    multiplications, so a [k]-point batch replaces [k] inversions with
    one.  Element [i] of the result is [to_affine cv pts.(i)]. *)
let to_affine_batch cv pts =
  let f = cv.fp in
  let n = Array.length pts in
  let pos = Array.make (Stdlib.max n 1) 0 in
  let zs = Array.make (Stdlib.max n 1) (Modring.one f) in
  let m = ref 0 in
  for i = 0 to n - 1 do
    if not (is_infinity cv pts.(i)) then begin
      pos.(!m) <- i;
      zs.(!m) <- pts.(i).z;
      incr m
    end
  done;
  let m = !m in
  let out = Array.make n None in
  if m > 0 then begin
    (* prefix.(k) = zs.(0) * ... * zs.(k) *)
    let prefix = Array.make m zs.(0) in
    for k = 1 to m - 1 do
      prefix.(k) <- Modring.mul f prefix.(k - 1) zs.(k)
    done;
    Ppgr_exec.Meter.incr cv.invs;
    (* acc = inverse of zs.(0) * ... * zs.(k) during the back walk; the
       per-point work runs in four reused temporaries. *)
    let acc = Modring.inv f prefix.(m - 1) in
    let zi = Modring.alloc f and zi2 = Modring.alloc f and zi3 = Modring.alloc f in
    for k = m - 1 downto 0 do
      if k = 0 then Modring.copy_into f zi acc
      else Modring.mul_into f zi acc prefix.(k - 1);
      Modring.mul_into f acc acc zs.(k);
      let i = pos.(k) in
      Modring.sqr_into f zi2 zi;
      Modring.mul_into f zi3 zi2 zi;
      Modring.mul_into f zi2 pts.(i).x zi2;
      Modring.mul_into f zi3 pts.(i).y zi3;
      out.(i) <- Some (Modring.leave f zi2, Modring.leave f zi3)
    done
  end;
  out

let on_curve cv pt =
  if is_infinity cv pt then true
  else begin
    match to_affine cv pt with
    | None -> true
    | Some (ax, ay) ->
        let open Bigint in
        let x = erem ax cv.prm.p and y = erem ay cv.prm.p in
        let lhs = erem (mul y y) cv.prm.p in
        let rhs = erem (add (add (mul (mul x x) x) (mul cv.prm.a x)) cv.prm.b) cv.prm.p in
        equal lhs rhs
  end

let neg cv pt =
  if is_infinity cv pt then pt else { pt with y = Modring.neg cv.fp pt.y }

(* Point doubling ("dbl-2004-hmv" / standard Jacobian formulas, with the
   a = -3 shortcut M = 3(X-Z^2)(X+Z^2)).  All intermediates live in the
   per-domain scratch; only the returned point allocates. *)
let double cv pt =
  if is_infinity cv pt || Modring.is_zero cv.fp pt.y then infinity cv
  else begin
    Ppgr_exec.Meter.incr cv.ops;
    let f = cv.fp in
    let sc = Domain.DLS.get cv.scratch in
    let yy = sc.(0) and yyyy = sc.(1) and zz = sc.(2) and s = sc.(3) in
    let m = sc.(4) and ta = sc.(5) and tb = sc.(6) and td = sc.(7) in
    Modring.sqr_into f yy pt.y;
    Modring.sqr_into f yyyy yy;
    Modring.sqr_into f zz pt.z;
    (* S = 4 X YY *)
    Modring.mul_into f s pt.x yy;
    Modring.double_into f s s;
    Modring.double_into f s s;
    if cv.a_is_minus3 then begin
      Modring.sub_into f ta pt.x zz;
      Modring.add_into f tb pt.x zz;
      Modring.mul_into f m ta tb;
      (* M = 3 (X-ZZ)(X+ZZ) *)
      Modring.double_into f ta m;
      Modring.add_into f m ta m
    end
    else begin
      Modring.sqr_into f ta pt.x;
      Modring.double_into f tb ta;
      Modring.add_into f ta tb ta;
      (* ta = 3 XX; tb = a * ZZ^2 *)
      Modring.sqr_into f tb zz;
      Modring.mul_into f tb cv.ca tb;
      Modring.add_into f m ta tb
    end;
    let x3 = Modring.alloc f and y3 = Modring.alloc f and z3 = Modring.alloc f in
    (* X3 = M^2 - 2S *)
    Modring.sqr_into f x3 m;
    Modring.double_into f td s;
    Modring.sub_into f x3 x3 td;
    (* Y3 = M (S - X3) - 8 YYYY *)
    Modring.sub_into f td s x3;
    Modring.mul_into f y3 m td;
    Modring.double_into f yyyy yyyy;
    Modring.double_into f yyyy yyyy;
    Modring.double_into f yyyy yyyy;
    Modring.sub_into f y3 y3 yyyy;
    (* Z3 = 2 Y Z *)
    Modring.double_into f yy pt.y;
    Modring.mul_into f z3 yy pt.z;
    { x = x3; y = y3; z = z3 }
  end

(* General Jacobian addition ("add-2007-bl" style), scratch-resident like
   [double].  The doubling fallback may clobber the same scratch slots;
   that is fine because its result is returned directly. *)
let add cv p1 p2 =
  if is_infinity cv p1 then p2
  else if is_infinity cv p2 then p1
  else begin
    let f = cv.fp in
    let sc = Domain.DLS.get cv.scratch in
    let z1z1 = sc.(0) and z2z2 = sc.(1) and u1 = sc.(2) and u2 = sc.(3) in
    let s1 = sc.(4) and s2 = sc.(5) and t = sc.(6) in
    Modring.sqr_into f z1z1 p1.z;
    Modring.sqr_into f z2z2 p2.z;
    Modring.mul_into f u1 p1.x z2z2;
    Modring.mul_into f u2 p2.x z1z1;
    Modring.mul_into f t p2.z z2z2;
    Modring.mul_into f s1 p1.y t;
    Modring.mul_into f t p1.z z1z1;
    Modring.mul_into f s2 p2.y t;
    if Modring.equal f u1 u2 then begin
      if Modring.equal f s1 s2 then double cv p1 else infinity cv
    end
    else begin
      Ppgr_exec.Meter.incr cv.ops;
      let h = sc.(7) and i = sc.(8) and r = sc.(9) and v = sc.(10) and j = sc.(11) in
      Modring.sub_into f h u2 u1;
      (* I = (2H)^2, J = H I *)
      Modring.double_into f i h;
      Modring.sqr_into f i i;
      Modring.mul_into f j h i;
      (* R = 2 (S2 - S1), V = U1 I *)
      Modring.sub_into f r s2 s1;
      Modring.double_into f r r;
      Modring.mul_into f v u1 i;
      let x3 = Modring.alloc f and y3 = Modring.alloc f and z3 = Modring.alloc f in
      (* X3 = R^2 - J - 2V *)
      Modring.sqr_into f x3 r;
      Modring.sub_into f x3 x3 j;
      Modring.double_into f t v;
      Modring.sub_into f x3 x3 t;
      (* Y3 = R (V - X3) - 2 S1 J *)
      Modring.sub_into f t v x3;
      Modring.mul_into f y3 r t;
      Modring.mul_into f t s1 j;
      Modring.double_into f t t;
      Modring.sub_into f y3 y3 t;
      (* Z3 = ((Z1 + Z2)^2 - Z1Z1 - Z2Z2) H *)
      Modring.add_into f t p1.z p2.z;
      Modring.sqr_into f t t;
      Modring.sub_into f t t z1z1;
      Modring.sub_into f t t z2z2;
      Modring.mul_into f z3 t h;
      { x = x3; y = y3; z = z3 }
    end
  end

let scalar_mul cv pt e =
  let e = Bigint.erem e cv.prm.n in
  if Bigint.is_zero e || is_infinity cv pt then infinity cv
  else begin
    (* wNAF-4: precompute odd multiples P, 3P, 5P, 7P. *)
    let p2 = double cv pt in
    let odd = Array.make 4 pt in
    for i = 1 to 3 do
      odd.(i) <- add cv odd.(i - 1) p2
    done;
    let digits = Group_intf.wnaf4 e in
    List.fold_left
      (fun acc d ->
        let acc = double cv acc in
        if d = 0 then acc
        else if d > 0 then add cv acc odd.(d / 2)
        else add cv acc (neg cv odd.(-d / 2)))
      (infinity cv) digits
  end

(** Fixed-base window table: [ptbl.(i).(d-1) = d * 2^(w*i) * P] for
    digits [d] in [1..2^w-1].  A table-backed scalar multiplication then
    needs no doublings, only one point addition per non-zero window
    digit of the scalar. *)
type powtable = { pw : int; ptbl : point array array }

let make_powtable cv ?(window = Group_intf.fixed_base_window) pt ~bits =
  let nwin = Stdlib.max 1 ((bits + window - 1) / window) in
  let size = (1 lsl window) - 1 in
  let tbl = Array.init nwin (fun _ -> Array.make size pt) in
  (* Sequential doubling spine (the 2^k multiples of every row and each
     next window's base), then per-window fill chains that only read the
     spine fan out over the domain pool.  Cost is identical to the
     sequential chain: per window (w-1) spine doublings + 1 next-base
     doubling + 2^w-1-w chain additions = 2^w-1 ops, one fewer for the
     last window. *)
  let base = ref pt in
  for i = 0 to nwin - 1 do
    let row = tbl.(i) in
    row.(0) <- !base;
    for k = 1 to window - 1 do
      row.((1 lsl k) - 1) <- double cv row.((1 lsl (k - 1)) - 1)
    done;
    (* Next window's base 2^(w*(i+1)) P = double (2^(w-1) * 2^(w*i) P). *)
    if i < nwin - 1 then base := double cv row.((1 lsl (window - 1)) - 1)
  done;
  let nchains = window - 1 in
  Ppgr_exec.Pool.parallel_for (nwin * nchains) (fun t ->
      let row = tbl.(t / nchains) in
      let k = (t mod nchains) + 1 in
      let hi = Stdlib.min ((1 lsl (k + 1)) - 2) (size - 1) in
      for d = 1 lsl k to hi do
        row.(d) <- add cv row.(d - 1) row.(0)
      done);
  (* Normalize the finished table to affine (z = 1) with ONE shared
     Montgomery inversion for all [nwin * (2^w - 1)] entries.  Same
     group elements, cheaper life: every table-backed addition starts
     from z = 1 operands and the entries serialize without any further
     inversion.  (Runs after the parallel fill, sequentially, so the
     table bytes stay independent of the job count.) *)
  let flat = Array.concat (Array.to_list tbl) in
  Array.iteri
    (fun k aff ->
      match aff with
      | None -> ()
      | Some (ax, ay) -> tbl.(k / size).(k mod size) <- of_affine cv ax ay)
    (to_affine_batch cv flat);
  { pw = window; ptbl = tbl }

let scalar_mul_table cv t e =
  let e = Bigint.erem e cv.prm.n in
  if Bigint.is_zero e then infinity cv
  else begin
    let digits = Group_intf.window_digits ~window:t.pw e in
    if Array.length digits > Array.length t.ptbl then
      invalid_arg "Ec_curve.scalar_mul_table: exponent wider than table";
    let acc = ref (infinity cv) in
    Array.iteri
      (fun i d -> if d > 0 then acc := add cv !acc t.ptbl.(i).(d - 1))
      digits;
    !acc
  end

(** Shamir's trick [e*P + f*Q]: aligned wNAF-4 recodings of both scalars
    share one doubling chain; negative digits cost nothing extra because
    point negation is free. *)
let scalar_mul2 cv p e q f =
  let e = Bigint.erem e cv.prm.n and f = Bigint.erem f cv.prm.n in
  if Bigint.is_zero e || is_infinity cv p then scalar_mul cv q f
  else if Bigint.is_zero f || is_infinity cv q then scalar_mul cv p e
  else begin
    let odd_of pt =
      let p2 = double cv pt in
      let t = Array.make 4 pt in
      for i = 1 to 3 do
        t.(i) <- add cv t.(i - 1) p2
      done;
      t
    in
    let ta = odd_of p and tb = odd_of q in
    let mix acc t d =
      if d = 0 then acc
      else if d > 0 then add cv acc t.(d / 2)
      else add cv acc (neg cv t.(-d / 2))
    in
    List.fold_left
      (fun acc (da, db) -> mix (mix (double cv acc) ta da) tb db)
      (infinity cv)
      (Group_intf.wnaf4_pair e f)
  end

(* Equality in Jacobian coordinates: cross-multiplied comparison to avoid
   inversion. *)
let equal cv p1 p2 =
  match (is_infinity cv p1, is_infinity cv p2) with
  | true, true -> true
  | true, false | false, true -> false
  | false, false ->
      let f = cv.fp in
      let sc = Domain.DLS.get cv.scratch in
      let z1z1 = sc.(0) and z2z2 = sc.(1) and a = sc.(2) and b = sc.(3) and t = sc.(4) in
      Modring.sqr_into f z1z1 p1.z;
      Modring.sqr_into f z2z2 p2.z;
      Modring.mul_into f a p1.x z2z2;
      Modring.mul_into f b p2.x z1z1;
      Modring.equal f a b
      &&
      (Modring.mul_into f t p2.z z2z2;
       Modring.mul_into f a p1.y t;
       Modring.mul_into f t p1.z z1z1;
       Modring.mul_into f b p2.y t;
       Modring.equal f a b)

(** Short-Weierstrass elliptic curves [y^2 = x^3 + ax + b] over a prime
    field, with Jacobian-coordinate point arithmetic and wNAF scalar
    multiplication.

    A point [(X, Y, Z)] in Jacobian coordinates represents the affine
    point [(X/Z^2, Y/Z^3)]; the point at infinity has [Z = 0].  Field
    elements live in the Montgomery domain of {!Bigint.Modring}. *)

open Ppgr_bigint
module Modring = Bigint.Modring

type params = {
  name : string;
  security_bits : int;
  p : Bigint.t; (* field prime *)
  a : Bigint.t;
  b : Bigint.t;
  gx : Bigint.t;
  gy : Bigint.t;
  n : Bigint.t; (* order of the base point (prime) *)
  h : int; (* cofactor *)
}

type point = {
  x : Modring.elt;
  y : Modring.elt;
  z : Modring.elt; (* z = 0 encodes the point at infinity *)
}

(* Per-domain point scratch for the scalar ladders (DESIGN.md §5h): the
   accumulator, the wNAF odd-multiples tables (two, for the Shamir
   double ladder), a negation/doubling temporary and the recoding digit
   buffers.  A steady-state [scalar_mul]/[scalar_mul2]/
   [scalar_mul_table] touches only these and allocates nothing but its
   escaping result point. *)
type pscratch = {
  pacc : point;
  ptmp : point;
  podd : point array; (* P, 3P, 5P, 7P *)
  podd2 : point array;
  pdg : int array;
  pdg2 : int array;
}

type curve = {
  prm : params;
  fp : Modring.ctx;
  ca : Modring.elt;
  cb : Modring.elt;
  a_is_minus3 : bool;
  ops : Ppgr_exec.Meter.t; (* point additions/doublings performed *)
  invs : Ppgr_exec.Meter.t; (* field inversions (normalization cost) *)
  scratch : Modring.elt array Domain.DLS.key;
      (* 13 per-domain field temporaries for the Jacobian formulas: the
         add/double hot paths run entirely in these via the Modring
         [_into] ops and only allocate the three limb arrays of the
         returned point.  Curves are shared across pool workers, hence
         domain-local. *)
  pscratch : pscratch Domain.DLS.key;
}

let make_curve prm =
  let fp = Modring.ctx ~modulus:prm.p in
  let ca = Modring.enter fp prm.a in
  let digit_slots = Bigint.numbits prm.n + 8 in
  let fresh_point () =
    { x = Modring.alloc fp; y = Modring.alloc fp; z = Modring.alloc fp }
  in
  {
    prm;
    fp;
    ca;
    cb = Modring.enter fp prm.b;
    a_is_minus3 = Bigint.equal (Bigint.erem prm.a prm.p) (Bigint.sub prm.p (Bigint.of_int 3));
    ops = Ppgr_exec.Meter.create ();
    invs = Ppgr_exec.Meter.create ();
    scratch = Domain.DLS.new_key (fun () -> Array.init 13 (fun _ -> Modring.alloc fp));
    pscratch =
      Domain.DLS.new_key (fun () ->
          {
            pacc = fresh_point ();
            ptmp = fresh_point ();
            podd = Array.init 4 (fun _ -> fresh_point ());
            podd2 = Array.init 4 (fun _ -> fresh_point ());
            pdg = Array.make digit_slots 0;
            pdg2 = Array.make digit_slots 0;
          });
  }

let infinity cv = { x = Modring.one cv.fp; y = Modring.one cv.fp; z = Modring.zero cv.fp }
let is_infinity cv pt = Modring.is_zero cv.fp pt.z

let of_affine cv ax ay =
  { x = Modring.enter cv.fp ax; y = Modring.enter cv.fp ay; z = Modring.one cv.fp }

let base_point cv = of_affine cv cv.prm.gx cv.prm.gy

let to_affine cv pt =
  if is_infinity cv pt then None
  else begin
    Ppgr_exec.Meter.incr cv.invs;
    let zi = Modring.inv cv.fp pt.z in
    let zi2 = Modring.sqr cv.fp zi in
    let zi3 = Modring.mul cv.fp zi2 zi in
    Some
      ( Modring.leave cv.fp (Modring.mul cv.fp pt.x zi2),
        Modring.leave cv.fp (Modring.mul cv.fp pt.y zi3) )
  end

(** Normalize a whole batch with Montgomery's shared-inversion trick:
    one field inversion for the entire array (infinity points skipped),
    plus 3 multiplications per point for the prefix/suffix walk on top
    of [to_affine]'s own 3 — field inversions cost tens of
    multiplications, so a [k]-point batch replaces [k] inversions with
    one.  Element [i] of the result is [to_affine cv pts.(i)]. *)
let to_affine_batch cv pts =
  let f = cv.fp in
  let n = Array.length pts in
  let pos = Array.make (Stdlib.max n 1) 0 in
  let zs = Array.make (Stdlib.max n 1) (Modring.one f) in
  let m = ref 0 in
  for i = 0 to n - 1 do
    if not (is_infinity cv pts.(i)) then begin
      pos.(!m) <- i;
      zs.(!m) <- pts.(i).z;
      incr m
    end
  done;
  let m = !m in
  let out = Array.make n None in
  if m > 0 then begin
    (* prefix.(k) = zs.(0) * ... * zs.(k) *)
    let prefix = Array.make m zs.(0) in
    for k = 1 to m - 1 do
      prefix.(k) <- Modring.mul f prefix.(k - 1) zs.(k)
    done;
    Ppgr_exec.Meter.incr cv.invs;
    (* acc = inverse of zs.(0) * ... * zs.(k) during the back walk; the
       per-point work runs in four reused temporaries. *)
    let acc = Modring.inv f prefix.(m - 1) in
    let zi = Modring.alloc f and zi2 = Modring.alloc f and zi3 = Modring.alloc f in
    for k = m - 1 downto 0 do
      if k = 0 then Modring.copy_into f zi acc
      else Modring.mul_into f zi acc prefix.(k - 1);
      Modring.mul_into f acc acc zs.(k);
      let i = pos.(k) in
      Modring.sqr_into f zi2 zi;
      Modring.mul_into f zi3 zi2 zi;
      Modring.mul_into f zi2 pts.(i).x zi2;
      Modring.mul_into f zi3 pts.(i).y zi3;
      out.(i) <- Some (Modring.leave f zi2, Modring.leave f zi3)
    done
  end;
  out

let on_curve cv pt =
  if is_infinity cv pt then true
  else begin
    match to_affine cv pt with
    | None -> true
    | Some (ax, ay) ->
        let open Bigint in
        let x = erem ax cv.prm.p and y = erem ay cv.prm.p in
        let lhs = erem (mul y y) cv.prm.p in
        let rhs = erem (add (add (mul (mul x x) x) (mul cv.prm.a x)) cv.prm.b) cv.prm.p in
        equal lhs rhs
  end

(* In-place point ops: write the result into caller storage ([dst] may
   alias any point operand).  Aliasing discipline (DESIGN.md §5h): every
   read of an operand coordinate completes before the same [dst]
   coordinate is written — the Z3 value, which needs the operand Z
   coordinates last, is staged in a scratch slot and copied out after
   the X3/Y3 writes. *)

let point_alloc cv =
  { x = Modring.alloc cv.fp; y = Modring.alloc cv.fp; z = Modring.alloc cv.fp }

let copy_point_into cv dst src =
  Modring.copy_into cv.fp dst.x src.x;
  Modring.copy_into cv.fp dst.y src.y;
  Modring.copy_into cv.fp dst.z src.z

(* Same representation as [infinity]: (1, 1, 0). *)
let set_infinity_into cv dst =
  Modring.one_into cv.fp dst.x;
  Modring.one_into cv.fp dst.y;
  Modring.zero_into cv.fp dst.z

let neg_into cv dst pt =
  Modring.copy_into cv.fp dst.x pt.x;
  if is_infinity cv pt then Modring.copy_into cv.fp dst.y pt.y
  else Modring.neg_into cv.fp dst.y pt.y;
  Modring.copy_into cv.fp dst.z pt.z

(* Point doubling ("dbl-2004-hmv" / standard Jacobian formulas, with the
   a = -3 shortcut M = 3(X-Z^2)(X+Z^2)).  All intermediates live in the
   per-domain scratch. *)
let double_into cv dst pt =
  if is_infinity cv pt || Modring.is_zero cv.fp pt.y then set_infinity_into cv dst
  else begin
    Ppgr_exec.Meter.incr cv.ops;
    let f = cv.fp in
    let sc = Domain.DLS.get cv.scratch in
    let yy = sc.(0) and yyyy = sc.(1) and zz = sc.(2) and s = sc.(3) in
    let m = sc.(4) and ta = sc.(5) and tb = sc.(6) and td = sc.(7) and zt = sc.(8) in
    Modring.sqr_into f yy pt.y;
    Modring.sqr_into f yyyy yy;
    Modring.sqr_into f zz pt.z;
    (* S = 4 X YY *)
    Modring.mul_into f s pt.x yy;
    Modring.double_into f s s;
    Modring.double_into f s s;
    if cv.a_is_minus3 then begin
      Modring.sub_into f ta pt.x zz;
      Modring.add_into f tb pt.x zz;
      Modring.mul_into f m ta tb;
      (* M = 3 (X-ZZ)(X+ZZ) *)
      Modring.double_into f ta m;
      Modring.add_into f m ta m
    end
    else begin
      Modring.sqr_into f ta pt.x;
      Modring.double_into f tb ta;
      Modring.add_into f ta tb ta;
      (* ta = 3 XX; tb = a * ZZ^2 *)
      Modring.sqr_into f tb zz;
      Modring.mul_into f tb cv.ca tb;
      Modring.add_into f m ta tb
    end;
    (* Z3 = 2 Y Z, staged before any dst write (dst may alias pt). *)
    Modring.double_into f zt pt.y;
    Modring.mul_into f zt zt pt.z;
    (* X3 = M^2 - 2S *)
    Modring.sqr_into f dst.x m;
    Modring.double_into f td s;
    Modring.sub_into f dst.x dst.x td;
    (* Y3 = M (S - X3) - 8 YYYY *)
    Modring.sub_into f td s dst.x;
    Modring.mul_into f dst.y m td;
    Modring.double_into f yyyy yyyy;
    Modring.double_into f yyyy yyyy;
    Modring.double_into f yyyy yyyy;
    Modring.sub_into f dst.y dst.y yyyy;
    Modring.copy_into f dst.z zt
  end

(* General Jacobian addition ("add-2007-bl" style), scratch-resident like
   [double_into].  The doubling fallback may clobber the same scratch
   slots; that is fine because slots 0-6 are dead by then. *)
let add_into cv dst p1 p2 =
  if is_infinity cv p1 then copy_point_into cv dst p2
  else if is_infinity cv p2 then copy_point_into cv dst p1
  else begin
    let f = cv.fp in
    let sc = Domain.DLS.get cv.scratch in
    let z1z1 = sc.(0) and z2z2 = sc.(1) and u1 = sc.(2) and u2 = sc.(3) in
    let s1 = sc.(4) and s2 = sc.(5) and t = sc.(6) in
    Modring.sqr_into f z1z1 p1.z;
    Modring.sqr_into f z2z2 p2.z;
    Modring.mul_into f u1 p1.x z2z2;
    Modring.mul_into f u2 p2.x z1z1;
    Modring.mul_into f t p2.z z2z2;
    Modring.mul_into f s1 p1.y t;
    Modring.mul_into f t p1.z z1z1;
    Modring.mul_into f s2 p2.y t;
    if Modring.equal f u1 u2 then begin
      if Modring.equal f s1 s2 then double_into cv dst p1 else set_infinity_into cv dst
    end
    else begin
      Ppgr_exec.Meter.incr cv.ops;
      let h = sc.(7) and i = sc.(8) and r = sc.(9) and v = sc.(10) and j = sc.(11) in
      let zt = sc.(12) in
      Modring.sub_into f h u2 u1;
      (* I = (2H)^2, J = H I *)
      Modring.double_into f i h;
      Modring.sqr_into f i i;
      Modring.mul_into f j h i;
      (* R = 2 (S2 - S1), V = U1 I *)
      Modring.sub_into f r s2 s1;
      Modring.double_into f r r;
      Modring.mul_into f v u1 i;
      (* Z3 = ((Z1 + Z2)^2 - Z1Z1 - Z2Z2) H, staged before dst writes. *)
      Modring.add_into f t p1.z p2.z;
      Modring.sqr_into f t t;
      Modring.sub_into f t t z1z1;
      Modring.sub_into f t t z2z2;
      Modring.mul_into f zt t h;
      (* X3 = R^2 - J - 2V *)
      Modring.sqr_into f dst.x r;
      Modring.sub_into f dst.x dst.x j;
      Modring.double_into f t v;
      Modring.sub_into f dst.x dst.x t;
      (* Y3 = R (V - X3) - 2 S1 J *)
      Modring.sub_into f t v dst.x;
      Modring.mul_into f dst.y r t;
      Modring.mul_into f t s1 j;
      Modring.double_into f t t;
      Modring.sub_into f dst.y dst.y t;
      Modring.copy_into f dst.z zt
    end
  end

(* Mixed addition ("madd-2007-bl"): P2 is affine (Z2 = 1), so U1 = X1,
   S1 = Y1 and three of the general formula's multiplications drop out
   (Z3 = 2 Z1 H).  Used by the table-backed ladder, whose entries are
   batch-normalized to z = 1; callers must check [Modring.is_one] on
   p2.z and fall back to {!add_into} otherwise.  Tick parity with
   {!add_into} in every branch — only field-multiplication counts
   change, which no transcript pins. *)
let mixed_add_into cv dst p1 p2 =
  if is_infinity cv p1 then copy_point_into cv dst p2
  else if is_infinity cv p2 then copy_point_into cv dst p1
  else begin
    let f = cv.fp in
    let sc = Domain.DLS.get cv.scratch in
    let z1z1 = sc.(0) and u2 = sc.(1) and s2 = sc.(2) and t = sc.(6) in
    Modring.sqr_into f z1z1 p1.z;
    Modring.mul_into f u2 p2.x z1z1;
    Modring.mul_into f t p1.z z1z1;
    Modring.mul_into f s2 p2.y t;
    if Modring.equal f p1.x u2 then begin
      if Modring.equal f p1.y s2 then double_into cv dst p1 else set_infinity_into cv dst
    end
    else begin
      Ppgr_exec.Meter.incr cv.ops;
      let h = sc.(7) and i = sc.(8) and r = sc.(9) and v = sc.(10) and j = sc.(11) in
      let zt = sc.(12) in
      Modring.sub_into f h u2 p1.x;
      (* I = (2H)^2, J = H I *)
      Modring.double_into f i h;
      Modring.sqr_into f i i;
      Modring.mul_into f j h i;
      (* R = 2 (S2 - Y1), V = X1 I *)
      Modring.sub_into f r s2 p1.y;
      Modring.double_into f r r;
      Modring.mul_into f v p1.x i;
      (* 2 Y1 J (Y3's subtrahend) and Z3 = 2 Z1 H, staged while the
         operand coordinates are still readable. *)
      Modring.mul_into f s2 p1.y j;
      Modring.double_into f s2 s2;
      Modring.double_into f t p1.z;
      Modring.mul_into f zt t h;
      (* X3 = R^2 - J - 2V *)
      Modring.sqr_into f dst.x r;
      Modring.sub_into f dst.x dst.x j;
      Modring.double_into f t v;
      Modring.sub_into f dst.x dst.x t;
      (* Y3 = R (V - X3) - 2 Y1 J *)
      Modring.sub_into f t v dst.x;
      Modring.mul_into f dst.y r t;
      Modring.sub_into f dst.y dst.y s2;
      Modring.copy_into f dst.z zt
    end
  end

(* Allocating forms, for table construction and one-shot callers: a
   fresh point written by the corresponding [_into] op. *)

let neg cv pt =
  let r = point_alloc cv in
  neg_into cv r pt;
  r

let double cv pt =
  let r = point_alloc cv in
  double_into cv r pt;
  r

let add cv p1 p2 =
  let r = point_alloc cv in
  add_into cv r p1 p2;
  r

(* Build the odd multiples P, 3P, 5P, 7P into [tbl] (1 doubling + 3
   additions, the same ticks as the old per-call build); [s.ptmp] holds
   2P and is free again afterwards. *)
let fill_odd_points cv s (tbl : point array) pt =
  double_into cv s.ptmp pt;
  copy_point_into cv tbl.(0) pt;
  for i = 1 to 3 do
    add_into cv tbl.(i) tbl.(i - 1) s.ptmp
  done

(* Add the odd multiple for wNAF digit [d] (non-zero) into the
   accumulator; negative digits negate through [s.ptmp] (free outside
   table builds), since point negation costs no group op. *)
let mix_digit_point cv s (tbl : point array) d =
  if d > 0 then add_into cv s.pacc s.pacc tbl.(d / 2)
  else begin
    neg_into cv s.ptmp tbl.(-d / 2);
    add_into cv s.pacc s.pacc s.ptmp
  end

let escape_point cv s =
  let r = point_alloc cv in
  copy_point_into cv r s.pacc;
  r

let scalar_mul cv pt e =
  let e = if Bigint.in_range e cv.prm.n then e else Bigint.erem e cv.prm.n in
  if Bigint.is_zero e || is_infinity cv pt then infinity cv
  else begin
    (* wNAF-4 over the per-domain point scratch: the whole ladder runs
       in place and only the returned point allocates. *)
    let s = Domain.DLS.get cv.pscratch in
    fill_odd_points cv s s.podd pt;
    let len = Group_intf.wnaf4_into e s.pdg in
    set_infinity_into cv s.pacc;
    for k = len - 1 downto 0 do
      double_into cv s.pacc s.pacc;
      let d = s.pdg.(k) in
      if d <> 0 then mix_digit_point cv s s.podd d
    done;
    escape_point cv s
  end

(** Fixed-base window table: [ptbl.(i).(d-1) = d * 2^(w*i) * P] for
    digits [d] in [1..2^w-1].  A table-backed scalar multiplication then
    needs no doublings, only one point addition per non-zero window
    digit of the scalar. *)
type powtable = { pw : int; ptbl : point array array }

let make_powtable cv ?(window = Group_intf.fixed_base_window) pt ~bits =
  let nwin = Stdlib.max 1 ((bits + window - 1) / window) in
  let size = (1 lsl window) - 1 in
  let tbl = Array.init nwin (fun _ -> Array.make size pt) in
  (* Sequential doubling spine (the 2^k multiples of every row and each
     next window's base), then per-window fill chains that only read the
     spine fan out over the domain pool.  Cost is identical to the
     sequential chain: per window (w-1) spine doublings + 1 next-base
     doubling + 2^w-1-w chain additions = 2^w-1 ops, one fewer for the
     last window. *)
  let base = ref pt in
  for i = 0 to nwin - 1 do
    let row = tbl.(i) in
    row.(0) <- !base;
    for k = 1 to window - 1 do
      row.((1 lsl k) - 1) <- double cv row.((1 lsl (k - 1)) - 1)
    done;
    (* Next window's base 2^(w*(i+1)) P = double (2^(w-1) * 2^(w*i) P). *)
    if i < nwin - 1 then base := double cv row.((1 lsl (window - 1)) - 1)
  done;
  let nchains = window - 1 in
  Ppgr_exec.Pool.parallel_for (nwin * nchains) (fun t ->
      let row = tbl.(t / nchains) in
      let k = (t mod nchains) + 1 in
      let hi = Stdlib.min ((1 lsl (k + 1)) - 2) (size - 1) in
      for d = 1 lsl k to hi do
        row.(d) <- add cv row.(d - 1) row.(0)
      done);
  (* Normalize the finished table to affine (z = 1) with ONE shared
     Montgomery inversion for all [nwin * (2^w - 1)] entries.  Same
     group elements, cheaper life: every table-backed addition starts
     from z = 1 operands and the entries serialize without any further
     inversion.  (Runs after the parallel fill, sequentially, so the
     table bytes stay independent of the job count.) *)
  let flat = Array.concat (Array.to_list tbl) in
  Array.iteri
    (fun k aff ->
      match aff with
      | None -> ()
      | Some (ax, ay) -> tbl.(k / size).(k mod size) <- of_affine cv ax ay)
    (to_affine_batch cv flat);
  { pw = window; ptbl = tbl }

let scalar_mul_table cv t e =
  let e = if Bigint.in_range e cv.prm.n then e else Bigint.erem e cv.prm.n in
  if Bigint.is_zero e then infinity cv
  else begin
    (* Window digits read straight off the exponent bits; entries are
       batch-normalized to z = 1 at build time, so almost every addition
       takes the cheaper mixed path (the [is_one] probe keeps a general
       fallback for unnormalized tables). *)
    let nb = Bigint.numbits e in
    let nd = Stdlib.max 1 ((nb + t.pw - 1) / t.pw) in
    if nd > Array.length t.ptbl then
      invalid_arg "Ec_curve.scalar_mul_table: exponent wider than table";
    let s = Domain.DLS.get cv.pscratch in
    let started = ref false in
    for i = 0 to nd - 1 do
      let d = ref 0 in
      for k = t.pw - 1 downto 0 do
        d := (!d lsl 1) lor if Bigint.testbit e ((i * t.pw) + k) then 1 else 0
      done;
      if !d > 0 then begin
        let entry = t.ptbl.(i).(!d - 1) in
        if not !started then begin
          (* First term: the old ladder's add (infinity, entry), which
             copies without ticking. *)
          copy_point_into cv s.pacc entry;
          started := true
        end
        else if Modring.is_one cv.fp entry.z then mixed_add_into cv s.pacc s.pacc entry
        else add_into cv s.pacc s.pacc entry
      end
    done;
    if !started then escape_point cv s else infinity cv
  end

(** Shamir's trick [e*P + f*Q]: aligned wNAF-4 recodings of both scalars
    share one doubling chain; negative digits cost nothing extra because
    point negation is free. *)
let scalar_mul2 cv p e q f =
  let e = if Bigint.in_range e cv.prm.n then e else Bigint.erem e cv.prm.n
  and f = if Bigint.in_range f cv.prm.n then f else Bigint.erem f cv.prm.n in
  if Bigint.is_zero e || is_infinity cv p then scalar_mul cv q f
  else if Bigint.is_zero f || is_infinity cv q then scalar_mul cv p e
  else begin
    let s = Domain.DLS.get cv.pscratch in
    fill_odd_points cv s s.podd p;
    fill_odd_points cv s s.podd2 q;
    let len = Group_intf.wnaf4_pair_into e f s.pdg s.pdg2 in
    set_infinity_into cv s.pacc;
    for k = len - 1 downto 0 do
      double_into cv s.pacc s.pacc;
      let da = s.pdg.(k) in
      if da <> 0 then mix_digit_point cv s s.podd da;
      let db = s.pdg2.(k) in
      if db <> 0 then mix_digit_point cv s s.podd2 db
    done;
    escape_point cv s
  end

(* Equality in Jacobian coordinates: cross-multiplied comparison to avoid
   inversion. *)
let equal cv p1 p2 =
  match (is_infinity cv p1, is_infinity cv p2) with
  | true, true -> true
  | true, false | false, true -> false
  | false, false ->
      let f = cv.fp in
      let sc = Domain.DLS.get cv.scratch in
      let z1z1 = sc.(0) and z2z2 = sc.(1) and a = sc.(2) and b = sc.(3) and t = sc.(4) in
      Modring.sqr_into f z1z1 p1.z;
      Modring.sqr_into f z2z2 p2.z;
      Modring.mul_into f a p1.x z2z2;
      Modring.mul_into f b p2.x z1z1;
      Modring.equal f a b
      &&
      (Modring.mul_into f t p2.z z2z2;
       Modring.mul_into f a p1.y t;
       Modring.mul_into f t p1.z z1z1;
       Modring.mul_into f b p2.y t;
       Modring.equal f a b)

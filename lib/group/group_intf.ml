(** The abstract prime-order group the framework is built on.

    The paper needs a multiplicative group [G_q] of prime order [q] in
    which the decisional Diffie–Hellman problem is hard (§IV-B), with two
    concrete families: quadratic residues modulo a safe prime ("DL") and
    a prime-order elliptic-curve subgroup ("ECC").

    Every implementation counts group operations ([mul] and the operations
    a [pow] expands to), which is the cost metric of the paper's §VI-B
    analysis; the benchmark harness reads {!val-op_count}. *)

open Ppgr_bigint
open Ppgr_rng

module type GROUP = sig
  val name : string

  val security_bits : int
  (** Equivalent symmetric security level (80/112/128) per the NIST
      guidance the paper cites. *)

  type element

  val order : Bigint.t
  (** The prime order [q] of the group. *)

  val generator : element
  val identity : element
  val mul : element -> element -> element
  val inv : element -> element

  val pow : element -> Bigint.t -> element
  (** [pow x e] for any integer [e] (reduced modulo {!order}). *)

  val pow_gen : Bigint.t -> element
  (** [pow_gen e = pow generator e].  Served from a cached fixed-base
      table for the generator (built lazily on first use), so repeated
      generator exponentiations cost a fraction of a variable-base
      {!pow}. *)

  type powtable
  (** Precomputed fixed-base window table for one base element.
      Building the table costs a few variable-base exponentiations'
      worth of group multiplications (every one ticks the op counter);
      each subsequent {!pow_table} call then needs no squarings at all,
      roughly a 4-5x multiplication cut at 1024-bit sizes. *)

  val powtable : element -> powtable
  (** [powtable x] precomputes the fixed-base table for [x]. *)

  val pow_table : powtable -> Bigint.t -> element
  (** [pow_table t e = pow x e] where [t = powtable x]; any integer [e]
      (reduced modulo {!order}). *)

  val pow2 : element -> Bigint.t -> element -> Bigint.t -> element
  (** [pow2 a e b f = mul (pow a e) (pow b f)] via Shamir's trick
      (interleaved wNAF with a shared squaring chain): ~1.3x the cost of
      one exponentiation instead of 2x. *)

  val equal : element -> element -> bool
  val is_identity : element -> bool

  val to_bytes : element -> Bytes.t
  (** Fixed-length canonical encoding ({!element_bytes} bytes). *)

  val to_bytes_batch : element array -> Bytes.t array
  (** [to_bytes_batch a] equals [Array.map to_bytes a], but families with
      a projective internal representation amortize the normalization:
      the EC family converts the whole batch Jacobian→affine with one
      Montgomery batch inversion instead of one field inversion per
      point.  The serializers use it for every multi-ciphertext wire
      message. *)

  val of_bytes : Bytes.t -> element option
  (** Decode and validate group membership. *)

  val element_bytes : int
  (** Serialized size; doubles as the ciphertext-size unit [S_c] in the
      paper's communication analysis. *)

  val pp : Format.formatter -> element -> unit

  val random_scalar : Rng.t -> Bigint.t
  (** Uniform in [[1, q-1]]. *)

  val op_count : unit -> int
  (** Group multiplications performed since the last reset. *)

  val reset_op_count : unit -> unit

  val op_snapshot : unit -> int
  (** Current absolute multiplication count, for delta accounting that
      must not disturb concurrent readers the way a reset would. *)

  val ops_since : int -> int
  (** [ops_since s] is the multiplications performed since the
      {!op_snapshot} that returned [s]. *)

  val probes : (string * (unit -> int)) list
  (** Family-specific cost counters beyond group multiplications, as
      [(name, read)] pairs for the observability probe registry — e.g.
      the EC family's field-inversion count (where batch normalization
      shows up).  Empty when the family has nothing extra to report. *)
end

type group = (module GROUP)

(** Width-4 signed sliding-window (wNAF) recoding of a non-negative
    exponent: digits in {0, ±1, ±3, ±5, ±7}, most significant first.
    Shared by both group families' [pow]. *)
let wnaf4 (e : Bigint.t) : int list =
  if Bigint.sign e < 0 then invalid_arg "wnaf4: negative exponent";
  let digits = ref [] in
  let e = ref e in
  while not (Bigint.is_zero !e) do
    if Bigint.is_odd !e then begin
      (* Centered remainder modulo 16 in [-8, 8). *)
      let m = Bigint.to_int_exn (Bigint.logand !e (Bigint.of_int 15)) in
      let d = if m >= 8 then m - 16 else m in
      digits := d :: !digits;
      e := Bigint.sub !e (Bigint.of_int d)
    end
    else digits := 0 :: !digits;
    e := Bigint.shift_right !e 1
  done;
  !digits

(** Allocation-free wNAF-4 recoding into a caller buffer: writes the
    digits of [wnaf4 e] into [dst] LEAST significant first and returns
    the digit count.  [dst] must hold at least [Bigint.numbits e + 1]
    entries (a negative top digit can push one carry digit past the
    bit length).

    The list recoding above repeatedly subtracts the centered remainder
    and halves a shrinking bigint; here the still-unconsumed value is
    represented as [(e >> i) + c] for a small int carry [c], so each
    step needs only [Bigint.testbit].  The carry is bounded: |c'| <=
    (1 + |c| + 7) / 2, which from 0 climbs no higher than 7, so while
    [i < numbits e - 4] the true value [(e >> i) + c >= 16 - 7 > 0] and
    the list version could not have terminated yet.  The final <= 4 top
    bits plus carry fit a native int and finish in a plain small-int
    loop, which also supplies the exact termination condition (value =
    0) — a naive "run to the top bit" loop would emit spurious trailing
    zero digits and break digit-count parity with {!wnaf4}. *)
let wnaf4_into (e : Bigint.t) (dst : int array) : int =
  if Bigint.sign e < 0 then invalid_arg "wnaf4_into: negative exponent";
  let nb = Bigint.numbits e in
  let n = ref 0 in
  let c = ref 0 in
  let i = ref 0 in
  while !i < nb - 4 do
    let b0 = if Bigint.testbit e !i then 1 else 0 in
    if (b0 + !c) land 1 = 0 then begin
      dst.(!n) <- 0;
      c := (b0 + !c) asr 1
    end
    else begin
      let low4 =
        b0
        lor (if Bigint.testbit e (!i + 1) then 2 else 0)
        lor (if Bigint.testbit e (!i + 2) then 4 else 0)
        lor if Bigint.testbit e (!i + 3) then 8 else 0
      in
      let m = (low4 + !c) land 15 in
      let d = if m >= 8 then m - 16 else m in
      dst.(!n) <- d;
      c := (b0 + !c - d) asr 1
    end;
    incr n;
    incr i
  done;
  (* Remaining value (e >> i) + c fits a native int: materialize and
     finish small. *)
  let top = ref 0 in
  let j = ref (nb - 1) in
  while !j >= !i do
    top := (!top lsl 1) lor if Bigint.testbit e !j then 1 else 0;
    decr j
  done;
  let r = ref (!top + !c) in
  while !r <> 0 do
    if !r land 1 = 1 then begin
      let m = !r land 15 in
      let d = if m >= 8 then m - 16 else m in
      dst.(!n) <- d;
      r := (!r - d) asr 1
    end
    else begin
      dst.(!n) <- 0;
      r := !r asr 1
    end;
    incr n
  done;
  !n

(** Aligned wNAF-4 recodings of two non-negative exponents, most
    significant first, for Shamir's simultaneous exponentiation: the
    shorter recoding is left-padded with zero digits so one squaring
    chain serves both. *)
let wnaf4_pair e f =
  let da = wnaf4 e and db = wnaf4 f in
  let la = List.length da and lb = List.length db in
  let pad k l = if k <= 0 then l else List.init k (fun _ -> 0) @ l in
  List.combine (pad (lb - la) da) (pad (la - lb) db)

(** Allocation-free {!wnaf4_pair}: recodes both exponents into the two
    caller buffers (least significant first, as {!wnaf4_into}), zero-
    fills the shorter one up to the longer, and returns the shared
    length.  Zero-filling high slots is exactly the left-padding of the
    list version read in reverse. *)
let wnaf4_pair_into e f (da : int array) (db : int array) : int =
  let la = wnaf4_into e da and lb = wnaf4_into f db in
  let len = Stdlib.max la lb in
  Array.fill da la (len - la) 0;
  Array.fill db lb (len - lb) 0;
  len

(** The window width shared by both families' fixed-base tables. *)
let fixed_base_window = 4

(** Little-endian base-2^[window] digit decomposition of a non-negative
    exponent (the addressing scheme of the fixed-base tables). *)
let window_digits ~window (e : Bigint.t) : int array =
  if Bigint.sign e < 0 then invalid_arg "window_digits: negative exponent";
  let nb = Bigint.numbits e in
  let n = Stdlib.max 1 ((nb + window - 1) / window) in
  let mask = Bigint.of_int ((1 lsl window) - 1) in
  Array.init n (fun i ->
      Bigint.to_int_exn (Bigint.logand (Bigint.shift_right e (i * window)) mask))

(** Strip a group of its fixed-base and simultaneous-exponentiation
    machinery: [pow_gen]/[pow_table]/[pow2] fall back to plain
    variable-base [pow].  The reference implementation for property
    tests and the baseline for the bench trajectory. *)
module Naive (G : GROUP) : GROUP with type element = G.element = struct
  let name = G.name ^ "-naive"
  let security_bits = G.security_bits

  type element = G.element

  let order = G.order
  let generator = G.generator
  let identity = G.identity
  let mul = G.mul
  let inv = G.inv
  let pow = G.pow
  let pow_gen e = G.pow G.generator e

  type powtable = element

  let powtable x = x
  let pow_table x e = G.pow x e
  let pow2 a e b f = G.mul (G.pow a e) (G.pow b f)
  let equal = G.equal
  let is_identity = G.is_identity
  let to_bytes = G.to_bytes
  let to_bytes_batch = G.to_bytes_batch
  let of_bytes = G.of_bytes
  let element_bytes = G.element_bytes
  let pp = G.pp
  let random_scalar = G.random_scalar
  let op_count = G.op_count
  let reset_op_count = G.reset_op_count
  let op_snapshot = G.op_snapshot
  let ops_since = G.ops_since
  let probes = G.probes
end

(** Wrap an elliptic curve (prime-order base-point subgroup) as a
    {!Group_intf.GROUP}.  A "group multiplication" in the op counter is a
    point addition or doubling, the unit of the paper's ECC cost model. *)

open Ppgr_bigint
open Ppgr_rng

module Make (P : sig
  val params : Ec_curve.params
end) : Group_intf.GROUP = struct
  let cv = Ec_curve.make_curve P.params
  let name = P.params.Ec_curve.name
  let security_bits = P.params.Ec_curve.security_bits

  type element = Ec_curve.point

  let order = P.params.Ec_curve.n
  let generator = Ec_curve.base_point cv
  let identity = Ec_curve.infinity cv
  let mul a b = Ec_curve.add cv a b
  let inv a = Ec_curve.neg cv a
  let pow x e = Ec_curve.scalar_mul cv x e

  type powtable = Ec_curve.powtable

  let order_bits = Bigint.numbits order
  let powtable pt = Ec_curve.make_powtable cv pt ~bits:order_bits
  let pow_table t e = Ec_curve.scalar_mul_table cv t e
  let pow2 a e b f = Ec_curve.scalar_mul2 cv a e b f

  (* Cached fixed-base table for the generator, built on first use.
     Double-checked mutex memo: [Lazy.force] is unsafe under concurrent
     forcing from pool workers. *)
  let gen_table = Atomic.make None
  let gen_table_lock = Mutex.create ()

  let gen_powtable () =
    match Atomic.get gen_table with
    | Some t -> t
    | None ->
        Mutex.lock gen_table_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock gen_table_lock)
          (fun () ->
            match Atomic.get gen_table with
            | Some t -> t
            | None ->
                let t = powtable generator in
                Atomic.set gen_table (Some t);
                t)

  let pow_gen e = pow_table (gen_powtable ()) e
  let equal a b = Ec_curve.equal cv a b
  let is_identity x = Ec_curve.is_infinity cv x

  let fbytes = (Bigint.numbits P.params.Ec_curve.p + 7) / 8
  let element_bytes = 1 + (2 * fbytes)

  let affine_bytes aff =
    let out = Bytes.make element_bytes '\000' in
    (match aff with
    | None -> () (* infinity: all-zero encoding with tag 0 *)
    | Some (ax, ay) ->
        Bytes.set out 0 '\004';
        Bytes.blit (Bigint.to_bytes_be_padded fbytes ax) 0 out 1 fbytes;
        Bytes.blit (Bigint.to_bytes_be_padded fbytes ay) 0 out (1 + fbytes) fbytes);
    out

  let to_bytes pt = affine_bytes (Ec_curve.to_affine cv pt)

  (* One Montgomery batch inversion normalizes the whole array, so a
     wire message's Jacobian→affine cost is one field inversion per
     batch instead of one per point. *)
  let to_bytes_batch pts =
    Array.map affine_bytes (Ec_curve.to_affine_batch cv pts)

  let of_bytes b =
    if Bytes.length b <> element_bytes then None
    else begin
      match Bytes.get b 0 with
      | '\000' ->
          (* Strict: the identity has exactly one encoding (all zero).
             Accepting garbage after the tag would make the map
             bytes -> element non-injective on valid inputs. *)
          let rec all_zero i =
            i >= element_bytes || (Bytes.get b i = '\000' && all_zero (i + 1))
          in
          if all_zero 1 then Some identity else None
      | '\004' ->
          let ax = Bigint.of_bytes_be (Bytes.sub b 1 fbytes) in
          let ay = Bigint.of_bytes_be (Bytes.sub b (1 + fbytes) fbytes) in
          let pt = Ec_curve.of_affine cv ax ay in
          if Ec_curve.on_curve cv pt then Some pt else None
      | _ -> None
    end

  let pp fmt pt =
    match Ec_curve.to_affine cv pt with
    | None -> Format.pp_print_string fmt "O"
    | Some (ax, ay) -> Format.fprintf fmt "(%a, %a)" Bigint.pp ax Bigint.pp ay

  let random_scalar rng = Bigint.succ (Rng.bigint_below rng (Bigint.pred order))
  let op_count () = Ppgr_exec.Meter.read cv.Ec_curve.ops
  let reset_op_count () = Ppgr_exec.Meter.reset cv.Ec_curve.ops
  let op_snapshot () = Ppgr_exec.Meter.snapshot cv.Ec_curve.ops
  let ops_since s = Ppgr_exec.Meter.since cv.Ec_curve.ops s

  let probes =
    [ ("field_invs", fun () -> Ppgr_exec.Meter.read cv.Ec_curve.invs) ]
end

let of_params params : Group_intf.group =
  (module Make (struct
    let params = params
  end))

let ecc_160 () = of_params Ec_params.secp160r1
let ecc_192 () = of_params Ec_params.secp192r1
let ecc_224 () = of_params Ec_params.secp224r1
let ecc_256 () = of_params Ec_params.secp256r1
let ecc_tiny () = of_params (Ec_params.tiny ())

(** Global counter of full-size exponentiations (exponents on the order
    of the group size λ).

    Group-multiplication counts measured on a small test group do not
    transfer to a production group directly: the mults hidden inside a
    full exponentiation scale with λ.  The evaluation harness therefore
    records exponentiations separately — call sites in the ElGamal and
    Schnorr layers tick this meter — and predicts a production group's
    per-party multiplications as

    [exps * mults_per_exp(target) + (mults_test - exps * mults_per_exp(test))]

    where both [mults_per_exp] factors are measured.  Constant-size
    exponentiations (e.g. scaling a ciphertext by a small circuit
    constant) are deliberately not ticked; their cost is λ-independent
    and stays in the plain multiplication count.

    Accounting with the exponentiation engine: a fixed-base
    [pow_table]/[pow_gen] call still counts as {e one} logical
    exponentiation and a fused [pow2] (Shamir) call as one (two legs at
    half each), even though both expand into fewer group
    multiplications than a variable-base [pow] — the meter tracks the
    λ-scaled workload of the protocol, not the micro-optimisation
    level.  Fixed-base table construction is ticked per group
    multiplication on the group's own op counter and never here. *)

let full_exps = Ppgr_exec.Meter.create ()
let tick () = Ppgr_exec.Meter.incr full_exps
let tick_n k = Ppgr_exec.Meter.add full_exps k
let count () = Ppgr_exec.Meter.read full_exps
let reset () = Ppgr_exec.Meter.reset full_exps

type snapshot = Ppgr_exec.Meter.snapshot

let snapshot () = Ppgr_exec.Meter.snapshot full_exps
let since s = Ppgr_exec.Meter.since full_exps s

(* Magnitude (unsigned) arbitrary-precision arithmetic on little-endian
   arrays of 61-bit limbs stored in native (63-bit immediate) ints.
   This module is internal to [ppgr_bigint]; the signed public interface
   is {!Bigint}.

   Invariant: a magnitude is normalized, i.e. it has no most-significant
   zero limb.  Zero is the empty array.

   Limb width.  A limb carries 61 payload bits.  Products of two limbs
   are formed from a 31/30 half-split (31x31-, 31x30- and 30x30-bit
   partial products all fit a native int), and 61 is the widest payload
   for which the recombination and the hot-loop accumulators stay exact:
   the cross term [a0*b1 + a1*b0] of the split fits without its own
   carry step, and a triple sum [limb + limb + carry] stays below 2^63,
   so the schoolbook/Montgomery inner loops resolve each step with a
   single mask/shift.  Compared to the previous 26-bit layout this
   halves the limb count at every modulus size used by the protocol
   (DL-1024 drops from 40 limbs to 17) and quarters the inner-loop trip
   count of a multiplication.

   Division is the one operation that cannot run at this width: Knuth's
   algorithm D estimates quotient digits from a two-digit numerator,
   which must fit a native int, so {!divmod} repacks its operands onto
   an internal base-2^31 digit domain.  The repack is O(n) and division
   sits far off every hot path (the Montgomery layer avoids it
   entirely). *)

let base_bits = 61
let base = 1 lsl base_bits
let mask = base - 1

(* Half-split constants for limb products: a limb is [a1 * 2^31 + a0]
   with [a0] 31 bits wide and [a1] 30 bits wide. *)
let m31 = (1 lsl 31) - 1
let m30 = (1 lsl 30) - 1

let zero : int array = [||]

let is_zero (a : int array) = Array.length a = 0

let normalize (a : int array) =
  let n = Array.length a in
  let rec top i = if i > 0 && a.(i - 1) = 0 then top (i - 1) else i in
  let t = top n in
  if t = n then a else Array.sub a 0 t

(* Number of significant bits in a limb value (0 for 0). *)
let bits_of_limb v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let numbits (a : int array) =
  let n = Array.length a in
  if n = 0 then 0 else ((n - 1) * base_bits) + bits_of_limb a.(n - 1)

let of_int (v : int) =
  if v < 0 then invalid_arg "Mag.of_int: negative";
  if v = 0 then zero
  else begin
    let rec count v acc = if v = 0 then acc else count (v lsr base_bits) (acc + 1) in
    let n = count v 0 in
    let a = Array.make n 0 in
    let rec fill i v =
      if v <> 0 then begin
        a.(i) <- v land mask;
        fill (i + 1) (v lsr base_bits)
      end
    in
    fill 0 v;
    a
  end

(* Largest int representable without overflow concern: up to 62 bits. *)
let to_int_opt (a : int array) =
  if numbits a > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length a - 1 downto 0 do
      v := (!v lsl base_bits) lor a.(i)
    done;
    Some !v
  end

(* Explicit loop: a local [let rec] closure heap-allocates on every
   call, and this sits on the group layer's zero-allocation fast path
   (the canonical-exponent [in_range] test runs one compare per
   exponentiation). *)
let compare (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let i = ref (la - 1) in
    while !i >= 0 && a.(!i) = b.(!i) do
      decr i
    done;
    if !i < 0 then 0 else Stdlib.compare a.(!i) b.(!i)
  end

let equal a b = compare a b = 0

let copy = Array.copy

let add (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let lmax = max la lb in
  let r = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(lmax) <- !carry;
  normalize r

(* [sub a b] requires [a >= b]. *)
let sub (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  assert (compare a b >= 0);
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    r.(i) <- d land mask;
    borrow := (d lsr base_bits) land 1
  done;
  assert (!borrow = 0);
  normalize r

let add_int a v = add a (of_int v)
let sub_int a v = sub a (of_int v)

(* O(n) scan multiplying by a single limb-sized constant.  The per-limb
   product is recombined from the half-split; the running carry stays
   below [base], so each step is one masked add. *)
let mul_int (a : int array) (v : int) =
  if v < 0 || v > mask then invalid_arg "Mag.mul_int: limb out of range";
  if v = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let v0 = v land m31 and v1 = v lsr 31 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      let a0 = ai land m31 and a1 = ai lsr 31 in
      let p00 = a0 * v0 and p11 = a1 * v1 in
      let mid = (a0 * v1) + (a1 * v0) in
      let lop = p00 + ((mid land m30) lsl 31) in
      let s = (lop land mask) + !carry in
      r.(i) <- s land mask;
      carry := (p11 lsl 1) + (mid lsr 30) + (lop lsr base_bits) + (s lsr base_bits)
    done;
    r.(la) <- !carry;
    normalize r
  end

let mul_schoolbook (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let a0 = ai land m31 and a1 = ai lsr 31 in
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let bj = Array.unsafe_get b j in
          let b0 = bj land m31 and b1 = bj lsr 31 in
          let p00 = a0 * b0 and p11 = a1 * b1 in
          let mid = (a0 * b1) + (a1 * b0) in
          let lop = p00 + ((mid land m30) lsl 31) in
          (* r.(i+j) + lo + carry < 3 * 2^61 < 2^63: exact. *)
          let s = Array.unsafe_get r (i + j) + (lop land mask) + !carry in
          Array.unsafe_set r (i + j) (s land mask);
          carry :=
            (p11 lsl 1) + (mid lsr 30) + (lop lsr base_bits) + (s lsr base_bits)
        done;
        let rec prop k c =
          if c <> 0 then begin
            let p = r.(k) + c in
            r.(k) <- p land mask;
            prop (k + 1) (p lsr base_bits)
          end
        in
        prop (i + lb) !carry
      end
    done;
    normalize r
  end

let karatsuba_cutoff = ref 24

(* Split [a] at limb [k] into (low, high). *)
let split_at (a : int array) k =
  let la = Array.length a in
  if la <= k then (normalize (copy a), zero)
  else (normalize (Array.sub a 0 k), normalize (Array.sub a k (la - k)))

let shift_limbs (a : int array) k =
  if is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

let rec mul (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if min la lb < !karatsuba_cutoff then mul_schoolbook a b
  else begin
    let k = (max la lb + 1) / 2 in
    let a0, a1 = split_at a k in
    let b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end

let shift_left (a : int array) bits =
  if bits < 0 then invalid_arg "Mag.shift_left: negative";
  if is_zero a || bits = 0 then normalize (copy a)
  else begin
    let limb_shift = bits / base_bits in
    let bit_shift = bits mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    if bit_shift = 0 then Array.blit a 0 r limb_shift la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let ai = a.(i) in
        r.(i + limb_shift) <- ((ai lsl bit_shift) land mask) lor !carry;
        carry := ai lsr (base_bits - bit_shift)
      done;
      r.(la + limb_shift) <- !carry
    end;
    normalize r
  end

let shift_right (a : int array) bits =
  if bits < 0 then invalid_arg "Mag.shift_right: negative";
  if is_zero a || bits = 0 then normalize (copy a)
  else begin
    let limb_shift = bits / base_bits in
    let bit_shift = bits mod base_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let ln = la - limb_shift in
      let r = Array.make ln 0 in
      if bit_shift = 0 then Array.blit a limb_shift r 0 ln
      else begin
        for i = 0 to ln - 1 do
          let lo = a.(i + limb_shift) lsr bit_shift in
          let hi =
            if i + limb_shift + 1 < la then
              (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land mask
            else 0
          in
          r.(i) <- lo lor hi
        done
      end;
      normalize r
    end
  end

let testbit (a : int array) i =
  let limb = i / base_bits in
  if limb >= Array.length a then false
  else (a.(limb) lsr (i mod base_bits)) land 1 = 1

(* Bitwise operations (used on non-negative values only). *)
let logand a b =
  let n = min (Array.length a) (Array.length b) in
  normalize (Array.init n (fun i -> a.(i) land b.(i)))

let logor a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  normalize
    (Array.init n (fun i ->
         (if i < la then a.(i) else 0) lor if i < lb then b.(i) else 0))

let logxor a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  normalize
    (Array.init n (fun i ->
         (if i < la then a.(i) else 0) lxor if i < lb then b.(i) else 0))

(* Division by a single small constant: each limb is consumed as a
   30-bit high half then a 31-bit low half so the running numerator
   [rem * 2^k + half] never exceeds 62 bits for divisors below 2^31. *)
let divmod_int (a : int array) (v : int) =
  if v <= 0 || v > m31 then invalid_arg "Mag.divmod_int: divisor out of range";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let ai = a.(i) in
    let hi = ai lsr 31 and lo = ai land m31 in
    let cur1 = (!rem lsl 30) lor hi in
    let q1 = cur1 / v in
    let cur2 = ((cur1 mod v) lsl 31) lor lo in
    q.(i) <- (q1 lsl 31) lor (cur2 / v);
    rem := cur2 mod v
  done;
  (normalize q, !rem)

(* ---- Knuth Algorithm D over an internal base-2^31 digit domain. ---- *)

let digit_bits = 31
let digit_mask = m31

(* Repack 61-bit limbs into little-endian base-2^31 digits. *)
let to_digits31 (a : int array) =
  let nb = numbits a in
  let nd = (nb + digit_bits - 1) / digit_bits in
  let la = Array.length a in
  Array.init nd (fun k ->
      let p = digit_bits * k in
      let i = p / base_bits and off = p mod base_bits in
      let v = a.(i) lsr off in
      let v =
        if off + digit_bits > base_bits && i + 1 < la then
          v lor (a.(i + 1) lsl (base_bits - off))
        else v
      in
      v land digit_mask)

(* Inverse repack; the result is normalized. *)
let of_digits31 (d : int array) =
  let nd = Array.length d in
  let nl = ((nd * digit_bits) + base_bits - 1) / base_bits in
  let a = Array.make (Stdlib.max nl 1) 0 in
  for j = 0 to nl - 1 do
    let start = base_bits * j in
    let i0 = start / digit_bits and off = start mod digit_bits in
    let v = ref (if i0 < nd then d.(i0) lsr off else 0) in
    let filled = ref (digit_bits - off) in
    let i = ref (i0 + 1) in
    while !filled < base_bits && !i < nd do
      v := !v lor (d.(!i) lsl !filled);
      filled := !filled + digit_bits;
      incr i
    done;
    a.(j) <- !v land mask
  done;
  normalize a

(* Knuth Algorithm D.  Requires a divisor of at least two base-2^31
   digits (the dispatch in {!divmod} sends smaller divisors to
   {!divmod_int}). *)
let divmod_knuth (a : int array) (b : int array) =
  if compare a b < 0 then (zero, normalize (copy a))
  else begin
    let u0 = to_digits31 a and v0 = to_digits31 b in
    let n = Array.length v0 in
    assert (n >= 2);
    (* Normalize: shift so the top digit of the divisor has its high bit
       (of the 31-bit digit) set. *)
    let s = digit_bits - bits_of_limb v0.(n - 1) in
    let shl (x : int array) =
      let lx = Array.length x in
      let r = Array.make (lx + 1) 0 in
      if s = 0 then Array.blit x 0 r 0 lx
      else begin
        let carry = ref 0 in
        for i = 0 to lx - 1 do
          r.(i) <- ((x.(i) lsl s) land digit_mask) lor !carry;
          carry := x.(i) lsr (digit_bits - s)
        done;
        r.(lx) <- !carry
      end;
      r
    in
    let v = shl v0 in
    (* The divisor's top digit cannot overflow its width under the
       normalizing shift. *)
    assert (v.(n) = 0);
    let u = shl u0 in
    let lu = if u.(Array.length u - 1) = 0 then Array.length u - 1 else Array.length u in
    let m = Stdlib.max 0 (lu - n) in
    (* Work array with one extra high digit. *)
    let w = Array.make (lu + 1) 0 in
    Array.blit u 0 w 0 lu;
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) in
    let vsec = v.(n - 2) in
    for j = m downto 0 do
      let num = (w.(j + n) lsl digit_bits) lor w.(j + n - 1) in
      let qhat = ref (num / vtop) in
      let rhat = ref (num mod vtop) in
      if !qhat > digit_mask then begin
        qhat := digit_mask;
        rhat := num - (!qhat * vtop)
      end;
      let continue = ref true in
      while !continue && !rhat <= digit_mask do
        if !qhat * vsec > (!rhat lsl digit_bits) lor w.(j + n - 2) then begin
          decr qhat;
          rhat := !rhat + vtop
        end else continue := false
      done;
      (* Multiply and subtract: w[j..j+n] -= qhat * v. *)
      let borrow = ref 0 in
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr digit_bits;
        let d = w.(j + i) - (p land digit_mask) - !borrow in
        w.(j + i) <- d land digit_mask;
        borrow := (d lsr digit_bits) land 1
      done;
      let d = w.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add back. *)
        w.(j + n) <- d land digit_mask;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let sum = w.(j + i) + v.(i) + !carry2 in
          w.(j + i) <- sum land digit_mask;
          carry2 := sum lsr digit_bits
        done;
        w.(j + n) <- (w.(j + n) + !carry2) land digit_mask
      end else w.(j + n) <- d;
      q.(j) <- !qhat
    done;
    (* Denormalize the remainder digits. *)
    let r = Array.sub w 0 n in
    if s > 0 then
      for i = 0 to n - 1 do
        let hi = if i + 1 < n then (r.(i + 1) lsl (digit_bits - s)) land digit_mask else 0 in
        r.(i) <- (r.(i) lsr s) lor hi
      done;
    (of_digits31 q, of_digits31 r)
  end

let divmod (a : int array) (b : int array) =
  if is_zero b then raise Division_by_zero;
  if Array.length b = 1 && b.(0) <= m31 then begin
    let q, r = divmod_int a b.(0) in
    (q, of_int r)
  end
  else divmod_knuth a b

let rem a b = snd (divmod a b)
let div a b = fst (divmod a b)

let to_string_hex (a : int array) =
  if is_zero a then "0"
  else begin
    let nb = numbits a in
    let nhex = (nb + 3) / 4 in
    let buf = Buffer.create nhex in
    for i = nhex - 1 downto 0 do
      let nibble =
        (if testbit a ((4 * i) + 3) then 8 else 0)
        lor (if testbit a ((4 * i) + 2) then 4 else 0)
        lor (if testbit a ((4 * i) + 1) then 2 else 0)
        lor if testbit a (4 * i) then 1 else 0
      in
      Buffer.add_char buf "0123456789abcdef".[nibble]
    done;
    Buffer.contents buf
  end

let of_string_hex (s : string) =
  let acc = ref zero in
  String.iter
    (fun c ->
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | '_' -> -1
        | _ -> invalid_arg "Mag.of_string_hex: bad character"
      in
      if v >= 0 then acc := add_int (shift_left !acc 4) v)
    s;
  !acc

let to_string_dec (a : int array) =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go a =
      if not (is_zero a) then begin
        let q, r = divmod_int a 10_000_000 in
        if is_zero q then Buffer.add_string buf (string_of_int r)
        else begin
          go q;
          Buffer.add_string buf (Printf.sprintf "%07d" r)
        end
      end
    in
    go a;
    Buffer.contents buf
  end

let of_string_dec (s : string) =
  let acc = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
          acc := add_int (mul_int !acc 10) (Char.code c - Char.code '0')
      | '_' -> ()
      | _ -> invalid_arg "Mag.of_string_dec: bad character")
    s;
  !acc

(* Big-endian byte serialization. *)
let to_bytes (a : int array) =
  if is_zero a then Bytes.create 0
  else begin
    let nb = (numbits a + 7) / 8 in
    let b = Bytes.create nb in
    for i = 0 to nb - 1 do
      let byte = ref 0 in
      for k = 0 to 7 do
        if testbit a ((8 * i) + k) then byte := !byte lor (1 lsl k)
      done;
      Bytes.set b (nb - 1 - i) (Char.chr !byte)
    done;
    b
  end

let of_bytes (b : Bytes.t) =
  let acc = ref zero in
  Bytes.iter (fun c -> acc := add_int (shift_left !acc 8) (Char.code c)) b;
  !acc

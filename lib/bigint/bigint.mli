(** Arbitrary-precision signed integers.

    A from-scratch replacement for Zarith sufficient for the cryptographic
    needs of this repository: sign-magnitude representation over 61-bit
    limbs in native ints, with schoolbook/Karatsuba multiplication, Knuth
    division, modular arithmetic and (de)serialization.

    All values are immutable.  Division truncates toward zero, matching
    OCaml's native [/] and [mod]. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int_opt : t -> int option
(** [None] if the value does not fit in 62 bits plus sign. *)

val to_int_exn : t -> int
(** @raise Invalid_argument if out of native range. *)

val of_string : string -> t
(** Decimal, with optional leading [-] and [0x]-prefixed hexadecimal. *)

val to_string : t -> string
(** Decimal rendering. *)

val to_string_hex : t -> string
(** Lower-case hexadecimal, no prefix, [-] for negatives. *)

val of_bytes_be : Bytes.t -> t
(** Big-endian unsigned bytes. *)

val to_bytes_be : t -> Bytes.t
(** Big-endian minimal-length bytes of the absolute value.
    @raise Invalid_argument on negative input. *)

val to_bytes_be_padded : int -> t -> Bytes.t
(** [to_bytes_be_padded len v] left-pads with zero bytes to [len] bytes.
    @raise Invalid_argument if [v] needs more than [len] bytes or is
    negative. *)

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_even : t -> bool
val is_odd : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** Truncated division: quotient rounds toward zero, remainder has the
    sign of the dividend.  @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: remainder is always in [0, |divisor|). *)

val erem : t -> t -> t
(** Euclidean (non-negative) remainder. *)

val in_range : t -> t -> bool
(** [in_range v m] is [0 <= v < m] — whether [v] is already a canonical
    residue mod [m], i.e. [erem v m] would return [v] unchanged.
    Allocation-free (sign test plus one magnitude compare); the group
    layer uses it to skip the Euclidean division on already-reduced
    exponents and bases. *)

val add_int : t -> int -> t
val mul_int : t -> int -> t

(** {1 Bit operations}

    Bitwise operations view values as non-negative bit strings and raise
    [Invalid_argument] on negative operands (two's complement semantics
    are never needed in this code base). *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val testbit : t -> int -> bool

val numbits : t -> int
(** Bits in the absolute value; [numbits zero = 0]. *)

val nth_bit_weight : int -> t
(** [nth_bit_weight k] is [2^k]. *)

val bits_of : t -> width:int -> int array
(** Little-endian bit decomposition of a non-negative value, padded or
    truncated to [width] entries, each 0 or 1. *)

val of_bits : int array -> t
(** Inverse of {!bits_of} (little-endian 0/1 array). *)

(** {1 Number theory} *)

val gcd : t -> t -> t

val egcd : t -> t -> t * t * t
(** [egcd a b = (g, u, v)] with [g = gcd a b] and [u*a + v*b = g]. *)

val invmod : t -> t -> t
(** [invmod a m] is the inverse of [a] modulo [m].
    @raise Division_by_zero if not invertible. *)

val powmod : t -> t -> t -> t
(** [powmod b e m] is [b^e mod m] for [e >= 0], [m > 0].  Uses Montgomery
    exponentiation for odd moduli. *)

val pow : t -> int -> t
(** Small exact power. *)

val jacobi : t -> t -> int
(** Jacobi symbol [(a/n)] for odd positive [n]. *)

(** {1 Operation counters}

    Global counters for multiplications/divisions used by the evaluation
    harness to report analytic costs; see DESIGN.md §4. *)

val mul_count : unit -> int
val reset_counters : unit -> unit

(** {1 Pretty printing} *)

val pp : Format.formatter -> t -> unit

(** {1 Modular rings}

    Montgomery-form residue arithmetic modulo a fixed odd modulus.
    Elements live in an opaque Montgomery representation so that repeated
    multiplications avoid division entirely; this is the workhorse of the
    DL group and the elliptic-curve base field. *)

module Modring : sig
  type ctx
  type elt

  val ctx : modulus:t -> ctx
  (** @raise Invalid_argument unless the modulus is odd and > 2. *)

  val modulus : ctx -> t

  val enter : ctx -> t -> elt
  (** Reduce (Euclidean) and convert to Montgomery form. *)

  val leave : ctx -> elt -> t
  (** Back to a canonical integer in [[0, m)]. *)

  val zero : ctx -> elt
  val one : ctx -> elt
  val of_int : ctx -> int -> elt
  val add : ctx -> elt -> elt -> elt
  val sub : ctx -> elt -> elt -> elt
  val neg : ctx -> elt -> elt
  val mul : ctx -> elt -> elt -> elt
  val sqr : ctx -> elt -> elt
  val pow : ctx -> elt -> t -> elt
  (** Exponent must be non-negative. *)

  (** {2 In-place variants}

      Allocation-free forms of the ring operations for hot loops: each
      writes its result into a caller-provided destination element, which
      may alias any operand.  Obtain destinations from {!alloc}; an [elt]
      written this way is a perfectly ordinary element afterwards. *)

  val alloc : ctx -> elt
  (** A fresh mutable element, initially zero. *)

  val copy_into : ctx -> elt -> elt -> unit
  (** [copy_into c dst src] overwrites [dst] with the value of [src]. *)

  val zero_into : ctx -> elt -> unit
  val one_into : ctx -> elt -> unit
  val add_into : ctx -> elt -> elt -> elt -> unit
  val sub_into : ctx -> elt -> elt -> elt -> unit
  val neg_into : ctx -> elt -> elt -> unit
  val double_into : ctx -> elt -> elt -> unit
  val mul_into : ctx -> elt -> elt -> elt -> unit
  val sqr_into : ctx -> elt -> elt -> unit

  val inv_into : ctx -> elt -> elt -> unit
  (** Allocation-free modular inversion (binary extended gcd on
      per-domain scratch); [dst] may alias the operand.
      @raise Division_by_zero if not invertible. *)

  val inv : ctx -> elt -> elt
  (** @raise Division_by_zero if not invertible. *)

  val equal : ctx -> elt -> elt -> bool
  val is_zero : ctx -> elt -> bool
  val is_one : ctx -> elt -> bool
  val double : ctx -> elt -> elt
  val mul_small : ctx -> elt -> int -> elt
  (** Multiply by a small non-negative integer constant. *)
end

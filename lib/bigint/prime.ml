type rand = Bigint.t -> Bigint.t

let small_primes =
  (* Sieve of Eratosthenes below 1000, computed once at load. *)
  let limit = 1000 in
  let sieve = Array.make (limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to limit do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= limit do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  let out = ref [] in
  for i = limit downto 2 do
    if sieve.(i) then out := i :: !out
  done;
  Array.of_list !out

(* One Miller-Rabin round with witness [a]; [n - 1 = d * 2^s], d odd. *)
let mr_round n d s a =
  let open Bigint in
  let x = powmod a d n in
  if equal x one || equal x (sub n one) then true
  else begin
    let rec go x i =
      if i >= s then false
      else begin
        let x = powmod x two n in
        if equal x (sub n one) then true else go x (i + 1)
      end
    in
    go x 1
  end

let deterministic_witnesses = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ]

let is_probable_prime ?(rounds = 32) (rand : rand) n =
  let open Bigint in
  if sign n <= 0 then false
  else begin
    match to_int_opt n with
    | Some v when v < 2 -> false
    | Some v when v <= 1_000_000 ->
        (* Exact for small values via trial division. *)
        let rec go i =
          if i >= Array.length small_primes then true
          else begin
            let p = small_primes.(i) in
            if p * p > v then true
            else if v mod p = 0 then v = p
            else go (i + 1)
          end
        in
        if v mod 2 = 0 then v = 2
        else go 0
    | _ ->
        let divisible_by_small =
          Array.exists
            (fun p -> is_zero (rem n (of_int p)) && not (equal n (of_int p)))
            small_primes
        in
        if divisible_by_small then false
        else begin
          let n1 = sub n one in
          let rec split d s = if is_even d then split (shift_right d 1) (s + 1) else (d, s) in
          let d, s = split n1 0 in
          (* Witness rounds are independent, so they fan out over the
             domain pool.  The random witnesses are drawn sequentially
             from [rand] first (the stream consumption is therefore
             schedule-independent), then every round runs in parallel;
             a composite fails some round either way. *)
          let det_witnesses =
            Array.of_list
              (List.filter
                 (fun w -> compare (of_int w) n1 < 0)
                 deterministic_witnesses)
          in
          let det_ok =
            Array.for_all Fun.id
              (Ppgr_exec.Pool.parallel_map
                 (fun w -> mr_round n d s (of_int w))
                 det_witnesses)
          in
          if not det_ok then false
          else if numbits n <= 81 then true
            (* Sorenson–Webster: the 12 smallest primes are a complete
               witness set below 3.3e24 (~2^81). *)
          else begin
            let witnesses =
              Array.init rounds (fun _ -> add (rand (sub n (of_int 3))) two)
            in
            Array.for_all Fun.id
              (Ppgr_exec.Pool.parallel_map (fun a -> mr_round n d s a) witnesses)
          end
        end
  end

let next_prime rand n =
  let open Bigint in
  let start = if compare n two < 0 then two else succ n in
  let start = if is_even start && not (equal start two) then succ start else start in
  let rec go c = if is_probable_prime rand c then c else go (add c two) in
  if equal start two then two else go start

let random_prime rand ~bits =
  if bits < 2 then invalid_arg "Prime.random_prime: bits < 2";
  let open Bigint in
  let top = nth_bit_weight (bits - 1) in
  let rec go () =
    (* Uniform in [2^(bits-1), 2^bits), forced odd. *)
    let c = add top (rand top) in
    let c = if is_even c then succ c else c in
    if numbits c = bits && is_probable_prime rand c then c else go ()
  in
  go ()

let random_safe_prime rand ~bits =
  if bits < 3 then invalid_arg "Prime.random_safe_prime: bits < 3";
  let open Bigint in
  let rec go () =
    let q = random_prime rand ~bits:(bits - 1) in
    let p = succ (shift_left q 1) in
    if numbits p = bits && is_probable_prime rand p then p else go ()
  in
  go ()

let sqrt_mod rand a ~p =
  let open Bigint in
  let a = erem a p in
  if is_zero a then Some zero
  else if equal p two then Some a
  else if jacobi a p <> 1 then None
  else if to_int_exn (logand p (of_int 3)) = 3 then begin
    (* p = 3 mod 4: sqrt = a^((p+1)/4). *)
    let r = powmod a (shift_right (succ p) 2) p in
    Some r
  end
  else begin
    (* Tonelli–Shanks.  Write p - 1 = q * 2^s with q odd. *)
    let rec split q s = if is_even q then split (shift_right q 1) (s + 1) else (q, s) in
    let q, s = split (pred p) 0 in
    (* Find a quadratic non-residue z. *)
    let rec find_z () =
      let z = add (rand (sub p two)) two in
      if jacobi z p = -1 then z else find_z ()
    in
    let z = find_z () in
    let m = ref s in
    let c = ref (powmod z q p) in
    let t = ref (powmod a q p) in
    let r = ref (powmod a (shift_right (succ q) 1) p) in
    let result = ref None in
    let continue = ref true in
    while !continue do
      if equal !t one then begin
        result := Some !r;
        continue := false
      end
      else begin
        (* Least i, 0 < i < m, with t^(2^i) = 1. *)
        let rec least_i tt i =
          if equal tt one then i else least_i (rem (mul tt tt) p) (i + 1)
        in
        let i = least_i !t 0 in
        if i = !m then begin
          (* Should not happen when jacobi said residue. *)
          result := None;
          continue := false
        end
        else begin
          let b = powmod !c (nth_bit_weight (!m - i - 1)) p in
          m := i;
          c := rem (mul b b) p;
          t := rem (mul !t !c) p;
          r := rem (mul !r b) p
        end
      end
    done;
    !result
  end

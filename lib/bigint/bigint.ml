(* Signed arbitrary-precision integers: a sign-magnitude wrapper over
   {!Mag}.  Invariant: [sign = 0] iff the magnitude is empty; otherwise
   [sign] is [-1] or [1]. *)

type t = { sg : int; mg : int array }

(* A mergeable per-domain meter: bignum multiplications tick from pool
   workers during parallel hot loops, and the summed read is identical
   whether the work ran on 1 domain or many. *)
let mul_counter = Ppgr_exec.Meter.create ()
let mul_count () = Ppgr_exec.Meter.read mul_counter
let reset_counters () = Ppgr_exec.Meter.reset mul_counter

let make sg mg = if Mag.is_zero mg then { sg = 0; mg = Mag.zero } else { sg; mg }

let zero = { sg = 0; mg = Mag.zero }
let one = { sg = 1; mg = Mag.of_int 1 }
let two = { sg = 1; mg = Mag.of_int 2 }
let minus_one = { sg = -1; mg = Mag.of_int 1 }

let of_int v =
  if v = 0 then zero
  else if v > 0 then { sg = 1; mg = Mag.of_int v }
  else { sg = -1; mg = Mag.of_int (-v) }

let to_int_opt v =
  match Mag.to_int_opt v.mg with
  | None -> None
  | Some m -> Some (if v.sg < 0 then -m else m)

let to_int_exn v =
  match to_int_opt v with
  | Some i -> i
  | None -> invalid_arg "Bigint.to_int_exn: out of native range"

let sign v = v.sg
let is_zero v = v.sg = 0

let compare a b =
  if a.sg <> b.sg then Stdlib.compare a.sg b.sg
  else if a.sg >= 0 then Mag.compare a.mg b.mg
  else Mag.compare b.mg a.mg

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg v = make (-v.sg) v.mg
let abs v = make (if v.sg = 0 then 0 else 1) v.mg

let add a b =
  if a.sg = 0 then b
  else if b.sg = 0 then a
  else if a.sg = b.sg then make a.sg (Mag.add a.mg b.mg)
  else begin
    let c = Mag.compare a.mg b.mg in
    if c = 0 then zero
    else if c > 0 then make a.sg (Mag.sub a.mg b.mg)
    else make b.sg (Mag.sub b.mg a.mg)
  end

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul a b =
  Ppgr_exec.Meter.incr mul_counter;
  if a.sg = 0 || b.sg = 0 then zero
  else make (a.sg * b.sg) (Mag.mul a.mg b.mg)

let add_int a v = add a (of_int v)
let mul_int a v = mul a (of_int v)

let divmod a b =
  if b.sg = 0 then raise Division_by_zero;
  let q, r = Mag.divmod a.mg b.mg in
  (make (a.sg * b.sg) q, make a.sg r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sg >= 0 then (q, r)
  else if b.sg > 0 then (pred q, add r b)
  else (succ q, sub r b)

let erem a b = snd (ediv_rem a b)

let is_even v = Mag.is_zero v.mg || v.mg.(0) land 1 = 0
let is_odd v = not (is_even v)

let check_nonneg name v = if v.sg < 0 then invalid_arg ("Bigint." ^ name ^ ": negative operand")

let shift_left v n =
  check_nonneg "shift_left" v;
  make v.sg (Mag.shift_left v.mg n)

let shift_right v n =
  check_nonneg "shift_right" v;
  make v.sg (Mag.shift_right v.mg n)

let logand a b =
  check_nonneg "logand" a;
  check_nonneg "logand" b;
  make 1 (Mag.logand a.mg b.mg)

let logor a b =
  check_nonneg "logor" a;
  check_nonneg "logor" b;
  make 1 (Mag.logor a.mg b.mg)

let logxor a b =
  check_nonneg "logxor" a;
  check_nonneg "logxor" b;
  make 1 (Mag.logxor a.mg b.mg)

let testbit v i =
  check_nonneg "testbit" v;
  Mag.testbit v.mg i

let numbits v = Mag.numbits v.mg

let nth_bit_weight k =
  if k < 0 then invalid_arg "Bigint.nth_bit_weight: negative";
  make 1 (Mag.shift_left (Mag.of_int 1) k)

let bits_of v ~width =
  check_nonneg "bits_of" v;
  Array.init width (fun i -> if Mag.testbit v.mg i then 1 else 0)

let of_bits bits =
  let acc = ref Mag.zero in
  for i = Array.length bits - 1 downto 0 do
    acc := Mag.shift_left !acc 1;
    if bits.(i) = 1 then acc := Mag.add_int !acc 1
    else if bits.(i) <> 0 then invalid_arg "Bigint.of_bits: entry not 0/1"
  done;
  make 1 !acc

let of_string s =
  let s, sg = if String.length s > 0 && s.[0] = '-' then (String.sub s 1 (String.length s - 1), -1) else (s, 1) in
  let mg =
    if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      Mag.of_string_hex (String.sub s 2 (String.length s - 2))
    else Mag.of_string_dec s
  in
  make sg mg

let to_string v =
  if v.sg < 0 then "-" ^ Mag.to_string_dec v.mg else Mag.to_string_dec v.mg

let to_string_hex v =
  if v.sg < 0 then "-" ^ Mag.to_string_hex v.mg else Mag.to_string_hex v.mg

let of_bytes_be b = make 1 (Mag.of_bytes b)

let to_bytes_be v =
  check_nonneg "to_bytes_be" v;
  Mag.to_bytes v.mg

let to_bytes_be_padded len v =
  let b = to_bytes_be v in
  let n = Bytes.length b in
  if n > len then invalid_arg "Bigint.to_bytes_be_padded: too large";
  let r = Bytes.make len '\000' in
  Bytes.blit b 0 r (len - n) n;
  r

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let egcd a b =
  (* Iterative extended Euclid on the given (possibly negative) values. *)
  let rec go r0 r1 s0 s1 t0 t1 =
    if is_zero r1 then (r0, s0, t0)
    else begin
      let q, r2 = divmod r0 r1 in
      go r1 r2 s1 (sub s0 (mul q s1)) t1 (sub t0 (mul q t1))
    end
  in
  let g, u, v = go a b one zero zero one in
  if g.sg < 0 then (neg g, neg u, neg v) else (g, u, v)

let invmod a m =
  let m = abs m in
  let a = erem a m in
  let g, u, _ = egcd a m in
  if not (equal g one) then raise Division_by_zero;
  erem u m

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

(* ---- Montgomery exponentiation for odd moduli. ---- *)

module Mont = struct
  type ctx = {
    m : int array; (* modulus magnitude, odd *)
    w : int; (* limb count of m *)
    m' : int; (* -m^{-1} mod 2^26 *)
    r2 : int array; (* R^2 mod m, R = 2^(26w) *)
    one_m : int array; (* R mod m: Montgomery form of 1 *)
  }

  (* Inverse of [v] modulo 2^26, for odd v; Newton iteration. *)
  let inv_limb v =
    let x = ref v in
    (* x := x * (2 - v*x) doubles the number of correct bits. *)
    for _ = 1 to 5 do
      x := !x * (2 - (v * !x)) land Mag.mask
    done;
    !x land Mag.mask

  let create (m : int array) =
    assert ((not (Mag.is_zero m)) && m.(0) land 1 = 1);
    let w = Array.length m in
    let m' = Mag.mask land -inv_limb m.(0) in
    let r = Mag.shift_left (Mag.of_int 1) (Mag.base_bits * w) in
    let r2 = Mag.rem (Mag.mul r r) m in
    let one_m = Mag.rem r m in
    { m; w; m'; r2; one_m }

  (* Pad a magnitude to exactly [w] limbs. *)
  let pad ctx a =
    let la = Array.length a in
    if la = ctx.w then a
    else begin
      let r = Array.make ctx.w 0 in
      Array.blit a 0 r 0 la;
      r
    end

  (* CIOS Montgomery multiplication: result = a * b * R^{-1} mod m.
     Inputs are w-limb padded arrays; output is w-limb padded. *)
  let mont_mul ctx (a : int array) (b : int array) =
    Ppgr_exec.Meter.incr mul_counter;
    let w = ctx.w and m = ctx.m and m' = ctx.m' in
    let t = Array.make (w + 2) 0 in
    for i = 0 to w - 1 do
      let ai = a.(i) in
      let c = ref 0 in
      for j = 0 to w - 1 do
        let x = t.(j) + (ai * b.(j)) + !c in
        t.(j) <- x land Mag.mask;
        c := x lsr Mag.base_bits
      done;
      let x = t.(w) + !c in
      t.(w) <- x land Mag.mask;
      t.(w + 1) <- t.(w + 1) + (x lsr Mag.base_bits);
      let u = t.(0) * m' land Mag.mask in
      let c = ref ((t.(0) + (u * m.(0))) lsr Mag.base_bits) in
      for j = 1 to w - 1 do
        let x = t.(j) + (u * m.(j)) + !c in
        t.(j - 1) <- x land Mag.mask;
        c := x lsr Mag.base_bits
      done;
      let x = t.(w) + !c in
      t.(w - 1) <- x land Mag.mask;
      t.(w) <- t.(w + 1) + (x lsr Mag.base_bits);
      t.(w + 1) <- 0
    done;
    let res = Array.sub t 0 w in
    (* Conditional final subtraction: the value in res (plus possible
       overflow limb t.(w)) is < 2m. *)
    let ge =
      t.(w) > 0
      ||
      let rec cmp i =
        if i < 0 then true
        else if res.(i) <> m.(i) then res.(i) > m.(i)
        else cmp (i - 1)
      in
      cmp (w - 1)
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to w - 1 do
        let d = res.(i) - m.(i) - !borrow in
        if d < 0 then begin
          res.(i) <- d + Mag.base;
          borrow := 1
        end else begin
          res.(i) <- d;
          borrow := 0
        end
      done
    end;
    res

  let to_mont ctx a = mont_mul ctx (pad ctx a) (pad ctx ctx.r2)
  let from_mont ctx a = Mag.normalize (mont_mul ctx a (pad ctx (Mag.of_int 1)))

  (* Fixed 4-bit window exponentiation in Montgomery form. *)
  let powmod ctx (b : int array) (e : int array) =
    if Mag.is_zero e then Mag.of_int 1
    else begin
      let bm = to_mont ctx (Mag.rem b ctx.m) in
      let table = Array.make 16 (pad ctx ctx.one_m) in
      for i = 1 to 15 do
        table.(i) <- mont_mul ctx table.(i - 1) bm
      done;
      let nb = Mag.numbits e in
      let nwin = (nb + 3) / 4 in
      let acc = ref (pad ctx ctx.one_m) in
      for wi = nwin - 1 downto 0 do
        for _ = 1 to 4 do
          acc := mont_mul ctx !acc !acc
        done;
        let d =
          (if Mag.testbit e ((4 * wi) + 3) then 8 else 0)
          lor (if Mag.testbit e ((4 * wi) + 2) then 4 else 0)
          lor (if Mag.testbit e ((4 * wi) + 1) then 2 else 0)
          lor if Mag.testbit e (4 * wi) then 1 else 0
        in
        if d > 0 then acc := mont_mul ctx !acc table.(d)
      done;
      from_mont ctx !acc
    end
end

(* Cache Montgomery contexts per modulus: exponentiations in a protocol
   run hit the same handful of moduli thousands of times.  The cache is
   shared across domains (parallel Miller-Rabin rounds hit it), so the
   Hashtbl hides behind a mutex; the lock cost is noise next to even one
   Montgomery multiplication at cryptographic sizes. *)
let mont_cache : (string, Mont.ctx) Hashtbl.t = Hashtbl.create 8
let mont_cache_lock = Mutex.create ()

let mont_ctx_for (m : int array) =
  let key = Mag.to_string_hex m in
  Mutex.lock mont_cache_lock;
  let ctx =
    match Hashtbl.find_opt mont_cache key with
    | Some ctx -> ctx
    | None ->
        let ctx = Mont.create m in
        Hashtbl.add mont_cache key ctx;
        ctx
  in
  Mutex.unlock mont_cache_lock;
  ctx

let powmod_generic b e m =
  (* Square-and-multiply with explicit reduction; used for even moduli. *)
  let b = erem b m in
  let nb = numbits e in
  let acc = ref one in
  for i = nb - 1 downto 0 do
    acc := rem (mul !acc !acc) m;
    if testbit e i then acc := rem (mul !acc b) m
  done;
  !acc

let powmod b e m =
  if m.sg <= 0 then invalid_arg "Bigint.powmod: modulus must be positive";
  if e.sg < 0 then invalid_arg "Bigint.powmod: negative exponent";
  if equal m one then zero
  else if is_odd m && numbits m > 1 then begin
    let ctx = mont_ctx_for m.mg in
    let b = erem b m in
    make 1 (Mont.powmod ctx b.mg e.mg)
  end
  else powmod_generic b e m

let jacobi a n =
  if n.sg <= 0 || is_even n then invalid_arg "Bigint.jacobi: n must be odd positive";
  let rec go a n acc =
    let a = erem a n in
    if is_zero a then if equal n one then acc else 0
    else begin
      (* Pull out factors of two. *)
      let rec twos a acc =
        if is_even a then begin
          let nmod8 = to_int_exn (logand n (of_int 7)) in
          let acc = if nmod8 = 3 || nmod8 = 5 then -acc else acc in
          twos (shift_right a 1) acc
        end
        else (a, acc)
      in
      let a, acc = twos a acc in
      if equal a one then acc
      else begin
        (* Quadratic reciprocity. *)
        let amod4 = to_int_exn (logand a (of_int 3)) in
        let nmod4 = to_int_exn (logand n (of_int 3)) in
        let acc = if amod4 = 3 && nmod4 = 3 then -acc else acc in
        go n a acc
      end
    end
  in
  go a n 1

let pp fmt v = Format.pp_print_string fmt (to_string v)

module Modring = struct
  type ctx = { mc : Mont.ctx; m_big : t }
  type elt = int array (* Montgomery form, padded to ctx width, < m *)

  let ctx ~modulus =
    if modulus.sg <= 0 || is_even modulus || compare modulus two <= 0 then
      invalid_arg "Modring.ctx: modulus must be odd and > 2";
    { mc = mont_ctx_for modulus.mg; m_big = modulus }

  let modulus c = c.m_big

  let enter c v =
    let r = erem v c.m_big in
    Mont.to_mont c.mc r.mg

  let leave c (e : elt) = make 1 (Mont.from_mont c.mc e)

  let zero c = Array.make c.mc.Mont.w 0
  let one c = Mont.pad c.mc c.mc.Mont.one_m
  let of_int c v = enter c (of_int v)

  let equal (_ : ctx) (a : elt) (b : elt) = a = b
  let is_zero (_ : ctx) (a : elt) = Array.for_all (fun l -> l = 0) a

  (* Compare a padded array against the modulus limbs. *)
  let ge_mod c (a : elt) =
    let m = c.mc.Mont.m in
    let rec cmp i =
      if i < 0 then true
      else if a.(i) <> m.(i) then a.(i) > m.(i)
      else cmp (i - 1)
    in
    cmp (c.mc.Mont.w - 1)

  let sub_mod_inplace c (a : elt) =
    let m = c.mc.Mont.m in
    let borrow = ref 0 in
    for i = 0 to c.mc.Mont.w - 1 do
      let d = a.(i) - m.(i) - !borrow in
      if d < 0 then begin
        a.(i) <- d + Mag.base;
        borrow := 1
      end else begin
        a.(i) <- d;
        borrow := 0
      end
    done

  let add c (a : elt) (b : elt) : elt =
    let w = c.mc.Mont.w in
    let r = Array.make w 0 in
    let carry = ref 0 in
    for i = 0 to w - 1 do
      let s = a.(i) + b.(i) + !carry in
      r.(i) <- s land Mag.mask;
      carry := s lsr Mag.base_bits
    done;
    (* a + b < 2m; one conditional subtraction restores the range. *)
    if !carry > 0 || ge_mod c r then sub_mod_inplace c r;
    r

  let sub c (a : elt) (b : elt) : elt =
    let w = c.mc.Mont.w in
    let m = c.mc.Mont.m in
    let r = Array.make w 0 in
    let borrow = ref 0 in
    for i = 0 to w - 1 do
      let d = a.(i) - b.(i) - !borrow in
      if d < 0 then begin
        r.(i) <- d + Mag.base;
        borrow := 1
      end else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    if !borrow > 0 then begin
      let carry = ref 0 in
      for i = 0 to w - 1 do
        let s = r.(i) + m.(i) + !carry in
        r.(i) <- s land Mag.mask;
        carry := s lsr Mag.base_bits
      done
    end;
    r

  let neg c (a : elt) = if is_zero c a then Array.copy a else sub c (zero c) a
  let mul c (a : elt) (b : elt) : elt = Mont.mont_mul c.mc a b
  let sqr c (a : elt) = mul c a a
  let double c (a : elt) = add c a a

  let mul_small c (a : elt) k =
    if k < 0 then invalid_arg "Modring.mul_small: negative constant";
    (* Binary double-and-add on the modular representatives. *)
    let rec go acc base k =
      if k = 0 then acc
      else begin
        let acc = if k land 1 = 1 then add c acc base else acc in
        go acc (double c base) (k lsr 1)
      end
    in
    go (zero c) a k

  let pow c (a : elt) e =
    if e.sg < 0 then invalid_arg "Modring.pow: negative exponent";
    let nb = numbits e in
    let acc = ref (one c) in
    for i = nb - 1 downto 0 do
      acc := mul c !acc !acc;
      if testbit e i then acc := mul c !acc a
    done;
    !acc

  let inv c (a : elt) =
    let v = leave c a in
    enter c (invmod v c.m_big)
end

(* Signed arbitrary-precision integers: a sign-magnitude wrapper over
   {!Mag}.  Invariant: [sign = 0] iff the magnitude is empty; otherwise
   [sign] is [-1] or [1]. *)

type t = { sg : int; mg : int array }

(* A mergeable per-domain meter: bignum multiplications tick from pool
   workers during parallel hot loops, and the summed read is identical
   whether the work ran on 1 domain or many. *)
let mul_counter = Ppgr_exec.Meter.create ()
let mul_count () = Ppgr_exec.Meter.read mul_counter
let reset_counters () = Ppgr_exec.Meter.reset mul_counter

let make sg mg = if Mag.is_zero mg then { sg = 0; mg = Mag.zero } else { sg; mg }

let zero = { sg = 0; mg = Mag.zero }
let one = { sg = 1; mg = Mag.of_int 1 }
let two = { sg = 1; mg = Mag.of_int 2 }
let minus_one = { sg = -1; mg = Mag.of_int 1 }

let of_int v =
  if v = 0 then zero
  else if v > 0 then { sg = 1; mg = Mag.of_int v }
  else { sg = -1; mg = Mag.of_int (-v) }

let to_int_opt v =
  match Mag.to_int_opt v.mg with
  | None -> None
  | Some m -> Some (if v.sg < 0 then -m else m)

let to_int_exn v =
  match to_int_opt v with
  | Some i -> i
  | None -> invalid_arg "Bigint.to_int_exn: out of native range"

let sign v = v.sg
let is_zero v = v.sg = 0

let compare a b =
  if a.sg <> b.sg then Stdlib.compare a.sg b.sg
  else if a.sg >= 0 then Mag.compare a.mg b.mg
  else Mag.compare b.mg a.mg

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg v = make (-v.sg) v.mg
let abs v = make (if v.sg = 0 then 0 else 1) v.mg

let add a b =
  if a.sg = 0 then b
  else if b.sg = 0 then a
  else if a.sg = b.sg then make a.sg (Mag.add a.mg b.mg)
  else begin
    let c = Mag.compare a.mg b.mg in
    if c = 0 then zero
    else if c > 0 then make a.sg (Mag.sub a.mg b.mg)
    else make b.sg (Mag.sub b.mg a.mg)
  end

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul a b =
  Ppgr_exec.Meter.incr mul_counter;
  if a.sg = 0 || b.sg = 0 then zero
  else make (a.sg * b.sg) (Mag.mul a.mg b.mg)

let add_int a v = add a (of_int v)

let mul_int a v =
  Ppgr_exec.Meter.incr mul_counter;
  if a.sg = 0 || v = 0 then zero
  else begin
    let av = Stdlib.abs v in
    let sg = if v < 0 then -a.sg else a.sg in
    if av >= 0 && av <= Mag.mask then make sg (Mag.mul_int a.mg av)
    else make sg (Mag.mul a.mg (Mag.of_int av))
  end

let divmod a b =
  if b.sg = 0 then raise Division_by_zero;
  let q, r = Mag.divmod a.mg b.mg in
  (make (a.sg * b.sg) q, make a.sg r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sg >= 0 then (q, r)
  else if b.sg > 0 then (pred q, add r b)
  else (succ q, sub r b)

let erem a b = snd (ediv_rem a b)

(* Canonical-range test [0 <= v < m], allocation-free: a sign check plus
   one magnitude compare (which itself starts with a limb-width
   compare).  The group layer's exponent paths use it to skip the
   [erem] division entirely when the exponent is already reduced —
   which in protocol code is almost always, since scalars are sampled
   in [[1, q-1]] to begin with. *)
let in_range v m = v.sg >= 0 && (v.sg = 0 || Mag.compare v.mg m.mg < 0)

let is_even v = Mag.is_zero v.mg || v.mg.(0) land 1 = 0
let is_odd v = not (is_even v)

let check_nonneg name v = if v.sg < 0 then invalid_arg ("Bigint." ^ name ^ ": negative operand")

let shift_left v n =
  check_nonneg "shift_left" v;
  make v.sg (Mag.shift_left v.mg n)

let shift_right v n =
  check_nonneg "shift_right" v;
  make v.sg (Mag.shift_right v.mg n)

let logand a b =
  check_nonneg "logand" a;
  check_nonneg "logand" b;
  make 1 (Mag.logand a.mg b.mg)

let logor a b =
  check_nonneg "logor" a;
  check_nonneg "logor" b;
  make 1 (Mag.logor a.mg b.mg)

let logxor a b =
  check_nonneg "logxor" a;
  check_nonneg "logxor" b;
  make 1 (Mag.logxor a.mg b.mg)

let testbit v i =
  check_nonneg "testbit" v;
  Mag.testbit v.mg i

let numbits v = Mag.numbits v.mg

let nth_bit_weight k =
  if k < 0 then invalid_arg "Bigint.nth_bit_weight: negative";
  make 1 (Mag.shift_left (Mag.of_int 1) k)

let bits_of v ~width =
  check_nonneg "bits_of" v;
  Array.init width (fun i -> if Mag.testbit v.mg i then 1 else 0)

let of_bits bits =
  let acc = ref Mag.zero in
  for i = Array.length bits - 1 downto 0 do
    acc := Mag.shift_left !acc 1;
    if bits.(i) = 1 then acc := Mag.add_int !acc 1
    else if bits.(i) <> 0 then invalid_arg "Bigint.of_bits: entry not 0/1"
  done;
  make 1 !acc

let of_string s =
  let s, sg = if String.length s > 0 && s.[0] = '-' then (String.sub s 1 (String.length s - 1), -1) else (s, 1) in
  let mg =
    if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      Mag.of_string_hex (String.sub s 2 (String.length s - 2))
    else Mag.of_string_dec s
  in
  make sg mg

let to_string v =
  if v.sg < 0 then "-" ^ Mag.to_string_dec v.mg else Mag.to_string_dec v.mg

let to_string_hex v =
  if v.sg < 0 then "-" ^ Mag.to_string_hex v.mg else Mag.to_string_hex v.mg

let of_bytes_be b = make 1 (Mag.of_bytes b)

let to_bytes_be v =
  check_nonneg "to_bytes_be" v;
  Mag.to_bytes v.mg

let to_bytes_be_padded len v =
  let b = to_bytes_be v in
  let n = Bytes.length b in
  if n > len then invalid_arg "Bigint.to_bytes_be_padded: too large";
  let r = Bytes.make len '\000' in
  Bytes.blit b 0 r (len - n) n;
  r

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let egcd a b =
  (* Iterative extended Euclid on the given (possibly negative) values. *)
  let rec go r0 r1 s0 s1 t0 t1 =
    if is_zero r1 then (r0, s0, t0)
    else begin
      let q, r2 = divmod r0 r1 in
      go r1 r2 s1 (sub s0 (mul q s1)) t1 (sub t0 (mul q t1))
    end
  in
  let g, u, v = go a b one zero zero one in
  if g.sg < 0 then (neg g, neg u, neg v) else (g, u, v)

let invmod a m =
  let m = abs m in
  let a = erem a m in
  let g, u, _ = egcd a m in
  if not (equal g one) then raise Division_by_zero;
  erem u m

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

(* ---- Montgomery exponentiation for odd moduli. ----

   The multiplication kernels are fully in-place: they write into a
   caller-provided destination of exactly [w] limbs and draw every
   intermediate from a per-domain scratch pack attached to the context,
   so the hot loops ([mont_mul_into], [mont_sqr_into], the whole of
   [powmod]) allocate nothing.  Contexts are cached per modulus and
   shared across domains, hence the scratch lives behind [Domain.DLS]:
   pool workers multiplying under the same modulus each get their own
   buffers.

   Limb products split each 61-bit limb into 31/30-bit halves (see the
   width discussion in mag.ml); the modulus halves are precomputed at
   context creation, the second operand's once per kernel call. *)

module Mont = struct
  (* Per-domain working memory, all fixed-width at the context's [w]. *)
  type scratch = {
    t : int array; (* w + 2: CIOS accumulator *)
    t2 : int array; (* 2w + 2: squaring accumulator *)
    h0 : int array; (* w: operand low halves *)
    h1 : int array; (* w: operand high halves *)
    tbl : int array array; (* 16 x w: powmod window table *)
    acc : int array; (* w: powmod accumulator *)
    bm : int array; (* w: powmod base in Montgomery form *)
    iu : int array; (* w + 1: binary-inversion working value *)
    iv : int array; (* w + 1: binary-inversion working value *)
    ix1 : int array; (* w + 1: binary-inversion cofactor *)
    ix2 : int array; (* w + 1: binary-inversion cofactor *)
  }

  type ctx = {
    m : int array; (* modulus, exactly w limbs, odd *)
    w : int; (* limb count of m *)
    m' : int; (* -m^{-1} mod 2^61 *)
    mh0 : int array; (* modulus low halves *)
    mh1 : int array; (* modulus high halves *)
    r2 : int array; (* R^2 mod m, R = 2^(61w); w limbs *)
    one_m : int array; (* R mod m: Montgomery form of 1; w limbs *)
    one_p : int array; (* plain 1, padded to w limbs *)
    mp : int array; (* modulus padded to w + 1 limbs (inversion width) *)
    scratch : scratch Domain.DLS.key;
  }

  (* Inverse of [v] modulo 2^61, for odd v; Newton iteration. *)
  let inv_limb v =
    let x = ref v in
    (* x := x * (2 - v*x) doubles the number of correct bits. *)
    for _ = 1 to 6 do
      x := !x * (2 - (v * !x)) land Mag.mask
    done;
    !x land Mag.mask

  let create (m0 : int array) =
    assert ((not (Mag.is_zero m0)) && m0.(0) land 1 = 1);
    let w = Array.length m0 in
    let pad a =
      let r = Array.make w 0 in
      Array.blit a 0 r 0 (Array.length a);
      r
    in
    let m = Array.copy m0 in
    let m' = Mag.mask land -inv_limb m.(0) in
    let r = Mag.shift_left (Mag.of_int 1) (Mag.base_bits * w) in
    let r2 = pad (Mag.rem (Mag.mul r r) m) in
    let one_m = pad (Mag.rem r m) in
    let scratch =
      Domain.DLS.new_key (fun () ->
          {
            t = Array.make (w + 2) 0;
            t2 = Array.make ((2 * w) + 2) 0;
            h0 = Array.make w 0;
            h1 = Array.make w 0;
            tbl = Array.init 16 (fun _ -> Array.make w 0);
            acc = Array.make w 0;
            bm = Array.make w 0;
            iu = Array.make (w + 1) 0;
            iv = Array.make (w + 1) 0;
            ix1 = Array.make (w + 1) 0;
            ix2 = Array.make (w + 1) 0;
          })
    in
    let mp = Array.make (w + 1) 0 in
    Array.blit m 0 mp 0 w;
    {
      m;
      w;
      m';
      mh0 = Array.map (fun v -> v land Mag.m31) m;
      mh1 = Array.map (fun v -> v lsr 31) m;
      r2;
      one_m;
      one_p = pad (Mag.of_int 1);
      mp;
      scratch;
    }

  (* Pad a magnitude to exactly [w] limbs. *)
  let pad ctx a =
    let la = Array.length a in
    if la = ctx.w then a
    else begin
      let r = Array.make ctx.w 0 in
      Array.blit a 0 r 0 la;
      r
    end

  let pad_into ctx (dst : int array) (a : int array) =
    let la = Array.length a in
    Array.blit a 0 dst 0 la;
    Array.fill dst la (ctx.w - la) 0

  (* Copy the final CIOS value into [dst], subtracting the modulus once
     if the accumulator (read at [off]) reached it; [extra] is the
     overflow limb above the top. *)
  let finish ctx (dst : int array) (acc : int array) off extra =
    let w = ctx.w and m = ctx.m in
    (* Closure-free comparison loop: this path must allocate nothing. *)
    let i = ref (w - 1) in
    while !i >= 0 && acc.(off + !i) = m.(!i) do
      decr i
    done;
    let ge = extra > 0 || !i < 0 || acc.(off + !i) > m.(!i) in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to w - 1 do
        let d = Array.unsafe_get acc (off + i) - Array.unsafe_get m i - !borrow in
        Array.unsafe_set dst i (d land Mag.mask);
        borrow := (d lsr 61) land 1
      done
    end
    else Array.blit acc off dst 0 w

  (* CIOS Montgomery multiplication: dst = a * b * R^{-1} mod m.
     [a], [b] and [dst] are w-limb arrays; [dst] may alias either
     operand (the result lands in scratch and is copied out last). *)
  let mont_mul_into ctx (dst : int array) (a : int array) (b : int array) =
    Ppgr_exec.Meter.incr mul_counter;
    let w = ctx.w and m' = ctx.m' in
    let s = Domain.DLS.get ctx.scratch in
    let t = s.t in
    let mh0 = ctx.mh0 and mh1 = ctx.mh1 in
    let bh0 = s.h0 and bh1 = s.h1 in
    for j = 0 to w - 1 do
      let bj = Array.unsafe_get b j in
      Array.unsafe_set bh0 j (bj land Mag.m31);
      Array.unsafe_set bh1 j (bj lsr 31)
    done;
    Array.fill t 0 (w + 2) 0;
    for i = 0 to w - 1 do
      let ai = Array.unsafe_get a i in
      let a0 = ai land Mag.m31 and a1 = ai lsr 31 in
      (* t += a_i * b *)
      let c = ref 0 in
      for j = 0 to w - 1 do
        let b0 = Array.unsafe_get bh0 j and b1 = Array.unsafe_get bh1 j in
        let p00 = a0 * b0 and p11 = a1 * b1 in
        let mid = (a0 * b1) + (a1 * b0) in
        let lop = p00 + ((mid land Mag.m30) lsl 31) in
        let s = Array.unsafe_get t j + (lop land Mag.mask) + !c in
        Array.unsafe_set t j (s land Mag.mask);
        c := (p11 lsl 1) + (mid lsr 30) + (lop lsr 61) + (s lsr 61)
      done;
      let x = Array.unsafe_get t w + !c in
      Array.unsafe_set t w (x land Mag.mask);
      Array.unsafe_set t (w + 1) (Array.unsafe_get t (w + 1) + (x lsr 61));
      (* Interleaved reduction step: t := (t + u*m) / 2^61. *)
      let t0 = Array.unsafe_get t 0 in
      let u =
        let u0 = t0 land Mag.m31 and u1 = t0 lsr 31 in
        let q0 = m' land Mag.m31 and q1 = m' lsr 31 in
        let p00 = u0 * q0 in
        let mid = (u0 * q1) + (u1 * q0) in
        (p00 + ((mid land Mag.m30) lsl 31)) land Mag.mask
      in
      let u0 = u land Mag.m31 and u1 = u lsr 31 in
      let c =
        ref
          (let b0 = Array.unsafe_get mh0 0 and b1 = Array.unsafe_get mh1 0 in
           let p00 = u0 * b0 and p11 = u1 * b1 in
           let mid = (u0 * b1) + (u1 * b0) in
           let lop = p00 + ((mid land Mag.m30) lsl 31) in
           let s = t0 + (lop land Mag.mask) in
           (p11 lsl 1) + (mid lsr 30) + (lop lsr 61) + (s lsr 61))
      in
      for j = 1 to w - 1 do
        let b0 = Array.unsafe_get mh0 j and b1 = Array.unsafe_get mh1 j in
        let p00 = u0 * b0 and p11 = u1 * b1 in
        let mid = (u0 * b1) + (u1 * b0) in
        let lop = p00 + ((mid land Mag.m30) lsl 31) in
        let s = Array.unsafe_get t j + (lop land Mag.mask) + !c in
        Array.unsafe_set t (j - 1) (s land Mag.mask);
        c := (p11 lsl 1) + (mid lsr 30) + (lop lsr 61) + (s lsr 61)
      done;
      let x = Array.unsafe_get t w + !c in
      Array.unsafe_set t (w - 1) (x land Mag.mask);
      Array.unsafe_set t w (Array.unsafe_get t (w + 1) + (x lsr 61));
      Array.unsafe_set t (w + 1) 0
    done;
    finish ctx dst t 0 t.(w)

  (* Montgomery squaring: dst = a^2 * R^{-1} mod m, computed SOS-style.
     The off-diagonal triangle is accumulated once and doubled with a
     single shift pass, then the diagonal squares land and the w
     reduction steps run over the double-width accumulator; roughly 25%
     fewer limb products than [mont_mul_into] on the same operand.
     [dst] may alias [a]. *)
  let mont_sqr_into ctx (dst : int array) (a : int array) =
    Ppgr_exec.Meter.incr mul_counter;
    let w = ctx.w and m' = ctx.m' in
    let s = Domain.DLS.get ctx.scratch in
    let t2 = s.t2 in
    let mh0 = ctx.mh0 and mh1 = ctx.mh1 in
    let ah0 = s.h0 and ah1 = s.h1 in
    for j = 0 to w - 1 do
      let aj = Array.unsafe_get a j in
      Array.unsafe_set ah0 j (aj land Mag.m31);
      Array.unsafe_set ah1 j (aj lsr 31)
    done;
    Array.fill t2 0 ((2 * w) + 2) 0;
    (* Off-diagonal triangle a_i * a_j, j > i. *)
    for i = 0 to w - 2 do
      let a0 = Array.unsafe_get ah0 i and a1 = Array.unsafe_get ah1 i in
      let c = ref 0 in
      for j = i + 1 to w - 1 do
        let b0 = Array.unsafe_get ah0 j and b1 = Array.unsafe_get ah1 j in
        let p00 = a0 * b0 and p11 = a1 * b1 in
        let mid = (a0 * b1) + (a1 * b0) in
        let lop = p00 + ((mid land Mag.m30) lsl 31) in
        let k = i + j in
        let s = Array.unsafe_get t2 k + (lop land Mag.mask) + !c in
        Array.unsafe_set t2 k (s land Mag.mask);
        c := (p11 lsl 1) + (mid lsr 30) + (lop lsr 61) + (s lsr 61)
      done;
      let k = i + w in
      let s = Array.unsafe_get t2 k + !c in
      Array.unsafe_set t2 k (s land Mag.mask);
      if s lsr 61 <> 0 then
        Array.unsafe_set t2 (k + 1) (Array.unsafe_get t2 (k + 1) + (s lsr 61))
    done;
    (* Double the triangle. *)
    let carry = ref 0 in
    for k = 0 to (2 * w) - 1 do
      let v = Array.unsafe_get t2 k in
      Array.unsafe_set t2 k (((v lsl 1) land Mag.mask) lor !carry);
      carry := v lsr 60
    done;
    (* Diagonal squares. *)
    let cb = ref 0 in
    for i = 0 to w - 1 do
      let a0 = Array.unsafe_get ah0 i and a1 = Array.unsafe_get ah1 i in
      let p00 = a0 * a0 and p11 = a1 * a1 in
      let mid = (a0 * a1) lsl 1 in
      let lop = p00 + ((mid land Mag.m30) lsl 31) in
      let hi = (p11 lsl 1) + (mid lsr 30) + (lop lsr 61) in
      let s = Array.unsafe_get t2 (2 * i) + (lop land Mag.mask) + !cb in
      Array.unsafe_set t2 (2 * i) (s land Mag.mask);
      let s2 = Array.unsafe_get t2 ((2 * i) + 1) + hi + (s lsr 61) in
      Array.unsafe_set t2 ((2 * i) + 1) (s2 land Mag.mask);
      cb := s2 lsr 61
    done;
    (* w Montgomery reduction steps over the double-width value. *)
    for i = 0 to w - 1 do
      let ti = Array.unsafe_get t2 i in
      let u =
        let u0 = ti land Mag.m31 and u1 = ti lsr 31 in
        let q0 = m' land Mag.m31 and q1 = m' lsr 31 in
        let p00 = u0 * q0 in
        let mid = (u0 * q1) + (u1 * q0) in
        (p00 + ((mid land Mag.m30) lsl 31)) land Mag.mask
      in
      let u0 = u land Mag.m31 and u1 = u lsr 31 in
      let c = ref 0 in
      for j = 0 to w - 1 do
        let b0 = Array.unsafe_get mh0 j and b1 = Array.unsafe_get mh1 j in
        let p00 = u0 * b0 and p11 = u1 * b1 in
        let mid = (u0 * b1) + (u1 * b0) in
        let lop = p00 + ((mid land Mag.m30) lsl 31) in
        let k = i + j in
        let s = Array.unsafe_get t2 k + (lop land Mag.mask) + !c in
        Array.unsafe_set t2 k (s land Mag.mask);
        c := (p11 lsl 1) + (mid lsr 30) + (lop lsr 61) + (s lsr 61)
      done;
      let k = ref (i + w) in
      let c = ref !c in
      while !c <> 0 do
        let s = Array.unsafe_get t2 !k + !c in
        Array.unsafe_set t2 !k (s land Mag.mask);
        c := s lsr 61;
        incr k
      done
    done;
    finish ctx dst t2 w t2.(2 * w)

  let mont_mul ctx (a : int array) (b : int array) =
    let dst = Array.make ctx.w 0 in
    mont_mul_into ctx dst a b;
    dst

  (* ---- Allocation-free modular inversion: binary extended gcd. ----

     HAC 14.61 specialised to an odd modulus, run entirely in the four
     (w+1)-limb scratch buffers: halvings, compares and subtractions on
     little-endian limb vectors, with the cofactors kept in [0, m) by
     adding the modulus before an odd halving or after an underflowing
     subtraction.  ~2·numbits(m) iterations of O(w) limb work — the
     same ballpark as the old Euclidean [invmod] but with zero heap
     traffic, which is what lets the group layer's signed-digit
     exponentiation keep its lazy inverse cache allocation-free.

     The helpers below are closure-free plain loops (see the finish
     comment: this path must not allocate). *)

  let buf_is_zero (a : int array) len =
    let i = ref 0 in
    while !i < len && a.(!i) = 0 do
      incr i
    done;
    !i = len

  let buf_is_one (a : int array) len =
    a.(0) = 1
    &&
    let i = ref 1 in
    while !i < len && a.(!i) = 0 do
      incr i
    done;
    !i = len

  (* a >>= 1 (little-endian). *)
  let buf_shr1 (a : int array) len =
    for i = 0 to len - 2 do
      Array.unsafe_set a i
        ((Array.unsafe_get a i lsr 1)
        lor ((Array.unsafe_get a (i + 1) land 1) lsl (Mag.base_bits - 1)))
    done;
    a.(len - 1) <- a.(len - 1) lsr 1

  let buf_cmp (a : int array) (b : int array) len =
    let i = ref (len - 1) in
    while !i >= 0 && a.(!i) = b.(!i) do
      decr i
    done;
    if !i < 0 then 0 else Stdlib.compare a.(!i) b.(!i)

  (* a += b; the caller guarantees the sum fits in [len] limbs. *)
  let buf_add (a : int array) (b : int array) len =
    let carry = ref 0 in
    for i = 0 to len - 1 do
      let s = Array.unsafe_get a i + Array.unsafe_get b i + !carry in
      Array.unsafe_set a i (s land Mag.mask);
      carry := s lsr Mag.base_bits
    done

  (* a -= b; the caller guarantees a >= b. *)
  let buf_sub (a : int array) (b : int array) len =
    let borrow = ref 0 in
    for i = 0 to len - 1 do
      let d = Array.unsafe_get a i - Array.unsafe_get b i - !borrow in
      Array.unsafe_set a i (d land Mag.mask);
      borrow := (d lsr Mag.base_bits) land 1
    done

  (* dst := a^{-1} in the Montgomery domain ([a] and [dst] are
     Montgomery forms, [dst] may alias [a]).  The binary xgcd inverts
     the plain limb value v = aR mod m, giving a^{-1}R^{-2} (mod m) up
     to Montgomery scaling; two multiplications by R^2 rescale it to
     the Montgomery form of a^{-1}.
     @raise Division_by_zero if [a] is not invertible. *)
  let inv_into ctx (dst : int array) (a : int array) =
    let w = ctx.w in
    let len = w + 1 in
    let s = Domain.DLS.get ctx.scratch in
    let u = s.iu and v = s.iv and x1 = s.ix1 and x2 = s.ix2 in
    Array.blit a 0 u 0 w;
    u.(w) <- 0;
    Array.blit ctx.m 0 v 0 w;
    v.(w) <- 0;
    Array.fill x1 0 len 0;
    x1.(0) <- 1;
    Array.fill x2 0 len 0;
    if buf_is_zero u len then raise Division_by_zero;
    while (not (buf_is_one u len)) && not (buf_is_one v len) do
      (* A common factor > 1 drives one value to zero without either
         reaching one: not invertible. *)
      if buf_is_zero u len || buf_is_zero v len then raise Division_by_zero;
      while u.(0) land 1 = 0 do
        buf_shr1 u len;
        if x1.(0) land 1 = 1 then buf_add x1 ctx.mp len;
        buf_shr1 x1 len
      done;
      while v.(0) land 1 = 0 do
        buf_shr1 v len;
        if x2.(0) land 1 = 1 then buf_add x2 ctx.mp len;
        buf_shr1 x2 len
      done;
      if buf_cmp u v len >= 0 then begin
        buf_sub u v len;
        if buf_cmp x1 x2 len < 0 then buf_add x1 ctx.mp len;
        buf_sub x1 x2 len
      end
      else begin
        buf_sub v u len;
        if buf_cmp x2 x1 len < 0 then buf_add x2 ctx.mp len;
        buf_sub x2 x1 len
      end
    done;
    let r = if buf_is_one u len then x1 else x2 in
    (* r = (aR)^{-1} = a^{-1} R^{-1}; two R^2 rescalings land a^{-1} R.
       The kernels read exactly w limbs, so the (w+1)-limb buffer with
       its zero top limb is a valid operand. *)
    mont_mul_into ctx dst r ctx.r2;
    mont_mul_into ctx dst dst ctx.r2

  let to_mont ctx a = mont_mul ctx (pad ctx a) ctx.r2
  let from_mont ctx a = Mag.normalize (mont_mul ctx a ctx.one_p)

  (* Fixed 4-bit window exponentiation in Montgomery form.  Everything
     mutable lives in the per-domain scratch pack; the only allocation
     is the escaping result. *)
  let powmod ctx (b : int array) (e : int array) =
    if Mag.is_zero e then Mag.of_int 1
    else begin
      let s = Domain.DLS.get ctx.scratch in
      let b = if Mag.compare b ctx.m >= 0 then Mag.rem b ctx.m else b in
      pad_into ctx s.bm b;
      mont_mul_into ctx s.bm s.bm ctx.r2;
      (* s.bm now holds the base in Montgomery form; it is not an
         operand of any further kernel call's scratch, so the window
         table can be built straight from it. *)
      Array.blit ctx.one_m 0 s.tbl.(0) 0 ctx.w;
      for i = 1 to 15 do
        mont_mul_into ctx s.tbl.(i) s.tbl.(i - 1) s.bm
      done;
      let nb = Mag.numbits e in
      let nwin = (nb + 3) / 4 in
      let acc = s.acc in
      Array.blit ctx.one_m 0 acc 0 ctx.w;
      for wi = nwin - 1 downto 0 do
        for _ = 1 to 4 do
          mont_sqr_into ctx acc acc
        done;
        let d =
          (if Mag.testbit e ((4 * wi) + 3) then 8 else 0)
          lor (if Mag.testbit e ((4 * wi) + 2) then 4 else 0)
          lor (if Mag.testbit e ((4 * wi) + 1) then 2 else 0)
          lor if Mag.testbit e (4 * wi) then 1 else 0
        in
        if d > 0 then mont_mul_into ctx acc acc s.tbl.(d)
      done;
      (* Demont into [s.bm] (dead once the window table is built) and
         copy out at exact width: the escaping result is the single
         allocation of the whole call, already normalized, instead of
         a w-limb temporary plus a trimmed [Mag.normalize] copy. *)
      mont_mul_into ctx s.bm acc ctx.one_p;
      let top = ref (ctx.w - 1) in
      while !top >= 0 && s.bm.(!top) = 0 do
        decr top
      done;
      Array.sub s.bm 0 (!top + 1)
    end
end

(* Cache Montgomery contexts per modulus: exponentiations in a protocol
   run hit the same handful of moduli thousands of times.  The cache is
   shared across domains (parallel Miller-Rabin rounds hit it), so the
   Hashtbl hides behind a mutex; the lock cost is noise next to even one
   Montgomery multiplication at cryptographic sizes.

   In front of the Hashtbl sits a lock-free single-entry cache: a
   protocol run exponentiates against one modulus millions of times in a
   row, and the old path paid a hex-string key allocation plus a mutex
   round-trip per call.  The hot hit is a physical-equality check on the
   magnitude (the group keeps one [t] for its modulus, so [m.mg] is
   pointer-stable), with a limb compare as fallback for equal values
   from different allocations. *)
let mont_cache : (string, Mont.ctx) Hashtbl.t = Hashtbl.create 8
let mont_cache_lock = Mutex.create ()
let mont_last : (int array * Mont.ctx) option Atomic.t = Atomic.make None

let mont_ctx_for (m : int array) =
  match Atomic.get mont_last with
  | Some (key, ctx) when key == m || Mag.compare key m = 0 -> ctx
  | _ ->
      let key = Mag.to_string_hex m in
      Mutex.lock mont_cache_lock;
      let ctx =
        match Hashtbl.find_opt mont_cache key with
        | Some ctx -> ctx
        | None ->
            let ctx = Mont.create m in
            Hashtbl.add mont_cache key ctx;
            ctx
      in
      Mutex.unlock mont_cache_lock;
      Atomic.set mont_last (Some (m, ctx));
      ctx

let powmod_generic b e m =
  (* Square-and-multiply with explicit reduction; used for even moduli. *)
  let b = erem b m in
  let nb = numbits e in
  let acc = ref one in
  for i = nb - 1 downto 0 do
    acc := rem (mul !acc !acc) m;
    if testbit e i then acc := rem (mul !acc b) m
  done;
  !acc

let powmod b e m =
  if m.sg <= 0 then invalid_arg "Bigint.powmod: modulus must be positive";
  if e.sg < 0 then invalid_arg "Bigint.powmod: negative exponent";
  if equal m one then zero
  else if is_odd m && numbits m > 1 then begin
    let ctx = mont_ctx_for m.mg in
    (* Canonical-base fast path: protocol callers already hand over
       residues in [0, m), so the euclidean division is skipped. *)
    let b = if in_range b m then b else erem b m in
    make 1 (Mont.powmod ctx b.mg e.mg)
  end
  else powmod_generic b e m

let jacobi a n =
  if n.sg <= 0 || is_even n then invalid_arg "Bigint.jacobi: n must be odd positive";
  let rec go a n acc =
    let a = erem a n in
    if is_zero a then if equal n one then acc else 0
    else begin
      (* Pull out factors of two. *)
      let rec twos a acc =
        if is_even a then begin
          let nmod8 = to_int_exn (logand n (of_int 7)) in
          let acc = if nmod8 = 3 || nmod8 = 5 then -acc else acc in
          twos (shift_right a 1) acc
        end
        else (a, acc)
      in
      let a, acc = twos a acc in
      if equal a one then acc
      else begin
        (* Quadratic reciprocity. *)
        let amod4 = to_int_exn (logand a (of_int 3)) in
        let nmod4 = to_int_exn (logand n (of_int 3)) in
        let acc = if amod4 = 3 && nmod4 = 3 then -acc else acc in
        go n a acc
      end
    end
  in
  go a n 1

let pp fmt v = Format.pp_print_string fmt (to_string v)

module Modring = struct
  type ctx = { mc : Mont.ctx; m_big : t }
  type elt = int array (* Montgomery form, padded to ctx width, < m *)

  let ctx ~modulus =
    if modulus.sg <= 0 || is_even modulus || compare modulus two <= 0 then
      invalid_arg "Modring.ctx: modulus must be odd and > 2";
    { mc = mont_ctx_for modulus.mg; m_big = modulus }

  let modulus c = c.m_big

  let enter c v =
    let r = erem v c.m_big in
    Mont.to_mont c.mc r.mg

  let leave c (e : elt) = make 1 (Mont.from_mont c.mc e)

  let alloc c : elt = Array.make c.mc.Mont.w 0
  let zero c : elt = Array.make c.mc.Mont.w 0
  let one c : elt = Array.copy c.mc.Mont.one_m
  let of_int c v = enter c (of_int v)

  let copy_into (_ : ctx) (dst : elt) (src : elt) =
    Array.blit src 0 dst 0 (Array.length src)

  let zero_into c (dst : elt) = Array.fill dst 0 c.mc.Mont.w 0
  let one_into c (dst : elt) = Array.blit c.mc.Mont.one_m 0 dst 0 c.mc.Mont.w

  let equal (_ : ctx) (a : elt) (b : elt) = a = b

  let is_zero (_ : ctx) (a : elt) =
    (* Manual loop: [Array.for_all] closes over its arguments and this
       runs on the zero-allocation path. *)
    let n = Array.length a in
    let i = ref 0 in
    while !i < n && a.(!i) = 0 do
      incr i
    done;
    !i = n

  let is_one c (a : elt) =
    let o = c.mc.Mont.one_m in
    let i = ref (c.mc.Mont.w - 1) in
    while !i >= 0 && a.(!i) = o.(!i) do
      decr i
    done;
    !i < 0

  (* Compare a padded array against the modulus limbs, closure-free. *)
  let ge_mod c (a : elt) =
    let m = c.mc.Mont.m in
    let i = ref (c.mc.Mont.w - 1) in
    while !i >= 0 && a.(!i) = m.(!i) do
      decr i
    done;
    !i < 0 || a.(!i) > m.(!i)

  let sub_mod_inplace c (a : elt) =
    let m = c.mc.Mont.m in
    let borrow = ref 0 in
    for i = 0 to c.mc.Mont.w - 1 do
      let d = a.(i) - m.(i) - !borrow in
      a.(i) <- d land Mag.mask;
      borrow := (d lsr 61) land 1
    done

  (* All the [_into] variants tolerate [dst] aliasing any operand: each
     limb of the operands is read before the same-index limb of [dst]
     is written, and the range-restoring pass runs on [dst] alone. *)

  let add_into c (dst : elt) (a : elt) (b : elt) =
    let w = c.mc.Mont.w in
    let carry = ref 0 in
    for i = 0 to w - 1 do
      let s = a.(i) + b.(i) + !carry in
      dst.(i) <- s land Mag.mask;
      carry := s lsr 61
    done;
    (* a + b < 2m; one conditional subtraction restores the range (a
       final borrow cancels against the dropped carry bit). *)
    if !carry > 0 || ge_mod c dst then sub_mod_inplace c dst

  let sub_into c (dst : elt) (a : elt) (b : elt) =
    let w = c.mc.Mont.w in
    let m = c.mc.Mont.m in
    let borrow = ref 0 in
    for i = 0 to w - 1 do
      let d = a.(i) - b.(i) - !borrow in
      dst.(i) <- d land Mag.mask;
      borrow := (d lsr 61) land 1
    done;
    if !borrow > 0 then begin
      let carry = ref 0 in
      for i = 0 to w - 1 do
        let s = dst.(i) + m.(i) + !carry in
        dst.(i) <- s land Mag.mask;
        carry := s lsr 61
      done
    end

  let double_into c (dst : elt) (a : elt) = add_into c dst a a

  let neg_into c (dst : elt) (a : elt) =
    if is_zero c a then Array.fill dst 0 c.mc.Mont.w 0
    else begin
      (* 0 < a < m, so m - a needs no final borrow. *)
      let m = c.mc.Mont.m in
      let borrow = ref 0 in
      for i = 0 to c.mc.Mont.w - 1 do
        let d = m.(i) - a.(i) - !borrow in
        dst.(i) <- d land Mag.mask;
        borrow := (d lsr 61) land 1
      done
    end

  let mul_into c (dst : elt) (a : elt) (b : elt) = Mont.mont_mul_into c.mc dst a b
  let sqr_into c (dst : elt) (a : elt) = Mont.mont_sqr_into c.mc dst a

  let add c (a : elt) (b : elt) : elt =
    let r = alloc c in
    add_into c r a b;
    r

  let sub c (a : elt) (b : elt) : elt =
    let r = alloc c in
    sub_into c r a b;
    r

  let neg c (a : elt) : elt =
    let r = alloc c in
    neg_into c r a;
    r

  let mul c (a : elt) (b : elt) : elt = Mont.mont_mul c.mc a b

  let sqr c (a : elt) : elt =
    let r = alloc c in
    sqr_into c r a;
    r

  let double c (a : elt) = add c a a

  let mul_small c (a : elt) k =
    if k < 0 then invalid_arg "Modring.mul_small: negative constant";
    (* Binary double-and-add on the modular representatives. *)
    let rec go acc base k =
      if k = 0 then acc
      else begin
        let acc = if k land 1 = 1 then add c acc base else acc in
        go acc (double c base) (k lsr 1)
      end
    in
    go (zero c) a k

  let pow c (a : elt) e =
    if e.sg < 0 then invalid_arg "Modring.pow: negative exponent";
    let nb = numbits e in
    let acc = ref (one c) in
    for i = nb - 1 downto 0 do
      acc := sqr c !acc;
      if testbit e i then acc := mul c !acc a
    done;
    !acc

  let inv_into c (dst : elt) (a : elt) = Mont.inv_into c.mc dst a

  let inv c (a : elt) : elt =
    let r = alloc c in
    inv_into c r a;
    r
end

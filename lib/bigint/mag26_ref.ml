(* Frozen reference implementation of the pre-61-bit magnitude layer:
   little-endian arrays of 26-bit limbs with allocating schoolbook /
   Karatsuba multiplication, Knuth division and allocating CIOS
   Montgomery exponentiation, exactly as the engine shipped before the
   wide-limb rewrite.

   This module exists for two purposes only:
   - the differential test battery ([test/test_limbs.ml]) qcheck-compares
     every arithmetic path of the live engine against it, and
   - the limb benchmark ([bench/limbs.ml]) measures the old-vs-new
     multiplier on the same host.

   It must NOT be edited for performance and has no dependency on the
   live [Mag]/[Bigint] modules; values cross the boundary as big-endian
   bytes. *)

let base_bits = 26
let base = 1 lsl base_bits
let mask = base - 1

type t = int array

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

let normalize (a : t) =
  let n = Array.length a in
  let rec top i = if i > 0 && a.(i - 1) = 0 then top (i - 1) else i in
  let t = top n in
  if t = n then a else Array.sub a 0 t

let bits_of_limb v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let numbits (a : t) =
  let n = Array.length a in
  if n = 0 then 0 else ((n - 1) * base_bits) + bits_of_limb a.(n - 1)

let of_int (v : int) =
  if v < 0 then invalid_arg "Mag26_ref.of_int: negative";
  if v = 0 then zero
  else begin
    let rec count v acc = if v = 0 then acc else count (v lsr base_bits) (acc + 1) in
    let n = count v 0 in
    let a = Array.make n 0 in
    let rec fill i v =
      if v <> 0 then begin
        a.(i) <- v land mask;
        fill (i + 1) (v lsr base_bits)
      end
    in
    fill 0 v;
    a
  end

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0
let copy = Array.copy

let add (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let lmax = Stdlib.max la lb in
  let r = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(lmax) <- !carry;
  normalize r

(* [sub a b] requires [a >= b]. *)
let sub (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  assert (compare a b >= 0);
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let add_int a v = add a (of_int v)

let mul_schoolbook (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let p = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- p land mask;
          carry := p lsr base_bits
        done;
        let rec prop k c =
          if c <> 0 then begin
            let p = r.(k) + c in
            r.(k) <- p land mask;
            prop (k + 1) (p lsr base_bits)
          end
        in
        prop (i + lb) !carry
      end
    done;
    normalize r
  end

let karatsuba_cutoff = 24

let split_at (a : t) k =
  let la = Array.length a in
  if la <= k then (normalize (copy a), zero)
  else (normalize (Array.sub a 0 k), normalize (Array.sub a k (la - k)))

let shift_limbs (a : t) k =
  if is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

let rec mul (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if Stdlib.min la lb < karatsuba_cutoff then mul_schoolbook a b
  else begin
    let k = (Stdlib.max la lb + 1) / 2 in
    let a0, a1 = split_at a k in
    let b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end

let shift_left (a : t) bits =
  if bits < 0 then invalid_arg "Mag26_ref.shift_left: negative";
  if is_zero a || bits = 0 then normalize (copy a)
  else begin
    let limb_shift = bits / base_bits in
    let bit_shift = bits mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    if bit_shift = 0 then Array.blit a 0 r limb_shift la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bit_shift) lor !carry in
        r.(i + limb_shift) <- v land mask;
        carry := v lsr base_bits
      done;
      r.(la + limb_shift) <- !carry
    end;
    normalize r
  end

let shift_right (a : t) bits =
  if bits < 0 then invalid_arg "Mag26_ref.shift_right: negative";
  if is_zero a || bits = 0 then normalize (copy a)
  else begin
    let limb_shift = bits / base_bits in
    let bit_shift = bits mod base_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let ln = la - limb_shift in
      let r = Array.make ln 0 in
      if bit_shift = 0 then Array.blit a limb_shift r 0 ln
      else begin
        for i = 0 to ln - 1 do
          let lo = a.(i + limb_shift) lsr bit_shift in
          let hi =
            if i + limb_shift + 1 < la then
              (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land mask
            else 0
          in
          r.(i) <- lo lor hi
        done
      end;
      normalize r
    end
  end

let testbit (a : t) i =
  let limb = i / base_bits in
  if limb >= Array.length a then false
  else (a.(limb) lsr (i mod base_bits)) land 1 = 1

let divmod_int (a : t) (v : int) =
  if v <= 0 || v >= base then invalid_arg "Mag26_ref.divmod_int: limb out of range";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / v;
    rem := cur mod v
  done;
  (normalize q, !rem)

let divmod_knuth (a : t) (b : t) =
  let n = Array.length b in
  assert (n >= 2);
  if compare a b < 0 then (zero, normalize (copy a))
  else begin
    let s = base_bits - bits_of_limb b.(n - 1) in
    let u = shift_left a s in
    let v = shift_left b s in
    let v = if Array.length v < n then Array.append v [| 0 |] else v in
    let m = Array.length u - n in
    let m = if m < 0 then 0 else m in
    let w = Array.make (Array.length u + 1) 0 in
    Array.blit u 0 w 0 (Array.length u);
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) in
    let vsec = if n >= 2 then v.(n - 2) else 0 in
    for j = m downto 0 do
      let num = (w.(j + n) lsl base_bits) lor w.(j + n - 1) in
      let qhat = ref (num / vtop) in
      let rhat = ref (num mod vtop) in
      if !qhat >= base then begin
        qhat := base - 1;
        rhat := num - (!qhat * vtop)
      end;
      let continue = ref true in
      while !continue && !rhat < base do
        if !qhat * vsec > (!rhat lsl base_bits) lor w.(j + n - 2) then begin
          decr qhat;
          rhat := !rhat + vtop
        end
        else continue := false
      done;
      let borrow = ref 0 in
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr base_bits;
        let d = w.(j + i) - (p land mask) - !borrow in
        if d < 0 then begin
          w.(j + i) <- d + base;
          borrow := 1
        end
        else begin
          w.(j + i) <- d;
          borrow := 0
        end
      done;
      let d = w.(j + n) - !carry - !borrow in
      if d < 0 then begin
        w.(j + n) <- d + base;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let sum = w.(j + i) + v.(i) + !carry2 in
          w.(j + i) <- sum land mask;
          carry2 := sum lsr base_bits
        done;
        w.(j + n) <- (w.(j + n) + !carry2) land mask
      end
      else w.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub w 0 n) in
    (normalize q, shift_right r s)
  end

let divmod (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  if Array.length b = 1 then begin
    let q, r = divmod_int a b.(0) in
    (q, of_int r)
  end
  else divmod_knuth a b

let rem a b = snd (divmod a b)

(* Big-endian byte serialization: the bridge the tests and benches use to
   move values between this reference and the live engine. *)
let to_bytes (a : t) =
  if is_zero a then Bytes.create 0
  else begin
    let nb = (numbits a + 7) / 8 in
    let b = Bytes.create nb in
    for i = 0 to nb - 1 do
      let byte = ref 0 in
      for k = 0 to 7 do
        if testbit a ((8 * i) + k) then byte := !byte lor (1 lsl k)
      done;
      Bytes.set b (nb - 1 - i) (Char.chr !byte)
    done;
    b
  end

let of_bytes (b : Bytes.t) =
  let acc = ref zero in
  Bytes.iter (fun c -> acc := add_int (shift_left !acc 8) (Char.code c)) b;
  !acc

(* The old allocating 26-bit CIOS Montgomery engine, verbatim minus the
   operation meter. *)
module Mont = struct
  type ctx = {
    m : int array;
    w : int;
    m' : int;
    r2 : int array;
    one_m : int array;
  }

  let inv_limb v =
    let x = ref v in
    for _ = 1 to 5 do
      x := !x * (2 - (v * !x)) land mask
    done;
    !x land mask

  let create (m : int array) =
    assert ((not (is_zero m)) && m.(0) land 1 = 1);
    let w = Array.length m in
    let m' = mask land -inv_limb m.(0) in
    let r = shift_left (of_int 1) (base_bits * w) in
    let r2 = rem (mul r r) m in
    let one_m = rem r m in
    { m; w; m'; r2; one_m }

  let pad ctx a =
    let la = Array.length a in
    if la = ctx.w then a
    else begin
      let r = Array.make ctx.w 0 in
      Array.blit a 0 r 0 la;
      r
    end

  let mont_mul ctx (a : int array) (b : int array) =
    let w = ctx.w and m = ctx.m and m' = ctx.m' in
    let t = Array.make (w + 2) 0 in
    for i = 0 to w - 1 do
      let ai = a.(i) in
      let c = ref 0 in
      for j = 0 to w - 1 do
        let x = t.(j) + (ai * b.(j)) + !c in
        t.(j) <- x land mask;
        c := x lsr base_bits
      done;
      let x = t.(w) + !c in
      t.(w) <- x land mask;
      t.(w + 1) <- t.(w + 1) + (x lsr base_bits);
      let u = t.(0) * m' land mask in
      let c = ref ((t.(0) + (u * m.(0))) lsr base_bits) in
      for j = 1 to w - 1 do
        let x = t.(j) + (u * m.(j)) + !c in
        t.(j - 1) <- x land mask;
        c := x lsr base_bits
      done;
      let x = t.(w) + !c in
      t.(w - 1) <- x land mask;
      t.(w) <- t.(w + 1) + (x lsr base_bits);
      t.(w + 1) <- 0
    done;
    let res = Array.sub t 0 w in
    let ge =
      t.(w) > 0
      ||
      let rec cmp i =
        if i < 0 then true
        else if res.(i) <> m.(i) then res.(i) > m.(i)
        else cmp (i - 1)
      in
      cmp (w - 1)
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to w - 1 do
        let d = res.(i) - m.(i) - !borrow in
        if d < 0 then begin
          res.(i) <- d + base;
          borrow := 1
        end
        else begin
          res.(i) <- d;
          borrow := 0
        end
      done
    end;
    res

  let to_mont ctx a = mont_mul ctx (pad ctx a) (pad ctx ctx.r2)
  let from_mont ctx a = normalize (mont_mul ctx a (pad ctx (of_int 1)))

  let powmod ctx (b : int array) (e : int array) =
    if is_zero e then of_int 1
    else begin
      let bm = to_mont ctx (rem b ctx.m) in
      let table = Array.make 16 (pad ctx ctx.one_m) in
      for i = 1 to 15 do
        table.(i) <- mont_mul ctx table.(i - 1) bm
      done;
      let nb = numbits e in
      let nwin = (nb + 3) / 4 in
      let acc = ref (pad ctx ctx.one_m) in
      for wi = nwin - 1 downto 0 do
        for _ = 1 to 4 do
          acc := mont_mul ctx !acc !acc
        done;
        let d =
          (if testbit e ((4 * wi) + 3) then 8 else 0)
          lor (if testbit e ((4 * wi) + 2) then 4 else 0)
          lor (if testbit e ((4 * wi) + 1) then 2 else 0)
          lor if testbit e (4 * wi) then 1 else 0
        in
        if d > 0 then acc := mont_mul ctx !acc table.(d)
      done;
      from_mont ctx !acc
    end
end

(* b^e mod m for any positive modulus: Montgomery for odd m, plain
   square-and-multiply with division for even m. *)
let powmod (b : t) (e : t) (m : t) =
  if is_zero m then raise Division_by_zero;
  if equal m (of_int 1) then zero
  else if m.(0) land 1 = 1 && numbits m > 1 then Mont.powmod (Mont.create m) b e
  else begin
    let b = rem b m in
    let nb = numbits e in
    let acc = ref (of_int 1) in
    for i = nb - 1 downto 0 do
      acc := rem (mul !acc !acc) m;
      if testbit e i then acc := rem (mul !acc b) m
    done;
    !acc
  end

(* Inverse of [a] modulo [m] via a signed extended Euclid over
   (sign, magnitude) pairs; [None] if gcd <> 1. *)
let invmod (a : t) (m : t) =
  let snorm (sg, mg) = if is_zero mg then (0, zero) else (sg, mg) in
  let sadd (sa, ma) (sb, mb) =
    if sa = 0 then (sb, mb)
    else if sb = 0 then (sa, ma)
    else if sa = sb then (sa, add ma mb)
    else begin
      let c = compare ma mb in
      if c = 0 then (0, zero)
      else if c > 0 then (sa, sub ma mb)
      else (sb, sub mb ma)
    end
  in
  let ssub x (sb, mb) = sadd x (-sb, mb) in
  let smul (sa, ma) (sb, mb) = snorm (sa * sb, mul ma mb) in
  let rec go (r0 : int * t) r1 s0 s1 =
    if fst r1 = 0 then (r0, s0)
    else begin
      let q, r2 = divmod (snd r0) (snd r1) in
      (* r0, r1 stay non-negative throughout. *)
      go r1 (snorm (1, r2)) s1 (ssub s0 (smul (snorm (1, q)) s1))
    end
  in
  let a = rem a m in
  if is_zero a then None
  else begin
    let (_, g), (su, u) = go (1, a) (1, m) (1, of_int 1) (0, zero) in
    if not (equal g (of_int 1)) then None
    else if su >= 0 then Some (rem u m)
    else Some (sub m (rem u m))
  end

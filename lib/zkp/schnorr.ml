(** Schnorr proofs of knowledge of a discrete logarithm (§IV-E).

    Given a statement [y = g^x], the prover convinces verifiers it knows
    [x] without revealing it:

    + prover sends the commitment [h = g^r];
    + each verifier [j] publishes a challenge [c_j];
    + prover sends [z = r + x Σ c_j (mod q)];
    + everyone checks [g^z = h · y^(Σ c_j)].

    With a single verifier this is the classical Schnorr identification
    scheme (HVZK); the paper extends it to [n] verifiers by summing the
    challenges.  {!extract} realizes the knowledge extractor used in the
    gain-hiding security proof: two accepting transcripts on the same
    commitment reveal [x].  A Fiat–Shamir variant provides
    non-interactive proofs for contexts without an interaction loop. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_hash

module Make (G : Ppgr_group.Group_intf.GROUP) = struct
  type commitment = G.element
  type challenge = Bigint.t
  type response = Bigint.t

  type prover_state = { r : Bigint.t }

  type transcript = {
    commitment : commitment;
    challenges : challenge list;
    response : response;
  }

  module Meter = Ppgr_group.Opmeter

  let commit rng =
    Meter.tick ();
    let r = G.random_scalar rng in
    ({ r }, G.pow_gen r)

  let fresh_challenge rng = Rng.bigint_below rng G.order

  let respond st ~secret ~challenges =
    let csum =
      List.fold_left
        (fun acc c -> Bigint.erem (Bigint.add acc c) G.order)
        Bigint.zero challenges
    in
    Bigint.erem (Bigint.add st.r (Bigint.mul secret csum)) G.order

  let verify ~statement ~commitment ~challenges ~response =
    (* g^z = h * y^c  <=>  g^z * y^(q-c) = h: one simultaneous (Shamir)
       exponentiation instead of two, so verification ticks one logical
       exponentiation. *)
    Meter.tick ();
    let csum =
      List.fold_left
        (fun acc c -> Bigint.erem (Bigint.add acc c) G.order)
        Bigint.zero challenges
    in
    let neg_csum = Bigint.erem (Bigint.neg csum) G.order in
    G.equal commitment (G.pow2 G.generator response statement neg_csum)

  let verify_transcript ~statement t =
    verify ~statement ~commitment:t.commitment ~challenges:t.challenges
      ~response:t.response

  (** One-call honest run against explicit verifier randomness, returning
      the full transcript (used by the protocol driver and tests). *)
  let prove_interactive rng ~secret ~statement ~n_verifiers =
    let st, commitment = commit rng in
    let challenges = List.init n_verifiers (fun _ -> fresh_challenge rng) in
    let response = respond st ~secret ~challenges in
    ignore statement;
    { commitment; challenges; response }

  (** Knowledge extractor (special soundness): from two accepting
      transcripts sharing a commitment, recover the secret
      [x = (z - z') / (Σc - Σc') mod q]. *)
  let extract t1 t2 =
    if not (G.equal t1.commitment t2.commitment) then None
    else begin
      let csum ch =
        List.fold_left
          (fun acc c -> Bigint.erem (Bigint.add acc c) G.order)
          Bigint.zero ch
      in
      let dc =
        Bigint.erem (Bigint.sub (csum t1.challenges) (csum t2.challenges)) G.order
      in
      if Bigint.is_zero dc then None
      else begin
        let dz =
          Bigint.erem (Bigint.sub t1.response t2.response) G.order
        in
        Some (Bigint.erem (Bigint.mul dz (Bigint.invmod dc G.order)) G.order)
      end
    end

  (** {1 Fiat–Shamir (non-interactive)} *)

  type ni_proof = { ni_commitment : G.element; ni_response : Bigint.t }

  let fs_challenge ~statement ~commitment ~context =
    let ctx = Sha256.init () in
    Sha256.feed_string ctx "ppgr-schnorr-v1";
    Sha256.feed_string ctx context;
    Sha256.feed_bytes ctx (G.to_bytes statement);
    Sha256.feed_bytes ctx (G.to_bytes commitment);
    let d = Sha256.finalize ctx in
    Bigint.erem (Bigint.of_bytes_be d) G.order

  let prove_fs rng ~secret ~statement ~context =
    let st, commitment = commit rng in
    let c = fs_challenge ~statement ~commitment ~context in
    let response = respond st ~secret ~challenges:[ c ] in
    { ni_commitment = commitment; ni_response = response }

  let verify_fs ~statement ~context { ni_commitment; ni_response } =
    let c = fs_challenge ~statement ~commitment:ni_commitment ~context in
    verify ~statement ~commitment:ni_commitment ~challenges:[ c ]
      ~response:ni_response
end

(** A message-passing execution of the unlinkable comparison phase.

    {!Phase2} simulates the protocol in lockstep with shared OCaml
    values, which is ideal for counting but does not demonstrate a
    deployable system.  This runtime executes the same protocol with
    {e parties as isolated state machines that exchange only bytes}
    through the {!Wire} codecs: every group element, proof and
    ciphertext crosses a party boundary serialized, is validated on
    decode, and no party ever touches another's secrets.

    One deliberate deviation from Fig. 1: key-knowledge proofs use the
    Fiat–Shamir non-interactive variant instead of the 3-round
    multi-verifier interaction, so that each protocol step is a single
    message flight (the interactive version is exercised by {!Phase2}).

    The driver below runs each protocol step's sends through
    {!Transport.post}/{!Transport.flush}: in stop-and-wait mode (every
    window at 1) that delivers immediately and in order, byte-identical
    to the PR 5 driver; with a sliding window it becomes a pipelined
    event loop that overlaps delivery per directed link.  The party
    logic itself is transport-agnostic, and completed steps checkpoint
    so an aborted run can resume (see {!run} and {!run_with_restart}). *)

open Ppgr_bigint
open Ppgr_rng
module Trace = Ppgr_obs.Trace
module Hist = Ppgr_obs.Hist

module Make (G : Ppgr_group.Group_intf.GROUP) = struct
  module E = Ppgr_elgamal.Elgamal.Make (G)
  module Z = Ppgr_zkp.Schnorr.Make (G)
  module W = Wire.Make (G)

  (* Rng.split labels of the parallel hot loops, preformatted once per
     run and shared by every party (byte-identical to the original
     Printf-formatted strings, so all derived streams are unchanged). *)
  type labels = {
    lab_enc : string array; (* "enc-bit-<b>", length l *)
    lab_blind : string array; (* "blind-<c>", length (n-1)*l *)
    lab_owner : string array; (* "hop-owner-<j>", length n *)
  }

  let make_labels ~n ~l =
    let idx prefix k = Array.init k (fun i -> prefix ^ string_of_int i) in
    {
      lab_enc = idx "enc-bit-" l;
      lab_blind = idx "blind-" ((n - 1) * l);
      lab_owner = idx "hop-owner-" n;
    }

  (** A reusable per-(n, l) session: every preformatted label a run
      needs.  The sharded orchestrator builds one session per distinct
      shard size and reuses it across all shards of that size, so a
      625-shard run formats its labels once, not 625 times.  All label
      strings are byte-identical to the per-run originals, so derived
      Rng streams — and hence transcripts — are unchanged. *)
  type session = {
    s_labels : labels;
    s_party : string array; (* "runtime-<j>", length n *)
  }

  let make_session ~n ~l =
    {
      s_labels = make_labels ~n ~l;
      s_party = Array.init n (fun j -> "runtime-" ^ string_of_int j);
    }

  type party = {
    index : int;
    n : int;
    l : int;
    rng : Rng.t;
    labels : labels; (* shared, immutable *)
    beta_bits : int array;
    seckey : E.seckey;
    pub_msg : Bytes.t; (* announced public key *)
    proof_msg : Bytes.t; (* announced NI proof *)
    mutable joint : E.keytable option;
        (* joint key with its fixed-base table, built at key exchange *)
    mutable zkp_failures : int list; (* indices whose proofs failed *)
  }

  let zkp_context = "ppgr-runtime-key-knowledge"

  (** Create a party: generates its key pair and announcement messages.
      [labels] shares one preformatted label set across parties; when
      omitted a private set is built (convenient for tests). *)
  let create_party ~index ~n ~l ?labels ~beta rng =
    let labels =
      match labels with Some ls -> ls | None -> make_labels ~n ~l
    in
    if Bigint.sign beta < 0 || Bigint.numbits beta > l then
      invalid_arg "Runtime.create_party: beta out of range";
    let seckey, pub = E.keygen rng in
    let proof = Z.prove_fs rng ~secret:seckey ~statement:pub ~context:zkp_context in
    {
      index;
      n;
      l;
      rng;
      labels;
      beta_bits = Bigint.bits_of beta ~width:l;
      seckey;
      pub_msg = W.encode_pubkey pub;
      proof_msg =
        W.encode_zkp
          {
            Z.commitment = proof.Z.ni_commitment;
            challenges = [];
            response = proof.Z.ni_response;
          };
      joint = None;
      zkp_failures = [];
    }

  (* The NI proof rides in a transcript envelope with no challenges; the
     challenge is recomputed from the statement on verify. *)
  let verify_announcement ~pub_bytes ~proof_bytes =
    let y = W.decode_pubkey pub_bytes in
    let t = W.decode_zkp proof_bytes in
    let ok =
      Z.verify_fs ~statement:y ~context:zkp_context
        { Z.ni_commitment = t.Z.commitment; ni_response = t.Z.response }
    in
    (y, ok)

  (** Step 5-6: receive everyone's announcements, verify the proofs,
      form the joint key, and emit the bitwise encryption of one's own
      beta. *)
  let receive_keys_and_encrypt p ~(pub_msgs : Bytes.t array)
      ~(proof_msgs : Bytes.t array) : Bytes.t =
    let pubs =
      Array.mapi
        (fun i pub_bytes ->
          let y, ok = verify_announcement ~pub_bytes ~proof_bytes:proof_msgs.(i) in
          if not ok then p.zkp_failures <- i :: p.zkp_failures;
          y)
        pub_msgs
    in
    if p.zkp_failures <> [] then
      invalid_arg "Runtime: a key-knowledge proof failed";
    let joint = E.keytable (E.joint_pubkey (Array.to_list pubs)) in
    p.joint <- Some joint;
    (* Each bit encrypts under its own child stream keyed by position,
       so the bits fan out over the domain pool with a transcript
       independent of the job count. *)
    let bit_rngs =
      Array.init p.l (fun b -> Rng.split p.rng ~label:p.labels.lab_enc.(b))
    in
    let enc =
      Ppgr_exec.Pool.parallel_init p.l (fun b ->
          E.encrypt_exp_int_with bit_rngs.(b) joint p.beta_bits.(b))
    in
    W.encode_cipher_batch enc

  (* The step-7 circuit against a decoded batch of another party's
     encrypted bits; same algebra as Phase2.compare_circuit. *)
  let compare_circuit p (enc_bits : E.cipher array) =
    let l = p.l in
    if Array.length enc_bits <> l then invalid_arg "Runtime: bad bit batch length";
    let enc_zero = { E.c = G.identity; c' = G.identity } in
    let gamma =
      Array.init l (fun b ->
          if p.beta_bits.(b) = 0 then enc_bits.(b)
          else E.add_clear (E.neg enc_bits.(b)) Bigint.one)
    in
    let s = Array.make l enc_zero in
    for b = l - 2 downto 0 do
      s.(b) <- E.add s.(b + 1) gamma.(b + 1)
    done;
    Array.init l (fun b ->
        let one_minus = E.add_clear (E.neg gamma.(b)) Bigint.one in
        let omega = E.add (E.scale_int one_minus (l - b)) s.(b) in
        if p.beta_bits.(b) = 0 then omega else E.add_clear omega Bigint.one)

  (** Step 7: consume everyone's encrypted-bit announcements and emit
      this party's comparison sets, flattened in owner order with own
      slot empty, as one message to P_1. *)
  let compare_all p ~(enc_msgs : Bytes.t array) : Bytes.t =
    (* Deterministic homomorphic evaluation: the n-1 pairs fan out. *)
    let sets =
      Ppgr_exec.Pool.parallel_init p.n (fun i ->
          if i = p.index then [||]
          else compare_circuit p (W.decode_cipher_batch enc_msgs.(i)))
    in
    W.encode_cipher_batch (Array.concat (Array.to_list sets))
  (* The flattened array has (n-1) * l ciphertexts; the ring treats it
     as one opaque set owned by this party. *)

  (** Step 8, one hop: decode the full vector (n sets), partially
      decrypt + blind + permute every set but one's own, re-encode.

      The [(owner set × slot)] pairs are flattened into one index space
      so the hop saturates every domain instead of parallelizing only
      within one owner's [l]-ish slots.  Determinism is unchanged: each
      owner stream is a [split] of the party stream (splitting never
      disturbs the parent, so the split order is immaterial), each slot
      stream a split of its owner stream keyed by stable position, and
      the closing per-owner shuffles draw from the owner streams the
      splits left undisturbed — byte-identical transcripts to the
      per-owner nested loops. *)
  let ring_hop p ~(v_msgs : Bytes.t array) : Bytes.t array =
    let n = Array.length v_msgs in
    let sets =
      Array.init n (fun owner ->
          if owner = p.index then [||]
          else W.decode_cipher_batch v_msgs.(owner))
    in
    let orngs =
      Array.init n (fun owner ->
          if owner = p.index then p.rng (* unused *)
          else Rng.split p.rng ~label:p.labels.lab_owner.(owner))
    in
    (* Flat task index -> (owner, slot). *)
    let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 sets in
    let owner_of = Array.make (Stdlib.max total 1) 0 in
    let slot_of = Array.make (Stdlib.max total 1) 0 in
    let t = ref 0 in
    Array.iteri
      (fun owner set ->
        Array.iteri
          (fun c _ ->
            owner_of.(!t) <- owner;
            slot_of.(!t) <- c;
            incr t)
          set)
      sets;
    let slot_rngs =
      Array.init total (fun t ->
          Rng.split orngs.(owner_of.(t)) ~label:p.labels.lab_blind.(slot_of.(t)))
    in
    Ppgr_exec.Pool.parallel_for total (fun t ->
        let set = sets.(owner_of.(t)) in
        let c = slot_of.(t) in
        set.(c) <- E.partial_decrypt_blind slot_rngs.(t) p.seckey set.(c));
    Array.mapi
      (fun owner set_bytes ->
        if owner = p.index then set_bytes
        else begin
          Rng.shuffle orngs.(owner) sets.(owner);
          W.encode_cipher_batch sets.(owner)
        end)
      v_msgs

  (** Unpack one framed ring-hop message back into the [n] per-owner
      set payloads; validating (tag, lengths, count). *)
  let ring_receive_frame p (frame : Bytes.t) : Bytes.t array =
    let payloads = Wire.decode_hop_frame frame in
    if Array.length payloads <> p.n then
      raise
        (Wire.Malformed
           (Printf.sprintf "hop frame carries %d sets, expected %d"
              (Array.length payloads) p.n));
    payloads

  (** Final step: strip one's own layer from the returned set and read
      off the rank. *)
  let finish p ~(own_set : Bytes.t) : int =
    let set = W.decode_cipher_batch own_set in
    let flags =
      Ppgr_exec.Pool.parallel_map (fun c -> E.decrypt_exp_is_zero p.seckey c) set
    in
    let zeros = Array.fold_left (fun acc z -> if z then acc + 1 else acc) 0 flags in
    zeros + 1

  type stats = {
    ranks : int array;
    bytes_on_wire : int; (* every serialized payload, summed (logical) *)
    messages : int; (* logical sends: retransmissions not counted *)
    party_sent : int array; (* payload bytes out, per party *)
    party_received : int array; (* payload bytes in, per party *)
    (* Physical level, owned by {!Transport}: envelope overhead and
       every retransmission included. *)
    phys_bytes : int;
    phys_messages : int;
    phys_party_sent : int array;
    phys_party_received : int array;
    retransmits : int;
    drops : int;
    crc_rejects : int;
    dup_suppressed : int;
    backoff_ticks : int;
    acks_sent : int; (* windowed control-plane acks; 0 in stop-and-wait *)
    ack_bytes : int;
    sim_ticks : int;
        (* simulated link-clock elapsed: serialized in stop-and-wait,
           per-step max over concurrent links when windowed *)
    faults_injected : (string * int) list; (* by kind, fixed order *)
    transcript_sha : string; (* chained digest of all physical bytes *)
    net_rounds : Ppgr_mpcnet.Netsim.schedule;
        (* physical traffic per protocol step, replayable on a topology *)
    links : Transport.link list; (* per-directed-link physical traffic *)
    flows : Transport.flow list;
        (* causal ledger (empty unless tracing was on) *)
    flight : Ppgr_obs.Flightrec.t; (* recent-wire-event ring, per party *)
  }

  (** Drive a full distributed execution.  All inter-party state passes
      through bytes, every byte through {!Transport}: sequenced,
      CRC-protected envelopes with timeout/retransmit recovery.  Without
      [faults] every attempt delivers; with a {!Faultplan.spec} the run
      faces that seeded schedule and either completes with correct ranks
      or aborts with the typed {!Transport.Party_dropped}.

      [window] selects the transport discipline: absent (or all windows
      at 1) every step is PR 5 stop-and-wait, byte-identical to before;
      with a window above 1 each step's sends are posted up front and
      the pipelined engine overlaps them per link.

      [checkpoint_cb] receives a serialized {!Wire.checkpoint_frame}
      after every completed wire step; [resume] accepts one and restarts
      the run at the first step the checkpoint does not cover.  A
      resumed run is byte-identical (ranks, transcript, meters, replay
      schedule) to the uninterrupted original because party randomness
      is re-derived from [rng] splits that the aborted attempt never
      disturbed, and the fault schedule is a pure function of the seed
      fast-forwarded to the persisted position.
      @raise Transport.Party_dropped when a message exhausts
      [retry_budget] retransmissions (or [kill_after] physical
      transmissions are reached, for crash injection). *)
  let run ?faults ?(retry_budget = 8) ?flight_cap ?session ?shard ?window
      ?(kill_after = -1) ?resume ?checkpoint_cb rng ~l
      ~(betas : Bigint.t array) : stats =
    let n = Array.length betas in
    if n < 2 then invalid_arg "Runtime.run: need at least 2 parties";
    let ck = Option.map Wire.decode_checkpoint resume in
    (match ck with
    | Some c when c.Wire.ck_n <> n ->
        invalid_arg
          (Printf.sprintf
             "Runtime.run: checkpoint is for %d parties, this run has %d"
             c.Wire.ck_n n)
    | _ -> ());
    let start = match ck with None -> 0 | Some c -> c.Wire.ck_step in
    let shard_attrs =
      match shard with None -> [] | Some s -> [ ("shard", Trace.Int s) ]
    in
    let resume_attrs =
      match ck with
      | None -> []
      | Some _ -> [ ("resumed_from", Trace.Int start) ]
    in
    Trace.with_span
      ~attrs:
        ([ ("group", Trace.Str G.name); ("n", Trace.Int n); ("l", Trace.Int l) ]
        @ resume_attrs @ shard_attrs)
      "runtime"
    @@ fun () ->
    let plan = Option.map Ppgr_mpcnet.Faultplan.create faults in
    let tr =
      match ck with
      | None ->
          Transport.create ?faults:plan ~retry_budget ?flight_cap ?window
            ~kill_after ~n ()
      | Some c ->
          Transport.restore ?faults:plan ~retry_budget ?flight_cap ?window
            ~kill_after c.Wire.ck_snap
    in
    let bytes_total =
      ref (match ck with None -> 0 | Some c -> c.Wire.ck_bytes_total)
    in
    let msg_total =
      ref (match ck with None -> 0 | Some c -> c.Wire.ck_msg_total)
    in
    let sent =
      match ck with None -> Array.make n 0 | Some c -> Array.copy c.Wire.ck_sent
    in
    let received =
      match ck with
      | None -> Array.make n 0
      | Some c -> Array.copy c.Wire.ck_received
    in
    (* [post] is the only channel between parties; it tallies every
       serialized payload globally and per endpoint (the logical view),
       then hands the bytes to the transport, which owns delivery,
       recovery and the physical accounting.  In stop-and-wait mode the
       post delivers immediately; under a window it enqueues and the
       step's closing {!Transport.flush} runs the pipelined engine. *)
    let post ~src ~dst (b : Bytes.t) =
      let len = Bytes.length b in
      bytes_total := !bytes_total + len;
      incr msg_total;
      sent.(src) <- sent.(src) + len;
      received.(dst) <- received.(dst) + len;
      Transport.post tr ~src ~dst b
    in
    (* One instant wire span per party per protocol step, carrying the
       in/out byte deltas of that step at both accounting levels.  Also
       the transport's step boundary, so its physical rounds mirror the
       protocol steps. *)
    let wire_mark step f =
      Transport.begin_step tr step;
      if not (Trace.enabled ()) then f ()
      else begin
        let s0 = Array.copy sent and r0 = Array.copy received in
        let ps0 = Transport.phys_sent tr and pr0 = Transport.phys_received tr in
        let rt0 = Transport.retrans_by_src tr in
        let ev0 = Transport.env_bytes_by_src tr in
        let r = f () in
        let ps1 = Transport.phys_sent tr and pr1 = Transport.phys_received tr in
        let rt1 = Transport.retrans_by_src tr in
        let ev1 = Transport.env_bytes_by_src tr in
        for j = 0 to n - 1 do
          let out = sent.(j) - s0.(j) and inb = received.(j) - r0.(j) in
          if out > 0 || inb > 0 then begin
            let base =
              [
                ("party", Trace.Int j);
                ("bytes_out", Trace.Int out);
                ("bytes_in", Trace.Int inb);
                ("phys_out", Trace.Int (ps1.(j) - ps0.(j)));
                ("phys_in", Trace.Int (pr1.(j) - pr0.(j)));
                ("env_bytes", Trace.Int (ev1.(j) - ev0.(j)));
              ]
              @ shard_attrs
            in
            (* Per-party physical recovery cost of the step; the
               retransmits column tiles Transport.stats the same way
               phys_out tiles phys_bytes. *)
            let attrs =
              if rt1.(j) - rt0.(j) > 0 then
                base @ [ ("retransmits", Trace.Int (rt1.(j) - rt0.(j))) ]
              else base
            in
            Trace.instant ~attrs ("runtime." ^ step ^ ".wire")
          end
        done;
        r
      end
    in
    let party_span step j f =
      Trace.with_span
        ~attrs:(("party", Trace.Int j) :: shard_attrs)
        ("runtime." ^ step) f
    in
    (* Serialize the complete post-step state (logical ledgers, the
       step's data dependencies, transport snapshot) and hand it to the
       caller; a later run resumes from it via [?resume].  [step_done]
       counts completed wire steps: 1 announce, 2 encrypt, 3 compare,
       4+h ring hop h. *)
    let checkpoint step_done ~enc ~v =
      match checkpoint_cb with
      | None -> ()
      | Some cb ->
          let c =
            {
              Wire.ck_step = step_done;
              ck_n = n;
              ck_bytes_total = !bytes_total;
              ck_msg_total = !msg_total;
              ck_sent = Array.copy sent;
              ck_received = Array.copy received;
              ck_enc = enc;
              ck_v = v;
              ck_snap = Transport.persist tr;
            }
          in
          cb (Wire.encode_checkpoint c)
    in
    let session =
      match session with Some s -> s | None -> make_session ~n ~l
    in
    let labels = session.s_labels in
    let parties =
      Array.init n (fun index ->
          party_span "keygen" index (fun () ->
              create_party ~index ~n ~l ?labels:(Some labels) ~beta:betas.(index)
                (Rng.split rng ~label:session.s_party.(index))))
    in
    (* Announcements broadcast: count each as n-1 sends.  A broadcast
       posts its whole fan-out and flushes once — under a window every
       link makes progress concurrently; at window 1 each post delivers
       immediately and the flush is a no-op collect. *)
    let broadcast (msgs : Bytes.t array) =
      Array.iteri
        (fun src (m : Bytes.t) ->
          for dst = 0 to n - 1 do
            if dst <> src then ignore (post ~src ~dst m)
          done)
        msgs;
      ignore (Transport.flush tr)
    in
    let pub_msgs = Array.map (fun p -> p.pub_msg) parties in
    let proof_msgs = Array.map (fun p -> p.proof_msg) parties in
    if start <= 0 then begin
      wire_mark "announce" (fun () ->
          broadcast pub_msgs;
          broadcast proof_msgs);
      checkpoint 1 ~enc:[||] ~v:[||]
    end;
    (* Bit encryptions broadcast.  A run resumed past this step takes
       the ciphertext batch from the checkpoint instead of recomputing
       it (the joint key is only ever needed here). *)
    let enc_msgs =
      match ck with
      | Some c when start >= 2 -> c.Wire.ck_enc
      | _ ->
          Array.mapi
            (fun j p ->
              party_span "encrypt" j (fun () ->
                  receive_keys_and_encrypt p ~pub_msgs ~proof_msgs))
            parties
    in
    if start <= 1 then begin
      wire_mark "encrypt" (fun () -> broadcast enc_msgs);
      checkpoint 2 ~enc:enc_msgs ~v:[||]
    end;
    (* Comparison sets to P_1 (party 0). *)
    let v =
      match ck with
      | Some c when start >= 3 -> c.Wire.ck_v
      | _ ->
          wire_mark "compare" (fun () ->
              let tickets =
                Array.mapi
                  (fun j p ->
                    post ~src:j ~dst:0
                      (party_span "compare" j (fun () -> compare_all p ~enc_msgs)))
                  parties
              in
              let out = Transport.flush tr in
              Array.map (fun tk -> out.(tk)) tickets)
    in
    if start <= 2 then checkpoint 3 ~enc:[||] ~v;
    (* Ring pass: each hop receives the vector, processes, forwards.
       Intermediate hops ship all n sets as ONE framed message (the
       receiver unpacks and validates it); the final hop returns each
       set to its owner and keeps its own.  Hops the checkpoint already
       covers are skipped wholesale: [!v] restores to the post-hop
       vector and the recreated parties' streams stay undisturbed. *)
    let v = ref v in
    for hop = 0 to n - 1 do
      if start <= 3 + hop then begin
        let hop_t0 = if Hist.enabled () then Unix.gettimeofday () else 0. in
        let processed =
          Trace.with_span
            ~attrs:
              ([ ("party", Trace.Int hop); ("hop", Trace.Int hop) ] @ shard_attrs)
            "runtime.ring"
            (fun () -> ring_hop parties.(hop) ~v_msgs:!v)
        in
        if Hist.enabled () then
          Hist.record_us Hist.hop_us ((Unix.gettimeofday () -. hop_t0) *. 1e6);
        if hop < n - 1 then begin
          let frame =
            wire_mark "ring" (fun () ->
                let tk =
                  post ~src:hop ~dst:(hop + 1) (Wire.encode_hop_frame processed)
                in
                (Transport.flush tr).(tk))
          in
          v := ring_receive_frame parties.(hop + 1) frame
        end
        else
          v :=
            wire_mark "ring" (fun () ->
                let tickets =
                  Array.mapi
                    (fun owner _ ->
                      if owner = hop then -1
                      else post ~src:hop ~dst:owner processed.(owner))
                    processed
                in
                let out = Transport.flush tr in
                Array.mapi
                  (fun owner m ->
                    if tickets.(owner) < 0 then m else out.(tickets.(owner)))
                  processed);
        checkpoint (4 + hop) ~enc:[||] ~v:!v
      end
    done;
    (* Return each set to its owner; owners decode and count. *)
    let ranks =
      Array.mapi
        (fun j p -> party_span "count" j (fun () -> finish p ~own_set:!v.(j)))
        parties
    in
    Transport.drain tr;
    let st = Transport.stats tr in
    {
      ranks;
      bytes_on_wire = !bytes_total;
      messages = !msg_total;
      party_sent = sent;
      party_received = received;
      phys_bytes = st.Transport.phys_bytes;
      phys_messages = st.Transport.phys_messages;
      phys_party_sent = Transport.phys_sent tr;
      phys_party_received = Transport.phys_received tr;
      retransmits = st.Transport.retransmits;
      drops = st.Transport.drops;
      crc_rejects = st.Transport.crc_rejects;
      dup_suppressed = st.Transport.dup_suppressed;
      backoff_ticks = st.Transport.backoff_ticks;
      acks_sent = st.Transport.acks_sent;
      ack_bytes = st.Transport.ack_bytes;
      sim_ticks = st.Transport.sim_ticks;
      faults_injected =
        (match plan with
        | None -> List.map (fun k -> (k, 0)) Ppgr_mpcnet.Faultplan.kinds
        | Some p -> Ppgr_mpcnet.Faultplan.injected p);
      transcript_sha = Transport.transcript_sha tr;
      net_rounds = Transport.net_rounds tr;
      links = Transport.links tr;
      flows = Transport.flows tr;
      flight = Transport.flight tr;
    }

  (** Outcome of a supervised execution: the completed run's stats plus
      how it got there. *)
  type recovery = {
    rec_stats : stats;
    rec_resumes : int; (* resume attempts consumed (successful or not) *)
    rec_reelected : int option;
        (* [Some dead] when the ring was re-elected without that party *)
  }

  (** Supervise a run with checkpoint/restart.  The run checkpoints
      after every wire step; on {!Transport.Party_dropped} it resumes
      from the latest checkpoint (crash injection via [kill_after] is
      disabled on resume — the simulated crash already happened).  After
      [max_restarts] failed resumes the destination party of the last
      abort is declared dead and the ring is {e re-elected}: the
      survivors rerun the whole protocol as an (n-1)-party session on a
      fresh ["re-elect-<dead>"] split of [rng] — byte-identical to a
      fresh (n-1)-party run on that stream.

      Privacy note (mirrors the sharded s-2 trade): a re-elected
      session tolerates n-3 colluding parties rather than the paper's
      n-2, because the dead party's comparisons from the aborted
      session plus the survivors' new session give an adversary two
      transcripts over overlapping inputs.  See DESIGN.md §5k. *)
  let run_with_restart ?faults ?(retry_budget = 8) ?flight_cap ?session ?shard
      ?window ?(max_restarts = 1) ?(kill_after = -1) rng ~l
      ~(betas : Bigint.t array) : recovery =
    let latest = ref None in
    let cb b = latest := Some b in
    let go ?resume ~kill_after () =
      run ?faults ~retry_budget ?flight_cap ?session ?shard ?window ~kill_after
        ?resume ~checkpoint_cb:cb rng ~l ~betas
    in
    let reelect ~resumes (f : Transport.forensics) =
      let dead = f.Transport.fr_dst in
      let n = Array.length betas in
      if n < 3 then raise (Transport.Party_dropped f);
      let betas' =
        Array.init (n - 1) (fun j -> if j < dead then betas.(j) else betas.(j + 1))
      in
      let rng' = Rng.split rng ~label:("re-elect-" ^ string_of_int dead) in
      let st =
        run ?faults ~retry_budget ?flight_cap ?shard ?window rng' ~l
          ~betas:betas'
      in
      { rec_stats = st; rec_resumes = resumes; rec_reelected = Some dead }
    in
    match go ~kill_after () with
    | st -> { rec_stats = st; rec_resumes = 0; rec_reelected = None }
    | exception Transport.Party_dropped f0 ->
        let rec retry k last_f =
          if k >= max_restarts then reelect ~resumes:k last_f
          else
            match go ?resume:!latest ~kill_after:(-1) () with
            | st ->
                { rec_stats = st; rec_resumes = k + 1; rec_reelected = None }
            | exception Transport.Party_dropped f -> retry (k + 1) f
        in
        retry 0 f0
end

(** The complete privacy-preserving group ranking framework (Fig. 1):
    secure gain computation, unlinkable gain comparison, and ranking
    submission, glued together over a chosen group instantiation.

    The runtime entry point {!run} executes all three phases for an
    initiator (criterion + weights) and [n] participants (information
    vectors), returning everyone's view: each participant's rank, the
    top-[k] submissions received by the initiator, the over-claim check,
    and the full cost ledger for the evaluation harness. *)

open Ppgr_bigint
open Ppgr_mpcnet
module Trace = Ppgr_obs.Trace
module Metrics = Ppgr_obs.Metrics

type config = {
  spec : Attrs.spec;
  k : int; (* how many top participants the initiator invites *)
  h : int; (* mask bits (rho) *)
  s_dim : int; (* dot-product hiding dimension *)
}

let config ?(h = 15) ?(s_dim = 6) ~spec ~k () =
  if k < 1 then invalid_arg "Framework.config: k must be >= 1";
  { spec; k; h; s_dim }

(** A top-k submission as received by the initiator. *)
type submission = {
  participant : int;
  claimed_rank : int;
  info : Attrs.info;
}

type costs = {
  participant_ops : int array; (* phase-2 group multiplications *)
  participant_exps : int array; (* phase-2 full exponentiations *)
  initiator_field_mults : int; (* phase-1 work on the initiator *)
  schedule : Cost.schedule; (* full message schedule, phases 1-3 *)
  beta_bits : int; (* the l of this run *)
}

type outcome = {
  ranks : int array; (* what each participant learned *)
  submissions : submission list; (* what the initiator received *)
  accepted : submission list; (* submissions passing the recheck *)
  flagged : submission list; (* inconsistent claims *)
  costs : costs;
}

module Make (G : Ppgr_group.Group_intf.GROUP) = struct
  module P2 = Phase2.Make (G)

  (** Over-claim detection (§V, ranking submission): the initiator
      recomputes each submitter's gain and rejects a submission whose
      claimed rank ordering contradicts the recomputed gains, i.e. a
      submitter whose gain is smaller than that of a submitter it
      claims to outrank. *)
  let vet_submissions spec criterion (subs : submission list) =
    let scored =
      List.map (fun s -> (s, Attrs.partial_gain spec criterion s.info)) subs
    in
    let consistent (s, g) =
      List.for_all
        (fun (s', g') ->
          if s'.participant = s.participant then true
          else if s.claimed_rank < s'.claimed_rank then g >= g'
          else if s.claimed_rank > s'.claimed_rank then g <= g'
          else true)
        scored
    in
    List.partition consistent scored
    |> fun (ok, bad) -> (List.map fst ok, List.map fst bad)

  (* Per-party wire tallies of one schedule round, recorded as instant
     spans (party indices 0..n-1 are participants, n is the
     initiator, traced as party -1 so participant tables stay dense). *)
  let record_wire ~step ~n (messages : Netsim.message list) =
    if Trace.enabled () then
      for j = 0 to n do
        let out = ref 0 and inb = ref 0 in
        List.iter
          (fun (m : Netsim.message) ->
            if m.Netsim.src = j then out := !out + m.Netsim.bytes;
            if m.Netsim.dst = j then inb := !inb + m.Netsim.bytes)
          messages;
        if !out > 0 || !inb > 0 then
          Trace.instant
            ~attrs:
              [
                ("party", Trace.Int (if j = n then -1 else j));
                ("bytes_out", Trace.Int !out);
                ("bytes_in", Trace.Int !inb);
              ]
            (step ^ ".wire")
      done

  let run ?(naive_omega = false) rng (cfg : config)
      ~(criterion : Attrs.criterion) ~(infos : Attrs.info array) : outcome =
    let n = Array.length infos in
    if n = 0 then invalid_arg "Framework.run: no participants";
    if cfg.k > n then invalid_arg "Framework.run: k larger than group";
    Trace.with_span
      ~attrs:
        [
          ("group", Trace.Str G.name);
          ("n", Trace.Int n);
          ("k", Trace.Int cfg.k);
        ]
      "framework"
    @@ fun () ->
    (* Phase 1: secure gain computation. *)
    let p1cfg = Phase1.config ~spec:cfg.spec ~h:cfg.h ~s_dim:cfg.s_dim () in
    let field = p1cfg.Phase1.field in
    Ppgr_dotprod.Zfield.reset_mult_count field;
    (* Give the tracer a probe over this run's field instance so the
       phase-1 spans carry field-multiplication deltas; removed again
       before returning since the closure holds the field alive. *)
    if Trace.enabled () then
      Metrics.register ~name:"field_mults" (fun () ->
          Ppgr_dotprod.Zfield.mult_count field);
    Fun.protect ~finally:(fun () -> Metrics.unregister ~name:"field_mults")
    @@ fun () ->
    let _secrets, interactions = Phase1.run rng p1cfg ~criterion ~infos in
    let initiator_field_mults = Ppgr_dotprod.Zfield.mult_count field in
    let l = Phase1.beta_bits p1cfg in
    let field_bytes = (Bigint.numbits (Ppgr_dotprod.Zfield.modulus field) + 7) / 8 in
    (* Phase-1 message schedule: party indices 0..n-1 are participants,
       index n is the initiator. *)
    let phase1_rounds =
      [
        {
          Cost.critical_ops = 0;
          messages =
            List.concat_map
              (fun j ->
                Netsim.unicast ~src:j ~dst:n
                  ~bytes:(interactions.(j).Phase1.round1_elements * field_bytes))
              (List.init n (fun j -> j));
        };
        {
          Cost.critical_ops = 0;
          messages =
            List.concat_map
              (fun j ->
                Netsim.unicast ~src:n ~dst:j
                  ~bytes:(interactions.(j).Phase1.round2_elements * field_bytes))
              (List.init n (fun j -> j));
        };
      ]
    in
    List.iter
      (fun (r : Cost.round) -> record_wire ~step:"phase1" ~n r.Cost.messages)
      phase1_rounds;
    (* Phase 2: unlinkable comparison on the unsigned masked gains. *)
    let betas = Array.map (fun i -> i.Phase1.beta_unsigned) interactions in
    let p2 = P2.run ~naive_omega rng ~l ~betas in
    let ranks = p2.P2.ranks in
    (* Phase 3: top-k submission and over-claim vetting. *)
    let submissions, accepted, flagged, phase3_round =
      Trace.with_span ~attrs:[ ("n", Trace.Int n) ] "phase3" @@ fun () ->
      let submissions =
        List.filter_map
          (fun j ->
            if ranks.(j) <= cfg.k then
              Some { participant = j; claimed_rank = ranks.(j); info = infos.(j) }
            else None)
          (List.init n (fun j -> j))
      in
      let accepted, flagged = vet_submissions cfg.spec criterion submissions in
      let info_bytes = cfg.spec.Attrs.m * 8 in
      let phase3_round =
        {
          Cost.critical_ops = 0;
          messages =
            List.map
              (fun s -> { Netsim.src = s.participant; dst = n; bytes = info_bytes + 8 })
              submissions;
        }
      in
      record_wire ~step:"phase3" ~n phase3_round.Cost.messages;
      (submissions, accepted, flagged, phase3_round)
    in
    {
      ranks;
      submissions;
      accepted;
      flagged;
      costs =
        {
          participant_ops = p2.P2.per_party_ops;
          participant_exps = p2.P2.per_party_exps;
          initiator_field_mults;
          schedule = phase1_rounds @ p2.P2.schedule @ [ phase3_round ];
          beta_bits = l;
        };
    }
end

(** Runtime-dispatch convenience: run the framework over a first-class
    group value. *)
let run_with_group ?naive_omega (g : Ppgr_group.Group_intf.group) rng cfg
    ~criterion ~infos =
  let module G = (val g) in
  let module F = Make (G) in
  F.run ?naive_omega rng cfg ~criterion ~infos

(** Cost ledger shared by the framework implementations.

    Protocols record, per communication round, the critical-path number
    of group operations (or field multiplications for the SS baseline)
    and the messages sent; the benchmark harness turns operation counts
    into seconds with a per-operation calibration factor and feeds the
    message schedule to {!Ppgr_mpcnet.Netsim}. *)

open Ppgr_mpcnet

type round = {
  critical_ops : int; (* slowest party's local ops before sending *)
  messages : Netsim.message list;
}

type schedule = round list

let total_messages (s : schedule) =
  List.fold_left (fun acc r -> acc + List.length r.messages) 0 s

let total_bytes (s : schedule) =
  List.fold_left
    (fun acc r ->
      List.fold_left (fun a (m : Netsim.message) -> a + m.Netsim.bytes) acc r.messages)
    0 s

(** The same schedule as it would look on a deployed wire: every
    message grows by the per-message framing [overhead] (in practice
    {!Wire.envelope_overhead} — sequence number, addressing, CRC).
    Lockstep protocols count payload bytes; feed the enveloped schedule
    to {!Netsim} when modeling the hardened transport. *)
let with_envelopes ~overhead (s : schedule) : schedule =
  if overhead < 0 then invalid_arg "Cost.with_envelopes: negative overhead";
  List.map
    (fun r ->
      {
        r with
        messages =
          List.map
            (fun (m : Netsim.message) ->
              { m with Netsim.bytes = m.Netsim.bytes + overhead })
            r.messages;
      })
    s

let total_critical_ops (s : schedule) =
  List.fold_left (fun acc r -> acc + r.critical_ops) 0 s

(** Convert to a wall-clock schedule given the measured cost of one
    group operation. *)
let to_netsim ~seconds_per_op (s : schedule) : Netsim.schedule =
  List.map
    (fun r ->
      {
        Netsim.compute_s = seconds_per_op *. float_of_int r.critical_ops;
        messages = r.messages;
      })
    s

(** Cost models for the evaluation harness.

    Running the full protocol with 70 parties on a 1024-bit group is far
    beyond what a simulation of every party can do directly (it is tens
    of millions of exponentiations), and the paper itself reports
    per-participant cost.  The harness therefore predicts per-party cost
    from first principles, anchored in measurement:

    - {b structure}: per-party group operations of phase 2 are an exact
      quadratic in [(n-1)] for fixed [l] (pairwise circuits are linear,
      the decryption ring quadratic).  {!He_model.fit} runs the real,
      instrumented protocol on the cheap test group at n = 3, 4, 5 and
      recovers the three coefficients by Lagrange interpolation — no
      asymptotic hand-waving, the protocol itself supplies the counts.
      The fit extrapolates exactly (up to wNAF digit-count noise, <2%);
      the test suite validates predictions against direct runs at larger
      n.
    - {b group transfer}: operation counts split into full
      exponentiations (whose expansion into group multiplications scales
      with the exponent size λ) and λ-independent multiplications.  With
      [mpe(g)] = measured multiplications per exponentiation on group
      [g], per-party multiplications on a target group are
      [exps * mpe(target) + (ops_test - exps * mpe(test))].
    - {b SS baseline}: invocation counts of the multiplication protocol
      per comparator are n-independent; per-party field-multiplication
      unit costs of each primitive follow the engine implementation
      exactly ([mul]: 1 + nt + n, [random]: nt, [open]: n).  Counts are
      measured on a small run and scaled by the Batcher comparator count.

    Wall-clock per group multiplication / field multiplication is
    measured by the bench executable and multiplied in at the end. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_shamir

(* Solve for the quadratic a0 + a1 x + a2 x^2 through three points
   (x1,y1) (x2,y2) (x3,y3) with distinct integer xs. *)
let quadratic_through (x1, y1) (x2, y2) (x3, y3) =
  let x1 = float_of_int x1 and x2 = float_of_int x2 and x3 = float_of_int x3 in
  let d = (x1 -. x2) *. (x1 -. x3) *. (x2 -. x3) in
  let a2 =
    ((y1 *. (x2 -. x3)) -. (y2 *. (x1 -. x3)) +. (y3 *. (x1 -. x2))) /. d
  in
  let a1 =
    ((y2 -. y1) /. (x2 -. x1)) -. (a2 *. (x1 +. x2))
  in
  let a0 = y1 -. (a1 *. x1) -. (a2 *. x1 *. x1) in
  (a0, a1, a2)

let eval_quadratic (a0, a1, a2) x =
  let x = float_of_int x in
  a0 +. (a1 *. x) +. (a2 *. x *. x)

module He_model = struct
  type t = {
    l : int;
    ops_q : float * float * float; (* test-group ops vs (n-1) *)
    exps_q : float * float * float; (* full exponentiations vs (n-1) *)
    mpe_test : float; (* mults per exponentiation on the fit group *)
  }

  (* One instrumented run on the test group; returns the maximum
     per-party (ops, exps). *)
  let measure_once rng ~l ~n =
    let module G = (val Ppgr_group.Dl_group.dl_test_64 ()) in
    let module P2 = Phase2.Make (G) in
    let betas = Array.init n (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l)) in
    let r = P2.run rng ~l ~betas in
    let maxi a = Array.fold_left Stdlib.max 0 a in
    (maxi r.P2.per_party_ops, maxi r.P2.per_party_exps)

  (* Measured mults-per-exponentiation for any group value. *)
  let measure_mpe (g : Ppgr_group.Group_intf.group) ~samples rng =
    let module G = (val g) in
    let x = G.pow_gen (G.random_scalar rng) in
    let s = G.op_snapshot () in
    for _ = 1 to samples do
      ignore (G.pow x (G.random_scalar rng))
    done;
    float_of_int (G.ops_since s) /. float_of_int samples

  let fit ?(ns = [ 3; 4; 5 ]) rng ~l =
    let pts =
      List.map
        (fun n ->
          let ops, exps = measure_once rng ~l ~n in
          (n - 1, float_of_int ops, float_of_int exps))
        ns
    in
    match pts with
    | [ (x1, o1, e1); (x2, o2, e2); (x3, o3, e3) ] ->
        {
          l;
          ops_q = quadratic_through (x1, o1) (x2, o2) (x3, o3);
          exps_q = quadratic_through (x1, e1) (x2, e2) (x3, e3);
          mpe_test = measure_mpe (Ppgr_group.Dl_group.dl_test_64 ()) ~samples:50 rng;
        }
    | _ -> invalid_arg "He_model.fit: need exactly three fit sizes"

  let predict_test_ops m ~n = eval_quadratic m.ops_q (n - 1)
  let predict_exps m ~n = eval_quadratic m.exps_q (n - 1)

  (** Per-party group multiplications on a target group with measured
      [mpe_target]. *)
  let predict_target_mults m ~n ~mpe_target =
    let exps = predict_exps m ~n in
    let base = predict_test_ops m ~n -. (exps *. m.mpe_test) in
    (exps *. mpe_target) +. base

  (** Per-party seconds given measured per-multiplication cost. *)
  let predict_seconds m ~n ~mpe_target ~sec_per_mult =
    predict_target_mults m ~n ~mpe_target *. sec_per_mult

  (** Analytic exponentiation count (cross-check for the fit; from the
      protocol structure: keygen + proof + verification + bitwise
      encryption + ring + final decryption).  Verification is one fused
      simultaneous exponentiation per proof, and each ring step is a
      fused strip-and-blind (two exponentiations per ciphertext instead
      of three) — see the exponentiation-engine section of DESIGN.md. *)
  let analytic_exps ~n ~l =
    let n1 = n - 1 in
    2 + n1 + (2 * l) + (2 * n1 * n1 * l) + (n1 * l)

  (** The phase-2 message schedule, built analytically (byte counts are
      exact; per-round critical ops distributed from the model).  Party
      [n] is the initiator (phases 1/3 use it).

      [pipelined] (default true) models a store-and-forward ring in
      which a party forwards each owner's ciphertext set as soon as it
      has processed it, so a hop's critical path is one set's work, not
      all [n-1]; the sequential-ring model is the [false] case. *)
  let schedule ?(pipelined = true) m ~n ~cipher_bytes ~elem_bytes
      ~scalar_bytes ~mpe_target : Cost.schedule =
    let open Ppgr_mpcnet in
    let l = m.l in
    let n1 = n - 1 in
    let mpe = mpe_target in
    let f2i = int_of_float in
    let per_set = n1 * l in
    (* Base (non-exponentiation) ops split: attribute the quadratic term
       of the base ops to the ring hops and the linear term to the
       circuit round. *)
    let exps = predict_exps m ~n in
    let base_total = predict_test_ops m ~n -. (exps *. m.mpe_test) in
    let circuit_share = base_total *. 0.5 in
    let ring_share = base_total *. 0.5 in
    let keyrounds =
      [
        { Cost.critical_ops = f2i mpe; messages = Netsim.all_broadcast ~parties:n ~bytes:elem_bytes };
        { Cost.critical_ops = f2i mpe; messages = Netsim.all_broadcast ~parties:n ~bytes:elem_bytes };
        { Cost.critical_ops = 0; messages = Netsim.all_broadcast ~parties:n ~bytes:scalar_bytes };
        { Cost.critical_ops = 0; messages = Netsim.all_broadcast ~parties:n ~bytes:scalar_bytes };
      ]
    in
    let encrypt_round =
      {
        Cost.critical_ops = f2i ((float_of_int (n1 + (2 * l)) *. mpe));
        messages = Netsim.all_broadcast ~parties:n ~bytes:(l * cipher_bytes);
      }
    in
    let to_p1 =
      {
        Cost.critical_ops = f2i circuit_share;
        messages =
          List.concat_map
            (fun j -> if j = 0 then [] else Netsim.unicast ~src:j ~dst:0 ~bytes:(per_set * cipher_bytes))
            (List.init n (fun j -> j));
      }
    in
    let hop_ops =
      let full =
        (float_of_int (2 * n1 * per_set) *. mpe) +. (ring_share /. float_of_int n)
      in
      f2i (if pipelined then full /. float_of_int (Stdlib.max 1 n1) else full)
    in
    let ring =
      List.init n (fun hop ->
          if hop < n - 1 then
            { Cost.critical_ops = hop_ops; messages = Netsim.unicast ~src:hop ~dst:(hop + 1) ~bytes:(n * per_set * cipher_bytes) }
          else
            {
              Cost.critical_ops = hop_ops;
              messages =
                List.concat_map
                  (fun o -> if o = n - 1 then [] else Netsim.unicast ~src:(n - 1) ~dst:o ~bytes:(per_set * cipher_bytes))
                  (List.init n (fun o -> o));
            })
    in
    let final =
      { Cost.critical_ops = f2i (float_of_int per_set *. (mpe +. 2.)); messages = [] }
    in
    keyrounds @ [ encrypt_round; to_p1 ] @ ring @ [ final ]
end

module Shard_model = struct
  (** Shard-aware cost model: per-shard quadratic plus merge term.

      The committee-sharded mode replaces one [n]-party ring with
      [ceil(n/s)] rings of [<= s] parties plus a secret-shared top-k
      merge over the shard representatives.  Group work is the sum of
      per-shard quadratics — effectively linear in [n] for fixed [s] —
      and the merge adds field multiplications linear in the candidate
      count.  This model fits both terms from instrumented runs on the
      test group and locates the quadratic-vs-sharded crossover [n*]
      that the bench measures. *)

  type t = {
    l : int;
    total_q : float * float * float;
        (* TOTAL group ops of one distributed run (all parties summed)
           vs (n-1), fitted through measured sizes *)
    merge_mults_per_cand : float;
        (* committee field multiplications per merge candidate; the
           binary search probes all candidates each round, so the cost
           is linear in candidates and k-independent *)
    committee : int;
  }

  (* One instrumented distributed run on the test group; returns the
     total group-op count, the quantity Shard.run accounts per shard. *)
  let measure_total_ops rng ~l ~n =
    let module G = (val Ppgr_group.Dl_group.dl_test_64 ()) in
    let module RT = Runtime.Make (G) in
    let betas =
      Array.init n (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l))
    in
    let s = G.op_snapshot () in
    ignore (RT.run rng ~l ~betas);
    G.ops_since s

  let fit ?(ns = [ 3; 4; 5 ]) ?(committee = 3) ?(r0 = 8) rng ~l =
    let pts =
      List.map (fun n -> (n - 1, float_of_int (measure_total_ops rng ~l ~n))) ns
    in
    let total_q =
      match pts with
      | [ p1; p2; p3 ] -> quadratic_through p1 p2 p3
      | _ -> invalid_arg "Shard_model.fit: need exactly three fit sizes"
    in
    let candidates =
      Array.init r0 (fun i ->
          (i, Rng.bigint_below rng (Bigint.nth_bit_weight l)))
    in
    let st =
      Shard.merge_top_k rng ~l ~committee ~k:(Stdlib.max 1 (r0 / 2)) ~candidates
    in
    {
      l;
      total_q;
      merge_mults_per_cand =
        float_of_int st.Shard.merge_costs.Engine.c_field_mults /. float_of_int r0;
      committee;
    }

  (* Balanced shard sizes, mirroring Shard.make_plan. *)
  let shard_sizes ~n ~shard_size =
    let count = (n + shard_size - 1) / shard_size in
    let base = n / count and extra = n mod count in
    List.init count (fun i -> if i < extra then base + 1 else base)

  (** Total group ops of one monolithic [n]-party run. *)
  let predict_mono_ops m ~n = eval_quadratic m.total_q (n - 1)

  (** Total group ops of the sharded mode: the per-shard quadratic
      summed over the balanced partition (singleton shards run no
      ring). *)
  let predict_sharded_ops m ~n ~shard_size =
    List.fold_left
      (fun acc size -> if size < 2 then acc else acc +. eval_quadratic m.total_q (size - 1))
      0.
      (shard_sizes ~n ~shard_size)

  (** Committee field multiplications of the merge: candidates are the
      per-shard top-[min(k, size)] members. *)
  let predict_merge_mults m ~n ~shard_size ~k =
    let cands =
      List.fold_left
        (fun acc size -> acc + Stdlib.min k size)
        0
        (shard_sizes ~n ~shard_size)
    in
    float_of_int cands *. m.merge_mults_per_cand

  (** End-to-end cost in seconds(-equivalent units): group ops and
      field multiplications are different currencies, so the crossover
      is only meaningful after both are priced. *)
  let predict_seconds_mono m ~n ~sec_per_op = predict_mono_ops m ~n *. sec_per_op

  let predict_seconds_sharded m ~n ~shard_size ~k ~sec_per_op
      ~sec_per_field_mult =
    (predict_sharded_ops m ~n ~shard_size *. sec_per_op)
    +. (predict_merge_mults m ~n ~shard_size ~k *. sec_per_field_mult)

  (** The predicted quadratic→near-linear crossover: the smallest [n]
      above [shard_size] from which the sharded mode stays cheaper.
      Returns [None] if no crossover below [n_max] (e.g. when the merge
      is priced absurdly high). *)
  let crossover ?(n_max = 4096) m ~shard_size ~k ~sec_per_op
      ~sec_per_field_mult =
    let cheaper n =
      predict_seconds_sharded m ~n ~shard_size ~k ~sec_per_op ~sec_per_field_mult
      < predict_seconds_mono m ~n ~sec_per_op
    in
    let rec search n =
      if n > n_max then None
      else if cheaper n && cheaper (n + 1) && cheaper (n + 2) then Some n
      else search (n + 1)
    in
    search (shard_size + 1)
end

module Ss_model = struct
  type t = {
    l : int;
    kappa : int;
    (* Per-comparator invocation counts (n-independent), measured. *)
    mults_per_comp : float;
    randoms_per_comp : float;
    opens_per_comp : float;
    rounds_per_layer : float;
  }

  let measure rng ~l ?(kappa = 40) ?(n0 = 5) ?(log_prefix = true) ?field () =
    let f = match field with Some f -> f | None -> Ppgr_dotprod.Zfield.default () in
    let e = Engine.create rng f ~n:n0 in
    Engine.reset_costs e;
    let prm = { Compare.l; kappa; log_prefix } in
    let betas = Array.init n0 (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l)) in
    ignore (Ss_sort.rank_via_sort e prm betas);
    let c = Engine.costs e in
    let net = Sort_network.generate n0 in
    let comps = float_of_int (Sort_network.comparator_count net) in
    let depth = float_of_int (Sort_network.depth net) in
    {
      l;
      kappa;
      mults_per_comp = float_of_int c.Engine.c_mults /. comps;
      randoms_per_comp = float_of_int c.Engine.c_randoms /. comps;
      opens_per_comp = float_of_int c.Engine.c_opens /. comps;
      rounds_per_layer = float_of_int c.Engine.c_rounds /. depth;
    }

  (** Per-party field multiplications for an n-party run, from the
      engine's unit costs: a multiplication costs a party [1 + nt + n]
      (local product, resharing polynomial evaluations, recombination),
      a random value [nt], an opening [n].

      [faithful:true] replaces the per-comparator multiplication count
      of our implementation (a masked-open comparison, ~5l) with the
      Nishide–Ohta constant the paper assumes (279l + 5) — the SS
      baseline as the paper costs it.  Default follows what we actually
      implemented. *)
  let mults_per_comp ?(faithful = false) m =
    if faithful then float_of_int (Compare.nishide_ohta_mults ~l:m.l)
    else m.mults_per_comp

  let predict_party_field_mults ?faithful m ~n =
    let t = (n - 1) / 2 in
    let comps = float_of_int (Sort_network.comparator_count (Sort_network.generate n)) in
    let mul_cost = float_of_int (1 + (n * t) + n) in
    let rnd_cost = float_of_int (n * t) in
    let open_cost = float_of_int n in
    comps
    *. ((mults_per_comp ?faithful m *. mul_cost)
       +. (m.randoms_per_comp *. rnd_cost)
       +. (m.opens_per_comp *. open_cost))

  let predict_rounds m ~n =
    m.rounds_per_layer *. float_of_int (Sort_network.depth (Sort_network.generate n))

  (** Total field elements on the wire (all parties). *)
  let predict_elements ?faithful m ~n =
    let comps = float_of_int (Sort_network.comparator_count (Sort_network.generate n)) in
    let per_inv = float_of_int (n * (n - 1)) in
    comps
    *. (mults_per_comp ?faithful m +. m.randoms_per_comp +. m.opens_per_comp)
    *. per_inv

  let predict_seconds ?faithful m ~n ~sec_per_field_mult =
    predict_party_field_mults ?faithful m ~n *. sec_per_field_mult

  (** Paper-faithful analytic curve: Nishide–Ohta comparisons at
      [279 l + 5] multiplications each, [n log^2 n] comparisons, each
      multiplication costing a party [O(n t)] field multiplications —
      the §VI-B accounting. *)
  let paper_analytic_party_mults ~n ~l =
    let t = (n - 1) / 2 in
    let comps = float_of_int (Sort_network.comparator_count (Sort_network.generate n)) in
    comps
    *. float_of_int (Compare.nishide_ohta_mults ~l)
    *. float_of_int (n * t)

  (** SS schedule for the network simulation: [rounds] synchronized
      all-to-all exchanges. *)
  let schedule ?faithful m ~n ~field_bytes ~sec_per_field_mult ~sec_per_op :
      Cost.schedule =
    let open Ppgr_mpcnet in
    let rounds = Stdlib.max 1 (int_of_float (predict_rounds m ~n)) in
    let elements = predict_elements ?faithful m ~n in
    let per_pair_bytes =
      Stdlib.max 1
        (int_of_float (elements /. float_of_int (rounds * n * (n - 1))) * field_bytes)
    in
    let mults = predict_party_field_mults ?faithful m ~n in
    (* Express compute in "ops" of the consumer's unit via the ratio of
       the two measured costs. *)
    let ops_per_round =
      int_of_float (mults /. float_of_int rounds *. (sec_per_field_mult /. sec_per_op))
    in
    List.init rounds (fun _ ->
        {
          Cost.critical_ops = ops_per_round;
          messages = Netsim.all_broadcast ~parties:n ~bytes:per_pair_bytes;
        })
end

(** Phase 1 — secure gain computation (Fig. 1 steps 1–4).

    Every participant runs the two-party dot-product protocol with the
    initiator: the participant plays Bob with
    [w'_j = [vg; ve*ve; ve; 1]], the initiator plays Alice with
    [v'_j = [rho wg; -rho we; 2 rho (we*ve0); rho_j]].  The participant
    ends up with the masked partial gain [beta_j = rho p_j + rho_j]
    (and nothing else); the initiator learns nothing.

    [rho] is a random [h]-bit positive integer shared across
    participants; [rho_j] is fresh per participant, uniform in
    [[0, rho)].  Masked gains preserve the strict order of partial gains
    because [p_i > p_j] implies
    [beta_i >= rho p_i >= rho (p_j + 1) > rho p_j + rho_j = beta_j].

    Before phase 2 the signed [beta] is mapped to an [l]-bit unsigned
    integer by adding [2^(l-1)] (§III-A), with
    [l = h + partial_gain_bits]. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_dotprod
module Trace = Ppgr_obs.Trace

type config = {
  spec : Attrs.spec;
  h : int; (* bits of the multiplicative mask rho *)
  s_dim : int; (* hiding dimension s of the dot-product protocol *)
  field : Zfield.t;
}

let config ?(s_dim = 6) ?(field = Zfield.default ()) ~spec ~h () =
  if h <= 0 then invalid_arg "Phase1.config: h must be positive";
  { spec; h; s_dim; field }

(** Unsigned bit-length of the masked gains ([l] in the paper). *)
let beta_bits cfg = cfg.h + Attrs.partial_gain_bits cfg.spec

(** Initiator-side per-run secrets. *)
type initiator_secrets = { rho : Bigint.t; rho_js : Bigint.t array }

let draw_masks rng cfg ~n =
  (* rho is h bits with the top bit set so that every rho_j < rho has
     fewer than h bits and ordering is preserved. *)
  let top = Bigint.nth_bit_weight (cfg.h - 1) in
  let rho = Bigint.add top (Rng.bigint_below rng top) in
  let rho_js = Array.init n (fun _ -> Rng.bigint_below rng rho) in
  { rho; rho_js }

(** Cost/traffic record for one participant-initiator interaction. *)
type interaction = {
  beta_unsigned : Bigint.t; (* the l-bit unsigned masked gain *)
  beta_signed : Bigint.t;
  round1_elements : int; (* field elements participant -> initiator *)
  round2_elements : int; (* field elements initiator -> participant *)
}

(** Run the phase for participant [j] holding [info]. *)
let run_one rng cfg ~criterion ~secrets ~j ~info =
  Trace.with_span ~attrs:[ ("party", Trace.Int j) ] "phase1.gain" @@ fun () ->
  let f = cfg.field in
  (* [participant_vector] ends with the literal 1 of the paper's w'_j;
     the dot-product protocol appends that 1 itself, so strip it here. *)
  let w_full = Attrs.participant_vector cfg.spec info in
  let w =
    Array.map (Zfield.reduce f) (Array.sub w_full 0 (Array.length w_full - 1))
  in
  let bob_st, m1 = Dot_product.bob_round1 rng f ~w ~s:cfg.s_dim in
  (* The initiator's vector, mapped into the field (signed entries wrap). *)
  let v_signed =
    Attrs.initiator_vector cfg.spec criterion ~rho:secrets.rho
      ~rho_j:secrets.rho_js.(j)
  in
  let dim = Array.length v_signed - 1 in
  let v = Array.map (Zfield.of_signed f) (Array.sub v_signed 0 dim) in
  let alpha = Zfield.of_signed f v_signed.(dim) in
  let m2 = Dot_product.alice_round2 rng f ~v ~alpha m1 in
  let beta_field = Dot_product.bob_finish f bob_st m2 in
  let beta_signed = Zfield.to_signed f beta_field in
  let l = beta_bits cfg in
  let beta_unsigned = Bigint.add beta_signed (Bigint.nth_bit_weight (l - 1)) in
  if Bigint.sign beta_unsigned < 0 || Bigint.numbits beta_unsigned > l then
    invalid_arg "Phase1.run_one: beta out of the l-bit range (bad parameters)";
  {
    beta_unsigned;
    beta_signed;
    round1_elements = Dot_product.round1_elements ~s:cfg.s_dim ~dim;
    round2_elements = Dot_product.round2_elements;
  }

(** Run phase 1 for all participants.  Returns per-participant results
    in participant order. *)
let run rng cfg ~criterion ~infos =
  Attrs.check_criterion cfg.spec criterion;
  let n = Array.length infos in
  Trace.with_span ~attrs:[ ("n", Trace.Int n); ("l", Trace.Int (beta_bits cfg)) ]
    "phase1"
  @@ fun () ->
  let secrets = draw_masks rng cfg ~n in
  (secrets, Array.mapi (fun j info -> run_one rng cfg ~criterion ~secrets ~j ~info) infos)

(** Plaintext reference of the masked gain, for tests. *)
let reference_beta cfg ~criterion ~secrets ~j ~info =
  let p = Attrs.partial_gain cfg.spec criterion info in
  Bigint.add
    (Bigint.mul secrets.rho (Bigint.of_int p))
    secrets.rho_js.(j)

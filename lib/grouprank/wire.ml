(** Binary wire format for every message the framework exchanges.

    The simulation layers pass OCaml values around directly; a deployment
    sends bytes.  This module pins down a canonical, versioned encoding
    for each protocol message — phase-1 dot-product rounds, phase-2 key
    announcements, proofs, ciphertext batches, and phase-3 submissions —
    so that (a) the byte counts the evaluation charges are the real
    serialized sizes, and (b) decoding is validating: group elements are
    checked for membership, lengths for consistency.

    Encoding conventions: big-endian fixed-width length prefixes
    (u16 for counts, u32 for blob lengths); non-negative bigints as
    length-prefixed minimal big-endian bytes; group elements in the
    group's fixed-width canonical encoding; every top-level message
    starts with a one-byte tag. *)

open Ppgr_bigint

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(** {1 Primitive writers/readers} *)

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let contents = Buffer.to_bytes

  let u8 b v =
    if v < 0 || v > 0xFF then invalid_arg "Wire.u8";
    Buffer.add_char b (Char.chr v)

  let u16 b v =
    if v < 0 || v > 0xFFFF then invalid_arg "Wire.u16";
    u8 b (v lsr 8);
    u8 b (v land 0xFF)

  let u32 b v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Wire.u32";
    u16 b (v lsr 16);
    u16 b (v land 0xFFFF)

  let blob b (data : Bytes.t) =
    u32 b (Bytes.length data);
    Buffer.add_bytes b data

  let bigint b (v : Bigint.t) =
    if Bigint.sign v < 0 then invalid_arg "Wire.bigint: negative";
    blob b (Bigint.to_bytes_be v)

  (* Signed bigint: sign byte then magnitude. *)
  let sbigint b (v : Bigint.t) =
    u8 b (if Bigint.sign v < 0 then 1 else 0);
    blob b (Bigint.to_bytes_be (Bigint.abs v))
end

module R = struct
  type t = { data : Bytes.t; mutable pos : int }

  let of_bytes data = { data; pos = 0 }

  let ensure r n =
    if r.pos + n > Bytes.length r.data then fail "truncated message (need %d bytes)" n

  let u8 r =
    ensure r 1;
    let v = Char.code (Bytes.get r.data r.pos) in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    let hi = u8 r in
    (hi lsl 8) lor u8 r

  let u32 r =
    let hi = u16 r in
    (hi lsl 16) lor u16 r

  let blob r =
    let len = u32 r in
    ensure r len;
    let b = Bytes.sub r.data r.pos len in
    r.pos <- r.pos + len;
    b

  let bigint r = Bigint.of_bytes_be (blob r)

  let sbigint r =
    let neg = u8 r = 1 in
    let v = Bigint.of_bytes_be (blob r) in
    if neg then Bigint.neg v else v

  let finished r = r.pos = Bytes.length r.data

  let expect_end r = if not (finished r) then fail "trailing bytes"
end

(** {1 Phase-1 (field) messages} *)

(* Message tags. *)
let tag_dot_round1 = 0x01
let tag_dot_round2 = 0x02
let tag_pubkey = 0x10
let tag_zkp = 0x11
let tag_cipher_batch = 0x12
let tag_hop_frame = 0x13
let tag_envelope = 0x14
let tag_ack = 0x15
let tag_checkpoint = 0x16
let tag_submission = 0x20

(** {1 CRC-32}

    IEEE 802.3 CRC-32 (reflected, polynomial 0xEDB88320), the checksum
    of the {!tag_envelope} transport envelope.  Pure integer table
    lookup; result in [0, 2^32). *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(pos = 0) ?len (data : Bytes.t) =
  let len = match len with Some l -> l | None -> Bytes.length data - pos in
  let tbl = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := tbl.((!c lxor Char.code (Bytes.get data i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(** {1 Transport envelope}

    Every runtime message travels inside an envelope: a sequence number
    scoped to its directed link (duplicate suppression and reorder
    detection) and a CRC-32 over everything before it (corruption
    detection — decoding is validating, so a damaged envelope is a
    typed {!Malformed}, never a mis-decode).

    Layout: [tag(1) | src u16 | dst u16 | seq u32 | payload blob | crc u32]. *)

type envelope = {
  env_src : int;
  env_dst : int;
  env_seq : int;
  env_payload : Bytes.t;
}

let encode_envelope ~src ~dst ~seq (payload : Bytes.t) =
  let b = W.create () in
  W.u8 b tag_envelope;
  W.u16 b src;
  W.u16 b dst;
  W.u32 b seq;
  W.blob b payload;
  let body = W.contents b in
  let out = Bytes.create (Bytes.length body + 4) in
  Bytes.blit body 0 out 0 (Bytes.length body);
  let crc = crc32 body in
  Bytes.set out (Bytes.length body) (Char.chr ((crc lsr 24) land 0xFF));
  Bytes.set out (Bytes.length body + 1) (Char.chr ((crc lsr 16) land 0xFF));
  Bytes.set out (Bytes.length body + 2) (Char.chr ((crc lsr 8) land 0xFF));
  Bytes.set out (Bytes.length body + 3) (Char.chr (crc land 0xFF));
  out

let decode_envelope data =
  let total = Bytes.length data in
  if total < 18 then fail "envelope shorter than its fixed fields";
  (* Check the CRC before trusting any length field: a corrupted length
     prefix must not steer the parse. *)
  let stored =
    let g i = Char.code (Bytes.get data (total - 4 + i)) in
    (g 0 lsl 24) lor (g 1 lsl 16) lor (g 2 lsl 8) lor g 3
  in
  if crc32 ~pos:0 ~len:(total - 4) data <> stored then
    fail "envelope CRC mismatch";
  let r = R.of_bytes (Bytes.sub data 0 (total - 4)) in
  if R.u8 r <> tag_envelope then fail "bad tag for envelope";
  let env_src = R.u16 r in
  let env_dst = R.u16 r in
  let env_seq = R.u32 r in
  let env_payload = R.blob r in
  R.expect_end r;
  { env_src; env_dst; env_seq; env_payload }

(** Serialized envelope size for a payload of the given size: fixed
    fields (tag, src, dst, seq, payload length prefix, CRC) + payload. *)
let envelope_overhead = 1 + 2 + 2 + 4 + 4 + 4

let envelope_bytes payload_size = envelope_overhead + payload_size

(** {1 Hop frames}

    A ring hop used to ship [n] separate cipher-batch messages, one per
    owner set; a hop frame packs them into a single wire message so a
    hop costs one send.  The frame is payload-agnostic: a one-byte tag,
    a u16 payload count, then each payload as a u32-length-prefixed
    blob — round-tripping whatever [encode_cipher_batch] produced
    without re-encoding. *)

let encode_hop_frame (payloads : Bytes.t array) =
  let b = W.create () in
  W.u8 b tag_hop_frame;
  W.u16 b (Array.length payloads);
  Array.iter (W.blob b) payloads;
  W.contents b

let decode_hop_frame data =
  let r = R.of_bytes data in
  if R.u8 r <> tag_hop_frame then fail "bad tag for hop frame";
  let n = R.u16 r in
  (* Fuzzer-surfaced edge cases: a zero-count frame is meaningless on
     the ring (every hop carries n >= 2 sets) and would make a
     corrupted count field silently decode to an empty vector; and each
     payload length must be re-checked against the remaining buffer
     here so a lying u32 fails as a typed error before any allocation
     is sized from it. *)
  if n = 0 then fail "hop frame with zero payloads";
  let payloads =
    Array.init n (fun _ ->
        let len = R.u32 r in
        if len > Bytes.length r.R.data - r.R.pos then
          fail "hop frame payload length %d exceeds remaining %d bytes" len
            (Bytes.length r.R.data - r.R.pos);
        let b = Bytes.sub r.R.data r.R.pos len in
        r.R.pos <- r.R.pos + len;
        b)
  in
  R.expect_end r;
  payloads

(** Exact serialized size of a frame over payloads of the given sizes:
    tag + count + one u32 length prefix per payload. *)
let hop_frame_bytes payload_sizes =
  1 + 2 + List.fold_left (fun acc s -> acc + 4 + s) 0 payload_sizes

(* Shared CRC-32 trailer discipline for the control-plane frames below:
   the CRC covers every byte before it and is checked before any length
   field is trusted, exactly like {!decode_envelope}. *)
let append_crc body =
  let blen = Bytes.length body in
  let out = Bytes.create (blen + 4) in
  Bytes.blit body 0 out 0 blen;
  let crc = crc32 body in
  Bytes.set out blen (Char.chr ((crc lsr 24) land 0xFF));
  Bytes.set out (blen + 1) (Char.chr ((crc lsr 16) land 0xFF));
  Bytes.set out (blen + 2) (Char.chr ((crc lsr 8) land 0xFF));
  Bytes.set out (blen + 3) (Char.chr (crc land 0xFF));
  out

let check_crc ~what ~min_len data =
  let total = Bytes.length data in
  if total < min_len then fail "%s shorter than its fixed fields" what;
  let stored =
    let g i = Char.code (Bytes.get data (total - 4 + i)) in
    (g 0 lsl 24) lor (g 1 lsl 16) lor (g 2 lsl 8) lor g 3
  in
  if crc32 ~pos:0 ~len:(total - 4) data <> stored then fail "%s CRC mismatch" what;
  R.of_bytes (Bytes.sub data 0 (total - 4))

(** {1 Ack frames}

    The windowed transport's cumulative acknowledgements.  [ack_cum] is
    the receiver's next expected sequence number on the directed link
    [(ack_src, ack_dst)] — everything below it has been accepted —
    and [ack_sack] is a 32-bit selective-ack bitmap: bit [j] set means
    sequence [ack_cum + 1 + j] was received out of order and is
    buffered (so the sender must not retransmit it).  Acks travel the
    reverse link under the same CRC-32 envelope discipline as data:
    [tag(1) | src u16 | dst u16 | cum u32 | sack u32 | crc u32]. *)

type ack = { ack_src : int; ack_dst : int; ack_cum : int; ack_sack : int }

let encode_ack (a : ack) =
  let b = W.create () in
  W.u8 b tag_ack;
  W.u16 b a.ack_src;
  W.u16 b a.ack_dst;
  W.u32 b a.ack_cum;
  W.u32 b a.ack_sack;
  append_crc (W.contents b)

let decode_ack data =
  let r = check_crc ~what:"ack" ~min_len:17 data in
  if R.u8 r <> tag_ack then fail "bad tag for ack";
  let ack_src = R.u16 r in
  let ack_dst = R.u16 r in
  let ack_cum = R.u32 r in
  let ack_sack = R.u32 r in
  R.expect_end r;
  { ack_src; ack_dst; ack_cum; ack_sack }

(** Serialized ack size: fixed — tag, src, dst, cum, sack, CRC. *)
let ack_overhead = 1 + 2 + 2 + 4 + 4 + 4

(** {1 Checkpoint frames}

    Protocol-level checkpoint/restart state, serialized at every
    completed protocol step.  The frame is {e plain data} — int
    matrices, counters, opaque payload blobs — so this module stays
    below {!Transport} and {!Runtime} in the dependency order; those
    layers map their state in and out.

    [transport_snap] is the transport's complete persisted state: the
    per-link sequence counters, every physical tally, the chained
    transcript digest, the closed per-step rounds plus the in-progress
    round, per-link fault-draw counts (so a resumed run can fast-forward
    a fresh {!Ppgr_mpcnet.Faultplan} to the exact schedule position),
    and any reorder-limbo envelopes still held.

    The whole frame rides the same CRC-32 trailer as envelopes and
    acks; decoding validates the CRC before trusting any length, and
    every count is re-checked against the remaining buffer before it
    sizes an allocation (the {!decode_hop_frame} hardening). *)

type transport_snap = {
  ts_n : int;
  ts_send_seq : int array array; (* n*n, next seq to assign *)
  ts_recv_seq : int array array; (* n*n, next seq expected *)
  ts_counters : int array;
      (* fixed order: retransmits, drops, crc_rejects, dup_suppressed,
         reorders, delays, backoff_ticks, phys_messages, phys_bytes,
         acks_sent, ack_bytes, sim_ticks *)
  ts_phys_sent : int array; (* per party *)
  ts_phys_received : int array;
  ts_retrans_by_src : int array;
  ts_env_by_src : int array;
  ts_link_msgs : int array array;
  ts_link_bytes : int array array;
  ts_link_retrans : int array array;
  ts_fault_draws : int array array; (* fault-plan draws consumed, per link *)
  ts_digest : Bytes.t; (* chained transcript digest, 32 bytes *)
  ts_step : string; (* current protocol step *)
  ts_rounds : (string * (int * int * int) list) list;
      (* closed physical rounds, oldest first; messages as (src, dst, bytes) *)
  ts_round : (int * int * int) list; (* current step's messages, oldest first *)
  ts_limbo : (int * Bytes.t list) list; (* held reorder envelopes, per link key *)
}

let n_counters = 12

type checkpoint_frame = {
  ck_step : int; (* number of completed protocol steps *)
  ck_n : int; (* party count *)
  ck_bytes_total : int; (* logical accounting at checkpoint time *)
  ck_msg_total : int;
  ck_sent : int array; (* logical payload bytes out, per party *)
  ck_received : int array;
  ck_enc : Bytes.t array; (* encrypted-bit announcements (empty until step 2) *)
  ck_v : Bytes.t array; (* current ring vector (empty until step 3) *)
  ck_snap : transport_snap;
}

let encode_checkpoint (c : checkpoint_frame) =
  let b = W.create () in
  let vec v =
    W.u16 b (Array.length v);
    Array.iter (fun x -> W.u32 b x) v
  in
  let mat m = Array.iter vec m in
  let str s =
    W.u16 b (String.length s);
    Buffer.add_string b s
  in
  let msgs ms =
    W.u32 b (List.length ms);
    List.iter
      (fun (src, dst, bytes) ->
        W.u16 b src;
        W.u16 b dst;
        W.u32 b bytes)
      ms
  in
  let blobs a =
    W.u16 b (Array.length a);
    Array.iter (W.blob b) a
  in
  W.u8 b tag_checkpoint;
  W.u16 b c.ck_step;
  W.u16 b c.ck_n;
  W.u32 b c.ck_bytes_total;
  W.u32 b c.ck_msg_total;
  vec c.ck_sent;
  vec c.ck_received;
  blobs c.ck_enc;
  blobs c.ck_v;
  let s = c.ck_snap in
  W.u16 b s.ts_n;
  mat s.ts_send_seq;
  mat s.ts_recv_seq;
  vec s.ts_counters;
  vec s.ts_phys_sent;
  vec s.ts_phys_received;
  vec s.ts_retrans_by_src;
  vec s.ts_env_by_src;
  mat s.ts_link_msgs;
  mat s.ts_link_bytes;
  mat s.ts_link_retrans;
  mat s.ts_fault_draws;
  W.blob b s.ts_digest;
  str s.ts_step;
  W.u16 b (List.length s.ts_rounds);
  List.iter
    (fun (name, ms) ->
      str name;
      msgs ms)
    s.ts_rounds;
  msgs s.ts_round;
  W.u16 b (List.length s.ts_limbo);
  List.iter
    (fun (key, held) ->
      W.u32 b key;
      W.u16 b (List.length held);
      List.iter (W.blob b) held)
    s.ts_limbo;
  append_crc (W.contents b)

let decode_checkpoint data =
  let r = check_crc ~what:"checkpoint" ~min_len:18 data in
  if R.u8 r <> tag_checkpoint then fail "bad tag for checkpoint";
  let remaining () = Bytes.length r.R.data - r.R.pos in
  (* Every count sizes an allocation: bound it by the bytes actually
     present before any Array.init, so a lying count is a typed decode
     error rather than a giant allocation (the hop-frame lesson). *)
  let vec () =
    let k = R.u16 r in
    if 4 * k > remaining () then
      fail "checkpoint vector count %d exceeds remaining %d bytes" k (remaining ());
    Array.init k (fun _ -> R.u32 r)
  in
  let vec_exact what k =
    let v = vec () in
    if Array.length v <> k then
      fail "checkpoint %s length %d, expected %d" what (Array.length v) k;
    v
  in
  let mat what n = Array.init n (fun _ -> vec_exact what n) in
  let str () =
    let k = R.u16 r in
    R.ensure r k;
    let s = Bytes.sub_string r.R.data r.R.pos k in
    r.R.pos <- r.R.pos + k;
    s
  in
  let msgs () =
    let k = R.u32 r in
    if 8 * k > remaining () then
      fail "checkpoint round count %d exceeds remaining %d bytes" k (remaining ());
    List.init k (fun _ ->
        let src = R.u16 r in
        let dst = R.u16 r in
        let bytes = R.u32 r in
        (src, dst, bytes))
  in
  let blob_checked () =
    let len = R.u32 r in
    if len > remaining () then
      fail "checkpoint blob length %d exceeds remaining %d bytes" len (remaining ());
    let b = Bytes.sub r.R.data r.R.pos len in
    r.R.pos <- r.R.pos + len;
    b
  in
  let blobs () =
    let k = R.u16 r in
    if 4 * k > remaining () then
      fail "checkpoint blob count %d exceeds remaining %d bytes" k (remaining ());
    Array.init k (fun _ -> blob_checked ())
  in
  let ck_step = R.u16 r in
  let ck_n = R.u16 r in
  if ck_n = 0 then fail "checkpoint with zero parties";
  let ck_bytes_total = R.u32 r in
  let ck_msg_total = R.u32 r in
  let ck_sent = vec_exact "sent" ck_n in
  let ck_received = vec_exact "received" ck_n in
  let ck_enc = blobs () in
  let ck_v = blobs () in
  let ts_n = R.u16 r in
  if ts_n <> ck_n then fail "checkpoint party count %d / snapshot %d mismatch" ck_n ts_n;
  let ts_send_seq = mat "send_seq" ts_n in
  let ts_recv_seq = mat "recv_seq" ts_n in
  let ts_counters = vec_exact "counters" n_counters in
  let ts_phys_sent = vec_exact "phys_sent" ts_n in
  let ts_phys_received = vec_exact "phys_received" ts_n in
  let ts_retrans_by_src = vec_exact "retrans_by_src" ts_n in
  let ts_env_by_src = vec_exact "env_by_src" ts_n in
  let ts_link_msgs = mat "link_msgs" ts_n in
  let ts_link_bytes = mat "link_bytes" ts_n in
  let ts_link_retrans = mat "link_retrans" ts_n in
  let ts_fault_draws = mat "fault_draws" ts_n in
  let ts_digest = blob_checked () in
  if Bytes.length ts_digest <> 32 then
    fail "checkpoint digest is %d bytes, expected 32" (Bytes.length ts_digest);
  let ts_step = str () in
  let nrounds = R.u16 r in
  let ts_rounds =
    List.init nrounds (fun _ ->
        let name = str () in
        let ms = msgs () in
        (name, ms))
  in
  let ts_round = msgs () in
  let nlimbo = R.u16 r in
  let ts_limbo =
    List.init nlimbo (fun _ ->
        let key = R.u32 r in
        if key >= ts_n * ts_n then fail "checkpoint limbo key %d out of range" key;
        let k = R.u16 r in
        if 4 * k > remaining () then
          fail "checkpoint limbo count %d exceeds remaining %d bytes" k (remaining ());
        let held = List.init k (fun _ -> blob_checked ()) in
        (key, held))
  in
  R.expect_end r;
  {
    ck_step;
    ck_n;
    ck_bytes_total;
    ck_msg_total;
    ck_sent;
    ck_received;
    ck_enc;
    ck_v;
    ck_snap =
      {
        ts_n;
        ts_send_seq;
        ts_recv_seq;
        ts_counters;
        ts_phys_sent;
        ts_phys_received;
        ts_retrans_by_src;
        ts_env_by_src;
        ts_link_msgs;
        ts_link_bytes;
        ts_link_retrans;
        ts_fault_draws;
        ts_digest;
        ts_step;
        ts_rounds;
        ts_round;
        ts_limbo;
      };
  }

let encode_vec b (v : Bigint.t array) =
  W.u16 b (Array.length v);
  Array.iter (W.bigint b) v

let decode_vec r =
  let n = R.u16 r in
  Array.init n (fun _ -> R.bigint r)

let encode_dot_round1 (m : Ppgr_dotprod.Dot_product.round1) =
  let b = W.create () in
  W.u8 b tag_dot_round1;
  W.u16 b (Array.length m.Ppgr_dotprod.Dot_product.qx);
  Array.iter (encode_vec b) m.Ppgr_dotprod.Dot_product.qx;
  encode_vec b m.Ppgr_dotprod.Dot_product.c';
  encode_vec b m.Ppgr_dotprod.Dot_product.g;
  W.contents b

let decode_dot_round1 data : Ppgr_dotprod.Dot_product.round1 =
  let r = R.of_bytes data in
  if R.u8 r <> tag_dot_round1 then fail "bad tag for dot round 1";
  let rows = R.u16 r in
  let qx = Array.init rows (fun _ -> decode_vec r) in
  let c' = decode_vec r in
  let g = decode_vec r in
  R.expect_end r;
  if Array.length c' <> Array.length g then fail "c'/g dimension mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length c' then fail "QX row dimension mismatch")
    qx;
  { Ppgr_dotprod.Dot_product.qx; c'; g }

let encode_dot_round2 (m : Ppgr_dotprod.Dot_product.round2) =
  let b = W.create () in
  W.u8 b tag_dot_round2;
  W.bigint b m.Ppgr_dotprod.Dot_product.a;
  W.bigint b m.Ppgr_dotprod.Dot_product.h;
  W.contents b

let decode_dot_round2 data : Ppgr_dotprod.Dot_product.round2 =
  let r = R.of_bytes data in
  if R.u8 r <> tag_dot_round2 then fail "bad tag for dot round 2";
  let a = R.bigint r in
  let h = R.bigint r in
  R.expect_end r;
  { Ppgr_dotprod.Dot_product.a; h }

(** {1 Phase-3 submission} *)

type submission_msg = { sub_rank : int; sub_info : int array }

let encode_submission (m : submission_msg) =
  let b = W.create () in
  W.u8 b tag_submission;
  W.u16 b m.sub_rank;
  W.u16 b (Array.length m.sub_info);
  Array.iter (fun v -> W.u32 b v) m.sub_info;
  W.contents b

let decode_submission data =
  let r = R.of_bytes data in
  if R.u8 r <> tag_submission then fail "bad tag for submission";
  let sub_rank = R.u16 r in
  let m = R.u16 r in
  let sub_info = Array.init m (fun _ -> R.u32 r) in
  R.expect_end r;
  { sub_rank; sub_info }

(** {1 Phase-2 (group) messages} *)

module Make (G : Ppgr_group.Group_intf.GROUP) = struct
  module E = Ppgr_elgamal.Elgamal.Make (G)
  module Z = Ppgr_zkp.Schnorr.Make (G)

  let encode_element b (e : G.element) = Buffer.add_bytes b (G.to_bytes e)

  let decode_element r =
    R.ensure r G.element_bytes;
    let raw = Bytes.sub r.R.data r.R.pos G.element_bytes in
    r.R.pos <- r.R.pos + G.element_bytes;
    match G.of_bytes raw with
    | Some e -> e
    | None -> fail "invalid group element (not in the group)"

  let encode_pubkey (y : G.element) =
    let b = W.create () in
    W.u8 b tag_pubkey;
    encode_element b y;
    W.contents b

  let decode_pubkey data =
    let r = R.of_bytes data in
    if R.u8 r <> tag_pubkey then fail "bad tag for pubkey";
    let y = decode_element r in
    R.expect_end r;
    y

  let encode_zkp (t : Z.transcript) =
    let b = W.create () in
    W.u8 b tag_zkp;
    encode_element b t.Z.commitment;
    W.u16 b (List.length t.Z.challenges);
    List.iter (W.bigint b) t.Z.challenges;
    W.bigint b t.Z.response;
    W.contents b

  let decode_zkp data : Z.transcript =
    let r = R.of_bytes data in
    if R.u8 r <> tag_zkp then fail "bad tag for zkp";
    let commitment = decode_element r in
    let nc = R.u16 r in
    let challenges = List.init nc (fun _ -> R.bigint r) in
    let response = R.bigint r in
    R.expect_end r;
    { Z.commitment; challenges; response }

  let encode_cipher b (c : E.cipher) =
    encode_element b c.E.c;
    encode_element b c.E.c'

  let decode_cipher r =
    let c = decode_element r in
    let c' = decode_element r in
    { E.c; c' }

  (** A batch of ciphertexts (step-6 bit vectors, step-7/8 sets).
      Element serialization goes through [G.to_bytes_batch] so the EC
      family normalizes the whole batch with one shared field
      inversion. *)
  let encode_cipher_batch (cs : E.cipher array) =
    let k = Array.length cs in
    let els =
      Array.init (2 * k) (fun i ->
          let c = cs.(i / 2) in
          if i land 1 = 0 then c.E.c else c.E.c')
    in
    let raw = G.to_bytes_batch els in
    let b = W.create () in
    W.u8 b tag_cipher_batch;
    W.u32 b k;
    Array.iter (Buffer.add_bytes b) raw;
    W.contents b

  let decode_cipher_batch data =
    let r = R.of_bytes data in
    if R.u8 r <> tag_cipher_batch then fail "bad tag for cipher batch";
    let n = R.u32 r in
    (* The count sizes an allocation, so bound it by the bytes actually
       present before building the array: a corrupted u32 must be a
       typed decode error, not a multi-gigabyte Array.init. *)
    if n * 2 * G.element_bytes <> Bytes.length r.R.data - r.R.pos then
      fail "cipher batch count %d inconsistent with %d payload bytes" n
        (Bytes.length r.R.data - r.R.pos);
    let cs = Array.init n (fun _ -> decode_cipher r) in
    R.expect_end r;
    cs

  (** Exact serialized size of a [k]-ciphertext batch; the evaluation's
      [S_c]-based accounting plus framing. *)
  let cipher_batch_bytes k = 1 + 4 + (k * 2 * G.element_bytes)
end

(** Phase 2 — the identity-unlinkable multiparty sorting protocol
    (Fig. 1 steps 5–8), the paper's core contribution.

    Each participant [P_j] holds an [l]-bit unsigned masked gain
    [beta_j].  The protocol gives every participant the rank of its own
    value — and nothing else — in [O(n)] communication rounds:

    + {b Keys} (step 5): each participant picks an ElGamal key pair for
      the shared group and proves knowledge of its secret key to the
      [n-1] others with the multi-verifier Schnorr proof; the joint
      public key is [y = Π y_j], whose secret key nobody knows.
    + {b Bitwise encryption} (step 6): each participant publishes the
      bit-by-bit exponential-ElGamal encryption of [beta_j] under [y].
    + {b Blind comparison} (step 7): for every other participant [P_i],
      [P_j] homomorphically evaluates on [E(beta_i)] — using its own
      bits in the clear — the circuit
      [gamma^b = beta_j^b XOR beta_i^b],
      [omega^b = (l-b)(1 - gamma^b) + Σ_{v>b} gamma^v],
      [tau^b = omega^b + beta_j^b]:
      the [tau] vector contains a 0 iff [beta_j < beta_i] (at most one).
      The suffix sums make the circuit O(l) homomorphic operations per
      pair instead of the naive O(l^2) (see the ablation bench).
      All of [P_j]'s ciphertext sets go to [P_1].
    + {b Decryption ring} (step 8): [P_1 .. P_n] each in turn partially
      decrypt every ciphertext of every set not their own, raise both
      components to a fresh random exponent (so non-zero plaintexts are
      randomized while zeros stay zero), and permute each set; [P_n]
      returns each set to its owner.
    + {b Counting}: [P_j] strips its own key layer from its set and
      counts zero plaintexts ([g^m = 1]); its rank is [count + 1].

    Identity unlinkability comes from the per-set permutations: an
    adversary controlling up to [n-2] parties cannot link a plaintext
    zero back to the comparison that produced it. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_mpcnet
module Trace = Ppgr_obs.Trace

module Make (G : Ppgr_group.Group_intf.GROUP) = struct
  module E = Ppgr_elgamal.Elgamal.Make (G)
  module Z = Ppgr_zkp.Schnorr.Make (G)
  module W = Wire.Make (G)

  let scalar_bytes = (Bigint.numbits G.order + 7) / 8

  type result = {
    ranks : int array; (* 1-based; index = participant *)
    per_party_ops : int array; (* group operations by each participant *)
    per_party_exps : int array; (* full-size exponentiations per party *)
    schedule : Cost.schedule;
    zkp_ok : bool array array; (* zkp_ok.(verifier).(prover) *)
    zero_flags : bool array array;
        (* zero_flags.(j).(c): whether ciphertext c of P_j's returned
           (post-permutation) set decrypted to zero — exposed so the
           security-game tests can check the permutations leave zero
           positions uniform. *)
  }

  (* Track each party's group operations and full exponentiations by
     snapshotting the global meters around that party's local
     computation.  Parties still execute one at a time in this
     simulation; a party's own hot loops may fan out over the domain
     pool, whose per-domain meter lanes all land in the same party's
     delta.  Each delta is additionally recorded as one tracer span
     named after the step and attributed to the party — these spans
     tile the phase's computation, so the summary table's column sums
     equal the global meters. *)
  let with_party2 ?(step = "step") ?(attrs = []) ops exps j f =
    Trace.with_span ~attrs:(("party", Trace.Int j) :: attrs) ("phase2." ^ step)
      (fun () ->
        let before = G.op_snapshot () in
        let before_e = Ppgr_group.Opmeter.snapshot () in
        let r = f () in
        ops.(j) <- ops.(j) + G.ops_since before;
        exps.(j) <- exps.(j) + Ppgr_group.Opmeter.since before_e;
        r)

  (* The homomorphic identity E(0) with zero randomness; a valid
     starting point for homomorphic sums. *)
  let enc_zero = { E.c = G.identity; c' = G.identity }

  (** The step-7 circuit: [P_j]'s comparison of its clear bits against
      [P_i]'s encrypted bits.  Returns the [l] ciphertexts [E(tau^b)].
      [naive_omega] recomputes each suffix sum from scratch (the paper's
      O(l^2) accounting), for the ablation bench. *)
  let compare_circuit ?(naive_omega = false) ~l ~own_bits (enc_bits : E.cipher array) =
    if Array.length enc_bits <> l then invalid_arg "Phase2.compare_circuit: bad length";
    (* gamma^b = own XOR other: linear because own bits are clear. *)
    let gamma =
      Array.init l (fun b ->
          if own_bits.(b) = 0 then enc_bits.(b)
          else E.add_clear (E.neg enc_bits.(b)) Bigint.one)
    in
    let suffix b =
      (* Σ_{v>b} gamma^v *)
      let acc = ref enc_zero in
      for v = b + 1 to l - 1 do
        acc := E.add !acc gamma.(v)
      done;
      !acc
    in
    let suffixes =
      if naive_omega then Array.init l suffix
      else begin
        (* One pass from the top: S_{l-1} = 0, S_b = S_{b+1} + gamma_{b+1}. *)
        let s = Array.make l enc_zero in
        for b = l - 2 downto 0 do
          s.(b) <- E.add s.(b + 1) gamma.(b + 1)
        done;
        s
      end
    in
    Array.init l (fun b ->
        (* omega^b = (l-b)(1-gamma^b) + S_b;  tau^b = omega^b + own bit. *)
        let one_minus = E.add_clear (E.neg gamma.(b)) Bigint.one in
        let omega = E.add (E.scale_int one_minus (l - b)) suffixes.(b) in
        if own_bits.(b) = 0 then omega else E.add_clear omega Bigint.one)

  (* Stream labels for the per-task Rng.split calls are preformatted
     once per run and shared across parties/hops: the strings are
     byte-identical to the Printf-formatted originals (asserted by the
     golden transcript test), so every derived stream — and hence every
     rank and ciphertext — is unchanged, but the hot loops no longer
     pay a Printf per task. *)
  let index_labels prefix n = Array.init n (fun i -> prefix ^ string_of_int i)

  (** Step-6 unit: the bitwise encryption of one party's masked gain.
      Bit [b] encrypts under its own child stream of [rng] keyed by
      position, so the bits fan out over the domain pool with a
      transcript independent of the job count. *)
  let encrypt_bits rng ~labels tbl (bits : int array) =
    let bit_rngs =
      Array.init (Array.length bits) (fun b -> Rng.split rng ~label:labels.(b))
    in
    Ppgr_exec.Pool.parallel_init (Array.length bits) (fun b ->
        E.encrypt_exp_int_with bit_rngs.(b) tbl bits.(b))

  (** Step-7 unit: [P_self]'s comparison circuits against every other
      party's encrypted bits.  The circuit is a deterministic
      homomorphic evaluation, so the [n-1] pairs are embarrassingly
      parallel. *)
  let compare_all ?(naive_omega = false) ~l ~own_bits ~self
      (all_enc_bits : E.cipher array array) =
    Ppgr_exec.Pool.parallel_init (Array.length all_enc_bits) (fun i ->
        if i = self then None
        else Some (compare_circuit ~naive_omega ~l ~own_bits all_enc_bits.(i)))

  (** Step-8 unit: one ring hop over one owner's set — strip a key
      layer and blind every slot, then permute.  Each slot draws from
      its own child stream of [rng] keyed by position; the final
      shuffle draws from [rng] itself, which the splits leave
      undisturbed. *)
  let blind_set rng ~labels secret (set : E.cipher array) =
    let slot_rngs =
      Array.init (Array.length set) (fun c -> Rng.split rng ~label:labels.(c))
    in
    Ppgr_exec.Pool.parallel_for (Array.length set) (fun c ->
        set.(c) <- E.partial_decrypt_blind slot_rngs.(c) secret set.(c));
    Rng.shuffle rng set

  (* Cumulative-ack reverse traffic of a windowed transport: one ack
     frame per full (or partial) window on every directed link that
     carried data in the round.  Sorted for a deterministic schedule. *)
  let ack_traffic ~window (messages : Netsim.message list) =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (m : Netsim.message) ->
        let key = (m.Netsim.src, m.Netsim.dst) in
        Hashtbl.replace tbl key
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
      messages;
    let acks =
      Hashtbl.fold
        (fun (src, dst) k acc ->
          let n_acks = (k + window - 1) / window in
          List.init n_acks (fun _ ->
              { Netsim.src = dst; dst = src; bytes = Wire.ack_overhead })
          @ acc)
        tbl []
    in
    List.sort compare acks

  (* Per-party in/out byte tallies of one round's messages, recorded as
     instant wire spans so the trace carries the paper's per-step
     communication breakdown next to the computation spans. *)
  let record_wire ?(attrs = []) ~step ~n (messages : Netsim.message list) =
    if Trace.enabled () then
      for j = 0 to n - 1 do
        let out = ref 0 and inb = ref 0 in
        List.iter
          (fun (m : Netsim.message) ->
            if m.Netsim.src = j then out := !out + m.Netsim.bytes;
            if m.Netsim.dst = j then inb := !inb + m.Netsim.bytes)
          messages;
        if !out > 0 || !inb > 0 then
          Trace.instant
            ~attrs:
              ([
                 ("party", Trace.Int j);
                 ("bytes_out", Trace.Int !out);
                 ("bytes_in", Trace.Int !inb);
               ]
              @ attrs)
            ("phase2." ^ step ^ ".wire")
      done

  (** [window]: when above 1, every round's message list additionally
      carries the cumulative-ack reverse traffic a windowed transport
      of that size would generate (one {!Wire.ack_overhead}-byte frame
      per window per loaded link) — so the derived {!Netsim} schedules
      price the control plane.  Absent (or 1) the schedule is unchanged
      from the stop-and-wait accounting. *)
  let run ?(naive_omega = false) ?shard ?window rng ~l ~(betas : Bigint.t array)
      : result =
    let n = Array.length betas in
    if n = 0 then invalid_arg "Phase2.run: no participants";
    Array.iter
      (fun b ->
        if Bigint.sign b < 0 || Bigint.numbits b > l then
          invalid_arg "Phase2.run: beta out of l-bit range")
      betas;
    (* A sharded run tags every span with the shard index so the
       Summary can roll the table up per shard. *)
    let shard_attrs =
      match shard with None -> [] | Some s -> [ ("shard", Trace.Int s) ]
    in
    Trace.with_span
      ~attrs:
        ([ ("group", Trace.Str G.name); ("n", Trace.Int n); ("l", Trace.Int l) ]
        @ shard_attrs)
      "phase2"
    @@ fun () ->
    let ops = Array.make n 0 in
    let exps = Array.make n 0 in
    let with_party ~step ops j f =
      with_party2 ~step ~attrs:shard_attrs ops exps j f
    in
    let schedule = ref [] in
    let round ~step ~critical_ops messages =
      let messages =
        match window with
        | Some w when w > 1 -> messages @ ack_traffic ~window:w messages
        | _ -> messages
      in
      schedule := { Cost.critical_ops; messages } :: !schedule;
      record_wire ~attrs:shard_attrs ~step ~n messages
    in
    (* Critical-path ops of a step: the largest per-party op delta since
       the snapshot taken before the step. *)
    let snap () = Array.copy ops in
    let crit_since s =
      let m = ref 0 in
      Array.iteri (fun j v -> if v - s.(j) > !m then m := v - s.(j)) ops;
      !m
    in
    let party_labels = index_labels "party-" n in
    let party_rngs = Array.init n (fun j -> Rng.split rng ~label:party_labels.(j)) in
    (* All hot-loop split labels, preformatted once for the whole run. *)
    let enc_labels = index_labels "enc-bit-" l in
    let blind_labels = index_labels "blind-" ((n - 1) * l) in
    let hop_owner_labels = index_labels "hop-owner-" n in
    if n = 1 then
      {
        ranks = [| 1 |];
        per_party_ops = ops;
        per_party_exps = exps;
        schedule = [];
        zkp_ok = [| [| true |] |];
        zero_flags = [| [||] |];
      }
    else begin
      (* Step 5: key generation and knowledge proofs. *)
      let s0 = snap () in
      let keys =
        Array.init n (fun j ->
            with_party ~step:"keys" ops j (fun () -> E.keygen party_rngs.(j)))
      in
      let pubs = Array.map snd keys in
      round ~step:"keys" ~critical_ops:(crit_since s0)
        (Netsim.all_broadcast ~parties:n ~bytes:G.element_bytes);
      let s1 = snap () in
      let transcripts =
        Array.init n (fun j ->
            with_party ~step:"zkp.prove" ops j (fun () ->
                Z.prove_interactive party_rngs.(j) ~secret:(fst keys.(j))
                  ~statement:pubs.(j) ~n_verifiers:(n - 1)))
      in
      (* Commitment, challenges, response: three broadcast rounds. *)
      round ~step:"zkp.commit" ~critical_ops:(crit_since s1)
        (Netsim.all_broadcast ~parties:n ~bytes:G.element_bytes);
      round ~step:"zkp.challenge" ~critical_ops:0
        (Netsim.all_broadcast ~parties:n ~bytes:scalar_bytes);
      round ~step:"zkp.response" ~critical_ops:0
        (Netsim.all_broadcast ~parties:n ~bytes:scalar_bytes);
      let s2 = snap () in
      let zkp_ok =
        Array.init n (fun verifier ->
            Array.init n (fun prover ->
                if verifier = prover then true
                else
                  with_party ~step:"zkp.verify" ops verifier (fun () ->
                      Z.verify_transcript ~statement:pubs.(prover) transcripts.(prover))))
      in
      (* Every party forms the joint key itself (n-1 multiplications,
         attributed to that party) and builds one fixed-base table for
         it; the table serves all l step-6 encryptions. *)
      let joint_tbls =
        Array.init n (fun j ->
            with_party ~step:"joint_key" ops j (fun () ->
                E.keytable (E.joint_pubkey (Array.to_list pubs))))
      in
      (* Step 6: bitwise encryption of own beta under the joint key. *)
      let bits = Array.map (fun b -> Bigint.bits_of b ~width:l) betas in
      let enc_bits =
        Array.init n (fun j ->
            with_party ~step:"encrypt" ops j (fun () ->
                encrypt_bits party_rngs.(j) ~labels:enc_labels joint_tbls.(j)
                  bits.(j)))
      in
      round ~step:"encrypt" ~critical_ops:(crit_since s2)
        (Netsim.all_broadcast ~parties:n ~bytes:(l * E.cipher_bytes));
      (* Step 7: every P_j compares against every other P_i and ships
         the resulting ciphertext sets to P_1 (index 0). *)
      let s3 = snap () in
      let sets =
        (* sets.(j).(i) = ciphertexts of comparison "j vs i" (i <> j),
           owned by j.  The inner option keeps indexing regular. *)
        Array.init n (fun j ->
            with_party ~step:"compare" ops j (fun () ->
                compare_all ~naive_omega ~l ~own_bits:bits.(j) ~self:j enc_bits))
      in
      let per_set_ciphers = (n - 1) * l in
      round ~step:"compare" ~critical_ops:(crit_since s3)
        (List.concat_map
           (fun j ->
             if j = 0 then []
             else Netsim.unicast ~src:j ~dst:0 ~bytes:(per_set_ciphers * E.cipher_bytes))
           (List.init n (fun j -> j)));
      (* Step 8: the decryption ring.  V.(j) is P_j's set: a flat array
         of its (n-1) * l ciphertexts. *)
      let v =
        Array.init n (fun j ->
            Array.concat
              (Array.to_list
                 (Array.map (function Some cs -> cs | None -> [||]) sets.(j))))
      in
      (* Wire accounting for the ring: an intermediate hop ships all n
         sets as ONE framed message (exact serialized size, frame
         header + per-payload length prefixes + n encoded cipher
         batches); the final hop returns each owner's set as one
         cipher-batch message. *)
      let set_msg_bytes = W.cipher_batch_bytes per_set_ciphers in
      let frame_bytes =
        Wire.hop_frame_bytes (List.init n (fun _ -> set_msg_bytes))
      in
      for hop = 0 to n - 1 do
        (* Party [hop] processes every set but its own: the (owner,
           slot) pairs flatten into one index space so the hop
           saturates every domain, not just one owner's l-ish slots.
           Stream derivation is unchanged — splitting never disturbs
           the parent, so hoisting all owner/slot splits ahead of the
           flat pass leaves every derived stream (and the closing
           per-owner shuffles) byte-identical to the nested loops. *)
        let s_hop = snap () in
        let hop_t0 =
          if Ppgr_obs.Hist.enabled () then Unix.gettimeofday () else 0.
        in
        Trace.with_span ~attrs:[ ("hop", Trace.Int hop) ] "phase2.ring.hop"
          (fun () ->
            with_party ~step:"ring" ops hop (fun () ->
                let owners =
                  Array.of_list
                    (List.filter (fun o -> o <> hop) (List.init n Fun.id))
                in
                let orngs =
                  Array.map
                    (fun owner ->
                      Rng.split party_rngs.(hop) ~label:hop_owner_labels.(owner))
                    owners
                in
                let slot_rngs =
                  Array.init
                    (Array.length owners * per_set_ciphers)
                    (fun t ->
                      Rng.split orngs.(t / per_set_ciphers)
                        ~label:blind_labels.(t mod per_set_ciphers))
                in
                let sk = fst keys.(hop) in
                Ppgr_exec.Pool.parallel_for
                  (Array.length owners * per_set_ciphers)
                  (fun t ->
                    let set = v.(owners.(t / per_set_ciphers)) in
                    let c = t mod per_set_ciphers in
                    set.(c) <- E.partial_decrypt_blind slot_rngs.(t) sk set.(c));
                Array.iteri
                  (fun k owner -> Rng.shuffle orngs.(k) v.(owner))
                  owners));
        if Ppgr_obs.Hist.enabled () then
          Ppgr_obs.Hist.record_us Ppgr_obs.Hist.hop_us
            ((Unix.gettimeofday () -. hop_t0) *. 1e6);
        if hop < n - 1 then
          round ~step:"ring" ~critical_ops:(crit_since s_hop)
            (Netsim.unicast ~src:hop ~dst:(hop + 1) ~bytes:frame_bytes)
        else
          (* P_n returns each set to its owner. *)
          round ~step:"ring" ~critical_ops:(crit_since s_hop)
            (List.concat_map
               (fun owner ->
                 if owner = n - 1 then []
                 else
                   Netsim.unicast ~src:(n - 1) ~dst:owner
                     ~bytes:set_msg_bytes)
               (List.init n (fun o -> o)))
      done;
      (* Final counting: strip own layer, count zero plaintexts. *)
      let s4 = snap () in
      let zero_flags =
        Array.init n (fun j ->
            with_party ~step:"count" ops j (fun () ->
                let sk = fst keys.(j) in
                Ppgr_exec.Pool.parallel_map
                  (fun cph -> E.decrypt_exp_is_zero sk cph)
                  v.(j)))
      in
      let ranks =
        Array.map
          (fun flags -> 1 + Array.fold_left (fun acc z -> if z then acc + 1 else acc) 0 flags)
          zero_flags
      in
      round ~step:"count" ~critical_ops:(crit_since s4) [];
      {
        ranks;
        per_party_ops = ops;
        per_party_exps = exps;
        schedule = List.rev !schedule;
        zkp_ok;
        zero_flags;
      }
    end

  (** Total ciphertexts a single participant sends (the paper's
      communication analysis: [l] in step 6 plus [l n (n+1)] over the
      ring). *)
  let ciphertexts_per_party ~n ~l = l + (l * n * (n + 1))
end

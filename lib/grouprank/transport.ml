(** Reliable delivery over a lossy link layer, between {!Runtime}'s
    parties and {!Ppgr_mpcnet.Faultplan}'s fault schedule.

    The fault-free driver delivered every message immediately and in
    order.  This transport keeps the same synchronous interface — a
    {!send} returns the payload exactly as the receiver accepted it —
    but earns it: every payload travels in a {!Wire.tag_envelope}
    envelope carrying a per-directed-link sequence number and a CRC-32,
    and each delivery attempt is submitted to the fault plan, which may
    drop it, flip a byte, duplicate it, hold it for reordering, or
    delay it.  Recovery is timeout/retransmit with capped exponential
    backoff (accounted in simulated ticks — the driver never sleeps),
    duplicate and stale arrivals are suppressed by sequence number, and
    a sender that exhausts its retry budget raises the typed
    {!Party_dropped} abort carrying forensics instead of hanging.

    Accounting is two-level: {e logical} (one message per [send], the
    payload's bytes — the protocol-analysis view the rest of the repo
    reports) stays with the caller; this module owns the {e physical}
    level — every attempt that touches the wire, envelope overhead and
    retransmissions included, tallied per party, per directed link (as
    a {!Ppgr_mpcnet.Netsim.schedule} round per protocol step), and
    folded into a running transcript digest.

    Determinism: the fault schedule is keyed by (link, attempt), the
    protocol bytes are identical at any job count, and this driver runs
    message-at-a-time, so the physical transcript — and hence the
    digest — is byte-identical at [jobs=1] and [jobs=k]. *)

open Ppgr_mpcnet
module Trace = Ppgr_obs.Trace
module Hist = Ppgr_obs.Hist
module Flightrec = Ppgr_obs.Flightrec
module Sha256 = Ppgr_hash.Sha256

type forensics = {
  fr_step : string; (* protocol step being delivered *)
  fr_src : int;
  fr_dst : int;
  fr_seq : int; (* sequence number of the undeliverable message *)
  fr_attempts : int; (* attempts spent, budget included *)
  fr_events : string list; (* per-attempt fault outcomes, oldest first *)
  fr_recent : string list; (* cross-link event tail, oldest first *)
  fr_flight : Flightrec.event list;
      (* the dropping sender's flight-recorder tail, oldest first *)
  fr_digest : string; (* transcript digest at abort time (hex) *)
}

exception Party_dropped of forensics

let () =
  Printexc.register_printer (function
    | Party_dropped f ->
        Some
          (Printf.sprintf
             "Party_dropped { step=%s; link=%d->%d; seq=%d; attempts=%d; \
              last=%s }"
             f.fr_step f.fr_src f.fr_dst f.fr_seq f.fr_attempts
             (match List.rev f.fr_events with e :: _ -> e | [] -> "-"))
    | _ -> None)

type stats = {
  mutable retransmits : int; (* attempts beyond the first, per message *)
  mutable drops : int; (* attempts the plan vanished *)
  mutable crc_rejects : int; (* corrupted arrivals the receiver refused *)
  mutable dup_suppressed : int; (* duplicate/stale arrivals discarded *)
  mutable reorders : int; (* envelopes held in limbo at least once *)
  mutable delays : int; (* attempts that arrived late *)
  mutable backoff_ticks : int; (* simulated retransmit-timer ticks *)
  mutable phys_messages : int; (* everything that touched the wire *)
  mutable phys_bytes : int;
  mutable acks_sent : int; (* windowed control plane: ack frames emitted *)
  mutable ack_bytes : int;
  mutable sim_ticks : int;
      (* simulated wall clock: stop-and-wait serializes every attempt,
         wait and delay; the windowed engine overlaps them per link and
         charges each step only its slowest link *)
}

(** {1 Window configuration}

    A [Faultplan.spec]-style grammar for the per-link sliding window:
    ["window=8,rto=4,link-1-2=16"] sets a default window of 8 in-flight
    sequences per directed link, a retransmission timeout of 4 simulated
    ticks, and an override of 16 on link 1->2.  [window=1] (the
    default) keeps the PR 5 stop-and-wait engine byte-for-byte: the
    pipelined engine only engages when some link's window exceeds 1. *)

type winspec = {
  ws_window : int; (* default in-flight cap per directed link, >= 1 *)
  ws_rto : int; (* retransmission timeout, simulated ticks *)
  ws_links : ((int * int) * int) list; (* per-link overrides, (src,dst) *)
}

(* The selective-ack bitmap is 32 bits, so a window never exceeds 32. *)
let max_window = 32

let winspec_default = { ws_window = 1; ws_rto = 4; ws_links = [] }

let winspec_of_string s =
  let check_window what w =
    if w < 1 || w > max_window then
      invalid_arg
        (Printf.sprintf "Transport.winspec: %s=%d out of [1,%d]" what w max_window)
  in
  let parse_field spec kv =
    match String.index_opt kv '=' with
    | None -> invalid_arg ("Transport.winspec: expected key=value, got " ^ kv)
    | Some i ->
        let key = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        let int () =
          match int_of_string_opt v with
          | Some n -> n
          | None -> invalid_arg ("Transport.winspec: bad integer " ^ v)
        in
        if key = "window" then begin
          let w = int () in
          check_window "window" w;
          { spec with ws_window = w }
        end
        else if key = "rto" then begin
          let r = int () in
          if r < 1 then invalid_arg "Transport.winspec: rto must be >= 1";
          { spec with ws_rto = r }
        end
        else if String.length key > 5 && String.sub key 0 5 = "link-" then begin
          match String.split_on_char '-' key with
          | [ "link"; src; dst ] -> (
              match (int_of_string_opt src, int_of_string_opt dst) with
              | Some src, Some dst when src >= 0 && dst >= 0 ->
                  let w = int () in
                  check_window key w;
                  { spec with ws_links = spec.ws_links @ [ ((src, dst), w) ] }
              | _ -> invalid_arg ("Transport.winspec: bad link key " ^ key))
          | _ -> invalid_arg ("Transport.winspec: bad link key " ^ key)
        end
        else invalid_arg ("Transport.winspec: unknown key " ^ key)
  in
  let fields =
    List.filter (fun f -> f <> "") (String.split_on_char ',' (String.trim s))
  in
  List.fold_left parse_field winspec_default fields

let winspec_to_string ws =
  String.concat ","
    ([ Printf.sprintf "window=%d" ws.ws_window; Printf.sprintf "rto=%d" ws.ws_rto ]
    @ List.map
        (fun ((src, dst), w) -> Printf.sprintf "link-%d-%d=%d" src dst w)
        ws.ws_links)

(** Effective window of one directed link under a spec. *)
let winspec_window ws ~src ~dst =
  match List.assoc_opt (src, dst) ws.ws_links with
  | Some w -> w
  | None -> ws.ws_window

(** {1 Sliding-window bookkeeping}

    Fixed-capacity per-directed-link state, preallocated at transport
    creation as parallel [int] arrays: sender-side in-flight slots
    (sequence, retransmission timer, attempt count, selective-ack mark)
    and receiver-side out-of-order buffer slots.  Every operation below
    is straight array arithmetic — zero allocation per call, pinned in
    [test_allocs] — because the event loop runs them once per
    transmission and once per ack. *)
module Window = struct
  type w = {
    cap : int;
    seq : int array; (* in-flight sequence per slot; -1 = free *)
    timer : int array; (* absolute retransmission-timeout tick *)
    attempts : int array; (* transmissions so far *)
    sacked : int array; (* 1 = selectively acked: buffered at receiver *)
    rseq : int array; (* receiver buffer: out-of-order seq held; -1 = free *)
    rpay : Bytes.t array; (* receiver buffer: the held payload *)
  }

  let no_payload = Bytes.create 0

  let create cap =
    if cap < 1 || cap > max_window then invalid_arg "Window.create: bad capacity";
    {
      cap;
      seq = Array.make cap (-1);
      timer = Array.make cap max_int;
      attempts = Array.make cap 0;
      sacked = Array.make cap 0;
      rseq = Array.make cap (-1);
      rpay = Array.make cap no_payload;
    }

  (** Sender-side in-flight count. *)
  let occupancy w =
    let c = ref 0 in
    for i = 0 to w.cap - 1 do
      if w.seq.(i) >= 0 then incr c
    done;
    !c

  (** Admit a new in-flight sequence.  Returns its slot, or -1 when the
      window is full (the caller must wait for an ack). *)
  let push w ~seq =
    let slot = ref (-1) in
    for i = w.cap - 1 downto 0 do
      if w.seq.(i) < 0 then slot := i
    done;
    if !slot >= 0 then begin
      let s = !slot in
      w.seq.(s) <- seq;
      w.timer.(s) <- max_int;
      w.attempts.(s) <- 1;
      w.sacked.(s) <- 0
    end;
    !slot

  let slot_of_seq w seq =
    let slot = ref (-1) in
    for i = 0 to w.cap - 1 do
      if w.seq.(i) = seq then slot := i
    done;
    !slot

  (** Cumulative ack: release every slot below [cum]. *)
  let ack_cum w ~cum =
    for i = 0 to w.cap - 1 do
      if w.seq.(i) >= 0 && w.seq.(i) < cum then begin
        w.seq.(i) <- -1;
        w.timer.(i) <- max_int;
        w.sacked.(i) <- 0
      end
    done

  (** Selective ack: the receiver buffered [seq] out of order — disarm
      its retransmission timer but keep the slot occupied until the
      cumulative ack passes it. *)
  let sack w ~seq =
    let s = slot_of_seq w seq in
    if s >= 0 then begin
      w.sacked.(s) <- 1;
      w.timer.(s) <- max_int
    end

  (** Slot of the earliest armed retransmission timer, or -1. *)
  let next_timer w =
    let best = ref (-1) in
    let bt = ref max_int in
    for i = 0 to w.cap - 1 do
      if w.seq.(i) >= 0 && w.sacked.(i) = 0 && w.timer.(i) < !bt then begin
        bt := w.timer.(i);
        best := i
      end
    done;
    !best

  let slot_of_rseq w seq =
    let slot = ref (-1) in
    for i = 0 to w.cap - 1 do
      if w.rseq.(i) = seq then slot := i
    done;
    !slot

  (** Receiver side: buffer an out-of-order payload.  Idempotent per
      sequence. Returns false when the buffer has no free slot (cannot
      happen while the sender respects the same window). *)
  let rbuf_put w ~seq payload =
    if slot_of_rseq w seq >= 0 then true
    else begin
      let slot = ref (-1) in
      for i = w.cap - 1 downto 0 do
        if w.rseq.(i) < 0 then slot := i
      done;
      if !slot < 0 then false
      else begin
        w.rseq.(!slot) <- seq;
        w.rpay.(!slot) <- payload;
        true
      end
    end

  (** Receiver side: take the buffered payload for [seq], freeing its
      slot. *)
  let rbuf_take w ~seq =
    let s = slot_of_rseq w seq in
    if s < 0 then None
    else begin
      let p = w.rpay.(s) in
      w.rseq.(s) <- -1;
      w.rpay.(s) <- no_payload;
      Some p
    end

  (** Selective-ack bitmap for everything buffered above [cum]: bit [j]
      set means sequence [cum + 1 + j] is held. *)
  let sack_bits w ~cum =
    let bits = ref 0 in
    for i = 0 to w.cap - 1 do
      let s = w.rseq.(i) in
      if s > cum && s - cum - 1 < 32 then bits := !bits lor (1 lsl (s - cum - 1))
    done;
    !bits
end

(** One entry of the causal ledger: a delivered message's identity
    [(src, dst, seq)] with the wall-clock times, open span ids and
    domain slots of its send and accept.  Kept strictly {e off the
    wire} — never serialized, hashed, or consulted by protocol logic —
    so recording flows cannot perturb transcript digests or RNG
    splitting.  Populated only while tracing is enabled; the exporters
    turn it into Perfetto flow arrows. *)
type flow = {
  fl_src : int;
  fl_dst : int;
  fl_seq : int;
  fl_step : string;
  fl_bytes : int; (* payload bytes (logical) *)
  fl_send_us : float;
  fl_recv_us : float;
  fl_send_span : int;
  fl_recv_span : int;
  fl_send_slot : int;
  fl_recv_slot : int;
}

(** Physical traffic of one directed link. *)
type link = {
  lk_src : int;
  lk_dst : int;
  lk_msgs : int; (* wire touches, retransmissions included *)
  lk_bytes : int;
  lk_retrans : int;
}

(* One message posted into the pipelined engine, awaiting flush. *)
type pending = {
  pd_ticket : int;
  pd_src : int;
  pd_dst : int;
  pd_seq : int;
  pd_payload : Bytes.t;
}

type t = {
  n : int;
  faults : Faultplan.t option;
  retry_budget : int; (* retransmissions allowed per message *)
  backoff_base : int;
  backoff_cap : int;
  rto : int; (* windowed retransmission timeout, simulated ticks *)
  wins : Window.w array array option; (* per-link windows; None = stop-and-wait *)
  mutable kill_after : int; (* abort injection: -1 disabled *)
  send_seq : int array array; (* next seq to assign, per (src, dst) *)
  recv_seq : int array array; (* next seq expected, per (src, dst) *)
  fault_draws : int array array; (* fault-plan draws consumed, per (src, dst) *)
  limbo : (int, Bytes.t list) Hashtbl.t; (* held (reordered) envelopes *)
  mutable posted : pending list; (* pipelined engine: newest first *)
  mutable posted_n : int;
  mutable batch_res : (int * Bytes.t) list; (* stop-and-wait post results *)
  st : stats;
  phys_sent : int array; (* physical bytes out, per party *)
  phys_received : int array;
  link_msgs : int array array; (* wire touches, per (src, dst) *)
  link_bytes : int array array;
  link_retrans : int array array;
  retrans_by_src : int array; (* retransmissions charged to the sender *)
  env_by_src : int array; (* envelope-overhead bytes, per sender *)
  flight : Flightrec.t; (* always-on recent-event ring, per party *)
  mutable flows_rev : flow list; (* causal ledger; tracing-gated *)
  mutable step : string;
  mutable round_rev : Netsim.message list; (* current step's attempts *)
  mutable rounds_rev : (string * Netsim.message list) list;
  mutable recent_rev : string list; (* rolling cross-link event log *)
  mutable recent_len : int;
  mutable digest : Bytes.t; (* chained transcript digest *)
}

let recent_cap = 32

let create ?faults ?(retry_budget = 8) ?(backoff_base = 1)
    ?(backoff_cap = 64) ?(flight_cap = Flightrec.default_capacity) ?window
    ?(kill_after = -1) ~n () =
  let ws = Option.value ~default:winspec_default window in
  let windowed =
    ws.ws_window > 1 || List.exists (fun (_, w) -> w > 1) ws.ws_links
  in
  {
    n;
    faults;
    retry_budget;
    backoff_base;
    backoff_cap;
    rto = ws.ws_rto;
    wins =
      (if windowed then
         Some
           (Array.init n (fun src ->
                Array.init n (fun dst ->
                    Window.create (winspec_window ws ~src ~dst))))
       else None);
    kill_after;
    send_seq = Array.make_matrix n n 0;
    recv_seq = Array.make_matrix n n 0;
    fault_draws = Array.make_matrix n n 0;
    limbo = Hashtbl.create 7;
    posted = [];
    posted_n = 0;
    batch_res = [];
    st =
      {
        retransmits = 0;
        drops = 0;
        crc_rejects = 0;
        dup_suppressed = 0;
        reorders = 0;
        delays = 0;
        backoff_ticks = 0;
        phys_messages = 0;
        phys_bytes = 0;
        acks_sent = 0;
        ack_bytes = 0;
        sim_ticks = 0;
      };
    phys_sent = Array.make n 0;
    phys_received = Array.make n 0;
    link_msgs = Array.make_matrix n n 0;
    link_bytes = Array.make_matrix n n 0;
    link_retrans = Array.make_matrix n n 0;
    retrans_by_src = Array.make n 0;
    env_by_src = Array.make n 0;
    flight = Flightrec.create ~parties:n ~capacity:flight_cap ();
    flows_rev = [];
    step = "init";
    round_rev = [];
    rounds_rev = [];
    recent_rev = [];
    recent_len = 0;
    digest = Sha256.digest_string "ppgr-transcript-v1";
  }

let stats t = t.st

(** Whether the pipelined windowed engine is engaged (some link's
    window exceeds 1).  When false, {!post}/{!flush} degrade to the
    stop-and-wait {!send} — byte-identical to PR 5. *)
let is_windowed t = t.wins <> None

let phys_sent t = Array.copy t.phys_sent
let phys_received t = Array.copy t.phys_received
let retrans_by_src t = Array.copy t.retrans_by_src
let env_bytes_by_src t = Array.copy t.env_by_src
let flight t = t.flight
let transcript_sha t = Sha256.hex_of_digest t.digest

(** The causal ledger in send order (empty unless tracing was enabled
    during the run). *)
let flows t = List.rev t.flows_rev

(** Render ledger entries as exporter flow arrows (ids are positions in
    the list — unique within one trace). *)
let flows_to_export (fls : flow list) : Ppgr_obs.Export.flow list =
  List.mapi
    (fun i fl ->
      {
        Ppgr_obs.Export.flow_name = "msg." ^ fl.fl_step;
        flow_id = i;
        flow_src_slot = fl.fl_send_slot;
        flow_dst_slot = fl.fl_recv_slot;
        flow_send_us = fl.fl_send_us;
        flow_recv_us = fl.fl_recv_us;
        flow_args =
          [
            ("src", Trace.Int fl.fl_src);
            ("dst", Trace.Int fl.fl_dst);
            ("seq", Trace.Int fl.fl_seq);
            ("bytes", Trace.Int fl.fl_bytes);
            ("send_span", Trace.Int fl.fl_send_span);
            ("recv_span", Trace.Int fl.fl_recv_span);
          ];
      })
    fls

(** Per-directed-link physical traffic, links that carried anything,
    row-major.  Sums to [stats]' [phys_messages]/[phys_bytes] — a
    tiling the CLI checks. *)
let links t =
  let out = ref [] in
  for src = t.n - 1 downto 0 do
    for dst = t.n - 1 downto 0 do
      if t.link_msgs.(src).(dst) > 0 then
        out :=
          {
            lk_src = src;
            lk_dst = dst;
            lk_msgs = t.link_msgs.(src).(dst);
            lk_bytes = t.link_bytes.(src).(dst);
            lk_retrans = t.link_retrans.(src).(dst);
          }
          :: !out
    done
  done;
  !out

let now_us () = Unix.gettimeofday () *. 1e6

(** Close the current step's physical round.  Called by the runtime at
    every protocol-step boundary so the schedule mirrors the lockstep
    rounds, retransmissions included. *)
let begin_step t step =
  if t.round_rev <> [] then
    t.rounds_rev <- (t.step, List.rev t.round_rev) :: t.rounds_rev;
  t.round_rev <- [];
  Flightrec.set_step t.flight step;
  t.step <- step

(** The physical message log as a {!Netsim.schedule}: one round per
    protocol step (compute time is not this layer's concern). *)
let net_rounds t =
  let closed = if t.round_rev = [] then [] else [ (t.step, List.rev t.round_rev) ] in
  List.rev_map
    (fun (_, msgs) -> { Netsim.compute_s = 0.; messages = msgs })
    (closed @ t.rounds_rev)

let note t ev =
  t.recent_rev <- ev :: t.recent_rev;
  t.recent_len <- t.recent_len + 1;
  if t.recent_len > 2 * recent_cap then begin
    (* Amortized trim: keep the newest [recent_cap]. *)
    let rec take k = function
      | x :: tl when k > 0 -> x :: take (k - 1) tl
      | _ -> []
    in
    t.recent_rev <- take recent_cap t.recent_rev;
    t.recent_len <- recent_cap
  end

(* Every wire touch: per-party and per-link physical tallies, the
   message-size histogram and the sender's flight-recorder entry, plus
   the chained transcript digest (corrupted copies hash as transmitted,
   so the digest pins the exact fault schedule too).  [seq] is known at
   every call site except limbo/drain flushes of held stale copies
   (passed as -1 there); it feeds only the flight recorder. *)
let transmit t ~src ~dst ~seq (wire_bytes : Bytes.t) =
  let len = Bytes.length wire_bytes in
  t.st.phys_messages <- t.st.phys_messages + 1;
  t.st.phys_bytes <- t.st.phys_bytes + len;
  t.phys_sent.(src) <- t.phys_sent.(src) + len;
  t.phys_received.(dst) <- t.phys_received.(dst) + len;
  t.link_msgs.(src).(dst) <- t.link_msgs.(src).(dst) + 1;
  t.link_bytes.(src).(dst) <- t.link_bytes.(src).(dst) + len;
  t.env_by_src.(src) <- t.env_by_src.(src) + Wire.envelope_overhead;
  Hist.record Hist.msg_bytes len;
  Flightrec.record t.flight ~party:src Flightrec.Send ~src ~dst ~seq ~info:len;
  t.round_rev <- { Netsim.src; dst; bytes = len } :: t.round_rev;
  (* Stop-and-wait charges every wire touch one serialized tick; the
     windowed engine accounts elapsed time per link instead. *)
  if t.wins = None then t.st.sim_ticks <- t.st.sim_ticks + 1;
  let ctx = Sha256.init () in
  Sha256.feed_bytes ctx t.digest;
  Sha256.feed_bytes ctx wire_bytes;
  t.digest <- Sha256.finalize ctx

(* Receiver logic: validate the envelope, suppress stale sequence
   numbers.  Returns the accepted payload, or None when the arrival was
   discarded (corrupt or duplicate). *)
let receive t ~src ~dst (wire_bytes : Bytes.t) =
  match Wire.decode_envelope wire_bytes with
  | exception Wire.Malformed _ ->
      t.st.crc_rejects <- t.st.crc_rejects + 1;
      Flightrec.record t.flight ~party:dst Flightrec.Crc_reject ~src ~dst ~seq:(-1)
        ~info:(Bytes.length wire_bytes);
      None
  | env ->
      if env.Wire.env_src <> src || env.Wire.env_dst <> dst then begin
        (* A CRC-valid envelope on the wrong link: misrouted; refuse. *)
        t.st.crc_rejects <- t.st.crc_rejects + 1;
        Flightrec.record t.flight ~party:dst Flightrec.Crc_reject ~src ~dst
          ~seq:env.Wire.env_seq ~info:(Bytes.length wire_bytes);
        None
      end
      else if env.Wire.env_seq < t.recv_seq.(src).(dst) then begin
        t.st.dup_suppressed <- t.st.dup_suppressed + 1;
        None
      end
      else if env.Wire.env_seq > t.recv_seq.(src).(dst) then
        (* Unreachable with a per-link-sequential sender; a real async
           receiver would buffer.  Refuse loudly rather than mis-order. *)
        raise
          (Wire.Malformed
             (Printf.sprintf "future sequence %d on link %d->%d (expected %d)"
                env.Wire.env_seq src dst
                t.recv_seq.(src).(dst)))
      else begin
        t.recv_seq.(src).(dst) <- env.Wire.env_seq + 1;
        Flightrec.record t.flight ~party:dst Flightrec.Receive ~src ~dst
          ~seq:env.Wire.env_seq
          ~info:(Bytes.length env.Wire.env_payload);
        Some env.Wire.env_payload
      end

let link_key ~src ~dst n = (src * n) + dst

(* Stale copies held for reordering arrive once something else makes it
   through the link; sequence numbers mark them as duplicates. *)
let flush_limbo t ~src ~dst =
  let k = link_key ~src ~dst t.n in
  match Hashtbl.find_opt t.limbo k with
  | None | Some [] -> ()
  | Some held ->
      Hashtbl.remove t.limbo k;
      List.iter
        (fun env ->
          transmit t ~src ~dst ~seq:(-1) env;
          match receive t ~src ~dst env with
          | None -> ()
          | Some _ ->
              (* Cannot happen: the held seq was already accepted via a
                 retransmission before anything newer went through. *)
              assert false)
        (List.rev held)

(* Every fault-plan draw goes through here so the per-link draw counts
   are part of the persistable state: a resumed run fast-forwards a
   fresh plan to exactly this position and faces the same schedule. *)
let draw_fault t ~src ~dst =
  t.fault_draws.(src).(dst) <- t.fault_draws.(src).(dst) + 1;
  match t.faults with None -> Faultplan.Deliver | Some p -> Faultplan.next p ~src ~dst

(* Deterministic abort injection for the restart battery: once the
   physical transmission count reaches [kill_after], the next delivery
   attempt raises {!Party_dropped} with a "killed" event instead of
   touching the wire. *)
let check_kill t ~src ~dst ~seq ~attempts ~events =
  if t.kill_after >= 0 && t.st.phys_messages >= t.kill_after then begin
    let f =
      {
        fr_step = t.step;
        fr_src = src;
        fr_dst = dst;
        fr_seq = seq;
        fr_attempts = attempts;
        fr_events = List.rev ("killed" :: events);
        fr_recent = List.rev t.recent_rev;
        fr_flight = Flightrec.tail t.flight ~party:src;
        fr_digest = transcript_sha t;
      }
    in
    raise (Party_dropped f)
  end

let retry_span t ~kind ~src ~dst ~seq ~attempt =
  if Trace.enabled () then
    Trace.instant
      ~attrs:
        [
          ("party", Trace.Int src);
          ("src", Trace.Int src);
          ("dst", Trace.Int dst);
          ("seq", Trace.Int seq);
          ("fault", Trace.Str kind);
          ("retries", Trace.Int 1);
        ]
      "runtime.retry";
  note t (Printf.sprintf "%s[%d->%d#%d@%d]" kind src dst seq attempt)

(** Deliver [payload] from [src] to [dst], reliably.  Returns the bytes
    the receiver accepted (a fresh copy).
    @raise Party_dropped when the retry budget is exhausted. *)
let send t ~src ~dst (payload : Bytes.t) =
  let seq = t.send_seq.(src).(dst) in
  t.send_seq.(src).(dst) <- seq + 1;
  let env = Wire.encode_envelope ~src ~dst ~seq payload in
  (* Causal ledger send endpoint, captured before any wire touch so the
     flow arrow starts where the protocol decided to send.  Tracing
     off → no ledger entry and no clock reads. *)
  let tracing = Trace.enabled () in
  let fl_send_us = if tracing then now_us () else 0. in
  let fl_send_span = if tracing then Trace.current_span_id () else -1 in
  let fl_send_slot = if tracing then Ppgr_exec.Meter.slot () else 0 in
  let events = ref [] in
  let result = ref None in
  let attempt = ref 0 in
  while !result = None do
    if !attempt > t.retry_budget then begin
      let f =
        {
          fr_step = t.step;
          fr_src = src;
          fr_dst = dst;
          fr_seq = seq;
          fr_attempts = !attempt;
          fr_events = List.rev !events;
          fr_recent = List.rev t.recent_rev;
          fr_flight = Flightrec.tail t.flight ~party:src;
          fr_digest = transcript_sha t;
        }
      in
      if Trace.enabled () then
        Trace.instant
          ~attrs:
            [
              ("party", Trace.Int src);
              ("src", Trace.Int src);
              ("dst", Trace.Int dst);
              ("seq", Trace.Int seq);
              ("attempts", Trace.Int !attempt);
              ("step", Trace.Str t.step);
            ]
          "runtime.party_dropped";
      raise (Party_dropped f)
    end;
    check_kill t ~src ~dst ~seq ~attempts:!attempt ~events:!events;
    if !attempt > 0 then begin
      t.st.retransmits <- t.st.retransmits + 1;
      t.retrans_by_src.(src) <- t.retrans_by_src.(src) + 1;
      t.link_retrans.(src).(dst) <- t.link_retrans.(src).(dst) + 1;
      (* Capped exponential backoff before a retransmission, accounted
         in simulated timer ticks. *)
      let wait =
        Stdlib.min t.backoff_cap (t.backoff_base lsl Stdlib.min 20 (!attempt - 1))
      in
      t.st.backoff_ticks <- t.st.backoff_ticks + wait;
      t.st.sim_ticks <- t.st.sim_ticks + wait;
      Hist.record Hist.backoff_ticks wait;
      Flightrec.record t.flight ~party:src Flightrec.Retransmit ~src ~dst ~seq
        ~info:!attempt
    end;
    let fault = draw_fault t ~src ~dst in
    let record kind = retry_span t ~kind ~src ~dst ~seq ~attempt:!attempt in
    let deliver wire =
      transmit t ~src ~dst ~seq wire;
      match receive t ~src ~dst wire with
      | Some p ->
          result := Some p;
          (* Accept endpoint of the causal arrow: after every
             retransmission the fault schedule demanded, so the arrow's
             extent is the message's true delivery latency. *)
          if tracing then
            t.flows_rev <-
              {
                fl_src = src;
                fl_dst = dst;
                fl_seq = seq;
                fl_step = t.step;
                fl_bytes = Bytes.length p;
                fl_send_us;
                fl_recv_us = now_us ();
                fl_send_span;
                fl_recv_span = Trace.current_span_id ();
                fl_send_slot;
                fl_recv_slot = Ppgr_exec.Meter.slot ();
              }
              :: t.flows_rev;
          flush_limbo t ~src ~dst
      | None -> ()
    in
    (match fault with
    | Faultplan.Deliver -> deliver env
    | Faultplan.Drop ->
        t.st.drops <- t.st.drops + 1;
        record "drop";
        events := "drop" :: !events
    | Faultplan.Corrupt c ->
        (* The damaged copy occupies the wire; the receiver's CRC check
           turns it into a drop the sender times out on. *)
        deliver (Faultplan.apply_corruption c env);
        record "corrupt";
        events := "corrupt" :: !events
    | Faultplan.Duplicate ->
        deliver env;
        (* The second copy arrives stale and is suppressed. *)
        transmit t ~src ~dst ~seq env;
        (match receive t ~src ~dst env with Some _ -> assert false | None -> ());
        record "duplicate";
        events := "duplicate" :: !events
    | Faultplan.Reorder ->
        (* Held in link limbo: it will arrive after a later delivery on
           this link and be suppressed as stale.  For the sender this
           attempt is a timeout. *)
        t.st.reorders <- t.st.reorders + 1;
        let k = link_key ~src ~dst t.n in
        let held = Option.value ~default:[] (Hashtbl.find_opt t.limbo k) in
        Hashtbl.replace t.limbo k (env :: held);
        record "reorder";
        events := "reorder" :: !events
    | Faultplan.Delay d ->
        (* Arrives, late: the link clock advances but no retransmission
           is provoked (the timer is generous against jitter). *)
        t.st.delays <- t.st.delays + 1;
        t.st.backoff_ticks <- t.st.backoff_ticks + d;
        t.st.sim_ticks <- t.st.sim_ticks + d;
        record "delay";
        events := Printf.sprintf "delay:%d" d :: !events;
        deliver env);
    incr attempt
  done;
  match !result with Some p -> Bytes.copy p | None -> assert false

(** Orphaned limbo entries at end of run (a reorder whose link never
    carried traffic again): deliver and suppress them so the physical
    log is complete. *)
let drain t =
  Hashtbl.iter
    (fun k held ->
      let src = k / t.n and dst = k mod t.n in
      List.iter
        (fun env ->
          transmit t ~src ~dst ~seq:(-1) env;
          ignore (receive t ~src ~dst env))
        (List.rev held))
    t.limbo;
  Hashtbl.reset t.limbo

(** {1 The pipelined windowed engine}

    {!post} enqueues a message; {!flush} delivers everything posted
    since the last flush and returns the accepted payloads indexed by
    ticket.  With every window at 1 the pair degrades exactly to
    {!send} (post sends immediately, flush collects) — the byte-level
    PR 5 stop-and-wait path.  With a window above 1 the engine runs a
    deterministic discrete-event simulation per directed link: up to
    [window] sequences in flight, transmissions serialized on the link
    at one tick each, arrivals after one tick (plus any injected
    delay), a fixed [rto]-tick retransmission timeout per attempt, and
    cumulative + selective acks from the receiver.  Links are
    independent, so a step's simulated elapsed time is its {e slowest
    link}, not the sum — the overlap that {!stats}' [sim_ticks]
    measures against stop-and-wait's serialized total.

    Determinism: fault draws stay keyed per (link, attempt) in per-link
    sequential order, links are processed in a fixed order, and event
    ties break on insertion order — the transcript digest is a pure
    function of seed, spec and window configuration at any job count.

    Acks are control-plane traffic on a clean reverse channel: counted
    in [acks_sent]/[ack_bytes], never faulted, and kept off the data
    transcript digest and the per-link physical tallies (so the
    [retransmits = injected faults] and tiling invariants survive). *)

let post t ~src ~dst (payload : Bytes.t) =
  let ticket = t.posted_n in
  t.posted_n <- t.posted_n + 1;
  (match t.wins with
  | None ->
      let r = send t ~src ~dst payload in
      t.batch_res <- (ticket, r) :: t.batch_res
  | Some _ ->
      let seq = t.send_seq.(src).(dst) in
      t.send_seq.(src).(dst) <- seq + 1;
      t.posted <-
        { pd_ticket = ticket; pd_src = src; pd_dst = dst; pd_seq = seq; pd_payload = payload }
        :: t.posted);
  ticket

(* Deterministic discrete-event delivery of one link's posted batch
   under its sliding window.  [batch] is in post (= sequence) order;
   accepted payloads land in [out] at the same indices.  Returns the
   link-local elapsed ticks. *)
let run_link t ~src ~dst (batch : pending array) (out : Bytes.t array) =
  let w =
    match t.wins with Some ws -> ws.(src).(dst) | None -> assert false
  in
  let k = Array.length batch in
  let seq0 = batch.(0).pd_seq in
  let envs =
    Array.map
      (fun p -> Wire.encode_envelope ~src ~dst ~seq:p.pd_seq p.pd_payload)
      batch
  in
  let events_log = Array.make k [] in
  let accepted = ref 0 in
  let next_tx = ref 0 in
  let wire_free = ref 0 in
  let time = ref 0 in
  let finish_time = ref 0 in
  let serial = ref 0 in
  (* Pending arrivals (time, insertion serial, batch index, wire bytes),
     kept sorted; ties break on insertion order. *)
  let arrivals = ref [] in
  let add_arrival at idx bytes =
    incr serial;
    let s = !serial in
    let e = (at, s, idx, bytes) in
    let rec ins = function
      | ((t0, s0, _, _) as h) :: tl when t0 < at || (t0 = at && s0 < s) ->
          h :: ins tl
      | rest -> e :: rest
    in
    arrivals := ins !arrivals
  in
  let dropped idx attempts =
    let f =
      {
        fr_step = t.step;
        fr_src = src;
        fr_dst = dst;
        fr_seq = batch.(idx).pd_seq;
        fr_attempts = attempts;
        fr_events = List.rev events_log.(idx);
        fr_recent = List.rev t.recent_rev;
        fr_flight = Flightrec.tail t.flight ~party:src;
        fr_digest = transcript_sha t;
      }
    in
    if Trace.enabled () then
      Trace.instant
        ~attrs:
          [
            ("party", Trace.Int src);
            ("src", Trace.Int src);
            ("dst", Trace.Int dst);
            ("seq", Trace.Int batch.(idx).pd_seq);
            ("attempts", Trace.Int attempts);
            ("step", Trace.Str t.step);
          ]
        "runtime.party_dropped";
    raise (Party_dropped f)
  in
  (* One delivery attempt of batch index [idx] (window slot [slot]) no
     earlier than [at]; transmissions serialize on the link wire at one
     tick each. *)
  let transmit_attempt slot idx ~at =
    let seq = batch.(idx).pd_seq in
    check_kill t ~src ~dst ~seq
      ~attempts:(w.Window.attempts.(slot) - 1)
      ~events:events_log.(idx);
    let tx = if at > !wire_free then at else !wire_free in
    wire_free := tx + 1;
    (* The retransmission timer arms from the attempt's expected
       arrival; an injected delay extends it (generous against jitter,
       like stop-and-wait: delays never provoke a retransmission). *)
    let arm d = w.Window.timer.(slot) <- tx + 1 + d + t.rto in
    let attempt = w.Window.attempts.(slot) - 1 in
    match draw_fault t ~src ~dst with
    | Faultplan.Deliver ->
        transmit t ~src ~dst ~seq envs.(idx);
        add_arrival (tx + 1) idx envs.(idx);
        arm 0
    | Faultplan.Drop ->
        t.st.drops <- t.st.drops + 1;
        retry_span t ~kind:"drop" ~src ~dst ~seq ~attempt;
        events_log.(idx) <- "drop" :: events_log.(idx);
        arm 0
    | Faultplan.Corrupt c ->
        let bad = Faultplan.apply_corruption c envs.(idx) in
        transmit t ~src ~dst ~seq bad;
        add_arrival (tx + 1) idx bad;
        retry_span t ~kind:"corrupt" ~src ~dst ~seq ~attempt;
        events_log.(idx) <- "corrupt" :: events_log.(idx);
        arm 0
    | Faultplan.Duplicate ->
        transmit t ~src ~dst ~seq envs.(idx);
        add_arrival (tx + 1) idx envs.(idx);
        wire_free := tx + 2;
        transmit t ~src ~dst ~seq envs.(idx);
        add_arrival (tx + 2) idx envs.(idx);
        retry_span t ~kind:"duplicate" ~src ~dst ~seq ~attempt;
        events_log.(idx) <- "duplicate" :: events_log.(idx);
        arm 0
    | Faultplan.Reorder ->
        t.st.reorders <- t.st.reorders + 1;
        let key = link_key ~src ~dst t.n in
        let held = Option.value ~default:[] (Hashtbl.find_opt t.limbo key) in
        Hashtbl.replace t.limbo key (envs.(idx) :: held);
        retry_span t ~kind:"reorder" ~src ~dst ~seq ~attempt;
        events_log.(idx) <- "reorder" :: events_log.(idx);
        arm 0
    | Faultplan.Delay d ->
        t.st.delays <- t.st.delays + 1;
        transmit t ~src ~dst ~seq envs.(idx);
        add_arrival (tx + 1 + d) idx envs.(idx);
        retry_span t ~kind:"delay" ~src ~dst ~seq ~attempt;
        events_log.(idx) <- Printf.sprintf "delay:%d" d :: events_log.(idx);
        arm d
  in
  let send_ack () =
    let cum = t.recv_seq.(src).(dst) in
    let bits = Window.sack_bits w ~cum in
    let frame =
      Wire.encode_ack
        { Wire.ack_src = dst; ack_dst = src; ack_cum = cum; ack_sack = bits }
    in
    t.st.acks_sent <- t.st.acks_sent + 1;
    t.st.ack_bytes <- t.st.ack_bytes + Bytes.length frame;
    (* Control-plane delivery is immediate and fault-free (a clean
       reverse channel keeps retransmits = injected faults); the codec
       round-trips on every ack all the same. *)
    let a = Wire.decode_ack frame in
    Window.ack_cum w ~cum:a.Wire.ack_cum;
    for j = 0 to 31 do
      if a.Wire.ack_sack land (1 lsl j) <> 0 then
        Window.sack w ~seq:(a.Wire.ack_cum + 1 + j)
    done
  in
  let accept seq payload =
    out.(seq - seq0) <- payload;
    incr accepted;
    t.recv_seq.(src).(dst) <- seq + 1;
    Flightrec.record t.flight ~party:dst Flightrec.Receive ~src ~dst ~seq
      ~info:(Bytes.length payload)
  in
  let process_arrival at bytes =
    match Wire.decode_envelope bytes with
    | exception Wire.Malformed _ ->
        t.st.crc_rejects <- t.st.crc_rejects + 1;
        Flightrec.record t.flight ~party:dst Flightrec.Crc_reject ~src ~dst
          ~seq:(-1) ~info:(Bytes.length bytes)
    | env ->
        if env.Wire.env_src <> src || env.Wire.env_dst <> dst then begin
          t.st.crc_rejects <- t.st.crc_rejects + 1;
          Flightrec.record t.flight ~party:dst Flightrec.Crc_reject ~src ~dst
            ~seq:env.Wire.env_seq ~info:(Bytes.length bytes)
        end
        else begin
          let expected = t.recv_seq.(src).(dst) in
          let seq = env.Wire.env_seq in
          if seq < expected then t.st.dup_suppressed <- t.st.dup_suppressed + 1
          else if seq = expected then begin
            accept seq env.Wire.env_payload;
            (* Drain any buffered successors the gap was holding back. *)
            let rec drain_rbuf () =
              let nxt = t.recv_seq.(src).(dst) in
              match Window.rbuf_take w ~seq:nxt with
              | Some p ->
                  accept nxt p;
                  drain_rbuf ()
              | None -> ()
            in
            drain_rbuf ();
            if at > !finish_time then finish_time := at;
            send_ack ();
            flush_limbo t ~src ~dst
          end
          else if seq < expected + w.Window.cap then begin
            (* Out of order but in window: buffer and selectively ack. *)
            if Window.slot_of_rseq w seq >= 0 then
              t.st.dup_suppressed <- t.st.dup_suppressed + 1
            else begin
              ignore (Window.rbuf_put w ~seq env.Wire.env_payload);
              send_ack ()
            end
          end
          else
            raise
              (Wire.Malformed
                 (Printf.sprintf
                    "sequence %d beyond the receive window on link %d->%d \
                     (expected %d, window %d)"
                    seq src dst expected w.Window.cap))
        end
  in
  while !accepted < k do
    (* Admit first transmissions while the window has room. *)
    let admitting = ref true in
    while !admitting && !next_tx < k do
      let idx = !next_tx in
      let slot = Window.push w ~seq:batch.(idx).pd_seq in
      if slot < 0 then admitting := false
      else begin
        incr next_tx;
        Hist.record Hist.window_occupancy (Window.occupancy w);
        transmit_attempt slot idx ~at:!time
      end
    done;
    (* Earliest event: a pending arrival or an armed timer. *)
    let ta = match !arrivals with [] -> max_int | (t0, _, _, _) :: _ -> t0 in
    let tslot = Window.next_timer w in
    let tt = if tslot < 0 then max_int else w.Window.timer.(tslot) in
    if ta = max_int && tt = max_int then begin
      if !accepted < k then failwith "Transport.flush: windowed engine stalled"
    end
    else if ta <= tt then begin
      match !arrivals with
      | [] -> assert false
      | (at, _, _, bytes) :: tl ->
          arrivals := tl;
          if at > !time then time := at;
          process_arrival at bytes
    end
    else begin
      (* Retransmission timeout: selective retransmit of that slot. *)
      time := tt;
      let idx = w.Window.seq.(tslot) - seq0 in
      if w.Window.attempts.(tslot) > t.retry_budget then
        dropped idx w.Window.attempts.(tslot);
      t.st.retransmits <- t.st.retransmits + 1;
      t.retrans_by_src.(src) <- t.retrans_by_src.(src) + 1;
      t.link_retrans.(src).(dst) <- t.link_retrans.(src).(dst) + 1;
      t.st.backoff_ticks <- t.st.backoff_ticks + t.rto;
      Hist.record Hist.backoff_ticks t.rto;
      Flightrec.record t.flight ~party:src Flightrec.Retransmit ~src ~dst
        ~seq:batch.(idx).pd_seq ~info:w.Window.attempts.(tslot);
      w.Window.attempts.(tslot) <- w.Window.attempts.(tslot) + 1;
      transmit_attempt tslot idx ~at:!time
    end
  done;
  if !wire_free > !finish_time then !wire_free else !finish_time

(** Deliver everything posted since the last flush; the result array is
    indexed by ticket.  A step's simulated elapsed time is the maximum
    over its links (they run concurrently), added to [sim_ticks]. *)
let flush t =
  let out = Array.make t.posted_n Window.no_payload in
  (match t.wins with
  | None -> List.iter (fun (tk, r) -> out.(tk) <- r) t.batch_res
  | Some _ ->
      let posted = List.rev t.posted in
      let step_elapsed = ref 0 in
      for src = 0 to t.n - 1 do
        for dst = 0 to t.n - 1 do
          let batch =
            Array.of_list
              (List.filter (fun p -> p.pd_src = src && p.pd_dst = dst) posted)
          in
          if Array.length batch > 0 then begin
            let lout = Array.make (Array.length batch) Window.no_payload in
            let elapsed = run_link t ~src ~dst batch lout in
            Array.iteri (fun i p -> out.(p.pd_ticket) <- Bytes.copy lout.(i)) batch;
            if elapsed > !step_elapsed then step_elapsed := elapsed
          end
        done
      done;
      t.st.sim_ticks <- t.st.sim_ticks + !step_elapsed);
  t.posted <- [];
  t.posted_n <- 0;
  t.batch_res <- [];
  out

(** {1 Checkpoint persistence}

    {!persist} captures the transport's complete delivery state as the
    plain-data {!Wire.transport_snap}; {!restore} rebuilds a transport
    from one, fast-forwarding a fresh fault plan to the persisted
    schedule position so the resumed run faces exactly the draws the
    original would have.  The flight recorder restarts empty (it is
    diagnostics, not protocol state); everything that feeds the
    transcript digest, the physical tallies and the replayable
    [net_rounds] round-trips exactly. *)

let persist t : Wire.transport_snap =
  let mat m = Array.map Array.copy m in
  let to_triples msgs =
    List.map (fun m -> (m.Netsim.src, m.Netsim.dst, m.Netsim.bytes)) msgs
  in
  let st = t.st in
  {
    Wire.ts_n = t.n;
    ts_send_seq = mat t.send_seq;
    ts_recv_seq = mat t.recv_seq;
    ts_counters =
      [|
        st.retransmits;
        st.drops;
        st.crc_rejects;
        st.dup_suppressed;
        st.reorders;
        st.delays;
        st.backoff_ticks;
        st.phys_messages;
        st.phys_bytes;
        st.acks_sent;
        st.ack_bytes;
        st.sim_ticks;
      |];
    ts_phys_sent = Array.copy t.phys_sent;
    ts_phys_received = Array.copy t.phys_received;
    ts_retrans_by_src = Array.copy t.retrans_by_src;
    ts_env_by_src = Array.copy t.env_by_src;
    ts_link_msgs = mat t.link_msgs;
    ts_link_bytes = mat t.link_bytes;
    ts_link_retrans = mat t.link_retrans;
    ts_fault_draws = mat t.fault_draws;
    ts_digest = Bytes.copy t.digest;
    ts_step = t.step;
    ts_rounds = List.rev_map (fun (name, msgs) -> (name, to_triples msgs)) t.rounds_rev;
    ts_round =
      List.rev_map (fun m -> (m.Netsim.src, m.Netsim.dst, m.Netsim.bytes)) t.round_rev;
    ts_limbo =
      (let entries =
         Hashtbl.fold (fun k held acc -> (k, List.rev held) :: acc) t.limbo []
       in
       List.sort (fun (a, _) (b, _) -> compare a b) entries);
  }

let restore ?faults ?(retry_budget = 8) ?(backoff_base = 1) ?(backoff_cap = 64)
    ?(flight_cap = Flightrec.default_capacity) ?window ?(kill_after = -1)
    (snap : Wire.transport_snap) =
  let n = snap.Wire.ts_n in
  let t =
    create ?faults ~retry_budget ~backoff_base ~backoff_cap ~flight_cap ?window
      ~kill_after ~n ()
  in
  let copy_mat dst src = Array.iteri (fun i row -> Array.blit src.(i) 0 row 0 n) dst in
  copy_mat t.send_seq snap.Wire.ts_send_seq;
  copy_mat t.recv_seq snap.Wire.ts_recv_seq;
  let c = snap.Wire.ts_counters in
  if Array.length c <> Wire.n_counters then
    invalid_arg "Transport.restore: bad counter vector";
  t.st.retransmits <- c.(0);
  t.st.drops <- c.(1);
  t.st.crc_rejects <- c.(2);
  t.st.dup_suppressed <- c.(3);
  t.st.reorders <- c.(4);
  t.st.delays <- c.(5);
  t.st.backoff_ticks <- c.(6);
  t.st.phys_messages <- c.(7);
  t.st.phys_bytes <- c.(8);
  t.st.acks_sent <- c.(9);
  t.st.ack_bytes <- c.(10);
  t.st.sim_ticks <- c.(11);
  Array.blit snap.Wire.ts_phys_sent 0 t.phys_sent 0 n;
  Array.blit snap.Wire.ts_phys_received 0 t.phys_received 0 n;
  Array.blit snap.Wire.ts_retrans_by_src 0 t.retrans_by_src 0 n;
  Array.blit snap.Wire.ts_env_by_src 0 t.env_by_src 0 n;
  copy_mat t.link_msgs snap.Wire.ts_link_msgs;
  copy_mat t.link_bytes snap.Wire.ts_link_bytes;
  copy_mat t.link_retrans snap.Wire.ts_link_retrans;
  t.digest <- Bytes.copy snap.Wire.ts_digest;
  t.step <- snap.Wire.ts_step;
  Flightrec.set_step t.flight snap.Wire.ts_step;
  t.rounds_rev <-
    List.rev_map
      (fun (name, ms) ->
        (name, List.map (fun (src, dst, bytes) -> { Netsim.src; dst; bytes }) ms))
      snap.Wire.ts_rounds;
  t.round_rev <-
    List.rev_map (fun (src, dst, bytes) -> { Netsim.src; dst; bytes }) snap.Wire.ts_round;
  List.iter
    (fun (k, held) -> Hashtbl.replace t.limbo k (List.rev held))
    snap.Wire.ts_limbo;
  (* Fast-forward the fault plan to the persisted schedule position:
     the per-link draw counts make the resumed schedule a pure function
     of the original seed. *)
  (match t.faults with
  | None -> ()
  | Some p ->
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          for _ = 1 to snap.Wire.ts_fault_draws.(src).(dst) do
            ignore (Faultplan.next p ~src ~dst)
          done
        done
      done);
  copy_mat t.fault_draws snap.Wire.ts_fault_draws;
  t

(** Reliable delivery over a lossy link layer, between {!Runtime}'s
    parties and {!Ppgr_mpcnet.Faultplan}'s fault schedule.

    The fault-free driver delivered every message immediately and in
    order.  This transport keeps the same synchronous interface — a
    {!send} returns the payload exactly as the receiver accepted it —
    but earns it: every payload travels in a {!Wire.tag_envelope}
    envelope carrying a per-directed-link sequence number and a CRC-32,
    and each delivery attempt is submitted to the fault plan, which may
    drop it, flip a byte, duplicate it, hold it for reordering, or
    delay it.  Recovery is timeout/retransmit with capped exponential
    backoff (accounted in simulated ticks — the driver never sleeps),
    duplicate and stale arrivals are suppressed by sequence number, and
    a sender that exhausts its retry budget raises the typed
    {!Party_dropped} abort carrying forensics instead of hanging.

    Accounting is two-level: {e logical} (one message per [send], the
    payload's bytes — the protocol-analysis view the rest of the repo
    reports) stays with the caller; this module owns the {e physical}
    level — every attempt that touches the wire, envelope overhead and
    retransmissions included, tallied per party, per directed link (as
    a {!Ppgr_mpcnet.Netsim.schedule} round per protocol step), and
    folded into a running transcript digest.

    Determinism: the fault schedule is keyed by (link, attempt), the
    protocol bytes are identical at any job count, and this driver runs
    message-at-a-time, so the physical transcript — and hence the
    digest — is byte-identical at [jobs=1] and [jobs=k]. *)

open Ppgr_mpcnet
module Trace = Ppgr_obs.Trace
module Hist = Ppgr_obs.Hist
module Flightrec = Ppgr_obs.Flightrec
module Sha256 = Ppgr_hash.Sha256

type forensics = {
  fr_step : string; (* protocol step being delivered *)
  fr_src : int;
  fr_dst : int;
  fr_seq : int; (* sequence number of the undeliverable message *)
  fr_attempts : int; (* attempts spent, budget included *)
  fr_events : string list; (* per-attempt fault outcomes, oldest first *)
  fr_recent : string list; (* cross-link event tail, oldest first *)
  fr_flight : Flightrec.event list;
      (* the dropping sender's flight-recorder tail, oldest first *)
  fr_digest : string; (* transcript digest at abort time (hex) *)
}

exception Party_dropped of forensics

let () =
  Printexc.register_printer (function
    | Party_dropped f ->
        Some
          (Printf.sprintf
             "Party_dropped { step=%s; link=%d->%d; seq=%d; attempts=%d; \
              last=%s }"
             f.fr_step f.fr_src f.fr_dst f.fr_seq f.fr_attempts
             (match List.rev f.fr_events with e :: _ -> e | [] -> "-"))
    | _ -> None)

type stats = {
  mutable retransmits : int; (* attempts beyond the first, per message *)
  mutable drops : int; (* attempts the plan vanished *)
  mutable crc_rejects : int; (* corrupted arrivals the receiver refused *)
  mutable dup_suppressed : int; (* duplicate/stale arrivals discarded *)
  mutable reorders : int; (* envelopes held in limbo at least once *)
  mutable delays : int; (* attempts that arrived late *)
  mutable backoff_ticks : int; (* simulated retransmit-timer ticks *)
  mutable phys_messages : int; (* everything that touched the wire *)
  mutable phys_bytes : int;
}

(** One entry of the causal ledger: a delivered message's identity
    [(src, dst, seq)] with the wall-clock times, open span ids and
    domain slots of its send and accept.  Kept strictly {e off the
    wire} — never serialized, hashed, or consulted by protocol logic —
    so recording flows cannot perturb transcript digests or RNG
    splitting.  Populated only while tracing is enabled; the exporters
    turn it into Perfetto flow arrows. *)
type flow = {
  fl_src : int;
  fl_dst : int;
  fl_seq : int;
  fl_step : string;
  fl_bytes : int; (* payload bytes (logical) *)
  fl_send_us : float;
  fl_recv_us : float;
  fl_send_span : int;
  fl_recv_span : int;
  fl_send_slot : int;
  fl_recv_slot : int;
}

(** Physical traffic of one directed link. *)
type link = {
  lk_src : int;
  lk_dst : int;
  lk_msgs : int; (* wire touches, retransmissions included *)
  lk_bytes : int;
  lk_retrans : int;
}

type t = {
  n : int;
  faults : Faultplan.t option;
  retry_budget : int; (* retransmissions allowed per message *)
  backoff_base : int;
  backoff_cap : int;
  send_seq : int array array; (* next seq to assign, per (src, dst) *)
  recv_seq : int array array; (* next seq expected, per (src, dst) *)
  limbo : (int, Bytes.t list) Hashtbl.t; (* held (reordered) envelopes *)
  st : stats;
  phys_sent : int array; (* physical bytes out, per party *)
  phys_received : int array;
  link_msgs : int array array; (* wire touches, per (src, dst) *)
  link_bytes : int array array;
  link_retrans : int array array;
  retrans_by_src : int array; (* retransmissions charged to the sender *)
  env_by_src : int array; (* envelope-overhead bytes, per sender *)
  flight : Flightrec.t; (* always-on recent-event ring, per party *)
  mutable flows_rev : flow list; (* causal ledger; tracing-gated *)
  mutable step : string;
  mutable round_rev : Netsim.message list; (* current step's attempts *)
  mutable rounds_rev : (string * Netsim.message list) list;
  mutable recent_rev : string list; (* rolling cross-link event log *)
  mutable recent_len : int;
  mutable digest : Bytes.t; (* chained transcript digest *)
}

let recent_cap = 32

let create ?faults ?(retry_budget = 8) ?(backoff_base = 1)
    ?(backoff_cap = 64) ?(flight_cap = Flightrec.default_capacity) ~n () =
  {
    n;
    faults;
    retry_budget;
    backoff_base;
    backoff_cap;
    send_seq = Array.make_matrix n n 0;
    recv_seq = Array.make_matrix n n 0;
    limbo = Hashtbl.create 7;
    st =
      {
        retransmits = 0;
        drops = 0;
        crc_rejects = 0;
        dup_suppressed = 0;
        reorders = 0;
        delays = 0;
        backoff_ticks = 0;
        phys_messages = 0;
        phys_bytes = 0;
      };
    phys_sent = Array.make n 0;
    phys_received = Array.make n 0;
    link_msgs = Array.make_matrix n n 0;
    link_bytes = Array.make_matrix n n 0;
    link_retrans = Array.make_matrix n n 0;
    retrans_by_src = Array.make n 0;
    env_by_src = Array.make n 0;
    flight = Flightrec.create ~parties:n ~capacity:flight_cap ();
    flows_rev = [];
    step = "init";
    round_rev = [];
    rounds_rev = [];
    recent_rev = [];
    recent_len = 0;
    digest = Sha256.digest_string "ppgr-transcript-v1";
  }

let stats t = t.st
let phys_sent t = Array.copy t.phys_sent
let phys_received t = Array.copy t.phys_received
let retrans_by_src t = Array.copy t.retrans_by_src
let env_bytes_by_src t = Array.copy t.env_by_src
let flight t = t.flight
let transcript_sha t = Sha256.hex_of_digest t.digest

(** The causal ledger in send order (empty unless tracing was enabled
    during the run). *)
let flows t = List.rev t.flows_rev

(** Render ledger entries as exporter flow arrows (ids are positions in
    the list — unique within one trace). *)
let flows_to_export (fls : flow list) : Ppgr_obs.Export.flow list =
  List.mapi
    (fun i fl ->
      {
        Ppgr_obs.Export.flow_name = "msg." ^ fl.fl_step;
        flow_id = i;
        flow_src_slot = fl.fl_send_slot;
        flow_dst_slot = fl.fl_recv_slot;
        flow_send_us = fl.fl_send_us;
        flow_recv_us = fl.fl_recv_us;
        flow_args =
          [
            ("src", Trace.Int fl.fl_src);
            ("dst", Trace.Int fl.fl_dst);
            ("seq", Trace.Int fl.fl_seq);
            ("bytes", Trace.Int fl.fl_bytes);
            ("send_span", Trace.Int fl.fl_send_span);
            ("recv_span", Trace.Int fl.fl_recv_span);
          ];
      })
    fls

(** Per-directed-link physical traffic, links that carried anything,
    row-major.  Sums to [stats]' [phys_messages]/[phys_bytes] — a
    tiling the CLI checks. *)
let links t =
  let out = ref [] in
  for src = t.n - 1 downto 0 do
    for dst = t.n - 1 downto 0 do
      if t.link_msgs.(src).(dst) > 0 then
        out :=
          {
            lk_src = src;
            lk_dst = dst;
            lk_msgs = t.link_msgs.(src).(dst);
            lk_bytes = t.link_bytes.(src).(dst);
            lk_retrans = t.link_retrans.(src).(dst);
          }
          :: !out
    done
  done;
  !out

let now_us () = Unix.gettimeofday () *. 1e6

(** Close the current step's physical round.  Called by the runtime at
    every protocol-step boundary so the schedule mirrors the lockstep
    rounds, retransmissions included. *)
let begin_step t step =
  if t.round_rev <> [] then
    t.rounds_rev <- (t.step, List.rev t.round_rev) :: t.rounds_rev;
  t.round_rev <- [];
  Flightrec.set_step t.flight step;
  t.step <- step

(** The physical message log as a {!Netsim.schedule}: one round per
    protocol step (compute time is not this layer's concern). *)
let net_rounds t =
  let closed = if t.round_rev = [] then [] else [ (t.step, List.rev t.round_rev) ] in
  List.rev_map
    (fun (_, msgs) -> { Netsim.compute_s = 0.; messages = msgs })
    (closed @ t.rounds_rev)

let note t ev =
  t.recent_rev <- ev :: t.recent_rev;
  t.recent_len <- t.recent_len + 1;
  if t.recent_len > 2 * recent_cap then begin
    (* Amortized trim: keep the newest [recent_cap]. *)
    let rec take k = function
      | x :: tl when k > 0 -> x :: take (k - 1) tl
      | _ -> []
    in
    t.recent_rev <- take recent_cap t.recent_rev;
    t.recent_len <- recent_cap
  end

(* Every wire touch: per-party and per-link physical tallies, the
   message-size histogram and the sender's flight-recorder entry, plus
   the chained transcript digest (corrupted copies hash as transmitted,
   so the digest pins the exact fault schedule too).  [seq] is known at
   every call site except limbo/drain flushes of held stale copies
   (passed as -1 there); it feeds only the flight recorder. *)
let transmit t ~src ~dst ~seq (wire_bytes : Bytes.t) =
  let len = Bytes.length wire_bytes in
  t.st.phys_messages <- t.st.phys_messages + 1;
  t.st.phys_bytes <- t.st.phys_bytes + len;
  t.phys_sent.(src) <- t.phys_sent.(src) + len;
  t.phys_received.(dst) <- t.phys_received.(dst) + len;
  t.link_msgs.(src).(dst) <- t.link_msgs.(src).(dst) + 1;
  t.link_bytes.(src).(dst) <- t.link_bytes.(src).(dst) + len;
  t.env_by_src.(src) <- t.env_by_src.(src) + Wire.envelope_overhead;
  Hist.record Hist.msg_bytes len;
  Flightrec.record t.flight ~party:src Flightrec.Send ~src ~dst ~seq ~info:len;
  t.round_rev <- { Netsim.src; dst; bytes = len } :: t.round_rev;
  let ctx = Sha256.init () in
  Sha256.feed_bytes ctx t.digest;
  Sha256.feed_bytes ctx wire_bytes;
  t.digest <- Sha256.finalize ctx

(* Receiver logic: validate the envelope, suppress stale sequence
   numbers.  Returns the accepted payload, or None when the arrival was
   discarded (corrupt or duplicate). *)
let receive t ~src ~dst (wire_bytes : Bytes.t) =
  match Wire.decode_envelope wire_bytes with
  | exception Wire.Malformed _ ->
      t.st.crc_rejects <- t.st.crc_rejects + 1;
      Flightrec.record t.flight ~party:dst Flightrec.Crc_reject ~src ~dst ~seq:(-1)
        ~info:(Bytes.length wire_bytes);
      None
  | env ->
      if env.Wire.env_src <> src || env.Wire.env_dst <> dst then begin
        (* A CRC-valid envelope on the wrong link: misrouted; refuse. *)
        t.st.crc_rejects <- t.st.crc_rejects + 1;
        Flightrec.record t.flight ~party:dst Flightrec.Crc_reject ~src ~dst
          ~seq:env.Wire.env_seq ~info:(Bytes.length wire_bytes);
        None
      end
      else if env.Wire.env_seq < t.recv_seq.(src).(dst) then begin
        t.st.dup_suppressed <- t.st.dup_suppressed + 1;
        None
      end
      else if env.Wire.env_seq > t.recv_seq.(src).(dst) then
        (* Unreachable with a per-link-sequential sender; a real async
           receiver would buffer.  Refuse loudly rather than mis-order. *)
        raise
          (Wire.Malformed
             (Printf.sprintf "future sequence %d on link %d->%d (expected %d)"
                env.Wire.env_seq src dst
                t.recv_seq.(src).(dst)))
      else begin
        t.recv_seq.(src).(dst) <- env.Wire.env_seq + 1;
        Flightrec.record t.flight ~party:dst Flightrec.Receive ~src ~dst
          ~seq:env.Wire.env_seq
          ~info:(Bytes.length env.Wire.env_payload);
        Some env.Wire.env_payload
      end

let link_key ~src ~dst n = (src * n) + dst

(* Stale copies held for reordering arrive once something else makes it
   through the link; sequence numbers mark them as duplicates. *)
let flush_limbo t ~src ~dst =
  let k = link_key ~src ~dst t.n in
  match Hashtbl.find_opt t.limbo k with
  | None | Some [] -> ()
  | Some held ->
      Hashtbl.remove t.limbo k;
      List.iter
        (fun env ->
          transmit t ~src ~dst ~seq:(-1) env;
          match receive t ~src ~dst env with
          | None -> ()
          | Some _ ->
              (* Cannot happen: the held seq was already accepted via a
                 retransmission before anything newer went through. *)
              assert false)
        (List.rev held)

let retry_span t ~kind ~src ~dst ~seq ~attempt =
  if Trace.enabled () then
    Trace.instant
      ~attrs:
        [
          ("party", Trace.Int src);
          ("src", Trace.Int src);
          ("dst", Trace.Int dst);
          ("seq", Trace.Int seq);
          ("fault", Trace.Str kind);
          ("retries", Trace.Int 1);
        ]
      "runtime.retry";
  note t (Printf.sprintf "%s[%d->%d#%d@%d]" kind src dst seq attempt)

(** Deliver [payload] from [src] to [dst], reliably.  Returns the bytes
    the receiver accepted (a fresh copy).
    @raise Party_dropped when the retry budget is exhausted. *)
let send t ~src ~dst (payload : Bytes.t) =
  let seq = t.send_seq.(src).(dst) in
  t.send_seq.(src).(dst) <- seq + 1;
  let env = Wire.encode_envelope ~src ~dst ~seq payload in
  (* Causal ledger send endpoint, captured before any wire touch so the
     flow arrow starts where the protocol decided to send.  Tracing
     off → no ledger entry and no clock reads. *)
  let tracing = Trace.enabled () in
  let fl_send_us = if tracing then now_us () else 0. in
  let fl_send_span = if tracing then Trace.current_span_id () else -1 in
  let fl_send_slot = if tracing then Ppgr_exec.Meter.slot () else 0 in
  let events = ref [] in
  let result = ref None in
  let attempt = ref 0 in
  while !result = None do
    if !attempt > t.retry_budget then begin
      let f =
        {
          fr_step = t.step;
          fr_src = src;
          fr_dst = dst;
          fr_seq = seq;
          fr_attempts = !attempt;
          fr_events = List.rev !events;
          fr_recent = List.rev t.recent_rev;
          fr_flight = Flightrec.tail t.flight ~party:src;
          fr_digest = transcript_sha t;
        }
      in
      if Trace.enabled () then
        Trace.instant
          ~attrs:
            [
              ("party", Trace.Int src);
              ("src", Trace.Int src);
              ("dst", Trace.Int dst);
              ("seq", Trace.Int seq);
              ("attempts", Trace.Int !attempt);
              ("step", Trace.Str t.step);
            ]
          "runtime.party_dropped";
      raise (Party_dropped f)
    end;
    if !attempt > 0 then begin
      t.st.retransmits <- t.st.retransmits + 1;
      t.retrans_by_src.(src) <- t.retrans_by_src.(src) + 1;
      t.link_retrans.(src).(dst) <- t.link_retrans.(src).(dst) + 1;
      (* Capped exponential backoff before a retransmission, accounted
         in simulated timer ticks. *)
      let wait =
        Stdlib.min t.backoff_cap (t.backoff_base lsl Stdlib.min 20 (!attempt - 1))
      in
      t.st.backoff_ticks <- t.st.backoff_ticks + wait;
      Hist.record Hist.backoff_ticks wait;
      Flightrec.record t.flight ~party:src Flightrec.Retransmit ~src ~dst ~seq
        ~info:!attempt
    end;
    let fault =
      match t.faults with None -> Faultplan.Deliver | Some p -> Faultplan.next p ~src ~dst
    in
    let record kind = retry_span t ~kind ~src ~dst ~seq ~attempt:!attempt in
    let deliver wire =
      transmit t ~src ~dst ~seq wire;
      match receive t ~src ~dst wire with
      | Some p ->
          result := Some p;
          (* Accept endpoint of the causal arrow: after every
             retransmission the fault schedule demanded, so the arrow's
             extent is the message's true delivery latency. *)
          if tracing then
            t.flows_rev <-
              {
                fl_src = src;
                fl_dst = dst;
                fl_seq = seq;
                fl_step = t.step;
                fl_bytes = Bytes.length p;
                fl_send_us;
                fl_recv_us = now_us ();
                fl_send_span;
                fl_recv_span = Trace.current_span_id ();
                fl_send_slot;
                fl_recv_slot = Ppgr_exec.Meter.slot ();
              }
              :: t.flows_rev;
          flush_limbo t ~src ~dst
      | None -> ()
    in
    (match fault with
    | Faultplan.Deliver -> deliver env
    | Faultplan.Drop ->
        t.st.drops <- t.st.drops + 1;
        record "drop";
        events := "drop" :: !events
    | Faultplan.Corrupt c ->
        (* The damaged copy occupies the wire; the receiver's CRC check
           turns it into a drop the sender times out on. *)
        deliver (Faultplan.apply_corruption c env);
        record "corrupt";
        events := "corrupt" :: !events
    | Faultplan.Duplicate ->
        deliver env;
        (* The second copy arrives stale and is suppressed. *)
        transmit t ~src ~dst ~seq env;
        (match receive t ~src ~dst env with Some _ -> assert false | None -> ());
        record "duplicate";
        events := "duplicate" :: !events
    | Faultplan.Reorder ->
        (* Held in link limbo: it will arrive after a later delivery on
           this link and be suppressed as stale.  For the sender this
           attempt is a timeout. *)
        t.st.reorders <- t.st.reorders + 1;
        let k = link_key ~src ~dst t.n in
        let held = Option.value ~default:[] (Hashtbl.find_opt t.limbo k) in
        Hashtbl.replace t.limbo k (env :: held);
        record "reorder";
        events := "reorder" :: !events
    | Faultplan.Delay d ->
        (* Arrives, late: the link clock advances but no retransmission
           is provoked (the timer is generous against jitter). *)
        t.st.delays <- t.st.delays + 1;
        t.st.backoff_ticks <- t.st.backoff_ticks + d;
        record "delay";
        events := Printf.sprintf "delay:%d" d :: !events;
        deliver env);
    incr attempt
  done;
  match !result with Some p -> Bytes.copy p | None -> assert false

(** Orphaned limbo entries at end of run (a reorder whose link never
    carried traffic again): deliver and suppress them so the physical
    log is complete. *)
let drain t =
  Hashtbl.iter
    (fun k held ->
      let src = k / t.n and dst = k mod t.n in
      List.iter
        (fun env ->
          transmit t ~src ~dst ~seq:(-1) env;
          ignore (receive t ~src ~dst env))
        (List.rev held))
    t.limbo;
  Hashtbl.reset t.limbo

(** Committee-sharded ranking — the quadratic ring broken into bounded
    rings plus a secure top-k merge (ROADMAP: "sharded / hierarchical
    ranking for millions of participants").

    The paper's phase 2 is quadratic in [n]: every party re-blinds and
    ring-decrypts every other party's ciphertext set, so a single ring
    caps out at tens of participants regardless of per-exponentiation
    speed.  This orchestrator partitions the [n] participants into
    rings of bounded size [s] — deterministically from the run seed —
    runs the unmodified {!Runtime} protocol inside each shard for
    shard-local ranks, and merges shard representatives through the
    Burkhart–Dimitropoulos secret-shared top-k ({!Ppgr_shamir.Topk}) on
    a small committee, arranged as Tueno et al.'s star network one
    level deep ({!Ppgr_mpcnet.Topology.two_level_tree}).  Total group
    work drops from [O(n^2 l)] exponentiations to [O(n s l)] plus an
    [O((n/s) k l)]-multiplication field-arithmetic merge.

    Why the shards stay comparable: phase 1 masks every partial gain
    with the {e same} multiplicative [rho] (per-participant [rho_j]
    only jitters within one gain step), so masked gains preserve the
    strict {e global} order — a representative's beta from shard 3 is
    directly comparable to one from shard 17, and the merge needs no
    re-masking round.

    Privacy (documented deviations from the monolithic protocol):
    - the paper's [n-2] collusion bound applies {e per shard}: inside a
      ring of size [s], unlinkability survives up to [s-2] colluders.
      Sharding trades the global bound for throughput;
    - shard-local ranks are only learned by the shard's own members
      (each member learns its own rank, as in the paper);
    - the merge opens top-k {e membership} (which candidates are
      winners) plus the Topk probe counts, but no rank order among
      winners and no losing candidate's value.  The deterministic
      tie-break additionally reveals which candidates tie at the cut
      (see {!Ppgr_shamir.Topk.top_k_det}). *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_shamir
open Ppgr_mpcnet
module Trace = Ppgr_obs.Trace
module Hist = Ppgr_obs.Hist
module Sha256 = Ppgr_hash.Sha256

(** {1 The partition plan} *)

type plan = {
  n : int;
  shard_size : int; (* the requested bound s *)
  members : int array array; (* shard -> global participant ids *)
  shard_of : int array; (* participant -> shard *)
  local_of : int array; (* participant -> index within its shard *)
}

let shards plan = Array.length plan.members
let sizes plan = Array.map Array.length plan.members

(** Partition [n] participants into [ceil(n / shard_size)] balanced
    shards by a seeded shuffle: the assignment depends only on the run
    seed (the split label ["shard-plan"] pins the stream), so every
    job count — and every re-run — partitions identically.  Balanced
    sizes differ by at most one; a size-1 shard can occur only when
    [n < 2 shard_size] leaves a remainder (its member ranks first in
    its shard trivially, no ring needed). *)
let make_plan rng ~n ~shard_size =
  if n < 1 then invalid_arg "Shard.make_plan: need at least 1 participant";
  if shard_size < 2 then invalid_arg "Shard.make_plan: shard_size must be >= 2";
  let perm = Array.init n (fun i -> i) in
  Rng.shuffle (Rng.split rng ~label:"shard-plan") perm;
  let count = (n + shard_size - 1) / shard_size in
  let base = n / count and extra = n mod count in
  let members =
    Array.init count (fun i ->
        let size = if i < extra then base + 1 else base in
        let off = (i * base) + Stdlib.min i extra in
        Array.init size (fun j -> perm.(off + j)))
  in
  let shard_of = Array.make n 0 and local_of = Array.make n 0 in
  Array.iteri
    (fun i ms ->
      Array.iteri
        (fun j p ->
          shard_of.(p) <- i;
          local_of.(p) <- j)
        ms)
    members;
  { n; shard_size; members; shard_of; local_of }

(** {1 The merge committee} *)

(* The committee's comparison field: the smallest test prime satisfying
   Compare's numbits(p) > l + 2 + kappa requirement. *)
let merge_field ~l =
  let need = l + 2 + 40 in
  let p =
    if need < 64 then Ppgr_group.Modp_params.test_64
    else if need < 96 then Ppgr_group.Modp_params.test_96
    else if need < 128 then Ppgr_group.Modp_params.test_128
    else if need < 256 then Ppgr_group.Modp_params.test_256
    else invalid_arg "Shard.merge_field: l too large for the test fields"
  in
  Ppgr_dotprod.Zfield.create p

type merge_stat = {
  committee : int; (* committee parties m (threshold (m-1)/2) *)
  candidates : int array; (* global ids in canonical (shard, local) order *)
  winners : int array; (* k global ids, ascending; membership only *)
  merge_costs : Engine.costs;
  merge_wall_s : float;
}

(** Run the secure top-k merge over [candidates] (global ids with their
    betas, in canonical order).  Every candidate secret-shares its beta
    to the [committee] in one simultaneous round; the committee runs
    the deterministic top-k and publishes the winning ids. *)
let merge_top_k rng ~l ~committee ~k
    ~(candidates : (int * Bigint.t) array) : merge_stat =
  let r = Array.length candidates in
  if k > r then invalid_arg "Shard.merge_top_k: k exceeds candidate count";
  if committee < 3 then invalid_arg "Shard.merge_top_k: committee must be >= 3";
  let t0 = if Hist.enabled () then Unix.gettimeofday () else 0. in
  let stat =
    Trace.with_span
      ~attrs:[ ("n", Trace.Int r); ("k", Trace.Int k); ("l", Trace.Int l) ]
      "shard.merge"
    @@ fun () ->
    let f = merge_field ~l in
    let e = Engine.create rng f ~n:committee in
    Engine.reset_costs e;
    let prm = Compare.default_params ~l () in
    let shared =
      Array.of_list
        (Engine.input_batch e
           (Array.to_list (Array.map (fun (_, b) -> b) candidates)))
    in
    let win_idx = Topk.top_k_det e prm ~k shared in
    let winners =
      Array.of_list (List.map (fun i -> fst candidates.(i)) win_idx)
    in
    Array.sort compare winners;
    {
      committee;
      candidates = Array.map fst candidates;
      winners;
      merge_costs = Engine.costs e;
      merge_wall_s = 0.;
    }
  in
  let wall = if Hist.enabled () then Unix.gettimeofday () -. t0 else 0. in
  if Hist.enabled () then Hist.record_us Hist.merge_us (wall *. 1e6);
  { stat with merge_wall_s = wall }

(** {1 The sharded run} *)

type shard_stat = {
  shard : int;
  size : int;
  shard_wall_s : float;
  shard_group_ops : int; (* group multiplications inside this shard *)
  shard_sha : string; (* the shard's own wire-transcript digest *)
  shard_bytes : int; (* logical payload bytes inside the shard *)
}

type result = {
  plan : plan;
  local_ranks : int array; (* participant -> rank within its shard *)
  winners : int array; (* global top-k ids, ascending; membership only *)
  shard_stats : shard_stat array;
  merge : merge_stat;
  transcript_sha : string;
      (* chained digest: every shard's wire transcript in shard order,
         then the merge outcome *)
  group_ops : int; (* total group multiplications, all shards *)
  schedule : Netsim.schedule;
      (* fan-in model on the two-level tree: parties 0..n-1 are the
         participants, n..n+m-1 the merge committee *)
}

module Make (G : Ppgr_group.Group_intf.GROUP) = struct
  module R = Runtime.Make (G)

  (* Representatives of one shard: members whose local rank is within
     min(k, size).  Any global top-k member ranks at least that well
     inside its own shard (ranking restricted to a subset only
     improves), so the candidate pool provably contains the global
     top k. *)
  let representatives ~k ~members ~local_ranks =
    let keep = Stdlib.min k (Array.length members) in
    let reps = ref [] in
    Array.iteri
      (fun j p -> if local_ranks.(j) <= keep then reps := p :: !reps)
      members;
    List.rev !reps

  (* The fan-in schedule on the two-level tree party space.  Per-shard
     runtime schedules are remapped onto global participant ids and
     overlaid (shards run in parallel in the field); then the merge:
     one fan-in round (each candidate shares its beta to the
     committee), the committee's internal rounds as all-broadcasts
     (SS-framework accounting idiom), and one winner announcement. *)
  let fan_in_schedule ~plan ~(shard_scheds : Netsim.schedule array)
      ~(merge : merge_stat) ~field_bytes =
    let n = plan.n in
    let m = merge.committee in
    let intra =
      Netsim.overlay
        (Array.to_list
           (Array.mapi
              (fun i sched ->
                Netsim.remap (fun local -> plan.members.(i).(local)) sched)
              shard_scheds))
    in
    let fan_in =
      {
        Netsim.compute_s = 0.;
        messages =
          Array.to_list merge.candidates
          |> List.concat_map (fun p ->
                 List.init m (fun c ->
                     { Netsim.src = p; dst = n + c; bytes = field_bytes }));
      }
    in
    let c = merge.merge_costs in
    let rounds = Stdlib.max 1 c.Engine.c_rounds in
    let per_pair =
      Stdlib.max 1
        (c.Engine.c_elements * field_bytes / (rounds * m * (Stdlib.max 1 (m - 1))))
    in
    let committee_rounds =
      List.init rounds (fun _ ->
          {
            Netsim.compute_s = 0.;
            messages =
              List.concat_map
                (fun src ->
                  List.filter_map
                    (fun dst ->
                      if dst = src then None
                      else Some { Netsim.src = n + src; dst = n + dst; bytes = per_pair })
                    (List.init m Fun.id))
                (List.init m Fun.id);
          })
    in
    let announce =
      {
        Netsim.compute_s = 0.;
        messages =
          List.init n (fun p ->
              { Netsim.src = n; dst = p; bytes = 4 * Array.length merge.winners });
      }
    in
    intra @ (fan_in :: committee_rounds) @ [ announce ]

  (** Place the sharded party space on {!Topology.two_level_tree}:
      participant [p] on its shard's leaf, committee member [c] on the
      coordinator ([c = 0]) or an aggregator node. *)
  let placement ~plan ~committee =
    let root, aggregators, leaves =
      Topology.two_level_layout ~shard_sizes:(sizes plan)
    in
    (* Committee members live on the hub nodes (coordinator first, then
       aggregators); a committee larger than the hub count — only in
       tiny test runs — spills onto leaves. *)
    let hubs =
      Array.append (Array.append [| root |] aggregators)
        (Array.concat (Array.to_list leaves))
    in
    Array.init (plan.n + committee) (fun party ->
        if party < plan.n then leaves.(plan.shard_of.(party)).(plan.local_of.(party))
        else hubs.(party - plan.n))

  (** Rank [betas] in committee-sharded mode.  Shards execute
      sequentially in shard order — their inner loops already saturate
      the domain pool — each on its own [Rng.split] stream
      (["shard-<i>"]), so transcripts are byte-identical at any job
      count and the global digest chains the per-shard digests in a
      fixed order.  Per-shard sessions are cached by shard size, so the
      label preformatting runs once per distinct size.

      [faults]/[window] thread straight into every shard's transport
      (each shard draws its own seeded schedule from its own stream).
      [restarts] above 0 supervises each shard with
      {!Runtime.run_with_restart}: a shard aborted by
      {!Transport.Party_dropped} resumes from its last checkpoint up to
      [restarts] times, then re-elects its ring without the dead member
      — who learns no rank and never represents the shard in the
      merge. *)
  let run ?(shard_size = 16) ?(committee = 5) ?(k = 10) ?faults ?window
      ?(restarts = 0) rng ~l ~(betas : Bigint.t array) : result =
    let n = Array.length betas in
    let k = Stdlib.min k n in
    let plan = make_plan rng ~n ~shard_size in
    let count = shards plan in
    Trace.with_span
      ~attrs:
        [
          ("group", Trace.Str G.name);
          ("n", Trace.Int n);
          ("l", Trace.Int l);
          ("k", Trace.Int k);
        ]
      "shard.run"
    @@ fun () ->
    let sessions : (int, R.session) Hashtbl.t = Hashtbl.create 4 in
    let session_for size =
      match Hashtbl.find_opt sessions size with
      | Some s -> s
      | None ->
          let s = R.make_session ~n:size ~l in
          Hashtbl.add sessions size s;
          s
    in
    let local_ranks = Array.make n 0 in
    let ctx = Sha256.init () in
    Sha256.feed_string ctx "ppgr-shard-transcript-v1";
    let group_ops = ref 0 in
    let shard_scheds = Array.make count [] in
    let shard_stats =
      Array.init count (fun i ->
          let ms = plan.members.(i) in
          let size = Array.length ms in
          let shard_rng = Rng.split rng ~label:("shard-" ^ string_of_int i) in
          let t0 = Unix.gettimeofday () in
          let ops0 = G.op_snapshot () in
          let sha, bytes =
            if size = 1 then begin
              (* A singleton shard needs no ring: its member ranks
                 first trivially and goes straight to the merge. *)
              local_ranks.(ms.(0)) <- 1;
              (Sha256.hex_of_digest (Sha256.digest_string "ppgr-shard-singleton"), 0)
            end
            else begin
              let sub = Array.map (fun p -> betas.(p)) ms in
              let session = session_for size in
              let st, dead =
                if restarts = 0 then
                  ( R.run ?faults ?window ~session ~shard:i shard_rng ~l
                      ~betas:sub,
                    None )
                else begin
                  let rc =
                    R.run_with_restart ?faults ?window ~max_restarts:restarts
                      ~session ~shard:i shard_rng ~l ~betas:sub
                  in
                  (rc.R.rec_stats, rc.R.rec_reelected)
                end
              in
              (match dead with
              | None ->
                  Array.iteri (fun j p -> local_ranks.(p) <- st.R.ranks.(j)) ms
              | Some d ->
                  (* The dead member learns no rank and never
                     represents a re-elected shard in the merge. *)
                  local_ranks.(ms.(d)) <- size + 1;
                  Array.iteri
                    (fun j' rank ->
                      let j = if j' < d then j' else j' + 1 in
                      local_ranks.(ms.(j)) <- rank)
                    st.R.ranks);
              shard_scheds.(i) <- st.R.net_rounds;
              (st.R.transcript_sha, st.R.bytes_on_wire)
            end
          in
          let ops = G.ops_since ops0 in
          group_ops := !group_ops + ops;
          let wall = Unix.gettimeofday () -. t0 in
          if Hist.enabled () then Hist.record_us Hist.shard_us (wall *. 1e6);
          Sha256.feed_string ctx sha;
          {
            shard = i;
            size;
            shard_wall_s = wall;
            shard_group_ops = ops;
            shard_sha = sha;
            shard_bytes = bytes;
          })
    in
    (* Candidates in canonical (shard, local) order: the Topk tie-break
       resolves by this public ordering and nothing else. *)
    let candidates =
      Array.of_list
        (List.concat_map
           (fun i ->
             List.map
               (fun p -> (p, betas.(p)))
               (representatives ~k ~members:plan.members.(i)
                  ~local_ranks:(Array.map (fun p -> local_ranks.(p)) plan.members.(i))))
           (List.init count Fun.id))
    in
    let merge_rng = Rng.split rng ~label:"shard-merge" in
    let merge = merge_top_k merge_rng ~l ~committee ~k ~candidates in
    (* Chain the merge outcome into the global digest: candidate ids,
       winners and the committee's deterministic cost ledger. *)
    let c = merge.merge_costs in
    Sha256.feed_string ctx
      (Printf.sprintf "merge:%s|%s|%d:%d:%d:%d"
         (String.concat ","
            (Array.to_list (Array.map string_of_int merge.candidates)))
         (String.concat ","
            (Array.to_list (Array.map string_of_int merge.winners)))
         c.Engine.c_mults c.Engine.c_rounds c.Engine.c_elements c.Engine.c_opens);
    let field_bytes =
      (Bigint.numbits (Ppgr_dotprod.Zfield.modulus (merge_field ~l)) + 7) / 8
    in
    let schedule =
      fan_in_schedule ~plan ~shard_scheds ~merge ~field_bytes
    in
    {
      plan;
      local_ranks;
      winners = merge.winners;
      shard_stats;
      merge;
      transcript_sha = Sha256.hex_of_digest (Sha256.finalize ctx);
      group_ops = !group_ops;
      schedule;
    }

  (** Simulate the fan-in traffic of a finished run on its two-level
      tree. *)
  let simulate_fan_in (r : result) : Netsim.stats =
    let topo = Topology.two_level_tree ~shard_sizes:(sizes r.plan) () in
    let placement = placement ~plan:r.plan ~committee:r.merge.committee in
    Netsim.run topo ~placement r.schedule
end

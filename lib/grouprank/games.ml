(** Mechanized checks for the security games of §III-C.

    The paper's proofs are reductions to IND-CPA; what a test suite can
    check mechanically is the {e functional} leakage — that everything an
    adversary observes {e in the clear} is invariant between the two
    branches of each game — plus distributional properties of the
    blinding (zero positions uniform under the honest permutations,
    non-zero plaintexts randomized).

    - {b Gain hiding} (Def. 5): with one honest participant whose gain
      is moved within the interval between two adversary gains, every
      colluder's rank — and hence its clear view — is unchanged.
    - {b Identity unlinkability} (Def. 7): swapping the private inputs
      of two honest participants leaves every colluder's clear view
      unchanged; only the two hidden ranks swap. *)

open Ppgr_bigint
open Ppgr_rng

module Make (G : Ppgr_group.Group_intf.GROUP) = struct
  module P2 = Phase2.Make (G)

  (** Run phase 2 on two beta vectors that agree on the colluders'
      positions, and report whether every colluder observed the same
      rank in both runs. *)
  let colluder_ranks_invariant rng ~l ~honest ~betas_a ~betas_b =
    let n = Array.length betas_a in
    if Array.length betas_b <> n then invalid_arg "Games: beta length mismatch";
    Array.iteri
      (fun i (a : Bigint.t) ->
        if (not (List.mem i honest)) && not (Bigint.equal a betas_b.(i)) then
          invalid_arg "Games: colluder betas must agree between branches")
      betas_a;
    (* The two branches are independent end-to-end runs given forked
       RNG streams, so they execute as two pool tasks.  Meters are
       reset once before both: a per-branch reset would race with the
       other branch's concurrent ticks, so the counts a run reports are
       no longer branch-local — the games only consume [ranks], which
       are schedule-independent by the pool's determinism contract. *)
    G.reset_op_count ();
    Ppgr_group.Opmeter.reset ();
    let branch_rngs =
      [| Rng.split rng ~label:"branch-a"; Rng.split rng ~label:"branch-b" |]
    in
    let branch_betas = [| betas_a; betas_b |] in
    let results =
      Ppgr_exec.Pool.parallel_init 2 (fun b ->
          (P2.run branch_rngs.(b) ~l ~betas:branch_betas.(b)).P2.ranks)
    in
    let ra = results.(0) and rb = results.(1) in
    let ok = ref true in
    for i = 0 to n - 1 do
      if (not (List.mem i honest)) && ra.(i) <> rb.(i) then ok := false
    done;
    !ok

  (** Gain-hiding game (Def. 5), functional part: the honest participant
      [honest] takes value [beta0] or [beta1]; both must lie strictly in
      the same interval of the adversary's values (Condition (1)).
      Returns [`Invariant] when colluder views agree, [`Bad_interval]
      when the precondition fails (the caller picked bad values). *)
  let gain_hiding rng ~l ~honest ~beta0 ~beta1 ~adversary_betas =
    let interval_index (b : Bigint.t) =
      Array.fold_left
        (fun acc a -> if Bigint.compare a b < 0 then acc + 1 else acc)
        0 adversary_betas
    in
    let same_interval =
      interval_index beta0 = interval_index beta1
      && Array.for_all
           (fun a -> (not (Bigint.equal a beta0)) && not (Bigint.equal a beta1))
           adversary_betas
    in
    if not same_interval then `Bad_interval
    else begin
      let n = Array.length adversary_betas + 1 in
      let build honest_beta =
        let out = Array.make n Bigint.zero in
        let adv = ref 0 in
        for i = 0 to n - 1 do
          if i = honest then out.(i) <- honest_beta
          else begin
            out.(i) <- adversary_betas.(!adv);
            incr adv
          end
        done;
        out
      in
      if
        colluder_ranks_invariant rng ~l ~honest:[ honest ]
          ~betas_a:(build beta0) ~betas_b:(build beta1)
      then `Invariant
      else `Distinguishable
    end

  (** Identity-unlinkability game (Def. 7), functional part: honest
      participants [pi] and [pj] hold [beta0]/[beta1] in one branch and
      swapped in the other. *)
  let identity_unlinkability rng ~l ~pi ~pj ~beta0 ~beta1 ~others =
    let n = List.length others + 2 in
    if pi = pj || pi >= n || pj >= n then invalid_arg "Games: bad honest indices";
    let build first second =
      let out = Array.make n Bigint.zero in
      let rest = ref others in
      for i = 0 to n - 1 do
        if i = pi then out.(i) <- first
        else if i = pj then out.(i) <- second
        else begin
          match !rest with
          | [] -> invalid_arg "Games: not enough adversary values"
          | v :: tl ->
              out.(i) <- v;
              rest := tl
        end
      done;
      out
    in
    if
      colluder_ranks_invariant rng ~l ~honest:[ pi; pj ]
        ~betas_a:(build beta0 beta1) ~betas_b:(build beta1 beta0)
    then `Invariant
    else `Distinguishable

  (** Distributional check on the step-8 blinding: the position of a
      zero inside a returned set must be uniform over the set (the
      per-party permutations hide which comparison produced it).  Runs
      the protocol [trials] times with betas making participant 0 rank
      below exactly one other (one zero in its set of (n-1)l
      ciphertexts) and returns the histogram of the zero's position. *)
  let zero_position_histogram rng ~l ~n ~trials =
    if n < 2 then invalid_arg "Games: need n >= 2";
    (* Participant 0 gets value 1; participant 1 gets 2; everyone else 0:
       exactly one participant outranks P_0. *)
    let betas =
      Array.init n (fun i -> Bigint.of_int (match i with 0 -> 1 | 1 -> 2 | _ -> 0))
    in
    let positions = Array.make ((n - 1) * l) 0 in
    (* Trials are independent runs on stable-label streams; they fan
       out over the pool and the histogram accumulates afterwards (sum
       order is immaterial). *)
    let flags =
      Ppgr_exec.Pool.parallel_init trials (fun t ->
          let r =
            P2.run
              (Rng.split rng ~label:(Printf.sprintf "zero-pos-%d" (t + 1)))
              ~l ~betas
          in
          r.P2.zero_flags.(0))
    in
    Array.iter
      (Array.iteri (fun c z -> if z then positions.(c) <- positions.(c) + 1))
      flags;
    positions
end

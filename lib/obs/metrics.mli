(** The metrics registry: named integer probes the tracer samples
    around every span.

    A probe is a cheap, side-effect-free monotone counter reader —
    typically a closure over a {!Ppgr_exec.Meter}.  Probes are
    registered by the entry point that knows the concrete instances
    (CLI, framework, bench); library code never registers anything, it
    only gets its spans decorated. *)

type probe = { name : string; read : unit -> int }

(** Register (or replace) a probe.  Registration order is reading
    order, so tables and span attributes come out stable. *)
val register : name:string -> (unit -> int) -> unit

val unregister : name:string -> unit
val clear : unit -> unit
val names : unit -> string list

type sample = (string * int) list

(** Read every registered probe, in registration order. *)
val read_all : unit -> sample

(** Pairwise deltas of two samples; zero deltas and probes present in
    only one sample are dropped. *)
val deltas : before:sample -> after:sample -> sample

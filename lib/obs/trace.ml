(** Span-based protocol tracer.

    A span is a named, nestable interval with attributes (phase, step,
    party index, ring hop, group name, byte counts) and wall-clock
    timestamps; the instrumented protocol layers open one span per
    phase step / party / ring hop, and the exporters turn the recorded
    set into a Chrome trace (Perfetto-loadable), a JSONL event log, or
    the per-phase × per-party summary table.

    {b Cost model.}  Tracing is off by default and the disabled path is
    one ref read and a branch per call site, so instrumented hot paths
    pay nothing measurable.  When enabled, a span open/close samples
    every registered {!Metrics} probe and attaches the non-zero deltas,
    which is why instrumentation sits at step granularity, never inside
    per-ciphertext loops.

    {b Parallelism.}  Spans are recorded into one buffer per domain
    slot — the same padded-lane discipline as {!Ppgr_exec.Meter} — so
    pool workers record without locks, and the main domain collects
    after pool joins (the pool's own synchronization provides the
    happens-before edge).  A span opened inside a pool task whose
    domain has no open span parents itself under the span the main
    domain had open when the batch launched, so nesting is identical at
    any job count; probe deltas of spans that fan work out over the
    pool are exact because the underlying meters merge by summation. *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type span = {
  id : int;
  parent : int; (* span id, or -1 for a root *)
  name : string;
  slot : int; (* domain lane that recorded the span *)
  seq : int; (* per-slot open order *)
  start_us : float;
  mutable dur_us : float;
  mutable attrs : (string * attr) list;
}

let slots = Ppgr_exec.Meter.max_slot + 1

(* ---- Global tracer state ---- *)

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Per-slot span buffers and open-sequence counters.  Each domain only
   ever touches its own slot; the stride padding keeps the counters off
   shared cache lines, mirroring the meter layout. *)
let stride = 8
let bufs : span list ref array = Array.init slots (fun _ -> ref [])
let seqs = Array.make (slots * stride) 0
let last_ts = Array.make (slots * stride) 0.

let next_seq slot =
  let i = slot * stride in
  let s = seqs.(i) in
  seqs.(i) <- s + 1;
  s

(* Wall clock in microseconds, clamped per-slot so timestamps never run
   backwards within a lane even if the system clock steps. *)
let now_us slot =
  let t = Unix.gettimeofday () *. 1e6 in
  let i = slot * stride in
  if t < last_ts.(i) then last_ts.(i)
  else begin
    last_ts.(i) <- t;
    t
  end

(* The per-domain stack of open spans (innermost first). *)
let stack_key : span list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

(* The span the main domain has open when a pool batch launches: a span
   opened inside a pool task with an empty local stack parents here, so
   jobs=1 and jobs=k produce the same nesting.  Written only by the
   main domain outside parallel regions; read by workers after the
   pool's synchronization point. *)
let batch_parent = ref (-1)

let span_id ~slot ~seq = (seq * slots) + slot

let reset () =
  Array.iter (fun b -> b := []) bufs;
  Array.fill seqs 0 (Array.length seqs) 0;
  batch_parent := -1

let current_parent () =
  match Domain.DLS.get stack_key with
  | sp :: _ -> sp.id
  | [] -> if Ppgr_exec.Pool.in_parallel_task () then !batch_parent else -1

(* The innermost open span of the calling domain (batch parent inside a
   pool task, -1 outside any span) — the anchor the causal flow ledger
   records so exported flow arrows bind to the enclosing slice. *)
let current_span_id = current_parent

let on_main_domain () =
  Ppgr_exec.Meter.slot () = 0 && not (Ppgr_exec.Pool.in_parallel_task ())

let open_span ~attrs name =
  let slot = Ppgr_exec.Meter.slot () in
  let seq = next_seq slot in
  let sp =
    {
      id = span_id ~slot ~seq;
      parent = current_parent ();
      name;
      slot;
      seq;
      start_us = now_us slot;
      dur_us = 0.;
      attrs;
    }
  in
  Domain.DLS.set stack_key (sp :: Domain.DLS.get stack_key);
  if on_main_domain () then batch_parent := sp.id;
  sp

let close_span sp ~probe_before =
  (match Domain.DLS.get stack_key with
  | top :: rest when top == sp -> Domain.DLS.set stack_key rest
  | stack ->
      (* An exception unwound past inner spans without closing them:
         drop everything above this span so the stack stays sane. *)
      let rec strip = function
        | top :: rest when top == sp -> rest
        | _ :: rest -> strip rest
        | [] -> []
      in
      Domain.DLS.set stack_key (strip stack));
  if on_main_domain () then batch_parent := sp.parent;
  sp.dur_us <- now_us sp.slot -. sp.start_us;
  Hist.record_us Hist.span_us sp.dur_us;
  (match probe_before with
  | None -> ()
  | Some before ->
      let d = Metrics.deltas ~before ~after:(Metrics.read_all ()) in
      sp.attrs <- sp.attrs @ List.map (fun (k, v) -> (k, Int v)) d);
  let b = bufs.(sp.slot) in
  b := sp :: !b

let with_span ?(attrs = []) name f =
  if not !enabled_flag then f ()
  else begin
    let before = Metrics.read_all () in
    let sp = open_span ~attrs name in
    Fun.protect ~finally:(fun () -> close_span sp ~probe_before:(Some before)) f
  end

let instant ?(attrs = []) name =
  if !enabled_flag then begin
    let slot = Ppgr_exec.Meter.slot () in
    let seq = next_seq slot in
    let sp =
      {
        id = span_id ~slot ~seq;
        parent = current_parent ();
        name;
        slot;
        seq;
        start_us = now_us slot;
        dur_us = 0.;
        attrs;
      }
    in
    let b = bufs.(slot) in
    b := sp :: !b
  end

let add_attr name v =
  if !enabled_flag then
    match Domain.DLS.get stack_key with
    | sp :: _ -> sp.attrs <- sp.attrs @ [ (name, v) ]
    | [] -> ()

let bump_attr name k =
  if !enabled_flag then
    match Domain.DLS.get stack_key with
    | sp :: _ -> (
        match List.assoc_opt name sp.attrs with
        | Some (Int v) ->
            sp.attrs <-
              List.map
                (fun (n, a) -> if n = name then (n, Int (v + k)) else (n, a))
                sp.attrs
        | _ -> sp.attrs <- sp.attrs @ [ (name, Int k) ])
    | [] -> ()

(** Recorded spans in deterministic (slot, open-seq) order; call on the
    main domain outside parallel regions. *)
let spans () : span list =
  let all = ref [] in
  for s = slots - 1 downto 0 do
    all := List.rev_append !(bufs.(s)) !all
  done;
  List.sort
    (fun a b ->
      if a.slot <> b.slot then compare a.slot b.slot else compare a.seq b.seq)
    !all

let span_count () = List.length (spans ())

(** Run [f] with tracing enabled on a fresh buffer; returns the result
    and the recorded spans, restoring the previous enabled state. *)
let capture f =
  let was = !enabled_flag in
  reset ();
  set_enabled true;
  let r = Fun.protect ~finally:(fun () -> set_enabled was) f in
  let s = spans () in
  reset ();
  (r, s)

(** Span-based protocol tracer (see the implementation header for the
    full model).

    Spans are nestable named intervals with attributes; when tracing is
    enabled, every span additionally carries the deltas of all
    registered {!Metrics} probes over its extent.  Disabled tracing
    costs one ref read per call site. *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type span = {
  id : int;
  parent : int; (* span id, or -1 for a root *)
  name : string;
  slot : int; (* domain lane that recorded the span *)
  seq : int; (* per-slot open order *)
  start_us : float;
  mutable dur_us : float;
  mutable attrs : (string * attr) list;
}

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop all recorded spans and sequence counters.  Main domain only,
    outside parallel regions. *)

val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  The span closes (and is
    recorded) even if [f] raises.  Probe deltas over the extent of [f]
    are attached as integer attributes named after the probes. *)

val instant : ?attrs:(string * attr) list -> string -> unit
(** A zero-duration marker span (no probe sampling). *)

val add_attr : string -> attr -> unit
(** Append an attribute to the innermost open span of the calling
    domain; no-op when disabled or outside any span. *)

val bump_attr : string -> int -> unit
(** Add to an integer attribute of the innermost open span, creating it
    at the given value if absent — the accumulator the wire layer uses
    for per-span byte tallies. *)

val spans : unit -> span list
(** All recorded spans in deterministic (slot, open-order) order.  Call
    on the main domain outside parallel regions. *)

val span_count : unit -> int

val current_span_id : unit -> int
(** Id of the innermost open span of the calling domain (the batch
    parent inside a pool task with no local span, -1 outside any
    span) — the anchor the transport's causal flow ledger records so
    exported flow arrows bind to the enclosing slice. *)

val capture : (unit -> 'a) -> 'a * span list
(** [capture f] runs [f] with tracing enabled on a fresh buffer and
    returns its result with the recorded spans; previous enabled state
    and buffers are restored/cleared. *)

(**/**)

val span_id : slot:int -> seq:int -> int

(** Trace exporters: Chrome trace-event JSON (loadable in Perfetto or
    chrome://tracing) and a line-per-span JSONL event log.

    Both formats are rendered with a hand-rolled emitter — the repo has
    no JSON dependency — and are deliberately minimal: complete events
    ([ph:"X"]) on one process, one thread id per domain slot, span
    attributes in [args]. *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_attr b = function
  | Trace.Int i -> Buffer.add_string b (string_of_int i)
  | Trace.Float f -> Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Trace.Str s -> buf_add_json_string b s
  | Trace.Bool v -> Buffer.add_string b (if v then "true" else "false")

let buf_add_attrs b attrs =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      buf_add_attr b v)
    attrs;
  Buffer.add_char b '}'

(** {1 Chrome trace-event format} *)

let chrome_event b (sp : Trace.span) =
  Buffer.add_string b "{\"name\":";
  buf_add_json_string b sp.name;
  Buffer.add_string b ",\"cat\":\"ppgr\",\"ph\":\"X\",\"ts\":";
  Buffer.add_string b (Printf.sprintf "%.1f" sp.start_us);
  Buffer.add_string b ",\"dur\":";
  Buffer.add_string b (Printf.sprintf "%.1f" sp.dur_us);
  Buffer.add_string b (Printf.sprintf ",\"pid\":0,\"tid\":%d,\"args\":" sp.slot);
  buf_add_attrs b (("span_id", Trace.Int sp.id) :: ("parent", Trace.Int sp.parent) :: sp.attrs);
  Buffer.add_char b '}'

let chrome_string (spans : Trace.span list) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  (* Name the per-slot tracks so Perfetto shows "main" / "worker k". *)
  List.iteri
    (fun i slot ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           slot
           (if slot = 0 then "main" else Printf.sprintf "worker-%d" slot)))
    (List.sort_uniq compare (List.map (fun (sp : Trace.span) -> sp.slot) spans));
  List.iter
    (fun sp ->
      Buffer.add_string b ",\n";
      chrome_event b sp)
    spans;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_chrome path spans =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (chrome_string spans))

(** {1 JSONL event log} *)

let jsonl_line b (sp : Trace.span) =
  Buffer.add_string b "{\"name\":";
  buf_add_json_string b sp.name;
  Buffer.add_string b
    (Printf.sprintf ",\"id\":%d,\"parent\":%d,\"slot\":%d,\"ts_us\":%.1f,\"dur_us\":%.1f,\"attrs\":"
       sp.id sp.parent sp.slot sp.start_us sp.dur_us);
  buf_add_attrs b sp.attrs;
  Buffer.add_string b "}\n"

let jsonl_string (spans : Trace.span list) =
  let b = Buffer.create 4096 in
  List.iter (jsonl_line b) spans;
  Buffer.contents b

let write_jsonl path spans =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (jsonl_string spans))

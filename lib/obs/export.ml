(** Trace exporters: Chrome trace-event JSON (loadable in Perfetto or
    chrome://tracing), a line-per-span JSONL event log, and a
    Prometheus text-format exposition of probes and histograms.

    The JSON formats are rendered with a hand-rolled emitter — the repo
    has no JSON dependency — and are deliberately minimal: complete
    events ([ph:"X"]) on one process, one thread id per domain slot,
    span attributes in [args].  Cross-party causality is rendered as
    flow events ([ph:"s"]/[ph:"f"]): Perfetto draws an arrow from the
    sender's slice to the receiver's, binding each endpoint to the
    slice enclosing its (pid, tid, ts) coordinate. *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_attr b = function
  | Trace.Int i -> Buffer.add_string b (string_of_int i)
  | Trace.Float f -> Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Trace.Str s -> buf_add_json_string b s
  | Trace.Bool v -> Buffer.add_string b (if v then "true" else "false")

let buf_add_attrs b attrs =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      buf_add_attr b v)
    attrs;
  Buffer.add_char b '}'

(** {1 Chrome trace-event format} *)

(** One causal arrow: drawn from the sender's open slice at
    [flow_send_us] on lane [flow_src_slot] to the receiver's at
    [flow_recv_us] on lane [flow_dst_slot].  The transport builds these
    from its off-wire ledger ([Transport.flows]); the ids only need to
    be unique within one trace. *)
type flow = {
  flow_name : string;
  flow_id : int;
  flow_src_slot : int;
  flow_dst_slot : int;
  flow_send_us : float;
  flow_recv_us : float;
  flow_args : (string * Trace.attr) list;
}

let flow_event b f ~finish =
  Buffer.add_string b "{\"name\":";
  buf_add_json_string b f.flow_name;
  Buffer.add_string b ",\"cat\":\"ppgr.flow\",\"ph\":";
  Buffer.add_string b (if finish then "\"f\",\"bp\":\"e\"" else "\"s\"");
  Buffer.add_string b (Printf.sprintf ",\"id\":%d,\"pid\":0,\"tid\":%d,\"ts\":" f.flow_id
                         (if finish then f.flow_dst_slot else f.flow_src_slot));
  Buffer.add_string b
    (Printf.sprintf "%.1f" (if finish then f.flow_recv_us else f.flow_send_us));
  Buffer.add_string b ",\"args\":";
  buf_add_attrs b f.flow_args;
  Buffer.add_char b '}'

let chrome_event b (sp : Trace.span) =
  Buffer.add_string b "{\"name\":";
  buf_add_json_string b sp.name;
  Buffer.add_string b ",\"cat\":\"ppgr\",\"ph\":\"X\",\"ts\":";
  Buffer.add_string b (Printf.sprintf "%.1f" sp.start_us);
  Buffer.add_string b ",\"dur\":";
  Buffer.add_string b (Printf.sprintf "%.1f" sp.dur_us);
  Buffer.add_string b (Printf.sprintf ",\"pid\":0,\"tid\":%d,\"args\":" sp.slot);
  buf_add_attrs b (("span_id", Trace.Int sp.id) :: ("parent", Trace.Int sp.parent) :: sp.attrs);
  Buffer.add_char b '}'

let chrome_string ?(flows = []) (spans : Trace.span list) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  (* Name the per-slot tracks so Perfetto shows "main" / "worker k". *)
  List.iteri
    (fun i slot ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           slot
           (if slot = 0 then "main" else Printf.sprintf "worker-%d" slot)))
    (List.sort_uniq compare (List.map (fun (sp : Trace.span) -> sp.slot) spans));
  List.iter
    (fun sp ->
      Buffer.add_string b ",\n";
      chrome_event b sp)
    spans;
  List.iter
    (fun f ->
      Buffer.add_string b ",\n";
      flow_event b f ~finish:false;
      Buffer.add_string b ",\n";
      flow_event b f ~finish:true)
    flows;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_chrome ?flows path spans =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (chrome_string ?flows spans))

(** {1 JSONL event log} *)

let jsonl_line b (sp : Trace.span) =
  Buffer.add_string b "{\"name\":";
  buf_add_json_string b sp.name;
  Buffer.add_string b
    (Printf.sprintf ",\"id\":%d,\"parent\":%d,\"slot\":%d,\"ts_us\":%.1f,\"dur_us\":%.1f,\"attrs\":"
       sp.id sp.parent sp.slot sp.start_us sp.dur_us);
  buf_add_attrs b sp.attrs;
  Buffer.add_string b "}\n"

let jsonl_string (spans : Trace.span list) =
  let b = Buffer.create 4096 in
  List.iter (jsonl_line b) spans;
  Buffer.contents b

let write_jsonl path spans =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (jsonl_string spans))

(** {1 Prometheus text exposition}

    Every registered {!Metrics} probe becomes a counter and every
    registered {!Hist} a histogram (cumulative [le] buckets over the
    non-empty log-linear buckets' upper bounds).  This is the scrape
    payload for the upcoming daemon mode; today the CLI snapshots it to
    a file ([--stats-out]) and the bench archives it as an artifact. *)

let prom_sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let prometheus_string () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let m = "ppgr_" ^ prom_sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" m m v))
    (Metrics.read_all ());
  List.iter
    (fun (name, h) ->
      let m = "ppgr_" ^ prom_sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" m);
      let cum = ref 0 in
      List.iter
        (fun (_, hi, c) ->
          cum := !cum + c;
          Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" m hi !cum))
        (Hist.buckets h);
      Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m !cum);
      Buffer.add_string b (Printf.sprintf "%s_sum %d\n" m (Hist.sum h));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" m (Hist.count h)))
    (Hist.registered ());
  Buffer.contents b

let write_prometheus path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (prometheus_string ()))

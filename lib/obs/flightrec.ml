(** Per-party flight recorder: a fixed-capacity ring of recent wire
    events.

    Counters ([Transport.stats]) say {e how many} retransmissions a
    chaos run needed; when a party aborts they cannot say {e what the
    link was doing just before}.  The flight recorder keeps the last N
    protocol events per party — sends, receives, retransmits, CRC
    rejects, step transitions — in preallocated parallel [int] arrays,
    so recording costs four stores and no allocation, and the tail can
    be attached to [Party_dropped] forensics and the CLI exit-3 report.

    Unlike tracing and histograms there is no global gate: the recorder
    is cheap enough to leave always-on, which is the point — the events
    preceding a failure were recorded {e before} anyone knew a failure
    was coming.  It lives beside the transport (one per [Transport.t]),
    records only integers (step names are interned), and never touches
    wire bytes or RNG, so golden transcripts are unaffected. *)

type kind = Send | Receive | Retransmit | Crc_reject | Step

let kind_to_int = function
  | Send -> 0
  | Receive -> 1
  | Retransmit -> 2
  | Crc_reject -> 3
  | Step -> 4

let kind_of_int = function
  | 0 -> Send
  | 1 -> Receive
  | 2 -> Retransmit
  | 3 -> Crc_reject
  | _ -> Step

let kind_name = function
  | Send -> "send"
  | Receive -> "recv"
  | Retransmit -> "retx"
  | Crc_reject -> "crc-reject"
  | Step -> "step"

type t = {
  parties : int;
  capacity : int;
  (* Parallel event fields, [parties * capacity] each, party-major. *)
  kinds : int array;
  steps : int array; (* index into [names] *)
  srcs : int array;
  dsts : int array;
  seqs : int array;
  infos : int array; (* kind-specific: bytes, attempt, backoff ticks *)
  pos : int array; (* next write index per party *)
  total : int array; (* lifetime events per party *)
  mutable names : string array; (* interned step names *)
  mutable nnames : int;
  mutable cur_step : int;
}

let default_capacity = 64

let create ~parties ?(capacity = default_capacity) () =
  let cells = parties * capacity in
  {
    parties;
    capacity;
    kinds = Array.make cells 0;
    steps = Array.make cells 0;
    srcs = Array.make cells 0;
    dsts = Array.make cells 0;
    seqs = Array.make cells 0;
    infos = Array.make cells 0;
    pos = Array.make parties 0;
    total = Array.make parties 0;
    names = Array.make 16 "";
    nnames = 1 (* slot 0 = "" : before the first step *);
    cur_step = 0;
  }

let capacity t = t.capacity
let recorded t ~party = t.total.(party)
let wrapped t ~party = t.total.(party) > t.capacity

(* Interning allocates only on the first sighting of a step name — a
   handful of times per protocol run, never per event. *)
let intern t name =
  let rec find i = if i >= t.nnames then -1 else if t.names.(i) = name then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then i
  else begin
    if t.nnames = Array.length t.names then begin
      let grown = Array.make (2 * t.nnames) "" in
      Array.blit t.names 0 grown 0 t.nnames;
      t.names <- grown
    end;
    t.names.(t.nnames) <- name;
    t.nnames <- t.nnames + 1;
    t.nnames - 1
  end

(** Record one event for [party].  Zero-allocation. *)
let record t ~party kind ~src ~dst ~seq ~info =
  let p = t.pos.(party) in
  let cell = (party * t.capacity) + p in
  t.kinds.(cell) <- kind_to_int kind;
  t.steps.(cell) <- t.cur_step;
  t.srcs.(cell) <- src;
  t.dsts.(cell) <- dst;
  t.seqs.(cell) <- seq;
  t.infos.(cell) <- info;
  t.pos.(party) <- (if p + 1 = t.capacity then 0 else p + 1);
  t.total.(party) <- t.total.(party) + 1

(** Mark a step transition: interns [name] (alloc OK, rare) and stamps
    a [Step] event into every party's ring so each tail shows where the
    protocol was. *)
let set_step t name =
  t.cur_step <- intern t name;
  for p = 0 to t.parties - 1 do
    record t ~party:p Step ~src:p ~dst:p ~seq:0 ~info:0
  done

type event = {
  ev_kind : kind;
  ev_step : string;
  ev_src : int;
  ev_dst : int;
  ev_seq : int;
  ev_info : int;
}

let event_at t ~party i =
  let cell = (party * t.capacity) + i in
  {
    ev_kind = kind_of_int t.kinds.(cell);
    ev_step = t.names.(t.steps.(cell));
    ev_src = t.srcs.(cell);
    ev_dst = t.dsts.(cell);
    ev_seq = t.seqs.(cell);
    ev_info = t.infos.(cell);
  }

(** The retained events for [party], oldest first.  Allocates (query
    path). *)
let tail t ~party =
  let n = Stdlib.min t.total.(party) t.capacity in
  let first =
    if t.total.(party) <= t.capacity then 0 else t.pos.(party)
    (* pos is the next overwrite target = oldest retained cell *)
  in
  List.init n (fun k -> event_at t ~party ((first + k) mod t.capacity))

let pp_event ppf e =
  match e.ev_kind with
  | Step -> Format.fprintf ppf "---- step %s ----" e.ev_step
  | Send ->
      Format.fprintf ppf "send  %d->%d seq=%d bytes=%d [%s]" e.ev_src e.ev_dst e.ev_seq
        e.ev_info e.ev_step
  | Receive ->
      Format.fprintf ppf "recv  %d->%d seq=%d bytes=%d [%s]" e.ev_src e.ev_dst e.ev_seq
        e.ev_info e.ev_step
  | Retransmit ->
      Format.fprintf ppf "retx  %d->%d seq=%d attempt=%d [%s]" e.ev_src e.ev_dst e.ev_seq
        e.ev_info e.ev_step
  | Crc_reject ->
      Format.fprintf ppf "crc!  %d->%d seq=%d bytes=%d [%s]" e.ev_src e.ev_dst e.ev_seq
        e.ev_info e.ev_step

(** The metrics registry: named integer probes the tracer samples around
    every span.

    A probe is a monotone counter reader — typically a closure over a
    {!Ppgr_exec.Meter} (the group multiplication meter, the
    {!Ppgr_group.Opmeter} exponentiation meter, a field's multiplication
    counter).  Probes are registered by the entry point that knows the
    concrete instances (the CLI knows which group module is live, the
    framework knows which field backs phase 1); library code never
    registers anything, it only gets its spans decorated.

    Reads must be cheap and side-effect free: the tracer samples every
    registered probe at span open and close and attaches the non-zero
    deltas, so a probe read happens O(spans) times per run.  Summing a
    padded-lane meter is a 65-slot walk — microseconds — which is far
    below the step granularity at which spans are opened. *)

type probe = { name : string; read : unit -> int }

let probes : probe list ref = ref []

(** Register (or replace) a probe.  Registration order is reading
    order, so tables and span attributes come out stable. *)
let register ~name read =
  let others = List.filter (fun p -> p.name <> name) !probes in
  probes := others @ [ { name; read } ]

let unregister ~name = probes := List.filter (fun p -> p.name <> name) !probes
let clear () = probes := []
let names () = List.map (fun p -> p.name) !probes

type sample = (string * int) list

let read_all () : sample = List.map (fun p -> (p.name, p.read ())) !probes

(** Pairwise deltas of two samples of the same registry state; probes
    appearing in only one sample are dropped (a probe was registered or
    removed between the samples — attribute nothing rather than
    garbage). *)
let deltas ~(before : sample) ~(after : sample) : sample =
  List.filter_map
    (fun (name, a) ->
      match List.assoc_opt name before with
      | Some b when a - b <> 0 -> Some (name, a - b)
      | _ -> None)
    after

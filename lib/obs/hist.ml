(** Mergeable log-linear latency/size histograms (HDR-style).

    A histogram buckets non-negative integer samples — microseconds,
    bytes, simulated ticks — into log-linear buckets: exact below
    [2^sub_bits], then [2^sub_bits] linear sub-buckets per power of two.
    Reporting the upper bound of a bucket therefore over-reads a sample
    by strictly less than [2^-sub_bits] of its value, which is the
    bounded-relative-error contract ({!quantile} inherits it: any
    reported quantile is within 1/32 ≈ 3.1% of the exact order
    statistic it names).

    {b Cost model.}  Recording is the telemetry hot path — one call per
    span close, per ring hop, per physical message — so a {!record} on
    a warm histogram allocates {e nothing}: the bucket lanes and the
    count/sum/min/max scalars are preallocated at {!create}, the bucket
    index is pure integer arithmetic, and the disabled path is one ref
    read and a branch (both pinned in [test_allocs]).

    {b Parallelism.}  Like {!Trace} span buffers and {!Ppgr_exec.Meter}
    slots, each domain records into its own bucket lane keyed off
    {!Ppgr_exec.Meter.slot}, so pool workers record without locks;
    queries sum the lanes and are taken on the main domain after pool
    joins.  Lane-wise merge is associative and commutative, so
    histograms from different runs (or shards) combine exactly. *)

(* Bucketing: values in [0, 2^sub_bits) are exact; a value with its
   most significant bit at position m >= sub_bits lands in one of
   2^sub_bits linear sub-buckets of width 2^(m - sub_bits).  Values at
   or above 2^max_value_bits clamp into the top bucket (11 days in
   microseconds, a terabyte in bytes — nothing the protocol produces). *)
let sub_bits = 5
let sub_count = 1 lsl sub_bits
let max_value_bits = 40
let max_recordable = (1 lsl max_value_bits) - 1
let nbuckets = (max_value_bits - sub_bits + 1) * sub_count
let slots = Ppgr_exec.Meter.max_slot + 1

(* Per-lane scalar block: count, sum, min, max, padded to a cache line
   so two domains never share one. *)
let scal_stride = 8

type t = {
  counts : int array; (* slots * nbuckets, lane-major *)
  scal : int array; (* slots * scal_stride: count, sum, min, max *)
}

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  for s = 0 to slots - 1 do
    let i = s * scal_stride in
    t.scal.(i) <- 0;
    t.scal.(i + 1) <- 0;
    t.scal.(i + 2) <- max_int;
    t.scal.(i + 3) <- -1
  done

let create () =
  let t =
    { counts = Array.make (slots * nbuckets) 0; scal = Array.make (slots * scal_stride) 0 }
  in
  reset t;
  t

(* Top-level recursion so the hot path never builds a closure (a local
   [let rec] heap-allocates on non-flambda builds — the same trap the
   bigint compare loops hit in PR 6). *)
let rec msb_from acc v = if v <= 1 then acc else msb_from (acc + 1) (v lsr 1)

let bucket_index v =
  if v < sub_count then v
  else begin
    let shift = msb_from 0 v - sub_bits in
    ((shift + 1) * sub_count) + ((v lsr shift) - sub_count)
  end

(** Inclusive value range covered by bucket [i]. *)
let bucket_bounds i =
  if i < sub_count then (i, i)
  else begin
    let shift = (i / sub_count) - 1 in
    let lo = (sub_count + (i mod sub_count)) lsl shift in
    (lo, lo + (1 lsl shift) - 1)
  end

(** Record one sample.  Negative samples clamp to 0, oversized ones to
    [max_recordable]; no-op (one ref read) when disabled. *)
let record t v =
  if !enabled_flag then begin
    let v = if v < 0 then 0 else if v > max_recordable then max_recordable else v in
    let slot = Ppgr_exec.Meter.slot () in
    let ci = (slot * nbuckets) + bucket_index v in
    t.counts.(ci) <- t.counts.(ci) + 1;
    let i = slot * scal_stride in
    t.scal.(i) <- t.scal.(i) + 1;
    t.scal.(i + 1) <- t.scal.(i + 1) + v;
    if v < t.scal.(i + 2) then t.scal.(i + 2) <- v;
    if v > t.scal.(i + 3) then t.scal.(i + 3) <- v
  end

(** Record a duration given in (fractional) microseconds. *)
let record_us t us = record t (int_of_float us)

(* ---- Queries: main domain, outside parallel regions. ---- *)

let count t =
  let acc = ref 0 in
  for s = 0 to slots - 1 do
    acc := !acc + t.scal.(s * scal_stride)
  done;
  !acc

let sum t =
  let acc = ref 0 in
  for s = 0 to slots - 1 do
    acc := !acc + t.scal.((s * scal_stride) + 1)
  done;
  !acc

let min_value t =
  let acc = ref max_int in
  for s = 0 to slots - 1 do
    let v = t.scal.((s * scal_stride) + 2) in
    if v < !acc then acc := v
  done;
  if !acc = max_int then 0 else !acc

let max_value t =
  let acc = ref (-1) in
  for s = 0 to slots - 1 do
    let v = t.scal.((s * scal_stride) + 3) in
    if v > !acc then acc := v
  done;
  if !acc < 0 then 0 else !acc

let bucket_count t i =
  let acc = ref 0 in
  for s = 0 to slots - 1 do
    acc := !acc + t.counts.((s * nbuckets) + i)
  done;
  !acc

(** [quantile t q] for [q] in [0, 1]: the upper bound of the bucket
    holding the sample of (1-indexed) rank [ceil (q * count)] — i.e. an
    estimate of the exact order statistic that never under-reads and
    over-reads by less than [2^-sub_bits] relatively.  0 on an empty
    histogram. *)
let quantile t q =
  let n = count t in
  if n = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int n))) in
    let acc = ref 0 in
    let i = ref 0 in
    let result = ref 0 in
    (try
       while !i < nbuckets do
         let c = bucket_count t !i in
         if c > 0 then begin
           acc := !acc + c;
           if !acc >= rank then begin
             result := snd (bucket_bounds !i);
             raise_notrace Exit
           end
         end;
         incr i
       done
     with Exit -> ());
    Stdlib.min !result (max_value t)
  end

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99

(** Non-empty buckets as [(lo, hi, count)], ascending — the exposition
    shape the exporters consume. *)
let buckets t =
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    let c = bucket_count t i in
    if c > 0 then
      let lo, hi = bucket_bounds i in
      out := (lo, hi, c) :: !out
  done;
  !out

(** Lane-wise accumulation of [src] into [into]: counts and sums add,
    min/max combine.  Associative and commutative, [src] unchanged. *)
let merge_into ~into src =
  for i = 0 to Array.length into.counts - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  for s = 0 to slots - 1 do
    let i = s * scal_stride in
    into.scal.(i) <- into.scal.(i) + src.scal.(i);
    into.scal.(i + 1) <- into.scal.(i + 1) + src.scal.(i + 1);
    if src.scal.(i + 2) < into.scal.(i + 2) then into.scal.(i + 2) <- src.scal.(i + 2);
    if src.scal.(i + 3) > into.scal.(i + 3) then into.scal.(i + 3) <- src.scal.(i + 3)
  done

(* ---- Registry: named histograms for the exposition formats.  Same
   discipline as {!Metrics}: registration order is reading order. ---- *)

let registry : (string * t) list ref = ref []

let register ~name t =
  let others = List.filter (fun (n, _) -> n <> name) !registry in
  registry := others @ [ (name, t) ]

let unregister ~name = registry := List.filter (fun (n, _) -> n <> name) !registry
let registered () = !registry
let reset_all () = List.iter (fun (_, t) -> reset t) !registry

(* ---- The well-known protocol histograms.  Created once; the
   instrumented layers record into these and the CLI / bench / daemon
   expose them.  Units are in the names. ---- *)

(** Duration of every closed span, in microseconds. *)
let span_us = create ()

(** Wall-clock latency of one ring hop (phase 2 step 8), microseconds. *)
let hop_us = create ()

(** Simulated backoff wait preceding each retransmission, in ticks. *)
let backoff_ticks = create ()

(** Size of every physical wire transmission (envelope included), bytes. *)
let msg_bytes = create ()

(** Wall-clock time of one complete shard-local ranking, microseconds. *)
let shard_us = create ()

(** Wall-clock time of the secure top-k merge stage, microseconds. *)
let merge_us = create ()

(** Sender-side window occupancy (messages in flight on a directed
    link) sampled at every windowed transmission admit. *)
let window_occupancy = create ()

let () =
  register ~name:"span_us" span_us;
  register ~name:"hop_us" hop_us;
  register ~name:"backoff_ticks" backoff_ticks;
  register ~name:"msg_bytes" msg_bytes;
  register ~name:"shard_us" shard_us;
  register ~name:"merge_us" merge_us;
  register ~name:"window_occupancy" window_occupancy

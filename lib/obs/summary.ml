(** The per-phase × per-party summary table.

    The protocol layers attribute all metered work to spans carrying a
    ["party"] attribute (one span per party per step, one per ring
    hop), and all wire traffic to spans carrying ["party"] plus
    ["bytes_out"]/["bytes_in"].  Those spans tile a run exactly — every
    group operation and every on-wire byte lands in exactly one of
    them — so the column sums of this table equal the global meters for
    the same run, which is the consistency check the CLI prints.

    Container spans (a phase root, the full-run span) also carry probe
    deltas, but are excluded here precisely because they re-count their
    children; they exist for the trace view, not the table. *)

(* Attribute keys that name a dimension rather than a measured
   quantity; everything else integer-valued is summed as a metric. *)
let dimension_keys =
  [
    "party"; "hop"; "member"; "owner"; "layer"; "comparators"; "n"; "l"; "k";
    "h"; "round"; "src"; "dst"; "bit"; "span_id"; "parent"; "step"; "jobs";
    "shard";
  ]

type row = {
  phase : string; (* span name, e.g. "phase2.ring" *)
  party : int;
  mutable wall_us : float;
  mutable metrics : (string * int) list; (* summed integer attrs *)
}

let int_attr name (sp : Trace.span) =
  match List.assoc_opt name sp.attrs with
  | Some (Trace.Int v) -> Some v
  | _ -> None

let metric_attrs (sp : Trace.span) =
  List.filter_map
    (fun (k, v) ->
      match v with
      | Trace.Int n when not (List.mem k dimension_keys) -> Some (k, n)
      | _ -> None)
    sp.attrs

let merge_metrics acc more =
  List.fold_left
    (fun acc (k, v) ->
      match List.assoc_opt k acc with
      | Some v0 -> List.map (fun (k', v') -> if k' = k then (k', v0 + v) else (k', v')) acc
      | None -> acc @ [ (k, v) ])
    acc more

(** Aggregate party-attributed spans into (phase, party) rows, in first
    appearance order. *)
let rows (spans : Trace.span list) : row list =
  let out = ref [] in
  List.iter
    (fun sp ->
      match int_attr "party" sp with
      | None -> ()
      | Some party -> (
          let key r = r.phase = sp.name && r.party = party in
          match List.find_opt key !out with
          | Some r ->
              r.wall_us <- r.wall_us +. sp.dur_us;
              r.metrics <- merge_metrics r.metrics (metric_attrs sp)
          | None ->
              out :=
                !out
                @ [
                    {
                      phase = sp.name;
                      party;
                      wall_us = sp.dur_us;
                      metrics = metric_attrs sp;
                    };
                  ]))
    spans;
  !out

(** Sum one metric over all rows (0 when absent everywhere). *)
let total rows name =
  List.fold_left
    (fun acc r -> acc + Option.value ~default:0 (List.assoc_opt name r.metrics))
    0 rows

let total_wall_us rows = List.fold_left (fun a r -> a +. r.wall_us) 0. rows

(** Metric column names in first-appearance order. *)
let columns rows =
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc (k, _) -> if List.mem k acc then acc else acc @ [ k ])
        acc r.metrics)
    [] rows

(** Render the table; one line per (phase, party), a TOTAL line last. *)
let to_string rows =
  let cols = columns rows in
  let b = Buffer.create 1024 in
  let phase_w =
    List.fold_left (fun w r -> max w (String.length r.phase)) 12 rows
  in
  Buffer.add_string b (Printf.sprintf "%-*s %6s" phase_w "phase" "party");
  List.iter (fun c -> Buffer.add_string b (Printf.sprintf " %12s" c)) cols;
  Buffer.add_string b (Printf.sprintf " %10s\n" "wall_ms");
  List.iter
    (fun r ->
      Buffer.add_string b (Printf.sprintf "%-*s %6d" phase_w r.phase r.party);
      List.iter
        (fun c ->
          Buffer.add_string b
            (Printf.sprintf " %12d"
               (Option.value ~default:0 (List.assoc_opt c r.metrics))))
        cols;
      Buffer.add_string b (Printf.sprintf " %10.2f\n" (r.wall_us /. 1e3)))
    rows;
  Buffer.add_string b (Printf.sprintf "%-*s %6s" phase_w "TOTAL" "");
  List.iter (fun c -> Buffer.add_string b (Printf.sprintf " %12d" (total rows c))) cols;
  Buffer.add_string b (Printf.sprintf " %10.2f\n" (total_wall_us rows /. 1e3));
  Buffer.contents b

(** Roll the table up per shard: party-attributed spans that also carry
    a ["shard"] attribute aggregate into one row per shard (row key
    ["shard-<i>"], party = shard index), preserving the tiling property
    within the sharded portion of a run.  Spans without a ["shard"]
    attribute (e.g. the merge committee) are skipped — sum them
    separately via {!rows}. *)
let by_shard (spans : Trace.span list) : row list =
  let out = ref [] in
  List.iter
    (fun sp ->
      match (int_attr "party" sp, int_attr "shard" sp) with
      | Some _, Some shard -> (
          let name = Printf.sprintf "shard-%d" shard in
          match List.find_opt (fun r -> r.party = shard && r.phase = name) !out with
          | Some r ->
              r.wall_us <- r.wall_us +. sp.dur_us;
              r.metrics <- merge_metrics r.metrics (metric_attrs sp)
          | None ->
              out :=
                !out
                @ [
                    {
                      phase = name;
                      party = shard;
                      wall_us = sp.dur_us;
                      metrics = metric_attrs sp;
                    };
                  ])
      | _ -> ())
    spans;
  List.sort (fun a b -> compare a.party b.party) !out

(** Collapse rows over parties: one row per phase (the bench JSON
    shape).  Returned in first-appearance order. *)
let by_phase rows_ =
  let out = ref [] in
  List.iter
    (fun r ->
      match List.find_opt (fun r' -> r'.phase = r.phase) !out with
      | Some r' ->
          r'.wall_us <- r'.wall_us +. r.wall_us;
          r'.metrics <- merge_metrics r'.metrics r.metrics
      | None ->
          out :=
            !out
            @ [ { phase = r.phase; party = -1; wall_us = r.wall_us; metrics = r.metrics } ])
    rows_;
  !out

(** Per-party flight recorder: a fixed-capacity ring of recent wire
    events, kept always-on so the tail preceding an abort is available
    in [Party_dropped] forensics and the CLI exit-3 report.

    Events are stored in preallocated parallel [int] arrays (step names
    interned), so {!record} allocates nothing; {!tail} is the
    allocating query path.  The recorder never touches wire bytes or
    RNG — golden transcripts are unaffected. *)

type kind = Send | Receive | Retransmit | Crc_reject | Step

val kind_name : kind -> string

type t

val default_capacity : int

(** [create ~parties ?capacity ()] preallocates [parties × capacity]
    event slots ([capacity] defaults to {!default_capacity}). *)
val create : parties:int -> ?capacity:int -> unit -> t

val capacity : t -> int

(** Lifetime events recorded for [party] (≥ retained count). *)
val recorded : t -> party:int -> int

(** Whether [party]'s ring has discarded old events. *)
val wrapped : t -> party:int -> bool

(** [record t ~party kind ~src ~dst ~seq ~info] appends one event,
    overwriting the oldest when full.  [info] is kind-specific: bytes
    for sends/receives/CRC rejects, the attempt number for
    retransmits.  Zero-allocation. *)
val record : t -> party:int -> kind -> src:int -> dst:int -> seq:int -> info:int -> unit

(** Mark a step transition: interns [name] (allocates, but only a few
    times per run) and stamps a [Step] marker into every party's ring. *)
val set_step : t -> string -> unit

type event = {
  ev_kind : kind;
  ev_step : string;  (** step in flight when the event was recorded *)
  ev_src : int;
  ev_dst : int;
  ev_seq : int;
  ev_info : int;
}

(** Retained events for [party], oldest first. *)
val tail : t -> party:int -> event list

val pp_event : Format.formatter -> event -> unit

(** Minor-heap allocation probes.

    [Gc.minor_words] counts words allocated on the minor heap since
    program start (promotions included); sampling it around a loop gives
    an exact per-iteration allocation figure, since minor-word accounting
    is deterministic — unlike time, it does not jitter.  The bigint
    in-place fast path pins "0 words per operation" in the test suite
    with exactly this probe, so an accidental allocation in a Montgomery
    kernel fails CI instead of quietly costing 30% throughput.

    Measure with care: the closure passed to {!measure} is called
    [iters] times in a plain loop, so the loop itself contributes nothing,
    but a closure that captures a [ref] it writes with a boxed value will
    show that allocation. *)

type sample = {
  words_per_iter : float;  (** minor words allocated per iteration *)
  total_words : float;  (** minor words across the whole loop *)
  iters : int;
}

(* A full major collection before sampling empties the minor heap so the
   loop cannot trigger promotion-related bookkeeping mid-measurement;
   the counter itself is unaffected either way. *)
let measure ?(warmup = 3) ~iters f =
  for _ = 1 to warmup do
    f ()
  done;
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  let dw = Gc.minor_words () -. w0 in
  { words_per_iter = dw /. float_of_int iters; total_words = dw; iters }

(** [is_alloc_free s] holds when the loop allocated nothing at all. *)
let is_alloc_free s = s.total_words = 0.0

let pp fmt s =
  Format.fprintf fmt "%.1f minor words/iter over %d iters" s.words_per_iter s.iters

(** The per-phase × per-party summary table.

    Aggregates party-attributed spans into (phase, party) rows whose
    metric columns provably tile the global meters — the consistency
    check the CLI prints.  Container spans (phase roots, the full-run
    span) are excluded because they re-count their children. *)

(** Attribute keys that name a dimension rather than a measured
    quantity; every other integer-valued attribute is summed as a
    metric column. *)
val dimension_keys : string list

type row = {
  phase : string;  (** span name, e.g. "phase2.ring" *)
  party : int;
  mutable wall_us : float;
  mutable metrics : (string * int) list;  (** summed integer attrs *)
}

(** Aggregate party-attributed spans into rows, in first-appearance
    order. *)
val rows : Trace.span list -> row list

(** Sum one metric over all rows (0 when absent everywhere). *)
val total : row list -> string -> int

val total_wall_us : row list -> float

(** Metric column names in first-appearance order. *)
val columns : row list -> string list

(** Render the table; one line per (phase, party), a TOTAL line last. *)
val to_string : row list -> string

(** Roll the table up per shard: party-attributed spans that also carry
    a ["shard"] attribute aggregate into one row per shard (row key
    ["shard-<i>"], party = shard index, ascending).  Spans without the
    attribute (e.g. the merge committee) are skipped. *)
val by_shard : Trace.span list -> row list

(** Collapse rows over parties: one row per phase (party = -1), in
    first-appearance order. *)
val by_phase : row list -> row list

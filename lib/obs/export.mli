(** Trace exporters: Chrome trace-event JSON (Perfetto-loadable) with
    optional cross-party flow arrows, a line-per-span JSONL event log,
    and a Prometheus text-format exposition of probes and histograms. *)

(** {1 Chrome trace-event format} *)

(** One causal arrow, drawn from the sender's open slice at
    [flow_send_us] on lane [flow_src_slot] to the receiver's at
    [flow_recv_us] on lane [flow_dst_slot].  Built from the transport's
    off-wire ledger; [flow_id] only needs to be unique within one
    trace. *)
type flow = {
  flow_name : string;
  flow_id : int;
  flow_src_slot : int;
  flow_dst_slot : int;
  flow_send_us : float;
  flow_recv_us : float;
  flow_args : (string * Trace.attr) list;
}

(** [chrome_string ?flows spans] renders a complete trace document:
    thread-name metadata, one [ph:"X"] event per span, then a
    [ph:"s"]/[ph:"f"] pair per flow.  With [flows] absent the output is
    byte-identical to the pre-flow format (the golden the exporter test
    pins). *)
val chrome_string : ?flows:flow list -> Trace.span list -> string

val write_chrome : ?flows:flow list -> string -> Trace.span list -> unit

(** {1 JSONL event log} *)

val jsonl_string : Trace.span list -> string
val write_jsonl : string -> Trace.span list -> unit

(** {1 Prometheus text exposition} *)

(** Snapshot every registered {!Metrics} probe as a counter and every
    registered {!Hist} as a histogram (cumulative [le] buckets), metric
    names prefixed [ppgr_] and sanitized to [[a-zA-Z0-9_]]. *)
val prometheus_string : unit -> string

val write_prometheus : string -> unit

(** Minor-heap allocation probes.

    Sampling [Gc.minor_words] around a loop gives an exact, jitter-free
    per-iteration allocation figure — the probe behind every
    "allocation-free" gate in the test suite. *)

type sample = {
  words_per_iter : float;  (** minor words allocated per iteration *)
  total_words : float;  (** minor words across the whole loop *)
  iters : int;
}

(** [measure ?warmup ~iters f] runs [f] [warmup] times (default 3),
    performs a full major collection, then samples minor words around
    [iters] further calls. *)
val measure : ?warmup:int -> iters:int -> (unit -> unit) -> sample

(** Whether the measured loop allocated nothing at all. *)
val is_alloc_free : sample -> bool

val pp : Format.formatter -> sample -> unit

(** Mergeable per-domain log-linear histograms with bounded relative
    error (HDR-style).

    Samples are non-negative integers (microseconds, bytes, ticks).
    Buckets are exact below [2^5] and split each higher power of two
    into 32 linear sub-buckets, so every reported bucket bound — and
    therefore every {!quantile} — over-reads the exact order statistic
    by at most 1/32 ≈ 3.1% and never under-reads it.

    Recording is zero-allocation: each domain writes its own
    preallocated bucket lane keyed off {!Ppgr_exec.Meter.slot} (no
    locks), and a globally-disabled {!record} is one ref read.  Queries
    sum the lanes and belong on the main domain after pool joins. *)

type t

(** {1 Global gate} *)

(** Histogram recording is off by default; {!record} is a no-op until
    [set_enabled true].  The gate is global (like [Trace.set_enabled])
    so instrumented hot loops pay one branch, not one per histogram. *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** {1 Lifecycle} *)

(** A fresh histogram: 65 lanes × 1152 buckets of [int], about 600 KB.
    Create once and reuse; {!reset} between measurement windows. *)
val create : unit -> t

val reset : t -> unit

(** {1 Recording — safe from any pool domain} *)

(** [record t v] adds one sample.  Negative values clamp to 0, values
    at or above [2^40] clamp to the top bucket.  Allocates nothing. *)
val record : t -> int -> unit

(** [record_us t us] records a duration given in fractional
    microseconds (truncated to an integer). *)
val record_us : t -> float -> unit

(** {1 Queries — main domain, outside parallel regions} *)

val count : t -> int
val sum : t -> int

(** 0 when empty. *)
val min_value : t -> int

(** 0 when empty. *)
val max_value : t -> int

(** [quantile t q] for [q] ∈ [0,1]: an estimate [est] of the exact
    rank-⌈q·count⌉ sample with [exact <= est] and
    [est - exact <= exact/32].  0 when empty. *)
val quantile : t -> float -> int

val p50 : t -> int
val p90 : t -> int
val p99 : t -> int

(** Non-empty buckets as [(lo, hi, count)] with inclusive bounds,
    ascending — the shape the exporters consume. *)
val buckets : t -> (int * int * int) list

(** {1 Merge} *)

(** [merge_into ~into src] accumulates [src] lane-wise into [into]
    ([src] unchanged).  Associative and commutative: merging histograms
    from different shards or runs loses nothing. *)
val merge_into : into:t -> t -> unit

(** {1 Registry} *)

(** Named histograms for the exposition formats ({!Export.prometheus_string},
    bench JSON).  Re-registering a name replaces the previous entry. *)
val register : name:string -> t -> unit

val unregister : name:string -> unit
val registered : unit -> (string * t) list

(** {!reset} every registered histogram — between CLI runs or bench
    windows. *)
val reset_all : unit -> unit

(** {1 Well-known protocol histograms}

    Created once at load and pre-registered; the instrumented layers
    record into these. *)

(** Duration of every closed span, microseconds. *)
val span_us : t

(** Wall-clock latency of one ring hop, microseconds. *)
val hop_us : t

(** Simulated backoff wait preceding each retransmission, ticks. *)
val backoff_ticks : t

(** Size of every physical wire transmission (envelope included),
    bytes. *)
val msg_bytes : t

(** Wall-clock time of one complete shard-local ranking, microseconds. *)
val shard_us : t

(** Wall-clock time of the secure top-k merge stage, microseconds. *)
val merge_us : t

(** Sender-side window occupancy (messages in flight on a directed
    link), sampled at every windowed transmission admit. *)
val window_occupancy : t

(** {1 Bucketing internals — exposed for the property tests} *)

val bucket_index : int -> int

(** Inclusive [(lo, hi)] covered by a bucket index. *)
val bucket_bounds : int -> int * int

val nbuckets : int
val max_recordable : int

(** A synchronous-lockstep simulator of [n]-party Shamir-based MPC.

    A {!shared} value is the vector of all parties' shares (index [i] =
    party [i+1]'s share); the engine executes each sub-protocol for
    every party and keeps the cost ledger the evaluation reads.  Degree
    reduction after multiplication follows Gennaro–Rabin–Rabin, so the
    engine requires [n >= 2t + 1]. *)

open Ppgr_bigint
open Ppgr_dotprod

type t

type shared = Bigint.t array

val create :
  ?threshold:[ `Max_colluders | `Fixed of int ] ->
  Ppgr_rng.Rng.t ->
  Zfield.t ->
  n:int ->
  t
(** [`Max_colluders] (default) picks the largest [t] with [n >= 2t+1].
    @raise Invalid_argument if the threshold is unusable. *)

val field : t -> Zfield.t
val parties : t -> int
val threshold : t -> int

(** {1 Cost ledger} *)

type costs = {
  c_mults : int; (* multiplication-protocol invocations *)
  c_rounds : int; (* communication rounds (batches count once) *)
  c_elements : int; (* field elements on the wire, all parties *)
  c_opens : int;
  c_randoms : int;
  c_field_mults : int; (* local field mults, whole simulation *)
}

val costs : t -> costs
val reset_costs : t -> unit

val fork : t -> label:string -> t
(** A child engine for one independent task of a parallel batch: same
    field, randomness split off the parent's stream under [label],
    ledger zeroed.  The field-multiplication meter is shared (it is
    per-domain-mergeable), so only the protocol counters fork. *)

val absorb : ?rounds:int -> t -> t -> unit
(** [absorb e child] folds a {!fork}ed child's counters back into [e].
    [?rounds] overrides the round contribution — pass the batch-wide
    maximum for children that ran in lockstep. *)

(** {1 Linear (communication-free) operations} *)

val of_public : t -> Bigint.t -> shared
val add : t -> shared -> shared -> shared
val sub : t -> shared -> shared -> shared
val add_public : t -> shared -> Bigint.t -> shared
val scale : t -> Bigint.t -> shared -> shared
val neg : t -> shared -> shared

(** {1 Interactive operations} *)

val input : t -> Bigint.t -> shared
(** A party shares a private input (1 round). *)

val input_batch : t -> Bigint.t list -> shared list
(** Many parties share private inputs in one simultaneous round —
    the sharded-ranking merge fan-in. *)

val open_ : t -> shared -> Bigint.t
(** Reveal a shared value to everyone (1 round). *)

val open_batch : t -> shared list -> Bigint.t list
(** Many openings in a single round. *)

val mul : t -> shared -> shared -> shared
(** One multiplication with GRR degree reduction (1 round). *)

val mul_batch : t -> (shared * shared) list -> shared list
(** Parallel multiplications sharing one round. *)

val random : t -> shared
(** Jointly generated uniform shared value (1 round). *)

val random_batch : t -> int -> shared array

val random_bit : t -> shared
(** One jointly random shared bit (Damgård et al. square-root trick). *)

val random_bit_batch : t -> int -> shared array
(** [k] random bits with batched rounds (3 rounds plus rare retries). *)

val random_bits : t -> int -> shared array * shared
(** [nbits] bits plus their weighted value [Σ 2^i b_i]. *)

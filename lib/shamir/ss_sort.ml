(** Secret-shared sorting (the Jónsson et al. baseline, [3]): Batcher's
    network with an oblivious compare-exchange at every comparator.

    A comparator on shares [x, y] computes [b = [x >= y]] with the
    {!Compare} primitive, then
    [lo = y + b (x - y) ... ] — concretely [hi' = x + y - lo] — using one
    extra multiplication, leaving the wires sorted ascending without
    anyone learning [b]. *)


module Trace = Ppgr_obs.Trace

type costs = Engine.costs

(** Sort an array of shared [l]-bit values ascending.  Comparators in
    the same network layer share communication rounds (their
    multiplications are batched). *)
let sort e prm (values : Engine.shared array) : Engine.shared array =
  let a = Array.copy values in
  let net = Sort_network.generate (Array.length a) in
  Trace.with_span
    ~attrs:
      [ ("n", Trace.Int (Array.length a)); ("layers", Trace.Int (List.length net)) ]
    "sssort.sort"
  @@ fun () ->
  List.iteri
    (fun li layer ->
      let layer_arr = Array.of_list layer in
      Trace.with_span
        ~attrs:
          [
            ("layer", Trace.Int li);
            ("comparators", Trace.Int (Array.length layer_arr));
          ]
        "sssort.layer"
      @@ fun () ->
      let before = if Trace.enabled () then Some (Engine.costs e) else None in
      (* Comparisons of one layer touch disjoint wire pairs, so they
         fan out over the domain pool: each comparator runs on a child
         engine forked under a stable (layer, slot) label, and the
         children's ledgers are absorbed back in slot order, keeping
         transcript and costs independent of the job count. *)
      let subs =
        Array.mapi
          (fun ci _ -> Engine.fork e ~label:(Printf.sprintf "sort-%d-%d" li ci))
          layer_arr
      in
      let bits =
        Ppgr_exec.Pool.parallel_init (Array.length layer_arr) (fun ci ->
            let i, j = layer_arr.(ci) in
            Compare.ge subs.(ci) prm a.(i) a.(j))
      in
      Array.iter (fun sub -> Engine.absorb e sub) subs;
      (* lo = x - b (x - y); hi = y + b (x - y). *)
      let diffs =
        Array.to_list
          (Array.mapi
             (fun ci (i, j) -> (bits.(ci), Engine.sub e a.(i) a.(j)))
             layer_arr)
      in
      let prods = Engine.mul_batch e diffs in
      List.iteri
        (fun ci p ->
          let i, j = layer_arr.(ci) in
          let lo = Engine.sub e a.(i) p in
          let hi = Engine.add e a.(j) p in
          a.(i) <- lo;
          a.(j) <- hi)
        prods;
      match before with
      | None -> ()
      | Some b ->
          let c = Engine.costs e in
          Trace.add_attr "ss_mults" (Trace.Int (c.Engine.c_mults - b.Engine.c_mults));
          Trace.add_attr "ss_rounds" (Trace.Int (c.Engine.c_rounds - b.Engine.c_rounds));
          Trace.add_attr "ss_elements"
            (Trace.Int (c.Engine.c_elements - b.Engine.c_elements)))
    net;
  a

(** The full baseline sorting protocol for ranking: every party inputs a
    private value; the sorted sequence is opened; each party reads off
    the rank of its own input.  Ranks are 1-based in non-increasing
    order (rank 1 = largest), ties broken arbitrarily, to match the
    framework's ranking convention. *)
let rank_via_sort e prm (inputs : Ppgr_bigint.Bigint.t array) : int array =
  let shared = Array.map (Engine.input e) inputs in
  let sorted = sort e prm shared in
  let opened = Array.map (Engine.open_ e) sorted in
  (* opened is ascending; rank of v = n - (index of v) counting from the
     end, consuming duplicates so equal gains get distinct slots. *)
  let n = Array.length inputs in
  let used = Array.make n false in
  Array.map
    (fun v ->
      let rec find i =
        if i < 0 then invalid_arg "rank_via_sort: value missing from sorted output"
        else if (not used.(i)) && Ppgr_bigint.Bigint.equal opened.(i) v then i
        else find (i - 1)
      in
      let idx = find (n - 1) in
      used.(idx) <- true;
      n - idx)
    inputs

(** Batcher odd-even merge sorting networks.

    Jónsson et al. [3] sort secret-shared values by pushing a comparison
    protocol through a data-independent sorting network that is "a
    variant of the merge sort algorithm" with O(n log^2 n) comparators —
    exactly Batcher's odd-even mergesort, which we generate here.

    A network is a list of {e layers}; comparators within a layer touch
    disjoint wires and can run in one communication round.  For arbitrary
    [n] we generate the power-of-two network and drop comparators that
    touch wires beyond [n-1]: conceptually those wires carry +infinity
    pads, which an ascending network never moves. *)

type comparator = int * int (* (i, j) with i < j: sort so wire i <= wire j *)
type layer = comparator list
type network = layer list

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

(* The classic iterative formulation of Batcher's odd-even mergesort for
   [m] a power of two, already organized into parallel layers. *)
let generate_pow2 m : network =
  let layers = ref [] in
  let p = ref 1 in
  while !p < m do
    let k = ref !p in
    while !k >= 1 do
      let layer = ref [] in
      let j = ref (!k mod !p) in
      while !j <= m - 1 - !k do
        for i = 0 to Stdlib.min (!k - 1) (m - !j - !k - 1) do
          if (!j + i) / (2 * !p) = (!j + i + !k) / (2 * !p) then
            layer := (!j + i, !j + i + !k) :: !layer
        done;
        j := !j + (2 * !k)
      done;
      if !layer <> [] then layers := List.rev !layer :: !layers;
      k := !k / 2
    done;
    p := 2 * !p
  done;
  List.rev !layers

let generate n : network =
  if n <= 1 then []
  else begin
    let m = next_pow2 n in
    generate_pow2 m
    |> List.filter_map (fun layer ->
           match List.filter (fun (_, j) -> j < n) layer with
           | [] -> None
           | l -> Some l)
  end

let comparator_count (net : network) =
  List.fold_left (fun acc layer -> acc + List.length layer) 0 net

let depth (net : network) = List.length net

(** Run the network on a plain array with an arbitrary order (used by
    tests, and to validate networks via the 0-1 principle). *)
let apply_plain (net : network) ~compare (a : 'a array) =
  let a = Array.copy a in
  let exchange (i, j) =
    if compare a.(i) a.(j) > 0 then begin
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    end
  in
  (* Comparators of a layer touch disjoint wires, so wide layers fan
     out over the domain pool; the cutoff keeps small layers (where a
     batch dispatch would dominate the comparisons) sequential. *)
  let parallel_cutoff = 64 in
  List.iter
    (fun layer ->
      let width = List.length layer in
      if width < parallel_cutoff then List.iter exchange layer
      else begin
        let arr = Array.of_list layer in
        Ppgr_exec.Pool.parallel_for width (fun c -> exchange arr.(c))
      end)
    net;
  a

(** A synchronous-lockstep simulator of [n]-party Shamir-based MPC.

    A {!shared} value is the vector of all parties' shares (index [i] =
    party [i+1]'s share); the engine executes each sub-protocol for every
    party and keeps the cost ledger the evaluation reads:

    - [mults]: invocations of the multiplication protocol (the unit of
      the paper's SS cost analysis);
    - [rounds]: communication rounds, counting parallel multiplications
      batched by {!mul_batch} as one round;
    - [field_elements_sent]: total field elements put on the wire;
    - the underlying field's own multiplication counter gives per-run
      local computation (divide by [n] for a per-party figure).

    Degree reduction after multiplication follows Gennaro–Rabin–Rabin:
    each party reshares its local product with a fresh degree-[t]
    polynomial and the new share is the Lagrange-weighted sum of the
    subshares, so the engine requires [n >= 2t + 1]. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_dotprod

type t = {
  f : Zfield.t;
  n : int;
  th : int; (* polynomial degree t; tolerates t colluders *)
  rng : Rng.t;
  lagrange_all : Bigint.t array; (* weights at 0 for points 1..n *)
  mutable mults : int;
  mutable rounds : int;
  mutable field_elements_sent : int;
  mutable opens : int;
  mutable randoms : int;
}

type shared = Bigint.t array (* length n *)

let create ?(threshold = `Max_colluders) rng f ~n =
  let th =
    match threshold with
    | `Max_colluders -> (n - 1) / 2 (* largest t with n >= 2t + 1 *)
    | `Fixed t -> t
  in
  if n < (2 * th) + 1 then invalid_arg "Engine.create: need n >= 2t + 1";
  {
    f;
    n;
    th;
    rng;
    lagrange_all = Shamir.lagrange_weights_at_zero f (Array.init n (fun i -> i + 1));
    mults = 0;
    rounds = 0;
    field_elements_sent = 0;
    opens = 0;
    randoms = 0;
  }

let field e = e.f
let parties e = e.n
let threshold e = e.th

type costs = {
  c_mults : int;
  c_rounds : int;
  c_elements : int;
  c_opens : int;
  c_randoms : int;
  c_field_mults : int;
}

let costs e =
  {
    c_mults = e.mults;
    c_rounds = e.rounds;
    c_elements = e.field_elements_sent;
    c_opens = e.opens;
    c_randoms = e.randoms;
    c_field_mults = Zfield.mult_count e.f;
  }

let reset_costs e =
  e.mults <- 0;
  e.rounds <- 0;
  e.field_elements_sent <- 0;
  e.opens <- 0;
  e.randoms <- 0;
  Zfield.reset_mult_count e.f

(** A child engine for one independent task of a parallel batch: its
    randomness is a split of the parent's stream under [label] (so the
    transcript does not depend on how tasks interleave) and its ledger
    starts at zero over the same field; {!absorb} folds the counters
    back in.  Round counting becomes the caller's business: a batch of
    forked comparators that would run in lockstep should be absorbed as
    the {e maximum} of the children's rounds, which is what the sorting
    layer does. *)
let fork e ~label =
  {
    e with
    rng = Rng.split e.rng ~label;
    mults = 0;
    rounds = 0;
    field_elements_sent = 0;
    opens = 0;
    randoms = 0;
  }

(** Fold a {!fork}ed child's additive counters into the parent.
    [rounds] defaults to the child's own count (sequential composition);
    pass the batch-wide maximum when the children ran in lockstep. *)
let absorb ?rounds e child =
  e.mults <- e.mults + child.mults;
  e.rounds <- e.rounds + Option.value rounds ~default:child.rounds;
  e.field_elements_sent <- e.field_elements_sent + child.field_elements_sent;
  e.opens <- e.opens + child.opens;
  e.randoms <- e.randoms + child.randoms

(** {1 Linear (communication-free) operations} *)

let of_public e v : shared =
  (* Shares of a public constant: the constant polynomial. *)
  Array.make e.n (Zfield.reduce e.f v)

let add e (a : shared) b : shared = Array.map2 (Zfield.add e.f) a b
let sub e (a : shared) b : shared = Array.map2 (Zfield.sub e.f) a b
let add_public e (a : shared) v = Array.map (fun s -> Zfield.add e.f s (Zfield.reduce e.f v)) a
let scale e k (a : shared) : shared = Array.map (Zfield.mul e.f k) a
let neg e (a : shared) : shared = Array.map (Zfield.neg e.f) a

(** {1 Interactive operations} *)

(** A party shares a private input with the others (1 round, n-1
    elements). *)
let input e v : shared =
  e.rounds <- e.rounds + 1;
  e.field_elements_sent <- e.field_elements_sent + (e.n - 1);
  Shamir.share e.rng e.f ~t:e.th ~n:e.n v

(** Many parties share their private inputs simultaneously (1 round,
    n-1 elements each) — the merge-stage fan-in, where every shard
    representative feeds its masked gain to the committee at once. *)
let input_batch e vs : shared list =
  e.rounds <- e.rounds + 1;
  List.map
    (fun v ->
      e.field_elements_sent <- e.field_elements_sent + (e.n - 1);
      Shamir.share e.rng e.f ~t:e.th ~n:e.n v)
    vs

(** Open a shared value to all parties (1 round; every party broadcasts
    its share). *)
let open_ e (a : shared) =
  e.rounds <- e.rounds + 1;
  e.opens <- e.opens + 1;
  e.field_elements_sent <- e.field_elements_sent + (e.n * (e.n - 1));
  Shamir.reconstruct e.f (Array.init e.n (fun i -> (i + 1, a.(i))))

(* GRR degree reduction for a batch of products computed in lockstep:
   counting the batch as a single communication round models parallel
   multiplication, which the sorting network exploits. *)
let mul_batch e (pairs : (shared * shared) list) : shared list =
  match pairs with
  | [] -> []
  | _ ->
      e.rounds <- e.rounds + 1;
      List.map
        (fun (a, b) ->
          e.mults <- e.mults + 1;
          e.field_elements_sent <- e.field_elements_sent + (e.n * (e.n - 1));
          (* Party i reshares its local product a_i * b_i. *)
          let subshares =
            Array.init e.n (fun i ->
                Shamir.share e.rng e.f ~t:e.th ~n:e.n
                  (Zfield.mul e.f a.(i) b.(i)))
          in
          (* New share of party j: sum_i lambda_i * subshare_{i->j}. *)
          Array.init e.n (fun j ->
              let acc = ref Bigint.zero in
              for i = 0 to e.n - 1 do
                acc :=
                  Zfield.add e.f !acc
                    (Zfield.mul e.f e.lagrange_all.(i) subshares.(i).(j))
              done;
              !acc))
        pairs

let mul e a b =
  match mul_batch e [ (a, b) ] with
  | [ r ] -> r
  | _ -> assert false

(** Jointly generated uniformly random shared value (every party
    contributes a sharing; 1 round). *)
let random e : shared =
  e.rounds <- e.rounds + 1;
  e.randoms <- e.randoms + 1;
  e.field_elements_sent <- e.field_elements_sent + (e.n * (e.n - 1));
  let contributions =
    Array.init e.n (fun _ -> Shamir.share e.rng e.f ~t:e.th ~n:e.n (Zfield.random e.rng e.f))
  in
  Array.init e.n (fun j ->
      let acc = ref Bigint.zero in
      for i = 0 to e.n - 1 do
        acc := Zfield.add e.f !acc contributions.(i).(j)
      done;
      !acc)

(** Open many shared values in a single round. *)
let open_batch e (vs : shared list) =
  match vs with
  | [] -> []
  | _ ->
      e.rounds <- e.rounds + 1;
      e.opens <- e.opens + List.length vs;
      e.field_elements_sent <-
        e.field_elements_sent + (List.length vs * e.n * (e.n - 1));
      List.map
        (fun (a : shared) ->
          Shamir.reconstruct e.f (Array.init e.n (fun i -> (i + 1, a.(i)))))
        vs

(** [k] jointly random shared values in a single round. *)
let random_batch e k : shared array =
  if k = 0 then [||]
  else begin
    e.rounds <- e.rounds + 1;
    e.randoms <- e.randoms + k;
    e.field_elements_sent <- e.field_elements_sent + (k * e.n * (e.n - 1));
    Array.init k (fun _ ->
        let contributions =
          Array.init e.n (fun _ ->
              Shamir.share e.rng e.f ~t:e.th ~n:e.n (Zfield.random e.rng e.f))
        in
        Array.init e.n (fun j ->
            let acc = ref Bigint.zero in
            for i = 0 to e.n - 1 do
              acc := Zfield.add e.f !acc contributions.(i).(j)
            done;
            !acc))
  end

(* Square root in the field with public input, for random-bit generation:
   returns the canonical root <= (p-1)/2. *)
let sqrt_public e v =
  match Ppgr_bigint.Prime.sqrt_mod (fun b -> Rng.bigint_below e.rng b) v ~p:(Zfield.modulus e.f) with
  | None -> None
  | Some r ->
      let r' = Zfield.neg e.f r in
      Some (if Bigint.compare r r' <= 0 then r else r')

(** Jointly generated random shared bit (Damgård et al.): sample [r],
    open [r^2], retry on 0, and output [(r / sqrt(r^2) + 1) / 2]. *)
let rec random_bit e : shared =
  let r = random e in
  let r2 = open_ e (mul e r r) in
  if Bigint.is_zero r2 then random_bit e
  else begin
    match sqrt_public e r2 with
    | None -> assert false (* r^2 is always a residue *)
    | Some root ->
        let vinv = Zfield.inv e.f root in
        let half = Zfield.inv e.f (Zfield.of_int e.f 2) in
        (* b = (r * vinv + 1) * half: linear in the shares of r. *)
        let scaled = scale e vinv r in
        let plus1 = add_public e scaled Bigint.one in
        scale e half plus1
  end

(** [k] random shared bits generated with batched rounds: one round of
    joint randomness, one of multiplications, one of openings (plus rare
    retries for candidates whose square opened to 0). *)
let random_bit_batch e k : shared array =
  let out = Array.make k (of_public e Bigint.zero) in
  let half = Zfield.inv e.f (Zfield.of_int e.f 2) in
  let rec fill needed_idx =
    (* Indexes in [out] still awaiting a bit. *)
    match needed_idx with
    | [] -> ()
    | _ ->
        let k' = List.length needed_idx in
        let rs = random_batch e k' in
        let squares = mul_batch e (Array.to_list (Array.map (fun r -> (r, r)) rs)) in
        let opened = open_batch e squares in
        let remaining = ref [] in
        List.iteri
          (fun i (idx, r2) ->
            if Bigint.is_zero r2 then remaining := idx :: !remaining
            else begin
              match sqrt_public e r2 with
              | None -> assert false (* squares are residues *)
              | Some root ->
                  let vinv = Zfield.inv e.f root in
                  out.(idx) <-
                    scale e half (add_public e (scale e vinv rs.(i)) Bigint.one)
            end)
          (List.combine needed_idx opened);
        fill (List.rev !remaining)
  in
  fill (List.init k (fun i -> i));
  out

(** [nbits] independent random shared bits, with their weighted value
    [Σ 2^i b_i] (free given the bits). *)
let random_bits e nbits : shared array * shared =
  let bits = random_bit_batch e nbits in
  let value = ref (of_public e Bigint.zero) in
  for i = nbits - 1 downto 0 do
    value := add e (scale e (Bigint.of_int 2) !value) bits.(i)
  done;
  (bits, !value)

(** Probabilistic secret-shared top-k selection, after Burkhart and
    Dimitropoulos [4] ("Fast privacy-preserving top-k queries using
    secret sharing", ICCCN 2010), the second baseline the paper's
    related-work section discusses.

    Instead of sorting, the parties binary-search the value domain: for
    a public threshold [T] they compute and open
    [count(T) = Σ_i [x_i >= T]] — one parallel comparison per input —
    and narrow [T] until exactly [k] values clear it, then open the
    [k] membership bits.  The cost is [O(n l)] comparisons (linear in
    [n]) against the sorting network's [O(n log^2 n)]: the probing
    approach pulls ahead once [log^2 n] outgrows [l], i.e. for large
    groups, which is the regime [4] targets.

    The trade-offs match the paper's characterization of [4]:

    - {e probabilistic termination}: if more than [k] inputs tie at the
      cut value there is no threshold selecting exactly [k]; {!top_k}
      exhausts the domain and reports [`Tie_at_cut] ("cannot be
      guaranteed to terminate with a correct result every time").
      {!top_k_det} closes that gap with a deterministic input-index
      tie-break, which the sharded-ranking merge stage requires to
      always terminate;
    - {e leakage}: the opened counts reveal how many inputs lie in each
      probed interval, strictly more than the ranking framework
      reveals.  This is a baseline, not a privacy-preserving
      replacement. *)

open Ppgr_bigint

type outcome =
  | Top_k of int list (* input indices whose values clear the cut *)
  | Tie_at_cut of int list * int
      (* more than k values >= cut: the indices found and the cut count *)

(* Shares of count(T) = Σ_i [x_i >= T] for a public threshold T. *)
let count_ge e prm (values : Engine.shared array) threshold =
  let shared_t = Engine.of_public e threshold in
  let bits =
    Array.map (fun v -> Compare.ge e prm v shared_t) values
  in
  Array.fold_left (Engine.add e) (Engine.of_public e Bigint.zero) bits

(* Open the membership bits for the final threshold. *)
let members e prm (values : Engine.shared array) threshold =
  let shared_t = Engine.of_public e threshold in
  let bits =
    Array.to_list (Array.map (fun v -> Compare.ge e prm v shared_t) values)
  in
  let opened = Engine.open_batch e bits in
  List.concat
    (List.mapi (fun i b -> if Bigint.equal b Bigint.one then [ i ] else []) opened)

(* The shared binary search: returns the converged cut [lo] with
   count(lo) >= k > count(lo + 1), plus the number of opened count
   probes.  Invariant: count(lo) >= k and count(hi) < k; lo = 0
   qualifies everything (count = n >= k), hi = 2^l exceeds every
   input (count = 0 < k). *)
let search_cut e prm ~k (values : Engine.shared array) =
  let open_count t = Engine.open_ e (count_ge e prm values t) in
  let probes = ref 0 in
  let rec search lo hi =
    (* lo < hi - 1 means the interval still contains candidate cuts. *)
    if Bigint.compare (Bigint.sub hi lo) Bigint.one <= 0 then (lo, !probes)
    else begin
      let mid = Bigint.shift_right (Bigint.add lo hi) 1 in
      incr probes;
      let c = Bigint.to_int_exn (open_count mid) in
      if c >= k then search mid hi else search lo mid
    end
  in
  search Bigint.zero (Bigint.nth_bit_weight prm.Compare.l)

let check_k ~n ~k = if k < 1 || k > n then invalid_arg "Topk.top_k: k out of range"

let top_k e prm ~k (values : Engine.shared array) : outcome =
  check_k ~n:(Array.length values) ~k;
  let lo, _probes = search_cut e prm ~k values in
  (* The inputs >= lo are the answer if they number exactly k;
     otherwise a tie straddles the cut. *)
  let idx = members e prm values lo in
  if List.length idx = k then Top_k idx else Tie_at_cut (idx, List.length idx)

(** Deterministic variant: always returns exactly [k] indices.  When
    more than [k] inputs reach the cut value, the winners are the
    inputs strictly above the cut plus the lowest-indexed inputs {e at}
    the cut — a public, deterministic tie-break, which is what lets the
    sharded-ranking merge stage terminate on any input.

    Leakage note (documented, accepted): resolving the tie opens the
    membership bits for both [cut] and [cut + 1], so every party learns
    {e which} inputs tie at the cut value (in addition to the probe
    counts {!top_k} already opens).  The caller should index inputs by
    a canonical public order — e.g. (shard, local index) — so the
    tie-break reveals nothing beyond that public ordering. *)
let top_k_det e prm ~k (values : Engine.shared array) : int list =
  check_k ~n:(Array.length values) ~k;
  let lo, _probes = search_cut e prm ~k values in
  let at_or_above = members e prm values lo in
  if List.length at_or_above = k then at_or_above
  else begin
    (* Strictly above the cut: values >= lo + 1.  By the search
       invariant there are fewer than k of them, and at_or_above holds
       more than k, so the cut ties fill the remainder. *)
    let above = members e prm values (Bigint.succ lo) in
    let at_cut = List.filter (fun i -> not (List.mem i above)) at_or_above in
    let need = k - List.length above in
    (* members returns ascending indices: take the first [need]. *)
    let rec take n = function
      | [] -> []
      | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
    in
    List.sort compare (above @ take need at_cut)
  end

(** Comparison-protocol invocations used (for the bench): [n] per probe,
    [l + 1] probes worst-case, plus the final membership opening — and
    one more opening when {!top_k_det} resolves a tie. *)
let comparisons_bound ~n ~l = n * (l + 2)

(** ElGamal over an abstract prime-order group (§IV-D of the paper).

    Two encryption modes share the ciphertext shape [(c, c') = (·, g^r)]:

    - {e standard}: [c = M y^r] for a group element [M]; decryptable.
    - {e modified} ("exponential"): [c = g^M y^r] for an integer [M].
      Additively homomorphic — [E(M1) ∘ E(M2) = E(M1 + M2)] — but only
      the zero test [g^M = 1] is feasible on decryption, which is all the
      ranking protocol needs.

    Both are IND-CPA secure under DDH.  The distributed operations
    (joint keys, partial decryption) implement the n-party decryption of
    §IV-D: a ciphertext under [y = Π y_i] is decrypted by successively
    stripping each [c'^{x_i}]. *)

open Ppgr_bigint
open Ppgr_rng

module type S = sig
  module G : Ppgr_group.Group_intf.GROUP

  type pubkey = G.element
  type seckey = Bigint.t

  type cipher = { c : G.element; c' : G.element }

  val keygen : Rng.t -> seckey * pubkey
  val pubkey_of : seckey -> pubkey

  val cipher_bytes : int
  (** Serialized ciphertext size (the [S_c] of the paper's §VI-B). *)

  val encrypt : Rng.t -> pubkey -> G.element -> cipher
  val decrypt : seckey -> cipher -> G.element

  (** {1 Fixed-base acceleration}

      Every encryption performs two full exponentiations with only two
      distinct bases ([g] and [y]).  The generator side is always served
      from the group's cached table; a {!keytable} adds the same
      treatment for [y], so a caller that encrypts many times under one
      key (the protocol encrypts [n*l] ciphertexts under the joint key)
      builds the table once and saves the squaring chain of every
      subsequent exponentiation. *)

  type keytable
  (** A public key together with its precomputed fixed-base table. *)

  val keytable : pubkey -> keytable
  (** Build the table; costs a few exponentiations' worth of group
      multiplications (ticked on the group op counter). *)

  val keytable_pubkey : keytable -> pubkey

  val encrypt_with : Rng.t -> keytable -> G.element -> cipher
  val rerandomize_with : Rng.t -> keytable -> cipher -> cipher

  (** {1 Modified (exponential, additively homomorphic) mode} *)

  val encrypt_exp : Rng.t -> pubkey -> Bigint.t -> cipher
  val encrypt_exp_int : Rng.t -> pubkey -> int -> cipher
  val encrypt_exp_with : Rng.t -> keytable -> Bigint.t -> cipher
  val encrypt_exp_int_with : Rng.t -> keytable -> int -> cipher

  val decrypt_exp_is_zero : seckey -> cipher -> bool
  (** True iff the plaintext integer is 0 (checks [g^M = 1]). *)

  val plaintext_power : seckey -> cipher -> G.element
  (** [g^M]; recovering [M] itself is the discrete log and is only used
      in tests on tiny groups. *)

  val add : cipher -> cipher -> cipher
  (** [E(a) -> E(b) -> E(a+b)]: the homomorphic composition [∘]. *)

  val sub : cipher -> cipher -> cipher
  val neg : cipher -> cipher

  val scale : cipher -> Bigint.t -> cipher
  (** [E(a) -> E(k a)] by component-wise exponentiation. *)

  val scale_int : cipher -> int -> cipher

  val add_clear : cipher -> Bigint.t -> cipher
  (** [E(a) -> E(a + k)] for a public [k] (no randomness added). *)

  val rerandomize : Rng.t -> pubkey -> cipher -> cipher
  (** Fresh randomness; plaintext unchanged. *)

  (** {1 Distributed decryption} *)

  val joint_pubkey : pubkey list -> pubkey
  (** [y = Π y_i]. *)

  val partial_decrypt : seckey -> cipher -> cipher
  (** Strip one key layer: [(c / c'^x, c')].  After all key holders have
      applied it, [c] holds the plaintext power [g^M]. *)

  val exponent_blind : Rng.t -> cipher -> cipher
  (** Raise both components to a shared random power: maps plaintext
      [m] to [r·m], preserving zero/non-zero — the step-(8) blinding. *)

  val partial_decrypt_blind : Rng.t -> seckey -> cipher -> cipher
  (** [partial_decrypt_blind rng x cph] is
      [exponent_blind rng (partial_decrypt x cph)] fused into two
      exponentiations instead of three: the blinded stripped component
      [(c / c'^x)^r = c^r * c'^(-x r)] is one simultaneous [pow2].  The
      unit of work of the step-8 decryption ring. *)

  val is_zero_plaintext_power : G.element -> bool
end

module Make (G : Ppgr_group.Group_intf.GROUP) : S with module G = G = struct
  module G = G

  type pubkey = G.element
  type seckey = Bigint.t
  type cipher = { c : G.element; c' : G.element }

  module Meter = Ppgr_group.Opmeter

  let keygen rng =
    Meter.tick ();
    let x = G.random_scalar rng in
    (x, G.pow_gen x)

  let pubkey_of x =
    Meter.tick ();
    G.pow_gen x
  let cipher_bytes = 2 * G.element_bytes

  type keytable = { kt_pub : pubkey; kt_tbl : G.powtable }

  let keytable y = { kt_pub = y; kt_tbl = G.powtable y }
  let keytable_pubkey kt = kt.kt_pub

  let encrypt rng y m =
    Meter.tick_n 2;
    let r = G.random_scalar rng in
    { c = G.mul m (G.pow y r); c' = G.pow_gen r }

  let encrypt_with rng kt m =
    Meter.tick_n 2;
    let r = G.random_scalar rng in
    { c = G.mul m (G.pow_table kt.kt_tbl r); c' = G.pow_gen r }

  let decrypt x { c; c' } =
    Meter.tick ();
    G.mul c (G.inv (G.pow c' x))

  let encrypt_exp rng y m =
    (* g^m is not ticked: the protocol only encrypts bits and other
       small circuit values, whose exponentiation cost is O(log l). *)
    Meter.tick_n 2;
    let r = G.random_scalar rng in
    { c = G.mul (G.pow_gen m) (G.pow y r); c' = G.pow_gen r }

  let encrypt_exp_with rng kt m =
    Meter.tick_n 2;
    let r = G.random_scalar rng in
    { c = G.mul (G.pow_gen m) (G.pow_table kt.kt_tbl r); c' = G.pow_gen r }

  let encrypt_exp_int rng y m = encrypt_exp rng y (Bigint.of_int m)
  let encrypt_exp_int_with rng kt m = encrypt_exp_with rng kt (Bigint.of_int m)
  let plaintext_power x cph = decrypt x cph
  let is_zero_plaintext_power e = G.is_identity e
  let decrypt_exp_is_zero x cph = is_zero_plaintext_power (decrypt x cph)
  let add a b = { c = G.mul a.c b.c; c' = G.mul a.c' b.c' }
  let neg a = { c = G.inv a.c; c' = G.inv a.c' }
  let sub a b = add a (neg b)

  let scale a k =
    (* Two exponentiations; count them as full-size once the scalar is
       within half the group size (small circuit constants stay in the
       λ-independent multiplication count, per the Opmeter contract). *)
    if 2 * Bigint.numbits k >= Bigint.numbits G.order then Meter.tick_n 2;
    { c = G.pow a.c k; c' = G.pow a.c' k }

  let scale_int a k = scale a (Bigint.of_int k)
  let add_clear a k = { a with c = G.mul a.c (G.pow_gen k) }

  let rerandomize rng y a =
    Meter.tick_n 2;
    let r = G.random_scalar rng in
    { c = G.mul a.c (G.pow y r); c' = G.mul a.c' (G.pow_gen r) }

  let rerandomize_with rng kt a =
    Meter.tick_n 2;
    let r = G.random_scalar rng in
    { c = G.mul a.c (G.pow_table kt.kt_tbl r); c' = G.mul a.c' (G.pow_gen r) }

  let joint_pubkey = function
    | [] -> invalid_arg "Elgamal.joint_pubkey: no keys"
    | y :: ys -> List.fold_left G.mul y ys

  let partial_decrypt x cph =
    Meter.tick ();
    { cph with c = G.mul cph.c (G.inv (G.pow cph.c' x)) }

  let exponent_blind rng cph =
    Meter.tick_n 2;
    let r = G.random_scalar rng in
    { c = G.pow cph.c r; c' = G.pow cph.c' r }

  let partial_decrypt_blind rng x cph =
    (* (c / c'^x)^r = c^r * c'^(q - x r): one pow2 plus the c'^r leg —
       two logical exponentiations where strip-then-blind costs three. *)
    Meter.tick_n 2;
    let r = G.random_scalar rng in
    let xr = Bigint.erem (Bigint.neg (Bigint.mul x r)) G.order in
    { c = G.pow2 cph.c r cph.c' xr; c' = G.pow cph.c' r }
end

(** Re-encryption mix-net for anonymity-preserving data collection —
    the Brickell–Shmatikov [13] idea the paper's unlinkable sorting
    leverages ("the key idea of the random shuffle"), packaged as a
    standalone protocol.

    A group of [n] members each submit one message (a group element) so
    that a data collector learns the multiset of messages but cannot
    link any message to its sender, tolerating up to [n-2] colluders in
    the HBC model:

    + each member encrypts its message under the joint key
      [y = Π y_i] (standard ElGamal);
    + the batch passes along the ring; each member re-randomizes every
      ciphertext and permutes the batch (a colluder coalition missing
      even one honest member cannot track positions through the honest
      shuffle, and re-randomization defeats ciphertext fingerprinting);
    + each member then strips its key layer from every ciphertext
      (partial decryption) in a second ring pass; the collector reads
      the plaintexts from the final batch. *)

open Ppgr_rng
module Trace = Ppgr_obs.Trace

module Make (G : Ppgr_group.Group_intf.GROUP) = struct
  module E = Elgamal.Make (G)

  type result = {
    plaintexts : G.element array; (* shuffled, unlinkable to senders *)
    rounds : int;
    ciphertexts_processed : int;
  }

  (** Run the full collection among [n] members holding [messages]
      (member [i]'s message at index [i]).  Each member gets its own RNG
      stream derived from [rng]. *)
  let collect rng (messages : G.element array) : result =
    let n = Array.length messages in
    if n < 2 then invalid_arg "Mixnet.collect: need at least 2 members";
    Trace.with_span
      ~attrs:[ ("group", Trace.Str G.name); ("n", Trace.Int n) ]
      "mixnet"
    @@ fun () ->
    let member_rngs =
      Array.init n (fun i -> Rng.split rng ~label:("mix-" ^ string_of_int i))
    in
    let member_span step i f =
      Trace.with_span ~attrs:[ ("party", Trace.Int i) ] ("mixnet." ^ step) f
    in
    let keys =
      Array.init n (fun i -> member_span "keygen" i (fun () -> E.keygen member_rngs.(i)))
    in
    let joint = E.joint_pubkey (Array.to_list (Array.map snd keys)) in
    (* One fixed-base table for the joint key serves every encryption
       and all n^2 ring re-randomizations. *)
    let joint_tbl = E.keytable joint in
    (* Submission. *)
    let batch =
      Array.mapi
        (fun i m ->
          member_span "submit" i (fun () -> E.encrypt_with member_rngs.(i) joint_tbl m))
        messages
    in
    (* Per-slot re-randomization labels, preformatted once for all n
       hops (byte-identical to the original per-hop Printf strings). *)
    let rr_labels = Array.init n (fun c -> "rr-" ^ string_of_int c) in
    (* Shuffle ring: re-randomize and permute.  Each ciphertext slot
       re-randomizes under its own child stream keyed by position, so
       the per-hop work fans out over the domain pool with a transcript
       independent of the job count; the shuffle then draws from the
       member's own stream, which splitting leaves undisturbed. *)
    for i = 0 to n - 1 do
      member_span "shuffle" i (fun () ->
          Trace.add_attr "hop" (Trace.Int i);
          let slot_rngs =
            Array.init n (fun c -> Rng.split member_rngs.(i) ~label:rr_labels.(c))
          in
          Ppgr_exec.Pool.parallel_for n (fun c ->
              batch.(c) <- E.rerandomize_with slot_rngs.(c) joint_tbl batch.(c));
          Rng.shuffle member_rngs.(i) batch)
    done;
    (* Decryption ring: strip each member's layer (deterministic, so the
       slots are embarrassingly parallel). *)
    for i = 0 to n - 1 do
      member_span "decrypt" i (fun () ->
          Trace.add_attr "hop" (Trace.Int i);
          Ppgr_exec.Pool.parallel_for n (fun c ->
              batch.(c) <- E.partial_decrypt (fst keys.(i)) batch.(c)))
    done;
    {
      plaintexts = Array.map (fun cph -> cph.E.c) batch;
      rounds = 2 * n;
      ciphertexts_processed = 2 * n * n;
    }

  (** Multiset equality of two element arrays (for tests): every element
      of [a] pairs off with an equal element of [b]. *)
  let same_multiset (a : G.element array) (b : G.element array) =
    Array.length a = Array.length b
    &&
    let used = Array.make (Array.length b) false in
    Array.for_all
      (fun x ->
        let rec find i =
          if i >= Array.length b then false
          else if (not used.(i)) && G.equal b.(i) x then begin
            used.(i) <- true;
            true
          end
          else find (i + 1)
        in
        find 0)
      a
end

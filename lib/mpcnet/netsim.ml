(** Discrete-event simulation of synchronous protocol execution on a
    {!Topology.t}.

    A protocol run is abstracted as a {!schedule}: a list of rounds, each
    carrying the messages every party sends in that round plus the
    longest per-party local computation preceding the sends.  Rounds are
    barriers (the next round starts once every message of the previous
    one is delivered), matching the lockstep protocols simulated here.

    Messages travel hop-by-hop along shortest paths (store-and-forward);
    each directed link serves transfers FIFO at its bandwidth, so heavy
    rounds queue up and congestion emerges naturally — the effect behind
    the SS framework's collapse in the paper's Fig. 3(b). *)

type message = {
  src : int; (* party index *)
  dst : int;
  bytes : int;
}

type round = {
  compute_s : float; (* critical-path local computation in this round *)
  messages : message list;
}

type schedule = round list

type placement = int array (* party index -> topology node *)

(** Spread parties over distinct nodes (round robin when there are more
    parties than nodes would be an error). *)
let place_parties topo ~parties : placement =
  if parties > Topology.nodes topo then
    invalid_arg "Netsim.place_parties: more parties than nodes";
  Array.init parties (fun i -> i * Topology.nodes topo / parties)

type edge_traffic = {
  node_from : int; (* topology node, not party index *)
  node_to : int;
  edge_bytes : int;
  edge_messages : int; (* transfers serialized on this directed link *)
}

type stats = {
  elapsed_s : float;
  bytes_sent : int;
  message_count : int;
  rounds : int;
  edges : edge_traffic list; (* directed links with traffic, lex order *)
  party_bytes_out : int array; (* end-to-end, by sending party *)
  party_bytes_in : int array; (* end-to-end, by receiving party *)
}

let run topo ~placement (sched : schedule) : stats =
  let next = Topology.routing topo in
  let n = Topology.nodes topo in
  let parties = Array.length placement in
  (* free_at.(u).(v): earliest time directed link u->v can start a new
     transmission. *)
  let free_at = Array.make_matrix n n 0. in
  let edge_bytes = Array.make_matrix n n 0 in
  let edge_msgs = Array.make_matrix n n 0 in
  let party_out = Array.make parties 0 in
  let party_in = Array.make parties 0 in
  let clock = ref 0. in
  let bytes_total = ref 0 in
  let msg_total = ref 0 in
  List.iter
    (fun round ->
      let start = !clock +. round.compute_s in
      let round_end = ref start in
      List.iter
        (fun m ->
          incr msg_total;
          bytes_total := !bytes_total + m.bytes;
          party_out.(m.src) <- party_out.(m.src) + m.bytes;
          party_in.(m.dst) <- party_in.(m.dst) + m.bytes;
          let src = placement.(m.src) and dst = placement.(m.dst) in
          if src <> dst then begin
            let hops = Topology.path ~next ~src ~dst in
            let t = ref start in
            let u = ref src in
            List.iter
              (fun v ->
                let link = Topology.link_between topo !u v in
                let begin_tx = Float.max !t free_at.(!u).(v) in
                let ser = float_of_int (8 * m.bytes) /. link.Topology.bandwidth_bps in
                free_at.(!u).(v) <- begin_tx +. ser;
                edge_bytes.(!u).(v) <- edge_bytes.(!u).(v) + m.bytes;
                edge_msgs.(!u).(v) <- edge_msgs.(!u).(v) + 1;
                t := begin_tx +. ser +. link.Topology.latency_s;
                u := v)
              hops;
            if !t > !round_end then round_end := !t
          end)
        round.messages;
      clock := !round_end)
    sched;
  let edges = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto 0 do
      if edge_msgs.(u).(v) > 0 then
        edges :=
          {
            node_from = u;
            node_to = v;
            edge_bytes = edge_bytes.(u).(v);
            edge_messages = edge_msgs.(u).(v);
          }
          :: !edges
    done
  done;
  {
    elapsed_s = !clock;
    bytes_sent = !bytes_total;
    message_count = !msg_total;
    rounds = List.length sched;
    edges = !edges;
    party_bytes_out = party_out;
    party_bytes_in = party_in;
  }

(** Coalesce consecutive rounds into groups of [window]: within a
    group the per-round barriers disappear (messages of later rounds
    may depart as soon as the group's summed critical-path computation
    is done), while the barrier at the group boundary remains.  Models
    the overlap a pipelined windowed transport extracts from a
    schedule: on latency-dominated links a depth-[w] group pays the
    propagation delay roughly once instead of [w] times.  [window <= 1]
    returns the schedule unchanged. *)
let pipeline ~window (sched : schedule) : schedule =
  if window <= 1 then sched
  else begin
    let rec group acc cur k = function
      | [] -> List.rev (if cur.messages = [] && cur.compute_s = 0. then acc else cur :: acc)
      | r :: rest ->
          let cur =
            {
              compute_s = cur.compute_s +. r.compute_s;
              messages = cur.messages @ r.messages;
            }
          in
          if k + 1 >= window then group (cur :: acc) { compute_s = 0.; messages = [] } 0 rest
          else group acc cur (k + 1) rest
    in
    group [] { compute_s = 0.; messages = [] } 0 sched
  end

(** {!run} over the [window]-pipelined schedule — the elapsed time a
    windowed transport would see on this topology. *)
let run_windowed topo ~placement ~window (sched : schedule) : stats =
  let st = run topo ~placement (pipeline ~window sched) in
  { st with rounds = List.length sched }

(** Rename party indices in a schedule — e.g. lift a shard-local
    schedule (parties 0..s-1) onto the global party space. *)
let remap f (sched : schedule) : schedule =
  List.map
    (fun r ->
      {
        r with
        messages = List.map (fun m -> { m with src = f m.src; dst = f m.dst }) r.messages;
      })
    sched

(** Round-index-wise parallel union: round [i] of the result carries
    every schedule's round-[i] messages and the slowest round-[i]
    computation.  Models independent shards running in lockstep
    side by side; shorter schedules simply stop contributing. *)
let overlay (scheds : schedule list) : schedule =
  let arrs = List.map Array.of_list scheds in
  let depth = List.fold_left (fun acc a -> max acc (Array.length a)) 0 arrs in
  List.init depth (fun i ->
      List.fold_left
        (fun acc a ->
          if i < Array.length a then
            {
              compute_s = Float.max acc.compute_s a.(i).compute_s;
              messages = acc.messages @ a.(i).messages;
            }
          else acc)
        { compute_s = 0.; messages = [] }
        arrs)

(** Convenience constructors for common communication patterns. *)

let broadcast ~from ~parties ~bytes =
  List.filter_map
    (fun dst -> if dst = from then None else Some { src = from; dst; bytes })
    (List.init parties (fun i -> i))

let all_broadcast ~parties ~bytes =
  List.concat_map (fun src -> broadcast ~from:src ~parties ~bytes)
    (List.init parties (fun i -> i))

let unicast ~src ~dst ~bytes = [ { src; dst; bytes } ]

(** Seeded deterministic fault schedules; see the interface for the
    determinism contract. *)

open Ppgr_rng

type spec = {
  f_drop : float;
  f_corrupt : float;
  f_duplicate : float;
  f_reorder : float;
  f_delay : float;
  f_max_delay : int;
  f_seed : string;
}

let clean =
  {
    f_drop = 0.;
    f_corrupt = 0.;
    f_duplicate = 0.;
    f_reorder = 0.;
    f_delay = 0.;
    f_max_delay = 1;
    f_seed = "clean";
  }

let spec_of_string s =
  let parse_rate k v =
    match float_of_string_opt v with
    | Some f when f >= 0. && f <= 1. -> f
    | _ -> invalid_arg (Printf.sprintf "Faultplan: bad rate %s=%s" k v)
  in
  List.fold_left
    (fun spec kv ->
      match String.index_opt kv '=' with
      | None -> invalid_arg (Printf.sprintf "Faultplan: expected key=value, got %S" kv)
      | Some i -> (
          let k = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          match k with
          | "drop" -> { spec with f_drop = parse_rate k v }
          | "corrupt" -> { spec with f_corrupt = parse_rate k v }
          | "dup" | "duplicate" -> { spec with f_duplicate = parse_rate k v }
          | "reorder" -> { spec with f_reorder = parse_rate k v }
          | "delay" -> { spec with f_delay = parse_rate k v }
          | "maxdelay" -> (
              match int_of_string_opt v with
              | Some d when d >= 1 -> { spec with f_max_delay = d }
              | _ -> invalid_arg (Printf.sprintf "Faultplan: bad maxdelay=%s" v))
          | "seed" -> { spec with f_seed = v }
          | _ -> invalid_arg (Printf.sprintf "Faultplan: unknown key %S" k)))
    clean
    (List.filter (fun s -> s <> "") (String.split_on_char ',' s))

let spec_to_string s =
  Printf.sprintf
    "drop=%g,corrupt=%g,dup=%g,reorder=%g,delay=%g,maxdelay=%d,seed=%s" s.f_drop
    s.f_corrupt s.f_duplicate s.f_reorder s.f_delay s.f_max_delay s.f_seed

type corruption = { cor_offset : int; cor_mask : int }

type fault =
  | Deliver
  | Drop
  | Corrupt of corruption
  | Duplicate
  | Reorder
  | Delay of int

type t = {
  sp : spec;
  root : Rng.t; (* only ever split from, never consumed *)
  attempts : (int * int, int ref) Hashtbl.t; (* per-link attempt counter *)
  tallies : int array; (* drop, corrupt, duplicate, reorder, delay *)
}

let create sp =
  {
    sp;
    root = Rng.create ~seed:("ppgr-faultplan:" ^ sp.f_seed);
    attempts = Hashtbl.create 31;
    tallies = Array.make 5 0;
  }

let spec t = t.sp

(* One decision = one split stream keyed by (link, attempt index);
   draws inside the stream happen in a fixed order so the schedule is a
   pure function of the spec. *)
let next t ~src ~dst =
  let k =
    match Hashtbl.find_opt t.attempts (src, dst) with
    | Some r ->
        incr r;
        !r - 1
    | None ->
        Hashtbl.add t.attempts (src, dst) (ref 1);
        0
  in
  let r =
    Rng.split t.root ~label:(Printf.sprintf "link-%d-%d-%d" src dst k)
  in
  let u = float_of_int (Rng.int_below r 1_000_000_000) /. 1e9 in
  let s = t.sp in
  let c1 = s.f_drop in
  let c2 = c1 +. s.f_corrupt in
  let c3 = c2 +. s.f_duplicate in
  let c4 = c3 +. s.f_reorder in
  let c5 = c4 +. s.f_delay in
  if u < c1 then begin
    t.tallies.(0) <- t.tallies.(0) + 1;
    Drop
  end
  else if u < c2 then begin
    t.tallies.(1) <- t.tallies.(1) + 1;
    Corrupt
      {
        cor_offset = Rng.int_below r 1_000_000;
        cor_mask = 1 + Rng.int_below r 255;
      }
  end
  else if u < c3 then begin
    t.tallies.(2) <- t.tallies.(2) + 1;
    Duplicate
  end
  else if u < c4 then begin
    t.tallies.(3) <- t.tallies.(3) + 1;
    Reorder
  end
  else if u < c5 then begin
    t.tallies.(4) <- t.tallies.(4) + 1;
    Delay (1 + Rng.int_below r s.f_max_delay)
  end
  else Deliver

let apply_corruption c msg =
  let len = Bytes.length msg in
  if len = 0 then msg
  else begin
    let out = Bytes.copy msg in
    let i = c.cor_offset mod len in
    Bytes.set out i
      (Char.chr (Char.code (Bytes.get out i) lxor (c.cor_mask land 0xFF)));
    out
  end

let kinds = [ "drop"; "corrupt"; "duplicate"; "reorder"; "delay" ]
let injected t = List.mapi (fun i k -> (k, t.tallies.(i))) kinds
let total_injected t = Array.fold_left ( + ) 0 t.tallies

(** Network topologies for the protocol simulation.

    The paper's NS2 setup (§VII): a random graph obtained by deleting
    edges from an 80-node complete graph until 320 edges remain, never
    disconnecting it; every link 2 Mbps duplex with 50 ms latency.
    {!random_connected} reproduces that construction. *)

open Ppgr_rng

type link = {
  bandwidth_bps : float;
  latency_s : float;
}

type t = {
  nodes : int;
  adj : (int * link) list array; (* adjacency: neighbor, link *)
}

let nodes t = t.nodes

let edge_count t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.adj / 2

let neighbors t v = t.adj.(v)

let default_link = { bandwidth_bps = 2_000_000.; latency_s = 0.050 }

(* Connectivity check by BFS over an explicit edge set. *)
let connected ~nodes edges =
  let adj = Array.make nodes [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  let seen = Array.make nodes false in
  let queue = Queue.create () in
  Queue.add 0 queue;
  seen.(0) <- true;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          incr count;
          Queue.add v queue
        end)
      adj.(u)
  done;
  !count = nodes

let of_edges ~nodes ?(link = default_link) edges =
  if not (connected ~nodes edges) then invalid_arg "Topology.of_edges: disconnected";
  let adj = Array.make nodes [] in
  List.iter
    (fun (u, v) ->
      if u = v || u < 0 || v >= nodes then invalid_arg "Topology.of_edges: bad edge";
      adj.(u) <- (v, link) :: adj.(u);
      adj.(v) <- (u, link) :: adj.(v))
    edges;
  { nodes; adj }

(** The paper's construction: start from the complete graph on [nodes]
    and delete random edges that do not disconnect it until [edges]
    remain. *)
let random_connected rng ~nodes ~edges ?(link = default_link) () =
  let all = ref [] in
  for u = 0 to nodes - 1 do
    for v = u + 1 to nodes - 1 do
      all := (u, v) :: !all
    done
  done;
  let current = ref !all in
  let count = ref (List.length !all) in
  if edges < nodes - 1 then invalid_arg "Topology.random_connected: too few edges";
  (* Repeatedly try deleting a random edge; skip ones whose removal
     disconnects the graph. *)
  let attempts = ref 0 in
  let max_attempts = 50 * List.length !all in
  while !count > edges && !attempts < max_attempts do
    incr attempts;
    let arr = Array.of_list !current in
    let idx = Rng.int_below rng (Array.length arr) in
    let e = arr.(idx) in
    let without = List.filter (fun e' -> e' <> e) !current in
    if connected ~nodes without then begin
      current := without;
      decr count
    end
  done;
  of_edges ~nodes ~link !current

(** Deterministic node layout of the sharded-ranking fan-in tree:
    coordinator at node 0, one aggregator per shard at nodes
    [1 .. shards], then the shards' leaves in shard order.  Returns
    [(root, aggregators, leaves)] with [leaves.(i)] the node ids of
    shard [i]'s participants. *)
let two_level_layout ~shard_sizes =
  let shards = Array.length shard_sizes in
  let aggregators = Array.init shards (fun i -> 1 + i) in
  let next_leaf = ref (1 + shards) in
  let leaves =
    Array.map
      (fun size ->
        let ids = Array.init size (fun j -> !next_leaf + j) in
        next_leaf := !next_leaf + size;
        ids)
      shard_sizes
  in
  (0, aggregators, leaves)

(** The sharded-ranking topology (Tueno et al.'s star network, one
    level deeper): a coordinator star over per-shard aggregators, each
    aggregator a star over its shard's participants.  Layout per
    {!two_level_layout}. *)
let two_level_tree ?(link = default_link) ~shard_sizes () =
  let root, aggregators, leaves = two_level_layout ~shard_sizes in
  let nodes = 1 + Array.length shard_sizes + Array.fold_left ( + ) 0 shard_sizes in
  let edges = ref [] in
  Array.iteri
    (fun i agg ->
      edges := (root, agg) :: !edges;
      Array.iter (fun leaf -> edges := (agg, leaf) :: !edges) leaves.(i))
    aggregators;
  of_edges ~nodes ~link !edges

(** All-pairs shortest paths by hop count (uniform links): returns
    [next.(u).(v)] = first hop from [u] towards [v]. *)
let routing t =
  let n = t.nodes in
  let next = Array.make_matrix n n (-1) in
  for src = 0 to n - 1 do
    (* BFS from src, recording parents. *)
    let parent = Array.make n (-1) in
    let seen = Array.make n false in
    let queue = Queue.create () in
    Queue.add src queue;
    seen.(src) <- true;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun (v, _) ->
          if not seen.(v) then begin
            seen.(v) <- true;
            parent.(v) <- u;
            Queue.add v queue
          end)
        t.adj.(u)
    done;
    for dst = 0 to n - 1 do
      if dst <> src && seen.(dst) then begin
        (* Walk back from dst to find the first hop out of src. *)
        let rec first_hop v = if parent.(v) = src then v else first_hop parent.(v) in
        next.(src).(dst) <- first_hop dst
      end
    done
  done;
  next

(** Path from [src] to [dst] as a list of nodes (excluding [src]). *)
let path ~next ~src ~dst =
  let rec go u acc =
    if u = dst then List.rev acc
    else begin
      let hop = next.(u).(dst) in
      if hop < 0 then invalid_arg "Topology.path: unreachable";
      go hop (hop :: acc)
    end
  in
  go src []

let link_between t u v =
  match List.assoc_opt v t.adj.(u) with
  | Some l -> l
  | None -> invalid_arg "Topology.link_between: not adjacent"

(** Network topologies for the protocol simulation.

    The paper's NS2 setup (§VII) is a random graph obtained by deleting
    edges from an 80-node complete graph until 320 edges remain, never
    disconnecting it; every link is 2 Mbps duplex with 50 ms latency.
    {!random_connected} reproduces that construction. *)

type link = {
  bandwidth_bps : float;
  latency_s : float;
}

type t

val nodes : t -> int
val edge_count : t -> int

val neighbors : t -> int -> (int * link) list
(** Adjacent nodes of a vertex with the connecting links. *)

val default_link : link
(** The paper's 2 Mbps / 50 ms link. *)

val of_edges : nodes:int -> ?link:link -> (int * int) list -> t
(** Build a topology from an undirected edge list (uniform links).
    @raise Invalid_argument if disconnected or an edge is out of range. *)

val random_connected :
  Ppgr_rng.Rng.t -> nodes:int -> edges:int -> ?link:link -> unit -> t
(** Delete random non-disconnecting edges from the complete graph until
    [edges] remain.  @raise Invalid_argument if [edges < nodes - 1]. *)

val two_level_layout : shard_sizes:int array -> int * int array * int array array
(** Node layout of the sharded fan-in tree: [(root, aggregators, leaves)]
    with the coordinator at node 0, aggregator of shard [i] at node
    [1 + i], and [leaves.(i)] the node ids of shard [i]'s participants
    (in shard order after the aggregators). *)

val two_level_tree : ?link:link -> shard_sizes:int array -> unit -> t
(** Two-level fan-in tree for committee-sharded ranking: a coordinator
    star over per-shard aggregators, each a star over its shard's
    participants.  Node ids follow {!two_level_layout}. *)

val routing : t -> int array array
(** All-pairs first-hop table by BFS: [next.(u).(v)] is the first hop
    from [u] towards [v] ([-1] on the diagonal). *)

val path : next:int array array -> src:int -> dst:int -> int list
(** Node sequence from [src] to [dst], excluding [src].
    @raise Invalid_argument if unreachable. *)

val link_between : t -> int -> int -> link
(** @raise Invalid_argument if the nodes are not adjacent. *)

(** Seeded, deterministic fault injection for the message layer.

    A fault plan turns a {!spec} (per-delivery fault rates plus a seed)
    into a schedule of per-link fault decisions.  Every delivery attempt
    on a directed link [(src, dst)] consumes exactly one decision, and
    each decision is drawn from its own {!Ppgr_rng.Rng.split} stream
    keyed by [(src, dst, attempt-index-on-that-link)] — never from a
    shared sequentially-consumed generator.  Two consequences:

    - the same seed yields a byte-identical fault schedule regardless of
      how deliveries on {e different} links interleave, and regardless
      of the domain-pool job count (parallelism lives inside party
      computation, not in the driver's message loop);
    - a retransmission is a fresh attempt with a fresh decision, so
      retries can themselves be dropped, corrupted or reordered — the
      recovery layer earns its retry budget honestly.

    The plan is pure policy: it never touches bytes itself.  The
    transport applies {!apply_corruption} when told to, holds reordered
    messages in its own limbo, and interprets [Delay] as backoff ticks
    in the simulated clock. *)

type spec = {
  f_drop : float; (* per-attempt probability the message vanishes *)
  f_corrupt : float; (* ... arrives with one byte XOR-damaged *)
  f_duplicate : float; (* ... arrives twice *)
  f_reorder : float; (* ... is held and arrives after a later message *)
  f_delay : float; (* ... arrives late by a bounded number of ticks *)
  f_max_delay : int; (* upper bound on the late-arrival ticks, >= 1 *)
  f_seed : string; (* fault-schedule seed, independent of protocol RNG *)
}

val clean : spec
(** All rates zero: every attempt delivers. *)

val spec_of_string : string -> spec
(** Parse ["drop=0.1,corrupt=0.02,dup=0.01,reorder=0.05,delay=0.1,\
    maxdelay=4,seed=chaos-1"].  Unmentioned fields keep their {!clean}
    defaults; keys may appear in any order.
    @raise Invalid_argument on an unknown key or unparsable value. *)

val spec_to_string : spec -> string
(** Canonical round-trippable rendering of a spec. *)

type corruption = {
  cor_offset : int; (* raw draw; site reduces it modulo message length *)
  cor_mask : int; (* XOR mask in [1, 255]: never the identity *)
}

type fault =
  | Deliver
  | Drop
  | Corrupt of corruption
  | Duplicate
  | Reorder
  | Delay of int (* ticks in [1, f_max_delay] *)

type t

val create : spec -> t
val spec : t -> spec

val next : t -> src:int -> dst:int -> fault
(** The fault decision for the next delivery attempt on the directed
    link [src -> dst].  Deterministic in (spec, src, dst, per-link
    attempt count). *)

val apply_corruption : corruption -> Bytes.t -> Bytes.t
(** A fresh copy of the message with one byte XOR-damaged (offset
    reduced modulo the length); the empty message is returned as is. *)

val kinds : string list
(** The fault kinds, in tally order:
    [["drop"; "corrupt"; "duplicate"; "reorder"; "delay"]]. *)

val injected : t -> (string * int) list
(** Tallies of non-[Deliver] decisions handed out so far, by kind
    (["drop"; "corrupt"; "duplicate"; "reorder"; "delay"]), in that
    fixed order. *)

val total_injected : t -> int

(** Discrete-event simulation of synchronous protocol execution on a
    {!Topology.t}.

    A protocol run is a {!schedule}: a list of barrier-synchronized
    rounds, each carrying the messages sent in that round plus the
    critical-path local computation preceding the sends.  Messages
    travel hop-by-hop along shortest paths (store-and-forward); each
    directed link serves transfers FIFO at its bandwidth, so heavy
    rounds queue up and congestion emerges naturally. *)

type message = {
  src : int; (* party index *)
  dst : int;
  bytes : int;
}

type round = {
  compute_s : float; (* critical-path local computation in this round *)
  messages : message list;
}

type schedule = round list

type placement = int array
(** Party index to topology node. *)

val place_parties : Topology.t -> parties:int -> placement
(** Spread parties over distinct nodes.
    @raise Invalid_argument if there are more parties than nodes. *)

type edge_traffic = {
  node_from : int; (* topology node, not party index *)
  node_to : int;
  edge_bytes : int;
  edge_messages : int; (* transfers serialized on this directed link *)
}

type stats = {
  elapsed_s : float;
  bytes_sent : int;
  message_count : int;
  rounds : int;
  edges : edge_traffic list;
      (* directed links that carried traffic, in (node_from, node_to)
         lexicographic order; store-and-forward hops count on every
         intermediate link they cross *)
  party_bytes_out : int array; (* end-to-end bytes, by sending party *)
  party_bytes_in : int array; (* end-to-end bytes, by receiving party *)
}

val run : Topology.t -> placement:placement -> schedule -> stats

val pipeline : window:int -> schedule -> schedule
(** Coalesce consecutive rounds into groups of [window], removing the
    per-round barriers inside a group (the group-boundary barrier
    remains) — the overlap a pipelined windowed transport extracts.
    [window <= 1] returns the schedule unchanged. *)

val run_windowed : Topology.t -> placement:placement -> window:int -> schedule -> stats
(** {!run} over the [window]-pipelined schedule; [rounds] still reports
    the original round count. *)

val remap : (int -> int) -> schedule -> schedule
(** Rename party indices (e.g. shard-local to global). *)

val overlay : schedule list -> schedule
(** Round-index-wise parallel union: per round, messages are
    concatenated and [compute_s] is the maximum — independent shards
    running side by side in lockstep. *)

(** {1 Common communication patterns} *)

val broadcast : from:int -> parties:int -> bytes:int -> message list
val all_broadcast : parties:int -> bytes:int -> message list
val unicast : src:int -> dst:int -> bytes:int -> message list

(** A prime field [Z_P] with convenience vector/matrix operations, used
    by the secure dot-product protocol and the Shamir substrate.

    Values are canonical integers in [[0, P)]; signed quantities map in
    and out through a centered representation ([rep > P/2] reads as
    [rep - P]).  Multiplication goes through a cached Montgomery context
    for speed; a field-multiplication counter backs the SS cost model. *)

open Ppgr_bigint

type t = {
  p : Bigint.t;
  ring : Bigint.Modring.ctx;
  half : Bigint.t; (* floor(P/2), the signed-decoding threshold *)
  mults : Ppgr_exec.Meter.t; (* per-domain lanes, merged on read *)
}

let create p =
  if Bigint.sign p <= 0 || Bigint.is_even p then
    invalid_arg "Zfield.create: modulus must be an odd prime";
  {
    p;
    ring = Bigint.Modring.ctx ~modulus:p;
    half = Bigint.shift_right p 1;
    mults = Ppgr_exec.Meter.create ();
  }

(* A fixed 192-bit prime (2^192 - 237): the default field, large enough
   for every masked gain in the evaluation settings. *)
let default_prime =
  Bigint.sub (Bigint.nth_bit_weight 192) (Bigint.of_int 237)

let default () = create default_prime

let modulus f = f.p
let mult_count f = Ppgr_exec.Meter.read f.mults
let reset_mult_count f = Ppgr_exec.Meter.reset f.mults

let reduce f v = Bigint.erem v f.p
let of_int f v = reduce f (Bigint.of_int v)
let add f a b = reduce f (Bigint.add a b)
let sub f a b = reduce f (Bigint.sub a b)
let neg f a = reduce f (Bigint.neg a)

let mul f a b =
  Ppgr_exec.Meter.incr f.mults;
  let open Bigint.Modring in
  leave f.ring (mul f.ring (enter f.ring a) (enter f.ring b))

let inv f a = Bigint.invmod a f.p

let div f a b = mul f a (inv f b)

let pow f a e =
  Bigint.powmod a e f.p

let equal (_ : t) a b = Bigint.equal a b

(* Signed decoding: representative in (-P/2, P/2]. *)
let to_signed f v =
  let v = reduce f v in
  if Bigint.compare v f.half > 0 then Bigint.sub v f.p else v

let of_signed f v = reduce f v

let random rng f = Ppgr_rng.Rng.bigint_below rng f.p

let random_nonzero rng f =
  Bigint.succ (Ppgr_rng.Rng.bigint_below rng (Bigint.pred f.p))

(** {1 Vectors} *)

let vec_add f a b = Array.map2 (add f) a b
let vec_sub f a b = Array.map2 (sub f) a b
let vec_scale f k a = Array.map (mul f k) a

let dot f a b =
  if Array.length a <> Array.length b then invalid_arg "Zfield.dot: dimension mismatch";
  let acc = ref Bigint.zero in
  for i = 0 to Array.length a - 1 do
    acc := add f !acc (mul f a.(i) b.(i))
  done;
  !acc

let random_vec rng f n = Array.init n (fun _ -> random rng f)

(** {1 Matrices} (dense, row-major [m.(row).(col)]) *)

type mat = Bigint.t array array

let mat_random rng f ~rows ~cols : mat =
  Array.init rows (fun _ -> random_vec rng f cols)

let mat_vec f (m : mat) v =
  Array.map (fun row -> dot f row v) m

let mat_mul f (a : mat) (b : mat) : mat =
  let rows = Array.length a and inner = Array.length b in
  if inner = 0 then invalid_arg "Zfield.mat_mul: empty";
  let cols = Array.length b.(0) in
  Array.init rows (fun i ->
      Array.init cols (fun j ->
          let acc = ref Bigint.zero in
          for k = 0 to inner - 1 do
            acc := add f !acc (mul f a.(i).(k) b.(k).(j))
          done;
          !acc))

let col_sums f (m : mat) =
  if Array.length m = 0 then [||]
  else begin
    let cols = Array.length m.(0) in
    Array.init cols (fun j ->
        let acc = ref Bigint.zero in
        for i = 0 to Array.length m - 1 do
          acc := add f !acc m.(i).(j)
        done;
        !acc)
  end

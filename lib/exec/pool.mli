(** A fixed-size work-stealing domain pool with deterministic parallel
    loops.

    The pool runs [jobs () - 1] worker domains plus the calling domain;
    with [jobs () = 1] (the default) every combinator degenerates to the
    exact sequential loop and no domain is ever spawned, so existing
    single-threaded behaviour is byte-for-byte unchanged.

    {b Determinism contract.}  Results are written into slot [i] of the
    output array by task [i] regardless of which domain ran it, and all
    cost meters are {!Meter}s (merged by summation), so any quantity
    derived from task results or meter deltas is independent of the
    schedule.  Randomized tasks must derive their stream from a stable
    index — [Rng.split rng ~label:(sprintf "...-%d" i)] — never from a
    shared sequentially-consumed generator; every parallel call site in
    this repository follows that rule, which is what makes [jobs=k]
    transcripts identical to [jobs=1] transcripts.

    {b Nesting.}  A task may itself invoke a [parallel_*] combinator:
    the nested batch is published on the submitting domain's deque,
    drained by the submitter, and stolen from by idle domains, so inner
    loops (per-pair comparison circuits, [phase2.count]) exploit domains
    left idle by an outer loop's tail.  The submitter's own drain alone
    completes every task nobody stole, so joins terminate by induction
    on the nesting depth — work stealing is a throughput refinement,
    never a liveness requirement.  Top-level combinator calls must still
    come from the main domain (or from pool tasks); never from
    independently spawned domains.

    Exceptions raised by tasks are re-raised in the submitter after the
    batch completes; when several tasks of one batch fail, the exception
    of the lowest-indexed failing task wins, matching what the
    sequential loop would have raised first. *)

val max_jobs : int

val jobs : unit -> int
(** Effective parallelism: the {!set_jobs} override if any, else the
    [PPGR_JOBS] environment variable ([0] or ["auto"] meaning
    [Domain.recommended_domain_count ()]), else [1]. *)

val set_jobs : int -> unit
(** Override the job count ([0] = all recommended cores); tears down a
    live pool so the next parallel call respawns at the new size. *)

val in_parallel_task : unit -> bool
(** True while the calling domain is executing a pool task (at any
    nesting depth). *)

val parallel_init : int -> (int -> 'a) -> 'a array
(** Like [Array.init], tasks distributed over the pool. *)

val parallel_map : ('a -> 'b) -> 'a array -> 'b array

val parallel_for : int -> (int -> unit) -> unit
(** [parallel_for n f] runs [f 0 .. f (n-1)]; the [f i] must touch
    disjoint state (distinct array cells, meters aside). *)

val shutdown : unit -> unit
(** Join all workers; the pool respawns lazily on the next use.
    Registered [at_exit] so a process never hangs on live domains. *)

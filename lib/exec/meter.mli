(** Mergeable operation counters for the multicore execution layer.

    Every cost meter in the repository (group multiplications, logical
    exponentiations, bigint multiplications, field multiplications) used
    to be a plain [int ref].  Under {!Pool} those counters are bumped
    from several domains at once; a meter therefore keeps one padded
    slot per domain and a read sums the slots, so parallel and
    sequential executions report {e identical} totals without any
    locking on the increment path.

    Slot discipline: the main domain (and any domain outside the pool)
    writes slot 0; pool worker [k] writes slot [k+1], assigned via
    {!set_slot} when the worker starts.  A domain only ever writes its
    own slot, so increments are race-free; reads are taken on the main
    domain after a parallel join (the pool's mutex provides the
    happens-before edge that makes worker increments visible). *)

type t

val create : unit -> t

val incr : t -> unit
(** Add 1 to the calling domain's slot. *)

val add : t -> int -> unit
(** Add [k] to the calling domain's slot. *)

val read : t -> int
(** Sum of all slots.  Exact when no parallel region is in flight
    (i.e. between {!Pool} batches, which is when all callers read). *)

val reset : t -> unit
(** Zero every slot.  Only call outside parallel regions. *)

type snapshot = int

val snapshot : t -> snapshot
(** A watermark for before/after accounting: [since m (snapshot m)]
    spans exactly the operations performed in between, including those
    executed on pool workers. *)

val since : t -> snapshot -> int

(**/**)

val max_slot : int
(** Highest worker slot index (bounds the pool size). *)

val set_slot : int -> unit
(** Bind the calling domain to a slot; used by {!Pool} workers only. *)

val slot : unit -> int
(** The calling domain's slot ([0] on the main domain).  Other
    per-domain lane structures (the tracer's span buffers) key off the
    same assignment so one slot discipline serves every layer. *)

let max_jobs = Meter.max_slot

(* ---- Job-count resolution ---- *)

let clamp j = if j < 1 then 1 else if j > max_jobs then max_jobs else j

let env_jobs =
  lazy
    (match Sys.getenv_opt "PPGR_JOBS" with
    | None | Some "" -> 1
    | Some ("0" | "auto") -> clamp (Domain.recommended_domain_count ())
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some 0 -> clamp (Domain.recommended_domain_count ())
        | Some k -> clamp k
        | None -> 1))

let override = ref None
let jobs () = match !override with Some j -> j | None -> Lazy.force env_jobs

(* ---- The pool ---- *)

type batch = { run : int -> unit; next : int Atomic.t; total : int }

type pool = {
  m : Mutex.t;
  work : Condition.t; (* workers: a new generation is ready *)
  idle : Condition.t; (* caller: all workers left the current batch *)
  mutable batch : batch option;
  mutable generation : int;
  mutable active : int;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let in_task_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_parallel_task () = Domain.DLS.get in_task_key

let drain b =
  let rec go () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.total then begin
      Domain.DLS.set in_task_key true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set in_task_key false)
        (fun () -> b.run i);
      go ()
    end
  in
  go ()

let worker p slot () =
  Meter.set_slot slot;
  let rec loop last_gen =
    Mutex.lock p.m;
    while (not p.stop) && p.generation = last_gen do
      Condition.wait p.work p.m
    done;
    if p.stop then Mutex.unlock p.m
    else begin
      let gen = p.generation in
      let b = match p.batch with Some b -> b | None -> assert false in
      Mutex.unlock p.m;
      drain b;
      Mutex.lock p.m;
      p.active <- p.active - 1;
      if p.active = 0 then Condition.broadcast p.idle;
      Mutex.unlock p.m;
      loop gen
    end
  in
  loop 0

let the_pool = ref None
let exit_hook = ref false

let teardown () =
  match !the_pool with
  | None -> ()
  | Some p ->
      Mutex.lock p.m;
      p.stop <- true;
      Condition.broadcast p.work;
      Mutex.unlock p.m;
      Array.iter Domain.join p.workers;
      the_pool := None

let shutdown = teardown

let get_pool () =
  let needed = jobs () - 1 in
  (match !the_pool with
  | Some p when Array.length p.workers <> needed -> teardown ()
  | _ -> ());
  match !the_pool with
  | Some p -> p
  | None ->
      let p =
        {
          m = Mutex.create ();
          work = Condition.create ();
          idle = Condition.create ();
          batch = None;
          generation = 0;
          active = 0;
          stop = false;
          workers = [||];
        }
      in
      p.workers <- Array.init needed (fun k -> Domain.spawn (worker p (k + 1)));
      the_pool := Some p;
      if not !exit_hook then begin
        exit_hook := true;
        at_exit teardown
      end;
      p

let set_jobs j =
  let j = if j <= 0 then clamp (Domain.recommended_domain_count ()) else clamp j in
  if jobs () <> j then teardown ();
  override := Some j

(* ---- Combinators ---- *)

let run_batch b =
  let p = get_pool () in
  Mutex.lock p.m;
  p.batch <- Some b;
  p.active <- Array.length p.workers;
  p.generation <- p.generation + 1;
  Condition.broadcast p.work;
  Mutex.unlock p.m;
  drain b;
  Mutex.lock p.m;
  while p.active > 0 do
    Condition.wait p.idle p.m
  done;
  p.batch <- None;
  Mutex.unlock p.m

(* First-failing-index exception, matching what the sequential loop
   would have raised first. *)
let reraise_min failure =
  match Atomic.get failure with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let record_failure failure i e bt =
  let rec go () =
    match Atomic.get failure with
    | Some (i0, _, _) when i0 <= i -> ()
    | cur -> if not (Atomic.compare_and_set failure cur (Some (i, e, bt))) then go ()
  in
  go ()

let parallel_init n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  if n = 0 then [||]
  else if jobs () = 1 || n = 1 || in_parallel_task () then begin
    (* Exact sequential path, ascending order. *)
    let r0 = f 0 in
    let out = Array.make n r0 in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let run i =
      try results.(i) <- Some (f i)
      with e -> record_failure failure i e (Printexc.get_raw_backtrace ())
    in
    run_batch { run; next = Atomic.make 0; total = n };
    reraise_min failure;
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map f a = parallel_init (Array.length a) (fun i -> f a.(i))

let parallel_for n f =
  if n < 0 then invalid_arg "Pool.parallel_for: negative length";
  if n = 0 then ()
  else if jobs () = 1 || n = 1 || in_parallel_task () then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let failure = Atomic.make None in
    let run i =
      try f i
      with e -> record_failure failure i e (Printexc.get_raw_backtrace ())
    in
    run_batch { run; next = Atomic.make 0; total = n };
    reraise_min failure
  end

let max_jobs = Meter.max_slot

(* ---- Job-count resolution ---- *)

let clamp j = if j < 1 then 1 else if j > max_jobs then max_jobs else j

let env_jobs =
  lazy
    (match Sys.getenv_opt "PPGR_JOBS" with
    | None | Some "" -> 1
    | Some ("0" | "auto") -> clamp (Domain.recommended_domain_count ())
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some 0 -> clamp (Domain.recommended_domain_count ())
        | Some k -> clamp k
        | None -> 1))

let override = ref None
let jobs () = match !override with Some j -> j | None -> Lazy.force env_jobs

(* ---- Jobs and the work-stealing pool ----

   A job is a batch of [total] independent tasks sharing one atomic
   index dispenser ([next]) and one atomic completion counter
   ([remaining]).  Any domain may claim indices from any live job, so a
   nested combinator call no longer degrades to sequential: the nesting
   task publishes its job on its domain's deque, drains it itself, and
   idle domains steal from it concurrently.

   Scheduling is cooperative under one pool mutex: tasks themselves are
   coarse (group exponentiations), so per-claim locking is noise.  The
   deques are tiny lists (live jobs = nesting depth x submitting
   domains), newest job first; an owner prefers its own newest job
   (deepest nesting, finishes its joiner soonest), a thief takes the
   oldest job of another deque (classic steal-from-the-top). *)

type job = {
  run : int -> unit;
  next : int Atomic.t;
  total : int;
  remaining : int Atomic.t;
  failure : (int * exn * Printexc.raw_backtrace) option Atomic.t;
}

type pool = {
  m : Mutex.t;
  cv : Condition.t;
      (* broadcast when a job is published, a job fully completes, or
         the pool stops; both workers and joining submitters wait on
         it. *)
  deques : job list array; (* slot-indexed; head = newest *)
  mutable njobs : int; (* jobs currently queued across all deques *)
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let in_task_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_parallel_task () = Domain.DLS.get in_task_key

(* Lowest-failing-index exception, matching what the sequential loop
   would have raised first. *)
let record_failure failure i e bt =
  let rec go () =
    match Atomic.get failure with
    | Some (i0, _, _) when i0 <= i -> ()
    | cur -> if not (Atomic.compare_and_set failure cur (Some (i, e, bt))) then go ()
  in
  go ()

let reraise_min failure =
  match Atomic.get failure with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* Run task [i] of [j].  Never raises: failures go into the job's
   failure cell.  The completion decrement is in the [finally] so a
   joiner can never wait on a task that already unwound. *)
let exec_task p j i =
  let prev = Domain.DLS.get in_task_key in
  Domain.DLS.set in_task_key true;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set in_task_key prev;
      if Atomic.fetch_and_add j.remaining (-1) = 1 then begin
        Mutex.lock p.m;
        Condition.broadcast p.cv;
        Mutex.unlock p.m
      end)
    (fun () ->
      try j.run i
      with e -> record_failure j.failure i e (Printexc.get_raw_backtrace ()))

(* Claim one task index with [p.m] held.  Scans the caller's own deque
   newest-first, then the other deques oldest-first; exhausted jobs
   (every index claimed) are pruned as they are met, so [p.njobs] only
   counts jobs that may still have unclaimed indices. *)
let claim_locked p ~slot =
  let nslots = Array.length p.deques in
  let claim j =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.total then Some (j, i) else None
  in
  let rec own = function
    | [] -> ([], None)
    | j :: rest -> (
        match claim j with
        | Some _ as hit -> (j :: rest, hit)
        | None ->
            p.njobs <- p.njobs - 1;
            own rest)
  in
  let deque, hit = own p.deques.(slot) in
  p.deques.(slot) <- deque;
  match hit with
  | Some _ -> hit
  | None ->
      let rec steal k =
        if k >= nslots then None
        else begin
          let s = (slot + k) mod nslots in
          (* Oldest job first: reverse, then prune/claim. *)
          let rec from_back = function
            | [] -> ([], None)
            | j :: rest -> (
                match claim j with
                | Some _ as hit -> (j :: rest, hit)
                | None ->
                    p.njobs <- p.njobs - 1;
                    from_back rest)
          in
          let rev, hit = from_back (List.rev p.deques.(s)) in
          p.deques.(s) <- List.rev rev;
          match hit with Some _ -> hit | None -> steal (k + 1)
        end
      in
      steal 1

let worker p slot () =
  Meter.set_slot slot;
  let rec loop () =
    Mutex.lock p.m;
    while (not p.stop) && p.njobs = 0 do
      Condition.wait p.cv p.m
    done;
    if p.stop then Mutex.unlock p.m
    else begin
      let c = claim_locked p ~slot in
      Mutex.unlock p.m;
      (match c with Some (j, i) -> exec_task p j i | None -> ());
      loop ()
    end
  in
  loop ()

let the_pool = ref None
let exit_hook = ref false

let teardown () =
  match !the_pool with
  | None -> ()
  | Some p ->
      Mutex.lock p.m;
      p.stop <- true;
      Condition.broadcast p.cv;
      Mutex.unlock p.m;
      Array.iter Domain.join p.workers;
      the_pool := None

let shutdown = teardown

let get_pool () =
  let needed = jobs () - 1 in
  (match !the_pool with
  | Some p when Array.length p.workers <> needed -> teardown ()
  | _ -> ());
  match !the_pool with
  | Some p -> p
  | None ->
      let p =
        {
          m = Mutex.create ();
          cv = Condition.create ();
          deques = Array.make (needed + 1) [];
          njobs = 0;
          stop = false;
          workers = [||];
        }
      in
      p.workers <- Array.init needed (fun k -> Domain.spawn (worker p (k + 1)));
      the_pool := Some p;
      if not !exit_hook then begin
        exit_hook := true;
        at_exit teardown
      end;
      p

let set_jobs j =
  let j = if j <= 0 then clamp (Domain.recommended_domain_count ()) else clamp j in
  if jobs () <> j then teardown ();
  override := Some j

(* ---- Submit / join ---- *)

(* Publish [j], drain it on the submitting domain, then join: while
   tasks of [j] still run elsewhere, help with any live job rather than
   blocking, and only sleep when there is nothing claimable anywhere.

   Deadlock-freedom: the submitter's own drain alone completes every
   index nobody else claimed, and a thief runs a claimed task to
   completion before claiming again, so by induction on the (finite)
   nesting depth every join terminates.  Helping while joining is a
   throughput refinement, not a liveness requirement. *)
let run_job p j =
  let slot = Meter.slot () in
  Mutex.lock p.m;
  p.deques.(slot) <- j :: p.deques.(slot);
  p.njobs <- p.njobs + 1;
  Condition.broadcast p.cv;
  Mutex.unlock p.m;
  let rec drain () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.total then begin
      exec_task p j i;
      drain ()
    end
  in
  drain ();
  (* Our indices are exhausted; prune [j] from our deque if a thief has
     not already done so. *)
  Mutex.lock p.m;
  if List.memq j p.deques.(slot) then begin
    p.deques.(slot) <- List.filter (fun j' -> j' != j) p.deques.(slot);
    p.njobs <- p.njobs - 1
  end;
  Mutex.unlock p.m;
  let rec join () =
    if Atomic.get j.remaining > 0 then begin
      Mutex.lock p.m;
      let c = claim_locked p ~slot in
      (match c with
      | None ->
          (* [claim_locked] returning [None] under the lock implies
             every deque is empty, so the wait predicate is
             consistent. *)
          while Atomic.get j.remaining > 0 && p.njobs = 0 do
            Condition.wait p.cv p.m
          done
      | Some _ -> ());
      Mutex.unlock p.m;
      (match c with Some (j', i) -> exec_task p j' i | None -> ());
      join ()
    end
  in
  join ()

let submit_pool () =
  if in_parallel_task () then
    (* A task implies a live pool; reuse it without the resize check,
       which only the main domain may perform. *)
    match !the_pool with Some p -> p | None -> assert false
  else get_pool ()

let run_tasks ~total ~run =
  let failure = Atomic.make None in
  let j =
    { run; next = Atomic.make 0; total; remaining = Atomic.make total; failure }
  in
  run_job (submit_pool ()) j;
  reraise_min failure

(* ---- Combinators ---- *)

let parallel_init n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  if n = 0 then [||]
  else if jobs () = 1 || n = 1 then begin
    (* Exact sequential path, ascending order. *)
    let r0 = f 0 in
    let out = Array.make n r0 in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end
  else begin
    let results = Array.make n None in
    run_tasks ~total:n ~run:(fun i -> results.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map f a = parallel_init (Array.length a) (fun i -> f a.(i))

let parallel_for n f =
  if n < 0 then invalid_arg "Pool.parallel_for: negative length";
  if n = 0 then ()
  else if jobs () = 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else run_tasks ~total:n ~run:f

(* One padded lane per domain: lane [slot] starts at [slot * stride] so
   that two domains never share a cache line (8 words = 64 bytes), which
   matters because group-op meters tick on every multiplication. *)

let max_slot = 64
let stride = 8

type t = int array

let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let set_slot s = Domain.DLS.set slot_key s
let slot () = Domain.DLS.get slot_key
let create () = Array.make ((max_slot + 1) * stride) 0

let add (t : t) k =
  let i = Domain.DLS.get slot_key * stride in
  t.(i) <- t.(i) + k

let incr t = add t 1

let read (t : t) =
  let acc = ref 0 in
  for s = 0 to max_slot do
    acc := !acc + t.(s * stride)
  done;
  !acc

let reset (t : t) = Array.fill t 0 (Array.length t) 0

type snapshot = int

let snapshot = read
let since t s = read t - s

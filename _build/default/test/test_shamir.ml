(* Shamir sharing, MPC engine, secure comparison and oblivious sorting
   tests. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_dotprod
open Ppgr_shamir

let rng = Rng.create ~seed:"test-shamir"
let f = Zfield.default ()
let bi = Bigint.of_int

let sharing_tests =
  [
    Alcotest.test_case "reconstruct from first t+1 shares" `Quick (fun () ->
        for _ = 1 to 20 do
          let s = Zfield.random rng f in
          let shares = Shamir.share rng f ~t:3 ~n:9 s in
          Alcotest.(check bool) "exact" true
            (Bigint.equal s (Shamir.reconstruct_first f ~t:3 shares))
        done);
    Alcotest.test_case "reconstruct from any t+1 subset" `Quick (fun () ->
        let s = bi 987654 in
        let shares = Shamir.share rng f ~t:2 ~n:7 s in
        List.iter
          (fun ids ->
            let pts = Array.of_list (List.map (fun i -> (i, shares.(i - 1))) ids) in
            Alcotest.(check bool)
              (String.concat "," (List.map string_of_int ids))
              true
              (Bigint.equal s (Shamir.reconstruct f pts)))
          [ [ 1; 2; 3 ]; [ 5; 6; 7 ]; [ 1; 4; 7 ]; [ 2; 3; 5 ] ]);
    Alcotest.test_case "t shares are not enough (wrong value)" `Quick (fun () ->
        (* With only t points the interpolation through them and 0 is
           underdetermined; reconstructing from t points gives a value
           unrelated to the secret almost surely. *)
        let s = bi 123456789 in
        let mismatches = ref 0 in
        for _ = 1 to 20 do
          let shares = Shamir.share rng f ~t:2 ~n:5 s in
          let guess = Shamir.reconstruct f [| (1, shares.(0)); (2, shares.(1)) |] in
          if not (Bigint.equal guess s) then incr mismatches
        done;
        Alcotest.(check bool) "mostly wrong" true (!mismatches >= 19));
    Alcotest.test_case "t shares leak nothing (uniform in pairing)" `Quick
      (fun () ->
        (* For any two secrets, a fixed single share value is equally
           consistent: verify share at point 1 for secret s1 can equal
           any field value by choice of polynomial — sampled check that
           share distributions overlap. *)
        let count_low = ref 0 in
        for _ = 1 to 200 do
          let shares = Shamir.share rng f ~t:1 ~n:3 (bi 0) in
          if Bigint.compare shares.(0) (Zfield.modulus f) < 0 then incr count_low
        done;
        Alcotest.(check int) "all valid field elements" 200 !count_low);
    Alcotest.test_case "invalid parameters rejected" `Quick (fun () ->
        Alcotest.check_raises "n < t+1"
          (Invalid_argument "Shamir.share: need n >= t + 1") (fun () ->
            ignore (Shamir.share rng f ~t:3 ~n:3 (bi 1))));
  ]

let make_engine ?(n = 7) () =
  let e = Engine.create rng f ~n in
  Engine.reset_costs e;
  e

let engine_tests =
  [
    Alcotest.test_case "linear ops are exact and free" `Quick (fun () ->
        let e = make_engine () in
        let a = Engine.input e (bi 120) and b = Engine.input e (bi 45) in
        let mults_before = (Engine.costs e).Engine.c_mults in
        let s = Engine.add e a b in
        let d = Engine.sub e a b in
        let k = Engine.scale e (bi 3) a in
        let p = Engine.add_public e a (bi 1000) in
        Alcotest.(check int) "no mult protocol" mults_before (Engine.costs e).Engine.c_mults;
        Alcotest.(check string) "add" "165" (Bigint.to_string (Engine.open_ e s));
        Alcotest.(check string) "sub" "75" (Bigint.to_string (Engine.open_ e d));
        Alcotest.(check string) "scale" "360" (Bigint.to_string (Engine.open_ e k));
        Alcotest.(check string) "add_public" "1120" (Bigint.to_string (Engine.open_ e p)));
    Alcotest.test_case "multiplication with degree reduction" `Quick (fun () ->
        let e = make_engine () in
        for _ = 1 to 10 do
          let x = Rng.int_below rng 100000 and y = Rng.int_below rng 100000 in
          let p = Engine.mul e (Engine.input e (bi x)) (Engine.input e (bi y)) in
          Alcotest.(check string) "product" (string_of_int (x * y))
            (Bigint.to_string (Engine.open_ e p))
        done);
    Alcotest.test_case "multiplication needs n >= 2t+1" `Quick (fun () ->
        Alcotest.check_raises "too few"
          (Invalid_argument "Engine.create: need n >= 2t + 1") (fun () ->
            ignore (Engine.create ~threshold:(`Fixed 2) rng f ~n:4)));
    Alcotest.test_case "chained multiplications stay correct" `Quick (fun () ->
        let e = make_engine () in
        let x = Engine.input e (bi 3) in
        (* x^8 via repeated squaring through the MPC. *)
        let x2 = Engine.mul e x x in
        let x4 = Engine.mul e x2 x2 in
        let x8 = Engine.mul e x4 x4 in
        Alcotest.(check string) "3^8" "6561" (Bigint.to_string (Engine.open_ e x8)));
    Alcotest.test_case "random bits are bits" `Quick (fun () ->
        let e = make_engine () in
        let bits = Engine.random_bit_batch e 40 in
        Array.iter
          (fun b ->
            let v = Engine.open_ e b in
            Alcotest.(check bool) "0 or 1" true
              (Bigint.is_zero v || Bigint.equal v Bigint.one))
          bits);
    Alcotest.test_case "random bits are balanced-ish" `Quick (fun () ->
        let e = make_engine () in
        let bits = Engine.random_bit_batch e 200 in
        let ones =
          Array.fold_left
            (fun acc b -> acc + Bigint.to_int_exn (Engine.open_ e b))
            0 bits
        in
        Alcotest.(check bool) "balanced" true (ones > 60 && ones < 140));
    Alcotest.test_case "random_bits weighted value matches bits" `Quick (fun () ->
        let e = make_engine () in
        let bits, value = Engine.random_bits e 16 in
        let v = Bigint.to_int_exn (Engine.open_ e value) in
        let from_bits = ref 0 in
        Array.iteri
          (fun i b ->
            if Bigint.equal (Engine.open_ e b) Bigint.one then
              from_bits := !from_bits lor (1 lsl i))
          bits;
        Alcotest.(check int) "consistent" !from_bits v);
    Alcotest.test_case "cost ledger counts" `Quick (fun () ->
        let e = make_engine () in
        Engine.reset_costs e;
        let a = Engine.input e (bi 5) and b = Engine.input e (bi 6) in
        ignore (Engine.mul e a b);
        let c = Engine.costs e in
        Alcotest.(check int) "one mult" 1 c.Engine.c_mults;
        Alcotest.(check bool) "rounds counted" true (c.Engine.c_rounds >= 3);
        Alcotest.(check bool) "traffic counted" true (c.Engine.c_elements > 0));
    Alcotest.test_case "mul_batch counts one round" `Quick (fun () ->
        let e = make_engine () in
        let a = Engine.input e (bi 2) and b = Engine.input e (bi 3) in
        let r0 = (Engine.costs e).Engine.c_rounds in
        let ps = Engine.mul_batch e [ (a, b); (a, a); (b, b) ] in
        Alcotest.(check int) "one round for 3 mults" (r0 + 1) (Engine.costs e).Engine.c_rounds;
        Alcotest.(check int) "three mults counted" 3
          ((Engine.costs e).Engine.c_mults);
        List.iter2
          (fun p expect ->
            Alcotest.(check string) "batch value" expect (Bigint.to_string (Engine.open_ e p)))
          ps [ "6"; "4"; "9" ]);
  ]

let compare_tests =
  let prm = Compare.default_params ~l:16 () in
  [
    Alcotest.test_case "ge on specific pairs" `Quick (fun () ->
        let e = make_engine () in
        List.iter
          (fun (x, y) ->
            let sx = Engine.input e (bi x) and sy = Engine.input e (bi y) in
            let g = Bigint.to_int_exn (Engine.open_ e (Compare.ge e prm sx sy)) in
            Alcotest.(check int) (Printf.sprintf "%d >= %d" x y)
              (if x >= y then 1 else 0)
              g)
          [ (0, 0); (1, 0); (0, 1); (65535, 65535); (65535, 0); (0, 65535);
            (32768, 32767); (32767, 32768); (12345, 12345) ]);
    Alcotest.test_case "lt / gt / le are consistent" `Quick (fun () ->
        let e = make_engine () in
        let x = 777 and y = 1234 in
        let sx = Engine.input e (bi x) and sy = Engine.input e (bi y) in
        let get p = Bigint.to_int_exn (Engine.open_ e p) in
        Alcotest.(check int) "lt" 1 (get (Compare.lt e prm sx sy));
        Alcotest.(check int) "gt" 0 (get (Compare.gt e prm sx sy));
        Alcotest.(check int) "le" 1 (get (Compare.le e prm sx sy)));
    Alcotest.test_case "eq" `Quick (fun () ->
        let e = make_engine () in
        let get p = Bigint.to_int_exn (Engine.open_ e p) in
        let s v = Engine.input e (bi v) in
        Alcotest.(check int) "equal" 1 (get (Compare.eq e prm (s 999) (s 999)));
        Alcotest.(check int) "unequal" 0 (get (Compare.eq e prm (s 999) (s 998))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:40 ~name:"ge matches integer comparison"
         QCheck2.Gen.(pair (int_range 0 65535) (int_range 0 65535))
         (fun (x, y) ->
           let e = make_engine ~n:5 () in
           let sx = Engine.input e (bi x) and sy = Engine.input e (bi y) in
           let g = Bigint.to_int_exn (Engine.open_ e (Compare.ge e prm sx sy)) in
           g = if x >= y then 1 else 0));
    Alcotest.test_case "field too small is rejected" `Quick (fun () ->
        let small_f = Zfield.create (Bigint.of_string "1000003") in
        let e = Engine.create rng small_f ~n:3 in
        Alcotest.check_raises "too small"
          (Invalid_argument "Compare: field too small for l + kappa") (fun () ->
            let x = Engine.input e (bi 1) in
            ignore (Compare.ge e prm x x)));
    Alcotest.test_case "nishide-ohta cost constant" `Quick (fun () ->
        Alcotest.(check int) "279l+5" ((279 * 32) + 5)
          (Compare.nishide_ohta_mults ~l:32));
  ]

let network_tests =
  [
    Alcotest.test_case "comparator counts are O(n log^2 n)" `Quick (fun () ->
        List.iter
          (fun n ->
            let net = Sort_network.generate n in
            let c = Sort_network.comparator_count net in
            (* Upper bound for Batcher: n log2(n) (log2(n)+1) / 4. *)
            let log2n = int_of_float (ceil (log (float_of_int n) /. log 2.)) in
            let bound = (n * log2n * (log2n + 1) / 4) + n in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d count=%d bound=%d" n c bound)
              true (c <= bound))
          [ 2; 4; 8; 16; 32; 64 ]);
    Alcotest.test_case "sorts all 0-1 inputs (0-1 principle, n<=10)" `Quick
      (fun () ->
        List.iter
          (fun n ->
            let net = Sort_network.generate n in
            for mask = 0 to (1 lsl n) - 1 do
              let a = Array.init n (fun i -> (mask lsr i) land 1) in
              let s = Sort_network.apply_plain net ~compare a in
              let expect = Array.copy a in
              Array.sort compare expect;
              if s <> expect then
                Alcotest.fail (Printf.sprintf "n=%d mask=%d not sorted" n mask)
            done)
          [ 1; 2; 3; 5; 7; 10 ]);
    Alcotest.test_case "layers touch disjoint wires" `Quick (fun () ->
        List.iter
          (fun n ->
            List.iter
              (fun layer ->
                let seen = Hashtbl.create 16 in
                List.iter
                  (fun (i, j) ->
                    Alcotest.(check bool) "disjoint" false
                      (Hashtbl.mem seen i || Hashtbl.mem seen j);
                    Hashtbl.add seen i ();
                    Hashtbl.add seen j ())
                  layer)
              (Sort_network.generate n))
          [ 8; 13; 21 ]);
    Alcotest.test_case "depth grows like log^2" `Quick (fun () ->
        let d16 = Sort_network.depth (Sort_network.generate 16) in
        Alcotest.(check int) "batcher depth 16" 10 d16);
  ]

let ss_sort_tests =
  [
    Alcotest.test_case "shared sort produces sorted opening" `Quick (fun () ->
        let e = make_engine ~n:5 () in
        let prm = Compare.default_params ~l:10 () in
        let vals = Array.init 6 (fun _ -> Rng.int_below rng 1000) in
        let shared = Array.map (fun v -> Engine.input e (bi v)) vals in
        let sorted = Ss_sort.sort e prm shared in
        let opened = Array.map (fun s -> Bigint.to_int_exn (Engine.open_ e s)) sorted in
        let expect = Array.copy vals in
        Array.sort compare expect;
        Alcotest.(check (array int)) "sorted" expect opened);
    Alcotest.test_case "rank_via_sort gives non-increasing ranking" `Quick
      (fun () ->
        let e = make_engine ~n:5 () in
        let prm = Compare.default_params ~l:10 () in
        let vals = [| 100; 900; 500; 500; 1 |] in
        let ranks = Ss_sort.rank_via_sort e prm (Array.map bi vals) in
        (* Largest value gets rank 1; ties get distinct adjacent slots. *)
        Alcotest.(check int) "max is rank 1" 1 ranks.(1);
        Alcotest.(check int) "min is rank 5" 5 ranks.(4);
        let sorted_ranks = Array.copy ranks in
        Array.sort compare sorted_ranks;
        Alcotest.(check (array int)) "ranks form 1..n" [| 1; 2; 3; 4; 5 |] sorted_ranks);
  ]

let () =
  Alcotest.run "shamir"
    [
      ("sharing", sharing_tests);
      ("engine", engine_tests);
      ("compare", compare_tests);
      ("sort-network", network_tests);
      ("ss-sort", ss_sort_tests);
    ]

(* Unit and property tests for the arbitrary-precision integer core. *)

open Ppgr_bigint

let bi = Bigint.of_int
let bs = Bigint.of_string

let check_bi msg expected actual =
  Alcotest.(check string) msg (Bigint.to_string expected) (Bigint.to_string actual)

(* qcheck generator for moderate native ints (so reference arithmetic in
   native ints cannot overflow when combined). *)
let small_int = QCheck2.Gen.int_range (-1_000_000_000) 1_000_000_000

(* Random big integers via decimal strings of random length. *)
let big_gen =
  QCheck2.Gen.(
    let* digits = int_range 1 60 in
    let* neg = bool in
    let* ds = list_repeat digits (int_range 0 9) in
    let s = String.concat "" (List.map string_of_int ds) in
    return (if neg then Bigint.neg (bs s) else bs s))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let unit_tests =
  [
    Alcotest.test_case "constants" `Quick (fun () ->
        check_bi "zero" (bi 0) Bigint.zero;
        check_bi "one" (bi 1) Bigint.one;
        check_bi "minus_one" (bi (-1)) Bigint.minus_one;
        Alcotest.(check bool) "zero is_zero" true (Bigint.is_zero Bigint.zero));
    Alcotest.test_case "string round trips" `Quick (fun () ->
        List.iter
          (fun s -> Alcotest.(check string) s s (Bigint.to_string (bs s)))
          [ "0"; "1"; "-1"; "123456789012345678901234567890"; "-999999999999999999999" ]);
    Alcotest.test_case "hex parsing" `Quick (fun () ->
        check_bi "0xff" (bi 255) (bs "0xff");
        check_bi "0xFF" (bi 255) (bs "0xFF");
        check_bi "-0x10" (bi (-16)) (bs "-0x10");
        Alcotest.(check string) "to hex" "ff" (Bigint.to_string_hex (bi 255)));
    Alcotest.test_case "known multiplication" `Quick (fun () ->
        check_bi "mul"
          (bs "121932631137021795226185032733744855963362292333223746380111126352690")
          (Bigint.mul
             (bs "123456789012345678901234567890123456789")
             (bs "987654321098765432109876543210")));
    Alcotest.test_case "karatsuba agrees with schoolbook" `Quick (fun () ->
        (* A multiplication big enough to cross the Karatsuba cutoff. *)
        let a = Bigint.pred (Bigint.nth_bit_weight 2000) in
        let b = Bigint.add (Bigint.nth_bit_weight 1999) (bi 12345) in
        let p = Bigint.mul a b in
        (* (2^2000 - 1) * b = b * 2^2000 - b *)
        let expect = Bigint.sub (Bigint.shift_left b 2000) b in
        check_bi "karatsuba" expect p);
    Alcotest.test_case "division by zero" `Quick (fun () ->
        Alcotest.check_raises "raise" Division_by_zero (fun () ->
            ignore (Bigint.div (bi 5) Bigint.zero)));
    Alcotest.test_case "divmod truncation sign convention" `Quick (fun () ->
        List.iter
          (fun (a, b) ->
            let q, r = Bigint.divmod (bi a) (bi b) in
            Alcotest.(check int) "q" (a / b) (Bigint.to_int_exn q);
            Alcotest.(check int) "r" (a mod b) (Bigint.to_int_exn r))
          [ (7, 3); (-7, 3); (7, -3); (-7, -3); (0, 5); (6, 3); (-6, 3) ]);
    Alcotest.test_case "euclidean remainder nonneg" `Quick (fun () ->
        List.iter
          (fun (a, b) ->
            let r = Bigint.erem (bi a) (bi b) in
            Alcotest.(check bool) "nonneg" true (Bigint.sign r >= 0);
            Alcotest.(check int) "consistent" ((a mod b + abs b) mod abs b)
              (Bigint.to_int_exn r))
          [ (7, 3); (-7, 3); (7, -3); (-7, -3); (-1, 5) ]);
    Alcotest.test_case "big division with known quotient" `Quick (fun () ->
        let b = bs "987654321098765432109876543210" in
        let a = Bigint.add (Bigint.mul b (bs "1234567890123456789")) (bi 42) in
        let q, r = Bigint.divmod a b in
        check_bi "q" (bs "1234567890123456789") q;
        check_bi "r" (bi 42) r);
    Alcotest.test_case "shift left/right" `Quick (fun () ->
        check_bi "shl" (bi 40) (Bigint.shift_left (bi 5) 3);
        check_bi "shr" (bi 5) (Bigint.shift_right (bi 40) 3);
        check_bi "shr floor" (bi 2) (Bigint.shift_right (bi 5) 1);
        check_bi "big" (Bigint.nth_bit_weight 100)
          (Bigint.shift_right (Bigint.nth_bit_weight 163) 63));
    Alcotest.test_case "numbits / testbit" `Quick (fun () ->
        Alcotest.(check int) "numbits 0" 0 (Bigint.numbits Bigint.zero);
        Alcotest.(check int) "numbits 1" 1 (Bigint.numbits Bigint.one);
        Alcotest.(check int) "numbits 255" 8 (Bigint.numbits (bi 255));
        Alcotest.(check int) "numbits 256" 9 (Bigint.numbits (bi 256));
        Alcotest.(check bool) "bit0 of 5" true (Bigint.testbit (bi 5) 0);
        Alcotest.(check bool) "bit1 of 5" false (Bigint.testbit (bi 5) 1);
        Alcotest.(check bool) "bit far" false (Bigint.testbit (bi 5) 1000));
    Alcotest.test_case "bits_of / of_bits round trip" `Quick (fun () ->
        let v = bs "123456789123456789" in
        let bits = Bigint.bits_of v ~width:64 in
        check_bi "roundtrip" v (Bigint.of_bits bits));
    Alcotest.test_case "bytes round trip" `Quick (fun () ->
        let v = bs "0xdeadbeefcafebabe0123456789" in
        check_bi "roundtrip" v (Bigint.of_bytes_be (Bigint.to_bytes_be v));
        let padded = Bigint.to_bytes_be_padded 32 v in
        Alcotest.(check int) "padded length" 32 (Bytes.length padded);
        check_bi "padded roundtrip" v (Bigint.of_bytes_be padded));
    Alcotest.test_case "gcd / egcd / invmod" `Quick (fun () ->
        check_bi "gcd" (bi 6) (Bigint.gcd (bi 54) (bi 24));
        let g, u, v = Bigint.egcd (bi 240) (bi 46) in
        check_bi "egcd g" (bi 2) g;
        check_bi "bezout" g (Bigint.add (Bigint.mul u (bi 240)) (Bigint.mul v (bi 46)));
        let m = bs "1000000007" in
        let inv = Bigint.invmod (bi 12345) m in
        check_bi "invmod" Bigint.one (Bigint.erem (Bigint.mul inv (bi 12345)) m);
        Alcotest.check_raises "non-invertible" Division_by_zero (fun () ->
            ignore (Bigint.invmod (bi 6) (bi 9))));
    Alcotest.test_case "powmod odd and even moduli" `Quick (fun () ->
        check_bi "3^5 mod 7" (bi 5) (Bigint.powmod (bi 3) (bi 5) (bi 7));
        check_bi "2^10 mod 100" (bi 24) (Bigint.powmod (bi 2) (bi 10) (bi 100));
        check_bi "x^0" Bigint.one (Bigint.powmod (bi 7) Bigint.zero (bi 13));
        check_bi "mod 1" Bigint.zero (Bigint.powmod (bi 7) (bi 3) Bigint.one));
    Alcotest.test_case "jacobi symbol" `Quick (fun () ->
        (* Known values for p = 7: QRs are 1,2,4. *)
        List.iter
          (fun (a, expect) ->
            Alcotest.(check int) (Printf.sprintf "(%d/7)" a) expect
              (Bigint.jacobi (bi a) (bi 7)))
          [ (1, 1); (2, 1); (3, -1); (4, 1); (5, -1); (6, -1); (7, 0) ]);
    Alcotest.test_case "pow small" `Quick (fun () ->
        check_bi "2^62" (Bigint.nth_bit_weight 62) (Bigint.pow (bi 2) 62);
        check_bi "x^0" Bigint.one (Bigint.pow (bi 999) 0));
  ]

let property_tests =
  [
    prop "add matches native" QCheck2.Gen.(pair small_int small_int) (fun (a, b) ->
        Bigint.to_int_exn (Bigint.add (bi a) (bi b)) = a + b);
    prop "mul matches native" QCheck2.Gen.(pair small_int small_int) (fun (a, b) ->
        Bigint.to_int_exn (Bigint.mul (bi a) (bi b)) = a * b);
    prop "sub matches native" QCheck2.Gen.(pair small_int small_int) (fun (a, b) ->
        Bigint.to_int_exn (Bigint.sub (bi a) (bi b)) = a - b);
    prop "compare matches native" QCheck2.Gen.(pair small_int small_int) (fun (a, b) ->
        Bigint.compare (bi a) (bi b) = compare a b);
    prop "divmod reconstructs" QCheck2.Gen.(pair big_gen big_gen) (fun (a, b) ->
        QCheck2.assume (not (Bigint.is_zero b));
        let q, r = Bigint.divmod a b in
        Bigint.equal a (Bigint.add (Bigint.mul q b) r)
        && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0);
    prop "string round trip" big_gen (fun a ->
        Bigint.equal a (bs (Bigint.to_string a)));
    prop "hex round trip (nonneg)" big_gen (fun a ->
        let a = Bigint.abs a in
        Bigint.equal a (bs ("0x" ^ Bigint.to_string_hex a)));
    prop "add commutative" QCheck2.Gen.(pair big_gen big_gen) (fun (a, b) ->
        Bigint.equal (Bigint.add a b) (Bigint.add b a));
    prop "mul distributes" QCheck2.Gen.(triple big_gen big_gen big_gen)
      (fun (a, b, c) ->
        Bigint.equal
          (Bigint.mul a (Bigint.add b c))
          (Bigint.add (Bigint.mul a b) (Bigint.mul a c)));
    prop "neg involutive" big_gen (fun a -> Bigint.equal a (Bigint.neg (Bigint.neg a)));
    prop "shift then unshift" QCheck2.Gen.(pair big_gen (int_range 0 200))
      (fun (a, s) ->
        let a = Bigint.abs a in
        Bigint.equal a (Bigint.shift_right (Bigint.shift_left a s) s));
    prop "powmod agrees with naive" QCheck2.Gen.(triple small_int (int_range 0 40) small_int)
      (fun (b, e, m) ->
        let m = abs m + 3 in
        let b = abs b in
        let naive = ref 1 in
        for _ = 1 to e do
          naive := !naive * b mod m
        done;
        Bigint.to_int_exn (Bigint.powmod (bi b) (bi e) (bi m)) = !naive);
    prop "invmod inverts (odd prime field)" small_int (fun a ->
        let p = bs "1000000007" in
        let a = Bigint.erem (bi a) p in
        QCheck2.assume (not (Bigint.is_zero a));
        Bigint.equal Bigint.one (Bigint.erem (Bigint.mul (Bigint.invmod a p) a) p));
  ]

let modring_tests =
  let m = bs "0xfffffffffffffffffffffffffffffffeffffffffffffffff" in
  let ctx = Bigint.Modring.ctx ~modulus:m in
  let enter = Bigint.Modring.enter ctx in
  let leave = Bigint.Modring.leave ctx in
  [
    Alcotest.test_case "enter/leave round trip" `Quick (fun () ->
        let v = bs "123456789012345678901234567890" in
        check_bi "roundtrip" v (leave (enter v)));
    Alcotest.test_case "mul agrees with erem-mul" `Quick (fun () ->
        let a = bs "98765432109876543210987654321" in
        let b = bs "11111111111111111111111111111" in
        check_bi "mul"
          (Bigint.erem (Bigint.mul a b) m)
          (leave (Bigint.Modring.mul ctx (enter a) (enter b))));
    Alcotest.test_case "add/sub/neg" `Quick (fun () ->
        let a = bs "999999999999999999999999" and b = bs "31337" in
        check_bi "add" (Bigint.erem (Bigint.add a b) m)
          (leave (Bigint.Modring.add ctx (enter a) (enter b)));
        check_bi "sub" (Bigint.erem (Bigint.sub b a) m)
          (leave (Bigint.Modring.sub ctx (enter b) (enter a)));
        check_bi "neg" (Bigint.erem (Bigint.neg a) m)
          (leave (Bigint.Modring.neg ctx (enter a))));
    Alcotest.test_case "pow agrees with powmod" `Quick (fun () ->
        let b = bs "1234567890" and e = bs "98765432123456789" in
        check_bi "pow" (Bigint.powmod b e m)
          (leave (Bigint.Modring.pow ctx (enter b) e)));
    Alcotest.test_case "inv" `Quick (fun () ->
        let a = bs "424242424242" in
        let ia = Bigint.Modring.inv ctx (enter a) in
        check_bi "inv" Bigint.one (leave (Bigint.Modring.mul ctx ia (enter a))));
    Alcotest.test_case "mul_small and double" `Quick (fun () ->
        let a = bs "5555555555555" in
        check_bi "x7" (Bigint.erem (Bigint.mul_int a 7) m)
          (leave (Bigint.Modring.mul_small ctx (enter a) 7));
        check_bi "double" (Bigint.erem (Bigint.mul_int a 2) m)
          (leave (Bigint.Modring.double ctx (enter a))));
    Alcotest.test_case "even modulus rejected" `Quick (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Modring.ctx: modulus must be odd and > 2") (fun () ->
            ignore (Bigint.Modring.ctx ~modulus:(bi 100))));
  ]


(* Division stress: structured magnitudes that exercise the Knuth-D
   correction paths (qhat refinement and the rare add-back), validated
   through the division identity a = q b + r with 0 <= r < |b|, which
   characterizes the quotient uniquely. *)
let division_stress_tests =
  let rng = ref 123456789 in
  let next_rand () =
    rng := ((!rng * 0x27BB2EE687B0B0FD) + 0x14057B7EF767814F) land max_int;
    !rng
  in
  let check_division a b =
    let q, r = Bigint.divmod a b in
    Alcotest.(check bool) "identity" true
      (Bigint.equal a (Bigint.add (Bigint.mul q b) r));
    Alcotest.(check bool) "remainder range" true
      (Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0);
    Alcotest.(check bool) "remainder sign" true
      (Bigint.is_zero r || Bigint.sign r = Bigint.sign a)
  in
  [
    Alcotest.test_case "divisors with saturated top limbs" `Quick (fun () ->
        (* b = 2^k - small: top limbs are all ones, the classic trigger
           for qhat overestimation. *)
        List.iter
          (fun (kbits, small, abits) ->
            let b = Bigint.sub (Bigint.nth_bit_weight kbits) (bi small) in
            let a =
              Bigint.add
                (Bigint.mul (Bigint.pred (Bigint.nth_bit_weight abits)) b)
                (Bigint.pred b)
            in
            check_division a b)
          [ (52, 1, 100); (78, 1, 200); (104, 3, 150); (260, 1, 300); (52, 2, 52) ]);
    Alcotest.test_case "dividend just below divisor multiples" `Quick (fun () ->
        for _ = 1 to 200 do
          let bbits = 30 + (next_rand () mod 200) in
          let abits = bbits + (next_rand () mod 200) in
          let b = Bigint.add (Bigint.nth_bit_weight bbits) (bi (next_rand () mod 1000)) in
          let q0 = Bigint.add (Bigint.nth_bit_weight (abits - bbits)) (bi (next_rand () mod 1000)) in
          (* a = q0 * b - 1: the remainder lands at b - 1, a boundary. *)
          let a = Bigint.pred (Bigint.mul q0 b) in
          check_division a b;
          check_division (Bigint.neg a) b;
          check_division a (Bigint.neg b)
        done);
    Alcotest.test_case "single-limb and two-limb divisors" `Quick (fun () ->
        for _ = 1 to 100 do
          let a = Bigint.of_string (Printf.sprintf "%d%07d%07d" (1 + (next_rand () mod 999)) (next_rand () mod 10000000) (next_rand () mod 10000000)) in
          let b1 = bi (1 + (next_rand () mod ((1 lsl 26) - 1))) in
          let b2 = Bigint.add (Bigint.shift_left b1 26) (bi (next_rand () mod (1 lsl 26))) in
          check_division a b1;
          check_division a b2
        done);
    Alcotest.test_case "power-of-two divisors match shifts" `Quick (fun () ->
        for k = 0 to 120 do
          let a = Bigint.pred (Bigint.nth_bit_weight 150) in
          let q = Bigint.div a (Bigint.nth_bit_weight k) in
          Alcotest.(check bool) (Printf.sprintf "k=%d" k) true
            (Bigint.equal q (Bigint.shift_right a k))
        done);
  ]

(* Alcotest.run can only be called once per binary; re-run the full set
   including the stress suite. *)

let () =
  Alcotest.run "bigint"
    [
      ("unit", unit_tests);
      ("properties", property_tests);
      ("modring", modring_tests);
      ("division-stress", division_stress_tests);
    ]

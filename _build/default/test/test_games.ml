(* Security-game harness tests (§III-C / §VI-A): functional
   indistinguishability of adversary views and distributional checks on
   the blinding permutations. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_grouprank

let rng = Rng.create ~seed:"test-games"
let bi = Bigint.of_int

module G = (val Dl_group.dl_test_64 () : Group_intf.GROUP)
module Gm = Games.Make (G)

let gain_hiding_tests =
  [
    Alcotest.test_case "same interval => invariant colluder view" `Quick
      (fun () ->
        (* Adversary gains 10 < 100 < 200; honest value moves within
           (10, 100). *)
        List.iter
          (fun (b0, b1) ->
            match
              Gm.gain_hiding rng ~l:10 ~honest:1 ~beta0:(bi b0) ~beta1:(bi b1)
                ~adversary_betas:(Array.map bi [| 10; 100; 200 |])
            with
            | `Invariant -> ()
            | `Distinguishable -> Alcotest.fail "colluders distinguished"
            | `Bad_interval -> Alcotest.fail "interval precondition broken")
          [ (11, 99); (50, 60); (11, 11); (99, 12) ]);
    Alcotest.test_case "honest at either end of the range" `Quick (fun () ->
        (* Below all adversary values and above all adversary values. *)
        List.iter
          (fun (b0, b1) ->
            match
              Gm.gain_hiding rng ~l:10 ~honest:0 ~beta0:(bi b0) ~beta1:(bi b1)
                ~adversary_betas:(Array.map bi [| 100; 200 |])
            with
            | `Invariant -> ()
            | `Distinguishable -> Alcotest.fail "distinguished"
            | `Bad_interval -> Alcotest.fail "bad interval")
          [ (1, 50); (300, 999) ]);
    Alcotest.test_case "different intervals are rejected by the game" `Quick
      (fun () ->
        match
          Gm.gain_hiding rng ~l:10 ~honest:1 ~beta0:(bi 50) ~beta1:(bi 150)
            ~adversary_betas:(Array.map bi [| 10; 100; 200 |])
        with
        | `Bad_interval -> ()
        | `Invariant | `Distinguishable ->
            Alcotest.fail "precondition should have been rejected");
    Alcotest.test_case "crossing an adversary value is visible (sanity)" `Quick
      (fun () ->
        (* This is the leak the definition permits: moving the honest
           value across an adversary's value changes that adversary's
           rank.  The invariance check must fail, demonstrating the
           harness actually measures something. *)
        let betas_a = Array.map bi [| 50; 100 |] in
        let betas_b = Array.map bi [| 150; 100 |] in
        Alcotest.(check bool) "distinguishable" false
          (Gm.colluder_ranks_invariant rng ~l:10 ~honest:[ 0 ] ~betas_a ~betas_b));
  ]

let unlinkability_tests =
  [
    Alcotest.test_case "swapping two honest parties is invisible" `Quick
      (fun () ->
        List.iter
          (fun (pi, pj) ->
            match
              Gm.identity_unlinkability rng ~l:10 ~pi ~pj ~beta0:(bi 77)
                ~beta1:(bi 33)
                ~others:[ bi 5; bi 500; bi 60 ]
            with
            | `Invariant -> ()
            | `Distinguishable -> Alcotest.fail "swap distinguished")
          [ (0, 1); (0, 4); (2, 3) ]);
    Alcotest.test_case "equal honest values also invariant" `Quick (fun () ->
        match
          Gm.identity_unlinkability rng ~l:10 ~pi:0 ~pj:1 ~beta0:(bi 42)
            ~beta1:(bi 42) ~others:[ bi 1; bi 99 ]
        with
        | `Invariant -> ()
        | `Distinguishable -> Alcotest.fail "distinguished");
  ]

let blinding_tests =
  [
    Alcotest.test_case "zero position is spread by the permutations" `Quick
      (fun () ->
        let l = 6 and n = 3 in
        let trials = 120 in
        let hist = Gm.zero_position_histogram rng ~l ~n ~trials in
        let total = Array.fold_left ( + ) 0 hist in
        Alcotest.(check int) "one zero per trial" trials total;
        (* With (n-1) l = 12 positions and 120 trials, expected count is
           10 per position; a fixed position would show 120. *)
        let maxc = Array.fold_left Stdlib.max 0 hist in
        Alcotest.(check bool) "no position dominates" true (maxc < 40);
        let nonzero = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 hist in
        Alcotest.(check bool) "most positions hit" true (nonzero >= 8));
  ]

let () =
  Alcotest.run "games"
    [
      ("gain-hiding", gain_hiding_tests);
      ("unlinkability", unlinkability_tests);
      ("blinding", blinding_tests);
    ]

(* End-to-end tests of the group ranking framework: the gain model,
   both secure phases, phase-3 vetting, and agreement between the HE
   frameworks and the SS baseline. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_grouprank

let rng = Rng.create ~seed:"test-grouprank"
let spec = Attrs.spec ~m:5 ~t:2 ~d1:6 ~d2:4

let attrs_tests =
  [
    Alcotest.test_case "gain formula (hand computed)" `Quick (fun () ->
        (* m=3, t=1: g = -w0 (v0-c0)^2 + w1 (v1-c1) + w2 (v2-c2). *)
        let s = Attrs.spec ~m:3 ~t:1 ~d1:6 ~d2:4 in
        let c = { Attrs.v0 = [| 10; 5; 0 |]; w = [| 2; 3; 1 |] } in
        let v = [| 12; 9; 7 |] in
        (* -2*4 + 3*4 + 1*7 = -8 + 12 + 7 = 11 *)
        Alcotest.(check int) "gain" 11 (Attrs.gain s c v));
    Alcotest.test_case "partial gain differs by the criterion constant" `Quick
      (fun () ->
        for _ = 1 to 30 do
          let c = Attrs.random_criterion rng spec in
          let offset = Attrs.gain_offset spec c in
          let v = Attrs.random_info rng spec in
          Alcotest.(check int) "g = p - offset"
            (Attrs.gain spec c v)
            (Attrs.partial_gain spec c v - offset)
        done);
    Alcotest.test_case "partial gain respects the bit bound" `Quick (fun () ->
        let bound = Attrs.partial_gain_bits spec in
        for _ = 1 to 200 do
          let c = Attrs.random_criterion rng spec in
          let v = Attrs.random_info rng spec in
          let p = Bigint.of_int (Attrs.partial_gain spec c v) in
          Alcotest.(check bool) "fits" true (Bigint.numbits p < bound)
        done);
    Alcotest.test_case "vector encodings reproduce the partial gain" `Quick
      (fun () ->
        (* w'_j . v'_j must equal rho * p_j + rho_j. *)
        for _ = 1 to 30 do
          let c = Attrs.random_criterion rng spec in
          let v = Attrs.random_info rng spec in
          let rho = Bigint.of_int (1 + Rng.int_below rng 1000) in
          let rho_j = Rng.bigint_below rng rho in
          let wv = Attrs.participant_vector spec v in
          let vv = Attrs.initiator_vector spec c ~rho ~rho_j in
          let dot = Array.fold_left Bigint.add Bigint.zero (Array.map2 Bigint.mul wv vv) in
          let expect =
            Bigint.add (Bigint.mul rho (Bigint.of_int (Attrs.partial_gain spec c v))) rho_j
          in
          Alcotest.(check string) "dot = rho p + rho_j" (Bigint.to_string expect)
            (Bigint.to_string dot)
        done);
    Alcotest.test_case "out-of-range values rejected" `Quick (fun () ->
        let c = Attrs.random_criterion rng spec in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Attrs.gain spec c [| 1000; 0; 0; 0; 0 |]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "reference ranks non-increasing in gain" `Quick (fun () ->
        let c = Attrs.random_criterion rng spec in
        let infos = Array.init 8 (fun _ -> Attrs.random_info rng spec) in
        let ranks = Attrs.reference_ranks spec c infos in
        let gains = Array.map (Attrs.partial_gain spec c) infos in
        Array.iteri
          (fun i ri ->
            Array.iteri
              (fun j rj ->
                if ri < rj then
                  Alcotest.(check bool) "ordered" true (gains.(i) >= gains.(j)))
              ranks)
          ranks);
  ]

let phase1_tests =
  let cfg = Phase1.config ~spec ~h:8 () in
  [
    Alcotest.test_case "beta equals the reference masked gain" `Quick (fun () ->
        for _ = 1 to 15 do
          let criterion = Attrs.random_criterion rng spec in
          let infos = Array.init 4 (fun _ -> Attrs.random_info rng spec) in
          let secrets, res = Phase1.run rng cfg ~criterion ~infos in
          Array.iteri
            (fun j r ->
              let expect =
                Phase1.reference_beta cfg ~criterion ~secrets ~j ~info:infos.(j)
              in
              Alcotest.(check string) "beta" (Bigint.to_string expect)
                (Bigint.to_string r.Phase1.beta_signed))
            res
        done);
    Alcotest.test_case "betas preserve strict gain order" `Quick (fun () ->
        for _ = 1 to 15 do
          let criterion = Attrs.random_criterion rng spec in
          let infos = Array.init 6 (fun _ -> Attrs.random_info rng spec) in
          let _, res = Phase1.run rng cfg ~criterion ~infos in
          let gains = Array.map (Attrs.partial_gain spec criterion) infos in
          Array.iteri
            (fun i ri ->
              Array.iteri
                (fun j rj ->
                  if gains.(i) > gains.(j) then
                    Alcotest.(check bool) "order kept" true
                      (Bigint.compare ri.Phase1.beta_unsigned rj.Phase1.beta_unsigned > 0))
                res)
            res
        done);
    Alcotest.test_case "unsigned betas fit in l bits" `Quick (fun () ->
        let l = Phase1.beta_bits cfg in
        let criterion = Attrs.random_criterion rng spec in
        let infos = Array.init 5 (fun _ -> Attrs.random_info rng spec) in
        let _, res = Phase1.run rng cfg ~criterion ~infos in
        Array.iter
          (fun r ->
            Alcotest.(check bool) "in range" true
              (Bigint.sign r.Phase1.beta_unsigned >= 0
              && Bigint.numbits r.Phase1.beta_unsigned <= l))
          res);
    Alcotest.test_case "rho has the top bit set (order preservation)" `Quick
      (fun () ->
        for _ = 1 to 20 do
          let s = Phase1.draw_masks rng cfg ~n:3 in
          Alcotest.(check int) "h bits" cfg.Phase1.h (Bigint.numbits s.Phase1.rho);
          Array.iter
            (fun rj ->
              Alcotest.(check bool) "rho_j < rho" true
                (Bigint.compare rj s.Phase1.rho < 0 && Bigint.sign rj >= 0))
            s.Phase1.rho_js
        done);
  ]

(* Expected ranks from beta values: 1 + number of strictly larger betas. *)
let ranks_of_betas betas =
  Array.map
    (fun b ->
      1 + Array.fold_left (fun acc b' -> if Bigint.compare b' b > 0 then acc + 1 else acc) 0 betas)
    betas

let phase2_tests =
  let module G = (val Dl_group.dl_test_64 ()) in
  let module P2 = Phase2.Make (G) in
  [
    Alcotest.test_case "ranks match beta ordering (random)" `Quick (fun () ->
        for _ = 1 to 6 do
          let n = 2 + Rng.int_below rng 5 in
          let l = 10 in
          let betas = Array.init n (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l)) in
          let r = P2.run rng ~l ~betas in
          Alcotest.(check (array int)) "ranks" (ranks_of_betas betas) r.P2.ranks
        done);
    Alcotest.test_case "equal betas share a rank" `Quick (fun () ->
        let betas = Array.map Bigint.of_int [| 5; 9; 5; 1; 9 |] in
        let r = P2.run rng ~l:8 ~betas in
        Alcotest.(check (array int)) "ranks" [| 3; 1; 3; 5; 1 |] r.P2.ranks);
    Alcotest.test_case "single participant" `Quick (fun () ->
        let r = P2.run rng ~l:8 ~betas:[| Bigint.of_int 3 |] in
        Alcotest.(check (array int)) "rank" [| 1 |] r.P2.ranks);
    Alcotest.test_case "two participants" `Quick (fun () ->
        let r = P2.run rng ~l:8 ~betas:(Array.map Bigint.of_int [| 200; 100 |]) in
        Alcotest.(check (array int)) "ranks" [| 1; 2 |] r.P2.ranks);
    Alcotest.test_case "extreme betas (0 and 2^l - 1)" `Quick (fun () ->
        let l = 12 in
        let betas =
          [| Bigint.zero; Bigint.pred (Bigint.nth_bit_weight l); Bigint.of_int 5 |]
        in
        let r = P2.run rng ~l ~betas in
        Alcotest.(check (array int)) "ranks" [| 3; 1; 2 |] r.P2.ranks);
    Alcotest.test_case "all zkp proofs verify" `Quick (fun () ->
        let betas = Array.map Bigint.of_int [| 1; 2; 3; 4 |] in
        let r = P2.run rng ~l:6 ~betas in
        Alcotest.(check bool) "all ok" true
          (Array.for_all (Array.for_all Fun.id) r.P2.zkp_ok));
    Alcotest.test_case "naive omega variant agrees" `Quick (fun () ->
        let betas = Array.map Bigint.of_int [| 17; 3; 90; 17 |] in
        let fast = P2.run rng ~l:8 ~betas in
        let naive = P2.run ~naive_omega:true rng ~l:8 ~betas in
        Alcotest.(check (array int)) "same ranks" fast.P2.ranks naive.P2.ranks);
    Alcotest.test_case "naive omega costs more group ops" `Quick (fun () ->
        let betas = Array.init 4 (fun i -> Bigint.of_int (i * 37)) in
        let fast = P2.run rng ~l:24 ~betas in
        let naive = P2.run ~naive_omega:true rng ~l:24 ~betas in
        let total r = Array.fold_left ( + ) 0 r.P2.per_party_ops in
        Alcotest.(check bool) "naive > fast" true (total naive > total fast));
    Alcotest.test_case "rejects out-of-range beta" `Quick (fun () ->
        Alcotest.check_raises "too big"
          (Invalid_argument "Phase2.run: beta out of l-bit range") (fun () ->
            ignore (P2.run rng ~l:4 ~betas:[| Bigint.of_int 16; Bigint.one |])));
    Alcotest.test_case "communication: O(n) rounds" `Quick (fun () ->
        let run n =
          let betas = Array.init n (fun i -> Bigint.of_int i) in
          List.length (P2.run rng ~l:6 ~betas).P2.schedule
        in
        (* rounds = n + constant: difference between n=6 and n=4 is 2. *)
        Alcotest.(check int) "linear growth" 2 (run 6 - run 4));
    Alcotest.test_case "per-party ciphertext count formula" `Quick (fun () ->
        Alcotest.(check int) "l(1 + n(n+1))" (6 * (1 + (5 * 6)))
          (P2.ciphertexts_per_party ~n:5 ~l:6));
    Alcotest.test_case "ranks agree across group families" `Quick (fun () ->
        let module Gec = (val Ec_group.ecc_tiny ()) in
        let module P2ec = Phase2.Make (Gec) in
        let betas = Array.init 5 (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight 10)) in
        let a = (P2.run rng ~l:10 ~betas).P2.ranks in
        let b = (P2ec.run rng ~l:10 ~betas).P2ec.ranks in
        Alcotest.(check (array int)) "same" a b);
  ]

let framework_tests =
  let cfg = Framework.config ~h:8 ~spec ~k:2 () in
  [
    Alcotest.test_case "end-to-end ranks consistent with gains" `Quick (fun () ->
        for _ = 1 to 3 do
          let n = 3 + Rng.int_below rng 3 in
          let criterion = Attrs.random_criterion rng spec in
          let infos = Array.init n (fun _ -> Attrs.random_info rng spec) in
          let out =
            Framework.run_with_group (Dl_group.dl_test_64 ()) rng cfg ~criterion ~infos
          in
          let gains = Array.map (Attrs.partial_gain spec criterion) infos in
          Array.iteri
            (fun i ri ->
              Array.iteri
                (fun j rj ->
                  if ri < rj then
                    Alcotest.(check bool) "no inversion" true (gains.(i) >= gains.(j)))
                out.Framework.ranks)
            out.Framework.ranks
        done);
    Alcotest.test_case "top-k submissions reach the initiator" `Quick (fun () ->
        let criterion = Attrs.random_criterion rng spec in
        let infos = Array.init 6 (fun _ -> Attrs.random_info rng spec) in
        let out =
          Framework.run_with_group (Dl_group.dl_test_64 ()) rng cfg ~criterion ~infos
        in
        Alcotest.(check bool) "at least k submissions (ties may add more)" true
          (List.length out.Framework.submissions >= 2);
        List.iter
          (fun s ->
            Alcotest.(check bool) "claimed rank <= k" true (s.Framework.claimed_rank <= 2))
          out.Framework.submissions;
        Alcotest.(check int) "nothing flagged" 0 (List.length out.Framework.flagged));
    Alcotest.test_case "over-claim detection flags liars" `Quick (fun () ->
        let criterion = { Attrs.v0 = [| 0; 0; 0; 0; 0 |]; w = [| 1; 1; 1; 1; 1 |] } in
        (* Gains here are dominated by "greater than" attributes; build
           submissions by hand with an inconsistent claimed order. *)
        let low = [| 0; 0; 1; 1; 1 |] and high = [| 0; 0; 60; 60; 60 |] in
        let module G = (val Dl_group.dl_test_64 ()) in
        let module F = Framework.Make (G) in
        let subs =
          [
            { Framework.participant = 0; claimed_rank = 1; info = low };
            { Framework.participant = 1; claimed_rank = 2; info = high };
          ]
        in
        let ok, bad = F.vet_submissions spec criterion subs in
        Alcotest.(check int) "both flagged" 0 (List.length ok);
        Alcotest.(check int) "two inconsistent" 2 (List.length bad));
    Alcotest.test_case "honest submissions pass vetting" `Quick (fun () ->
        let criterion = { Attrs.v0 = [| 0; 0; 0; 0; 0 |]; w = [| 1; 1; 1; 1; 1 |] } in
        let low = [| 0; 0; 1; 1; 1 |] and high = [| 0; 0; 60; 60; 60 |] in
        let module G = (val Dl_group.dl_test_64 ()) in
        let module F = Framework.Make (G) in
        let subs =
          [
            { Framework.participant = 0; claimed_rank = 2; info = low };
            { Framework.participant = 1; claimed_rank = 1; info = high };
          ]
        in
        let ok, bad = F.vet_submissions spec criterion subs in
        Alcotest.(check int) "accepted" 2 (List.length ok);
        Alcotest.(check int) "none flagged" 0 (List.length bad));
    Alcotest.test_case "HE framework agrees with SS baseline" `Quick (fun () ->
        let criterion = Attrs.random_criterion rng spec in
        let infos = Array.init 5 (fun _ -> Attrs.random_info rng spec) in
        (* Distinct gains so rankings are unique regardless of masks. *)
        let gains = Array.map (Attrs.partial_gain spec criterion) infos in
        let distinct =
          Array.length gains
          = List.length (List.sort_uniq compare (Array.to_list gains))
        in
        if distinct then begin
          let he =
            Framework.run_with_group (Ec_group.ecc_tiny ()) rng cfg ~criterion ~infos
          in
          let ss = Ss_framework.run rng cfg ~criterion ~infos in
          Alcotest.(check (array int)) "same ranks" he.Framework.ranks
            ss.Ss_framework.ranks
        end);
    Alcotest.test_case "cost ledger is populated" `Quick (fun () ->
        let criterion = Attrs.random_criterion rng spec in
        let infos = Array.init 4 (fun _ -> Attrs.random_info rng spec) in
        let out =
          Framework.run_with_group (Dl_group.dl_test_64 ()) rng cfg ~criterion ~infos
        in
        let c = out.Framework.costs in
        Alcotest.(check bool) "ops counted" true
          (Array.for_all (fun o -> o > 0) c.Framework.participant_ops);
        Alcotest.(check bool) "exps counted" true
          (Array.for_all (fun o -> o > 0) c.Framework.participant_exps);
        Alcotest.(check bool) "initiator worked" true (c.Framework.initiator_field_mults > 0);
        Alcotest.(check bool) "schedule nonempty" true (List.length c.Framework.schedule > 5));
    Alcotest.test_case "ss baseline needs 3 parties" `Quick (fun () ->
        let criterion = Attrs.random_criterion rng spec in
        let infos = Array.init 2 (fun _ -> Attrs.random_info rng spec) in
        Alcotest.check_raises "too few"
          (Invalid_argument "Ss_framework.run: need at least 3 parties") (fun () ->
            ignore (Ss_framework.run rng cfg ~criterion ~infos)));
  ]


(* Validate the cost model: the quadratic fit from n = 3,4,5 must
   predict direct instrumented runs at larger n. *)
let cost_model_tests =
  [
    Alcotest.test_case "HE model predicts direct runs" `Slow (fun () ->
        let l = 20 in
        let m = Cost_model.He_model.fit rng ~l in
        List.iter
          (fun n ->
            let ops, exps = Cost_model.He_model.measure_once rng ~l ~n in
            let pred_ops = Cost_model.He_model.predict_test_ops m ~n in
            let pred_exps = Cost_model.He_model.predict_exps m ~n in
            let rel a b = abs_float (a -. float_of_int b) /. float_of_int b in
            Alcotest.(check bool)
              (Printf.sprintf "ops within 5%% at n=%d (pred %.0f actual %d)" n pred_ops ops)
              true
              (rel pred_ops ops < 0.05);
            Alcotest.(check bool)
              (Printf.sprintf "exps within 5%% at n=%d" n)
              true
              (rel pred_exps exps < 0.05))
          [ 7; 9 ]);
    Alcotest.test_case "HE model matches analytic exponentiation count" `Quick
      (fun () ->
        let l = 16 in
        let m = Cost_model.He_model.fit rng ~l in
        List.iter
          (fun n ->
            let analytic = Cost_model.He_model.analytic_exps ~n ~l in
            let fitted = Cost_model.He_model.predict_exps m ~n in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d analytic %d fitted %.0f" n analytic fitted)
              true
              (abs_float (fitted -. float_of_int analytic)
               /. float_of_int analytic
              < 0.02))
          [ 5; 10; 20 ]);
    Alcotest.test_case "SS model predicts direct field mults" `Slow (fun () ->
        let l = 16 in
        let m = Cost_model.Ss_model.measure rng ~l ~n0:5 () in
        (* Direct run at n = 7: total field mults / n vs prediction. *)
        let f = Ppgr_dotprod.Zfield.default () in
        let n = 7 in
        let e = Ppgr_shamir.Engine.create rng f ~n in
        Ppgr_shamir.Engine.reset_costs e;
        let prm = { Ppgr_shamir.Compare.l; kappa = 40; log_prefix = true } in
        let betas = Array.init n (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l)) in
        ignore (Ppgr_shamir.Ss_sort.rank_via_sort e prm betas);
        let c = Ppgr_shamir.Engine.costs e in
        let direct = float_of_int c.Ppgr_shamir.Engine.c_field_mults /. float_of_int n in
        let pred = Cost_model.Ss_model.predict_party_field_mults m ~n in
        Alcotest.(check bool)
          (Printf.sprintf "within 35%% (pred %.0f direct %.0f)" pred direct)
          true
          (abs_float (pred -. direct) /. direct < 0.35));
    Alcotest.test_case "schedules have positive costs and traffic" `Quick
      (fun () ->
        let l = 16 in
        let hm = Cost_model.He_model.fit rng ~l in
        let sched =
          Cost_model.He_model.schedule hm ~n:10 ~cipher_bytes:64 ~elem_bytes:32
            ~scalar_bytes:32 ~mpe_target:100.
        in
        Alcotest.(check bool) "rounds" true (List.length sched > 10);
        Alcotest.(check bool) "bytes" true (Cost.total_bytes sched > 0);
        Alcotest.(check bool) "ops" true (Cost.total_critical_ops sched > 0);
        let sm = Cost_model.Ss_model.measure rng ~l ~n0:5 () in
        let ss_sched =
          Cost_model.Ss_model.schedule sm ~n:10 ~field_bytes:24
            ~sec_per_field_mult:1e-6 ~sec_per_op:1e-6
        in
        Alcotest.(check bool) "ss rounds" true (List.length ss_sched > 10);
        Alcotest.(check bool) "ss bytes" true (Cost.total_bytes ss_sched > 0));
  ]

let () =
  Alcotest.run "grouprank"
    [
      ("attrs", attrs_tests);
      ("phase1", phase1_tests);
      ("phase2", phase2_tests);
      ("framework", framework_tests);
      ("cost-model", cost_model_tests);
    ]

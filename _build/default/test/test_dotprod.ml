(* Field arithmetic and secure dot-product protocol tests. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_dotprod

let rng = Rng.create ~seed:"test-dotprod"
let f = Zfield.default ()
let bi = Bigint.of_int

let field_tests =
  [
    Alcotest.test_case "default modulus is prime" `Slow (fun () ->
        Alcotest.(check bool) "2^192-237 prime" true
          (Prime.is_probable_prime ~rounds:6 (Rng.as_prime_rand rng)
             (Zfield.modulus f)));
    Alcotest.test_case "field axioms on random values" `Quick (fun () ->
        for _ = 1 to 50 do
          let a = Zfield.random rng f and b = Zfield.random rng f and c = Zfield.random rng f in
          Alcotest.(check bool) "assoc mul" true
            (Bigint.equal (Zfield.mul f (Zfield.mul f a b) c) (Zfield.mul f a (Zfield.mul f b c)));
          Alcotest.(check bool) "distrib" true
            (Bigint.equal
               (Zfield.mul f a (Zfield.add f b c))
               (Zfield.add f (Zfield.mul f a b) (Zfield.mul f a c)))
        done);
    Alcotest.test_case "inverse and division" `Quick (fun () ->
        for _ = 1 to 20 do
          let a = Zfield.random_nonzero rng f in
          Alcotest.(check bool) "a * a^-1 = 1" true
            (Bigint.equal (Zfield.mul f a (Zfield.inv f a)) Bigint.one);
          let b = Zfield.random rng f in
          Alcotest.(check bool) "b/a*a = b" true
            (Bigint.equal (Zfield.mul f (Zfield.div f b a) a) b)
        done);
    Alcotest.test_case "signed mapping round trip" `Quick (fun () ->
        List.iter
          (fun v ->
            let enc = Zfield.of_signed f (bi v) in
            Alcotest.(check int) (string_of_int v) v
              (Bigint.to_int_exn (Zfield.to_signed f enc)))
          [ 0; 1; -1; 123456; -123456; max_int / 4; -(max_int / 4) ]);
    Alcotest.test_case "dot product" `Quick (fun () ->
        let a = Array.map bi [| 1; 2; 3 |] and b = Array.map bi [| 4; 5; 6 |] in
        Alcotest.(check string) "32" "32" (Bigint.to_string (Zfield.dot f a b)));
    Alcotest.test_case "matrix-vector and matrix-matrix" `Quick (fun () ->
        let m = [| [| bi 1; bi 2 |]; [| bi 3; bi 4 |] |] in
        let v = [| bi 5; bi 6 |] in
        let mv = Zfield.mat_vec f m v in
        Alcotest.(check string) "row0" "17" (Bigint.to_string mv.(0));
        Alcotest.(check string) "row1" "39" (Bigint.to_string mv.(1));
        let mm = Zfield.mat_mul f m m in
        Alcotest.(check string) "(0,0)" "7" (Bigint.to_string mm.(0).(0));
        Alcotest.(check string) "(1,1)" "22" (Bigint.to_string mm.(1).(1)));
    Alcotest.test_case "col_sums" `Quick (fun () ->
        let m = [| [| bi 1; bi 2 |]; [| bi 3; bi 4 |] |] in
        let s = Zfield.col_sums f m in
        Alcotest.(check string) "c0" "4" (Bigint.to_string s.(0));
        Alcotest.(check string) "c1" "6" (Bigint.to_string s.(1)));
    Alcotest.test_case "mult counter" `Quick (fun () ->
        Zfield.reset_mult_count f;
        ignore (Zfield.mul f (bi 2) (bi 3));
        ignore (Zfield.mul f (bi 2) (bi 3));
        Alcotest.(check int) "2 mults" 2 (Zfield.mult_count f));
  ]

let protocol_tests =
  [
    Alcotest.test_case "correctness across dimensions and s" `Quick (fun () ->
        List.iter
          (fun (d, s) ->
            let w = Array.init d (fun _ -> bi (Rng.int_below rng 10000)) in
            let v = Array.init d (fun _ -> bi (Rng.int_below rng 10000)) in
            let alpha = Zfield.random rng f in
            let st, m1 = Dot_product.bob_round1 rng f ~w ~s in
            let m2 = Dot_product.alice_round2 rng f ~v ~alpha m1 in
            let beta = Dot_product.bob_finish f st m2 in
            Alcotest.(check string)
              (Printf.sprintf "d=%d s=%d" d s)
              (Bigint.to_string (Dot_product.plain f ~w ~v ~alpha))
              (Bigint.to_string beta))
          [ (1, 2); (1, 8); (5, 2); (10, 4); (30, 6); (7, 12) ]);
    Alcotest.test_case "handles zero vectors" `Quick (fun () ->
        let w = Array.make 4 Bigint.zero and v = Array.make 4 Bigint.zero in
        let alpha = bi 777 in
        let st, m1 = Dot_product.bob_round1 rng f ~w ~s:3 in
        let m2 = Dot_product.alice_round2 rng f ~v ~alpha m1 in
        Alcotest.(check string) "beta = alpha" "777"
          (Bigint.to_string (Dot_product.bob_finish f st m2)));
    Alcotest.test_case "signed inputs through field encoding" `Quick (fun () ->
        (* w.v + alpha where components are negative integers. *)
        let enc v = Zfield.of_signed f (bi v) in
        let w = Array.map enc [| 3; -2 |] and v = Array.map enc [| -4; 5 |] in
        let alpha = enc (-10) in
        let st, m1 = Dot_product.bob_round1 rng f ~w ~s:4 in
        let m2 = Dot_product.alice_round2 rng f ~v ~alpha m1 in
        let beta = Zfield.to_signed f (Dot_product.bob_finish f st m2) in
        (* 3*-4 + -2*5 + -10 = -32 *)
        Alcotest.(check int) "signed result" (-32) (Bigint.to_int_exn beta));
    Alcotest.test_case "round1 message has documented size" `Quick (fun () ->
        let d = 6 and s = 5 in
        let w = Array.init d (fun i -> bi i) in
        let _, m1 = Dot_product.bob_round1 rng f ~w ~s in
        let count =
          Array.length m1.Dot_product.qx * Array.length m1.Dot_product.qx.(0)
          + Array.length m1.Dot_product.c'
          + Array.length m1.Dot_product.g
        in
        Alcotest.(check int) "elements" (Dot_product.round1_elements ~s ~dim:d) count);
    Alcotest.test_case "s must be at least 2" `Quick (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Dot_product.bob_round1: s must be >= 2") (fun () ->
            ignore (Dot_product.bob_round1 rng f ~w:[| bi 1 |] ~s:1)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:60 ~name:"protocol equals plaintext (random)"
         QCheck2.Gen.(
           pair (int_range 1 12)
             (pair (int_range 2 8) (int_range 0 1_000_000)))
         (fun (d, (s, seed)) ->
           let r = Rng.create ~seed:(string_of_int seed) in
           let w = Array.init d (fun _ -> bi (Rng.int_below r 100000)) in
           let v = Array.init d (fun _ -> bi (Rng.int_below r 100000)) in
           let alpha = Zfield.random r f in
           let st, m1 = Dot_product.bob_round1 r f ~w ~s in
           let m2 = Dot_product.alice_round2 r f ~v ~alpha m1 in
           Bigint.equal
             (Dot_product.bob_finish f st m2)
             (Dot_product.plain f ~w ~v ~alpha)));
  ]

let () =
  Alcotest.run "dotprod" [ ("field", field_tests); ("protocol", protocol_tests) ]

(* Tests for the message-passing (bytes-only) execution of phase 2. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_grouprank

let rng = Rng.create ~seed:"test-runtime"

let ranks_of_betas betas =
  Array.map
    (fun b ->
      1
      + Array.fold_left
          (fun acc b' -> if Bigint.compare b' b > 0 then acc + 1 else acc)
          0 betas)
    betas

let suite (name, g) =
  let module G = (val g : Group_intf.GROUP) in
  let module RT = Runtime.Make (G) in
  [
    Alcotest.test_case (name ^ ": distributed ranks match beta order") `Quick
      (fun () ->
        for _ = 1 to 4 do
          let n = 2 + Rng.int_below rng 4 in
          let l = 10 in
          let betas =
            Array.init n (fun _ -> Rng.bigint_below rng (Bigint.nth_bit_weight l))
          in
          let r = RT.run rng ~l ~betas in
          Alcotest.(check (array int)) "ranks" (ranks_of_betas betas) r.RT.ranks
        done);
    Alcotest.test_case (name ^ ": agrees with the lockstep simulation") `Quick
      (fun () ->
        let module P2 = Phase2.Make (G) in
        let l = 8 in
        let betas = Array.map Bigint.of_int [| 17; 200; 3; 17; 90 |] in
        let sim = (P2.run rng ~l ~betas).P2.ranks in
        let dist = (RT.run rng ~l ~betas).RT.ranks in
        Alcotest.(check (array int)) "same ranking" sim dist);
    Alcotest.test_case (name ^ ": traffic accounted") `Quick (fun () ->
        let l = 6 in
        let betas = Array.map Bigint.of_int [| 1; 2; 3; 4 |] in
        let r = RT.run rng ~l ~betas in
        Alcotest.(check bool) "bytes" true (r.RT.bytes_on_wire > 0);
        Alcotest.(check bool) "messages" true (r.RT.messages > 20));
    Alcotest.test_case (name ^ ": rejects out-of-range beta") `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (RT.run rng ~l:4 ~betas:[| Bigint.of_int 16; Bigint.one |]);
             false
           with Invalid_argument _ -> true));
  ]

let forged_proof_tests =
  let module G = (val Dl_group.dl_test_64 () : Group_intf.GROUP) in
  let module RT = Runtime.Make (G) in
  [
    Alcotest.test_case "announcement with forged proof is rejected" `Quick
      (fun () ->
        let n = 3 and l = 6 in
        let parties =
          Array.init n (fun index ->
              RT.create_party ~index ~n ~l ~beta:(Bigint.of_int index)
                (Rng.split rng ~label:(Printf.sprintf "forge-%d" index)))
        in
        let pub_msgs = Array.map (fun p -> p.RT.pub_msg) parties in
        let proof_msgs = Array.map (fun p -> p.RT.proof_msg) parties in
        (* Party 1 announces party 0's proof with its own key: the
           verification binds proof to statement, so this must fail. *)
        let forged = Array.copy proof_msgs in
        forged.(1) <- proof_msgs.(0);
        Alcotest.(check bool) "rejected" true
          (try
             ignore
               (RT.receive_keys_and_encrypt parties.(2) ~pub_msgs
                  ~proof_msgs:forged);
             false
           with Invalid_argument _ -> true));
  ]

let () =
  Alcotest.run "runtime"
    [
      ("dl", suite ("DL", Dl_group.dl_test_64 ()));
      ("ec", suite ("EC", Ec_group.ecc_tiny ()));
      ("forged-proof", forged_proof_tests);
    ]

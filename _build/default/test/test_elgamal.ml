(* ElGamal tests: round trips, additive homomorphism, distributed
   decryption, blinding semantics — over both group families. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_elgamal

let rng = Rng.create ~seed:"test-elgamal"

let suite name (g : Group_intf.group) =
  let module G = (val g) in
  let module E = Elgamal.Make (G) in
  let fresh_keys () = E.keygen rng in
  [
    Alcotest.test_case (name ^ ": standard round trip") `Quick (fun () ->
        let x, y = fresh_keys () in
        for _ = 1 to 10 do
          let m = G.pow_gen (G.random_scalar rng) in
          Alcotest.(check bool) "dec(enc m) = m" true
            (G.equal m (E.decrypt x (E.encrypt rng y m)))
        done);
    Alcotest.test_case (name ^ ": ciphertexts are randomized") `Quick (fun () ->
        let _, y = fresh_keys () in
        let m = G.pow_gen (Bigint.of_int 5) in
        let c1 = E.encrypt rng y m and c2 = E.encrypt rng y m in
        Alcotest.(check bool) "distinct" false
          (G.equal c1.E.c c2.E.c && G.equal c1.E.c' c2.E.c'));
    Alcotest.test_case (name ^ ": exponential zero test") `Quick (fun () ->
        let x, y = fresh_keys () in
        Alcotest.(check bool) "zero" true
          (E.decrypt_exp_is_zero x (E.encrypt_exp rng y Bigint.zero));
        Alcotest.(check bool) "nonzero" false
          (E.decrypt_exp_is_zero x (E.encrypt_exp rng y (Bigint.of_int 3))));
    Alcotest.test_case (name ^ ": additive homomorphism") `Quick (fun () ->
        let x, y = fresh_keys () in
        for _ = 1 to 10 do
          let a = Rng.int_below rng 1000 and b = Rng.int_below rng 1000 in
          let sum = E.add (E.encrypt_exp_int rng y a) (E.encrypt_exp_int rng y b) in
          Alcotest.(check bool) "E(a)+E(b) = E(a+b)" true
            (G.equal (E.plaintext_power x sum) (G.pow_gen (Bigint.of_int (a + b))))
        done);
    Alcotest.test_case (name ^ ": subtraction and negation") `Quick (fun () ->
        let x, y = fresh_keys () in
        let ca = E.encrypt_exp_int rng y 10 and cb = E.encrypt_exp_int rng y 4 in
        Alcotest.(check bool) "sub" true
          (G.equal (E.plaintext_power x (E.sub ca cb)) (G.pow_gen (Bigint.of_int 6)));
        Alcotest.(check bool) "a + (-a) = 0" true
          (E.decrypt_exp_is_zero x (E.add ca (E.neg ca))));
    Alcotest.test_case (name ^ ": scalar multiplication") `Quick (fun () ->
        let x, y = fresh_keys () in
        let c = E.encrypt_exp_int rng y 7 in
        Alcotest.(check bool) "scale 6" true
          (G.equal (E.plaintext_power x (E.scale_int c 6)) (G.pow_gen (Bigint.of_int 42)));
        Alcotest.(check bool) "scale 0 is zero" true
          (E.decrypt_exp_is_zero x (E.scale_int c 0)));
    Alcotest.test_case (name ^ ": add_clear") `Quick (fun () ->
        let x, y = fresh_keys () in
        let c = E.encrypt_exp_int rng y 5 in
        Alcotest.(check bool) "5+3" true
          (G.equal
             (E.plaintext_power x (E.add_clear c (Bigint.of_int 3)))
             (G.pow_gen (Bigint.of_int 8))));
    Alcotest.test_case (name ^ ": rerandomize preserves plaintext") `Quick
      (fun () ->
        let x, y = fresh_keys () in
        let c = E.encrypt_exp_int rng y 9 in
        let c' = E.rerandomize rng y c in
        Alcotest.(check bool) "ciphertext changed" false (G.equal c.E.c c'.E.c);
        Alcotest.(check bool) "plaintext kept" true
          (G.equal (E.plaintext_power x c') (G.pow_gen (Bigint.of_int 9))));
    Alcotest.test_case (name ^ ": distributed decryption, any order") `Quick
      (fun () ->
        let parties = List.init 4 (fun _ -> E.keygen rng) in
        let joint = E.joint_pubkey (List.map snd parties) in
        let c = E.encrypt_exp_int rng joint 0 in
        let cn = E.encrypt_exp_int rng joint 2 in
        let strip order cph =
          List.fold_left (fun acc (x, _) -> E.partial_decrypt x acc) cph order
        in
        Alcotest.(check bool) "zero via forward order" true
          (G.is_identity (strip parties c).E.c);
        Alcotest.(check bool) "zero via reverse order" true
          (G.is_identity (strip (List.rev parties) c).E.c);
        Alcotest.(check bool) "nonzero stays nonzero" false
          (G.is_identity (strip parties cn).E.c));
    Alcotest.test_case (name ^ ": partial strip leaves undecryptable") `Quick
      (fun () ->
        let parties = List.init 3 (fun _ -> E.keygen rng) in
        let joint = E.joint_pubkey (List.map snd parties) in
        let c = E.encrypt_exp_int rng joint 0 in
        (* Stripping only 2 of 3 layers must not reveal the zero. *)
        let partial =
          match parties with
          | a :: b :: _ -> E.partial_decrypt (fst b) (E.partial_decrypt (fst a) c)
          | _ -> assert false
        in
        Alcotest.(check bool) "still hidden" false (G.is_identity partial.E.c));
    Alcotest.test_case (name ^ ": exponent blinding") `Quick (fun () ->
        let x, y = fresh_keys () in
        let z = E.encrypt_exp_int rng y 0 and nz = E.encrypt_exp_int rng y 5 in
        let bz = E.exponent_blind rng z and bnz = E.exponent_blind rng nz in
        Alcotest.(check bool) "zero preserved" true (E.decrypt_exp_is_zero x bz);
        Alcotest.(check bool) "nonzero preserved" false (E.decrypt_exp_is_zero x bnz);
        (* The blinded nonzero plaintext is no longer 5 (randomized). *)
        Alcotest.(check bool) "plaintext randomized" false
          (G.equal (E.plaintext_power x bnz) (G.pow_gen (Bigint.of_int 5))));
    Alcotest.test_case (name ^ ": blinding commutes with partial decryption")
      `Quick (fun () ->
        let parties = List.init 3 (fun _ -> E.keygen rng) in
        let joint = E.joint_pubkey (List.map snd parties) in
        let c = E.encrypt_exp_int rng joint 0 in
        (* Interleave strip and blind as the ring pass does. *)
        let c =
          List.fold_left
            (fun acc (x, _) -> E.exponent_blind rng (E.partial_decrypt x acc))
            c parties
        in
        Alcotest.(check bool) "zero survives ring" true (G.is_identity c.E.c));
    Alcotest.test_case (name ^ ": joint_pubkey requires keys") `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Elgamal.joint_pubkey: no keys")
          (fun () -> ignore (E.joint_pubkey [])));
  ]

let homomorphism_props =
  let module G = (val Dl_group.dl_test_64 ()) in
  let module E = Elgamal.Make (G) in
  let x, y = E.keygen rng in
  let prop name gen f =
    QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:50 ~name gen f)
  in
  [
    prop "E(a)+E(b)+E(c) linear" QCheck2.Gen.(triple (int_range 0 500) (int_range 0 500) (int_range 0 500))
      (fun (a, b, c) ->
        let enc v = E.encrypt_exp_int rng y v in
        let combined = E.add (E.add (enc a) (enc b)) (enc c) in
        G.equal (E.plaintext_power x combined) (G.pow_gen (Bigint.of_int (a + b + c))));
    prop "scale distributes over add" QCheck2.Gen.(triple (int_range 0 100) (int_range 0 100) (int_range 0 20))
      (fun (a, b, k) ->
        let enc v = E.encrypt_exp_int rng y v in
        let lhs = E.scale_int (E.add (enc a) (enc b)) k in
        G.equal (E.plaintext_power x lhs) (G.pow_gen (Bigint.of_int (k * (a + b)))));
  ]

let () =
  Alcotest.run "elgamal"
    [
      ("dl", suite "DL" (Dl_group.dl_test_64 ()));
      ("ec", suite "EC" (Ec_group.ecc_tiny ()));
      ("ecc-160", suite "ECC-160" (Ec_group.ecc_160 ()));
      ("homomorphism-props", homomorphism_props);
    ]

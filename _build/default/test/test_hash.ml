(* Known-answer and structural tests for SHA-256 and HMAC-SHA256. *)

open Ppgr_hash

let hex = Sha256.hex_of_digest

let kat name input expect =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expect (hex (Sha256.digest_string input)))

let sha_tests =
  [
    kat "empty" "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
    kat "abc" "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
    kat "two blocks" "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
    kat "million a" (String.make 1_000_000 'a')
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0";
    kat "exactly 64 bytes" (String.make 64 'x')
      (hex (Sha256.digest_bytes (Bytes.make 64 'x')));
    Alcotest.test_case "length boundary paddings agree with one-shot" `Quick
      (fun () ->
        (* Feed byte-at-a-time vs one-shot for every length near block
           boundaries, exercising the padding logic. *)
        List.iter
          (fun len ->
            let s = String.init len (fun i -> Char.chr (i land 0xff)) in
            let incr_ctx = Sha256.init () in
            String.iter
              (fun c -> Sha256.feed_string incr_ctx (String.make 1 c))
              s;
            Alcotest.(check string)
              (Printf.sprintf "len %d" len)
              (hex (Sha256.digest_string s))
              (hex (Sha256.finalize incr_ctx)))
          [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 128; 129 ]);
    Alcotest.test_case "distinct inputs give distinct digests" `Quick (fun () ->
        let seen = Hashtbl.create 64 in
        for i = 0 to 999 do
          let d = hex (Sha256.digest_string (string_of_int i)) in
          Alcotest.(check bool) "fresh" false (Hashtbl.mem seen d);
          Hashtbl.add seen d ()
        done);
  ]

let hmac_tests =
  let check_hmac name key msg expect =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.(check string) name expect
          (hex (Sha256.hmac ~key:(Bytes.of_string key) (Bytes.of_string msg))))
  in
  [
    (* RFC 4231 test cases 1, 2. *)
    check_hmac "rfc4231-1" (String.make 20 '\x0b') "Hi There"
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
    check_hmac "rfc4231-2" "Jefe" "what do ya want for nothing?"
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
    (* RFC 4231 test case 3. *)
    check_hmac "rfc4231-3" (String.make 20 '\xaa') (String.make 50 '\xdd')
      "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe";
    Alcotest.test_case "long key is hashed first" `Quick (fun () ->
        let k = Bytes.of_string (String.make 131 '\xaa') in
        let short = Sha256.digest_bytes k in
        Alcotest.(check string) "same"
          (hex (Sha256.hmac ~key:k (Bytes.of_string "m")))
          (hex (Sha256.hmac ~key:short (Bytes.of_string "m"))));
  ]

let () = Alcotest.run "hash" [ ("sha256", sha_tests); ("hmac", hmac_tests) ]

(* Schnorr proof tests: completeness, soundness against wrong secrets,
   the knowledge extractor, multi-verifier extension, Fiat-Shamir. *)

open Ppgr_bigint
open Ppgr_rng
open Ppgr_group
open Ppgr_zkp

let rng = Rng.create ~seed:"test-zkp"

let suite name (g : Group_intf.group) =
  let module G = (val g) in
  let module Z = Schnorr.Make (G) in
  [
    Alcotest.test_case (name ^ ": completeness, single verifier") `Quick
      (fun () ->
        for _ = 1 to 10 do
          let x = G.random_scalar rng in
          let y = G.pow_gen x in
          let t = Z.prove_interactive rng ~secret:x ~statement:y ~n_verifiers:1 in
          Alcotest.(check bool) "accepts" true (Z.verify_transcript ~statement:y t)
        done);
    Alcotest.test_case (name ^ ": completeness, many verifiers") `Quick
      (fun () ->
        let x = G.random_scalar rng in
        let y = G.pow_gen x in
        List.iter
          (fun n ->
            let t = Z.prove_interactive rng ~secret:x ~statement:y ~n_verifiers:n in
            Alcotest.(check bool)
              (Printf.sprintf "%d verifiers" n)
              true
              (Z.verify_transcript ~statement:y t))
          [ 2; 5; 20 ]);
    Alcotest.test_case (name ^ ": wrong secret rejected") `Quick (fun () ->
        let x = G.random_scalar rng in
        let y = G.pow_gen x in
        let wrong = Bigint.erem (Bigint.succ x) G.order in
        let t = Z.prove_interactive rng ~secret:wrong ~statement:y ~n_verifiers:3 in
        Alcotest.(check bool) "rejects" false (Z.verify_transcript ~statement:y t));
    Alcotest.test_case (name ^ ": wrong statement rejected") `Quick (fun () ->
        let x = G.random_scalar rng in
        let y = G.pow_gen x in
        let t = Z.prove_interactive rng ~secret:x ~statement:y ~n_verifiers:3 in
        let other = G.pow_gen (G.random_scalar rng) in
        Alcotest.(check bool) "rejects" false (Z.verify_transcript ~statement:other t));
    Alcotest.test_case (name ^ ": tampered response rejected") `Quick (fun () ->
        let x = G.random_scalar rng in
        let y = G.pow_gen x in
        let t = Z.prove_interactive rng ~secret:x ~statement:y ~n_verifiers:2 in
        let t' = { t with Z.response = Bigint.erem (Bigint.succ t.Z.response) G.order } in
        Alcotest.(check bool) "rejects" false (Z.verify_transcript ~statement:y t'));
    Alcotest.test_case (name ^ ": extractor recovers the secret") `Quick
      (fun () ->
        let x = G.random_scalar rng in
        let st, com = Z.commit rng in
        let run () =
          let ch = [ Z.fresh_challenge rng; Z.fresh_challenge rng ] in
          {
            Z.commitment = com;
            challenges = ch;
            response = Z.respond st ~secret:x ~challenges:ch;
          }
        in
        match Z.extract (run ()) (run ()) with
        | Some x' -> Alcotest.(check bool) "extracted" true (Bigint.equal x x')
        | None -> Alcotest.fail "extraction failed");
    Alcotest.test_case (name ^ ": extractor needs distinct challenges") `Quick
      (fun () ->
        let x = G.random_scalar rng in
        let st, com = Z.commit rng in
        let ch = [ Z.fresh_challenge rng ] in
        let t =
          { Z.commitment = com; challenges = ch; response = Z.respond st ~secret:x ~challenges:ch }
        in
        Alcotest.(check bool) "none" true (Z.extract t t = None));
    Alcotest.test_case (name ^ ": Fiat-Shamir round trip") `Quick (fun () ->
        let x = G.random_scalar rng in
        let y = G.pow_gen x in
        let p = Z.prove_fs rng ~secret:x ~statement:y ~context:"ctx" in
        Alcotest.(check bool) "accepts" true (Z.verify_fs ~statement:y ~context:"ctx" p);
        Alcotest.(check bool) "context bound" false
          (Z.verify_fs ~statement:y ~context:"other" p);
        Alcotest.(check bool) "statement bound" false
          (Z.verify_fs ~statement:(G.pow_gen (G.random_scalar rng)) ~context:"ctx" p));
    Alcotest.test_case (name ^ ": HVZK transcript shape") `Quick (fun () ->
        (* A simulated transcript (response first, commitment derived)
           verifies: the distribution argument behind zero-knowledge. *)
        let x = G.random_scalar rng in
        let y = G.pow_gen x in
        let z = G.random_scalar rng and c = G.random_scalar rng in
        let com = G.mul (G.pow_gen z) (G.inv (G.pow y c)) in
        Alcotest.(check bool) "simulated accepts" true
          (Z.verify ~statement:y ~commitment:com ~challenges:[ c ] ~response:z));
  ]

let () =
  Alcotest.run "zkp"
    [
      ("dl", suite "DL" (Dl_group.dl_test_64 ()));
      ("ec", suite "EC" (Ec_group.ecc_tiny ()));
    ]

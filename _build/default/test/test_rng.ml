(* Tests for the ChaCha20 CSPRNG and SplitMix64. *)

open Ppgr_bigint
open Ppgr_rng

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

let chacha_tests =
  [
    Alcotest.test_case "RFC 8439 block vector" `Quick (fun () ->
        (* Section 2.3.2: key 00..1f, nonce 00:00:00:09:00:00:00:4a:..., ctr 1. *)
        let key = Bytes.init 32 Char.chr in
        let nonce =
          Bytes.of_string "\x00\x00\x00\x09\x00\x00\x00\x4a\x00\x00\x00\x00"
        in
        let block = Chacha20.block ~key ~nonce ~counter:1 in
        let expect_prefix = "\x10\xf1\xe7\xe4\xd1\x3b\x59\x15\x50\x0f\xdd\x1f\xa3\x20\x71\xc4" in
        Alcotest.(check string) "first 16 bytes" expect_prefix
          (Bytes.to_string (Bytes.sub block 0 16)));
    Alcotest.test_case "bad sizes rejected" `Quick (fun () ->
        Alcotest.check_raises "key"
          (Invalid_argument "Chacha20.block: key must be 32 bytes") (fun () ->
            ignore (Chacha20.block ~key:(Bytes.create 16) ~nonce:(Bytes.create 12) ~counter:0)));
    Alcotest.test_case "counter changes output" `Quick (fun () ->
        let key = Bytes.make 32 'k' and nonce = Bytes.make 12 'n' in
        Alcotest.(check bool) "different" false
          (Chacha20.block ~key ~nonce ~counter:0 = Chacha20.block ~key ~nonce ~counter:1));
  ]

let rng_tests =
  [
    Alcotest.test_case "deterministic from seed" `Quick (fun () ->
        let a = Rng.create ~seed:"s" and b = Rng.create ~seed:"s" in
        Alcotest.(check bytes) "same stream" (Rng.bytes a 100) (Rng.bytes b 100));
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Rng.create ~seed:"s1" and b = Rng.create ~seed:"s2" in
        Alcotest.(check bool) "differ" false (Rng.bytes a 32 = Rng.bytes b 32));
    Alcotest.test_case "split independent of parent position" `Quick (fun () ->
        let a = Rng.create ~seed:"s" in
        let _ = Rng.bytes a 999 in
        let child1 = Rng.split a ~label:"x" in
        let b = Rng.create ~seed:"s" in
        let child2 = Rng.split b ~label:"x" in
        Alcotest.(check bytes) "same child stream" (Rng.bytes child1 32) (Rng.bytes child2 32));
    Alcotest.test_case "split labels give distinct streams" `Quick (fun () ->
        let a = Rng.create ~seed:"s" in
        let x = Rng.split a ~label:"x" and y = Rng.split a ~label:"y" in
        Alcotest.(check bool) "differ" false (Rng.bytes x 32 = Rng.bytes y 32));
    Alcotest.test_case "int_below bounds and rough uniformity" `Quick (fun () ->
        let r = Rng.create ~seed:"uniform" in
        let counts = Array.make 16 0 in
        for _ = 1 to 16000 do
          let v = Rng.int_below r 16 in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 16);
          counts.(v) <- counts.(v) + 1
        done;
        Array.iter
          (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 800 && c < 1200))
          counts);
    Alcotest.test_case "int_below on non-power-of-two (rejection path)" `Quick
      (fun () ->
        let r = Rng.create ~seed:"reject" in
        for _ = 1 to 5000 do
          let v = Rng.int_below r 3 in
          Alcotest.(check bool) "range" true (v >= 0 && v < 3)
        done);
    Alcotest.test_case "int_in_range inclusive" `Quick (fun () ->
        let r = Rng.create ~seed:"range" in
        let seen_lo = ref false and seen_hi = ref false in
        for _ = 1 to 2000 do
          let v = Rng.int_in_range r ~lo:(-3) ~hi:3 in
          if v = -3 then seen_lo := true;
          if v = 3 then seen_hi := true;
          Alcotest.(check bool) "range" true (v >= -3 && v <= 3)
        done;
        Alcotest.(check bool) "endpoints reachable" true (!seen_lo && !seen_hi));
    Alcotest.test_case "permutation is a permutation" `Quick (fun () ->
        let r = Rng.create ~seed:"perm" in
        let p = Rng.permutation r 50 in
        let s = Array.copy p in
        Array.sort compare s;
        Alcotest.(check bool) "permutation" true (s = Array.init 50 (fun i -> i)));
    Alcotest.test_case "splitmix basic" `Quick (fun () ->
        let st = Rng.Splitmix.create 42 in
        let a = Rng.Splitmix.next st and b = Rng.Splitmix.next st in
        Alcotest.(check bool) "progresses" true (a <> b);
        Alcotest.(check bool) "nonneg" true (a >= 0 && b >= 0);
        let f = Rng.Splitmix.float st in
        Alcotest.(check bool) "unit float" true (f >= 0. && f < 1.));
  ]

let bigint_sampling_tests =
  [
    prop "bigint_below in range"
      QCheck2.Gen.(int_range 1 1000)
      (fun seed ->
        let r = Rng.create ~seed:(string_of_int seed) in
        let bound = Bigint.of_string "123456789012345678901234567890" in
        let v = Rng.bigint_below r bound in
        Bigint.sign v >= 0 && Bigint.compare v bound < 0);
    prop "bigint_bits within width"
      QCheck2.Gen.(pair (int_range 0 200) (int_range 0 1000))
      (fun (bits, seed) ->
        let r = Rng.create ~seed:(string_of_int seed) in
        Bigint.numbits (Rng.bigint_bits r bits) <= bits);
    prop "bigint_in_range inclusive"
      QCheck2.Gen.(int_range 0 500)
      (fun seed ->
        let r = Rng.create ~seed:(string_of_int seed) in
        let lo = Bigint.of_int 100 and hi = Bigint.of_int 110 in
        let v = Rng.bigint_in_range r ~lo ~hi in
        Bigint.compare v lo >= 0 && Bigint.compare v hi <= 0);
  ]

let () =
  Alcotest.run "rng"
    [
      ("chacha20", chacha_tests);
      ("rng", rng_tests);
      ("bigint-sampling", bigint_sampling_tests);
    ]

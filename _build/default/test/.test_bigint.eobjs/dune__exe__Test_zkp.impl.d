test/test_zkp.ml: Alcotest Bigint Dl_group Ec_group Group_intf List Ppgr_bigint Ppgr_group Ppgr_rng Ppgr_zkp Printf Rng Schnorr

test/test_shamir.ml: Alcotest Array Bigint Compare Engine Hashtbl List Ppgr_bigint Ppgr_dotprod Ppgr_rng Ppgr_shamir Printf QCheck2 QCheck_alcotest Rng Shamir Sort_network Ss_sort String Zfield

test/test_rng.ml: Alcotest Array Bigint Bytes Chacha20 Char Ppgr_bigint Ppgr_rng QCheck2 QCheck_alcotest Rng

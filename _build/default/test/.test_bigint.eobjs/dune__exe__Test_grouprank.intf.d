test/test_grouprank.mli:

test/test_mpcnet.ml: Alcotest Array List Netsim Ppgr_mpcnet Ppgr_rng Rng Topology

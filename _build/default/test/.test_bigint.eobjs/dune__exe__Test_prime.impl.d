test/test_prime.ml: Alcotest Array Bigint Ec_curve Ec_params List Modp_params Ppgr_bigint Ppgr_group Ppgr_rng Prime Printf Rng

test/test_dotprod.mli:

test/test_dotprod.ml: Alcotest Array Bigint Dot_product List Ppgr_bigint Ppgr_dotprod Ppgr_rng Prime Printf QCheck2 QCheck_alcotest Rng Zfield

test/test_games.ml: Alcotest Array Bigint Dl_group Games Group_intf List Ppgr_bigint Ppgr_group Ppgr_grouprank Ppgr_rng Rng Stdlib

test/test_runtime.ml: Alcotest Array Bigint Dl_group Ec_group Group_intf Phase2 Ppgr_bigint Ppgr_group Ppgr_grouprank Ppgr_rng Printf Rng Runtime

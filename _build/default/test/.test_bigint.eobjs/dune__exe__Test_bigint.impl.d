test/test_bigint.ml: Alcotest Bigint Bytes List Ppgr_bigint Printf QCheck2 QCheck_alcotest String

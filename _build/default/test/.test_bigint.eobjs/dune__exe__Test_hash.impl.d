test/test_hash.ml: Alcotest Bytes Char Hashtbl List Ppgr_hash Printf Sha256 String

test/test_wire.ml: Alcotest Array Bigint Bytes Char Dot_product Ppgr_bigint Ppgr_dotprod Ppgr_group Ppgr_grouprank Ppgr_rng Printf Rng Wire Zfield

test/test_prime.mli:

test/test_mpcnet.mli:

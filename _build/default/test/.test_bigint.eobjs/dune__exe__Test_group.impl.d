test/test_group.ml: Alcotest Bigint Bytes Char Dl_group Ec_curve Ec_group Ec_params Group_intf List Modp_params Ppgr_bigint Ppgr_group Ppgr_rng Printf QCheck2 QCheck_alcotest Rng

test/test_extensions.ml: Alcotest Array Bigint Compare Engine List Paillier Ppgr_bigint Ppgr_dotprod Ppgr_elgamal Ppgr_group Ppgr_paillier Ppgr_rng Ppgr_shamir Printf Rng Ss_sort Topk Zfield

test/test_elgamal.ml: Alcotest Bigint Dl_group Ec_group Elgamal Group_intf List Ppgr_bigint Ppgr_elgamal Ppgr_group Ppgr_rng QCheck2 QCheck_alcotest Rng

(* Topology generation, routing and event-simulation tests. *)

open Ppgr_rng
open Ppgr_mpcnet

let rng = Rng.create ~seed:"test-mpcnet"

let topology_tests =
  [
    Alcotest.test_case "random_connected hits the edge target" `Quick (fun () ->
        let t = Topology.random_connected rng ~nodes:30 ~edges:60 () in
        Alcotest.(check int) "nodes" 30 (Topology.nodes t);
        Alcotest.(check int) "edges" 60 (Topology.edge_count t));
    Alcotest.test_case "paper topology: 80 nodes, 320 edges" `Quick (fun () ->
        let t = Topology.random_connected rng ~nodes:80 ~edges:320 () in
        Alcotest.(check int) "edges" 320 (Topology.edge_count t));
    Alcotest.test_case "generated graphs are connected (routing reaches all)"
      `Quick (fun () ->
        let t = Topology.random_connected rng ~nodes:25 ~edges:40 () in
        let next = Topology.routing t in
        for u = 0 to 24 do
          for v = 0 to 24 do
            if u <> v then
              Alcotest.(check bool) "reachable" true (next.(u).(v) >= 0)
          done
        done);
    Alcotest.test_case "paths are valid walks" `Quick (fun () ->
        let t = Topology.random_connected rng ~nodes:15 ~edges:25 () in
        let next = Topology.routing t in
        for src = 0 to 14 do
          for dst = 0 to 14 do
            if src <> dst then begin
              let path = Topology.path ~next ~src ~dst in
              Alcotest.(check bool) "ends at dst" true (List.nth path (List.length path - 1) = dst);
              let u = ref src in
              List.iter
                (fun v ->
                  (* Each consecutive pair must be adjacent. *)
                  ignore (Topology.link_between t !u v);
                  u := v)
                path
            end
          done
        done);
    Alcotest.test_case "of_edges validates" `Quick (fun () ->
        Alcotest.check_raises "disconnected"
          (Invalid_argument "Topology.of_edges: disconnected") (fun () ->
            ignore (Topology.of_edges ~nodes:4 [ (0, 1); (2, 3) ])));
    Alcotest.test_case "too few edges rejected" `Quick (fun () ->
        Alcotest.check_raises "tree minimum"
          (Invalid_argument "Topology.random_connected: too few edges") (fun () ->
            ignore (Topology.random_connected rng ~nodes:10 ~edges:5 ())));
  ]

(* A 3-node line topology with known link parameters for hand-computed
   checks: 0 -- 1 -- 2, 1 MB/s, 10 ms latency. *)
let line3 () =
  let link = { Topology.bandwidth_bps = 8_000_000.; latency_s = 0.010 } in
  Topology.of_edges ~nodes:3 ~link [ (0, 1); (1, 2) ]

let netsim_tests =
  [
    Alcotest.test_case "single message timing (hand computed)" `Quick (fun () ->
        let t = line3 () in
        (* 1000 bytes over two hops at 1 MB/s + 10 ms each:
           per hop 1 ms ser + 10 ms lat; store-and-forward = 22 ms. *)
        let sched = [ { Netsim.compute_s = 0.; messages = [ { Netsim.src = 0; dst = 2; bytes = 1000 } ] } ] in
        let st = Netsim.run t ~placement:[| 0; 1; 2 |] sched in
        Alcotest.(check (float 1e-9)) "elapsed" 0.022 st.Netsim.elapsed_s);
    Alcotest.test_case "compute time adds before sending" `Quick (fun () ->
        let t = line3 () in
        let sched = [ { Netsim.compute_s = 0.5; messages = [ { Netsim.src = 0; dst = 1; bytes = 1000 } ] } ] in
        let st = Netsim.run t ~placement:[| 0; 1; 2 |] sched in
        Alcotest.(check (float 1e-9)) "elapsed" (0.5 +. 0.011) st.Netsim.elapsed_s);
    Alcotest.test_case "link contention serializes transfers" `Quick (fun () ->
        let t = line3 () in
        (* Two 1000-byte messages across the same link: second queues
           behind the first's serialization. *)
        let m = { Netsim.src = 0; dst = 1; bytes = 1000 } in
        let sched = [ { Netsim.compute_s = 0.; messages = [ m; m ] } ] in
        let st = Netsim.run t ~placement:[| 0; 1; 2 |] sched in
        Alcotest.(check (float 1e-9)) "elapsed" 0.012 st.Netsim.elapsed_s);
    Alcotest.test_case "rounds are barriers" `Quick (fun () ->
        let t = line3 () in
        let m = { Netsim.src = 0; dst = 1; bytes = 1000 } in
        let sched =
          [
            { Netsim.compute_s = 0.; messages = [ m ] };
            { Netsim.compute_s = 0.; messages = [ m ] };
          ]
        in
        let st = Netsim.run t ~placement:[| 0; 1; 2 |] sched in
        (* Two sequential rounds: 2 * 11 ms (latency is paid per round
           because the second round waits for delivery). *)
        Alcotest.(check (float 1e-9)) "elapsed" 0.022 st.Netsim.elapsed_s;
        Alcotest.(check int) "rounds" 2 st.Netsim.rounds);
    Alcotest.test_case "same-node delivery is free" `Quick (fun () ->
        let t = line3 () in
        let sched = [ { Netsim.compute_s = 0.; messages = [ { Netsim.src = 0; dst = 1; bytes = 10 } ] } ] in
        (* Both parties placed on node 0. *)
        let st = Netsim.run t ~placement:[| 0; 0; 0 |] sched in
        Alcotest.(check (float 1e-9)) "elapsed" 0. st.Netsim.elapsed_s);
    Alcotest.test_case "stats account bytes and messages" `Quick (fun () ->
        let t = line3 () in
        let sched =
          [ { Netsim.compute_s = 0.; messages = Netsim.all_broadcast ~parties:3 ~bytes:7 } ]
        in
        let st = Netsim.run t ~placement:[| 0; 1; 2 |] sched in
        Alcotest.(check int) "messages" 6 st.Netsim.message_count;
        Alcotest.(check int) "bytes" 42 st.Netsim.bytes_sent);
    Alcotest.test_case "congestion grows with load" `Quick (fun () ->
        let t = Topology.random_connected rng ~nodes:20 ~edges:30 () in
        let placement = Netsim.place_parties t ~parties:10 in
        let run per_msg =
          (Netsim.run t ~placement
             [ { Netsim.compute_s = 0.; messages = Netsim.all_broadcast ~parties:10 ~bytes:per_msg } ])
            .Netsim.elapsed_s
        in
        Alcotest.(check bool) "10x bytes is slower" true (run 100_000 > run 10_000));
    Alcotest.test_case "placement spreads parties" `Quick (fun () ->
        let t = Topology.random_connected rng ~nodes:40 ~edges:80 () in
        let p = Netsim.place_parties t ~parties:8 in
        let distinct = List.sort_uniq compare (Array.to_list p) in
        Alcotest.(check int) "distinct nodes" 8 (List.length distinct));
  ]

let () =
  Alcotest.run "mpcnet" [ ("topology", topology_tests); ("netsim", netsim_tests) ]

bench/main.ml: Array Calibrate Figures Format List Micro Ppgr_group Ppgr_rng Printf Sys Unix

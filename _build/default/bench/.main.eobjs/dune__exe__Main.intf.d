bench/main.mli:

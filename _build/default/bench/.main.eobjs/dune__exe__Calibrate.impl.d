bench/calibrate.ml: Bigint Cost_model Format Group_intf Ppgr_bigint Ppgr_dotprod Ppgr_group Ppgr_grouprank Unix

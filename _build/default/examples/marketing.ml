(* The paper's motivating scenario (§I): a health and nutrition company
   recruits trial-program representatives from an online community.

   The questionnaire has "equal to" attributes the company wants near
   its (secret) target demographic — age, blood pressure — and "greater
   than" attributes where more is better — number of friends, annual
   income.  The company's exact preferences and weights are trade
   secrets; the participants' answers are sensitive medical/financial
   data.  The framework lets the company invite the top-k without anyone
   else's data being exposed, and demonstrates the over-claim check on a
   low-ranking participant that lies about its rank.

     dune exec examples/marketing.exe *)

open Ppgr_grouprank

let attribute_names = [| "age"; "blood pressure"; "friends"; "income (k$)" |]

let () =
  let rng = Ppgr_rng.Rng.create ~seed:"marketing-2026" in
  (* age and blood pressure are "equal to"; friends and income are
     "greater than".  8-bit attribute values, 4-bit weights. *)
  let spec = Attrs.spec ~m:4 ~t:2 ~d1:8 ~d2:4 in
  (* The company's secret marketing strategy: 35-year-olds with blood
     pressure near 120, weighting income highest. *)
  let criterion = { Attrs.v0 = [| 35; 120; 0; 0 |]; w = [| 4; 2; 3; 8 |] } in
  let population =
    [|
      ("alice", [| 34; 118; 90; 72 |]);
      ("bob", [| 61; 140; 40; 105 |]);
      ("carol", [| 35; 121; 200; 64 |]);
      ("dave", [| 28; 125; 15; 38 |]);
      ("erin", [| 37; 119; 120; 88 |]);
      ("frank", [| 52; 160; 70; 51 |]);
      ("grace", [| 35; 122; 60; 93 |]);
      ("heidi", [| 19; 110; 250; 12 |]);
    |]
  in
  let infos = Array.map snd population in
  let k = 3 in
  let cfg = Framework.config ~h:12 ~spec ~k () in
  let out =
    Framework.run_with_group (Ppgr_group.Dl_group.dl_test_128 ()) rng cfg
      ~criterion ~infos
  in
  Printf.printf "questionnaire: %s\n\n" (String.concat ", " (Array.to_list attribute_names));
  Printf.printf "each participant privately learned their rank:\n";
  Array.iteri
    (fun j (name, _) -> Printf.printf "  %-6s -> rank %d\n" name out.Framework.ranks.(j))
    population;
  Printf.printf "\ninvitations (top %d by the company's secret gain function):\n" k;
  List.iter
    (fun s ->
      let name, info = population.(s.Framework.participant) in
      Printf.printf "  %-6s accepted; company records %s\n" name
        (String.concat ";" (Array.to_list (Array.map string_of_int info))))
    out.Framework.accepted;
  (* A low-ranking participant tries to over-claim its way into the
     trial: the company recomputes gains from the submitted vectors and
     flags the inconsistency (§V, ranking submission). *)
  let module G = (val Ppgr_group.Dl_group.dl_test_128 ()) in
  let module F = Framework.Make (G) in
  let honest_top = List.hd out.Framework.accepted in
  let liar_index =
    (* The participant ranked last. *)
    let worst = ref 0 in
    Array.iteri (fun j r -> if r > out.Framework.ranks.(!worst) then worst := j) out.Framework.ranks;
    !worst
  in
  let forged =
    {
      Framework.participant = liar_index;
      claimed_rank = 1;
      info = infos.(liar_index);
    }
  in
  let _ok, flagged =
    F.vet_submissions spec criterion
      [ forged; { honest_top with Framework.claimed_rank = 2 } ]
  in
  let liar_name = fst population.(liar_index) in
  (match flagged with
  | [] -> Printf.printf "\n(unexpected: forged rank not detected)\n"
  | _ ->
      Printf.printf
        "\nover-claim check: %s claimed rank 1 but its recomputed gain is\n\
         inconsistent with the other submissions - flagged and rejected.\n"
        liar_name)

(* The unlinkable comparison phase as a real message-passing system:
   parties are isolated state machines that exchange only validated
   bytes (the Wire codecs) — no shared OCaml values.  Prints the actual
   on-the-wire traffic, which matches the paper's O(l S_c n^2)
   per-party communication analysis.

     dune exec examples/distributed.exe *)

open Ppgr_bigint
open Ppgr_grouprank

let () =
  let rng = Ppgr_rng.Rng.create ~seed:"distributed-demo" in
  let module G = (val Ppgr_group.Ec_group.ecc_160 ()) in
  let module RT = Runtime.Make (G) in
  let n = 5 and l = 16 in
  let betas = Array.map Bigint.of_int [| 420; 77; 5000; 420; 1 |] in
  Printf.printf
    "running the unlinkable comparison over %s with %d parties (l = %d)\n"
    G.name n l;
  Printf.printf "every value below crossed a party boundary as bytes.\n\n";
  let r = RT.run rng ~l ~betas in
  Array.iteri
    (fun j rank ->
      Printf.printf "  party %d (beta = %4s) learned: my rank is %d\n" (j + 1)
        (Bigint.to_string betas.(j))
        rank)
    r.RT.ranks;
  Printf.printf "\nwire traffic: %d messages, %d bytes total (%d per party)\n"
    r.RT.messages r.RT.bytes_on_wire
    (r.RT.bytes_on_wire / n);
  let s_c = 2 * G.element_bytes in
  Printf.printf
    "paper's analysis: O(l S_c n^2) per party with S_c = %d bytes here.\n" s_c

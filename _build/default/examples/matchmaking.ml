(* Personal interests matching (§I): a person ranks a group of
   candidates by closeness to their own (sensitive) preference vector —
   political leaning, lifestyle, taste scores — without any candidate's
   answers or the seeker's preferences being revealed.

   Every attribute is an "equal to" attribute (t = m): gain is the
   negative weighted squared distance, so the best match ranks first.

     dune exec examples/matchmaking.exe *)

open Ppgr_grouprank

let () =
  let rng = Ppgr_rng.Rng.create ~seed:"matchmaking" in
  let dims = [| "politics"; "outdoors"; "nightlife"; "travel"; "cooking" |] in
  (* All five attributes are "equal to" (t = m = 5), scored 0-100. *)
  let spec = Attrs.spec ~m:5 ~t:5 ~d1:7 ~d2:3 in
  (* The seeker's private profile and per-dimension importance. *)
  let criterion =
    { Attrs.v0 = [| 30; 85; 20; 70; 55 |]; w = [| 7; 5; 2; 4; 3 |] }
  in
  let candidates =
    [|
      ("sam", [| 35; 80; 25; 65; 60 |]);
      ("jo", [| 90; 20; 95; 30; 10 |]);
      ("alex", [| 28; 88; 15; 75; 50 |]);
      ("kim", [| 50; 60; 50; 50; 50 |]);
      ("pat", [| 30; 85; 20; 10; 55 |]);
      ("max", [| 10; 95; 30; 80; 70 |]);
    |]
  in
  let infos = Array.map snd candidates in
  let cfg = Framework.config ~h:10 ~spec ~k:2 () in
  let out =
    Framework.run_with_group (Ppgr_group.Ec_group.ecc_tiny ()) rng cfg
      ~criterion ~infos
  in
  Printf.printf "matching dimensions: %s\n\n" (String.concat ", " (Array.to_list dims));
  Printf.printf "%-6s %-24s %10s  %s\n" "name" "profile" "distance" "rank";
  Array.iteri
    (fun j (name, v) ->
      (* gain = -(weighted squared distance); show the distance for
         intuition.  In the real protocol nobody computes this in the
         clear, of course. *)
      let d2 = -Attrs.gain spec criterion v in
      Printf.printf "%-6s %-24s %10d  %d\n" name
        (String.concat "," (Array.to_list (Array.map string_of_int v)))
        d2 out.Framework.ranks.(j))
    candidates;
  Printf.printf "\nbest matches who agreed to connect:\n";
  List.iter
    (fun s -> Printf.printf "  %s (rank %d)\n" (fst candidates.(s.Framework.participant)) s.Framework.claimed_rank)
    out.Framework.accepted;
  (* Sanity: the protocol's ranking must order by increasing distance. *)
  let by_rank = Array.copy out.Framework.ranks in
  let ds = Array.map (fun v -> -Attrs.gain spec criterion v) infos in
  Array.iteri
    (fun i ri ->
      Array.iteri
        (fun j rj -> if ri < rj then assert (ds.(i) <= ds.(j)))
        by_rank)
    by_rank

examples/recruiting.mli:

examples/marketing.mli:

examples/distributed.mli:

examples/distributed.ml: Array Bigint Ppgr_bigint Ppgr_group Ppgr_grouprank Ppgr_rng Printf Runtime

examples/matchmaking.ml: Array Attrs Framework List Ppgr_group Ppgr_grouprank Ppgr_rng Printf String

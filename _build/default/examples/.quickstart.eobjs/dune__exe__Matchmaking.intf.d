examples/matchmaking.mli:

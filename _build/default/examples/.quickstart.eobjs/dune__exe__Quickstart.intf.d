examples/quickstart.mli:

examples/recruiting.ml: Array Attrs Framework List Ppgr_group Ppgr_grouprank Ppgr_rng Printf

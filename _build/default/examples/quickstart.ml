(* Quickstart: the smallest end-to-end privacy preserving group ranking.

   An initiator with a private scoring rule ranks five participants with
   private attribute vectors; every participant learns only its own
   rank, and the top-2 submit their data.

     dune exec examples/quickstart.exe *)

open Ppgr_grouprank

let () =
  let rng = Ppgr_rng.Rng.create ~seed:"quickstart" in
  (* Three attributes: the first is an "equal to" attribute (the
     initiator wants it close to its criterion), the other two are
     "greater than" attributes (more is better). *)
  let spec = Attrs.spec ~m:3 ~t:1 ~d1:8 ~d2:4 in
  let criterion = { Attrs.v0 = [| 40; 0; 0 |]; w = [| 3; 5; 2 |] } in
  let infos =
    [|
      [| 38; 120; 30 |]; (* close to 40, strong on both bonuses *)
      [| 70; 200; 90 |]; (* far from 40 but very strong bonuses *)
      [| 40; 10; 5 |]; (* exactly 40, weak bonuses *)
      [| 55; 80; 60 |];
      [| 30; 150; 20 |];
    |]
  in
  let cfg = Framework.config ~h:10 ~spec ~k:2 () in
  (* Any group instantiation works; the 160-bit curve is the paper's
     fastest production choice. *)
  let out =
    Framework.run_with_group (Ppgr_group.Ec_group.ecc_160 ()) rng cfg ~criterion
      ~infos
  in
  Printf.printf "participant  private vector      gain  rank (only the owner learns it)\n";
  Array.iteri
    (fun j info ->
      Printf.printf "P%d           [%3d;%3d;%3d]  %8d  %d\n" (j + 1) info.(0)
        info.(1) info.(2)
        (Attrs.gain spec criterion info)
        out.Framework.ranks.(j))
    infos;
  Printf.printf "\ntop-%d submissions received by the initiator:\n" cfg.Framework.k;
  List.iter
    (fun s ->
      Printf.printf "  P%d submitted its vector (claimed rank %d)\n"
        (s.Framework.participant + 1) s.Framework.claimed_rank)
    out.Framework.accepted;
  Printf.printf
    "\nEveryone else's vectors and gains never left their machines.\n"

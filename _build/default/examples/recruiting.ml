(* Business-OSN recruiting (§I): an employer screens candidates for a
   position with a sensitive health requirement.  Skill attributes are
   "greater than"; the health attribute is "equal to" around the job's
   requirement.  Candidates' health data and the employer's exact
   scoring stay private; only the shortlist submits full profiles.

   This example also demonstrates identity unlinkability empirically:
   swapping the private vectors of two unselected candidates changes
   nothing in anyone else's view (§III-C, Definition 7).

     dune exec examples/recruiting.exe *)

open Ppgr_grouprank

let () =
  let rng = Ppgr_rng.Rng.create ~seed:"recruiting" in
  (* Attributes: [fitness-for-duty score (equal to)], then "greater
     than": years of experience, certifications, references. *)
  let spec = Attrs.spec ~m:4 ~t:1 ~d1:6 ~d2:4 in
  let criterion = { Attrs.v0 = [| 42; 0; 0; 0 |]; w = [| 9; 6; 4; 2 |] } in
  let candidates =
    [|
      ("uma", [| 41; 12; 5; 9 |]);
      ("viktor", [| 20; 15; 8; 10 |]);
      ("wen", [| 43; 8; 3; 6 |]);
      ("xia", [| 42; 10; 6; 8 |]);
      ("yuri", [| 55; 14; 7; 4 |]);
      ("zoe", [| 40; 6; 2; 3 |]);
    |]
  in
  let infos = Array.map snd candidates in
  let cfg = Framework.config ~h:10 ~spec ~k:2 () in
  let run infos =
    Framework.run_with_group (Ppgr_group.Dl_group.dl_test_64 ()) rng cfg
      ~criterion ~infos
  in
  let out = run infos in
  Printf.printf "shortlist (top %d of %d candidates):\n" cfg.Framework.k
    (Array.length candidates);
  List.iter
    (fun s ->
      Printf.printf "  %s (rank %d) submitted a full profile\n"
        (fst candidates.(s.Framework.participant))
        s.Framework.claimed_rank)
    out.Framework.accepted;
  (* Identity unlinkability demonstration: pick two candidates outside
     the shortlist, swap their private vectors, and rerun.  Everyone
     else's rank — everything an adversary coalition of the rest could
     observe in the clear — is identical. *)
  let outside =
    Array.to_list
      (Array.mapi (fun j _ -> j) infos)
    |> List.filter (fun j -> out.Framework.ranks.(j) > cfg.Framework.k)
  in
  match outside with
  | a :: b :: _ ->
      let swapped = Array.copy infos in
      swapped.(a) <- infos.(b);
      swapped.(b) <- infos.(a);
      let out' = run swapped in
      let others_equal = ref true in
      Array.iteri
        (fun j r ->
          if j <> a && j <> b && r <> out'.Framework.ranks.(j) then
            others_equal := false)
        out.Framework.ranks;
      Printf.printf
        "\nunlinkability check: swapping the private data of %s and %s\n\
         left every other participant's view unchanged: %b\n\
         (their own two ranks swapped: %b)\n"
        (fst candidates.(a)) (fst candidates.(b)) !others_equal
        (out.Framework.ranks.(a) = out'.Framework.ranks.(b)
        && out.Framework.ranks.(b) = out'.Framework.ranks.(a))
  | _ -> Printf.printf "\n(not enough low-ranked candidates for the swap demo)\n"

lib/elgamal/mixnet.ml: Array Elgamal Ppgr_group Ppgr_rng Printf Rng

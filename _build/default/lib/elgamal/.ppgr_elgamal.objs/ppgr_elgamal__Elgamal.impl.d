lib/elgamal/elgamal.ml: Bigint List Ppgr_bigint Ppgr_group Ppgr_rng Rng
